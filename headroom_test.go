package loam

import (
	"testing"

	"loam/internal/stats"
)

// TestHeadroomDiagnostic measures the improvement space D(M_d) of the
// candidate sets under two statistics policies: a degraded one (high
// headroom expected) and a pristine one (native near-optimal expected). This
// guards the central mechanism of the reproduction — that stale/missing
// statistics are what give candidates headroom over default plans.
func TestHeadroomDiagnostic(t *testing.T) {
	measure := func(name string, pol stats.Policy, mutate func(*ProjectConfig)) (headroom float64) {
		sim := NewSimulation(23, DefaultSimulationConfig())
		cfg := DefaultProjectConfig(name)
		cfg.Archetype.NumTables = 30
		cfg.Archetype.RowsLog10Mean = 5.5
		cfg.Workload.NumTemplates = 20
		cfg.StatsPolicy = pol
		if mutate != nil {
			mutate(&cfg)
		}
		ps := sim.AddProject(cfg)

		day := 3
		ex := ps.Explorer(day)
		exAll := ps.Explorer(day)
		exAll.TopK = 0 // uncut candidate set: the exploration ceiling
		totalDef, totalBest := 0.0, 0.0
		perQuery, perQueryAll := 0.0, 0.0
		queries := 0
		flagCounts := map[string]int{}
		for _, tpl := range ps.Gen.Templates {
			q := tpl.Instantiate(ps.rng.Derive("diag"), day)
			cands := ex.Candidates(q)
			// Deterministic env: work-only comparison isolates plan quality.
			defWork, _, _, _ := ps.Executor.Work(cands[0], day)
			best := defWork
			bestKnobs := "default"
			for _, c := range cands[1:] {
				w, _, _, _ := ps.Executor.Work(c, day)
				if w < best {
					best = w
					bestKnobs = ""
					for _, k := range c.Knobs {
						bestKnobs += k + " "
					}
				}
			}
			bestAll := defWork
			for _, c := range exAll.Candidates(q)[1:] {
				if w, _, _, _ := ps.Executor.Work(c, day); w < bestAll {
					bestAll = w
				}
			}
			flagCounts[bestKnobs]++
			totalDef += defWork
			totalBest += best
			perQuery += 1 - best/defWork
			perQueryAll += 1 - bestAll/defWork
			queries++
		}
		headroom = perQuery / float64(queries)
		t.Logf("%s: queries=%d aggHeadroom=%.1f%% perQuery=%.1f%% ceiling=%.1f%% winners=%v",
			name, queries, (1-totalBest/totalDef)*100, headroom*100,
			perQueryAll/float64(queries)*100, flagCounts)
		return headroom
	}

	degraded := measure("degraded", stats.Policy{ColumnStatsProb: 0.25, FreshProb: 0.3, MaxStalenessDays: 25, NDVNoise: 0.6}, nil)
	pristine := measure("pristine", stats.Policy{ColumnStatsProb: 1, FreshProb: 1, MaxStalenessDays: 0, NDVNoise: 0.02}, nil)
	measure("harsh", stats.Policy{ColumnStatsProb: 0.05, FreshProb: 0.1, MaxStalenessDays: 30, NDVNoise: 1.2}, func(cfg *ProjectConfig) {
		cfg.Archetype.RowsLog10Std = 1.6
		cfg.Archetype.RowsLog10Mean = 6.0
		cfg.Archetype.GrowthMean = 1.04
		cfg.Workload.MinTables = 3
		cfg.Workload.MaxTables = 7
		cfg.Workload.PushDifficultProb = 0.5
	})

	if degraded <= pristine {
		t.Errorf("expected degraded stats to create more headroom: degraded=%.3f pristine=%.3f", degraded, pristine)
	}
	if degraded < 0.05 {
		t.Errorf("degraded headroom too small for the paper's shapes: %.3f", degraded)
	}
}
