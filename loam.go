// Package loam is a self-contained reproduction of LOAM, the learned query
// optimizer deployed in Alibaba MaxCompute ("Learned Query Optimizer in
// Alibaba MaxCompute: Challenges, Analysis, and Solutions").
//
// The package simulates a MaxCompute-like distributed, multi-tenant data
// warehouse end to end — synthetic projects with hidden data distributions,
// a stale/missing statistics view, a native cost-based optimizer, a
// multi-tenant cluster with dynamic machine loads, and a stage-level
// execution simulator — and implements LOAM on top of it: a statistics-free,
// environment-aware adaptive cost predictor trained with domain adaptation
// (§4), average-case environment smoothing at inference (§5), and two-stage
// project selection (§6).
//
// Typical use:
//
//	sim := loam.NewSimulation(7, loam.DefaultSimulationConfig())
//	ps := sim.AddProject(loam.DefaultProjectConfig("p1"))
//	ps.RunDays(0, 30)                        // build query history
//	dep, err := ps.Deploy(loam.DefaultDeployConfig())
//	if err != nil { ... }
//	choice, err := dep.Optimize(q)           // steer one query
//	if err != nil { ... }
package loam

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"loam/internal/cluster"
	"loam/internal/encoding"
	"loam/internal/exec"
	"loam/internal/explorer"
	"loam/internal/faultinject"
	"loam/internal/guard"
	"loam/internal/history"
	"loam/internal/nativeopt"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/stats"
	"loam/internal/telemetry"
	"loam/internal/warehouse"
	"loam/internal/workload"
)

// SimulationConfig configures the shared substrate.
type SimulationConfig struct {
	Cluster cluster.Config
}

// DefaultSimulationConfig returns the default cluster setup.
func DefaultSimulationConfig() SimulationConfig {
	return SimulationConfig{Cluster: cluster.DefaultConfig()}
}

// ProjectConfig configures one simulated project.
type ProjectConfig struct {
	Name string
	// Archetype shapes the catalog (table/column counts, sizes, churn).
	Archetype warehouse.Archetype
	// Workload shapes the query templates.
	Workload workload.Config
	// StatsPolicy degrades the optimizer-visible statistics (Challenge C2).
	StatsPolicy stats.Policy
	// ExecMaxInstances caps stage parallelism.
	ExecMaxInstances int
}

// DefaultProjectConfig returns a mid-sized project named name.
func DefaultProjectConfig(name string) ProjectConfig {
	a := warehouse.DefaultArchetype()
	a.Name = name
	return ProjectConfig{
		Name:        name,
		Archetype:   a,
		Workload:    workload.DefaultConfig(),
		StatsPolicy: stats.DefaultPolicy(),
	}
}

// Simulation is the shared multi-tenant environment: one cluster, many
// projects.
type Simulation struct {
	Cluster  *cluster.Cluster
	Projects []*ProjectSim

	rng *simrand.RNG
	tel *telemetry.Registry
}

// NewSimulation builds a simulation, deterministic in seed. The simulation
// carries a telemetry registry instrumenting the substrate — cluster
// load/utilization gauges and per-execution stage counts — which Metrics
// snapshots and Telemetry exposes for sharing with deployments.
func NewSimulation(seed uint64, cfg SimulationConfig) *Simulation {
	rng := simrand.New(seed)
	tel := telemetry.NewRegistry()
	cl := cluster.New(rng.Derive("cluster"), cfg.Cluster)
	cl.Instrument(tel)
	return &Simulation{
		Cluster: cl,
		rng:     rng,
		tel:     tel,
	}
}

// Telemetry returns the simulation's metrics registry. Pass it to
// deployments via WithMetrics to aggregate substrate, training and serving
// metrics into one snapshot.
func (s *Simulation) Telemetry() *telemetry.Registry { return s.tel }

// Metrics returns a deterministic, stable-ordered snapshot of the
// simulation's registry: cluster gauges (refreshed at every simulated sample
// step), executor counters, and anything deployments sharing the registry
// have reported. Identically-seeded, single-driver runs snapshot
// byte-identically (see internal/telemetry).
func (s *Simulation) Metrics() telemetry.Snapshot { return s.tel.Snapshot() }

// AddProject generates a project from its config and attaches it to the
// simulation.
func (s *Simulation) AddProject(cfg ProjectConfig) *ProjectSim {
	if cfg.Archetype.Name == "" {
		cfg.Archetype.Name = cfg.Name
	}
	prng := s.rng.Derive("project:" + cfg.Name)
	proj := warehouse.Generate(prng.Derive("warehouse"), cfg.Archetype)
	ps := &ProjectSim{
		Config:   cfg,
		Project:  proj,
		Gen:      workload.NewGenerator(prng.Derive("workload"), proj, cfg.Workload),
		Executor: exec.NewExecutor(prng.Derive("exec"), s.Cluster, proj),
		Repo:     &history.Repository{},
		rng:      prng,
		views:    map[int]*stats.View{},
	}
	ps.Executor.Instrument(s.tel)
	s.Projects = append(s.Projects, ps)
	return ps
}

// Project returns the attached project simulation by name, or nil.
func (s *Simulation) Project(name string) *ProjectSim {
	for _, p := range s.Projects {
		if p.Config.Name == name {
			return p
		}
	}
	return nil
}

// ProjectSim is one project inside the simulation: its catalog, workload
// generator, executor, and query history. The serving path (View, Explorer,
// Optimize, ExecuteChoice) is safe for concurrent use; RunDays and the
// workload generator remain single-threaded.
type ProjectSim struct {
	Config   ProjectConfig
	Project  *warehouse.Project
	Gen      *workload.Generator
	Executor *exec.Executor
	Repo     *history.Repository

	rng    *simrand.RNG
	viewMu sync.Mutex
	views  map[int]*stats.View
}

// View returns the (cached) optimizer statistics snapshot for a day. It is
// safe for concurrent use; the first request for a day builds the snapshot
// under the cache lock, so concurrent requests never duplicate the work.
func (ps *ProjectSim) View(day int) *stats.View {
	ps.viewMu.Lock()
	defer ps.viewMu.Unlock()
	if v, ok := ps.views[day]; ok {
		return v
	}
	v := stats.Snapshot(ps.rng.Derive("stats"), ps.Project, day, ps.Config.StatsPolicy)
	ps.views[day] = v
	return v
}

// Explorer returns a plan explorer bound to a day's statistics view.
func (ps *ProjectSim) Explorer(day int) *explorer.Explorer {
	return explorer.New(ps.View(day))
}

// execOptions builds executor options for a query.
func (ps *ProjectSim) execOptions(q *query.Query) exec.Options {
	opt := exec.DefaultOptions()
	if q.NoiseSigma > 0 {
		opt.NoiseSigma = q.NoiseSigma
	}
	if ps.Config.ExecMaxInstances > 0 {
		opt.MaxInstances = ps.Config.ExecMaxInstances
	}
	return opt
}

// RunDays simulates production days [from, to): each day's queries are
// planned by the native optimizer (no knobs), executed on the shared
// cluster, and logged to the repository — building the historical query
// repository LOAM trains from.
func (ps *ProjectSim) RunDays(from, to int) {
	for day := from; day < to; day++ {
		ex := ps.Explorer(day)
		for _, q := range ps.Gen.Day(day) {
			def := ex.DefaultPlan(q)
			rec := ps.Executor.Execute(def, day, ps.execOptions(q))
			rec.TemplateID = q.TemplateID
			ps.Repo.Append(history.Entry{Query: q, Record: rec})
		}
	}
}

// ExecuteDefault plans and executes one query with the native optimizer and
// logs it, returning the record.
func (ps *ProjectSim) ExecuteDefault(q *query.Query) *exec.Record {
	def := ps.Explorer(q.Day).DefaultPlan(q)
	rec := ps.Executor.Execute(def, q.Day, ps.execOptions(q))
	rec.TemplateID = q.TemplateID
	ps.Repo.Append(history.Entry{Query: q, Record: rec})
	return rec
}

// DeployConfig configures training a LOAM deployment for a project.
type DeployConfig struct {
	// Predictor holds the model hyperparameters.
	Predictor predictor.Config
	// Encoder sizes the plan vectorization.
	Encoder encoding.Config
	// TrainDays and TestDays split the history (paper: 25 / 5).
	TrainDays int
	TestDays  int
	// MaxTrain caps the training set (paper: 10,000).
	MaxTrain int
	// DomainPlans is how many unexecuted candidate plans are generated for
	// domain alignment.
	DomainPlans int
}

// DefaultDeployConfig returns the paper-shaped defaults at simulator scale.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{
		Predictor:   predictor.DefaultConfig(),
		Encoder:     encoding.DefaultConfig(),
		TrainDays:   25,
		TestDays:    5,
		MaxTrain:    10_000,
		DomainPlans: 128,
	}
}

// Deployment is a trained LOAM instance serving one project. Once trained it
// is safe for concurrent use: Optimize, OptimizeBatch and ExecuteChoice may
// be called from multiple goroutines against the same deployment (changing
// the strategy concurrently with serving is not — call SetStrategy between
// serving phases). The serving model is held behind an atomic pointer so the
// lifecycle manager (WithLifecycle) can hot-swap a retrained predictor under
// live traffic; read it via Predictor().
type Deployment struct {
	ProjectSim *ProjectSim
	Encoder    *encoding.Encoder
	// Strategy is the live inference strategy. It stays exported for reading;
	// set it via WithStrategy at deploy time or SetStrategy afterwards.
	Strategy predictor.Strategy

	TrainSize int
	TestSet   []history.Entry

	// pred is the serving model. Swaps go through the lifecycle seam
	// (Lifecycle promote/rollback), which pairs the pointer store with a
	// guard scorer swap; each stored predictor carries its own fresh plan
	// cache, so embeddings can never outlive the weights that produced them.
	pred         atomic.Pointer[predictor.Predictor]
	planCacheCap int
	// microBatch is the cross-query coalescing window (WithMicroBatch); ≤ 1
	// serves without coalescing.
	microBatch int
	// governedCap is the plan-cache capacity granted by a fleet registry's
	// budget governor, or -1 while the deployment serves ungoverned. Once a
	// registry takes over (setGovernedCache), its grant — not the deploy-time
	// WithPlanCache capacity — sizes every fresh cache a lifecycle promote
	// installs.
	governedCap atomic.Int64
	inj         *faultinject.Injector

	tel *telemetry.Registry
	obs servingTelemetry
	grd *guard.Guard
	lc  *Lifecycle
	// dur is the crash-safe persistence seam (WithDurableStore), or nil when
	// the deployment's continual-learning state is in-memory only.
	dur *durableState
}

// Predictor returns the deployment's current serving model. With a lifecycle
// attached the model can change across calls (promote or rollback); within
// one serve call the guard reads its scorer exactly once, so a single query
// is never scored by a mix of models.
func (d *Deployment) Predictor() *predictor.Predictor { return d.pred.Load() }

// Lifecycle returns the deployment's model lifecycle manager, or nil when
// the deployment was not deployed with WithLifecycle.
func (d *Deployment) Lifecycle() *Lifecycle { return d.lc }

// SetStrategy switches the deployment's inference strategy (§5). Like the
// old direct field write it replaces, it must not race with in-flight
// Optimize calls; switch between serving phases.
func (d *Deployment) SetStrategy(s predictor.Strategy) { d.Strategy = s }

// Telemetry returns the deployment's metrics registry — the private one
// created at deploy time, or whatever WithMetrics wired in. Use it for wall
// timings (Registry.WallTimings) or to share with other deployments.
func (d *Deployment) Telemetry() *telemetry.Registry { return d.tel }

// Guard returns the deployment's serving guard: inspect the breaker state
// (State), check or lift a regression-sentinel quarantine (Quarantined,
// Reset). Every Optimize/OptimizeCtx/OptimizeBatch call is routed through
// it; see DESIGN.md "Degraded-mode serving contract".
func (d *Deployment) Guard() *Guard { return d.grd }

// Metrics returns a deterministic, stable-ordered snapshot of the
// deployment's registry: serving counters and histograms, training losses,
// and plan-selection statistics. Wall-clock readings are deliberately
// excluded so identically-seeded runs snapshot byte-identically (see
// internal/telemetry).
func (d *Deployment) Metrics() telemetry.Snapshot { return d.tel.Snapshot() }

// Deploy trains an adaptive cost predictor from the project's history and
// returns a serving deployment. The training set is the deduplicated default
// plans of the first TrainDays; unexecuted candidate plans generated by the
// explorer align the domains (§4). Options shape the deployment: WithStrategy
// picks the inference strategy, WithMetrics routes telemetry into a shared
// registry (default: a fresh private one).
func (ps *ProjectSim) Deploy(cfg DeployConfig, opts ...DeployOption) (*Deployment, error) {
	train, test := ps.Repo.Split(cfg.TrainDays, cfg.TestDays, cfg.MaxTrain)
	if len(train) == 0 {
		return nil, fmt.Errorf("deploy %s: %w", ps.Config.Name, predictor.ErrNoTrainingData)
	}
	enc := encoding.NewEncoder(cfg.Encoder)

	samples := make([]predictor.Sample, len(train))
	for i, e := range train {
		samples[i] = predictor.Sample{
			Plan: e.Record.Plan,
			Envs: encoding.RecordEnv(e.Record.NodeEnv),
			Cost: e.Record.CPUCost,
		}
	}

	// Unexecuted candidate plans for domain alignment: explore a spread of
	// training queries. Generation is cheap (§7.2.1) and costs no execution.
	var domain []*plan.Plan
	if cfg.Predictor.Adapt && cfg.DomainPlans > 0 {
		stride := len(train)/cfg.DomainPlans + 1
		for i := 0; i < len(train) && len(domain) < cfg.DomainPlans; i += stride {
			e := train[i]
			ex := ps.Explorer(e.Record.Day)
			for _, c := range ex.Candidates(e.Query) {
				if !c.IsDefault() {
					domain = append(domain, c)
				}
			}
		}
	}

	o := resolveDeployOptions(opts)
	pred, err := predictor.TrainInstrumented(cfg.Predictor, enc, samples, domain, o.metrics)
	if err != nil {
		return nil, fmt.Errorf("deploy %s: %w", ps.Config.Name, err)
	}
	applyScoring(pred, o)
	// A fresh cache per deployment is the invalidation rule: embeddings can
	// never outlive the weights that produced them.
	pred.EnablePlanCache(o.planCache)
	d := &Deployment{
		ProjectSim:   ps,
		Encoder:      enc,
		Strategy:     o.strategy,
		TrainSize:    len(train),
		TestSet:      test,
		planCacheCap: o.planCache,
		microBatch:   o.microBatch,
		inj:          o.injector,
		tel:          o.metrics,
		obs:          newServingTelemetry(o.metrics),
	}
	d.governedCap.Store(-1)
	d.pred.Store(pred)
	d.grd = ps.newGuard(pred, o)
	d.attachLifecycle(o)
	if o.durableDir != "" {
		if err := d.initDurable(o); err != nil {
			return nil, fmt.Errorf("deploy %s: %w", ps.Config.Name, err)
		}
	}
	return d, nil
}

// applyScoring installs the deploy-time scoring configuration on a predictor
// about to serve. A nil option keeps whatever the predictor already carries —
// training defaults, or the configuration a restored snapshot persisted.
func applyScoring(pred *predictor.Predictor, o deployOptions) {
	if o.scoring != nil {
		pred.SetScoringConfig(*o.scoring)
	}
}

// attachLifecycle wires the model lifecycle manager when WithLifecycle was
// given: the guard's regression sentinel reports quarantine trips to the
// lifecycle (outside the guard lock), and ExecuteChoice starts harvesting
// feedback.
func (d *Deployment) attachLifecycle(o deployOptions) {
	if o.lifecycle == nil {
		return
	}
	d.lc = newLifecycle(d, *o.lifecycle)
	d.grd.SetDriftHook(d.lc.noteSentinelTrip)
}

// newGuard wires a serving guard for a deployment: the trained predictor is
// the learned scorer, the native optimizer over the day's statistics view is
// both the fallback planner and the regression sentinel's rough-cost
// reference, and any armed fault injector is bound to the project's cluster
// so load-spike faults hit the live environment.
func (ps *ProjectSim) newGuard(pred *predictor.Predictor, o deployOptions) *guard.Guard {
	if o.injector != nil {
		o.injector.AttachCluster(ps.Executor.Cluster)
	}
	return guard.New(guard.Options{
		Config: o.guardCfg,
		Scorer: pred,
		Native: func(q *query.Query) *plan.Plan {
			return nativeopt.DefaultPlan(ps.View(q.Day), q)
		},
		Rough: func(day int, p *plan.Plan) float64 {
			return nativeopt.New(ps.View(day)).RoughCost(p)
		},
		Injector:       o.injector,
		Metrics:        o.metrics,
		CoalesceWindow: o.microBatch,
	})
}

// Choice is the outcome of steering one query. Origin reports which rung of
// the guarded serving ladder produced it: OriginLearned choices carry the
// predictor's per-candidate Estimates and a ChosenIdx into Candidates;
// fallback choices (OriginNativeFallback, OriginDefaultFallback) carry nil
// Estimates, the failure that forced the fallback in FallbackCause, and — for
// a native re-plan that is not among the explorer's candidates — ChosenIdx
// -1.
type Choice struct {
	Query      *query.Query
	Candidates []*plan.Plan
	Estimates  []float64
	Chosen     *plan.Plan
	ChosenIdx  int
	// Origin is the serving rung that produced Chosen.
	Origin Origin
	// FallbackCause is the classified learned-path failure behind a
	// degraded choice (nil for OriginLearned); match it with errors.Is
	// against the root sentinels (ErrTransientFailure, ErrBreakerOpen,
	// ErrLearnedDeadline, ...).
	FallbackCause error
}

// Optimize steers one query: the plan explorer produces candidates, the
// predictor estimates their costs under the deployment's inference strategy,
// and the cheapest is chosen (§3). The call is routed through the serving
// guard: when the learned path fails — predictor error, deadline hit, open
// circuit breaker, quarantined model — the guard degrades to a native
// re-plan or the default candidate and the Choice reports the rung in Origin
// and the failure in FallbackCause. An error is returned only when every
// rung is exhausted (ErrNoServablePlan).
//
// Optimize is safe for concurrent use: candidate generation reads immutable
// statistics views, the environment source reads the cluster under a shared
// lock, plan scoring is read-only on the trained model, and the guard's
// breaker accounting takes a short private lock. It is a thin wrapper over
// OptimizeCtx with a background context.
func (d *Deployment) Optimize(q *query.Query) (*Choice, error) {
	return d.OptimizeCtx(context.Background(), q)
}

// OptimizeCtx is Optimize with cancellation: a canceled or expired ctx makes
// it return ctx.Err() promptly, checked on entry and again between candidate
// generation and plan scoring — caller cancellation is never masked by a
// fallback plan. The call also feeds the serving telemetry — latency,
// candidate counts, estimate spread, NaN estimates, and error counters —
// into the deployment's registry, alongside the guard.* counters.
func (d *Deployment) OptimizeCtx(ctx context.Context, q *query.Query) (*Choice, error) {
	if err := ctx.Err(); err != nil {
		d.obs.optimizeCancels.Inc()
		return nil, err
	}
	d.obs.optimizeTotal.Inc()
	span := d.obs.optimizeLatency.Start()
	defer span.Stop()

	cands := d.ProjectSim.Explorer(q.Day).Candidates(q)
	d.obs.candidates.Observe(float64(len(cands)))
	if err := ctx.Err(); err != nil {
		d.obs.optimizeCancels.Inc()
		return nil, err
	}
	envs, envKey := d.envSource()
	res, err := d.grd.Serve(ctx, guard.Request{
		ID:     q.ID,
		Day:    q.Day,
		Query:  q,
		Cands:  cands,
		Envs:   envs,
		EnvKey: envKey,
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			d.obs.optimizeCancels.Inc()
			return nil, err
		}
		d.obs.optimizeErrors.Inc()
		return nil, fmt.Errorf("optimize %s: %w", d.ProjectSim.Config.Name, err)
	}
	if res.Origin == guard.OriginLearned {
		d.obs.observeEstimates(res.Estimates)
	}
	idx := -1
	for i := range cands {
		if cands[i] == res.Chosen {
			idx = i
			break
		}
	}
	return &Choice{
		Query:         q,
		Candidates:    cands,
		Estimates:     res.Estimates,
		Chosen:        res.Chosen,
		ChosenIdx:     idx,
		Origin:        res.Origin,
		FallbackCause: res.FallbackCause,
	}, nil
}

// OptimizeBatch steers a batch of queries, running up to parallelism
// OptimizeCtx calls concurrently (≤1 means sequential) — the paper's §7
// serving deployment, where a fleet of optimizer frontends scores plans
// against one live cluster. Choices are returned in query order; a query
// that fails to optimize leaves a nil choice and contributes a BatchError to
// the returned BatchErrors. The parallel path chooses exactly the same plans
// as the sequential path: plan scoring is deterministic and per-query
// independent.
//
// Cancelling ctx stops the batch promptly: queries not yet started are
// abandoned with nil choices and per-query BatchError entries wrapping
// ctx.Err(), so errors.Is(err, context.Canceled) reports the cancellation.
func (d *Deployment) OptimizeBatch(ctx context.Context, qs []*query.Query, parallelism int) ([]*Choice, error) {
	d.obs.batchTotal.Inc()
	d.obs.batchQueries.Add(int64(len(qs)))
	d.obs.batchSize.Observe(float64(len(qs)))
	choices := make([]*Choice, len(qs))
	errs := make([]error, len(qs))
	if parallelism > len(qs) {
		parallelism = len(qs)
	}
	if parallelism <= 1 {
		if d.microBatch > 1 && len(qs) > 1 {
			d.optimizeBatchCoalesced(ctx, qs, choices, errs)
			return choices, batchError(qs, errs)
		}
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				fillUnstarted(errs, i, err)
				break
			}
			choices[i], errs[i] = d.OptimizeCtx(ctx, q)
		}
		return choices, batchError(qs, errs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				choices[i], errs[i] = d.OptimizeCtx(ctx, qs[i])
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Indices >= i were never dispatched, so no worker touches them:
			// mark them abandoned before waiting the workers out.
			fillUnstarted(errs, i, ctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return choices, batchError(qs, errs)
}

// optimizeBatchCoalesced is the sequential OptimizeBatch drive with
// micro-batching on (WithMicroBatch): queries are steered in chunks of the
// coalescing window, and each chunk's learned-path scoring runs as one fused
// cost-head pass through the guard's deterministic ServeBatch (observed in
// the serve.batch.coalesced histogram). Per-query choices, estimates and
// telemetry counts match the unfused sequential drive; estimate slices are
// copied out of the guard's flush scratch because Choices outlive it.
func (d *Deployment) optimizeBatchCoalesced(ctx context.Context, qs []*query.Query, choices []*Choice, errs []error) {
	w := d.microBatch
	reqs := make([]guard.Request, 0, w)
	results := make([]guard.Result, w)
	rerrs := make([]error, w)
	for start := 0; start < len(qs); start += w {
		if err := ctx.Err(); err != nil {
			fillUnstarted(errs, start, err)
			return
		}
		end := start + w
		if end > len(qs) {
			end = len(qs)
		}
		span := d.obs.optimizeLatency.Start()
		reqs = reqs[:0]
		for i := start; i < end; i++ {
			q := qs[i]
			d.obs.optimizeTotal.Inc()
			cands := d.ProjectSim.Explorer(q.Day).Candidates(q)
			d.obs.candidates.Observe(float64(len(cands)))
			envs, envKey := d.envSource()
			reqs = append(reqs, guard.Request{
				ID:     q.ID,
				Day:    q.Day,
				Query:  q,
				Cands:  cands,
				Envs:   envs,
				EnvKey: envKey,
			})
		}
		res, re := results[:end-start], rerrs[:end-start]
		for i := range re {
			re[i] = nil
		}
		d.grd.ServeBatch(ctx, reqs, res, re)
		for k := range reqs {
			i := start + k
			if err := re[k]; err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
					d.obs.optimizeCancels.Inc()
					errs[i] = err
					continue
				}
				d.obs.optimizeErrors.Inc()
				errs[i] = fmt.Errorf("optimize %s: %w", d.ProjectSim.Config.Name, err)
				continue
			}
			r := res[k]
			var ests []float64
			if r.Origin == guard.OriginLearned {
				d.obs.observeEstimates(r.Estimates)
				ests = append([]float64(nil), r.Estimates...)
			}
			idx := -1
			for j := range reqs[k].Cands {
				if reqs[k].Cands[j] == r.Chosen {
					idx = j
					break
				}
			}
			choices[i] = &Choice{
				Query:         qs[i],
				Candidates:    reqs[k].Cands,
				Estimates:     ests,
				Chosen:        r.Chosen,
				ChosenIdx:     idx,
				Origin:        r.Origin,
				FallbackCause: r.FallbackCause,
			}
		}
		span.Stop()
	}
}

// fillUnstarted marks batch indices [from, len) as abandoned with err.
func fillUnstarted(errs []error, from int, err error) {
	for i := from; i < len(errs); i++ {
		errs[i] = err
	}
}

// envSource resolves the deployment's inference strategy against the live
// cluster (§5), returning both the environment source and its cache key so
// keyed scoring can reuse cached plan embeddings. The two are derived from
// the same cluster readings, keeping key and source in lockstep.
func (d *Deployment) envSource() (encoding.EnvSource, encoding.EnvKey) {
	cl := d.ProjectSim.Executor.Cluster
	ce := cl.HistoryAverage().Normalized()
	cb := cl.ClusterAverage().Normalized()
	// One predictor read serves both derivations: the env source and its
	// cache key always describe the same model's view of the environment,
	// even if a lifecycle swap lands between two serve calls.
	p := d.pred.Load()
	return p.EnvSourceFor(d.Strategy, ce, cb), p.EnvKeyFor(d.Strategy, ce, cb)
}

// ExecuteChoice runs the chosen plan, logs it, and returns the record. With
// a lifecycle attached (WithLifecycle) the execution also feeds the online
// feedback store — the (plan, environment, actual cost) observation plus the
// model's serving-time estimate — and gives the lifecycle its chance to
// react to drift: retrain, promote, or roll back (see Lifecycle).
func (d *Deployment) ExecuteChoice(c *Choice) *exec.Record {
	rec := d.ProjectSim.Executor.Execute(c.Chosen, c.Query.Day, d.ProjectSim.execOptions(c.Query))
	rec.TemplateID = c.Query.TemplateID
	d.ProjectSim.Repo.Append(history.Entry{Query: c.Query, Record: rec})
	if d.lc != nil {
		d.lc.observe(c, rec)
	}
	return rec
}

// Rng derives a named deterministic random stream from the project's root
// stream — used by experiments that need reproducible ad-hoc draws.
func (ps *ProjectSim) Rng(name string) *simrand.RNG { return ps.rng.Derive(name) }

// ExecOptions returns the executor options the project uses for a query —
// exported for tools that execute plans out-of-band (flighting comparisons).
func (ps *ProjectSim) ExecOptions(q *query.Query) exec.Options { return ps.execOptions(q) }

// SaveModel serializes the deployment's current serving predictor — after a
// lifecycle promote, that is the promoted model.
func (d *Deployment) SaveModel(w io.Writer) error { return d.pred.Load().Save(w) }

// DeployFromModel restores a previously saved predictor and binds it to this
// project as a serving deployment. trainDays/testDays select which history
// window serves as the deployment's validation test set (as in Deploy). The
// deployment's encoder is rebuilt from the encoder configuration serialized
// with the model, not from the package default, so a model trained under a
// non-default encoding keeps its feature layout after restore. Options work
// as in Deploy; the restored predictor's plan-selection telemetry is wired
// into the resolved registry.
func (ps *ProjectSim) DeployFromModel(r io.Reader, trainDays, testDays int, opts ...DeployOption) (*Deployment, error) {
	pred, err := predictor.Load(r)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
	}
	o := resolveDeployOptions(opts)
	pred.Instrument(o.metrics)
	applyScoring(pred, o)
	pred.EnablePlanCache(o.planCache)
	train, test := ps.Repo.Split(trainDays, testDays, 0)
	d := &Deployment{
		ProjectSim:   ps,
		Encoder:      encoding.NewEncoder(pred.EncoderConfig()),
		Strategy:     o.strategy,
		TrainSize:    len(train),
		TestSet:      test,
		planCacheCap: o.planCache,
		microBatch:   o.microBatch,
		inj:          o.injector,
		tel:          o.metrics,
		obs:          newServingTelemetry(o.metrics),
	}
	d.governedCap.Store(-1)
	d.pred.Store(pred)
	d.grd = ps.newGuard(pred, o)
	d.attachLifecycle(o)
	if o.durableDir != "" {
		if err := d.initDurable(o); err != nil {
			return nil, fmt.Errorf("restore %s: %w", ps.Config.Name, err)
		}
	}
	return d, nil
}
