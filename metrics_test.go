package loam

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"loam/internal/query"
	"loam/internal/telemetry"
)

// metricsRun drives one full identically-seeded pipeline — simulation,
// production history, training, parallel serving — with everything routed
// into the simulation's shared registry, and returns the snapshot's text
// exposition.
func metricsRun(t *testing.T, seed uint64) string {
	t.Helper()
	sim, ps := tinyProject(t, seed)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg, WithMetrics(sim.Telemetry()))
	if err != nil {
		t.Fatal(err)
	}
	var qs []*query.Query
	for day := 6; len(qs) < 8; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	if _, err := dep.OptimizeBatch(context.Background(), qs[:8], 4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsSnapshotDeterministic runs the pipeline twice with the same
// seed — including a parallelism-4 OptimizeBatch, so goroutine scheduling
// differs between runs — and requires byte-identical snapshot text: the
// telemetry layer's core contract.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	a := metricsRun(t, 41)
	b := metricsRun(t, 41)
	if a != b {
		t.Fatalf("same-seed snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	for _, want := range []string{
		"counter serve.optimize.total 8",
		"counter serve.batch.queries 8",
		"counter train.runs 1",
		"counter exec.executions",
		"gauge cluster.cpu_idle",
		"histogram serve.candidates",
		"timer serve.optimize.latency count=8",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot lacks %q:\n%s", want, a)
		}
	}
}

// TestDeployMetricsWiring checks the option plumbing: a supplied registry is
// the deployment's registry, the default is a fresh private one, and serving
// traffic lands in the snapshot.
func TestDeployMetricsWiring(t *testing.T) {
	_, ps := tinyProject(t, 42)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4

	reg := telemetry.NewRegistry()
	dep, err := ps.Deploy(dcfg, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Telemetry() != reg {
		t.Fatal("WithMetrics registry not wired")
	}
	if _, err := dep.Optimize(ps.Gen.Day(6)[0]); err != nil {
		t.Fatal(err)
	}
	snap := dep.Metrics()
	if got := counterValue(t, snap, "serve.optimize.total"); got != 1 {
		t.Fatalf("serve.optimize.total = %d, want 1", got)
	}
	if got := counterValue(t, snap, "predictor.selectplan.calls"); got != 1 {
		t.Fatalf("predictor.selectplan.calls = %d, want 1", got)
	}

	other, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if other.Telemetry() == nil || other.Telemetry() == reg {
		t.Fatal("default deployment should own a fresh private registry")
	}
}

// TestDeployFromModelMetricsWiring restores a saved model with options and
// checks the restored predictor's plan-selection telemetry reaches the
// supplied registry.
func TestDeployFromModelMetricsWiring(t *testing.T) {
	_, ps := tinyProject(t, 43)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 4
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	restored, err := ps.DeployFromModel(&buf, 5, 1, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Telemetry() != reg {
		t.Fatal("WithMetrics registry not wired on restore")
	}
	if _, err := restored.Optimize(ps.Gen.Day(6)[0]); err != nil {
		t.Fatal(err)
	}
	snap := restored.Metrics()
	if got := counterValue(t, snap, "serve.optimize.total"); got != 1 {
		t.Fatalf("serve.optimize.total = %d, want 1", got)
	}
	if got := counterValue(t, snap, "predictor.selectplan.calls"); got != 1 {
		t.Fatalf("predictor.selectplan.calls = %d, want 1", got)
	}
}

// counterValue extracts one counter from a snapshot, failing if absent.
func counterValue(t *testing.T, s telemetry.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}
