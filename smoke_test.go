package loam

import (
	"testing"

	"loam/internal/predictor"
)

// TestSmokePipeline exercises the whole pipeline end to end at tiny scale:
// history building, training with domain adaptation, and steering.
func TestSmokePipeline(t *testing.T) {
	sim := NewSimulation(11, DefaultSimulationConfig())
	cfg := DefaultProjectConfig("smoke")
	cfg.Archetype.NumTables = 12
	cfg.Workload.NumTemplates = 8
	cfg.Workload.QueriesPerDayMean = 6
	ps := sim.AddProject(cfg)
	ps.RunDays(0, 8)

	if ps.Repo.Len() == 0 {
		t.Fatal("no history recorded")
	}
	t.Logf("history: %d records over %v days", ps.Repo.Len(), ps.Repo.Days())

	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 6
	dcfg.TestDays = 2
	dcfg.Predictor.Epochs = 3
	dcfg.DomainPlans = 16
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Logf("train=%d test=%d trainTime=%.2fs modelBytes=%d meanEnv=%v",
		dep.TrainSize, len(dep.TestSet), dep.Predictor().Metrics().TrainSeconds,
		dep.Predictor().Metrics().ModelBytes, dep.Predictor().TrainMeanEnv())

	if len(dep.TestSet) == 0 {
		t.Fatal("no test queries")
	}
	for _, e := range dep.TestSet[:min(3, len(dep.TestSet))] {
		choice, err := dep.Optimize(e.Query)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		if choice.Chosen == nil {
			t.Fatal("no plan chosen")
		}
		rec := dep.ExecuteChoice(choice)
		t.Logf("q=%s cands=%d chosen=%d est=%.0f actual=%.0f default-actual=%.0f",
			e.Query.ID, len(choice.Candidates), choice.ChosenIdx,
			choice.Estimates[choice.ChosenIdx], rec.CPUCost, e.Record.CPUCost)
	}

	if dep.Predictor().Metrics().FinalCostLoss <= 0 {
		t.Errorf("expected positive final cost loss, got %v", dep.Predictor().Metrics().FinalCostLoss)
	}
	_ = predictor.StrategyMeanEnv
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
