module loam

go 1.22
