package loam_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"loam"
	"loam/internal/experiments"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/theory"
	"loam/internal/xgb"
)

// The per-figure benchmarks run the experiment suite at tiny scale so
// `go test -bench=.` terminates quickly; `cmd/loam-bench` runs the same
// experiments at default or paper scale. The environment (projects, 30-day
// histories, trained models, candidate measurements) is shared and cached
// across benchmarks, so each benchmark times its experiment's own work.
var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchF6      *experiments.Fig6Result
)

func getBenchEnv(b *testing.B) (*experiments.Env, *experiments.Fig6Result) {
	b.Helper()
	benchEnvOnce.Do(func() {
		cfg := experiments.Tiny()
		benchEnv = experiments.NewEnv(cfg)
		f6, err := benchEnv.Fig6()
		if err != nil {
			b.Fatalf("fig6: %v", err)
		}
		benchF6 = f6
	})
	if benchEnv == nil {
		b.Skip("environment failed to build")
	}
	return benchEnv, benchF6
}

func render(b *testing.B, r interface{ Render(io.Writer) }) {
	b.Helper()
	if b.N == 1 {
		b.Log("rendering suppressed; run cmd/loam-bench for full output")
	}
}

func BenchmarkFig1CostVariance(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := env.Fig1()
		render(b, r)
	}
}

func BenchmarkTable1ProjectStats(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Table1())
	}
}

func BenchmarkFig5LoadResponse(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig5())
	}
}

func BenchmarkFig6EndToEnd(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		render(b, r)
	}
}

func BenchmarkFig7PerQuery(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig7(f6))
	}
}

func BenchmarkFig8TrainingSize(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Fig8(f6)
		if err != nil {
			b.Fatal(err)
		}
		render(b, r)
	}
}

func BenchmarkFig9Overheads(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig9(f6))
	}
}

func BenchmarkFig10InferenceStrategies(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Fig10(f6)
		if err != nil {
			b.Fatal(err)
		}
		render(b, r)
	}
}

func BenchmarkFig11AdaptiveAblation(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Fig11(f6)
		if err != nil {
			b.Fatal(err)
		}
		render(b, r)
	}
}

func BenchmarkFig12RankerQuality(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig12())
	}
}

func BenchmarkFig15LogNormalFit(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig15())
	}
}

func BenchmarkFig16RankerTrainingSize(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Fig16())
	}
}

func BenchmarkSec73FleetBenefit(b *testing.B) {
	env, f6 := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Sec73(f6))
	}
}

func BenchmarkThm1Verification(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Thm1())
	}
}

// --- Micro-benchmarks of the core building blocks ---

func microProject(b *testing.B) (*loam.ProjectSim, *loam.Simulation) {
	b.Helper()
	sim := loam.NewSimulation(99, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig("micro")
	cfg.Archetype.NumTables = 20
	cfg.Workload.NumTemplates = 8
	return sim.AddProject(cfg), sim
}

func BenchmarkNativeOptimize(b *testing.B) {
	ps, _ := microProject(b)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 1)
	ex := ps.Explorer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ex.DefaultPlan(q)
	}
}

func BenchmarkExplorerCandidates(b *testing.B) {
	ps, _ := microProject(b)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 1)
	ex := ps.Explorer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ex.Candidates(q)
	}
}

func BenchmarkExecutorExecute(b *testing.B) {
	ps, _ := microProject(b)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 1)
	p := ps.Explorer(1).DefaultPlan(q)
	opt := ps.ExecOptions(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps.Executor.Execute(p, 1, opt)
	}
}

func BenchmarkPredictorTrainTCN(b *testing.B) {
	ps, _ := microProject(b)
	ps.RunDays(0, 3)
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 3
	dcfg.TestDays = 0
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Deploy(dcfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictorInference(b *testing.B) {
	ps, _ := microProject(b)
	ps.RunDays(0, 3)
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = 3
	dcfg.TestDays = 0
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 3)
	cands := ps.Explorer(3).Candidates(q)
	envs := dep.Predictor().EnvSourceFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = dep.Predictor().SelectPlan(cands, envs)
	}
}

// BenchmarkServeThroughput measures the serving experiment end to end: one
// deployment steering the test window's queries through OptimizeBatch at
// each parallelism level, with sequential-vs-parallel choice verification.
func BenchmarkServeThroughput(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Serve(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Identical {
			b.Fatal("parallel serving diverged from sequential plan choices")
		}
		render(b, r)
	}
}

// serveBenchSetup builds a deployment plus a batch of fresh queries once,
// shared by the OptimizeBatch sub-benchmarks.
var (
	serveBenchOnce sync.Once
	serveBenchDep  *loam.Deployment
	serveBenchQs   []*query.Query
)

func getServeBench(b *testing.B) (*loam.Deployment, []*query.Query) {
	b.Helper()
	serveBenchOnce.Do(func() {
		ps, _ := microProject(b)
		ps.RunDays(0, 4)
		dcfg := loam.DefaultDeployConfig()
		dcfg.TrainDays = 4
		dcfg.TestDays = 0
		dcfg.Predictor.Epochs = 2
		dcfg.DomainPlans = 8
		dep, err := ps.Deploy(dcfg)
		if err != nil {
			b.Fatal(err)
		}
		serveBenchDep = dep
		for day := 4; len(serveBenchQs) < 64; day++ {
			serveBenchQs = append(serveBenchQs, ps.Gen.Day(day)...)
		}
		serveBenchQs = serveBenchQs[:64]
	})
	if serveBenchDep == nil {
		b.Skip("serving benchmark setup failed")
	}
	return serveBenchDep, serveBenchQs
}

// BenchmarkOptimizeBatch reports per-batch serving latency at increasing
// parallelism over an identical 64-query batch; linear-ish scaling here is
// the tentpole claim of the concurrent serving layer.
func BenchmarkOptimizeBatch(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			dep, qs := getServeBench(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dep.OptimizeBatch(context.Background(), qs, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectPlanParallel compares sequential and pooled candidate
// scoring inside a single SelectPlan call.
func BenchmarkSelectPlanParallel(b *testing.B) {
	dep, qs := getServeBench(b)
	ps := dep.ProjectSim
	cands := ps.Explorer(4).Candidates(qs[0])
	envs := dep.Predictor().EnvSourceFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dep.Predictor().SelectPlanParallel(cands, envs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkXGBTrain(b *testing.B) {
	rng := simrand.New(5)
	x := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = x[i][0]*2 - x[i][2]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xgb.Train(xgb.DefaultConfig(), x, y)
	}
}

func BenchmarkTheoryExpectedDeviance(b *testing.B) {
	dists := []theory.LogNormal{
		{Mu: 2, Sigma: 0.4}, {Mu: 2.2, Sigma: 0.3},
		{Mu: 1.9, Sigma: 0.6}, {Mu: 2.4, Sigma: 0.2}, {Mu: 2.1, Sigma: 0.5},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = theory.ExpectedDeviance(dists, 0)
	}
}

func BenchmarkPlanFingerprint(b *testing.B) {
	ps, _ := microProject(b)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 1)
	p := ps.Explorer(1).DefaultPlan(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Root.Fingerprint()
	}
}

var sinkPlan *plan.Plan

func BenchmarkPlanClone(b *testing.B) {
	ps, _ := microProject(b)
	q := ps.Gen.Templates[0].Instantiate(ps.Rng("bench"), 1)
	p := ps.Explorer(1).DefaultPlan(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPlan = p.Clone()
	}
}

func BenchmarkExt1ExplorationCeiling(b *testing.B) {
	env, _ := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(b, env.Ext1())
	}
}
