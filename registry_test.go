package loam

import (
	"context"
	"errors"
	"testing"

	"loam/internal/fleet"
	"loam/internal/predictor"
	"loam/internal/query"
)

// TestDeployAllCtxAggregatesFleetErrors pins the typed error surface: one
// FleetError per failed project, carrying the fleet index and project name,
// with the underlying sentinel visible through both Unwrap levels.
func TestDeployAllCtxAggregatesFleetErrors(t *testing.T) {
	sim := fleetSim(t)
	results, err := sim.DeployAllCtx(context.Background(), fleetDeployConfig(), WithParallelism(2))
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	if err == nil {
		t.Fatal("empty project should surface in the aggregate error")
	}
	var fe FleetErrors
	if !errors.As(err, &fe) {
		t.Fatalf("aggregate is %T, want FleetErrors", err)
	}
	if len(fe) != 1 || fe[0].Project != "empty" || fe[0].Index != 3 {
		t.Fatalf("wrong failure entries: %+v", fe)
	}
	if !errors.Is(err, predictor.ErrNoTrainingData) {
		t.Fatalf("sentinel lost through the aggregate: %v", err)
	}
	for _, r := range results[:3] {
		if r.Err != nil || r.Deployment == nil {
			t.Fatalf("%s: %v", r.Project, r.Err)
		}
	}
}

// TestDeployAllCtxCancellation cancels the fleet after the first project's
// training starts: that project completes (training is not interruptible),
// every later project is abandoned with ctx.Err(), and the aggregate reports
// the cancellation via errors.Is.
func TestDeployAllCtxCancellation(t *testing.T) {
	sim := fleetSim(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Option resolution runs once at DeployAllCtx entry, then once per
	// project deploy — the second resolution is the first project's.
	calls := 0
	tripwire := DeployOption(func(o *deployOptions) {
		calls++
		if calls == 2 {
			cancel()
		}
	})
	results, err := sim.DeployAllCtx(ctx, fleetDeployConfig(), tripwire)
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	if results[0].Err != nil || results[0].Deployment == nil {
		t.Fatalf("in-flight training should finish: %v", results[0].Err)
	}
	for _, r := range results[1:] {
		if r.Deployment != nil {
			t.Fatalf("%s: trained after cancellation", r.Project)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", r.Project, r.Err)
		}
		if r.Project == "" {
			t.Fatal("abandoned result lost its project name")
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate should report the cancellation: %v", err)
	}
}

// TestDeployAllCtxPreCancelled: a context cancelled before the call abandons
// every project without starting any training.
func TestDeployAllCtxPreCancelled(t *testing.T) {
	sim := fleetSim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := sim.DeployAllCtx(ctx, fleetDeployConfig(), WithParallelism(3))
	for _, r := range results {
		if r.Deployment != nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: dep=%v err=%v", r.Project, r.Deployment, r.Err)
		}
	}
	var fe FleetErrors
	if !errors.As(err, &fe) || len(fe) != 4 {
		t.Fatalf("want 4 FleetErrors, got %v", err)
	}
}

// TestDeployAllCtxParallelRace trains the fleet at parallelism above the
// project count; meaningful mainly under -race (make race), where it verifies
// the channel-based result collection has no write races.
func TestDeployAllCtxParallelRace(t *testing.T) {
	sim := fleetSim(t)
	results, err := sim.DeployAllCtx(context.Background(), fleetDeployConfig(), WithParallelism(8))
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	var fe FleetErrors
	if !errors.As(err, &fe) || len(fe) != 1 {
		t.Fatalf("want exactly the empty project failing, got %v", err)
	}
	for i, r := range results {
		if r.Project != sim.Projects[i].Config.Name {
			t.Fatal("result order broken")
		}
	}
}

// TestDeployAllCtxSelector: WithSelector reproduces the SelectAndDeploy
// pipeline through the new entry point.
func TestDeployAllCtxSelector(t *testing.T) {
	sim := fleetSim(t)
	pass := func(ps *ProjectSim) bool { return ps.Repo.Len() > 0 }
	scores := map[string]float64{"fa": 0.1, "fb": 0.9, "fc": 0.5}
	results, err := sim.DeployAllCtx(context.Background(), fleetDeployConfig(),
		WithSelector(pass, scores, 2), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Project != "fb" || results[1].Project != "fc" {
		t.Fatalf("wrong top-2: %v", resultNames(results))
	}
}

// registryFixture deploys two small projects and registers them on a fleet
// with a tight admission budget, returning fresh serving-day queries per
// project.
func registryFixture(t *testing.T, adm FleetAdmissionConfig) (*FleetRegistry, map[string]*Deployment, map[string][]*query.Query) {
	t.Helper()
	sim := fleetSim(t)
	results, _ := sim.DeployAllCtx(context.Background(), fleetDeployConfig(),
		WithSelector(func(ps *ProjectSim) bool { return ps.Repo.Len() > 0 }, nil, 2))
	cfg := DefaultFleetConfig()
	cfg.Shards = 2
	cfg.CacheBudget = 32
	cfg.InitialGrant = 8
	cfg.Admission = adm
	reg := sim.NewFleet(cfg)
	deps := map[string]*Deployment{}
	qs := map[string][]*query.Query{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if err := reg.Register(r.Project, r.Deployment); err != nil {
			t.Fatal(err)
		}
		deps[r.Project] = r.Deployment
		ps := sim.Project(r.Project)
		for day := 6; len(qs[r.Project]) < 16; day++ {
			qs[r.Project] = append(qs[r.Project], ps.Gen.Day(day)...)
		}
	}
	return reg, deps, qs
}

// TestFleetRouteAdmitsAndGoverns: an admitted Route serves through the full
// ladder and the registry owns the deployment's plan-cache capacity from
// Register on.
func TestFleetRouteAdmitsAndGoverns(t *testing.T) {
	reg, deps, qs := registryFixture(t, FleetAdmissionConfig{
		Burst: 64, RefillPerServe: 1, RefillPerTick: 1,
		StandardCost: 1, RecurringCost: 0.25, RecurringTemplates: 8,
	})
	for name, d := range deps {
		if got := d.Predictor().PlanCacheCap(); got != 8 {
			t.Fatalf("%s: cache not governed at Register, cap %d", name, got)
		}
		c, err := reg.Route(context.Background(), name, qs[name][0])
		if err != nil {
			t.Fatal(err)
		}
		if c == nil || c.FallbackCause != nil && errors.Is(c.FallbackCause, ErrLoadShed) {
			t.Fatalf("%s: admitted query was shed: %+v", name, c)
		}
	}
	if _, err := reg.Route(context.Background(), "nobody", qs["fa"][0]); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
	st := reg.Budget()
	if st.Budget != 32 || st.Tenants != 2 || st.Granted != 16 {
		t.Fatalf("budget status %+v", st)
	}
	// Deregister returns the grant and leaves the tenant's cache empty.
	name := reg.Tenants()[0]
	if !reg.Deregister(name) {
		t.Fatal("deregister failed")
	}
	if got := deps[name].Predictor().PlanCacheCap(); got != 0 {
		t.Fatalf("deregistered tenant keeps cache cap %d", got)
	}
}

// TestFleetRouteShedTrajectory pins the admission trajectory for a drained
// bucket and the shed Choice's shape: native-fallback origin, ErrLoadShed
// wrapping ErrTenantThrottled, no estimates — and sheds never charge the
// guard's breaker, so a throttled tenant recovers instantly after a Tick.
func TestFleetRouteShedTrajectory(t *testing.T) {
	reg, deps, qs := registryFixture(t, FleetAdmissionConfig{
		// Refill 0.5/serve against price 1: 4 burst admits stretch to 7, then
		// the bucket oscillates at the refill rate (admit every other call).
		Burst: 4, RefillPerServe: 0.5, RefillPerTick: 4,
		StandardCost: 1, RecurringCost: 1, RecurringTemplates: 0,
	})
	name := "fa"
	if deps[name] == nil {
		t.Fatalf("fixture lost %s", name)
	}
	want := []bool{true, true, true, true, true, true, true, false, true, false, true, false}
	for i, admit := range want {
		q := qs[name][i%len(qs[name])]
		c, err := reg.Route(context.Background(), name, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if c == nil {
			t.Fatalf("query %d: availability broken, no choice served", i)
		}
		shed := errors.Is(c.FallbackCause, ErrLoadShed)
		if shed == admit {
			t.Fatalf("query %d: admit=%v but shed=%v", i, admit, shed)
		}
		if shed {
			if c.Origin != OriginNativeFallback {
				t.Fatalf("query %d: shed origin %v", i, c.Origin)
			}
			if !errors.Is(c.FallbackCause, ErrTenantThrottled) {
				t.Fatalf("query %d: cause chain lost: %v", i, c.FallbackCause)
			}
			if c.Estimates != nil {
				t.Fatalf("query %d: shed carried estimates", i)
			}
			if c.Chosen == nil {
				t.Fatalf("query %d: shed served no plan", i)
			}
		}
	}
	if got := deps[name].Guard().State(); got != BreakerClosed {
		t.Fatalf("sheds charged the breaker: %v", got)
	}
	// A control-plane Tick restores headroom: the next 4 standard queries
	// admit straight through.
	reg.Tick()
	for i := 0; i < 4; i++ {
		c, err := reg.Route(context.Background(), name, qs[name][i])
		if err != nil || errors.Is(c.FallbackCause, ErrLoadShed) {
			t.Fatalf("post-tick query %d: err=%v cause=%v", i, err, c.FallbackCause)
		}
	}
}

// TestGovernedPromoteCapacity: once a registry governs a deployment, a
// lifecycle promote sizes the fresh cache from the live grant, not the
// deploy-time WithPlanCache capacity.
func TestGovernedPromoteCapacity(t *testing.T) {
	sim := fleetSim(t)
	dep, err := sim.Project("fa").Deploy(fleetDeployConfig(), WithPlanCache(100))
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.promoteCacheCapacity(); got != 100 {
		t.Fatalf("ungoverned promote capacity %d, want the WithPlanCache 100", got)
	}
	dep.setGovernedCache(5)
	if got := dep.Predictor().PlanCacheCap(); got != 5 {
		t.Fatalf("grant not applied to the live cache: cap %d", got)
	}
	if got := dep.promoteCacheCapacity(); got != 5 {
		t.Fatalf("governed promote capacity %d, want the grant 5", got)
	}
	// A zero grant still counts as governed: promoted models start uncached
	// until the tenant earns budget back.
	dep.setGovernedCache(0)
	if got := dep.promoteCacheCapacity(); got != 0 {
		t.Fatalf("zero grant ignored: %d", got)
	}
}

// TestFleetRegistryMixedBackends: deployments and synthetic tenants share one
// registry; Route's typed veneer returns nil for non-Choice backends while
// Registry().Route exposes the native value.
func TestFleetRegistryMixedBackends(t *testing.T) {
	reg, _, qs := registryFixture(t, FleetAdmissionConfig{
		Burst: 8, RefillPerServe: 1, RefillPerTick: 1,
		StandardCost: 1, RecurringCost: 0.5, RecurringTemplates: 4,
	})
	syn := fleet.NewSyntheticTenant("synth", nil)
	if err := reg.RegisterBackend("synth", syn); err != nil {
		t.Fatal(err)
	}
	q := qs["fa"][0]
	c, err := reg.Route(context.Background(), "synth", q)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatalf("synthetic backend produced a *Choice: %+v", c)
	}
	out, err := reg.Registry().Route(context.Background(), "synth", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*fleet.SyntheticChoice); !ok {
		t.Fatalf("native value lost: %T", out)
	}
}
