package loam

import (
	"context"
	"sort"
	"sync"
)

// FleetResult is one project's outcome from DeployAllCtx.
type FleetResult struct {
	Project    string
	Deployment *Deployment
	Err        error
}

// DeployAllCtx trains a deployment for every attached project — or, with
// WithSelector, for the top-N projects the §6 two-stage selection pipeline
// picks — running up to WithParallelism trainings concurrently (default
// sequential). Training reads only per-project state (history, statistics
// views) and never executes plans, so projects train independently; the
// shared cluster is untouched.
//
// Results are returned in project order (selection order under WithSelector):
// one FleetResult per project, failures carried per-entry. The returned error
// is nil when every project deployed, and otherwise a FleetErrors aggregating
// the failures by index and project name.
//
// Cancelling ctx stops the fleet promptly: trainings already running finish
// (training is not interruptible mid-epoch), projects not yet started are
// abandoned with Err wrapping ctx.Err(), so errors.Is(err, context.Canceled)
// reports the cancellation on the aggregate.
//
// Deploy options apply to every project's deployment. Note that sharing one
// registry via WithMetrics across parallel trainings keeps counters and
// histograms exact but makes last-write-wins training gauges depend on
// completion order (see WithMetrics).
func (s *Simulation) DeployAllCtx(ctx context.Context, cfg DeployConfig, opts ...DeployOption) ([]FleetResult, error) {
	o := resolveDeployOptions(opts)
	projects := s.Projects
	if o.selector {
		projects = selectProjects(projects, o.selectorPass, o.selectorScores, o.selectorTopN)
	}
	results := make([]FleetResult, len(projects))
	if err := ctx.Err(); err != nil {
		for i, ps := range projects {
			results[i] = FleetResult{Project: ps.Config.Name, Err: err}
		}
		return results, fleetError(results)
	}

	parallelism := o.parallelism
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(projects) {
		parallelism = len(projects)
	}

	// Workers never write results directly: each outcome travels the out
	// channel and the feeding goroutine's collector is the only writer into
	// the results slice. (The old DeployAll had workers write results[i] in
	// place — safe only because indices never collide, and invisible to
	// reviewers; the channel makes the ownership transfer explicit.)
	type item struct {
		i   int
		res FleetResult
	}
	jobs := make(chan int)
	out := make(chan item)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ps := projects[i]
				if err := ctx.Err(); err != nil {
					// Dispatched but not started when the fleet was
					// cancelled: report the cancellation, skip the training.
					out <- item{i, FleetResult{Project: ps.Config.Name, Err: err}}
					continue
				}
				// ps.Deploy already wraps failures as "deploy <name>: …";
				// wrapping again here would double the prefix.
				dep, err := ps.Deploy(cfg, opts...)
				out <- item{i, FleetResult{Project: ps.Config.Name, Deployment: dep, Err: err}}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	cut := len(projects)
	go func() {
		defer close(jobs)
		for i := range projects {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Indices >= i were never dispatched; the collector fills
				// them after the workers drain.
				cut = i
				return
			}
		}
	}()

	for it := range out {
		results[it.i] = it.res
	}
	for i := cut; i < len(projects); i++ {
		results[i] = FleetResult{Project: projects[i].Config.Name, Err: ctx.Err()}
	}
	return results, fleetError(results)
}

// selectProjects runs the §6 two-stage selection: filter on the pass
// predicate, rank by score (projects absent from scores rank last — the zero
// value would otherwise let an unscored project tie at 0.0 and outrank a
// negatively-scored survivor), keep the top N.
func selectProjects(projects []*ProjectSim, pass func(*ProjectSim) bool, scores map[string]float64, topN int) []*ProjectSim {
	type scored struct {
		ps      *ProjectSim
		score   float64
		present bool
	}
	var survivors []scored
	for _, ps := range projects {
		if pass != nil && !pass(ps) {
			continue
		}
		sc, ok := scores[ps.Config.Name]
		survivors = append(survivors, scored{ps: ps, score: sc, present: ok})
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].present != survivors[j].present {
			return survivors[i].present
		}
		if survivors[i].score != survivors[j].score {
			return survivors[i].score > survivors[j].score
		}
		return survivors[i].ps.Config.Name < survivors[j].ps.Config.Name
	})
	if topN > 0 && len(survivors) > topN {
		survivors = survivors[:topN]
	}
	out := make([]*ProjectSim, len(survivors))
	for i, sv := range survivors {
		out[i] = sv.ps
	}
	return out
}

// DeployAll trains a deployment for every attached project with up to
// parallelism trainings in flight.
//
// Deprecated: use DeployAllCtx with WithParallelism — it adds cancellation
// and a typed FleetErrors aggregate. This wrapper keeps the original
// positional signature and results-only return.
func (s *Simulation) DeployAll(cfg DeployConfig, parallelism int, opts ...DeployOption) []FleetResult {
	results, _ := s.DeployAllCtx(context.Background(), cfg,
		append([]DeployOption{WithParallelism(parallelism)}, opts...)...)
	return results
}

// SelectAndDeploy runs the full §6 pipeline over the simulation's projects:
// filter, score, train deployments for the top-N.
//
// Deprecated: use DeployAllCtx with WithSelector and WithParallelism — it
// adds cancellation and a typed FleetErrors aggregate. This wrapper keeps the
// original positional signature and results-only return.
func (s *Simulation) SelectAndDeploy(cfg DeployConfig, pass func(*ProjectSim) bool, scores map[string]float64, topN int, parallelism int, opts ...DeployOption) []FleetResult {
	results, _ := s.DeployAllCtx(context.Background(), cfg,
		append([]DeployOption{WithParallelism(parallelism), WithSelector(pass, scores, topN)}, opts...)...)
	return results
}
