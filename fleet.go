package loam

import (
	"sort"
	"sync"
)

// FleetResult is one project's outcome from DeployAll.
type FleetResult struct {
	Project    string
	Deployment *Deployment
	Err        error
}

// DeployAll trains a deployment for every attached project, running up to
// parallelism trainings concurrently (≤1 means sequential). Training reads
// only per-project state (history, statistics views) and never executes
// plans, so projects train independently; the shared cluster is untouched.
//
// Results are returned in project order. A project whose training fails
// (e.g. no history) carries its error; others are unaffected.
//
// Deploy options apply to every project's deployment. Note that sharing one
// registry via WithMetrics across parallel trainings keeps counters and
// histograms exact but makes last-write-wins training gauges depend on
// completion order (see WithMetrics).
func (s *Simulation) DeployAll(cfg DeployConfig, parallelism int, opts ...DeployOption) []FleetResult {
	if parallelism < 1 {
		parallelism = 1
	}
	results := make([]FleetResult, len(s.Projects))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ps := s.Projects[i]
				// ps.Deploy already wraps failures as "deploy <name>: …";
				// wrapping again here would double the prefix.
				dep, err := ps.Deploy(cfg, opts...)
				results[i] = FleetResult{Project: ps.Config.Name, Deployment: dep, Err: err}
			}
		}()
	}
	for i := range s.Projects {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// SelectAndDeploy runs the full §6 pipeline over the simulation's projects:
// compute the App.-D.1 filter metrics from each history, filter, score the
// survivors with the given ranker scores, and train deployments for the
// top-N. Projects without enough history are reported, not fatal.
//
// scores maps project name → estimated improvement space (e.g. from a
// trained selector.Ranker); projects absent from scores rank last.
func (s *Simulation) SelectAndDeploy(cfg DeployConfig, pass func(*ProjectSim) bool, scores map[string]float64, topN int, parallelism int, opts ...DeployOption) []FleetResult {
	type scored struct {
		ps      *ProjectSim
		score   float64
		present bool
	}
	var survivors []scored
	for _, ps := range s.Projects {
		if pass != nil && !pass(ps) {
			continue
		}
		// Track map presence explicitly: the zero value would otherwise let
		// an unscored project tie at 0.0 and outrank a negatively-scored
		// survivor, instead of ranking last as documented.
		sc, ok := scores[ps.Config.Name]
		survivors = append(survivors, scored{ps: ps, score: sc, present: ok})
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].present != survivors[j].present {
			return survivors[i].present
		}
		if survivors[i].score != survivors[j].score {
			return survivors[i].score > survivors[j].score
		}
		return survivors[i].ps.Config.Name < survivors[j].ps.Config.Name
	})
	if topN > 0 && len(survivors) > topN {
		survivors = survivors[:topN]
	}

	sub := &Simulation{Cluster: s.Cluster, rng: s.rng, tel: s.tel}
	for _, sv := range survivors {
		sub.Projects = append(sub.Projects, sv.ps)
	}
	return sub.DeployAll(cfg, parallelism, opts...)
}
