package loam

import (
	"fmt"
	"strings"

	"loam/internal/query"
)

// BatchError is one query's failure inside OptimizeBatch: which batch index
// failed, the query itself, and the underlying cause.
type BatchError struct {
	Index int
	Query *query.Query
	Err   error
}

// Error formats the failure with its batch position.
func (e *BatchError) Error() string {
	id := "?"
	if e.Query != nil {
		id = e.Query.ID
	}
	return fmt.Sprintf("batch[%d] %s: %v", e.Index, id, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Err }

// BatchErrors is OptimizeBatch's typed error surface: one entry per failed
// query, in batch order. It replaces the PR-1 errors.Join blob — callers
// can now tell WHICH queries failed and why without parsing message text:
//
//	var be loam.BatchErrors
//	if errors.As(err, &be) {
//	    for _, e := range be { retry(e.Index, e.Query) }
//	}
//
// errors.Is sees through both levels (BatchErrors → BatchError → cause), so
// errors.Is(err, context.Canceled) and errors.Is(err,
// predictor.ErrNoCandidates) keep working.
type BatchErrors []*BatchError

// Error summarizes the failures: the count plus the first few entries.
func (es BatchErrors) Error() string {
	const show = 3
	parts := make([]string, 0, show+1)
	for i, e := range es {
		if i == show {
			parts = append(parts, fmt.Sprintf("... and %d more", len(es)-show))
			break
		}
		parts = append(parts, e.Error())
	}
	return fmt.Sprintf("optimize batch: %d queries failed: %s", len(es), strings.Join(parts, "; "))
}

// Unwrap exposes every per-query failure to errors.Is / errors.As.
func (es BatchErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// batchError assembles the typed error surface from per-index failures,
// or nil when everything succeeded.
func batchError(qs []*query.Query, errs []error) error {
	var es BatchErrors
	for i, err := range errs {
		if err != nil {
			es = append(es, &BatchError{Index: i, Query: qs[i], Err: err})
		}
	}
	if len(es) == 0 {
		return nil
	}
	return es
}
