package loam

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"loam/internal/predictor"
	"loam/internal/query"
)

// guardedDeployment is serveDeployment with deploy options — used to arm
// fault injectors and tune the guard for the resilience acceptance tests.
func guardedDeployment(t *testing.T, seed uint64, nQueries int, opts ...DeployOption) (*Deployment, []*query.Query) {
	t.Helper()
	_, ps := tinyProject(t, seed)
	ps.RunDays(0, 6)
	dcfg := DefaultDeployConfig()
	dcfg.TrainDays = 5
	dcfg.TestDays = 1
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var qs []*query.Query
	for day := 6; len(qs) < nQueries; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	return dep, qs[:nQueries]
}

// TestFullOutageBatchServesEveryQuery is the tentpole acceptance test: with
// the injector forcing a 100% learned-path failure rate, a parallel
// OptimizeBatch still returns a valid non-nil Choice for every query — all
// from fallback rungs, all carrying the injected transient cause — and a
// fallback choice executes normally.
func TestFullOutageBatchServesEveryQuery(t *testing.T) {
	inj := NewFaultInjector(7, FaultInjectorConfig{PredictorErrorRate: 1})
	dep, qs := guardedDeployment(t, 51, 16, WithFaultInjector(inj))

	choices, err := dep.OptimizeBatch(context.Background(), qs, 4)
	if err != nil {
		t.Fatalf("full outage surfaced a batch error: %v", err)
	}
	for i, c := range choices {
		if c == nil || c.Chosen == nil {
			t.Fatalf("query %d: no plan served during outage", i)
		}
		if c.Origin == OriginLearned {
			t.Fatalf("query %d: learned origin under 100%% failure injection", i)
		}
		if !errors.Is(c.FallbackCause, ErrTransientFailure) {
			t.Fatalf("query %d: cause %v not transient", i, c.FallbackCause)
		}
		// Rejected calls fall back on the open breaker; admitted ones on the
		// injected fault itself.
		if !errors.Is(c.FallbackCause, ErrInjectedFault) && !errors.Is(c.FallbackCause, ErrBreakerOpen) {
			t.Fatalf("query %d: unexpected cause %v", i, c.FallbackCause)
		}
		if c.Estimates != nil {
			t.Fatalf("query %d: fallback choice carries learned estimates", i)
		}
	}
	// A native-fallback re-plan is not among the explorer's candidates.
	if choices[0].ChosenIdx != -1 {
		t.Fatalf("native fallback ChosenIdx = %d, want -1", choices[0].ChosenIdx)
	}
	if rec := dep.ExecuteChoice(choices[0]); rec == nil || rec.CPUCost <= 0 {
		t.Fatalf("fallback choice did not execute: %+v", rec)
	}
}

// TestFullOutageTelemetryByteIdentical: two identically-seeded outage runs
// snapshot byte-identically. Serving is sequential here so the breaker's
// arrival-order transitions are pinned; every guard.* value is an
// order-independent count, and the parallel-availability half of the
// acceptance lives in TestFullOutageBatchServesEveryQuery.
func TestFullOutageTelemetryByteIdentical(t *testing.T) {
	outageRun := func() string {
		sim, ps := tinyProject(t, 52)
		ps.RunDays(0, 6)
		dcfg := DefaultDeployConfig()
		dcfg.TrainDays = 5
		dcfg.TestDays = 1
		dcfg.Predictor.Epochs = 2
		dcfg.DomainPlans = 8
		inj := NewFaultInjector(8, FaultInjectorConfig{PredictorErrorRate: 1})
		dep, err := ps.Deploy(dcfg, WithMetrics(sim.Telemetry()), WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		var qs []*query.Query
		for day := 6; len(qs) < 12; day++ {
			qs = append(qs, ps.Gen.Day(day)...)
		}
		if _, err := dep.OptimizeBatch(context.Background(), qs[:12], 1); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sim.Metrics().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := outageRun()
	if b := outageRun(); a != b {
		t.Fatalf("same-seed outage snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	for _, want := range []string{
		"counter guard.serve.total 12",
		"counter guard.serve.learned 0",
		"counter guard.fallback.native 12",
		"counter guard.inject.predictor_errors",
		"gauge guard.breaker.state",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, a)
		}
	}
}

// TestNaNInjectionClassifiedPermanent: a corrupted (all-NaN) estimate vector
// degrades with a cause matching both the root ErrNoFiniteEstimate sentinel
// and ErrInjectedFault.
func TestNaNInjectionClassifiedPermanent(t *testing.T) {
	inj := NewFaultInjector(9, FaultInjectorConfig{NaNRate: 1})
	dep, qs := guardedDeployment(t, 53, 1, WithFaultInjector(inj))
	c, err := dep.Optimize(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Origin == OriginLearned {
		t.Fatal("learned origin with all-NaN estimates")
	}
	if !errors.Is(c.FallbackCause, ErrNoFiniteEstimate) || !errors.Is(c.FallbackCause, ErrInjectedFault) {
		t.Fatalf("cause %v, want injected no-finite-estimate", c.FallbackCause)
	}
	if !errors.Is(c.FallbackCause, ErrPermanentFailure) {
		t.Fatalf("cause %v not classified permanent", c.FallbackCause)
	}
}

// TestNativeFailureFallsToDefault: when both the learned path and the native
// re-plan are failing, the pre-generated default candidate serves.
func TestNativeFailureFallsToDefault(t *testing.T) {
	inj := NewFaultInjector(10, FaultInjectorConfig{PredictorErrorRate: 1, NativeFailRate: 1})
	dep, qs := guardedDeployment(t, 54, 1, WithFaultInjector(inj))
	c, err := dep.Optimize(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Origin != OriginDefaultFallback {
		t.Fatalf("origin %v, want default fallback", c.Origin)
	}
	if c.ChosenIdx != 0 || c.Chosen != c.Candidates[0] {
		t.Fatalf("default fallback chose index %d, want candidate 0", c.ChosenIdx)
	}
}

// TestWithGuardConfigWiring: a custom breaker configuration reaches the
// deployment's guard and drives its transitions.
func TestWithGuardConfigWiring(t *testing.T) {
	cfg := DefaultGuardConfig()
	cfg.WindowSize = 2
	cfg.TripThreshold = 1
	cfg.CooldownSteps = 100
	inj := NewFaultInjector(11, FaultInjectorConfig{PredictorErrorRate: 1})
	dep, qs := guardedDeployment(t, 55, 2, WithFaultInjector(inj), WithGuardConfig(cfg))

	if got := dep.Guard().Config().TripThreshold; got != 1 {
		t.Fatalf("guard TripThreshold = %d, want 1", got)
	}
	if _, err := dep.Optimize(qs[0]); err != nil {
		t.Fatal(err)
	}
	if got := dep.Guard().State(); got != BreakerOpen {
		t.Fatalf("state %v after single failure with threshold 1, want open", got)
	}
	c, err := dep.Optimize(qs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(c.FallbackCause, ErrBreakerOpen) {
		t.Fatalf("cause %v, want breaker-open rejection", c.FallbackCause)
	}
}

// TestHealthyServingStaysLearned: without an injector the guard is
// transparent — every choice is learned, with estimates, no fallback cause.
func TestHealthyServingStaysLearned(t *testing.T) {
	dep, qs := guardedDeployment(t, 56, 6)
	for i, q := range qs {
		c, err := dep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if c.Origin != OriginLearned || c.FallbackCause != nil {
			t.Fatalf("query %d: origin %v cause %v on healthy path", i, c.Origin, c.FallbackCause)
		}
		if len(c.Estimates) != len(c.Candidates) || c.ChosenIdx < 0 {
			t.Fatalf("query %d: learned choice missing estimates or index", i)
		}
	}
	if dep.Guard().State() != BreakerClosed || dep.Guard().Quarantined() {
		t.Fatal("healthy serving disturbed the guard")
	}
}

// TestRootSentinelsAliasInternalOnes: satellite of the resilience surface —
// the root sentinels are the same error values the internal packages
// produce, so errors.Is works across the API boundary.
func TestRootSentinelsAliasInternalOnes(t *testing.T) {
	pairs := []struct {
		name       string
		root, deep error
	}{
		{"ErrNoTrainingData", ErrNoTrainingData, predictor.ErrNoTrainingData},
		{"ErrNoCandidates", ErrNoCandidates, predictor.ErrNoCandidates},
		{"ErrNoFiniteEstimate", ErrNoFiniteEstimate, predictor.ErrNoFiniteEstimate},
	}
	for _, p := range pairs {
		if p.root != p.deep || !errors.Is(p.root, p.deep) {
			t.Errorf("%s is not the internal sentinel", p.name)
		}
	}
	if ErrTransientFailure == nil || ErrPermanentFailure == nil || ErrLearnedDeadline == nil ||
		ErrBreakerOpen == nil || ErrModelQuarantined == nil || ErrNoServablePlan == nil ||
		ErrInjectedFault == nil {
		t.Fatal("nil resilience sentinel")
	}
}
