package loam

import (
	"loam/internal/predictor"
	"loam/internal/telemetry"
)

// DeployOption configures a deployment at Deploy / DeployFromModel /
// DeployAll time. Options replace post-hoc field mutation as the way to
// shape a deployment: the Strategy field stays readable, but writes go
// through WithStrategy (at deploy time) or SetStrategy (afterwards).
type DeployOption func(*deployOptions)

// deployOptions is the resolved option set.
type deployOptions struct {
	strategy predictor.Strategy
	metrics  *telemetry.Registry
}

// resolveDeployOptions applies opts over the defaults: the paper's MeanEnv
// inference strategy (§5) and a fresh private metrics registry.
func resolveDeployOptions(opts []DeployOption) deployOptions {
	o := deployOptions{
		strategy: predictor.StrategyMeanEnv,
		metrics:  telemetry.NewRegistry(),
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// WithStrategy selects the deployment's inference strategy (§5, §7.2.5)
// instead of the default StrategyMeanEnv.
func WithStrategy(s predictor.Strategy) DeployOption {
	return func(o *deployOptions) { o.strategy = s }
}

// WithMetrics routes the deployment's telemetry — serving counters and
// latency timers, training losses, plan-selection statistics — into reg
// instead of a fresh private registry. Pass one registry to several
// deployments (or a Simulation's registry, see Simulation.Telemetry) to
// aggregate a fleet into one snapshot; instruments are concurrency-safe, and
// every snapshot value stays order-independent, but sharing one registry
// across concurrently TRAINING deployments makes last-write-wins gauges
// (train.final_cost_loss) depend on completion order.
func WithMetrics(reg *telemetry.Registry) DeployOption {
	return func(o *deployOptions) { o.metrics = reg }
}
