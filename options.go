package loam

import (
	"loam/internal/atomicio"
	"loam/internal/faultinject"
	"loam/internal/guard"
	"loam/internal/predictor"
	"loam/internal/telemetry"
)

// DeployOption configures a deployment at Deploy / DeployFromModel /
// DeployAll time. Options replace post-hoc field mutation as the way to
// shape a deployment: the Strategy field stays readable, but writes go
// through WithStrategy (at deploy time) or SetStrategy (afterwards).
type DeployOption func(*deployOptions)

// DefaultPlanCacheCapacity is the plan-embedding cache size deployments get
// unless WithPlanCache overrides it: comfortably larger than a day's distinct
// (plan, environment) pairs at simulator scale, small enough that even
// embedding-heavy models stay within a few MB.
const DefaultPlanCacheCapacity = 4096

// deployOptions is the resolved option set. The fleet-level fields
// (parallelism, selector) only matter to DeployAllCtx; single-project
// Deploy/DeployFromModel ignore them.
type deployOptions struct {
	strategy   predictor.Strategy
	metrics    *telemetry.Registry
	guardCfg   guard.Config
	injector   *faultinject.Injector
	planCache  int
	scoring    *predictor.ScoringConfig
	microBatch int
	lifecycle  *LifecycleConfig
	durableDir string
	durableFS  *atomicio.FS

	parallelism    int
	selector       bool
	selectorPass   func(*ProjectSim) bool
	selectorScores map[string]float64
	selectorTopN   int
}

// resolveDeployOptions applies opts over the defaults: the paper's MeanEnv
// inference strategy (§5), a fresh private metrics registry, the default
// guard configuration, the default plan-embedding cache and no fault
// injector.
func resolveDeployOptions(opts []DeployOption) deployOptions {
	o := deployOptions{
		strategy:    predictor.StrategyMeanEnv,
		metrics:     telemetry.NewRegistry(),
		guardCfg:    guard.DefaultConfig(),
		planCache:   DefaultPlanCacheCapacity,
		parallelism: 1,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// WithStrategy selects the deployment's inference strategy (§5, §7.2.5)
// instead of the default StrategyMeanEnv.
func WithStrategy(s predictor.Strategy) DeployOption {
	return func(o *deployOptions) { o.strategy = s }
}

// WithMetrics routes the deployment's telemetry — serving counters and
// latency timers, training losses, plan-selection statistics — into reg
// instead of a fresh private registry. Pass one registry to several
// deployments (or a Simulation's registry, see Simulation.Telemetry) to
// aggregate a fleet into one snapshot; instruments are concurrency-safe, and
// every snapshot value stays order-independent, but sharing one registry
// across concurrently TRAINING deployments makes last-write-wins gauges
// (train.final_cost_loss) depend on completion order.
func WithMetrics(reg *telemetry.Registry) DeployOption {
	return func(o *deployOptions) { o.metrics = reg }
}

// WithGuardConfig tunes the deployment's serving guard — the learned-path
// deadline, the circuit breaker's window/threshold/cooldown, and the
// regression sentinel's divergence band (see GuardConfig). Zero fields keep
// their defaults, except Deadline, where an explicit zero disables the
// learned-path watchdog entirely.
func WithGuardConfig(cfg GuardConfig) DeployOption {
	return func(o *deployOptions) { o.guardCfg = cfg }
}

// WithPlanCache sizes the deployment's plan-embedding cache (default
// DefaultPlanCacheCapacity). The cache memoizes backbone embeddings keyed by
// the plan's structural fingerprint and the inference environment's identity;
// recurring queries then skip the encoder and backbone forward entirely, and
// only re-score the cached embedding through the cost head. Cached scoring is
// bit-identical to uncached scoring. capacity <= 0 disables caching. Each
// Deploy/DeployFromModel installs a fresh cache, so a retrained or reloaded
// model never sees embeddings from older weights.
func WithPlanCache(capacity int) DeployOption {
	return func(o *deployOptions) { o.planCache = capacity }
}

// ScoringConfig aliases predictor.ScoringConfig — the WithScoringConfig
// payload: parallel-embedding threshold and quantized-inference mode.
type ScoringConfig = predictor.ScoringConfig

// WithScoringConfig shapes how the deployment's predictor scores candidate
// sets (see predictor.ScoringConfig): the sequential-vs-parallel embedding
// threshold, and quantized inference. Quantized scoring routes plan selection
// through an int8/f32 cost head under the argmin-preservation contract — the
// quantized scores are used only when their rigorous error bounds prove the
// f64 argmin unchanged, and every uncertifiable batch silently recomputes on
// the bit-exact f64 path (counted in predictor.quant.fallbacks) — so the
// chosen plans are identical with the option on or off. PredictCost point
// estimates always stay pure f64. Without this option the predictor keeps
// its existing configuration (the defaults for a fresh training run, or
// whatever a restored snapshot carries).
func WithScoringConfig(cfg ScoringConfig) DeployOption {
	return func(o *deployOptions) { o.scoring = &cfg }
}

// WithMicroBatch enables cross-query micro-batching on the serving fast
// path: up to window concurrent Optimize calls that land on the learned path
// together are coalesced into one fused cost-head pass, and sequential
// OptimizeBatch drives whole chunks of that size through the fused pass
// deterministically (observed in the serve.batch.coalesced histogram).
// Coalescing never changes any query's chosen plan or estimates — group
// scoring is row-independent — and never delays a lone request (flushes are
// driven by arrival, not timers; the window is measured in serve calls, not
// wall time). window <= 1 disables coalescing (the default).
func WithMicroBatch(window int) DeployOption {
	return func(o *deployOptions) { o.microBatch = window }
}

// WithLifecycle attaches a model lifecycle manager to the deployment: every
// ExecuteChoice feeds a bounded feedback store, drift (prediction-vs-actual
// divergence, or the guard sentinel's quarantine trips) triggers a
// deterministic retrain, the retrained model is shadow-scored against the
// incumbent on the recent feedback window, and an accepted model is
// hot-swapped in atomically — with automatic rollback if the sentinel trips
// on the promoted model while its predecessor is still on file. Zero config
// fields take defaults (see LifecycleConfig); pass DefaultLifecycleConfig()
// for the standard loop.
func WithLifecycle(cfg LifecycleConfig) DeployOption {
	return func(o *deployOptions) { o.lifecycle = &cfg }
}

// WithParallelism bounds how many projects DeployAllCtx trains concurrently
// (default 1 — sequential; values below 1 are treated as 1). Training reads
// only per-project state, so parallel trainings are independent; see
// WithMetrics for the one caveat about sharing a registry across them.
// Single-project Deploy/DeployFromModel ignore the option.
func WithParallelism(n int) DeployOption {
	return func(o *deployOptions) { o.parallelism = n }
}

// WithSelector restricts DeployAllCtx to the §6 two-stage selection pipeline:
// pass filters projects on their App.-D.1 metrics (nil keeps all), scores
// maps project name → estimated improvement space (e.g. from a trained
// selector.Ranker), and the top-N survivors by score train. Projects absent
// from scores rank last; topN <= 0 keeps every survivor. Single-project
// Deploy/DeployFromModel ignore the option.
func WithSelector(pass func(*ProjectSim) bool, scores map[string]float64, topN int) DeployOption {
	return func(o *deployOptions) {
		o.selector = true
		o.selectorPass = pass
		o.selectorScores = scores
		o.selectorTopN = topN
	}
}

// WithDurableStore roots the deployment's crash-safe persistence at dir (see
// DESIGN.md "Durability & recovery contract"). Deploy and DeployFromModel
// commit an initial checkpoint there; with a lifecycle attached, every
// promote, rollback and probation clearance commits another, and every
// harvested feedback observation is journaled so the drift detector resumes
// its real window after a restart. Restore the state with
// ProjectSim.RestoreDeployment(dir, ...). An empty dir (or no option) keeps
// the deployment's continual-learning state in memory only.
func WithDurableStore(dir string) DeployOption {
	return func(o *deployOptions) { o.durableDir = dir }
}

// WithDurableFS routes the deployment's durable writes through fs instead of
// atomicio.Default — the seam chaos tests and the kill-point recovery harness
// use to inject torn writes, partial renames and crashes at exact write
// points. Serving code never needs it.
func WithDurableFS(fs *atomicio.FS) DeployOption {
	return func(o *deployOptions) { o.durableFS = fs }
}

// WithFaultInjector arms the deployment with a deterministic fault injector
// (see NewFaultInjector): injected predictor errors, NaN estimates, deadline
// stalls, native-planner failures and cluster load spikes exercise the
// guard's fallback ladder without touching the model. The injector is bound
// to the project's cluster at deploy time so load-spike faults perturb the
// live environment the way a real noisy neighbor would. Pass nil (or no
// option) to serve without injection; injection decisions are pure functions
// of (injector seed, fault kind, query ID), so same-seed runs inject
// identically regardless of serving order or parallelism.
func WithFaultInjector(inj *FaultInjector) DeployOption {
	return func(o *deployOptions) { o.injector = inj }
}
