package loam

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"loam/internal/durable"
	"loam/internal/encoding"
	"loam/internal/exec"
	"loam/internal/feedback"
	"loam/internal/floatsafe"
	"loam/internal/plan"
	"loam/internal/predictor"
)

// This file is the model lifecycle seam: the one place a deployment's
// serving predictor is ever replaced. The paper's deployment story (§6–§7)
// retrains LOAM continually from executed-query feedback; the lifecycle
// manager closes that loop — harvest feedback from every ExecuteChoice,
// detect drift (prediction-vs-actual divergence, or the serving guard's
// regression-sentinel quarantine), retrain deterministically, shadow-score
// the retrained model against the incumbent on the recent feedback window,
// hot-swap an accepted model in atomically, and roll back automatically if
// the sentinel trips on the promoted model during probation. See DESIGN.md
// "Model lifecycle contract".

// DriftConfig tunes the lifecycle's prediction-vs-actual drift detector; see
// the field docs in internal/feedback.
type DriftConfig = feedback.DriftConfig

// DefaultDriftConfig returns the drift-detector settings lifecycles use when
// LifecycleConfig.Drift is left zero.
func DefaultDriftConfig() DriftConfig { return feedback.DefaultDriftConfig() }

// LifecycleConfig tunes the model lifecycle loop; attach one with
// WithLifecycle. Zero fields take the DefaultLifecycleConfig values.
type LifecycleConfig struct {
	// FeedbackCapacity bounds the feedback store (entries retained, newest
	// win). The retained window is a pure function of the append sequence,
	// so same-seed runs retrain from identical sets.
	FeedbackCapacity int
	// Drift configures the prediction-vs-actual drift detector. The guard's
	// regression sentinel is the second, independent drift trigger; both
	// signals feed the same retrain path.
	Drift DriftConfig
	// RetrainWindow is how many of the newest feedback entries form the
	// retrain set.
	RetrainWindow int
	// ShadowWindow is how many of the newest feedback entries the shadow
	// scorer replays through both models when deciding a promotion.
	ShadowWindow int
	// MinFeedback is how many retained entries a retrain attempt requires; a
	// drift signal arriving earlier stays pending until the store fills.
	MinFeedback int
	// AcceptTolerance is the shadow-score slack: a candidate is promoted iff
	// its mean log-error beats incumbentErr × (1 + AcceptTolerance). The
	// comparison is NaN-closed (floatsafe.Less): a candidate that cannot be
	// scored is never promoted; an incumbent that cannot be scored always
	// loses to a scorable candidate.
	AcceptTolerance float64
	// Probation is how many post-promote observations the predecessor model
	// is kept on file: a drift signal inside the window rolls the promotion
	// back; surviving it discards the predecessor.
	Probation int
	// DomainPlans caps the unexecuted candidate plans generated for domain
	// alignment during retrain (§4); <= 0 keeps the default. Retrains skip
	// domain alignment entirely when the base predictor config has Adapt
	// off.
	DomainPlans int
}

// DefaultLifecycleConfig returns the serving-scale lifecycle loop: a 1024-
// entry feedback ring, the default drift detector, retrains over the newest
// 256 entries shadow-scored on the newest 64, and a 32-observation
// probation.
func DefaultLifecycleConfig() LifecycleConfig {
	return LifecycleConfig{
		FeedbackCapacity: feedback.DefaultCapacity,
		Drift:            DefaultDriftConfig(),
		RetrainWindow:    256,
		ShadowWindow:     64,
		MinFeedback:      48,
		AcceptTolerance:  0.1,
		Probation:        32,
		DomainPlans:      32,
	}
}

// normalize fills zero fields from the defaults.
func (c LifecycleConfig) normalize() LifecycleConfig {
	d := DefaultLifecycleConfig()
	if c.FeedbackCapacity <= 0 {
		c.FeedbackCapacity = d.FeedbackCapacity
	}
	if c.RetrainWindow <= 0 {
		c.RetrainWindow = d.RetrainWindow
	}
	if c.ShadowWindow <= 0 {
		c.ShadowWindow = d.ShadowWindow
	}
	if c.MinFeedback <= 0 {
		c.MinFeedback = d.MinFeedback
	}
	if c.AcceptTolerance <= 0 {
		c.AcceptTolerance = d.AcceptTolerance
	}
	if c.Probation <= 0 {
		c.Probation = d.Probation
	}
	if c.DomainPlans <= 0 {
		c.DomainPlans = d.DomainPlans
	}
	return c
}

// Lifecycle manages a deployment's model across its serving life. It owns
// the only two writes to the deployment's predictor pointer — promote and
// rollback — and pairs each with a guard scorer swap, so the serving ladder
// and the environment source always describe the same model family. All
// reactions run synchronously on the goroutine that executed the triggering
// query; a mutex serializes them, so concurrent executors never interleave
// retrains.
type Lifecycle struct {
	d   *Deployment
	cfg LifecycleConfig
	tel lifecycleTelemetry

	// sentinel is set by the guard's drift hook (outside the guard lock)
	// when the regression sentinel quarantines the model, and consumed at
	// the next observation or Tick.
	sentinel atomic.Bool

	mu    sync.Mutex
	store *feedback.Store
	det   *feedback.Detector
	// baseCfg is the config the deployment's original model was trained
	// with; retrain attempt n uses baseCfg with Seed+n, so every candidate
	// model is a deterministic descendant of the incumbent lineage.
	baseCfg predictor.Config
	// version is the serving model's lineage number (the first deploy is 1);
	// next is the number the next trained candidate takes. Failed or
	// rejected attempts still consume a number, so no two trained models
	// ever share a seed.
	version, next int
	// prev holds the pre-promote incumbent during probation; prevVer its
	// version. nil outside probation.
	prev           *predictor.Predictor
	prevVer        int
	probationLeft  int
	pendingRetrain bool
}

// newLifecycle wires a lifecycle manager to a freshly built deployment.
func newLifecycle(d *Deployment, cfg LifecycleConfig) *Lifecycle {
	cfg = cfg.normalize()
	lc := &Lifecycle{
		d:       d,
		cfg:     cfg,
		tel:     newLifecycleTelemetry(d.tel),
		store:   feedback.NewStore(cfg.FeedbackCapacity),
		det:     feedback.NewDetector(cfg.Drift),
		baseCfg: d.pred.Load().Config(),
		version: 1,
		next:    2,
	}
	lc.tel.modelVersion.Set(1)
	return lc
}

// Config returns the lifecycle's normalized configuration.
func (lc *Lifecycle) Config() LifecycleConfig { return lc.cfg }

// Version returns the serving model's lineage version: 1 for the model
// Deploy trained, incremented by every promotion, restored by a rollback.
func (lc *Lifecycle) Version() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.version
}

// InProbation reports whether a freshly promoted model is still serving
// under probation (its predecessor retained for rollback).
func (lc *Lifecycle) InProbation() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.prev != nil
}

// FeedbackLen returns the number of retained feedback entries.
func (lc *Lifecycle) FeedbackLen() int { return lc.store.Len() }

// FeedbackTotal returns the number of feedback entries ever harvested.
func (lc *Lifecycle) FeedbackTotal() int64 { return lc.store.Total() }

// noteSentinelTrip is the guard's drift hook: called on the serving
// goroutine, after the guard lock is released, when the regression sentinel
// quarantines the model. The lifecycle reacts at the next observation (or
// Tick) rather than inline, keeping the serve call's latency clean.
func (lc *Lifecycle) noteSentinelTrip() { lc.sentinel.Store(true) }

// Tick gives the lifecycle a reaction point without a new observation —
// for serving-only workloads that never call ExecuteChoice but still want a
// sentinel quarantine to trigger rollback or retrain.
func (lc *Lifecycle) Tick() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.reactLocked(false)
}

// observe harvests one executed choice into the feedback store and runs the
// lifecycle reaction: drift detection on learned-origin entries, then —
// when a drift or sentinel signal is live — rollback (under probation) or
// retrain → shadow-score → promote.
func (lc *Lifecycle) observe(c *Choice, rec *exec.Record) {
	predicted := math.NaN()
	if c.Origin == OriginLearned && c.ChosenIdx >= 0 && c.ChosenIdx < len(c.Estimates) {
		predicted = c.Estimates[c.ChosenIdx]
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.store.Add(feedback.Entry{Query: c.Query, Record: rec, Predicted: predicted})
	lc.tel.feedbackHarvested.Inc()
	lc.tel.feedbackSize.Set(float64(lc.store.Len()))
	// Journal before the detector reacts: if the reaction checkpoints (and
	// resets the journal), this record was part of the window that reset.
	lc.d.journalObservation(predicted, rec.CPUCost)
	lc.reactLocked(lc.det.Observe(predicted, rec.CPUCost))
}

// reactLocked folds the two drift triggers into one pending-retrain state
// and services it: a signal during probation indicts the promoted model and
// rolls it back; otherwise a retrain attempt runs as soon as enough feedback
// is retained. Callers hold lc.mu.
func (lc *Lifecycle) reactLocked(detectorFired bool) {
	if lc.sentinel.Swap(false) || detectorFired {
		lc.tel.driftSignals.Inc()
		lc.pendingRetrain = true
	}
	if lc.pendingRetrain {
		lc.pendingRetrain = false
		if lc.prev != nil {
			lc.rollbackLocked()
			return
		}
		if lc.store.Len() < lc.cfg.MinFeedback {
			// Not enough feedback to retrain from yet: keep the signal
			// pending and retry as observations accumulate. The incumbent
			// stays quarantined (serving the native fallback) meanwhile.
			lc.pendingRetrain = true
			return
		}
		lc.retrainLocked()
		return
	}
	// Quiet observation: run down the probation clock.
	if lc.prev != nil {
		lc.probationLeft--
		if lc.probationLeft <= 0 {
			lc.prev, lc.prevVer = nil, 0
			lc.persistProbationClear()
		}
	}
}

// retrainLocked trains a candidate model from the recent feedback window,
// shadow-scores it against the incumbent, and promotes it if it wins. A
// failed or rejected attempt changes nothing: the incumbent keeps serving
// (or keeps its quarantine fallback). Callers hold lc.mu.
func (lc *Lifecycle) retrainLocked() {
	candVer := lc.next
	lc.next++
	lc.tel.retrainRuns.Inc()
	if lc.d.inj.RetrainFail(fmt.Sprintf("v%d", candVer)) {
		lc.tel.retrainFailed.Inc()
		return
	}
	window := lc.store.Recent(lc.cfg.RetrainWindow)
	samples, domain := lc.retrainSet(window)
	cfg := lc.baseCfg
	cfg.Seed = lc.baseCfg.Seed + uint64(candVer)
	cand, err := predictor.TrainInstrumented(cfg, lc.d.Encoder, samples, domain, lc.d.tel)
	if err != nil {
		lc.tel.retrainFailed.Inc()
		return
	}
	// The successor inherits the incumbent's scoring configuration —
	// quantized mode and parallel threshold are deployment policy, not model
	// state, and a promote must not silently turn them off. Quantization
	// recalibrates against the candidate's own weights inside
	// SetScoringConfig.
	cand.SetScoringConfig(lc.d.pred.Load().ScoringConfig())
	shadow := lc.store.Recent(lc.cfg.ShadowWindow)
	incErr := shadowError(lc.d.pred.Load(), shadow)
	candErr := shadowError(cand, shadow)
	lc.tel.setShadowErrs(incErr, candErr)
	if !floatsafe.Less(candErr, incErr*(1+lc.cfg.AcceptTolerance)) {
		lc.tel.retrainRejected.Inc()
		return
	}
	lc.promoteLocked(cand, candVer)
}

// retrainSet converts a feedback window into predictor training samples plus
// domain-alignment candidate plans (re-explored from the window's queries,
// as Deploy does from history).
func (lc *Lifecycle) retrainSet(window []feedback.Entry) ([]predictor.Sample, []*plan.Plan) {
	samples := make([]predictor.Sample, len(window))
	for i, e := range window {
		samples[i] = predictor.Sample{
			Plan: e.Record.Plan,
			Envs: encoding.RecordEnv(e.Record.NodeEnv),
			Cost: e.Record.CPUCost,
		}
	}
	var domain []*plan.Plan
	if lc.baseCfg.Adapt && lc.cfg.DomainPlans > 0 {
		stride := len(window)/lc.cfg.DomainPlans + 1
		for i := 0; i < len(window) && len(domain) < lc.cfg.DomainPlans; i += stride {
			e := window[i]
			if e.Query == nil {
				continue
			}
			ex := lc.d.ProjectSim.Explorer(e.Record.Day)
			for _, c := range ex.Candidates(e.Query) {
				if !c.IsDefault() {
					domain = append(domain, c)
				}
			}
		}
	}
	return samples, domain
}

// promoteLocked hot-swaps the candidate in as the serving model. The swap is
// atomic at both read points: the predictor pointer (environment source,
// SaveModel) and the guard scorer flip to the candidate in one step each,
// and each serve call reads each exactly once. The candidate gets a fresh
// plan cache, so no embedding from the incumbent's weights survives the
// swap; the guard's breaker and sentinel restart clean (releasing any
// quarantine), and the drift detector starts a fresh history. Callers hold
// lc.mu. The fresh cache is sized by the live fleet grant when a registry
// governs this deployment (promoteCacheCapacity) — a promote never resets a
// tenant's capacity back to its deploy-time setting; if a Rebalance lands
// between the read and the swap, the next Rebalance re-applies its grant and
// the fleet re-converges.
func (lc *Lifecycle) promoteLocked(cand *predictor.Predictor, ver int) {
	cand.EnablePlanCache(lc.d.promoteCacheCapacity())
	lc.prev, lc.prevVer = lc.d.pred.Load(), lc.version
	lc.probationLeft = lc.cfg.Probation
	lc.version = ver
	lc.d.pred.Store(cand)
	lc.d.grd.SwapScorer(cand)
	lc.det.Reset()
	lc.tel.promotes.Inc()
	lc.tel.modelVersion.Set(float64(ver))
	// Fail-open durable checkpoint: a write error leaves serving untouched
	// (durable.errors counts it); injected crashes panic through.
	_ = lc.d.persistCheckpoint(checkpointState{
		event:        durable.EventPromote,
		version:      ver,
		parent:       lc.prevVer,
		next:         lc.next,
		cur:          cand,
		probation:    lc.probationLeft,
		prev:         lc.prev,
		prevVer:      lc.prevVer,
		resetJournal: true,
	})
}

// rollbackLocked restores the pre-promote incumbent: the promoted model
// drew a drift signal inside its probation window. The restored model keeps
// its own plan cache (its weights never changed), and the guard restarts
// clean around it. Callers hold lc.mu.
func (lc *Lifecycle) rollbackLocked() {
	indicted := lc.version
	lc.version = lc.prevVer
	lc.d.pred.Store(lc.prev)
	lc.d.grd.SwapScorer(lc.prev)
	lc.prev, lc.prevVer = nil, 0
	lc.probationLeft = 0
	lc.det.Reset()
	lc.tel.rollbacks.Inc()
	lc.tel.modelVersion.Set(float64(lc.version))
	// Fail-open durable checkpoint, as in promoteLocked.
	_ = lc.d.persistCheckpoint(checkpointState{
		event:        durable.EventRollback,
		version:      lc.version,
		parent:       indicted,
		next:         lc.next,
		cur:          lc.d.pred.Load(),
		resetJournal: true,
	})
}

// shadowError replays a feedback window through a model and returns the mean
// |ln(predicted/actual)| over the scorable entries — the same ln-space
// measure the drift detector thresholds. NaN when nothing in the window is
// scorable, which the acceptance gate fails closed on.
func shadowError(p *predictor.Predictor, window []feedback.Entry) float64 {
	n, sum := 0, 0.0
	for _, e := range window {
		actual := e.Record.CPUCost
		if math.IsNaN(actual) || math.IsInf(actual, 0) || actual <= 0 {
			continue
		}
		pred := p.PredictCost(e.Record.Plan, encoding.RecordEnv(e.Record.NodeEnv))
		if math.IsNaN(pred) || math.IsInf(pred, 0) || pred <= 0 {
			continue
		}
		sum += math.Abs(math.Log(pred) - math.Log(actual))
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
