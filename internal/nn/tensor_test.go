package nn

import (
	"math"
	"testing"

	"loam/internal/simrand"
)

// numericGrad estimates d(loss)/d(param[i]) by central differences.
func numericGrad(param *Tensor, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := param.Data[i]
	param.Data[i] = orig + h
	up := loss()
	param.Data[i] = orig - h
	down := loss()
	param.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies analytic gradients of loss() w.r.t. every element of
// params against finite differences. build must construct the graph fresh on
// every call and return the scalar loss tensor.
func checkGrads(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	lossVal := func() float64 { return build().Data[0] }
	// Analytic pass.
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	build().Backward()
	for pi, p := range params {
		for i := range p.Data {
			want := numericGrad(p, i, lossVal)
			got := p.Grad[i]
			if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s: param %d elem %d grad = %g, numeric %g", name, pi, i, got, want)
				return
			}
		}
	}
}

func randParam(rng *simrand.RNG, r, c int) *Tensor {
	p := Param(r, c)
	for i := range p.Data {
		p.Data[i] = rng.Normal(0, 0.8)
	}
	return p
}

func TestMatMulGrad(t *testing.T) {
	rng := simrand.New(1)
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 1)
	targets := []float64{0.3, -0.2, 0.8}
	checkGrads(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), targets)
	})
}

func TestMatMulGradMSEVector(t *testing.T) {
	rng := simrand.New(2)
	a := randParam(rng, 2, 3)
	b := randParam(rng, 3, 1)
	checkGrads(t, "matmul-vec", []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), []float64{1, -1})
	})
}

func TestAddAndScaleGrad(t *testing.T) {
	rng := simrand.New(3)
	a := randParam(rng, 2, 2)
	b := randParam(rng, 2, 2)
	w := randParam(rng, 2, 1)
	checkGrads(t, "add+scale", []*Tensor{a, b, w}, func() *Tensor {
		return MSE(MatMul(Scale(Add(a, b), 0.7), w), []float64{0.2, -0.4})
	})
}

func TestAddRowGrad(t *testing.T) {
	rng := simrand.New(4)
	a := randParam(rng, 3, 2)
	row := randParam(rng, 1, 2)
	w := randParam(rng, 2, 1)
	checkGrads(t, "addrow", []*Tensor{a, row, w}, func() *Tensor {
		return MSE(MatMul(AddRow(a, row), w), []float64{1, 2, 3})
	})
}

func TestActivationGrads(t *testing.T) {
	rng := simrand.New(5)
	cases := []struct {
		name string
		fn   func(*Tensor) *Tensor
	}{
		{"relu", ReLU},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
	}
	for _, tc := range cases {
		a := randParam(rng, 2, 3)
		w := randParam(rng, 3, 1)
		checkGrads(t, tc.name, []*Tensor{a, w}, func() *Tensor {
			return MSE(MatMul(tc.fn(a), w), []float64{0.5, -0.5})
		})
	}
}

func TestConcatColsGrad(t *testing.T) {
	rng := simrand.New(6)
	a := randParam(rng, 2, 2)
	b := randParam(rng, 2, 3)
	w := randParam(rng, 5, 1)
	checkGrads(t, "concatcols", []*Tensor{a, b, w}, func() *Tensor {
		return MSE(MatMul(ConcatCols(a, b), w), []float64{0.1, 0.9})
	})
}

func TestConcatRowsGrad(t *testing.T) {
	rng := simrand.New(7)
	a := randParam(rng, 1, 3)
	b := randParam(rng, 2, 3)
	w := randParam(rng, 3, 1)
	checkGrads(t, "concatrows", []*Tensor{a, b, w}, func() *Tensor {
		return MSE(MatMul(ConcatRows(a, b), w), []float64{1, 2, 3})
	})
}

func TestGatherConcat3Grad(t *testing.T) {
	rng := simrand.New(8)
	x := randParam(rng, 3, 2)
	w := randParam(rng, 6, 1)
	self := []int{0, 1, 2}
	left := []int{1, 2, -1}
	right := []int{2, -1, -1}
	checkGrads(t, "gatherconcat3", []*Tensor{x, w}, func() *Tensor {
		return MSE(MatMul(GatherConcat3(x, self, left, right), w), []float64{0.2, 0.4, 0.6})
	})
}

func TestPoolingGrads(t *testing.T) {
	rng := simrand.New(9)
	cases := []struct {
		name string
		fn   func(*Tensor) *Tensor
	}{
		{"mean", MeanRows},
		{"max", MaxRows},
		{"sum", func(a *Tensor) *Tensor { return SumRows(a, 0.25) }},
	}
	for _, tc := range cases {
		x := randParam(rng, 4, 3)
		w := randParam(rng, 3, 1)
		checkGrads(t, tc.name, []*Tensor{x, w}, func() *Tensor {
			return MSE(MatMul(tc.fn(x), w), []float64{0.7})
		})
	}
}

func TestRowGrad(t *testing.T) {
	rng := simrand.New(10)
	x := randParam(rng, 3, 2)
	w := randParam(rng, 2, 1)
	checkGrads(t, "row", []*Tensor{x, w}, func() *Tensor {
		return MSE(MatMul(Row(x, 1), w), []float64{0.3})
	})
}

func TestTransposeGrad(t *testing.T) {
	rng := simrand.New(11)
	x := randParam(rng, 2, 3)
	w := randParam(rng, 2, 1)
	checkGrads(t, "transpose", []*Tensor{x, w}, func() *Tensor {
		return MSE(MatMul(Transpose(x), w), []float64{1, 2, 3})
	})
}

func TestSoftmaxRowsGrad(t *testing.T) {
	rng := simrand.New(12)
	x := randParam(rng, 2, 4)
	w := randParam(rng, 4, 1)
	checkGrads(t, "softmax", []*Tensor{x, w}, func() *Tensor {
		return MSE(MatMul(SoftmaxRows(x), w), []float64{0.2, 0.8})
	})
}

func TestCrossEntropyGrad(t *testing.T) {
	rng := simrand.New(13)
	x := randParam(rng, 3, 2)
	labels := []int{0, 1, 0}
	checkGrads(t, "crossentropy", []*Tensor{x}, func() *Tensor {
		return CrossEntropy(x, labels)
	})
}

func TestGRLReversesGradient(t *testing.T) {
	rng := simrand.New(14)
	lambda := 1.0
	x := randParam(rng, 2, 2)
	w := randParam(rng, 2, 1)

	// Loss through GRL.
	lossGRL := MSE(MatMul(GRL(x, &lambda), w), []float64{1, -1})
	lossGRL.Backward()
	grlGrads := append([]float64(nil), x.Grad...)

	// Same loss without GRL.
	for i := range x.Grad {
		x.Grad[i] = 0
	}
	for i := range w.Grad {
		w.Grad[i] = 0
	}
	loss := MSE(MatMul(x, w), []float64{1, -1})
	loss.Backward()

	for i := range x.Grad {
		if math.Abs(grlGrads[i]+x.Grad[i]) > 1e-9 {
			t.Fatalf("GRL grad[%d] = %g, want %g (negated)", i, grlGrads[i], -x.Grad[i])
		}
	}
}

func TestGRLLambdaScales(t *testing.T) {
	rng := simrand.New(15)
	lambda := 0.5
	x := randParam(rng, 1, 2)
	w := randParam(rng, 2, 1)
	loss := MSE(MatMul(GRL(x, &lambda), w), []float64{1})
	loss.Backward()
	half := append([]float64(nil), x.Grad...)

	for i := range x.Grad {
		x.Grad[i] = 0
	}
	lambda2 := 1.0
	loss2 := MSE(MatMul(GRL(x, &lambda2), w), []float64{1})
	loss2.Backward()
	for i := range x.Grad {
		if math.Abs(x.Grad[i]-2*half[i]) > 1e-9 {
			t.Fatalf("lambda scaling wrong at %d: %g vs %g", i, x.Grad[i], 2*half[i])
		}
	}
}

func TestAddScalarLossGrad(t *testing.T) {
	rng := simrand.New(16)
	x := randParam(rng, 2, 1)
	y := randParam(rng, 2, 2)
	checkGrads(t, "addscalarloss", []*Tensor{x, y}, func() *Tensor {
		l1 := MSE(x, []float64{1, 2})
		l2 := CrossEntropy(y, []int{0, 1})
		return AddScalarLoss([]float64{1, 0.5}, l1, l2)
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	Param(2, 2).Backward()
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.R != 2 || m.C != 2 {
		t.Fatalf("shape %dx%d", m.R, m.C)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatalf("Set failed")
	}
}

func TestMaxRowsSelectsArgmax(t *testing.T) {
	m := FromRows([][]float64{{1, 9}, {5, 2}})
	out := MaxRows(m)
	if out.Data[0] != 5 || out.Data[1] != 9 {
		t.Fatalf("MaxRows = %v", out.Data)
	}
}
