package nn

import "math"

// This file is the quantized inference mode behind ForwardInfer: a float32
// staging format plus int8 cost-head scoring with int32 accumulation, each
// returning a rigorous per-output error bound alongside every score. The
// bound is the load-bearing half of the design: quantized scores are only
// allowed to pick a plan when the caller can prove from the bounds that the
// f64 argmin is unchanged (see internal/predictor's margin check and
// DESIGN.md "Quantized inference & micro-batching contract"). Nothing here
// is bit-identical to the f64 kernels and nothing here pretends to be —
// bit-exactness stays the f64 path's contract, and the f64 path remains the
// fallback whenever a bound is too wide to certify the argmin.
//
// Error model, with x the true f64 input row, x32 its float32 staging, and
// W the true f64 weights:
//
//	|x_p − x32_p| ≤ eps32·|x_p| + flush32        (f32 rounding + underflow)
//	|x32_p − sx·q_p| ≤ sx/2                      (symmetric absmax int8 quant)
//	|W_pj − SW_j·wq_pj| ≤ SW_j/2                 (per-column weight quant)
//
// where eps32 = 2⁻²⁴ is the float32 unit roundoff, flush32 = 2⁻¹⁵⁰ bounds
// the absolute error of rounding any f64 into f32 space (subnormals and
// flush-to-zero included), sx = rowAbsMax/127 and SW_j = colAbsMax_j/127.
// Every bound below is assembled from these three inequalities plus a
// summation-error term, then widened by quantSlack to absorb the handful of
// f64 roundings in the dequant and bound arithmetic itself (each of which is
// a 2⁻⁵²-relative perturbation, seven orders below the slack).

// Mat32 is the float32 twin of Mat: a row-major matrix view over
// caller-owned storage, used to stage embedding rows for quantized scoring.
type Mat32 struct {
	R, C int
	Data []float32
}

// Row returns row i of the matrix.
func (m Mat32) Row(i int) []float32 { return m.Data[i*m.C : (i+1)*m.C] }

const (
	// eps32 is the float32 unit roundoff 2⁻²⁴.
	eps32 = 1.0 / (1 << 24)
	// flush32 bounds the absolute rounding error of any f64→f32 conversion:
	// relative eps32 everywhere except the subnormal range, where the error
	// is at most 2⁻¹⁵⁰ absolute (half the smallest positive denormal).
	flush32 = 0x1p-150
	// eps64 is the float64 unit roundoff 2⁻⁵².
	eps64 = 0x1p-52
	// quantSlack widens every assembled bound to cover the f64 roundings in
	// the dequant/bound arithmetic: ~10 operations at 2⁻⁵² relative each,
	// dominated a billionfold.
	quantSlack = 1 + 1e-9
)

// QuantLinear is a Linear layer calibrated for quantized inference: int8
// weights with per-output-column absmax scales (the primary tier), the same
// weights in float32 (the rescore tier a failed int8 margin check escalates
// to before falling back to f64), and the precomputed column absolute sums
// the error bounds need. Calibration is a pure function of the trained f64
// weights — deterministic, data-free, reproducible on restore.
type QuantLinear struct {
	In, Out int
	// Wq is the In×Out row-major int8 weight matrix:
	// Wq[p*Out+j] = round(W[p][j]/SW[j]).
	Wq []int8
	// W32 is the In×Out row-major float32 weight matrix.
	W32 []float32
	// SW[j] = colAbsMax_j/127 is output column j's weight scale (0 for an
	// all-zero column, whose quantized weights are all exactly 0).
	SW []float64
	// ColAbs1[j] = Σ_p |W[p][j]| in f64 — the ‖W_·j‖₁ factor of the bounds.
	ColAbs1 []float64
	// B is the f64 bias row, added after dequantization (never quantized:
	// it is a single addition per output, not worth any precision).
	B []float64
}

// QuantizeLinear calibrates l for quantized inference. Deterministic:
// absmax scales and round-half-away-from-zero depend only on the weights.
func QuantizeLinear(l *Linear) *QuantLinear {
	in, out := l.W.R, l.W.C
	q := &QuantLinear{
		In:      in,
		Out:     out,
		Wq:      make([]int8, in*out),
		W32:     make([]float32, in*out),
		SW:      make([]float64, out),
		ColAbs1: make([]float64, out),
		B:       make([]float64, out),
	}
	copy(q.B, l.B.Data)
	for j := 0; j < out; j++ {
		maxAbs := 0.0
		for p := 0; p < in; p++ {
			if a := math.Abs(l.W.Data[p*out+j]); a > maxAbs {
				maxAbs = a
			}
		}
		q.SW[j] = maxAbs / 127
	}
	for p := 0; p < in; p++ {
		for j := 0; j < out; j++ {
			w := l.W.Data[p*out+j]
			q.ColAbs1[j] += math.Abs(w)
			q.W32[p*out+j] = float32(w)
			if q.SW[j] > 0 {
				q.Wq[p*out+j] = clampInt8(math.Round(w / q.SW[j]))
			}
		}
	}
	return q
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return int8(v)
}

// rowAbsMax scans an f32 row for its absolute maximum in f64. The second
// return is false when the row contains a non-finite value, in which case no
// quantization bound holds and the caller must fall back.
func rowAbsMax(row []float32) (float64, bool) {
	maxAbs := 0.0
	for _, v := range row {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		} else if math.IsNaN(a) {
			// NaN compares false against everything, so it would never become
			// maxAbs — it must be caught here or a NaN row would quantize to
			// garbage under a finite bound.
			return 0, false
		}
	}
	if math.IsInf(maxAbs, 0) {
		return 0, false
	}
	return maxAbs, true
}

// ForwardInferQuant scores the staged rows of x (n×In float32) through the
// int8 weights with int32 accumulation, writing dequantized scores into out
// and a rigorous per-output error bound |trueScore − out| ≤ bound into
// bound (both n×Out, caller-owned). qrow is an In-element caller-owned
// staging buffer for one row's quantized inputs; the call allocates nothing
// (it is an allocdiscipline root). A non-finite input row yields NaN scores
// with +Inf bounds, which no margin check can certify — the caller's
// fallback handles it. In·127² must stay below 2³¹ for the int32
// accumulator (any realistic embedding dimension is orders below that).
//
// Input quantization is dynamic per row — sx_i = rowAbsMax_i/127 — rather
// than calibrated from an activation sample: it is just as deterministic
// and it is what makes the error bound exact instead of statistical.
func (q *QuantLinear) ForwardInferQuant(qrow []int8, x Mat32, out, bound []float64) {
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		orow := out[i*q.Out : (i+1)*q.Out]
		brow := bound[i*q.Out : (i+1)*q.Out]
		maxAbs, finite := rowAbsMax(row)
		if !finite {
			for j := range orow {
				orow[j] = math.NaN()
				brow[j] = math.Inf(1)
			}
			continue
		}
		sx := maxAbs / 127
		// Quantize the row; S accumulates Σ_p |q_p| for the weight-residual
		// term of the bound (exact in f64: it is a small-integer sum).
		s := 0.0
		if sx > 0 {
			for p, v := range row {
				r := math.Round(float64(v) / sx)
				qp := clampInt8(r)
				qrow[p] = qp
				s += math.Abs(float64(qp))
			}
		} else {
			for p := range row {
				qrow[p] = 0
			}
		}
		// Per-element input residual |x_p − sx·q_p|, assembled from the
		// error model at the top of the file:
		//   f32 rounding   eps32·|x_p| ≤ 127·eps32·(1+eps32)·sx + eps32·flush32
		//   quantization   sx/2
		//   underflow      flush32
		perElem := sx*(0.5+127*eps32*(1+eps32)) + flush32*(1+eps32)
		for j := 0; j < q.Out; j++ {
			acc := int32(0)
			for p, qp := range qrow {
				acc += int32(qp) * int32(q.Wq[p*q.Out+j])
			}
			y := sx*q.SW[j]*float64(acc) + q.B[j]
			orow[j] = y
			// |y_true − y| ≤ Σ_p|x_p − sx·q_p|·|W_pj|         (input residual)
			//             + sx·(SW_j/2)·Σ_p|q_p|              (weight residual)
			//             + dequant f64 rounding.
			brow[j] = quantSlack*(perElem*q.ColAbs1[j]+0.5*sx*q.SW[j]*s) +
				4*eps64*(math.Abs(y)+math.Abs(q.B[j]))
		}
	}
}

// ForwardInfer32 scores the staged rows of x through the float32 weights
// with float32 accumulation — the rescore tier between int8 and the f64
// fallback, roughly 3000× tighter than the int8 bound at cost-head sizes.
// out and bound are n×Out caller-owned; the call allocates nothing. The
// four-lane partial sums reorder the accumulation, which is fine here: the
// summation-error term of the bound covers every summation order of In
// products, and this path never claims bit-exactness.
func (q *QuantLinear) ForwardInfer32(x Mat32, out, bound []float64) {
	k := float64(q.In)
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		orow := out[i*q.Out : (i+1)*q.Out]
		brow := bound[i*q.Out : (i+1)*q.Out]
		maxAbs, finite := rowAbsMax(row)
		if !finite {
			for j := range orow {
				orow[j] = math.NaN()
				brow[j] = math.Inf(1)
			}
			continue
		}
		for j := 0; j < q.Out; j++ {
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= q.In; p += 4 {
				s0 += row[p] * q.W32[p*q.Out+j]
				s1 += row[p+1] * q.W32[(p+1)*q.Out+j]
				s2 += row[p+2] * q.W32[(p+2)*q.Out+j]
				s3 += row[p+3] * q.W32[(p+3)*q.Out+j]
			}
			s := s0 + s1 + s2 + s3
			for ; p < q.In; p++ {
				s += row[p] * q.W32[p*q.Out+j]
			}
			y := float64(s) + q.B[j]
			orow[j] = y
			// (k+6)·eps32·maxAbs·ColAbs1_j covers input rounding (1·eps32),
			// weight rounding (1·eps32), and f32 products-plus-any-order
			// summation (≤ (k+2)·eps32 first-order, padded); the flush32
			// terms cover subnormal underflow of inputs and weights.
			m := maxAbs * q.ColAbs1[j]
			brow[j] = quantSlack*((k+6)*eps32*m+flush32*((1+eps32)*q.ColAbs1[j]+k*maxAbs)) +
				4*eps64*(math.Abs(y)+math.Abs(q.B[j]))
		}
	}
}
