package nn

import (
	"math"
	"testing"

	"loam/internal/simrand"
)

// narrow32 stages an f64 matrix into float32 the way the predictor does
// before quantized scoring.
func narrow32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

// TestQuantizeLinearDeterministic: calibration is a pure function of the
// trained weights — two calls produce identical scales, quantized weights and
// column sums, so a restore-time recalibration reproduces the snapshot's
// quantization state exactly.
func TestQuantizeLinearDeterministic(t *testing.T) {
	rng := simrand.New(21)
	l := NewLinear(rng.Derive("lin"), 24, 6)
	a, b := QuantizeLinear(l), QuantizeLinear(l)
	if a.In != b.In || a.Out != b.Out {
		t.Fatal("shape mismatch")
	}
	for i := range a.Wq {
		if a.Wq[i] != b.Wq[i] {
			t.Fatalf("Wq[%d]: %d vs %d", i, a.Wq[i], b.Wq[i])
		}
		if math.Float32bits(a.W32[i]) != math.Float32bits(b.W32[i]) {
			t.Fatalf("W32[%d] differs", i)
		}
	}
	for j := range a.SW {
		if math.Float64bits(a.SW[j]) != math.Float64bits(b.SW[j]) ||
			math.Float64bits(a.ColAbs1[j]) != math.Float64bits(b.ColAbs1[j]) ||
			math.Float64bits(a.B[j]) != math.Float64bits(b.B[j]) {
			t.Fatalf("column %d calibration differs", j)
		}
	}
}

// TestQuantBoundsSound is the property test behind the argmin-preservation
// contract: for random layers and inputs, the true f64 score always lies
// within the reported bound of the quantized score — on both the int8 tier
// and the f32 rescore tier. If this ever fails, a "certified" argmin could be
// wrong and quantized mode would change chosen plans.
func TestQuantBoundsSound(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := simrand.New(100 + seed)
		n := 1 + rng.Intn(12)
		in := 4 + rng.Intn(60)
		out := 1 + rng.Intn(8)
		l := NewLinear(rng.Derive("lin"), in, out)
		// Mix magnitudes so rows span well-scaled, tiny and large regimes.
		x := make([]float64, n*in)
		for i := range x {
			switch rng.Intn(4) {
			case 0: // exact zero
			case 1:
				x[i] = rng.Uniform(-1e-6, 1e-6)
			case 2:
				x[i] = rng.Uniform(-100, 100)
			default:
				x[i] = rng.Uniform(-2, 2)
			}
		}
		var s Scratch
		ref := l.ForwardInfer(&s, Mat{R: n, C: in, Data: x})

		q := QuantizeLinear(l)
		x32 := Mat32{R: n, C: in, Data: narrow32(x)}
		got := make([]float64, n*out)
		bnd := make([]float64, n*out)
		qrow := make([]int8, in)

		q.ForwardInferQuant(qrow, x32, got, bnd)
		for i := range got {
			if err := math.Abs(ref.Data[i] - got[i]); !(err <= bnd[i]) {
				t.Fatalf("seed %d int8: |%.17g - %.17g| = %g exceeds bound %g (elem %d, n=%d in=%d out=%d)",
					seed, ref.Data[i], got[i], err, bnd[i], i, n, in, out)
			}
		}

		q.ForwardInfer32(x32, got, bnd)
		for i := range got {
			if err := math.Abs(ref.Data[i] - got[i]); !(err <= bnd[i]) {
				t.Fatalf("seed %d f32: |%.17g - %.17g| = %g exceeds bound %g (elem %d, n=%d in=%d out=%d)",
					seed, ref.Data[i], got[i], err, bnd[i], i, n, in, out)
			}
		}
	}
}

// TestQuantNonFiniteRows: a non-finite input row must yield NaN scores with
// +Inf bounds on both tiers — uncertifiable by construction, forcing the f64
// fallback rather than silently scoring garbage.
func TestQuantNonFiniteRows(t *testing.T) {
	rng := simrand.New(31)
	in, out := 8, 3
	l := NewLinear(rng.Derive("lin"), in, out)
	q := QuantizeLinear(l)
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		x := make([]float32, 2*in)
		for i := range x {
			x[i] = 1
		}
		x[in+3] = bad // second row poisoned, first row clean
		got := make([]float64, 2*out)
		bnd := make([]float64, 2*out)
		qrow := make([]int8, in)
		q.ForwardInferQuant(qrow, Mat32{R: 2, C: in, Data: x}, got, bnd)
		for j := 0; j < out; j++ {
			if math.IsNaN(got[j]) || math.IsInf(bnd[j], 1) {
				t.Fatalf("clean row poisoned: out=%v bound=%v", got[j], bnd[j])
			}
			if !math.IsNaN(got[out+j]) || !math.IsInf(bnd[out+j], 1) {
				t.Fatalf("poisoned row not flagged: out=%v bound=%v", got[out+j], bnd[out+j])
			}
		}
		q.ForwardInfer32(Mat32{R: 2, C: in, Data: x}, got, bnd)
		for j := 0; j < out; j++ {
			if !math.IsNaN(got[out+j]) || !math.IsInf(bnd[out+j], 1) {
				t.Fatalf("f32 tier: poisoned row not flagged: out=%v bound=%v", got[out+j], bnd[out+j])
			}
		}
	}
}

// TestMatMulNTBlockedIntoBitIdentical: the blocked, 4-wide-unrolled kernel
// must stay bit-identical to MatMulNTInto (and through it to autograd) across
// shapes that exercise full tiles, partial tiles and the scalar column tail.
func TestMatMulNTBlockedIntoBitIdentical(t *testing.T) {
	rng := simrand.New(41)
	for _, shape := range [][3]int{
		{1, 7, 1},    // degenerate
		{9, 14, 6},   // column tail (6 = 4+2)
		{48, 33, 48}, // exactly one tile
		{50, 40, 51}, // tile tails on both axes
		{97, 21, 8},  // multiple row tiles
	} {
		n, k, m := shape[0], shape[1], shape[2]
		a := randMat(rng, n, k)
		bt := randMat(rng, m, k)
		want := make([]float64, n*m)
		got := make([]float64, n*m)
		MatMulNTInto(want, a, bt, n, k, m)
		MatMulNTBlockedInto(got, a, bt, n, k, m)
		sameBits(t, "blocked", want, got)
	}
}

// TestQuantZeroAlloc: both quantized tiers are allocdiscipline roots — after
// warm-up they must not allocate.
func TestQuantZeroAlloc(t *testing.T) {
	rng := simrand.New(51)
	n, in, out := 8, 32, 4
	l := NewLinear(rng.Derive("lin"), in, out)
	q := QuantizeLinear(l)
	x := Mat32{R: n, C: in, Data: narrow32(randMat(rng, n, in))}
	got := make([]float64, n*out)
	bnd := make([]float64, n*out)
	qrow := make([]int8, in)
	if allocs := testing.AllocsPerRun(100, func() {
		q.ForwardInferQuant(qrow, x, got, bnd)
		q.ForwardInfer32(x, got, bnd)
	}); allocs != 0 {
		t.Fatalf("quantized scoring allocated %.1f times per run, want 0", allocs)
	}
}
