package nn

import "math"

// Adam is the Adam optimizer with optional exponential learning-rate decay —
// the paper's LOAM setup uses an initial learning rate of 0.01 with a 0.99
// per-epoch decay (§7.1).
type Adam struct {
	Params []*Tensor
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64 // max gradient element magnitude; 0 disables clipping

	m, v [][]float64
	t    int
}

// NewAdam builds an Adam optimizer over the parameter list.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step applies one update from the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			if a.Clip > 0 {
				if g > a.Clip {
					g = a.Clip
				} else if g < -a.Clip {
					g = -a.Clip
				}
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.Data[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		for j := range p.Grad {
			p.Grad[j] = 0
		}
	}
}

// DecayLR multiplies the learning rate by factor (e.g. 0.99 per epoch).
func (a *Adam) DecayLR(factor float64) { a.LR *= factor }
