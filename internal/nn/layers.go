package nn

import (
	"math"

	"loam/internal/simrand"
)

// Transpose returns a^T.
func Transpose(a *Tensor) *Tensor {
	out := child(a.C, a.R, a)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[j*a.R+i] = a.Data[i*a.C+j]
		}
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					a.Grad[i*a.C+j] += out.Grad[j*a.R+i]
				}
			}
		}
	}
	return out
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W *Tensor // in×out
	B *Tensor // 1×out
}

// NewLinear builds a Xavier-initialized linear layer.
func NewLinear(rng *simrand.RNG, in, out int) *Linear {
	l := &Linear{W: Param(in, out), B: Param(1, out)}
	InitXavier(rng, l.W)
	return l
}

// Forward applies the layer to x (n×in).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return AddRow(MatMul(x, l.W), l.B)
}

// Params returns the trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// InitXavier fills a parameter with Xavier/Glorot uniform values.
func InitXavier(rng *simrand.RNG, t *Tensor) {
	limit := math.Sqrt(6.0 / float64(t.R+t.C))
	for i := range t.Data {
		t.Data[i] = rng.Uniform(-limit, limit)
	}
}

// TreeConv is one binary tree convolution layer: each node's output is a
// linear map of [self; left; right] (zeros for absent children) with a
// nonlinearity — the Bao/Neo-style tree convolution of §4.
type TreeConv struct {
	Lin *Linear // (3·in)×out
}

// NewTreeConv builds a tree convolution layer mapping in→out features.
func NewTreeConv(rng *simrand.RNG, in, out int) *TreeConv {
	return &TreeConv{Lin: NewLinear(rng, 3*in, out)}
}

// Forward applies the layer. x is the n×in node-feature matrix; self, left
// and right give each node's own index and child indices (-1 = absent).
func (tc *TreeConv) Forward(x *Tensor, self, left, right []int) *Tensor {
	return ReLU(tc.Lin.Forward(GatherConcat3(x, self, left, right)))
}

// Params returns the trainable tensors.
func (tc *TreeConv) Params() []*Tensor { return tc.Lin.Params() }

// GCNLayer is one graph convolution: H' = ReLU(Â H W + b) with Â the
// symmetrically normalized adjacency (with self-loops).
type GCNLayer struct {
	Lin *Linear
}

// NewGCNLayer builds a GCN layer mapping in→out features.
func NewGCNLayer(rng *simrand.RNG, in, out int) *GCNLayer {
	return &GCNLayer{Lin: NewLinear(rng, in, out)}
}

// Forward applies the layer given the normalized adjacency ahat (n×n).
func (g *GCNLayer) Forward(ahat, h *Tensor) *Tensor {
	return ReLU(g.Lin.Forward(MatMul(ahat, h)))
}

// Params returns the trainable tensors.
func (g *GCNLayer) Params() []*Tensor { return g.Lin.Params() }

// NormalizedAdjacency builds the constant Â = D^{-1/2}(A+I)D^{-1/2} tensor
// from an undirected edge list over n nodes.
func NormalizedAdjacency(n int, edges [][2]int) *Tensor {
	a := New(n, n)
	deg := make([]float64, n)
	fillNormalizedAdjacency(a.Data, deg, n, edges)
	return a
}

// fillNormalizedAdjacency writes Â into the zeroed n×n buffer a, using deg
// (zeroed, length n) as workspace. Shared by the autograd and inference
// paths so both produce bit-identical adjacencies.
func fillNormalizedAdjacency(a, deg []float64, n int, edges [][2]int) {
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	for _, e := range edges {
		a[e[0]*n+e[1]] = 1
		a[e[1]*n+e[0]] = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += a[i*n+j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a[i*n+j] != 0 {
				a[i*n+j] /= math.Sqrt(deg[i] * deg[j])
			}
		}
	}
}

// Attention is one self-attention block with a position-wise feed-forward
// sublayer and residual connections — a compact Transformer encoder block.
type Attention struct {
	WQ, WK, WV *Linear
	FF1, FF2   *Linear
	dim        int
}

// NewAttention builds an attention block over dim features.
func NewAttention(rng *simrand.RNG, dim, ffDim int) *Attention {
	return &Attention{
		WQ:  NewLinear(rng, dim, dim),
		WK:  NewLinear(rng, dim, dim),
		WV:  NewLinear(rng, dim, dim),
		FF1: NewLinear(rng, dim, ffDim),
		FF2: NewLinear(rng, ffDim, dim),
		dim: dim,
	}
}

// Forward applies self-attention + FFN with residuals to x (seq×dim).
func (a *Attention) Forward(x *Tensor) *Tensor {
	q := a.WQ.Forward(x)
	k := a.WK.Forward(x)
	v := a.WV.Forward(x)
	scores := Scale(MatMul(q, Transpose(k)), 1/math.Sqrt(float64(a.dim)))
	att := MatMul(SoftmaxRows(scores), v)
	h := Add(x, att)
	ff := a.FF2.Forward(ReLU(a.FF1.Forward(h)))
	return Add(h, ff)
}

// Params returns the trainable tensors.
func (a *Attention) Params() []*Tensor {
	var out []*Tensor
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.FF1, a.FF2} {
		out = append(out, l.Params()...)
	}
	return out
}

// ParamCount sums the element counts of parameters.
func ParamCount(params []*Tensor) int {
	total := 0
	for _, p := range params {
		total += len(p.Data)
	}
	return total
}

// ParamBytes estimates the serialized size of parameters in bytes (float64).
func ParamBytes(params []*Tensor) int { return 8 * ParamCount(params) }
