package nn

import (
	"math"
	"testing"

	"loam/internal/simrand"
)

// randMat fills an r×c matrix with a mix of random values and exact zeros so
// the zero-skipping kernels exercise both branches.
func randMat(rng *simrand.RNG, r, c int) []float64 {
	data := make([]float64, r*c)
	for i := range data {
		if rng.Float64() < 0.25 {
			continue // exact zero
		}
		data[i] = rng.Uniform(-2, 2)
	}
	return data
}

func sameBits(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", name, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d differs: %v (%#x) vs %v (%#x)",
				name, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

func TestLinearForwardInferBitIdentical(t *testing.T) {
	rng := simrand.New(11)
	for _, shape := range [][3]int{{1, 7, 5}, {4, 16, 9}, {60, 33, 50}} {
		n, in, out := shape[0], shape[1], shape[2]
		l := NewLinear(rng.Derive("lin"), in, out)
		x := randMat(rng, n, in)

		want := l.Forward(FromData(n, in, x))

		var s Scratch
		got := l.ForwardInfer(&s, Mat{R: n, C: in, Data: x})
		sameBits(t, "linear", want.Data, got.Data)
	}
}

func TestMatMulNTIntoMatchesMatMul(t *testing.T) {
	rng := simrand.New(12)
	// n×k @ k×m through both kernels; the NT kernel sees b pre-transposed.
	n, k, m := 9, 14, 6
	a := randMat(rng, n, k)
	b := randMat(rng, k, m)
	bt := make([]float64, k*m)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			bt[j*k+i] = b[i*m+j]
		}
	}
	want := MatMul(FromData(n, k, a), FromData(k, m, b))
	got := make([]float64, n*m)
	MatMulNTInto(got, a, bt, n, k, m)
	sameBits(t, "matmulNT", want.Data, got)
}

func TestTreeConvForwardInferBitIdentical(t *testing.T) {
	rng := simrand.New(13)
	n, in, out := 7, 10, 8
	tc := NewTreeConv(rng.Derive("tc"), in, out)
	x := randMat(rng, n, in)
	self := []int{0, 1, 2, 3, 4, 5, 6}
	left := []int{1, 3, 5, -1, -1, -1, -1}
	right := []int{2, 4, 6, -1, -1, -1, -1}

	want := tc.Forward(FromData(n, in, x), self, left, right)

	var s Scratch
	got := tc.ForwardInfer(&s, Mat{R: n, C: in, Data: x}, self, left, right)
	sameBits(t, "treeconv", want.Data, got.Data)
}

func TestGCNForwardInferBitIdentical(t *testing.T) {
	rng := simrand.New(14)
	n, in, out := 6, 9, 7
	g := NewGCNLayer(rng.Derive("gcn"), in, out)
	x := randMat(rng, n, in)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {2, 5}}

	ahat := NormalizedAdjacency(n, edges)
	want := g.Forward(ahat, FromData(n, in, x))

	var s Scratch
	ahatI := NormalizedAdjacencyInto(&s, n, edges)
	sameBits(t, "adjacency", ahat.Data, ahatI.Data)
	got := g.ForwardInfer(&s, ahatI, Mat{R: n, C: in, Data: x})
	sameBits(t, "gcn", want.Data, got.Data)
}

func TestAttentionForwardInferBitIdentical(t *testing.T) {
	rng := simrand.New(15)
	seq, dim := 11, 12
	a := NewAttention(rng.Derive("att"), dim, 2*dim)
	x := randMat(rng, seq, dim)

	want := a.Forward(FromData(seq, dim, x))

	var s Scratch
	got := a.ForwardInfer(&s, Mat{R: seq, C: dim, Data: x})
	sameBits(t, "attention", want.Data, got.Data)
}

func TestPoolingIntoBitIdentical(t *testing.T) {
	rng := simrand.New(16)
	x := randMat(rng, 9, 13)
	xt := FromData(9, 13, x)
	xm := Mat{R: 9, C: 13, Data: x}

	var s Scratch
	mean := s.Floats(13)
	MeanRowsInto(mean, xm)
	sameBits(t, "mean", MeanRows(xt).Data, mean)

	max := s.Floats(13)
	MaxRowsInto(max, xm)
	sameBits(t, "max", MaxRows(xt).Data, max)

	sum := s.Floats(13)
	SumRowsInto(sum, xm, 1.0/16)
	sameBits(t, "sum", SumRows(xt, 1.0/16).Data, sum)
}

// TestScratchReuse verifies that a Scratch grows once and then serves
// repeated identical request sequences without allocating.
func TestScratchReuse(t *testing.T) {
	var s Scratch
	shapes := [][2]int{{8, 120}, {8, 32}, {1, 96}, {1, 24}, {40, 40}}
	warm := func() {
		s.Reset()
		for _, sh := range shapes {
			m := s.Mat(sh[0], sh[1])
			m.Data[0] = 1
		}
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("warmed scratch allocated %.1f times per run, want 0", allocs)
	}
}

// TestAttentionInferZeroAlloc is the allocation regression test for the
// inference forward: after warm-up, a full attention block forward performs
// zero heap allocations.
func TestAttentionInferZeroAlloc(t *testing.T) {
	rng := simrand.New(17)
	seq, dim := 10, 16
	a := NewAttention(rng.Derive("att"), dim, 2*dim)
	x := randMat(rng, seq, dim)
	xm := Mat{R: seq, C: dim, Data: x}

	var s Scratch
	run := func() {
		s.Reset()
		out := a.ForwardInfer(&s, xm)
		if out.R != seq {
			t.Fatal("bad shape")
		}
	}
	run() // warm: slabs grow, transposed weights precompute
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("warmed attention inference allocated %.1f times per run, want 0", allocs)
	}
}
