// Package nn is a small, dependency-free neural-network library: a
// reverse-mode autograd engine over dense float64 matrices, the layers LOAM's
// cost-predictor backbones need (linear, tree convolution, graph
// convolution, multi-head self-attention), the gradient reversal layer used
// by the domain-adversarial training (§4), and an Adam optimizer with
// exponential learning-rate decay.
//
// Concurrency: forward passes only read parameter tensors and allocate fresh
// result tensors per operation, so inference over a trained model is safe
// from multiple goroutines. Gradients are written only by Backward and the
// optimizer — training, and anything that mutates parameters, must stay on a
// single goroutine.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major matrix participating in the autograd graph.
type Tensor struct {
	R, C int
	Data []float64
	Grad []float64

	requiresGrad bool
	back         func()
	prev         []*Tensor
}

// New allocates a zero tensor that does not require gradients.
func New(r, c int) *Tensor {
	return &Tensor{R: r, C: c, Data: make([]float64, r*c)}
}

// FromData wraps existing data (not copied) as a constant tensor.
func FromData(r, c int, data []float64) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("nn: FromData shape %dx%d != len %d", r, c, len(data)))
	}
	return &Tensor{R: r, C: c, Data: data}
}

// FromRows stacks row vectors (copied) into a constant tensor.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	t := New(len(rows), c)
	for i, r := range rows {
		copy(t.Data[i*c:(i+1)*c], r)
	}
	return t
}

// Param allocates a trainable tensor (requires gradients).
func Param(r, c int) *Tensor {
	t := New(r, c)
	t.requiresGrad = true
	t.Grad = make([]float64, r*c)
	return t
}

// RequiresGrad reports whether the tensor accumulates gradients.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.C+j] = v }

// ensureGrad allocates the gradient buffer lazily.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, t.R*t.C)
	}
}

// child creates a result tensor that participates in backprop if any input
// does.
func child(r, c int, prev ...*Tensor) *Tensor {
	out := New(r, c)
	for _, p := range prev {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	out.prev = prev
	if out.requiresGrad {
		out.ensureGrad()
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a 1x1
// scalar (a loss). Gradients accumulate into every upstream tensor that
// requires them.
func (t *Tensor) Backward() {
	if t.R != 1 || t.C != 1 {
		panic("nn: Backward requires a 1x1 scalar")
	}
	// Topological order via iterative DFS.
	var topo []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: t}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.prev) {
			p := f.t.prev[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{t: p})
			}
			continue
		}
		topo = append(topo, f.t)
		stack = stack[:len(stack)-1]
	}
	t.ensureGrad()
	t.Grad[0] = 1
	for i := len(topo) - 1; i >= 0; i-- {
		if topo[i].back != nil {
			topo[i].back()
		}
	}
}

// MatMul returns a @ b for a (n×k) and b (k×m).
func MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: MatMul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := child(a.R, b.C, a, b)
	matmulInto(out.Data, a.Data, b.Data, a.R, a.C, b.C, false, false)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA += dOut @ B^T
				matmulAccum(a.Grad, out.Grad, b.Data, a.R, b.C, a.C, false, true)
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB += A^T @ dOut
				matmulAccum(b.Grad, a.Data, out.Grad, a.C, a.R, b.C, true, false)
			}
		}
	}
	return out
}

// matmulInto computes dst = op(a) @ op(b) with optional transposes, where
// the logical shapes after transposition are (n×k)@(k×m).
func matmulInto(dst, a, b []float64, n, k, m int, ta, tb bool) {
	for i := range dst {
		dst[i] = 0
	}
	matmulAccum(dst, a, b, n, k, m, ta, tb)
}

// matmulAccum computes dst += op(a) @ op(b). The physical layout of a is
// (n×k) when !ta, (k×n) when ta; similarly b is (k×m) / (m×k).
func matmulAccum(dst, a, b []float64, n, k, m int, ta, tb bool) {
	switch {
	case !ta && !tb:
		for i := 0; i < n; i++ {
			ai := a[i*k : (i+1)*k]
			di := dst[i*m : (i+1)*m]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*m : (p+1)*m]
				for j := 0; j < m; j++ {
					di[j] += av * bp[j]
				}
			}
		}
	case !ta && tb:
		// a (n×k), b physically (m×k): dst[i,j] += sum_p a[i,p]*b[j,p]
		for i := 0; i < n; i++ {
			ai := a[i*k : (i+1)*k]
			di := dst[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				bj := b[j*k : (j+1)*k]
				s := 0.0
				for p := 0; p < k; p++ {
					s += ai[p] * bj[p]
				}
				di[j] += s
			}
		}
	case ta && !tb:
		// a physically (k×n), b (k×m): dst[i,j] += sum_p a[p,i]*b[p,j]
		for p := 0; p < k; p++ {
			ap := a[p*n : (p+1)*n]
			bp := b[p*m : (p+1)*m]
			for i := 0; i < n; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				di := dst[i*m : (i+1)*m]
				for j := 0; j < m; j++ {
					di[j] += av * bp[j]
				}
			}
		}
	default:
		panic("nn: double-transpose matmul unsupported")
	}
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := child(a.R, a.C, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range b.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// AddRow broadcasts a 1×C row vector across an n×C tensor.
func AddRow(a, row *Tensor) *Tensor {
	if row.R != 1 || row.C != a.C {
		panic(fmt.Sprintf("nn: AddRow %dx%d + %dx%d", a.R, a.C, row.R, row.C))
	}
	out := child(a.R, a.C, a, row)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[i*a.C+j] = a.Data[i*a.C+j] + row.Data[j]
		}
	}
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if row.requiresGrad {
				row.ensureGrad()
				for i := 0; i < a.R; i++ {
					for j := 0; j < a.C; j++ {
						row.Grad[j] += out.Grad[i*a.C+j]
					}
				}
			}
		}
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := child(a.R, a.C, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += s * out.Grad[i]
			}
		}
	}
	return out
}

// ReLU applies max(0, x) element-wise.
func ReLU(a *Tensor) *Tensor {
	out := child(a.R, a.C, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i, v := range a.Data {
				if v > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Tanh applies tanh element-wise.
func Tanh(a *Tensor) *Tensor {
	out := child(a.R, a.C, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := range a.Grad {
				y := out.Data[i]
				a.Grad[i] += (1 - y*y) * out.Grad[i]
			}
		}
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) element-wise.
func Sigmoid(a *Tensor) *Tensor {
	out := child(a.R, a.C, a)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := range a.Grad {
				y := out.Data[i]
				a.Grad[i] += y * (1 - y) * out.Grad[i]
			}
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		return New(0, 0)
	}
	r := ts[0].R
	c := 0
	for _, t := range ts {
		if t.R != r {
			panic("nn: ConcatCols row mismatch")
		}
		c += t.C
	}
	out := child(r, c, ts...)
	off := 0
	for _, t := range ts {
		for i := 0; i < r; i++ {
			copy(out.Data[i*c+off:i*c+off+t.C], t.Data[i*t.C:(i+1)*t.C])
		}
		off += t.C
	}
	if out.requiresGrad {
		out.back = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := 0; i < r; i++ {
						for j := 0; j < t.C; j++ {
							t.Grad[i*t.C+j] += out.Grad[i*c+off+j]
						}
					}
				}
				off += t.C
			}
		}
	}
	return out
}

// GatherConcat3 builds, for each output row i, the concatenation
// [x[self[i]]; x[left[i]]; x[right[i]]] where index -1 yields zeros — the
// input assembly step of binary tree convolution.
func GatherConcat3(x *Tensor, self, left, right []int) *Tensor {
	n := len(self)
	out := child(n, 3*x.C, x)
	gather := func(dstOff int, idx []int) {
		for i, ix := range idx {
			if ix < 0 {
				continue
			}
			copy(out.Data[i*out.C+dstOff:i*out.C+dstOff+x.C], x.Data[ix*x.C:(ix+1)*x.C])
		}
	}
	gather(0, self)
	gather(x.C, left)
	gather(2*x.C, right)
	if out.requiresGrad {
		out.back = func() {
			x.ensureGrad()
			scatter := func(srcOff int, idx []int) {
				for i, ix := range idx {
					if ix < 0 {
						continue
					}
					for j := 0; j < x.C; j++ {
						x.Grad[ix*x.C+j] += out.Grad[i*out.C+srcOff+j]
					}
				}
			}
			scatter(0, self)
			scatter(x.C, left)
			scatter(2*x.C, right)
		}
	}
	return out
}

// MeanRows pools an n×C tensor to 1×C by averaging rows.
func MeanRows(a *Tensor) *Tensor {
	out := child(1, a.C, a)
	if a.R == 0 {
		return out
	}
	inv := 1 / float64(a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[j] += a.Data[i*a.C+j] * inv
		}
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					a.Grad[i*a.C+j] += out.Grad[j] * inv
				}
			}
		}
	}
	return out
}

// MaxRows pools an n×C tensor to 1×C by max over rows.
func MaxRows(a *Tensor) *Tensor {
	out := child(1, a.C, a)
	if a.R == 0 {
		return out
	}
	argmax := make([]int, a.C)
	for j := 0; j < a.C; j++ {
		best := a.Data[j]
		bi := 0
		for i := 1; i < a.R; i++ {
			if v := a.Data[i*a.C+j]; v > best {
				best, bi = v, i
			}
		}
		out.Data[j] = best
		argmax[j] = bi
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for j := 0; j < a.C; j++ {
				a.Grad[argmax[j]*a.C+j] += out.Grad[j]
			}
		}
	}
	return out
}

// Row extracts row i as a 1×C tensor sharing gradients with the source.
func Row(a *Tensor, i int) *Tensor {
	out := child(1, a.C, a)
	copy(out.Data, a.Data[i*a.C:(i+1)*a.C])
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for j := 0; j < a.C; j++ {
				a.Grad[i*a.C+j] += out.Grad[j]
			}
		}
	}
	return out
}

// ConcatRows stacks tensors with equal column counts along rows.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		return New(0, 0)
	}
	c := ts[0].C
	r := 0
	for _, t := range ts {
		if t.C != c {
			panic("nn: ConcatRows column mismatch")
		}
		r += t.R
	}
	out := child(r, c, ts...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off*c:(off+t.R)*c], t.Data)
		off += t.R
	}
	if out.requiresGrad {
		out.back = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := range t.Grad {
						t.Grad[i] += out.Grad[off*c+i]
					}
				}
				off += t.R
			}
		}
	}
	return out
}

// GRL is the gradient reversal layer (Ganin & Lempitsky): identity in the
// forward pass; multiplies the gradient by -lambda in the backward pass.
// lambda is read at backward time so a scheduler can anneal it.
func GRL(a *Tensor, lambda *float64) *Tensor {
	out := child(a.R, a.C, a)
	copy(out.Data, a.Data)
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			l := *lambda
			for i := range a.Grad {
				a.Grad[i] -= l * out.Grad[i]
			}
		}
	}
	return out
}

// MSE returns the mean squared error between pred (n×1) and targets as a
// scalar.
func MSE(pred *Tensor, targets []float64) *Tensor {
	if pred.C != 1 || pred.R != len(targets) {
		panic(fmt.Sprintf("nn: MSE pred %dx%d vs %d targets", pred.R, pred.C, len(targets)))
	}
	out := child(1, 1, pred)
	n := float64(pred.R)
	for i := range targets {
		d := pred.Data[i] - targets[i]
		out.Data[0] += d * d / n
	}
	if out.requiresGrad {
		out.back = func() {
			pred.ensureGrad()
			g := out.Grad[0]
			for i := range targets {
				pred.Grad[i] += 2 * (pred.Data[i] - targets[i]) / n * g
			}
		}
	}
	return out
}

// CrossEntropy returns the mean softmax cross-entropy of logits (n×k)
// against integer labels.
func CrossEntropy(logits *Tensor, labels []int) *Tensor {
	if logits.R != len(labels) {
		panic("nn: CrossEntropy label count mismatch")
	}
	out := child(1, 1, logits)
	n, k := logits.R, logits.C
	probs := make([]float64, n*k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			p := math.Exp(v - maxV)
			probs[i*k+j] = p
			sum += p
		}
		for j := 0; j < k; j++ {
			probs[i*k+j] /= sum
		}
		p := probs[i*k+labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		out.Data[0] -= math.Log(p) / float64(n)
	}
	if out.requiresGrad {
		out.back = func() {
			logits.ensureGrad()
			g := out.Grad[0] / float64(n)
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					d := probs[i*k+j]
					if j == labels[i] {
						d -= 1
					}
					logits.Grad[i*k+j] += d * g
				}
			}
		}
	}
	return out
}

// SoftmaxRows applies a row-wise softmax (used by attention).
func SoftmaxRows(a *Tensor) *Tensor {
	out := child(a.R, a.C, a)
	for i := 0; i < a.R; i++ {
		row := a.Data[i*a.C : (i+1)*a.C]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		orow := out.Data[i*a.C : (i+1)*a.C]
		for j, v := range row {
			orow[j] = math.Exp(v - maxV)
			sum += orow[j]
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				orow := out.Data[i*a.C : (i+1)*a.C]
				grow := out.Grad[i*a.C : (i+1)*a.C]
				dot := 0.0
				for j := range orow {
					dot += orow[j] * grow[j]
				}
				for j := range orow {
					a.Grad[i*a.C+j] += orow[j] * (grow[j] - dot)
				}
			}
		}
	}
	return out
}

// AddScalarLoss sums weighted scalar losses: sum_i w_i * l_i.
func AddScalarLoss(weights []float64, losses ...*Tensor) *Tensor {
	out := child(1, 1, losses...)
	for i, l := range losses {
		if l.R != 1 || l.C != 1 {
			panic("nn: AddScalarLoss needs scalars")
		}
		out.Data[0] += weights[i] * l.Data[0]
	}
	if out.requiresGrad {
		out.back = func() {
			for i, l := range losses {
				if l.requiresGrad {
					l.ensureGrad()
					l.Grad[0] += weights[i] * out.Grad[0]
				}
			}
		}
	}
	return out
}

func mustSameShape(op string, a, b *Tensor) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}

// SumRows pools an n×C tensor to 1×C by summing rows, scaled by s — the
// extensive-quantity pooling used by cost prediction (plan cost is a sum of
// per-operator contributions).
func SumRows(a *Tensor, s float64) *Tensor {
	out := child(1, a.C, a)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[j] += a.Data[i*a.C+j] * s
		}
	}
	if out.requiresGrad {
		out.back = func() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					a.Grad[i*a.C+j] += out.Grad[j] * s
				}
			}
		}
	}
	return out
}
