package nn

import (
	"math"
	"testing"

	"loam/internal/simrand"
)

func TestLinearShapes(t *testing.T) {
	rng := simrand.New(1)
	l := NewLinear(rng, 4, 3)
	out := l.Forward(New(5, 4))
	if out.R != 5 || out.C != 3 {
		t.Fatalf("shape %dx%d", out.R, out.C)
	}
	if len(l.Params()) != 2 {
		t.Fatalf("params %d", len(l.Params()))
	}
}

func TestTreeConvShapes(t *testing.T) {
	rng := simrand.New(2)
	tc := NewTreeConv(rng, 4, 6)
	x := New(3, 4)
	out := tc.Forward(x, []int{0, 1, 2}, []int{1, -1, -1}, []int{2, -1, -1})
	if out.R != 3 || out.C != 6 {
		t.Fatalf("shape %dx%d", out.R, out.C)
	}
}

func TestTreeConvLearnsChildDependentTarget(t *testing.T) {
	// A target that depends on a child feature is only learnable when the
	// convolution actually mixes child rows into parents.
	rng := simrand.New(3)
	tc := NewTreeConv(rng, 2, 4)
	head := NewLinear(rng, 4, 1)
	params := append(tc.Params(), head.Params()...)
	opt := NewAdam(params, 0.01)

	self := []int{0, 1}
	left := []int{1, -1}
	right := []int{-1, -1}
	var last float64
	for step := 0; step < 300; step++ {
		childVal := rng.Uniform(-1, 1)
		x := FromRows([][]float64{{0.5, 0.5}, {childVal, 0}})
		h := tc.Forward(x, self, left, right)
		pred := head.Forward(Row(h, 0))
		loss := MSE(pred, []float64{2 * childVal})
		opt.ZeroGrad()
		loss.Backward()
		opt.Step()
		last = loss.Data[0]
	}
	if last > 0.1 {
		t.Fatalf("tree conv failed to learn child-dependent target: loss %g", last)
	}
}

func TestGCNLayerShapes(t *testing.T) {
	rng := simrand.New(4)
	g := NewGCNLayer(rng, 3, 5)
	ahat := NormalizedAdjacency(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	out := g.Forward(ahat, New(4, 3))
	if out.R != 4 || out.C != 5 {
		t.Fatalf("shape %dx%d", out.R, out.C)
	}
}

func TestNormalizedAdjacencyProperties(t *testing.T) {
	a := NormalizedAdjacency(3, [][2]int{{0, 1}})
	// Symmetry.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Self-loops present.
	for i := 0; i < 3; i++ {
		if a.At(i, i) <= 0 {
			t.Fatalf("missing self loop at %d", i)
		}
	}
	// Isolated node 2 has only its self loop, normalized to 1.
	if math.Abs(a.At(2, 2)-1) > 1e-12 {
		t.Fatalf("isolated self loop = %v", a.At(2, 2))
	}
}

func TestAttentionShapes(t *testing.T) {
	rng := simrand.New(5)
	att := NewAttention(rng, 6, 12)
	out := att.Forward(New(7, 6))
	if out.R != 7 || out.C != 6 {
		t.Fatalf("shape %dx%d", out.R, out.C)
	}
	if got := len(att.Params()); got != 10 {
		t.Fatalf("params %d", got)
	}
}

func TestAttentionGradFlow(t *testing.T) {
	rng := simrand.New(6)
	att := NewAttention(rng, 3, 6)
	x := randParam(rng, 2, 3)
	w := randParam(rng, 3, 1)
	checkGrads(t, "attention-x", []*Tensor{x}, func() *Tensor {
		return MSE(MatMul(MeanRows(att.Forward(x)), w), []float64{0.4})
	})
}

func TestParamCounts(t *testing.T) {
	rng := simrand.New(7)
	l := NewLinear(rng, 4, 3)
	if got := ParamCount(l.Params()); got != 4*3+3 {
		t.Fatalf("ParamCount = %d", got)
	}
	if got := ParamBytes(l.Params()); got != 8*(4*3+3) {
		t.Fatalf("ParamBytes = %d", got)
	}
}

func TestAdamConvergesOnLinearRegression(t *testing.T) {
	rng := simrand.New(8)
	l := NewLinear(rng, 3, 1)
	opt := NewAdam(l.Params(), 0.05)
	trueW := []float64{1.5, -2, 0.5}
	var last float64
	for step := 0; step < 400; step++ {
		rows := make([][]float64, 8)
		targets := make([]float64, 8)
		for i := range rows {
			rows[i] = []float64{rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)}
			for j, w := range trueW {
				targets[i] += w * rows[i][j]
			}
			targets[i] += 0.3
		}
		loss := MSE(l.Forward(FromRows(rows)), targets)
		opt.ZeroGrad()
		loss.Backward()
		opt.Step()
		last = loss.Data[0]
	}
	if last > 0.01 {
		t.Fatalf("Adam failed to fit linear regression: loss %g", last)
	}
	if math.Abs(l.B.Data[0]-0.3) > 0.1 {
		t.Fatalf("bias %g, want ~0.3", l.B.Data[0])
	}
}

func TestAdamLRDecay(t *testing.T) {
	rng := simrand.New(9)
	l := NewLinear(rng, 2, 1)
	opt := NewAdam(l.Params(), 0.01)
	opt.DecayLR(0.99)
	if math.Abs(opt.LR-0.0099) > 1e-12 {
		t.Fatalf("LR after decay = %g", opt.LR)
	}
}

func TestAdamClipBoundsUpdates(t *testing.T) {
	p := Param(1, 1)
	p.Grad[0] = 1e9
	opt := NewAdam([]*Tensor{p}, 0.1)
	opt.Clip = 1
	before := p.Data[0]
	opt.Step()
	// With clipped gradient 1 and fresh moments, the update magnitude is
	// bounded by ~LR.
	if d := math.Abs(p.Data[0] - before); d > 0.2 {
		t.Fatalf("clipped update too large: %g", d)
	}
}

func TestInitXavierRange(t *testing.T) {
	rng := simrand.New(10)
	p := Param(10, 10)
	InitXavier(rng, p)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range p.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %g outside Xavier range ±%g", v, limit)
		}
	}
}
