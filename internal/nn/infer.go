package nn

import "math"

// This file is the inference-only forward mode: the serving path's
// counterpart to the autograd ops in tensor.go. It never builds the autograd
// graph, never allocates Grad buffers, and places every activation in a
// caller-owned Scratch arena, so a warmed-up forward pass performs zero heap
// allocations.
//
// Bit-exactness contract: every kernel here produces float64 results
// bit-identical to the corresponding autograd op. That is what lets the
// predictor route PredictCost/SelectPlan through this path without moving a
// single seeded experiment result. Two rules keep the contract honest:
//
//  1. Per-element accumulation order is preserved. A dot product always runs
//     p = 0..k-1 ascending and skips a-side zeros exactly like
//     matmulAccum's !ta&&!tb case, so blocking may tile rows and columns but
//     never the reduction dimension.
//  2. Element-wise ops replicate the training loops verbatim (same guards,
//     same operation order), including ReLU writing explicit zeros where the
//     autograd version relied on zero-initialized output tensors.

// Mat is a lightweight row-major matrix view used by the inference fast
// path. It carries no autograd state; Data is typically Scratch-owned and
// only valid until the owning Scratch is reset.
type Mat struct {
	R, C int
	Data []float64
}

// Row returns row i of the matrix.
func (m Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// scratchSlabSize is the default arena slab, sized so a typical plan forward
// pass fits in one or two slabs.
const scratchSlabSize = 1 << 14

// Scratch is a slab-based bump allocator for inference activations. A
// Scratch is reused across forward passes via Reset, which makes every
// allocation after warm-up a pointer bump into an existing slab. It is not
// safe for concurrent use; serving code keeps one Scratch per worker (see
// internal/predictor's scratch pool).
type Scratch struct {
	slabs [][]float64
	slab  int // index of the slab currently being filled
	off   int // fill offset within the active slab
}

// Reset recycles every slab; previously returned slices become invalid.
func (s *Scratch) Reset() {
	s.slab, s.off = 0, 0
}

// Floats returns an n-element slice from the arena. The contents are NOT
// zeroed — callers either fully overwrite the result or use FloatsZero.
func (s *Scratch) Floats(n int) []float64 {
	for {
		if s.slab < len(s.slabs) {
			sl := s.slabs[s.slab]
			if s.off+n <= len(sl) {
				out := sl[s.off : s.off+n : s.off+n]
				s.off += n
				return out
			}
			// The tail of this slab is too small; move on. The waste is
			// bounded by one request per slab and vanishes after warm-up.
			s.slab++
			s.off = 0
			continue
		}
		size := scratchSlabSize
		if n > size {
			size = n
		}
		s.slabs = append(s.slabs, make([]float64, size))
	}
}

// FloatsZero is Floats with the result zeroed — for accumulators and
// gather targets that rely on zero initialization.
func (s *Scratch) FloatsZero(n int) []float64 {
	out := s.Floats(n)
	for i := range out {
		out[i] = 0
	}
	return out
}

// Mat returns an r×c matrix backed by the arena (contents not zeroed).
func (s *Scratch) Mat(r, c int) Mat { return Mat{R: r, C: c, Data: s.Floats(r * c)} }

// MatZero is Mat with zeroed contents.
func (s *Scratch) MatZero(r, c int) Mat { return Mat{R: r, C: c, Data: s.FloatsZero(r * c)} }

// inferBlock tiles the row/column loops of the NT kernel for cache locality.
// The reduction (k) dimension is deliberately never tiled: splitting it would
// reorder floating-point accumulation and break bit-exactness with the
// autograd kernels.
const inferBlock = 48

// MatMulNTInto computes dst = a @ b^T where a is n×k and bt is the
// row-major m×k transpose of b. Each output element is a full-length dot
// product over p ascending that skips a-side zeros, making it bit-identical
// to matmulAccum's !ta&&!tb case on the untransposed operands. Use it when
// the transposed layout is what you already have (attention reads k directly
// as the transposed operand); for sparse left operands prefer MatMulInto,
// whose row-level zero skip does k zero-checks per output row instead of
// this kernel's k×m.
func MatMulNTInto(dst, a, bt []float64, n, k, m int) {
	for i0 := 0; i0 < n; i0 += inferBlock {
		i1 := i0 + inferBlock
		if i1 > n {
			i1 = n
		}
		for j0 := 0; j0 < m; j0 += inferBlock {
			j1 := j0 + inferBlock
			if j1 > m {
				j1 = m
			}
			for i := i0; i < i1; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*m : (i+1)*m]
				for j := j0; j < j1; j++ {
					brow := bt[j*k : (j+1)*k]
					s := 0.0
					for p, av := range arow {
						if av == 0 {
							continue
						}
						s += av * brow[p]
					}
					drow[j] = s
				}
			}
		}
	}
}

// MatMulNTBlockedInto is the cache-blocked, 4-wide-unrolled variant of
// MatMulNTInto: within each inferBlock tile it computes four output columns
// per sweep of an a-row, sharing one zero-test per input element across all
// four accumulators. Bit-exactness is preserved because the unroll is over
// OUTPUT columns only: each accumulator s0..s3 still sums its own full-length
// dot product over p ascending with exactly MatMulNTInto's a-side zero skip,
// so per-element accumulation order — rule 1 of the file-top contract — is
// untouched. The reduction dimension is never split.
func MatMulNTBlockedInto(dst, a, bt []float64, n, k, m int) {
	for i0 := 0; i0 < n; i0 += inferBlock {
		i1 := i0 + inferBlock
		if i1 > n {
			i1 = n
		}
		for j0 := 0; j0 < m; j0 += inferBlock {
			j1 := j0 + inferBlock
			if j1 > m {
				j1 = m
			}
			for i := i0; i < i1; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*m : (i+1)*m]
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0 := bt[j*k : (j+1)*k]
					b1 := bt[(j+1)*k : (j+2)*k]
					b2 := bt[(j+2)*k : (j+3)*k]
					b3 := bt[(j+3)*k : (j+4)*k]
					var s0, s1, s2, s3 float64
					for p, av := range arow {
						if av == 0 {
							continue
						}
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
					drow[j] = s0
					drow[j+1] = s1
					drow[j+2] = s2
					drow[j+3] = s3
				}
				for ; j < j1; j++ {
					brow := bt[j*k : (j+1)*k]
					s := 0.0
					for p, av := range arow {
						if av == 0 {
							continue
						}
						s += av * brow[p]
					}
					drow[j] = s
				}
			}
		}
	}
}

// MatMulInto computes dst = a @ b for row-major a (n×k) and b (k×m), using
// the same zero-skipping kernel as the autograd MatMul.
func MatMulInto(dst, a, b []float64, n, k, m int) {
	matmulInto(dst, a, b, n, k, m, false, false)
}

// ForwardInfer applies the layer to x (n×in) inside the scratch arena. It
// deliberately uses the training-shaped axpy kernel rather than a
// transposed-weight NT kernel: plan encodings (and ReLU activations) are
// mostly zeros, and the axpy kernel skips a whole row of multiplies per zero
// input element where an NT dot product would re-test that zero once per
// output column. On the sparse serving inputs that is the difference between
// the inference forward beating the autograd forward and trailing it.
func (l *Linear) ForwardInfer(s *Scratch, x Mat) Mat {
	out := s.Mat(x.R, l.W.C)
	MatMulInto(out.Data, x.Data, l.W.Data, x.R, x.C, l.W.C)
	b := l.B.Data
	for i := 0; i < out.R; i++ {
		row := out.Data[i*out.C : (i+1)*out.C]
		for j := range row {
			row[j] += b[j]
		}
	}
	return out
}

// ReLUInPlace applies max(0, x) element-wise, writing explicit zeros where
// the autograd ReLU relied on a zero-initialized output tensor.
func ReLUInPlace(m Mat) {
	for i, v := range m.Data {
		if v > 0 {
			m.Data[i] = v
		} else {
			m.Data[i] = 0
		}
	}
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(m Mat, s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInto computes dst = a + b element-wise (all same shape).
func AddInto(dst, a, b Mat) {
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SoftmaxRowsInPlace applies a row-wise softmax with the exact loop structure
// of the autograd SoftmaxRows (max-shift, exp, accumulate, divide).
func SoftmaxRowsInPlace(m Mat) {
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			row[j] = math.Exp(v - maxV)
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// GatherConcat3Into builds, for each row i, [x[self[i]]; x[left[i]];
// x[right[i]]] into dst (len(self)×3C), zeros for index -1 — the inference
// twin of GatherConcat3.
func GatherConcat3Into(dst Mat, x Mat, self, left, right []int) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	gatherRows(dst, 0, x, self)
	gatherRows(dst, x.C, x, left)
	gatherRows(dst, 2*x.C, x, right)
}

// gatherRows copies x's rows selected by idx into dst at column offset
// dstOff, skipping index -1. A named function rather than a closure keeps
// GatherConcat3Into capture-free under the allocdiscipline contract.
func gatherRows(dst Mat, dstOff int, x Mat, idx []int) {
	for i, ix := range idx {
		if ix < 0 {
			continue
		}
		copy(dst.Data[i*dst.C+dstOff:i*dst.C+dstOff+x.C], x.Data[ix*x.C:(ix+1)*x.C])
	}
}

// MeanRowsInto pools an n×C matrix into the C-element dst by averaging rows,
// matching MeanRows' accumulation order exactly.
func MeanRowsInto(dst []float64, a Mat) {
	for j := range dst {
		dst[j] = 0
	}
	if a.R == 0 {
		return
	}
	inv := 1 / float64(a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			dst[j] += a.Data[i*a.C+j] * inv
		}
	}
}

// MaxRowsInto pools an n×C matrix into dst by max over rows.
func MaxRowsInto(dst []float64, a Mat) {
	if a.R == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	for j := 0; j < a.C; j++ {
		best := a.Data[j]
		for i := 1; i < a.R; i++ {
			if v := a.Data[i*a.C+j]; v > best {
				best = v
			}
		}
		dst[j] = best
	}
}

// SumRowsInto pools an n×C matrix into dst by summing rows scaled by s,
// matching SumRows' accumulation order exactly.
func SumRowsInto(dst []float64, a Mat, s float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			dst[j] += a.Data[i*a.C+j] * s
		}
	}
}

// ForwardInfer applies the tree convolution inside the scratch arena.
func (tc *TreeConv) ForwardInfer(s *Scratch, x Mat, self, left, right []int) Mat {
	g := s.Mat(len(self), 3*x.C)
	GatherConcat3Into(g, x, self, left, right)
	out := tc.Lin.ForwardInfer(s, g)
	ReLUInPlace(out)
	return out
}

// ForwardInfer applies the graph convolution inside the scratch arena given
// the normalized adjacency ahat (n×n).
func (g *GCNLayer) ForwardInfer(s *Scratch, ahat, h Mat) Mat {
	ah := s.Mat(ahat.R, h.C)
	MatMulInto(ah.Data, ahat.Data, h.Data, ahat.R, ahat.C, h.C)
	out := g.Lin.ForwardInfer(s, ah)
	ReLUInPlace(out)
	return out
}

// NormalizedAdjacencyInto fills dst (n×n, scratch-backed) with
// Â = D^{-1/2}(A+I)D^{-1/2} using the same arithmetic as
// NormalizedAdjacency.
func NormalizedAdjacencyInto(s *Scratch, n int, edges [][2]int) Mat {
	a := s.MatZero(n, n)
	deg := s.FloatsZero(n)
	fillNormalizedAdjacency(a.Data, deg, n, edges)
	return a
}

// ForwardInfer applies the attention block inside the scratch arena. Unlike
// the autograd Forward it never materializes k^T: the score matmul reads k
// directly as the transposed operand (the satellite fix for the per-call
// Transpose allocation in layers.go).
func (a *Attention) ForwardInfer(s *Scratch, x Mat) Mat {
	q := a.WQ.ForwardInfer(s, x)
	k := a.WK.ForwardInfer(s, x)
	v := a.WV.ForwardInfer(s, x)
	scores := s.Mat(q.R, k.R)
	MatMulNTBlockedInto(scores.Data, q.Data, k.Data, q.R, q.C, k.R)
	ScaleInPlace(scores, 1/math.Sqrt(float64(a.dim)))
	SoftmaxRowsInPlace(scores)
	att := s.Mat(scores.R, v.C)
	MatMulInto(att.Data, scores.Data, v.Data, scores.R, scores.C, v.C)
	h := s.Mat(x.R, x.C)
	AddInto(h, x, att)
	ff1 := a.FF1.ForwardInfer(s, h)
	ReLUInPlace(ff1)
	ff := a.FF2.ForwardInfer(s, ff1)
	out := s.Mat(h.R, h.C)
	AddInto(out, h, ff)
	return out
}
