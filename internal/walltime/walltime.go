// Package walltime is the repo's only sanctioned wall-clock boundary.
//
// Everything in the repo is seed-reproducible: simulated time advances only
// through cluster.Advance, and no simulation or serving decision may depend
// on the machine's clock. Real elapsed time is still worth reporting —
// training seconds, benchmark wall time, serving throughput — so those
// metrics-only readings are funneled through this package, which the
// determinism analyzer (cmd/loam-vet) recognizes; time.Now and time.Since
// anywhere else are findings.
//
// The contract for callers: a Stopwatch reading may be logged, rendered or
// stored in a metrics struct, but must never influence simulated state, plan
// choice, or any other seed-reproducible output.
package walltime

import "time"

// Stopwatch measures real elapsed time for metrics and reporting.
type Stopwatch struct {
	start time.Time
}

// Watchdog bounds real (not simulated) work: a one-shot wall-clock timer the
// guarded serving path arms around learned-plan scoring so a genuinely hung
// scorer cannot stall a query forever. Like Stopwatch, it lives here because
// walltime is the repo's only wall-clock boundary — but the determinism
// contract is stricter than for metrics readings: on any seed-reproducible
// run the scorer finishes long before a sanely configured watchdog fires, so
// expiry only ever changes behavior on runs that were already broken (a real
// hang). Deterministic deadline *testing* goes through
// internal/faultinject's simulated delays, which never arm a real timer.
type Watchdog struct {
	t *time.Timer
}

// NewWatchdog arms a watchdog that expires after d.
func NewWatchdog(d time.Duration) *Watchdog {
	return &Watchdog{t: time.NewTimer(d)}
}

// Expired fires once when the deadline passes.
func (w *Watchdog) Expired() <-chan time.Time { return w.t.C }

// Stop disarms the watchdog and releases its timer.
func (w *Watchdog) Stop() { w.t.Stop() }

// Start begins a stopwatch at the current wall-clock instant.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Seconds returns the elapsed wall-clock seconds since Start.
func (s Stopwatch) Seconds() float64 {
	return time.Since(s.start).Seconds()
}

// Elapsed returns the elapsed wall-clock time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
