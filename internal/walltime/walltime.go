// Package walltime is the repo's only sanctioned wall-clock boundary.
//
// Everything in the repo is seed-reproducible: simulated time advances only
// through cluster.Advance, and no simulation or serving decision may depend
// on the machine's clock. Real elapsed time is still worth reporting —
// training seconds, benchmark wall time, serving throughput — so those
// metrics-only readings are funneled through this package, which the
// determinism analyzer (cmd/loam-vet) recognizes; time.Now and time.Since
// anywhere else are findings.
//
// The contract for callers: a Stopwatch reading may be logged, rendered or
// stored in a metrics struct, but must never influence simulated state, plan
// choice, or any other seed-reproducible output.
package walltime

import "time"

// Stopwatch measures real elapsed time for metrics and reporting.
type Stopwatch struct {
	start time.Time
}

// Start begins a stopwatch at the current wall-clock instant.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Seconds returns the elapsed wall-clock seconds since Start.
func (s Stopwatch) Seconds() float64 {
	return time.Since(s.start).Seconds()
}

// Elapsed returns the elapsed wall-clock time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
