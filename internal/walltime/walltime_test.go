package walltime_test

import (
	"testing"

	"loam/internal/walltime"
)

func TestStopwatchIsNonNegativeAndMonotone(t *testing.T) {
	sw := walltime.Start()
	if s := sw.Seconds(); s < 0 {
		t.Fatalf("Seconds() = %v, want >= 0", s)
	}
	first := sw.Elapsed()
	if first < 0 {
		t.Fatalf("Elapsed() = %v, want >= 0", first)
	}
	second := sw.Elapsed()
	if second < first {
		t.Fatalf("Elapsed() went backwards: %v then %v", first, second)
	}
}

func TestSecondsMatchesElapsed(t *testing.T) {
	sw := walltime.Start()
	secs := sw.Seconds()
	dur := sw.Elapsed()
	// Seconds was read first, so it can be at most Elapsed's value.
	if secs > dur.Seconds() {
		t.Fatalf("Seconds() = %v exceeds later Elapsed() = %v", secs, dur.Seconds())
	}
}
