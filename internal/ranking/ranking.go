// Package ranking provides the ranking-quality metrics used to evaluate the
// project-selection Ranker (§7.2.6): Recall@(k,n) and NDCG@k, plus the
// closed-form expectations of a uniformly random ranking (App. E.2).
package ranking

import "math"

// RecallAtKN returns the fraction of the n ground-truth items (those with
// the highest relevance) that appear in the top k of the predicted ranking.
// predicted is an ordering of item indices; rel[i] is item i's relevance.
func RecallAtKN(predicted []int, rel []float64, k, n int) float64 {
	if n <= 0 || len(predicted) == 0 {
		return 0
	}
	if n > len(rel) {
		n = len(rel)
	}
	truth := topNSet(rel, n)
	if k > len(predicted) {
		k = len(predicted)
	}
	hit := 0
	for _, idx := range predicted[:k] {
		if truth[idx] {
			hit++
		}
	}
	return float64(hit) / float64(n)
}

// topNSet returns the indices of the n largest relevances (ties broken by
// lower index).
func topNSet(rel []float64, n int) map[int]bool {
	out := make(map[int]bool, n)
	taken := make([]bool, len(rel))
	for c := 0; c < n && c < len(rel); c++ {
		best := -1
		for i, r := range rel {
			if taken[i] {
				continue
			}
			if best < 0 || r > rel[best] {
				best = i
			}
		}
		taken[best] = true
		out[best] = true
	}
	return out
}

// DCGAtK computes Σ_{i≤k} (2^{rel_i}−1)/log2(i+1) over the predicted order.
func DCGAtK(predicted []int, rel []float64, k int) float64 {
	if k > len(predicted) {
		k = len(predicted)
	}
	total := 0.0
	for i := 0; i < k; i++ {
		total += (math.Exp2(rel[predicted[i]]) - 1) / math.Log2(float64(i)+2)
	}
	return total
}

// IdealOrder returns item indices sorted by descending relevance.
func IdealOrder(rel []float64) []int {
	out := make([]int, len(rel))
	for i := range out {
		out[i] = i
	}
	// Simple selection sort keeps determinism on ties.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if rel[out[j]] > rel[out[best]] {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}

// NDCGAtK normalizes DCG@k by the ideal ranking's DCG@k.
func NDCGAtK(predicted []int, rel []float64, k int) float64 {
	ideal := DCGAtK(IdealOrder(rel), rel, k)
	if ideal <= 0 {
		return 0
	}
	return DCGAtK(predicted, rel, k) / ideal
}

// ExpectedRandomRecall returns E[Recall@(k,n)] = k/N for a uniformly random
// permutation of N items (App. E.2).
func ExpectedRandomRecall(k, totalItems int) float64 {
	if totalItems <= 0 {
		return 0
	}
	if k > totalItems {
		k = totalItems
	}
	return float64(k) / float64(totalItems)
}

// ExpectedRandomNDCG returns E[NDCG@k] for a uniformly random permutation:
// E[DCG@k] = Σ_{i≤k} (mean gain)/log2(i+1) divided by IDCG@k (App. E.2).
func ExpectedRandomNDCG(rel []float64, k int) float64 {
	n := len(rel)
	if n == 0 {
		return 0
	}
	meanGain := 0.0
	for _, r := range rel {
		meanGain += math.Exp2(r) - 1
	}
	meanGain /= float64(n)
	if k > n {
		k = n
	}
	expDCG := 0.0
	for i := 0; i < k; i++ {
		expDCG += meanGain / math.Log2(float64(i)+2)
	}
	ideal := DCGAtK(IdealOrder(rel), rel, k)
	if ideal <= 0 {
		return 0
	}
	return expDCG / ideal
}
