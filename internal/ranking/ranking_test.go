package ranking

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/simrand"
)

func TestRecallHandCases(t *testing.T) {
	rel := []float64{0.9, 0.1, 0.8, 0.2, 0.5} // truth top-2 = {0, 2}
	perfect := []int{0, 2, 4, 3, 1}
	if got := RecallAtKN(perfect, rel, 2, 2); got != 1 {
		t.Fatalf("perfect recall %g", got)
	}
	bad := []int{1, 3, 4, 0, 2}
	if got := RecallAtKN(bad, rel, 2, 2); got != 0 {
		t.Fatalf("bad recall %g", got)
	}
	half := []int{0, 1, 2, 3, 4}
	if got := RecallAtKN(half, rel, 2, 2); got != 0.5 {
		t.Fatalf("half recall %g", got)
	}
}

func TestRecallEdgeCases(t *testing.T) {
	rel := []float64{1, 2}
	if RecallAtKN(nil, rel, 1, 1) != 0 {
		t.Fatal("empty prediction recall")
	}
	if RecallAtKN([]int{0, 1}, rel, 1, 0) != 0 {
		t.Fatal("n=0 recall")
	}
	// k beyond list length clamps.
	if got := RecallAtKN([]int{1, 0}, rel, 10, 2); got != 1 {
		t.Fatalf("clamped recall %g", got)
	}
}

func TestIdealOrder(t *testing.T) {
	rel := []float64{0.2, 0.9, 0.5}
	order := IdealOrder(rel)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("ideal order %v", order)
	}
}

func TestNDCGPerfectIsOne(t *testing.T) {
	rel := []float64{0.3, 0.9, 0.1, 0.7}
	ideal := IdealOrder(rel)
	for k := 1; k <= 4; k++ {
		if got := NDCGAtK(ideal, rel, k); math.Abs(got-1) > 1e-12 {
			t.Fatalf("perfect NDCG@%d = %g", k, got)
		}
	}
}

func TestNDCGWorstBelowOne(t *testing.T) {
	rel := []float64{0.1, 0.9}
	worst := []int{0, 1}
	if got := NDCGAtK(worst, rel, 1); got >= 1 {
		t.Fatalf("worst NDCG@1 = %g", got)
	}
}

func TestNDCGBoundsProperty(t *testing.T) {
	rng := simrand.New(3)
	if err := quick.Check(func(seed uint16, kRaw uint8) bool {
		r := rng.DeriveN("case", int(seed))
		n := 2 + r.Intn(10)
		rel := make([]float64, n)
		for i := range rel {
			rel[i] = r.Uniform(0, 1)
		}
		perm := r.Perm(n)
		k := 1 + int(kRaw)%n
		v := NDCGAtK(perm, rel, k)
		return v >= 0 && v <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedRandomRecallFormula(t *testing.T) {
	if got := ExpectedRandomRecall(3, 15); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("E[recall] %g", got)
	}
	if ExpectedRandomRecall(20, 15) != 1 {
		t.Fatal("clamped expected recall")
	}
	if ExpectedRandomRecall(3, 0) != 0 {
		t.Fatal("zero items")
	}
}

func TestExpectedRandomRecallMatchesSimulation(t *testing.T) {
	rng := simrand.New(4)
	n, k := 12, 4
	rel := make([]float64, n)
	for i := range rel {
		rel[i] = rng.Uniform(0, 1)
	}
	trials := 20000
	total := 0.0
	for s := 0; s < trials; s++ {
		perm := rng.Perm(n)
		total += RecallAtKN(perm, rel, k, k)
	}
	sim := total / float64(trials)
	expect := ExpectedRandomRecall(k, n)
	if math.Abs(sim-expect) > 0.01 {
		t.Fatalf("simulated %g vs closed form %g", sim, expect)
	}
}

func TestExpectedRandomNDCGMatchesSimulation(t *testing.T) {
	rng := simrand.New(5)
	n, k := 10, 3
	rel := make([]float64, n)
	for i := range rel {
		rel[i] = rng.Uniform(0, 1)
	}
	trials := 20000
	total := 0.0
	for s := 0; s < trials; s++ {
		perm := rng.Perm(n)
		total += NDCGAtK(perm, rel, k)
	}
	sim := total / float64(trials)
	expect := ExpectedRandomNDCG(rel, k)
	if math.Abs(sim-expect) > 0.01 {
		t.Fatalf("simulated %g vs closed form %g", sim, expect)
	}
}

func TestDCGPositionDiscount(t *testing.T) {
	rel := []float64{1, 1}
	// Same gains: DCG@2 must discount the second position.
	d := DCGAtK([]int{0, 1}, rel, 2)
	gain := math.Exp2(1) - 1
	want := gain + gain/math.Log2(3)
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("DCG %g, want %g", d, want)
	}
}
