// Package encoding implements LOAM's statistics-free plan vectorization
// (§4, Fig. 4): one-hot operator types, multi-segment hash encodings for
// table and column identifiers (App. B.1), one-hot join forms and
// aggregation functions, multi-hot filter functions, log-min-max-normalized
// numeric attributes, and the four per-stage execution-environment features
// (App. B.2). It produces the tree, graph, sequence and flat views the
// different cost-model backbones consume.
package encoding

import (
	"hash/fnv"
	"strconv"

	"loam/internal/cluster"
	"loam/internal/expr"
	"loam/internal/plan"
)

// Config sizes the encoding.
type Config struct {
	// Segments and SegmentDim define the multi-hash identifier encoding of
	// App. B.1: each identifier sets one bit in each of Segments independent
	// SegmentDim-wide segments.
	Segments   int
	SegmentDim int
	// MaxPartitions and MaxColumns bound the log-min-max normalization of
	// the TableScan numeric attributes.
	MaxPartitions float64
	MaxColumns    float64
}

// DefaultConfig matches the experiments' encoder.
func DefaultConfig() Config {
	return Config{Segments: 5, SegmentDim: 8, MaxPartitions: 4096, MaxColumns: 64}
}

// Encoder vectorizes plans under one configuration.
type Encoder struct {
	cfg    Config
	idDim  int
	dim    int
	layout layout
}

// layout records the feature offsets for documentation and tests.
type layout struct {
	opOff, opLen         int
	tableOff             int
	scanNumOff           int // partitions, columns (2)
	joinFormOff          int
	joinColsOff          int
	aggFnOff             int
	aggColsOff, groupOff int
	filterFnOff          int
	filterColsOff        int
	predNumOff           int // predicate size (1)
	dopOff               int // parallelism hint (1)
	envOff               int // 4 env features
	hasEnvOff            int // 1 indicator
}

// NewEncoder builds an encoder.
func NewEncoder(cfg Config) *Encoder {
	if cfg.Segments <= 0 {
		cfg.Segments = 5
	}
	if cfg.SegmentDim <= 0 {
		cfg.SegmentDim = 8
	}
	e := &Encoder{cfg: cfg, idDim: cfg.Segments * cfg.SegmentDim}
	off := 0
	adv := func(n int) int {
		o := off
		off += n
		return o
	}
	e.layout.opOff = adv(plan.NumOpTypes)
	e.layout.opLen = plan.NumOpTypes
	e.layout.tableOff = adv(e.idDim)
	e.layout.scanNumOff = adv(2)
	e.layout.joinFormOff = adv(plan.NumJoinForms)
	e.layout.joinColsOff = adv(e.idDim)
	e.layout.aggFnOff = adv(plan.NumAggFuncs)
	e.layout.aggColsOff = adv(e.idDim)
	e.layout.groupOff = adv(e.idDim)
	e.layout.filterFnOff = adv(expr.NumFuncs)
	e.layout.filterColsOff = adv(e.idDim)
	e.layout.predNumOff = adv(1)
	e.layout.dopOff = adv(1)
	e.layout.envOff = adv(4)
	e.layout.hasEnvOff = adv(1)
	e.dim = off
	return e
}

// Dim returns the per-node feature dimensionality.
func (e *Encoder) Dim() int { return e.dim }

// Config returns the configuration the encoder was built with.
func (e *Encoder) Config() Config { return e.cfg }

// FNV-1a, inlined so the per-node hot path never allocates a hasher or a
// []byte copy of the identifier. Bit-identical to hash/fnv's New64a over the
// same byte sequence (see TestInlineFNVMatchesStdlib).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// hashID sets the multi-segment encoding bits of an identifier into dst
// starting at off — App. B.1's 5×N′ scheme with independent per-segment hash
// functions (implemented as salted FNV), unioning naturally across multiple
// identifiers.
func (e *Encoder) hashID(dst []float64, off int, id string) {
	for s := 0; s < e.cfg.Segments; s++ {
		h := fnvString(fnvByte(fnvOffset64, byte(s+1)), id)
		pos := int(avalanche(h) % uint64(e.cfg.SegmentDim))
		dst[off+s*e.cfg.SegmentDim+pos] = 1
	}
}

// hashCol hashes a column reference identically to
// hashID(dst, off, c.String()) without materializing the "table.column"
// string.
func (e *Encoder) hashCol(dst []float64, off int, c expr.ColumnRef) {
	for s := 0; s < e.cfg.Segments; s++ {
		h := fnvByte(fnvOffset64, byte(s+1))
		h = fnvString(h, c.Table)
		h = fnvByte(h, '.')
		h = fnvString(h, c.Column)
		pos := int(avalanche(h) % uint64(e.cfg.SegmentDim))
		dst[off+s*e.cfg.SegmentDim+pos] = 1
	}
}

// avalanche mixes high bits into low bits (splitmix64 finalizer). FNV-1a's
// low bits alone depend only on the input bytes' low bits, which would make
// small segment widths collide systematically.
func avalanche(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// EnvVec converts raw metrics to the four normalized environment features.
func EnvVec(m cluster.Metrics) [4]float64 { return m.Normalized() }

// EncodeNode returns one node's feature vector. env carries the stage's
// execution environment; hasEnv=false encodes "environment unobserved"
// (training-time plans always have it; the inference strategies of §5 supply
// synthetic values).
func (e *Encoder) EncodeNode(n *plan.Node, env [4]float64, hasEnv bool) []float64 {
	v := make([]float64, e.dim)
	e.EncodeNodeInto(v, n, env, hasEnv)
	return v
}

// Tree is a canonical-binary-tree of node feature vectors — the input to the
// tree convolutional network.
type Tree struct {
	Feat        []float64
	Left, Right *Tree
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	return 1 + t.Left.Size() + t.Right.Size()
}

// EnvSource supplies per-node environment features. ok=false means the
// environment is unobserved for that node.
type EnvSource func(n *plan.Node) (env [4]float64, ok bool)

// RecordEnv adapts an execution record's per-stage environments into an
// EnvSource.
func RecordEnv(nodeEnv func(*plan.Node) (cluster.Metrics, bool)) EnvSource {
	return func(n *plan.Node) ([4]float64, bool) {
		m, ok := nodeEnv(n)
		if !ok {
			return [4]float64{}, false
		}
		return m.Normalized(), true
	}
}

// FixedEnv returns an EnvSource that assigns the same environment vector to
// every node — the §5 inference strategies.
func FixedEnv(env [4]float64) EnvSource {
	return func(*plan.Node) ([4]float64, bool) { return env, true }
}

// NoEnv marks every node's environment as unobserved (the LOAM-NL variant).
func NoEnv() EnvSource {
	return func(*plan.Node) ([4]float64, bool) { return [4]float64{}, false }
}

// EncodeTree vectorizes a plan into the canonical binary tree form.
func (e *Encoder) EncodeTree(p *plan.Plan, envs EnvSource) *Tree {
	root := p.Root.Canonicalize()
	return e.encodeTree(root, p.Root, envs)
}

// encodeTree walks the canonicalized tree but resolves environments against
// the original nodes where possible (canonicalization clones nodes, so env
// lookup falls back to structural pairing).
func (e *Encoder) encodeTree(n, orig *plan.Node, envs EnvSource) *Tree {
	if n == nil {
		return nil
	}
	lookup := n
	if orig != nil {
		lookup = orig
	}
	env, ok := envs(lookup)
	t := &Tree{Feat: e.EncodeNode(n, env, ok)}
	var lo, ro *plan.Node
	if orig != nil && len(orig.Children) == len(n.Children) {
		if len(orig.Children) > 0 {
			lo = orig.Children[0]
		}
		if len(orig.Children) > 1 {
			ro = orig.Children[1]
		}
	}
	if len(n.Children) > 0 {
		t.Left = e.encodeTree(n.Children[0], lo, envs)
	}
	if len(n.Children) > 1 {
		t.Right = e.encodeTree(n.Children[1], ro, envs)
	}
	return t
}

// Graph is the node-feature + edge-list view consumed by the GCN backbone.
type Graph struct {
	Feats [][]float64
	// Edges are (parent, child) index pairs over Feats.
	Edges [][2]int
}

// EncodeGraph vectorizes a plan into graph form.
func (e *Encoder) EncodeGraph(p *plan.Plan, envs EnvSource) *Graph {
	g := &Graph{}
	var walk func(n *plan.Node) int
	walk = func(n *plan.Node) int {
		env, ok := envs(n)
		idx := len(g.Feats)
		g.Feats = append(g.Feats, e.EncodeNode(n, env, ok))
		for _, c := range n.Children {
			ci := walk(c)
			g.Edges = append(g.Edges, [2]int{idx, ci})
		}
		return idx
	}
	walk(p.Root)
	return g
}

// EncodeSequence vectorizes a plan into a preorder sequence with a depth
// scalar appended — the Transformer backbone's input.
func (e *Encoder) EncodeSequence(p *plan.Plan, envs EnvSource) [][]float64 {
	var out [][]float64
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		env, ok := envs(n)
		v := e.EncodeNode(n, env, ok)
		v = append(v, plan.LogNorm(float64(depth), 32))
		out = append(out, v)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return out
}

// SeqDim returns the per-token dimension of EncodeSequence output.
func (e *Encoder) SeqDim() int { return e.dim + 1 }

// EncodeFlat pools node features (sum over nodes, element-wise) into a
// single vector — the XGBoost backbone's input. Counts rather than binaries
// preserve multiplicity information.
func (e *Encoder) EncodeFlat(p *plan.Plan, envs EnvSource) []float64 {
	v := make([]float64, e.dim)
	count := 0.0
	p.Root.Walk(func(n *plan.Node) {
		env, ok := envs(n)
		nv := e.EncodeNode(n, env, ok)
		for i := range v {
			v[i] += nv[i]
		}
		count++
	})
	// Average the env block so it stays in [0,1] regardless of plan size.
	if count > 0 {
		for i := e.layout.envOff; i < e.layout.envOff+5; i++ {
			v[i] /= count
		}
	}
	return append(v, plan.LogNorm(count, 256))
}

// FlatDim returns the dimension of EncodeFlat output.
func (e *Encoder) FlatDim() int { return e.dim + 1 }

// EnvOffset exposes where the 4 environment features live in a node vector;
// tests and the inference strategies use it.
func (e *Encoder) EnvOffset() int { return e.layout.envOff }

// RankerDim is the dimension of RankerFeatures output: 1 (operator count) +
// patternBuckets (parent-child pattern counts) + 3 (top table sizes) + 1
// (plan cost).
const (
	patternBuckets = 48
	RankerDim      = 1 + patternBuckets + 3 + 1
)

// RankerFeatures implements App. D.2's lightweight plan vectorization for
// the project-selection Ranker: total operator count, hashed parent-child
// operator-pattern counts, the top-3 input table sizes, and the plan's
// execution cost. Features are log-min-max normalized and deliberately
// project-agnostic (no table or column identifiers) so a ranker trained on
// some projects transfers to others.
func RankerFeatures(p *plan.Plan, cost float64, tableRows func(string) float64) []float64 {
	v := make([]float64, RankerDim)
	total := 0.0
	var sizes []float64
	p.Root.Walk(func(n *plan.Node) {
		total++
		if n.Op == plan.OpTableScan && tableRows != nil {
			sizes = append(sizes, tableRows(n.Table))
		}
		for _, c := range n.Children {
			h := fnv.New64a()
			_, _ = h.Write([]byte(strconv.Itoa(int(n.Op)) + ">" + strconv.Itoa(int(c.Op))))
			v[1+int(h.Sum64()%patternBuckets)]++
		}
	})
	v[0] = plan.LogNorm(total, 256)
	for i := 1; i <= patternBuckets; i++ {
		v[i] = plan.LogNorm(v[i], 64)
	}
	// Top-3 largest table sizes.
	for i := 0; i < 3 && i < len(sizes); i++ {
		max, maxJ := -1.0, -1
		for j, s := range sizes {
			if s > max {
				max, maxJ = s, j
			}
		}
		v[1+patternBuckets+i] = plan.LogNorm(max, 1e9)
		sizes[maxJ] = -2
	}
	v[1+patternBuckets+3] = plan.LogNorm(cost, 1e9)
	return v
}
