package encoding

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"loam/internal/expr"
	"loam/internal/plan"
)

// This file holds the serving fast path's encoding support: reusable
// flattened views (FlatTree/FlatGraph/FlatSeq) that the predictor's
// inference mode fills in place instead of allocating per-node feature
// slices, and EnvKey, the hashable identity of an inference-time environment
// source used to key the plan-embedding cache.
//
// Every *Into encoder walks nodes in exactly the same order and computes
// exactly the same feature values as its allocating counterpart
// (EncodeTree+flatten, EncodeGraph, EncodeSequence) — row order feeds the
// pooling reductions, so preserving it is part of the bit-exactness
// contract, not a nicety.

// EnvKey is a hashable fingerprint of an EnvSource whose output does not
// depend on the node — the fixed-vector strategies of §5 (mean-env,
// cluster-expected, cluster-current) and the no-env variant. Zero value
// means "unkeyed": the source has per-node structure (e.g. RecordEnv) and
// embeddings derived from it must not be cached.
type EnvKey struct {
	Sum   uint64
	Keyed bool
}

// Domain-separation tags hashed into EnvKeys. Package-level arrays so key
// construction stays allocation-free on the keyed serving path.
var (
	fixedEnvTag = [1]byte{1}
	noEnvTag    = [1]byte{2}
)

// FixedEnvKey returns the key identifying FixedEnv(env).
func FixedEnvKey(env [4]float64) EnvKey {
	h := fnv.New64a()
	var buf [8]byte
	_, _ = h.Write(fixedEnvTag[:])
	for _, v := range env {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	return EnvKey{Sum: h.Sum64(), Keyed: true}
}

// NoEnvKey returns the key identifying NoEnv().
func NoEnvKey() EnvKey {
	h := fnv.New64a()
	_, _ = h.Write(noEnvTag[:])
	return EnvKey{Sum: h.Sum64(), Keyed: true}
}

// EncodeNodeInto writes one node's feature vector into dst (length Dim,
// any prior contents overwritten) — EncodeNode without the allocation.
func (e *Encoder) EncodeNodeInto(dst []float64, n *plan.Node, env [4]float64, hasEnv bool) {
	for i := range dst {
		dst[i] = 0
	}
	if n == nil {
		return
	}
	if op := int(n.Op) - 1; op >= 0 && op < e.layout.opLen {
		dst[e.layout.opOff+op] = 1
	}
	switch {
	case n.Op == plan.OpTableScan:
		e.hashID(dst, e.layout.tableOff, n.Table)
		dst[e.layout.scanNumOff] = plan.LogNorm(float64(n.PartitionsRead), e.cfg.MaxPartitions)
		dst[e.layout.scanNumOff+1] = plan.LogNorm(float64(n.ColumnsAccessed), e.cfg.MaxColumns)
	case n.Op.IsJoin():
		if f := int(n.JoinForm) - 1; f >= 0 && f < plan.NumJoinForms {
			dst[e.layout.joinFormOff+f] = 1
		}
		for _, c := range n.LeftCols {
			e.hashCol(dst, e.layout.joinColsOff, c)
		}
		for _, c := range n.RightCols {
			e.hashCol(dst, e.layout.joinColsOff, c)
		}
	case n.Op.IsAggregate():
		for _, a := range n.AggFuncs {
			if f := int(a) - 1; f >= 0 && f < plan.NumAggFuncs {
				dst[e.layout.aggFnOff+f] = 1
			}
		}
		for _, c := range n.AggCols {
			e.hashCol(dst, e.layout.aggColsOff, c)
		}
		for _, c := range n.GroupCols {
			e.hashCol(dst, e.layout.groupOff, c)
		}
	case n.Op.IsFilterLike():
		e.encodePred(dst, n.Pred)
		dst[e.layout.predNumOff] = plan.LogNorm(float64(n.Pred.Size()), 64)
	}
	if n.Parallelism > 0 {
		dst[e.layout.dopOff] = plan.LogNorm(float64(n.Parallelism), 256)
	}
	if hasEnv {
		copy(dst[e.layout.envOff:e.layout.envOff+4], env[:])
		dst[e.layout.hasEnvOff] = 1
	}
}

// encodePred sets the filter-function multi-hot and filter-column hash bits
// for every node of a predicate tree. It walks the tree directly instead of
// materializing Pred.Funcs()/Pred.Columns(): the features are idempotent bit
// sets, so the dedup and sort those helpers pay for (one map and one slice
// each, per filter node, per encode) buy nothing here, and dropping them
// keeps the serving-path encode allocation-free. The resulting feature
// vector is bit-identical to the slice-based form.
func (e *Encoder) encodePred(dst []float64, n *expr.Node) {
	if n == nil {
		return
	}
	if i := int(n.Fn) - 1; i >= 0 && i < expr.NumFuncs {
		dst[e.layout.filterFnOff+i] = 1
	}
	if n.Fn.IsComparison() {
		e.hashCol(dst, e.layout.filterColsOff, n.Col)
	}
	for _, c := range n.Children {
		e.encodePred(dst, c)
	}
}

// FlatTree is a reusable flattened canonical-binary-tree view: Feats holds
// the n×dim node-feature matrix row-major, and Self/Left/Right carry the
// tree-convolution gather indices (-1 = absent child). All slices are
// retained and reused across EncodeTreeFlatInto calls.
type FlatTree struct {
	Feats             []float64
	Self, Left, Right []int
	dim               int
}

// Len returns the number of encoded nodes.
func (ft *FlatTree) Len() int { return len(ft.Self) }

func (ft *FlatTree) reset(dim int) {
	ft.dim = dim
	ft.Feats = ft.Feats[:0]
	ft.Self = ft.Self[:0]
	ft.Left = ft.Left[:0]
	ft.Right = ft.Right[:0]
}

// addRow appends one node slot and returns its feature row and index.
func (ft *FlatTree) addRow() ([]float64, int) {
	idx := len(ft.Self)
	n := len(ft.Feats)
	if cap(ft.Feats) < n+ft.dim {
		grown := make([]float64, n, 2*(n+ft.dim))
		copy(grown, ft.Feats)
		ft.Feats = grown
	}
	ft.Feats = ft.Feats[:n+ft.dim]
	ft.Self = append(ft.Self, idx)
	ft.Left = append(ft.Left, -1)
	ft.Right = append(ft.Right, -1)
	return ft.Feats[n : n+ft.dim], idx
}

// needsCanon reports whether any node has more than two children, i.e.
// whether Canonicalize would change the tree's structure.
func needsCanon(n *plan.Node) bool {
	if n == nil {
		return false
	}
	if len(n.Children) > 2 {
		return true
	}
	for _, c := range n.Children {
		if needsCanon(c) {
			return true
		}
	}
	return false
}

// EncodeTreeFlatInto fills ft with the canonical-binary-tree encoding of p —
// the same rows, in the same preorder, as flattening EncodeTree's output,
// without the per-node allocations. Plans that are already binary (the
// overwhelmingly common case) skip the canonicalization clone entirely.
func (e *Encoder) EncodeTreeFlatInto(ft *FlatTree, p *plan.Plan, envs EnvSource) {
	ft.reset(e.dim)
	root := p.Root
	if needsCanon(root) {
		// Folding clones the tree; pair environments against the original
		// nodes exactly like EncodeTree does.
		e.encodeTreeFlat(ft, root.Canonicalize(), root, envs)
		return
	}
	e.encodeTreeFlat(ft, root, root, envs)
}

func (e *Encoder) encodeTreeFlat(ft *FlatTree, n, orig *plan.Node, envs EnvSource) int {
	lookup := n
	if orig != nil {
		lookup = orig
	}
	env, ok := envs(lookup)
	row, idx := ft.addRow()
	e.EncodeNodeInto(row, n, env, ok)
	var lo, ro *plan.Node
	if orig != nil && len(orig.Children) == len(n.Children) {
		if len(orig.Children) > 0 {
			lo = orig.Children[0]
		}
		if len(orig.Children) > 1 {
			ro = orig.Children[1]
		}
	}
	if len(n.Children) > 0 {
		li := e.encodeTreeFlat(ft, n.Children[0], lo, envs)
		ft.Left[idx] = li
	}
	if len(n.Children) > 1 {
		ri := e.encodeTreeFlat(ft, n.Children[1], ro, envs)
		ft.Right[idx] = ri
	}
	return idx
}

// FlatGraph is a reusable node-feature + edge-list view for the GCN
// backbone's inference path.
type FlatGraph struct {
	Feats []float64 // n×dim row-major
	Edges [][2]int  // (parent, child) index pairs
	dim   int
	n     int
}

// Len returns the number of encoded nodes.
func (fg *FlatGraph) Len() int { return fg.n }

func (fg *FlatGraph) addRow() ([]float64, int) {
	idx := fg.n
	n := len(fg.Feats)
	if cap(fg.Feats) < n+fg.dim {
		grown := make([]float64, n, 2*(n+fg.dim))
		copy(grown, fg.Feats)
		fg.Feats = grown
	}
	fg.Feats = fg.Feats[:n+fg.dim]
	fg.n++
	return fg.Feats[n : n+fg.dim], idx
}

// EncodeGraphFlatInto fills fg with the graph encoding of p — identical
// node order and edge list to EncodeGraph.
func (e *Encoder) EncodeGraphFlatInto(fg *FlatGraph, p *plan.Plan, envs EnvSource) {
	fg.dim = e.dim
	fg.Feats = fg.Feats[:0]
	fg.Edges = fg.Edges[:0]
	fg.n = 0
	e.encodeGraphFlat(fg, p.Root, envs)
}

func (e *Encoder) encodeGraphFlat(fg *FlatGraph, n *plan.Node, envs EnvSource) int {
	env, ok := envs(n)
	row, idx := fg.addRow()
	e.EncodeNodeInto(row, n, env, ok)
	for _, c := range n.Children {
		ci := e.encodeGraphFlat(fg, c, envs)
		fg.Edges = append(fg.Edges, [2]int{idx, ci})
	}
	return idx
}

// FlatSeq is a reusable preorder-sequence view (dim+1 features per token,
// the extra column being the depth scalar) for the Transformer backbone's
// inference path.
type FlatSeq struct {
	Feats []float64 // n×(dim+1) row-major
	dim   int       // per-token dimension (e.dim + 1)
	n     int
}

// Len returns the number of encoded tokens.
func (fs *FlatSeq) Len() int { return fs.n }

func (fs *FlatSeq) addRow() []float64 {
	n := len(fs.Feats)
	if cap(fs.Feats) < n+fs.dim {
		grown := make([]float64, n, 2*(n+fs.dim))
		copy(grown, fs.Feats)
		fs.Feats = grown
	}
	fs.Feats = fs.Feats[:n+fs.dim]
	fs.n++
	return fs.Feats[n : n+fs.dim]
}

// EncodeSequenceFlatInto fills fs with the sequence encoding of p —
// identical token order and values to EncodeSequence.
func (e *Encoder) EncodeSequenceFlatInto(fs *FlatSeq, p *plan.Plan, envs EnvSource) {
	fs.dim = e.dim + 1
	fs.Feats = fs.Feats[:0]
	fs.n = 0
	e.encodeSeqFlat(fs, p.Root, 0, envs)
}

func (e *Encoder) encodeSeqFlat(fs *FlatSeq, n *plan.Node, depth int, envs EnvSource) {
	env, ok := envs(n)
	row := fs.addRow()
	e.EncodeNodeInto(row[:e.dim], n, env, ok)
	row[e.dim] = plan.LogNorm(float64(depth), 32)
	for _, c := range n.Children {
		e.encodeSeqFlat(fs, c, depth+1, envs)
	}
}
