package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/cluster"
	"loam/internal/expr"
	"loam/internal/plan"
)

func enc() *Encoder { return NewEncoder(DefaultConfig()) }

func testPlan() *plan.Plan {
	scanA := &plan.Node{Op: plan.OpTableScan, Table: "p.t1", PartitionsRead: 8, ColumnsAccessed: 3}
	scanB := &plan.Node{Op: plan.OpTableScan, Table: "p.t2", PartitionsRead: 2, ColumnsAccessed: 1}
	filter := &plan.Node{
		Op:       plan.OpFilter,
		Pred:     expr.Compare(expr.FuncLike, expr.ColumnRef{Table: "p.t1", Column: "c1"}, 7),
		Children: []*plan.Node{scanA},
	}
	join := &plan.Node{
		Op: plan.OpHashJoin, JoinForm: plan.JoinInner,
		LeftCols:  []expr.ColumnRef{{Table: "p.t1", Column: "c1"}},
		RightCols: []expr.ColumnRef{{Table: "p.t2", Column: "c2"}},
		Children: []*plan.Node{
			{Op: plan.OpExchange, Children: []*plan.Node{filter}, Parallelism: 64},
			{Op: plan.OpExchange, Children: []*plan.Node{scanB}},
		},
	}
	agg := &plan.Node{
		Op:        plan.OpHashAggregate,
		AggFuncs:  []plan.AggFunc{plan.AggSum, plan.AggCount},
		AggCols:   []expr.ColumnRef{{Table: "p.t1", Column: "c3"}},
		GroupCols: []expr.ColumnRef{{Table: "p.t2", Column: "c2"}},
		Children:  []*plan.Node{join},
	}
	return &plan.Plan{Root: agg}
}

func TestDimConsistency(t *testing.T) {
	e := enc()
	v := e.EncodeNode(&plan.Node{Op: plan.OpSort}, [4]float64{}, false)
	if len(v) != e.Dim() {
		t.Fatalf("node vector %d != Dim %d", len(v), e.Dim())
	}
	if e.SeqDim() != e.Dim()+1 {
		t.Fatal("SeqDim wrong")
	}
	if e.FlatDim() != e.Dim()+1 {
		t.Fatal("FlatDim wrong")
	}
}

func TestOpOneHot(t *testing.T) {
	e := enc()
	v := e.EncodeNode(&plan.Node{Op: plan.OpMergeJoin, JoinForm: plan.JoinInner}, [4]float64{}, false)
	ones := 0
	for i := 0; i < plan.NumOpTypes; i++ {
		if v[i] == 1 {
			ones++
			if i != int(plan.OpMergeJoin)-1 {
				t.Fatalf("one-hot at wrong position %d", i)
			}
		}
	}
	if ones != 1 {
		t.Fatalf("%d bits set in op one-hot", ones)
	}
}

func TestHashSegmentsSetOneBitEach(t *testing.T) {
	e := enc()
	cfg := DefaultConfig()
	n := &plan.Node{Op: plan.OpTableScan, Table: "some.table", PartitionsRead: 1, ColumnsAccessed: 1}
	v := e.EncodeNode(n, [4]float64{}, false)
	off := e.layout.tableOff
	for s := 0; s < cfg.Segments; s++ {
		bits := 0
		for j := 0; j < cfg.SegmentDim; j++ {
			if v[off+s*cfg.SegmentDim+j] == 1 {
				bits++
			}
		}
		if bits != 1 {
			t.Fatalf("segment %d has %d bits", s, bits)
		}
	}
}

func TestHashEncodingSeparatesIdentifiers(t *testing.T) {
	// The multi-segment scheme distinguishes far more identifiers than a
	// single segment could (App. B.1): full-signature collisions must be
	// rare (birthday bound ~C(n,2)/8^5), while a single 8-wide segment
	// saturates immediately.
	e := enc()
	signature := func(id string, segments int) string {
		n := &plan.Node{Op: plan.OpTableScan, Table: id, PartitionsRead: 1, ColumnsAccessed: 1}
		v := e.EncodeNode(n, [4]float64{}, false)
		sig := ""
		for j := e.layout.tableOff; j < e.layout.tableOff+segments*e.cfg.SegmentDim; j++ {
			if v[j] == 1 {
				sig += string(rune(j))
			}
		}
		return sig
	}
	ids := make([]string, 300)
	for i := range ids {
		ids[i] = "tbl" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	count := func(segments int) int {
		seen := map[string]bool{}
		collisions := 0
		for _, id := range ids {
			sig := signature(id, segments)
			if seen[sig] {
				collisions++
			}
			seen[sig] = true
		}
		return collisions
	}
	multi := count(e.cfg.Segments)
	single := count(1)
	if multi > 10 {
		t.Fatalf("multi-segment collisions too common: %d/300", multi)
	}
	if single <= multi {
		t.Fatalf("multi-segment (%d) not better than single segment (%d)", multi, single)
	}
}

func TestEnvBlock(t *testing.T) {
	e := enc()
	env := [4]float64{0.5, 0.05, 0.4, 0.6}
	n := &plan.Node{Op: plan.OpSort}
	with := e.EncodeNode(n, env, true)
	without := e.EncodeNode(n, env, false)
	off := e.EnvOffset()
	for i := 0; i < 4; i++ {
		if with[off+i] != env[i] {
			t.Fatalf("env feature %d = %g", i, with[off+i])
		}
		if without[off+i] != 0 {
			t.Fatal("env set despite hasEnv=false")
		}
	}
	if with[off+4] != 1 || without[off+4] != 0 {
		t.Fatal("hasEnv indicator wrong")
	}
}

func TestFilterFeatures(t *testing.T) {
	e := enc()
	n := &plan.Node{
		Op: plan.OpFilter,
		Pred: expr.And(
			expr.Compare(expr.FuncLike, expr.ColumnRef{Table: "t", Column: "a"}, 1),
			expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "t", Column: "b"}, 2),
		),
		Children: []*plan.Node{{Op: plan.OpTableScan, Table: "t"}},
	}
	v := e.EncodeNode(n, [4]float64{}, false)
	fnBits := 0
	for i := 0; i < expr.NumFuncs; i++ {
		if v[e.layout.filterFnOff+i] == 1 {
			fnBits++
		}
	}
	if fnBits != 3 { // LIKE, EQ, AND
		t.Fatalf("filter multi-hot bits %d", fnBits)
	}
	if v[e.layout.predNumOff] <= 0 {
		t.Fatal("predicate size feature missing")
	}
}

func TestParallelismFeature(t *testing.T) {
	e := enc()
	plain := e.EncodeNode(&plan.Node{Op: plan.OpExchange}, [4]float64{}, false)
	dop := e.EncodeNode(&plan.Node{Op: plan.OpExchange, Parallelism: 128}, [4]float64{}, false)
	if plain[e.layout.dopOff] != 0 || dop[e.layout.dopOff] <= 0 {
		t.Fatal("parallelism feature wrong")
	}
}

func TestEncodeTreeMatchesCanonicalSize(t *testing.T) {
	e := enc()
	p := testPlan()
	tree := e.EncodeTree(p, NoEnv())
	if got, want := tree.Size(), p.Root.Canonicalize().Size(); got != want {
		t.Fatalf("tree size %d, want %d", got, want)
	}
	if len(tree.Feat) != e.Dim() {
		t.Fatal("tree feature dim wrong")
	}
}

func TestEncodeGraph(t *testing.T) {
	e := enc()
	p := testPlan()
	g := e.EncodeGraph(p, NoEnv())
	if len(g.Feats) != p.Root.Size() {
		t.Fatalf("graph nodes %d", len(g.Feats))
	}
	if len(g.Edges) != p.Root.Size()-1 {
		t.Fatalf("graph edges %d", len(g.Edges))
	}
	for _, e2 := range g.Edges {
		if e2[0] < 0 || e2[0] >= len(g.Feats) || e2[1] < 0 || e2[1] >= len(g.Feats) {
			t.Fatal("edge index out of range")
		}
	}
}

func TestEncodeSequence(t *testing.T) {
	e := enc()
	p := testPlan()
	seq := e.EncodeSequence(p, NoEnv())
	if len(seq) != p.Root.Size() {
		t.Fatalf("sequence length %d", len(seq))
	}
	for _, tok := range seq {
		if len(tok) != e.SeqDim() {
			t.Fatalf("token dim %d", len(tok))
		}
	}
}

func TestEncodeFlat(t *testing.T) {
	e := enc()
	p := testPlan()
	flat := e.EncodeFlat(p, NoEnv())
	if len(flat) != e.FlatDim() {
		t.Fatalf("flat dim %d", len(flat))
	}
	// Count features reflect multiplicity: two scans.
	scanFeature := flat[int(plan.OpTableScan)-1]
	if scanFeature != 2 {
		t.Fatalf("flat scan count %g", scanFeature)
	}
}

func TestRecordEnvAdapter(t *testing.T) {
	m := cluster.Metrics{CPUIdle: 0.4, IOWait: 0.06, Load5: 12, MemUsage: 0.7}
	src := RecordEnv(func(n *plan.Node) (cluster.Metrics, bool) {
		return m, n.Op == plan.OpSort
	})
	env, ok := src(&plan.Node{Op: plan.OpSort})
	if !ok || env != m.Normalized() {
		t.Fatal("record env adapter wrong for known node")
	}
	if _, ok := src(&plan.Node{Op: plan.OpLimit}); ok {
		t.Fatal("record env adapter should miss unknown node")
	}
}

func TestFixedAndNoEnvSources(t *testing.T) {
	env := [4]float64{0.1, 0.2, 0.3, 0.4}
	fixed := FixedEnv(env)
	if got, ok := fixed(nil); !ok || got != env {
		t.Fatal("fixed env wrong")
	}
	if _, ok := NoEnv()(nil); ok {
		t.Fatal("NoEnv should report unobserved")
	}
}

func TestRankerFeatures(t *testing.T) {
	p := testPlan()
	rows := func(table string) float64 {
		if table == "p.t1" {
			return 1e6
		}
		return 1e3
	}
	v := RankerFeatures(p, 50_000, rows)
	if len(v) != RankerDim {
		t.Fatalf("ranker dim %d", len(v))
	}
	for i, x := range v {
		if x < 0 || x > 1 || math.IsNaN(x) {
			t.Fatalf("feature %d = %g out of [0,1]", i, x)
		}
	}
	// Operator count feature present.
	if v[0] <= 0 {
		t.Fatal("op count feature missing")
	}
	// Top table size features: first ≥ second.
	if v[1+48] < v[1+48+1] {
		t.Fatal("table sizes not sorted")
	}
	// Cost feature increases with cost.
	v2 := RankerFeatures(p, 5_000_000, rows)
	if v2[RankerDim-1] <= v[RankerDim-1] {
		t.Fatal("cost feature not monotone")
	}
}

func TestRankerFeaturesProjectAgnostic(t *testing.T) {
	// Renaming tables must not change the features (only sizes and shapes
	// matter) — the property that lets the Ranker transfer across projects.
	build := func(table string) *plan.Plan {
		return &plan.Plan{Root: &plan.Node{
			Op:       plan.OpHashAggregate,
			Children: []*plan.Node{{Op: plan.OpTableScan, Table: table, PartitionsRead: 1, ColumnsAccessed: 1}},
		}}
	}
	rows := func(string) float64 { return 1000 }
	v1 := RankerFeatures(build("projA.table1"), 100, rows)
	v2 := RankerFeatures(build("projB.other"), 100, rows)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("feature %d differs across table names", i)
		}
	}
}

func TestEncodeNodeDeterministic(t *testing.T) {
	e := enc()
	if err := quick.Check(func(op uint8, parts, cols uint8) bool {
		n := &plan.Node{
			Op:              plan.OpType(int(op)%plan.NumOpTypes + 1),
			Table:           "t",
			PartitionsRead:  int(parts),
			ColumnsAccessed: int(cols),
		}
		v1 := e.EncodeNode(n, [4]float64{0.5, 0.05, 0.3, 0.4}, true)
		v2 := e.EncodeNode(n, [4]float64{0.5, 0.05, 0.3, 0.4}, true)
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
