package encoding

import (
	"hash/fnv"
	"math"
	"testing"

	"loam/internal/expr"
	"loam/internal/plan"
)

// unionPlan has a 3-way union so the flat tree encoder exercises the
// canonicalization fallback.
func unionPlan() *plan.Plan {
	scan := func(t string) *plan.Node {
		return &plan.Node{Op: plan.OpTableScan, Table: t, PartitionsRead: 4, ColumnsAccessed: 2}
	}
	union := &plan.Node{
		Op:       plan.OpUnion,
		Children: []*plan.Node{scan("p.a"), scan("p.b"), scan("p.c")},
	}
	return &plan.Plan{Root: union}
}

// compoundFilterPlan has a connective predicate with repeated functions and a
// repeated column, pinning encodePred's direct walk to the dedup-and-sort
// Funcs()/Columns() reference: idempotent bit sets make the two equivalent.
func compoundFilterPlan() *plan.Plan {
	scan := &plan.Node{Op: plan.OpTableScan, Table: "p.t1", PartitionsRead: 4, ColumnsAccessed: 2}
	c1 := expr.ColumnRef{Table: "p.t1", Column: "c1"}
	c2 := expr.ColumnRef{Table: "p.t1", Column: "c2"}
	pred := expr.Or(
		expr.And(expr.Compare(expr.FuncGT, c1, 3), expr.Compare(expr.FuncLT, c1, 9)),
		expr.Compare(expr.FuncGT, c2, 7),
	)
	filter := &plan.Node{Op: plan.OpFilter, Pred: pred, Children: []*plan.Node{scan}}
	return &plan.Plan{Root: filter}
}

func flatRowsEqual(t *testing.T, name string, want [][]float64, got []float64, dim int) {
	t.Helper()
	if len(got) != len(want)*dim {
		t.Fatalf("%s: %d values, want %d rows × %d", name, len(got), len(want), dim)
	}
	for i, row := range want {
		for j, v := range row {
			g := got[i*dim+j]
			if math.Float64bits(v) != math.Float64bits(g) {
				t.Fatalf("%s: row %d col %d: %v != %v", name, i, j, v, g)
			}
		}
	}
}

func TestEncodeTreeFlatMatchesEncodeTree(t *testing.T) {
	e := enc()
	for _, tc := range []struct {
		name string
		p    *plan.Plan
	}{
		{"binary", testPlan()},
		{"nary-union", unionPlan()},
		{"compound-filter", compoundFilterPlan()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			envs := FixedEnv([4]float64{0.3, 0.1, 0.9, 0.5})

			// Reference: the allocating tree encoder, flattened in preorder.
			var feats [][]float64
			var self, left, right []int
			var walk func(n *Tree) int
			walk = func(n *Tree) int {
				idx := len(feats)
				feats = append(feats, n.Feat)
				self = append(self, idx)
				left = append(left, -1)
				right = append(right, -1)
				if n.Left != nil {
					left[idx] = walk(n.Left)
				}
				if n.Right != nil {
					right[idx] = walk(n.Right)
				}
				return idx
			}
			walk(e.EncodeTree(tc.p, envs))

			var ft FlatTree
			e.EncodeTreeFlatInto(&ft, tc.p, envs)
			if ft.Len() != len(feats) {
				t.Fatalf("flat tree has %d nodes, want %d", ft.Len(), len(feats))
			}
			flatRowsEqual(t, "feats", feats, ft.Feats, e.Dim())
			for i := range self {
				if ft.Self[i] != self[i] || ft.Left[i] != left[i] || ft.Right[i] != right[i] {
					t.Fatalf("index row %d: (%d,%d,%d) != (%d,%d,%d)", i,
						ft.Self[i], ft.Left[i], ft.Right[i], self[i], left[i], right[i])
				}
			}
		})
	}
}

func TestEncodeGraphFlatMatchesEncodeGraph(t *testing.T) {
	e := enc()
	p := testPlan()
	envs := FixedEnv([4]float64{0.2, 0.4, 0.6, 0.8})
	g := e.EncodeGraph(p, envs)

	var fg FlatGraph
	e.EncodeGraphFlatInto(&fg, p, envs)
	if fg.Len() != len(g.Feats) {
		t.Fatalf("flat graph has %d nodes, want %d", fg.Len(), len(g.Feats))
	}
	flatRowsEqual(t, "feats", g.Feats, fg.Feats, e.Dim())
	if len(fg.Edges) != len(g.Edges) {
		t.Fatalf("%d edges, want %d", len(fg.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if fg.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d: %v != %v", i, fg.Edges[i], g.Edges[i])
		}
	}
}

func TestEncodeSequenceFlatMatchesEncodeSequence(t *testing.T) {
	e := enc()
	p := testPlan()
	envs := NoEnv()
	seq := e.EncodeSequence(p, envs)

	var fs FlatSeq
	e.EncodeSequenceFlatInto(&fs, p, envs)
	if fs.Len() != len(seq) {
		t.Fatalf("flat seq has %d tokens, want %d", fs.Len(), len(seq))
	}
	flatRowsEqual(t, "tokens", seq, fs.Feats, e.SeqDim())
}

// TestFlatEncodersReuseBuffers verifies the *Into encoders stop allocating
// once their buffers have grown to workload size — including filter nodes,
// whose predicates are folded in by encodePred's allocation-free walk.
func TestFlatEncodersReuseBuffers(t *testing.T) {
	e := enc()
	envs := FixedEnv([4]float64{0.5, 0.5, 0.5, 0.5})

	// Scans, exchanges, a predicated filter, join, aggregate.
	scanA := &plan.Node{Op: plan.OpTableScan, Table: "p.t1", PartitionsRead: 8, ColumnsAccessed: 3}
	scanB := &plan.Node{Op: plan.OpTableScan, Table: "p.t2", PartitionsRead: 2, ColumnsAccessed: 1}
	filter := &plan.Node{
		Op: plan.OpFilter,
		Pred: expr.And(
			expr.Compare(expr.FuncGT, expr.ColumnRef{Table: "p.t1", Column: "c1"}, 3),
			expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "p.t1", Column: "c2"}, 5),
		),
		Children: []*plan.Node{scanA},
	}
	join := &plan.Node{
		Op: plan.OpHashJoin, JoinForm: plan.JoinInner,
		Children: []*plan.Node{
			{Op: plan.OpExchange, Children: []*plan.Node{filter}, Parallelism: 64},
			{Op: plan.OpExchange, Children: []*plan.Node{scanB}},
		},
	}
	agg := &plan.Node{
		Op:       plan.OpHashAggregate,
		AggFuncs: []plan.AggFunc{plan.AggSum},
		Children: []*plan.Node{join},
	}
	p := &plan.Plan{Root: agg}

	var ft FlatTree
	e.EncodeTreeFlatInto(&ft, p, envs)
	if allocs := testing.AllocsPerRun(50, func() { e.EncodeTreeFlatInto(&ft, p, envs) }); allocs != 0 {
		t.Fatalf("warmed EncodeTreeFlatInto allocated %.1f/run, want 0", allocs)
	}

	var fg FlatGraph
	e.EncodeGraphFlatInto(&fg, p, envs)
	if allocs := testing.AllocsPerRun(50, func() { e.EncodeGraphFlatInto(&fg, p, envs) }); allocs != 0 {
		t.Fatalf("warmed EncodeGraphFlatInto allocated %.1f/run, want 0", allocs)
	}

	var fs FlatSeq
	e.EncodeSequenceFlatInto(&fs, p, envs)
	if allocs := testing.AllocsPerRun(50, func() { e.EncodeSequenceFlatInto(&fs, p, envs) }); allocs != 0 {
		t.Fatalf("warmed EncodeSequenceFlatInto allocated %.1f/run, want 0", allocs)
	}
}

// TestInlineFNVMatchesStdlib pins the inlined FNV-1a helpers to hash/fnv:
// identifier hash positions must never move, or every trained model's
// encoding would silently change.
func TestInlineFNVMatchesStdlib(t *testing.T) {
	for _, id := range []string{"", "p.t1", "some.table", "a.very.long.identifier_with_underscores"} {
		for seed := byte(1); seed <= 5; seed++ {
			h := fnv.New64a()
			_, _ = h.Write([]byte{seed})
			_, _ = h.Write([]byte(id))
			want := h.Sum64()
			got := fnvString(fnvByte(fnvOffset64, seed), id)
			if got != want {
				t.Fatalf("inline fnv(%q, seed %d) = %#x, stdlib %#x", id, seed, got, want)
			}
		}
	}
}

// TestHashColMatchesHashID verifies the string-free column hash lands on the
// same bits as hashing c.String().
func TestHashColMatchesHashID(t *testing.T) {
	e := enc()
	c := expr.ColumnRef{Table: "proj.orders", Column: "amount"}
	a := make([]float64, e.Dim())
	b := make([]float64, e.Dim())
	e.hashID(a, e.layout.joinColsOff, c.String())
	e.hashCol(b, e.layout.joinColsOff, c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bit %d differs between hashID and hashCol", i)
		}
	}
}

func TestEnvKeys(t *testing.T) {
	a := FixedEnvKey([4]float64{0.1, 0.2, 0.3, 0.4})
	b := FixedEnvKey([4]float64{0.1, 0.2, 0.3, 0.4})
	c := FixedEnvKey([4]float64{0.1, 0.2, 0.3, 0.5})
	n := NoEnvKey()
	z := FixedEnvKey([4]float64{})

	if !a.Keyed || !n.Keyed {
		t.Fatal("constructed keys must be Keyed")
	}
	if (EnvKey{}).Keyed {
		t.Fatal("zero EnvKey must be unkeyed")
	}
	if a != b {
		t.Fatal("identical env vectors must produce identical keys")
	}
	if a == c {
		t.Fatal("different env vectors must produce different keys")
	}
	// "No environment" encodes hasEnv=0 and must never collide with the
	// all-zeros fixed environment, which encodes hasEnv=1.
	if n == z {
		t.Fatal("NoEnvKey must differ from FixedEnvKey(zeros)")
	}
}
