package warehouse

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/expr"
	"loam/internal/simrand"
)

func testProject(t *testing.T) *Project {
	t.Helper()
	a := DefaultArchetype()
	a.Name = "test"
	return Generate(simrand.New(42), a)
}

func TestGenerateDeterminism(t *testing.T) {
	a := DefaultArchetype()
	a.Name = "d"
	p1 := Generate(simrand.New(5), a)
	p2 := Generate(simrand.New(5), a)
	if len(p1.Tables) != len(p2.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range p1.Tables {
		if p1.Tables[i].ID != p2.Tables[i].ID || p1.Tables[i].Rows != p2.Tables[i].Rows {
			t.Fatalf("table %d differs", i)
		}
	}
}

func TestGenerateRespectsArchetype(t *testing.T) {
	a := DefaultArchetype()
	a.Name = "sz"
	a.NumTables = 17
	p := Generate(simrand.New(1), a)
	if len(p.Tables) != 17 {
		t.Fatalf("tables %d", len(p.Tables))
	}
	for _, tb := range p.Tables {
		if len(tb.Columns) < 2 {
			t.Fatalf("table %s has %d columns", tb.ID, len(tb.Columns))
		}
		if tb.Rows < 10 {
			t.Fatalf("table %s rows %d", tb.ID, tb.Rows)
		}
		for _, c := range tb.Columns {
			if c.NDV < 2 || c.NDV > tb.Rows {
				t.Fatalf("column %s NDV %d vs rows %d", c.ID, c.NDV, tb.Rows)
			}
		}
	}
}

func TestTableLookup(t *testing.T) {
	p := testProject(t)
	first := p.Tables[0]
	if p.Table(first.ID) != first {
		t.Fatal("lookup failed")
	}
	if p.Table("missing") != nil {
		t.Fatal("missing table should be nil")
	}
}

func TestRowsAtGrowth(t *testing.T) {
	tb := &Table{Rows: 1000, DailyGrowth: 1.1, LifespanDays: 100}
	if tb.RowsAt(-1) != 0 {
		t.Fatal("pre-creation rows should be 0")
	}
	if tb.RowsAt(0) != 1000 {
		t.Fatalf("day0 rows %d", tb.RowsAt(0))
	}
	if tb.RowsAt(10) <= tb.RowsAt(5) {
		t.Fatal("growth not monotone")
	}
}

func TestAliveOn(t *testing.T) {
	tb := &Table{CreatedDay: 3, LifespanDays: 4}
	cases := []struct {
		day  int
		want bool
	}{{2, false}, {3, true}, {6, true}, {7, false}}
	for _, c := range cases {
		if got := tb.AliveOn(c.day); got != c.want {
			t.Fatalf("AliveOn(%d) = %v", c.day, got)
		}
	}
}

func TestStableTableRatio(t *testing.T) {
	p := &Project{Tables: []*Table{
		{LifespanDays: 400},
		{LifespanDays: 5},
		{LifespanDays: 31},
		{LifespanDays: 30},
	}}
	if got := p.StableTableRatio(30); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("stable ratio %g", got)
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	for _, s := range []float64{0, 0.7, 1, 1.5} {
		prev := -1.0
		for r := int64(0); r <= 1000; r += 37 {
			v := zipfCDF(r, 1000, s)
			if v < prev-1e-12 {
				t.Fatalf("CDF decreasing at r=%d s=%g", r, s)
			}
			prev = v
		}
		if math.Abs(zipfCDF(1000, 1000, s)-1) > 1e-9 {
			t.Fatalf("CDF(n) != 1 for s=%g", s)
		}
	}
}

func TestColumnSelectivityComplements(t *testing.T) {
	c := &Column{NDV: 500, Skew: 0.8}
	for _, r := range []float64{0, 10, 250, 499} {
		lt := ColumnSelectivity(c, expr.FuncLT, []float64{r})
		ge := ColumnSelectivity(c, expr.FuncGE, []float64{r})
		if math.Abs(lt+ge-1) > 1e-9 {
			t.Fatalf("LT+GE = %g at rank %g", lt+ge, r)
		}
		eq := ColumnSelectivity(c, expr.FuncEQ, []float64{r})
		ne := ColumnSelectivity(c, expr.FuncNE, []float64{r})
		if math.Abs(eq+ne-1) > 1e-9 {
			t.Fatalf("EQ+NE = %g at rank %g", eq+ne, r)
		}
	}
}

func TestColumnSelectivityNullFraction(t *testing.T) {
	c := &Column{NDV: 100, NullFrac: 0.1}
	if got := ColumnSelectivity(c, expr.FuncIsNull, nil); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("IS NULL %g", got)
	}
	le := ColumnSelectivity(c, expr.FuncLE, []float64{99})
	if math.Abs(le-0.9) > 1e-9 {
		t.Fatalf("full-range LE should be 1-null = %g", le)
	}
}

func TestColumnSelectivityBetween(t *testing.T) {
	c := &Column{NDV: 100}
	full := ColumnSelectivity(c, expr.FuncBetween, []float64{0, 99})
	if math.Abs(full-1) > 1e-9 {
		t.Fatalf("full BETWEEN %g", full)
	}
	// Swapped bounds normalize.
	a := ColumnSelectivity(c, expr.FuncBetween, []float64{10, 20})
	b := ColumnSelectivity(c, expr.FuncBetween, []float64{20, 10})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("BETWEEN not symmetric: %g vs %g", a, b)
	}
}

func TestColumnSelectivityBounds(t *testing.T) {
	if err := quick.Check(func(ndvRaw uint16, skewRaw uint8, rankRaw uint16, fnIdx uint8) bool {
		c := &Column{NDV: int64(ndvRaw%5000) + 2, Skew: float64(skewRaw%20) / 10}
		fns := []expr.Func{expr.FuncEQ, expr.FuncNE, expr.FuncLT, expr.FuncLE, expr.FuncGT, expr.FuncGE, expr.FuncLike, expr.FuncBetween, expr.FuncIn}
		fn := fns[int(fnIdx)%len(fns)]
		s := ColumnSelectivity(c, fn, []float64{float64(rankRaw), float64(rankRaw) + 5})
		return s >= 0 && s <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPMFSkewConcentrates(t *testing.T) {
	flat := zipfPMF(0, 1000, 0)
	skewed := zipfPMF(0, 1000, 1.2)
	if skewed <= flat {
		t.Fatalf("skew should concentrate mass on rank 0: %g vs %g", skewed, flat)
	}
}

func TestGenHarmonicMonotone(t *testing.T) {
	for _, s := range []float64{0.3, 1, 1.7} {
		prev := 0.0
		for _, k := range []int64{1, 10, 63, 64, 65, 100, 10000, 1000000} {
			v := genHarmonic(k, s)
			if v <= prev {
				t.Fatalf("H(%d, %g) = %g not increasing (prev %g)", k, s, v, prev)
			}
			prev = v
		}
	}
}

func TestTruthDistProvider(t *testing.T) {
	p := testProject(t)
	tr := &Truth{Project: p}
	tb := p.Tables[0]
	col := tb.Columns[0].Ref(tb)
	s := tr.CompareSelectivity(col, expr.FuncEQ, []float64{0})
	if s <= 0 || s > 1 {
		t.Fatalf("selectivity %g", s)
	}
	// Unknown columns are permissive.
	if tr.CompareSelectivity(expr.ColumnRef{Table: "nope", Column: "x"}, expr.FuncEQ, nil) != 1 {
		t.Fatal("unknown table should return 1")
	}
}

func TestTempTablesHaveBoundedLifespans(t *testing.T) {
	a := DefaultArchetype()
	a.Name = "temp"
	a.TempTableFrac = 1
	p := Generate(simrand.New(3), a)
	for _, tb := range p.Tables {
		if !tb.Temp {
			t.Fatalf("table %s not temp", tb.ID)
		}
		if tb.LifespanDays < 1 || tb.LifespanDays > 7 {
			t.Fatalf("temp lifespan %d", tb.LifespanDays)
		}
	}
}

func TestAliveTables(t *testing.T) {
	p := &Project{Tables: []*Table{
		{ID: "a", CreatedDay: 0, LifespanDays: 100},
		{ID: "b", CreatedDay: 5, LifespanDays: 2},
	}}
	if got := len(p.AliveTables(0)); got != 1 {
		t.Fatalf("day0 alive %d", got)
	}
	if got := len(p.AliveTables(6)); got != 2 {
		t.Fatalf("day6 alive %d", got)
	}
	if got := len(p.AliveTables(8)); got != 1 {
		t.Fatalf("day8 alive %d", got)
	}
}
