// Package warehouse models the data-at-rest side of a MaxCompute-like
// multi-tenant warehouse: projects (user-created database instances), their
// partitioned tables, and per-column value distributions.
//
// The column distributions defined here are the simulator's hidden ground
// truth: the execution simulator computes true cardinalities (and therefore
// true CPU costs) from them, while the optimizer only ever sees the possibly
// stale or missing statistics exposed by the stats package. The gap between
// the two is Challenge C2 of the paper.
package warehouse

import (
	"fmt"
	"math"
	"sort"

	"loam/internal/expr"
	"loam/internal/simrand"
)

// Column is one column of a table, with its hidden true value distribution.
// Values are identified by frequency rank in [0, NDV): rank 0 is the most
// frequent value under a Zipf(skew) law (skew 0 means uniform). Value order
// coincides with rank order, which is all range-predicate arithmetic needs.
type Column struct {
	ID       string  `json:"id"`   // globally unique, e.g. "p1.t003.c05"
	Name     string  `json:"name"` // short name within the table
	NDV      int64   `json:"ndv"`  // number of distinct values
	Skew     float64 `json:"skew"` // Zipf exponent; 0 = uniform
	NullFrac float64 `json:"nullFrac"`
}

// Ref returns the column's reference for use in predicates, given its table.
func (c *Column) Ref(t *Table) expr.ColumnRef {
	return expr.ColumnRef{Table: t.ID, Column: c.ID}
}

// Table is a logically partitioned table.
type Table struct {
	ID           string    `json:"id"`
	Name         string    `json:"name"`
	Rows         int64     `json:"rows"` // row count at creation day
	Partitions   int       `json:"partitions"`
	Columns      []*Column `json:"columns"`
	CreatedDay   int       `json:"createdDay"`
	LifespanDays int       `json:"lifespanDays"` // days the table exists after creation
	DailyGrowth  float64   `json:"dailyGrowth"`  // multiplicative row growth per day
	Temp         bool      `json:"temp"`         // short-lived analysis table
}

// AliveOn reports whether the table exists on the given simulated day.
func (t *Table) AliveOn(day int) bool {
	return day >= t.CreatedDay && day < t.CreatedDay+t.LifespanDays
}

// RowsAt returns the true row count on the given day. Growth compounds from
// the creation day; before creation the count is 0.
func (t *Table) RowsAt(day int) int64 {
	if day < t.CreatedDay {
		return 0
	}
	age := float64(day - t.CreatedDay)
	rows := float64(t.Rows) * math.Pow(t.DailyGrowth, age)
	if rows < 1 {
		rows = 1
	}
	return int64(rows)
}

// Column returns the column with the given ID, or nil.
func (t *Table) Column(id string) *Column {
	for _, c := range t.Columns {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Project is a user-created database instance: the unit of isolation,
// workload characterization, and learned-optimizer deployment.
type Project struct {
	Name   string   `json:"name"`
	Tables []*Table `json:"tables"`

	byID map[string]*Table
}

// Table returns the table with the given ID, or nil.
func (p *Project) Table(id string) *Table {
	if p.byID == nil {
		p.index()
	}
	return p.byID[id]
}

func (p *Project) index() {
	p.byID = make(map[string]*Table, len(p.Tables))
	for _, t := range p.Tables {
		p.byID[t.ID] = t
	}
}

// AliveTables returns the tables that exist on the given day.
func (p *Project) AliveTables(day int) []*Table {
	out := make([]*Table, 0, len(p.Tables))
	for _, t := range p.Tables {
		if t.AliveOn(day) {
			out = append(out, t)
		}
	}
	return out
}

// NumColumns returns the total number of columns across all tables.
func (p *Project) NumColumns() int {
	total := 0
	for _, t := range p.Tables {
		total += len(t.Columns)
	}
	return total
}

// StableTableRatio returns the fraction of tables with lifespan exceeding n
// days — the raw material of selector rule R3.
func (p *Project) StableTableRatio(n int) float64 {
	if len(p.Tables) == 0 {
		return 0
	}
	count := 0
	for _, t := range p.Tables {
		if t.LifespanDays > n {
			count++
		}
	}
	return float64(count) / float64(len(p.Tables))
}

// Truth is the ground-truth distribution view of a project. It implements
// expr.DistProvider exactly (no staleness, no missing data) and is consumed
// only by the execution simulator — never by the optimizer.
type Truth struct {
	Project *Project
}

var _ expr.DistProvider = (*Truth)(nil)

// CompareSelectivity returns the true fraction of rows satisfying
// fn(col, args...).
func (tr *Truth) CompareSelectivity(col expr.ColumnRef, fn expr.Func, args []float64) float64 {
	t := tr.Project.Table(col.Table)
	if t == nil {
		return 1
	}
	c := t.Column(col.Column)
	if c == nil {
		return 1
	}
	return ColumnSelectivity(c, fn, args)
}

// ColumnSelectivity evaluates an atomic comparison against a column's true
// Zipf(skew) distribution over NDV ranks.
func ColumnSelectivity(c *Column, fn expr.Func, args []float64) float64 {
	n := c.NDV
	if n <= 0 {
		n = 1
	}
	nonNull := 1 - c.NullFrac
	switch fn {
	case expr.FuncEQ:
		return nonNull * zipfPMF(rank(args, 0, n), n, c.Skew)
	case expr.FuncNE:
		return nonNull * (1 - zipfPMF(rank(args, 0, n), n, c.Skew))
	case expr.FuncLT:
		return nonNull * zipfCDF(rank(args, 0, n), n, c.Skew) // ranks strictly below r
	case expr.FuncLE:
		return nonNull * zipfCDF(rank(args, 0, n)+1, n, c.Skew)
	case expr.FuncGT:
		return nonNull * (1 - zipfCDF(rank(args, 0, n)+1, n, c.Skew))
	case expr.FuncGE:
		return nonNull * (1 - zipfCDF(rank(args, 0, n), n, c.Skew))
	case expr.FuncIn:
		s := 0.0
		for i := range args {
			s += zipfPMF(rank(args, i, n), n, c.Skew)
		}
		return clamp01(nonNull * s)
	case expr.FuncBetween:
		lo, hi := rank(args, 0, n), rank(args, 1, n)
		if hi < lo {
			lo, hi = hi, lo
		}
		return nonNull * (zipfCDF(hi+1, n, c.Skew) - zipfCDF(lo, n, c.Skew))
	case expr.FuncLike:
		// Pattern selectivity is not derivable from rank statistics; model it
		// as a deterministic function of the pattern argument so recurring
		// templates see stable truth.
		v := arg(args, 0)
		return 0.08 + 0.30*frac(v*0.6180339887498949)
	case expr.FuncIsNull:
		return c.NullFrac
	default:
		return 1
	}
}

func rank(args []float64, i int, n int64) int64 {
	v := int64(arg(args, i))
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func arg(args []float64, i int) float64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

func frac(v float64) float64 {
	_, f := math.Modf(math.Abs(v))
	return f
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// genHarmonic approximates the generalized harmonic number H(k, s) =
// sum_{i=1..k} i^-s using an Euler–Maclaurin integral correction. The
// approximation is monotone in k, which is the property selectivity
// arithmetic depends on.
func genHarmonic(k int64, s float64) float64 {
	if k <= 0 {
		return 0
	}
	kf := float64(k)
	if s == 0 {
		return kf
	}
	if k <= 64 {
		total := 0.0
		for i := int64(1); i <= k; i++ {
			total += math.Pow(float64(i), -s)
		}
		return total
	}
	// Exact head + integral tail with midpoint correction.
	const head = 64
	total := genHarmonic(head, s)
	a, b := float64(head), kf
	if s == 1 {
		total += math.Log(b) - math.Log(a)
	} else {
		total += (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
	}
	total += 0.5 * (math.Pow(b, -s) - math.Pow(a, -s))
	return total
}

// zipfPMF returns P(rank = r) for ranks 0-based over n values.
func zipfPMF(r, n int64, s float64) float64 {
	if n <= 0 {
		return 0
	}
	if s == 0 {
		return 1 / float64(n)
	}
	return math.Pow(float64(r+1), -s) / genHarmonic(n, s)
}

// zipfCDF returns P(rank < r) = H(r,s)/H(n,s) for 0-based ranks.
func zipfCDF(r, n int64, s float64) float64 {
	if r <= 0 {
		return 0
	}
	if r >= n {
		return 1
	}
	if s == 0 {
		return float64(r) / float64(n)
	}
	return genHarmonic(r, s) / genHarmonic(n, s)
}

// Archetype parameterizes project generation. The experiments package holds
// archetypes tuned to reproduce the paper's five evaluation projects
// (Table 1); arbitrary archetypes generate fleet projects for the selector
// experiments.
type Archetype struct {
	Name            string
	NumTables       int
	ColumnsPerTable int     // mean columns per table (geometric-ish spread)
	RowsLog10Mean   float64 // mean of log10 row count
	RowsLog10Std    float64
	MaxPartitions   int
	TempTableFrac   float64 // fraction of short-lived tables
	GrowthMean      float64 // mean daily multiplicative growth (e.g. 1.01)
	SkewMax         float64 // max Zipf exponent for columns
	HorizonDays     int     // days of simulated catalog history
}

// DefaultArchetype returns a mid-sized analytical project.
func DefaultArchetype() Archetype {
	return Archetype{
		Name:            "default",
		NumTables:       40,
		ColumnsPerTable: 12,
		RowsLog10Mean:   5.0,
		RowsLog10Std:    1.0,
		MaxPartitions:   256,
		TempTableFrac:   0.2,
		GrowthMean:      1.01,
		SkewMax:         1.2,
		HorizonDays:     40,
	}
}

// Generate builds a project from an archetype, deterministically from rng.
func Generate(rng *simrand.RNG, a Archetype) *Project {
	if a.NumTables <= 0 {
		a.NumTables = 1
	}
	if a.ColumnsPerTable <= 0 {
		a.ColumnsPerTable = 4
	}
	if a.HorizonDays <= 0 {
		a.HorizonDays = 40
	}
	p := &Project{Name: a.Name, Tables: make([]*Table, 0, a.NumTables)}
	for ti := 0; ti < a.NumTables; ti++ {
		tRNG := rng.DeriveN("table", ti)
		t := generateTable(tRNG, a, ti)
		p.Tables = append(p.Tables, t)
	}
	sort.Slice(p.Tables, func(i, j int) bool { return p.Tables[i].ID < p.Tables[j].ID })
	p.index()
	return p
}

func generateTable(rng *simrand.RNG, a Archetype, ti int) *Table {
	id := fmt.Sprintf("%s.t%03d", a.Name, ti)
	rows := math.Pow(10, rng.Normal(a.RowsLog10Mean, a.RowsLog10Std))
	if rows < 10 {
		rows = 10
	}
	parts := 1
	if a.MaxPartitions > 1 {
		// Bigger tables get more partitions; at least 1.
		parts = int(math.Max(1, math.Min(float64(a.MaxPartitions), rows/50_000)))
		if parts > 1 {
			parts += rng.Intn(parts) // jitter
			if parts > a.MaxPartitions {
				parts = a.MaxPartitions
			}
		}
	}
	nCols := 2 + rng.Intn(2*a.ColumnsPerTable-2) // mean ≈ ColumnsPerTable, min 2
	cols := make([]*Column, nCols)
	for ci := 0; ci < nCols; ci++ {
		ndv := int64(math.Pow(10, rng.Uniform(0.5, math.Log10(rows)+0.1)))
		if ndv < 2 {
			ndv = 2
		}
		if ndv > int64(rows) {
			ndv = int64(rows)
		}
		cols[ci] = &Column{
			ID:       fmt.Sprintf("%s.c%02d", id, ci),
			Name:     fmt.Sprintf("c%02d", ci),
			NDV:      ndv,
			Skew:     rng.Uniform(0, a.SkewMax),
			NullFrac: rng.Uniform(0, 0.05),
		}
	}
	t := &Table{
		ID:          id,
		Name:        fmt.Sprintf("t%03d", ti),
		Rows:        int64(rows),
		Partitions:  parts,
		Columns:     cols,
		DailyGrowth: math.Max(1.0, rng.Normal(a.GrowthMean, 0.01)),
	}
	if rng.Bool(a.TempTableFrac) {
		t.Temp = true
		t.CreatedDay = rng.Intn(a.HorizonDays)
		t.LifespanDays = 1 + rng.Intn(7)
	} else {
		t.CreatedDay = 0
		t.LifespanDays = 10 * a.HorizonDays // effectively permanent
	}
	return t
}
