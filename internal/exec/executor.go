package exec

import (
	"fmt"
	"math"
	"sync"

	"loam/internal/cardinality"
	"loam/internal/cluster"
	"loam/internal/plan"
	"loam/internal/simrand"
	"loam/internal/telemetry"
	"loam/internal/warehouse"
)

// Record is the execution log entry written to the historical query
// repository (§2.1, phase 4): the plan, per-stage execution environments,
// and the end-to-end CPU cost and latency.
type Record struct {
	QueryID    string
	TemplateID string
	Day        int
	Plan       *plan.Plan
	// StageEnvs[i] is the average load metrics of the machines stage i ran
	// on, averaged over the stage's execution window.
	StageEnvs []cluster.Metrics
	// StageCosts[i] is stage i's CPU cost.
	StageCosts []float64
	CPUCost    float64
	LatencySec float64

	stageOf map[*plan.Node]int
}

// NodeEnv returns the execution environment of the stage containing n. All
// nodes of a stage share one environment (§4). The boolean is false for
// nodes not in this record's plan.
func (r *Record) NodeEnv(n *plan.Node) (cluster.Metrics, bool) {
	idx, ok := r.stageOf[n]
	if !ok || idx >= len(r.StageEnvs) {
		return cluster.Metrics{}, false
	}
	return r.StageEnvs[idx], true
}

// Options tunes one execution.
type Options struct {
	// NoiseSigma is the per-stage log-normal noise parameter; recurring
	// templates carry their own sigma so the fleet reproduces Fig. 1's
	// spread of cost variability.
	NoiseSigma float64
	// MaxInstances caps stage parallelism.
	MaxInstances int
}

// DefaultOptions returns moderate noise and parallelism.
func DefaultOptions() Options {
	return Options{NoiseSigma: 0.10, MaxInstances: 64}
}

// Executor runs plans against a project's ground truth on a shared cluster.
// Execute is safe to call from multiple goroutines: executions serialize on
// an internal mutex, because each one advances simulated time and draws from
// the executor's noise stream. Work and CostUnderEnv are read-only and run
// without the lock. Under concurrent callers the interleaving of executions
// (and therefore costs) depends on goroutine scheduling; determinism requires
// a single driving goroutine, as before.
type Executor struct {
	Cluster *cluster.Cluster
	Project *warehouse.Project
	Coeffs  CostCoeffs

	mu      sync.Mutex
	rng     *simrand.RNG
	counter int
	tel     execTelemetry
}

// execTelemetry holds the executor's resolved instruments; nil-safe no-ops
// until Instrument wires a registry.
type execTelemetry struct {
	executions *telemetry.Counter
	stages     *telemetry.Counter
	instances  *telemetry.Counter
	stageCost  *telemetry.Histogram
}

// Instrument wires substrate-level execution metrics into reg: executed
// plans, stage and instance counts, and a per-stage CPU-cost distribution.
// All of them are order-independent aggregates, so identically-seeded
// single-driver runs snapshot identically. Call before concurrent use.
func (ex *Executor) Instrument(reg *telemetry.Registry) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.tel = execTelemetry{
		executions: reg.Counter("exec.executions"),
		stages:     reg.Counter("exec.stages"),
		instances:  reg.Counter("exec.instances"),
		stageCost:  reg.Histogram("exec.stage.cost", telemetry.ExpBuckets(1e3, 10, 9)),
	}
}

// NewExecutor builds an executor. The RNG seeds execution noise only; the
// cluster carries its own streams.
func NewExecutor(rng *simrand.RNG, cl *cluster.Cluster, p *warehouse.Project) *Executor {
	return &Executor{
		Cluster: cl,
		Project: p,
		Coeffs:  DefaultCoeffs(),
		rng:     rng.Derive("executor"),
	}
}

// Work returns the environment-independent work of each stage of a plan,
// with the decomposition it was computed over.
func (ex *Executor) Work(p *plan.Plan, day int) (total float64, perStage []float64, d *Decomposition, cards *cardinality.Result) {
	est := &cardinality.Estimator{Src: cardinality.TruthSource(ex.Project, day)}
	cards = est.Estimate(p.Root)
	d = Decompose(p.Root)
	perStage = make([]float64, len(d.Stages))
	for i, s := range d.Stages {
		s.Instances = ex.stageInstances(s, cards, DefaultOptions().MaxInstances)
		w := 0.0
		for _, n := range s.Nodes {
			w += ex.Coeffs.NodeWork(n, cards, s.Instances)
		}
		perStage[i] = w
		total += w
	}
	return total, perStage, d, cards
}

func (ex *Executor) stageInstances(s *Stage, cards *cardinality.Result, maxInstances int) int {
	input := 0.0
	hint := 0
	for _, n := range s.Nodes {
		if n.Op == plan.OpTableScan {
			input += cards.Rows(n)
		}
		if n.Parallelism > hint {
			hint = n.Parallelism
		}
	}
	for _, c := range s.Children {
		input += cards.Rows(c.Root)
	}
	return sizeInstances(input, maxInstances, hint)
}

// Execute runs the plan on the shared cluster, advancing simulated time and
// returning the execution record. Day selects the catalog state (table sizes
// grow over days).
func (ex *Executor) Execute(p *plan.Plan, day int, opt Options) *Record {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if opt.MaxInstances <= 0 {
		opt.MaxInstances = 64
	}
	if opt.NoiseSigma <= 0 {
		opt.NoiseSigma = 0.10
	}
	_, perStage, d, _ := ex.Work(p, day)

	ex.counter++
	ex.tel.executions.Inc()
	ex.tel.stages.Add(int64(len(d.Stages)))
	rec := &Record{
		QueryID:    fmt.Sprintf("q%08d", ex.counter),
		Day:        day,
		Plan:       p,
		StageEnvs:  make([]cluster.Metrics, len(d.Stages)),
		StageCosts: make([]float64, len(d.Stages)),
		stageOf:    make(map[*plan.Node]int, len(d.StageOf)),
	}
	for n, s := range d.StageOf {
		rec.stageOf[n] = s.ID
	}

	var latency float64
	for i, s := range d.Stages {
		work := perStage[i]
		machines := ex.Cluster.Allocate(min(s.Instances, ex.Cluster.Size()/2))
		// ~100 work units per instance-second; windows clipped for
		// simulation efficiency.
		duration := work / (float64(s.Instances) * 100)
		if duration < cluster.SampleInterval {
			duration = cluster.SampleInterval
		}
		if duration > 600 {
			duration = 600
		}

		// Average the machines' metrics across the execution window.
		env := ex.Cluster.Average(machines)
		ex.Cluster.AddLoad(machines, loadFootprint(work, s.Instances))
		ex.Cluster.Advance(math.Min(duration, 3*cluster.SampleInterval))
		env = env.Add(ex.Cluster.Average(machines)).Scale(0.5)

		factor := EnvFactor(env)
		if env.MemUsage > ex.Coeffs.SpillThreshold && stageHashHeavy(s) {
			factor *= ex.Coeffs.SpillPenalty
		}
		// Mean-one log-normal noise.
		sigma := opt.NoiseSigma
		noise := ex.rng.LogNormal(-sigma*sigma/2, sigma)

		cost := work * factor * noise
		rec.StageEnvs[i] = env
		rec.StageCosts[i] = cost
		rec.CPUCost += cost
		ex.tel.stageCost.Observe(cost)
		ex.tel.instances.Add(int64(s.Instances))

		// End-to-end latency is far noisier than CPU cost (§3): stages queue
		// behind other tenants' work and suffer straggler instances, both
		// worse under load. This is why LOAM predicts CPU cost.
		queueWait := ex.rng.LogNormal(2.2, 0.9) * (1.2 - env.CPUIdle)
		straggler := ex.rng.LogNormal(0, 0.35)
		latency += queueWait + duration*straggler
	}
	rec.LatencySec = latency
	return rec
}

// CostUnderEnv returns the plan's cost if every stage ran under the given
// fixed environment, with fresh noise — the quantity C_e(P) of §5's
// theoretical model. A zero-sigma call returns the deterministic cost.
func (ex *Executor) CostUnderEnv(p *plan.Plan, day int, env cluster.Metrics, sigma float64, rng *simrand.RNG) float64 {
	total, perStage, d, _ := ex.Work(p, day)
	_ = total
	factor := EnvFactor(env)
	cost := 0.0
	for i, s := range d.Stages {
		f := factor
		if env.MemUsage > ex.Coeffs.SpillThreshold && stageHashHeavy(s) {
			f *= ex.Coeffs.SpillPenalty
		}
		noise := 1.0
		if sigma > 0 && rng != nil {
			noise = rng.LogNormal(-sigma*sigma/2, sigma)
		}
		cost += perStage[i] * f * noise
	}
	return cost
}

// Flight re-executes a plan n times in the flighting environment (§3): the
// shared cluster advances, but nothing is logged to any project history, and
// the mean cost is returned as ground truth.
func (ex *Executor) Flight(p *plan.Plan, day, n int, opt Options) float64 {
	if n <= 0 {
		n = 1
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += ex.Execute(p, day, opt).CPUCost
	}
	return total / float64(n)
}

func stageHashHeavy(s *Stage) bool {
	for _, n := range s.Nodes {
		if hashHeavy(n.Op) {
			return true
		}
	}
	return false
}

func loadFootprint(work float64, instances int) float64 {
	v := work / (float64(instances) * 50_000)
	if v > 0.3 {
		v = 0.3
	}
	return v
}
