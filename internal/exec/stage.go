// Package exec simulates distributed plan execution: stage decomposition at
// reshuffle boundaries, Fuxi-style per-stage resource allocation, and a
// ground-truth CPU-cost model with environment sensitivity and log-normal
// noise — the paper's Figure 1 workflow, phases 2–4.
package exec

import (
	"math"

	"loam/internal/plan"
)

// Stage is one unit of scheduling: a maximal pipeline of operators between
// exchange boundaries. Children are the stages that must complete before
// this one becomes eligible (§2.1, phase 2).
type Stage struct {
	ID    int
	Root  *plan.Node
	Nodes []*plan.Node
	// Children are upstream stages feeding this one through exchanges.
	Children []*Stage
	// Instances is the number of parallel instances the stage runs with.
	Instances int
}

// Decomposition is a plan broken into its stage tree.
type Decomposition struct {
	Root   *Stage
	Stages []*Stage // topological order: children before parents
	// StageOf maps every plan node to its stage; all nodes of a stage share
	// one execution environment (§4).
	StageOf map[*plan.Node]*Stage
}

// Decompose splits a plan into stages. Exchange-type operators belong to the
// consumer stage (they model the reshuffle receive); their children start new
// stages.
func Decompose(root *plan.Node) *Decomposition {
	d := &Decomposition{StageOf: make(map[*plan.Node]*Stage, root.Size())}
	d.Root = d.build(root)
	return d
}

func (d *Decomposition) build(root *plan.Node) *Stage {
	s := &Stage{ID: -1}
	d.collect(root, s)
	// Assign IDs in topological (children-first) order.
	s.ID = len(d.Stages)
	d.Stages = append(d.Stages, s)
	return s
}

// collect walks a stage's pipeline, cutting at exchange children.
func (d *Decomposition) collect(n *plan.Node, s *Stage) {
	if n == nil {
		return
	}
	s.Nodes = append(s.Nodes, n)
	if s.Root == nil {
		s.Root = n
	}
	d.StageOf[n] = s
	for _, c := range n.Children {
		if n.Op.IsExchange() {
			// The exchange's producer side is a separate stage.
			child := d.build(c)
			s.Children = append(s.Children, child)
		} else {
			d.collect(c, s)
		}
	}
}

// sizeInstances derives a stage's instance count from the rows entering it.
// One instance per ~250k input rows, capped — mirroring MaxCompute's 1 to
// 100,000-instance range at reduced scale.
func sizeInstances(inputRows float64, maxInstances int, hint int) int {
	if hint > 0 {
		return min(hint, maxInstances)
	}
	n := int(math.Ceil(inputRows / 250_000))
	if n < 1 {
		n = 1
	}
	if n > maxInstances {
		n = maxInstances
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
