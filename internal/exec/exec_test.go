package exec

import (
	"math"
	"testing"

	"loam/internal/cardinality"
	"loam/internal/cluster"
	"loam/internal/expr"
	"loam/internal/plan"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

func testPlanWithExchanges() *plan.Plan {
	scanA := &plan.Node{Op: plan.OpTableScan, Table: "x.t000", PartitionsRead: 1, ColumnsAccessed: 2}
	scanB := &plan.Node{Op: plan.OpTableScan, Table: "x.t001", PartitionsRead: 1, ColumnsAccessed: 1}
	join := &plan.Node{
		Op: plan.OpHashJoin, JoinForm: plan.JoinInner,
		LeftCols:  []expr.ColumnRef{{Table: "x.t000", Column: "x.t000.c00"}},
		RightCols: []expr.ColumnRef{{Table: "x.t001", Column: "x.t001.c00"}},
		Children: []*plan.Node{
			{Op: plan.OpExchange, Children: []*plan.Node{scanA}},
			{Op: plan.OpExchange, Children: []*plan.Node{scanB}},
		},
	}
	return &plan.Plan{Root: &plan.Node{Op: plan.OpSelect, Children: []*plan.Node{join}}}
}

func TestDecomposeStages(t *testing.T) {
	p := testPlanWithExchanges()
	d := Decompose(p.Root)
	// Two exchanges → three stages.
	if len(d.Stages) != 3 {
		t.Fatalf("stages %d", len(d.Stages))
	}
	// Every node belongs to exactly one stage.
	count := 0
	p.Root.Walk(func(n *plan.Node) {
		count++
		if _, ok := d.StageOf[n]; !ok {
			t.Fatalf("node %v not in any stage", n.Op)
		}
	})
	if count != len(d.StageOf) {
		t.Fatalf("stage map covers %d of %d nodes", len(d.StageOf), count)
	}
	// Topological order: children before parents.
	pos := map[*Stage]int{}
	for i, s := range d.Stages {
		pos[s] = i
	}
	for _, s := range d.Stages {
		for _, c := range s.Children {
			if pos[c] >= pos[s] {
				t.Fatal("child stage not before parent")
			}
		}
	}
	// Root stage is last and holds the plan root.
	if d.Root != d.Stages[len(d.Stages)-1] {
		t.Fatal("root stage misplaced")
	}
	if d.Root.Root != p.Root {
		t.Fatal("root stage root mismatch")
	}
}

func TestDecomposeSingleStage(t *testing.T) {
	p := &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: "t", PartitionsRead: 1}}
	d := Decompose(p.Root)
	if len(d.Stages) != 1 || len(d.Stages[0].Nodes) != 1 {
		t.Fatalf("stages %d", len(d.Stages))
	}
}

func TestSizeInstances(t *testing.T) {
	if got := sizeInstances(100, 64, 0); got != 1 {
		t.Fatalf("small input instances %d", got)
	}
	if got := sizeInstances(1e9, 64, 0); got != 64 {
		t.Fatalf("huge input should cap at 64, got %d", got)
	}
	if got := sizeInstances(1e9, 64, 8); got != 8 {
		t.Fatalf("hint should win, got %d", got)
	}
	if got := sizeInstances(1e9, 64, 128); got != 64 {
		t.Fatalf("hint should still cap, got %d", got)
	}
}

func TestEnvFactorMonotonicity(t *testing.T) {
	// Typical allocated-machine conditions (Fuxi prefers idle machines).
	base := cluster.Metrics{CPUIdle: 0.8, IOWait: 0.05, Load5: 8, MemUsage: 0.5}
	f0 := EnvFactor(base)
	busy := base
	busy.CPUIdle = 0.1
	if EnvFactor(busy) <= f0 {
		t.Fatal("lower idle should cost more")
	}
	io := base
	io.IOWait = 0.3
	if EnvFactor(io) <= f0 {
		t.Fatal("higher IO wait should cost more")
	}
	loaded := base
	loaded.Load5 = 40
	if EnvFactor(loaded) <= f0 {
		t.Fatal("higher load should cost more")
	}
	// Near-average conditions should be near factor 1.
	if f0 < 0.7 || f0 > 1.3 {
		t.Fatalf("average-case factor %g not near 1", f0)
	}
}

func testEnv(seed uint64) (*Executor, *warehouse.Project) {
	a := warehouse.DefaultArchetype()
	a.Name = "x"
	a.TempTableFrac = 0
	a.NumTables = 4
	proj := warehouse.Generate(simrand.New(seed), a)
	cfg := cluster.DefaultConfig()
	cfg.Machines = 32
	cl := cluster.New(simrand.New(seed+1), cfg)
	return NewExecutor(simrand.New(seed+2), cl, proj), proj
}

func TestWorkPositiveAndStable(t *testing.T) {
	ex, _ := testEnv(30)
	p := testPlanWithExchanges()
	w1, per, d, cards := ex.Work(p, 1)
	if w1 <= 0 {
		t.Fatalf("work %g", w1)
	}
	if len(per) != len(d.Stages) {
		t.Fatalf("per-stage %d vs stages %d", len(per), len(d.Stages))
	}
	sum := 0.0
	for _, v := range per {
		sum += v
	}
	if math.Abs(sum-w1) > 1e-9 {
		t.Fatalf("per-stage sum %g != total %g", sum, w1)
	}
	if cards.Rows(p.Root) <= 0 {
		t.Fatal("root cardinality missing")
	}
	// Work is deterministic (no env, no noise).
	w2, _, _, _ := ex.Work(p, 1)
	if w1 != w2 {
		t.Fatal("work not deterministic")
	}
}

func TestExecuteRecordConsistency(t *testing.T) {
	ex, _ := testEnv(31)
	p := testPlanWithExchanges()
	rec := ex.Execute(p, 1, DefaultOptions())
	if rec.CPUCost <= 0 || rec.LatencySec <= 0 {
		t.Fatalf("cost %g latency %g", rec.CPUCost, rec.LatencySec)
	}
	sum := 0.0
	for _, c := range rec.StageCosts {
		if c <= 0 {
			t.Fatalf("stage cost %g", c)
		}
		sum += c
	}
	if math.Abs(sum-rec.CPUCost) > 1e-6*rec.CPUCost {
		t.Fatalf("stage costs sum %g != total %g", sum, rec.CPUCost)
	}
	// Every plan node reports an environment.
	p.Root.Walk(func(n *plan.Node) {
		if _, ok := rec.NodeEnv(n); !ok {
			t.Fatalf("node %v has no environment", n.Op)
		}
	})
	// Nodes in the same stage share the environment.
	d := Decompose(p.Root)
	for n, s := range d.StageOf {
		e1, _ := rec.NodeEnv(n)
		e2, _ := rec.NodeEnv(s.Root)
		if e1 != e2 {
			t.Fatal("stage members report different environments")
		}
	}
}

func TestNodeEnvUnknownNode(t *testing.T) {
	ex, _ := testEnv(32)
	rec := ex.Execute(testPlanWithExchanges(), 1, DefaultOptions())
	if _, ok := rec.NodeEnv(&plan.Node{Op: plan.OpSort}); ok {
		t.Fatal("foreign node should have no environment")
	}
}

func TestCostUnderEnvDeterministicAtZeroSigma(t *testing.T) {
	ex, _ := testEnv(33)
	p := testPlanWithExchanges()
	env := cluster.Metrics{CPUIdle: 0.5, IOWait: 0.05, Load5: 10, MemUsage: 0.5}
	c1 := ex.CostUnderEnv(p, 1, env, 0, nil)
	c2 := ex.CostUnderEnv(p, 1, env, 0, nil)
	if c1 != c2 || c1 <= 0 {
		t.Fatalf("CostUnderEnv unstable: %g vs %g", c1, c2)
	}
	// Busier environment costs more.
	busy := env
	busy.CPUIdle = 0.05
	if ex.CostUnderEnv(p, 1, busy, 0, nil) <= c1 {
		t.Fatal("busy env should cost more")
	}
}

func TestSpillPenaltyAppliesUnderMemoryPressure(t *testing.T) {
	ex, _ := testEnv(34)
	p := testPlanWithExchanges() // hash join inside
	low := cluster.Metrics{CPUIdle: 0.5, IOWait: 0.05, Load5: 10, MemUsage: 0.5}
	high := low
	high.MemUsage = 0.95
	cLow := ex.CostUnderEnv(p, 1, low, 0, nil)
	cHigh := ex.CostUnderEnv(p, 1, high, 0, nil)
	// Beyond the plain env factor increase, the spill penalty applies.
	ratio := cHigh / cLow
	plain := EnvFactor(high) / EnvFactor(low)
	if ratio <= plain*1.05 {
		t.Fatalf("no spill penalty visible: ratio %g vs plain %g", ratio, plain)
	}
}

func TestFlightAveragesExecutions(t *testing.T) {
	ex, _ := testEnv(35)
	p := testPlanWithExchanges()
	avg := ex.Flight(p, 1, 5, DefaultOptions())
	if avg <= 0 {
		t.Fatalf("flight avg %g", avg)
	}
}

func TestExecutionVariance(t *testing.T) {
	ex, _ := testEnv(36)
	p := testPlanWithExchanges()
	opt := DefaultOptions()
	opt.NoiseSigma = 0.15
	var costs []float64
	for i := 0; i < 30; i++ {
		costs = append(costs, ex.Execute(p, 1, opt).CPUCost)
	}
	mean, varSum := 0.0, 0.0
	for _, c := range costs {
		mean += c
	}
	mean /= float64(len(costs))
	for _, c := range costs {
		varSum += (c - mean) * (c - mean)
	}
	rsd := math.Sqrt(varSum/float64(len(costs))) / mean
	if rsd < 0.02 {
		t.Fatalf("recurring executions suspiciously stable: RSD %g", rsd)
	}
	if rsd > 0.8 {
		t.Fatalf("recurring executions too wild: RSD %g", rsd)
	}
}

func TestNodeWorkCoversAllOps(t *testing.T) {
	coeffs := DefaultCoeffs()
	src := cardinality.Source{
		Rows:       func(string) float64 { return 1000 },
		Partitions: func(string) int { return 4 },
		Dist:       fixedDist{},
		NDV:        func(expr.ColumnRef) float64 { return 100 },
	}
	est := &cardinality.Estimator{Src: src}
	for op := plan.OpType(1); int(op) <= plan.NumOpTypes; op++ {
		n := &plan.Node{Op: op, Table: "t", PartitionsRead: 2, ColumnsAccessed: 1}
		if op.IsFilterLike() {
			n.Pred = expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "t", Column: "c"}, 1)
		}
		if int(op) != int(plan.OpTableScan) {
			n.Children = []*plan.Node{{Op: plan.OpTableScan, Table: "t", PartitionsRead: 2, ColumnsAccessed: 1}}
		}
		cards := est.Estimate(n)
		w := coeffs.NodeWork(n, cards, 8)
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("op %v work = %g", op, w)
		}
	}
}

type fixedDist struct{}

func (fixedDist) CompareSelectivity(expr.ColumnRef, expr.Func, []float64) float64 { return 0.5 }
