package exec

import (
	"math"

	"loam/internal/cardinality"
	"loam/internal/cluster"
	"loam/internal/plan"
)

// CostCoeffs are the per-operator work coefficients of the ground-truth cost
// model. Units are abstract CPU-cost per row; with the synthetic catalogs
// used by the experiments they place per-query costs in the paper's
// 10^3–10^7 range.
type CostCoeffs struct {
	Scan         float64 // per row × column factor
	FilterRow    float64 // per input row × predicate-size factor
	HashBuild    float64 // per build-side row
	HashProbe    float64 // per probe-side row
	MergeJoinRow float64 // per row of either input (plus sort terms)
	NLJPair      float64 // per row-pair
	BroadcastRow float64 // per replicated row per instance
	AggRow       float64 // per input row
	AggGroup     float64 // per output group
	SortRowLog   float64 // per row × log2(rows)
	ExchangeRow  float64 // per shuffled row
	SpoolRow     float64 // per materialized row
	OutputRow    float64 // per emitted row (joins, select)
	WindowRowLog float64
	// SpillThreshold is the MEM_USAGE level above which hash operators pay
	// SpillPenalty (memory pressure forces spilling).
	SpillThreshold float64
	SpillPenalty   float64
}

// DefaultCoeffs returns the coefficients used by all experiments.
func DefaultCoeffs() CostCoeffs {
	return CostCoeffs{
		Scan:           0.005,
		FilterRow:      0.002,
		HashBuild:      0.012,
		HashProbe:      0.005,
		MergeJoinRow:   0.006,
		NLJPair:        0.00008,
		BroadcastRow:   0.004,
		AggRow:         0.006,
		AggGroup:       0.004,
		SortRowLog:     0.0012,
		ExchangeRow:    0.008,
		SpoolRow:       0.004,
		OutputRow:      0.001,
		WindowRowLog:   0.0015,
		SpillThreshold: 0.85,
		SpillPenalty:   1.35,
	}
}

// NodeWork returns the environment-independent work of one operator given
// the cardinality result for its plan. This is the quantity the environment
// factor and noise multiply.
func (c CostCoeffs) NodeWork(n *plan.Node, cards *cardinality.Result, instances int) float64 {
	out := cards.Rows(n)
	in := func(i int) float64 {
		if i < len(n.Children) {
			return cards.Rows(n.Children[i])
		}
		return 1
	}
	switch n.Op {
	case plan.OpTableScan:
		colFactor := 0.4 + 0.08*float64(n.ColumnsAccessed)
		return c.Scan * out * colFactor
	case plan.OpFilter, plan.OpCalc:
		predFactor := 1 + 0.15*float64(n.Pred.Size())
		return c.FilterRow*in(0)*predFactor + c.OutputRow*out
	case plan.OpProject, plan.OpSelect, plan.OpSink, plan.OpValues:
		return c.OutputRow * out
	case plan.OpHashJoin, plan.OpSemiJoin, plan.OpAntiJoin:
		// Right child is the build side by convention.
		return c.HashBuild*in(1) + c.HashProbe*in(0) + c.OutputRow*out
	case plan.OpMergeJoin:
		l, r := in(0), in(1)
		return c.MergeJoinRow*(l+r) + c.SortRowLog*(l*log2(l)+r*log2(r))*0.25 + c.OutputRow*out
	case plan.OpNestedLoopJoin:
		return c.NLJPair*in(0)*in(1) + c.OutputRow*out
	case plan.OpBroadcastJoin:
		// Right side replicated to every instance, then local probe.
		return c.BroadcastRow*in(1)*float64(instances) + c.HashProbe*in(0) + c.OutputRow*out
	case plan.OpHashAggregate, plan.OpPartialAggregate, plan.OpFinalAggregate, plan.OpDistinct:
		f := 1 + 0.1*float64(len(n.AggFuncs))
		return c.AggRow*in(0)*f + c.AggGroup*out
	case plan.OpSortAggregate:
		f := 1 + 0.1*float64(len(n.AggFuncs))
		return c.SortRowLog*in(0)*log2(in(0)) + c.AggRow*in(0)*f*0.5 + c.AggGroup*out
	case plan.OpSort, plan.OpLocalSort, plan.OpTopN:
		return c.SortRowLog * in(0) * log2(in(0))
	case plan.OpWindow:
		return c.WindowRowLog * in(0) * log2(in(0))
	case plan.OpExchange:
		return c.ExchangeRow * in(0)
	case plan.OpBroadcastExchange:
		return c.BroadcastRow * in(0) * float64(instances)
	case plan.OpSpool:
		return c.SpoolRow * in(0)
	case plan.OpLazySpool:
		return c.SpoolRow * in(0) * 0.4
	case plan.OpUnion, plan.OpExpand, plan.OpSample, plan.OpLimit:
		return c.OutputRow * (in(0) + out)
	default:
		return c.OutputRow * out
	}
}

// hashHeavy reports whether the operator is memory-pressure sensitive.
func hashHeavy(op plan.OpType) bool {
	switch op {
	case plan.OpHashJoin, plan.OpBroadcastJoin, plan.OpSemiJoin, plan.OpAntiJoin,
		plan.OpHashAggregate, plan.OpPartialAggregate, plan.OpFinalAggregate, plan.OpDistinct:
		return true
	default:
		return false
	}
}

// EnvFactor returns the multiplicative cost effect of a stage's execution
// environment. It is affine in (1−CPU_IDLE), IO_WAIT, normalized LOAD5 and
// MEM_USAGE — the "discernible, roughly monotonic, coarsely linear"
// influence of §5 / Fig. 5 — normalized to ≈1 at typical average conditions.
func EnvFactor(m cluster.Metrics) float64 {
	f := m.Normalized()
	idle, io, load5, mem := f[0], f[1], f[2], f[3]
	v := 0.40 + 1.30*(1-idle) + 1.20*io + 0.38*load5 + 0.15*mem
	if v < 0.3 {
		v = 0.3
	}
	return v
}

func log2(v float64) float64 {
	if v < 2 {
		return 1
	}
	return math.Log2(v)
}
