// Package nativeopt implements the MaxCompute-stand-in native cost-based
// optimizer (§2.1, phase 1): join ordering, physical operator selection,
// partition pruning and exchange placement, all driven by the possibly stale
// or missing statistics view — plus the tunable optimization flags and the
// cardinality-scaling knob that LOAM's plan explorer steers (§3).
//
// The optimizer's failure modes are faithful to the paper: when column
// statistics are missing for any involved table, join reordering is disabled
// and the syntactic order is used; selectivities fall back to magic
// constants; row counts come from stale snapshots. Those errors are what
// give candidate plans real headroom over default plans.
package nativeopt

import (
	"math"

	"loam/internal/cardinality"
	"loam/internal/expr"
	"loam/internal/floatsafe"
	"loam/internal/plan"
	"loam/internal/query"
	"loam/internal/stats"
)

// Flags are the six exploration flags (join, shuffling, spool, filter,
// parallelism and execution-mode related) LOAM toggles, following Bao.
type Flags struct {
	// MergeJoin prefers sort-merge joins over hash joins.
	MergeJoin bool
	// BroadcastJoin raises the broadcast-join row threshold 10×.
	BroadcastJoin bool
	// ShuffleCombine inserts partial aggregation below the shuffle
	// (combine-before-exchange), trading local work for shuffle volume.
	ShuffleCombine bool
	// SpoolEager materializes intermediate results eagerly (Spool) instead
	// of lazily (LazySpool); eager spools are immune to memory-pressure
	// spill penalties.
	SpoolEager bool
	// FilterPushdown pushes predicates the default rules consider
	// non-sargable below joins.
	FilterPushdown bool
	// DopHigh doubles the degree of parallelism of exchanges.
	DopHigh bool
}

// Knobs renders the flags as the knob labels recorded on plans.
func (f Flags) Knobs() []string {
	var out []string
	if f.MergeJoin {
		out = append(out, "flag:mergeJoin")
	}
	if f.BroadcastJoin {
		out = append(out, "flag:broadcastJoin")
	}
	if f.ShuffleCombine {
		out = append(out, "flag:shuffleCombine")
	}
	if f.SpoolEager {
		out = append(out, "flag:spoolEager")
	}
	if f.FilterPushdown {
		out = append(out, "flag:filterPushdown")
	}
	if f.DopHigh {
		out = append(out, "flag:dopHigh")
	}
	return out
}

// IsZero reports whether no flag is set.
func (f Flags) IsZero() bool { return f == Flags{} }

// Physical-selection thresholds (estimated rows).
const (
	broadcastThresholdDefault = 5e4
	broadcastThresholdFlagged = 5e5
	nestedLoopThreshold       = 1e3
	// mergeJoinThreshold is the estimated build-side size above which the
	// native optimizer prefers a sort-merge join (hash table too large).
	mergeJoinThreshold = 1.5e7
	// spoolThreshold is the estimated intermediate size above which the
	// native optimizer materializes eagerly.
	spoolThreshold = 3e7
	// combineRatio: partial aggregation is applied by default when estimated
	// groups are at least this many times smaller than the input.
	combineRatio = 2500
	highDOP      = 128
)

// Optimizer plans queries against one statistics view.
type Optimizer struct {
	View *stats.View
	// CardScale is the Lero-style knob: scale estimated cardinalities of
	// sub-plans spanning ≥3 tables. 0 or 1 = off.
	CardScale float64
}

// New builds an optimizer over a statistics view.
func New(v *stats.View) *Optimizer { return &Optimizer{View: v} }

// DefaultPlan compiles the query with all exploration flags off and the
// default cardinality scaling — the plan MaxCompute would run with no
// learned steering. The guarded serving layer uses it as the
// native-fallback rung when the learned path is unavailable.
func DefaultPlan(v *stats.View, q *query.Query) *plan.Plan {
	return New(v).Optimize(q, Flags{})
}

func (o *Optimizer) estimator() *cardinality.Estimator {
	return &cardinality.Estimator{Src: cardinality.ViewSource(o.View), CardScale: o.CardScale}
}

// Optimize compiles a logical query into a physical plan under the given
// flags. The result is deterministic in (query, view, flags, CardScale).
func (o *Optimizer) Optimize(q *query.Query, f Flags) *plan.Plan {
	b := &builder{opt: o, q: q, flags: f, est: o.estimator()}
	root := b.build()
	knobs := f.Knobs()
	if o.CardScale > 0 && o.CardScale != 1 {
		knobs = append(knobs, "cardScale")
	}
	return &plan.Plan{Root: root, Knobs: knobs}
}

// RoughCost is the native expert cost model: per-operator work over
// *estimated* cardinalities, with no environment term. It ranks candidate
// plans for the explorer's top-k cut and mirrors how the native optimizer
// selects its default plan.
func (o *Optimizer) RoughCost(p *plan.Plan) float64 {
	est := o.estimator()
	cards := est.Estimate(p.Root)
	coeffs := defaultRoughCoeffs
	total := 0.0
	p.Root.Walk(func(n *plan.Node) {
		inst := 32
		if n.Parallelism > 0 {
			inst = n.Parallelism
		}
		total += coeffs.NodeWork(n, cards, inst)
	})
	return total
}

// defaultRoughCoeffs mirror the execution simulator's coefficients: the
// expert model has the right functional form, it just feeds on wrong
// cardinalities — which is exactly the paper's diagnosis.
var defaultRoughCoeffs = roughCoeffs{}

type roughCoeffs struct{}

// NodeWork delegates to the exec package's coefficients indirectly: to keep
// nativeopt free of an exec dependency the formula is restated with the same
// structure and the default constants.
func (roughCoeffs) NodeWork(n *plan.Node, cards *cardinality.Result, instances int) float64 {
	out := cards.Rows(n)
	in := func(i int) float64 {
		if i < len(n.Children) {
			return cards.Rows(n.Children[i])
		}
		return 1
	}
	switch n.Op {
	case plan.OpTableScan:
		return 0.005 * out * (0.4 + 0.08*float64(n.ColumnsAccessed))
	case plan.OpFilter, plan.OpCalc:
		return 0.002*in(0)*(1+0.15*float64(n.Pred.Size())) + 0.001*out
	case plan.OpHashJoin, plan.OpSemiJoin, plan.OpAntiJoin:
		return 0.012*in(1) + 0.005*in(0) + 0.001*out
	case plan.OpMergeJoin:
		l, r := in(0), in(1)
		return 0.006*(l+r) + 0.0012*(l*log2(l)+r*log2(r))*0.25 + 0.001*out
	case plan.OpNestedLoopJoin:
		return 0.00008*in(0)*in(1) + 0.001*out
	case plan.OpBroadcastJoin:
		return 0.004*in(1)*float64(instances) + 0.005*in(0) + 0.001*out
	case plan.OpHashAggregate, plan.OpPartialAggregate, plan.OpFinalAggregate, plan.OpDistinct:
		return 0.006*in(0)*(1+0.1*float64(len(n.AggFuncs))) + 0.004*out
	case plan.OpSortAggregate:
		return 0.0012*in(0)*log2(in(0)) + 0.003*in(0)*(1+0.1*float64(len(n.AggFuncs))) + 0.004*out
	case plan.OpSort, plan.OpLocalSort, plan.OpTopN:
		return 0.0012 * in(0) * log2(in(0))
	case plan.OpWindow:
		return 0.0015 * in(0) * log2(in(0))
	case plan.OpExchange:
		return 0.008 * in(0)
	case plan.OpBroadcastExchange:
		return 0.004 * in(0) * float64(instances)
	case plan.OpSpool:
		return 0.004 * in(0)
	case plan.OpLazySpool:
		return 0.0016 * in(0)
	default:
		return 0.001 * out
	}
}

func log2(v float64) float64 {
	if v < 2 {
		return 1
	}
	return math.Log2(v)
}

// builder constructs one physical plan.
type builder struct {
	opt   *Optimizer
	q     *query.Query
	flags Flags
	est   *cardinality.Estimator

	// deferred predicates: table → predicate applied above that table's
	// first join instead of at the scan.
	deferred map[string]*expr.Node
}

func (b *builder) build() *plan.Node {
	b.deferred = make(map[string]*expr.Node)

	// 1. Scan subplans per table.
	subplans := make(map[string]*plan.Node, len(b.q.Tables))
	for _, t := range b.q.Tables {
		subplans[t] = b.buildScan(t)
	}

	// 2. Join order.
	order := b.joinOrder()

	// 3. Left-deep join tree with physical selection.
	joined := map[string]bool{order[0]: true}
	current := subplans[order[0]]
	if len(order) == 1 {
		current = b.applyDeferred(current, order[0])
	}
	joinCount := 0
	for _, t := range order[1:] {
		edge, found := b.findEdge(joined, t)
		current = b.buildJoin(current, subplans[t], edge, found)
		joined[t] = true
		joinCount++
		// A non-pushable predicate referencing only t's columns legally sits
		// directly above the join that introduces t — the lowest placement
		// the conservative rule allows (the pushdown flag moves it to the
		// scan instead).
		current = b.applyDeferred(current, t)
		if joinCount == 1 {
			current = b.applyDeferred(current, order[0])
		}
		// Intermediate materialization point after the first join of a
		// multi-join query: eager when the estimate says the intermediate is
		// large (or the spool flag forces it), lazy otherwise.
		if joinCount == 1 && len(order) > 2 {
			op := plan.OpLazySpool
			if b.flags.SpoolEager || b.est.Estimate(current).Rows(current) > spoolThreshold {
				op = plan.OpSpool
			}
			current = &plan.Node{Op: op, Children: []*plan.Node{current}}
		}
	}

	// 4. Any predicates still pending (single-table queries) land here.
	for _, t := range order {
		current = b.applyDeferred(current, t)
	}

	// 5. Aggregation.
	if len(b.q.Aggs) > 0 || len(b.q.GroupBy) > 0 {
		current = b.buildAgg(current)
	}

	root := &plan.Node{Op: plan.OpSelect, Children: []*plan.Node{current}}
	return root
}

func (b *builder) buildScan(t string) *plan.Node {
	in := b.q.Input(t)
	parts := b.opt.View.PartitionEstimate(t)
	read := parts
	if in.PartitionFrac < 1 {
		read = int(math.Ceil(in.PartitionFrac * float64(parts)))
		if read < 1 {
			read = 1
		}
	}
	var node *plan.Node = &plan.Node{
		Op:              plan.OpTableScan,
		Table:           t,
		PartitionsRead:  read,
		ColumnsAccessed: maxInt(1, in.ColumnsAccessed),
	}
	if in.Pred != nil {
		// Sargable predicates always land at the scan: simple ones fuse into
		// a Calc, complex ones stay a Filter (pushdown fuses everything).
		op := plan.OpFilter
		if b.flags.FilterPushdown || in.Pred.Size() <= 2 {
			op = plan.OpCalc
		}
		node = &plan.Node{Op: op, Pred: in.Pred.Clone(), Children: []*plan.Node{node}}
	}
	if in.HardPred != nil {
		if b.flags.FilterPushdown || b.opt.View.HasColumnStats(t) {
			// Statistics justify the rewrite (or the flag forces it): the
			// non-sargable predicate is still evaluated at the scan.
			node = &plan.Node{Op: plan.OpFilter, Pred: in.HardPred.Clone(), Children: []*plan.Node{node}}
		} else {
			// The conservative rule declines to push this predicate below
			// joins when no column statistics can justify the rewrite
			// (§2.1: missing statistics disable transformations).
			b.deferred[t] = in.HardPred
		}
	}
	return node
}

func (b *builder) applyDeferred(n *plan.Node, table string) *plan.Node {
	pred, ok := b.deferred[table]
	if !ok {
		return n
	}
	delete(b.deferred, table)
	if n.Op == plan.OpTableScan {
		// No join yet: the predicate still lands above the scan, it is just
		// not fused.
		return &plan.Node{Op: plan.OpFilter, Pred: pred.Clone(), Children: []*plan.Node{n}}
	}
	return &plan.Node{Op: plan.OpFilter, Pred: pred.Clone(), Children: []*plan.Node{n}}
}

// joinOrder returns the order tables are joined in. With column statistics
// for every table the optimizer greedily minimizes estimated intermediate
// sizes; otherwise reordering is disabled (§2.1) and the syntactic order is
// kept.
func (b *builder) joinOrder() []string {
	tables := b.q.Tables
	if len(tables) <= 2 || !b.allStats() {
		// Reordering disabled: syntactic order — but the Lero-style scaling
		// knob still perturbs the structure the optimizer settles on, which
		// we model as a deterministic rotation of the order.
		return b.scaleRotate(tables)
	}
	// Greedy: start from the smallest estimated filtered input; repeatedly
	// add the connected table minimizing the estimated joined size.
	remaining := make(map[string]bool, len(tables))
	for _, t := range tables {
		remaining[t] = true
	}
	estRows := make(map[string]float64, len(tables))
	for _, t := range tables {
		estRows[t] = b.estimatedFilteredRows(t)
	}
	first := tables[0]
	for _, t := range tables[1:] {
		if floatsafe.Less(estRows[t], estRows[first]) {
			first = t
		}
	}
	order := []string{first}
	delete(remaining, first)
	joined := map[string]bool{first: true}
	size := estRows[first]
	for len(remaining) > 0 {
		bestTable := ""
		bestSize := math.Inf(1)
		for t := range remaining {
			edge, connected := b.findEdge(joined, t)
			var s float64
			if connected {
				ndv := math.Max(b.est.Src.NDV(edge.LeftCol), b.est.Src.NDV(edge.RightCol))
				if ndv < 1 {
					ndv = 1
				}
				s = size * estRows[t] / ndv
			} else {
				s = size * estRows[t] // cross join: heavily penalized by size
			}
			if s < bestSize || (s == bestSize && t < bestTable) {
				bestSize = s
				bestTable = t
			}
		}
		order = append(order, bestTable)
		joined[bestTable] = true
		delete(remaining, bestTable)
		size = math.Max(1, bestSize)
	}
	return b.scaleRotate(order)
}

// scaleRotate applies the Lero-style knob's structural effect: with
// CardScale != 1, sub-plans spanning ≥3 tables are re-costed, which shifts
// the order the optimizer settles on. Modeled as a deterministic rotation so
// the knob reliably yields a structurally different join order.
func (b *builder) scaleRotate(order []string) []string {
	if b.opt.CardScale <= 0 || b.opt.CardScale == 1 || len(order) < 3 {
		return order
	}
	// Pick a different starting table per scale regime, then rebuild a
	// connectivity-preserving order by walking the join graph — the knob
	// must never introduce cross joins the query doesn't have.
	start := 1
	switch {
	case b.opt.CardScale < 0.3:
		start = len(order) - 1
	case b.opt.CardScale < 1:
		start = 1 % len(order)
	default:
		start = 2 % len(order)
	}
	return b.connectedOrder(order, order[start])
}

// connectedOrder returns a join order starting at start in which every
// subsequent table is connected to the already-joined set when the join
// graph allows it (remaining disconnected tables are appended in the
// original order).
func (b *builder) connectedOrder(tables []string, start string) []string {
	joined := map[string]bool{start: true}
	out := []string{start}
	for len(out) < len(tables) {
		next := ""
		for _, t := range tables {
			if joined[t] {
				continue
			}
			if _, connected := b.findEdge(joined, t); connected {
				next = t
				break
			}
		}
		if next == "" {
			// Disconnected component: fall back to original order.
			for _, t := range tables {
				if !joined[t] {
					next = t
					break
				}
			}
		}
		joined[next] = true
		out = append(out, next)
	}
	return out
}

func (b *builder) allStats() bool {
	for _, t := range b.q.Tables {
		if !b.opt.View.HasColumnStats(t) {
			return false
		}
	}
	return true
}

func (b *builder) estimatedFilteredRows(t string) float64 {
	rows := float64(b.opt.View.RowEstimate(t))
	in := b.q.Input(t)
	if in.PartitionFrac < 1 {
		rows *= in.PartitionFrac
	}
	if full := in.FullPred(); full != nil {
		rows *= expr.Selectivity(full, b.opt.View)
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// findEdge locates a join edge between the joined set and table t. The
// boolean is false when t is only reachable by cross join.
func (b *builder) findEdge(joined map[string]bool, t string) (query.JoinEdge, bool) {
	for _, j := range b.q.Joins {
		if j.LeftTable == t && joined[j.RightTable] {
			// Flip so the new table is on the right.
			return query.JoinEdge{
				LeftTable: j.RightTable, RightTable: j.LeftTable,
				LeftCol: j.RightCol, RightCol: j.LeftCol,
				Form: flipForm(j.Form),
			}, true
		}
		if j.RightTable == t && joined[j.LeftTable] {
			return j, true
		}
	}
	return query.JoinEdge{}, false
}

func flipForm(f plan.JoinForm) plan.JoinForm {
	switch f {
	case plan.JoinLeft:
		return plan.JoinRight
	case plan.JoinRight:
		return plan.JoinLeft
	default:
		return f
	}
}

// buildJoin attaches right to left with physical operator selection based on
// estimated sizes.
func (b *builder) buildJoin(left, right *plan.Node, edge query.JoinEdge, connected bool) *plan.Node {
	lRows := b.est.Estimate(left).Rows(left)
	rRows := b.est.Estimate(right).Rows(right)

	if !connected {
		// Cross join: nested loop, no exchange keys to hash on.
		return &plan.Node{
			Op:       plan.OpNestedLoopJoin,
			JoinForm: plan.JoinInner,
			Children: []*plan.Node{left, right},
		}
	}

	node := &plan.Node{
		JoinForm:  edge.Form,
		LeftCols:  []expr.ColumnRef{edge.LeftCol},
		RightCols: []expr.ColumnRef{edge.RightCol},
	}
	if node.JoinForm == 0 {
		node.JoinForm = plan.JoinInner
	}

	// Keep the smaller estimated side as the build (right) side.
	if lRows < rRows && swappable(node.JoinForm) {
		left, right = right, left
		lRows, rRows = rRows, lRows
		node.LeftCols, node.RightCols = node.RightCols, node.LeftCols
		node.JoinForm = flipForm(node.JoinForm)
	}

	threshold := float64(broadcastThresholdDefault)
	if b.flags.BroadcastJoin {
		threshold = broadcastThresholdFlagged
	}

	dop := 0
	if b.flags.DopHigh {
		dop = highDOP
	}

	switch {
	case lRows < nestedLoopThreshold && rRows < nestedLoopThreshold:
		node.Op = plan.OpNestedLoopJoin
		node.Children = []*plan.Node{left, right}
	case rRows < threshold:
		node.Op = plan.OpBroadcastJoin
		bx := &plan.Node{Op: plan.OpBroadcastExchange, Children: []*plan.Node{right}, Parallelism: dop}
		node.Children = []*plan.Node{left, bx}
	default:
		// Sort-merge by default when the build side is too large to hash;
		// the merge-join flag forces it regardless.
		if b.flags.MergeJoin || rRows > mergeJoinThreshold {
			node.Op = plan.OpMergeJoin
		} else {
			node.Op = plan.OpHashJoin
		}
		lx := &plan.Node{Op: plan.OpExchange, Children: []*plan.Node{left}, Parallelism: dop}
		rx := &plan.Node{Op: plan.OpExchange, Children: []*plan.Node{right}, Parallelism: dop}
		node.Children = []*plan.Node{lx, rx}
	}
	switch edge.Form {
	case plan.JoinSemi:
		node.Op = plan.OpSemiJoin
	case plan.JoinAnti:
		node.Op = plan.OpAntiJoin
	}
	return node
}

func swappable(f plan.JoinForm) bool {
	return f == plan.JoinInner || f == plan.JoinFull
}

func (b *builder) buildAgg(input *plan.Node) *plan.Node {
	dop := 0
	if b.flags.DopHigh {
		dop = highDOP
	}
	aggOp := plan.OpHashAggregate
	if b.flags.MergeJoin || sortedOutput(input) {
		// Sorted inputs favor sort-based aggregation.
		aggOp = plan.OpSortAggregate
	}
	// Combine-before-shuffle by default when the estimate says groups are
	// far fewer than input rows; the flag forces it.
	combine := b.flags.ShuffleCombine
	if !combine && len(b.q.GroupBy) > 0 {
		res := b.est.Estimate(input)
		inRows := res.Rows(input)
		groups := 1.0
		for _, c := range b.q.GroupBy {
			groups *= b.est.Src.NDV(c)
		}
		combine = groups*combineRatio < inRows
	}
	if combine && len(b.q.GroupBy) > 0 {
		partial := &plan.Node{
			Op:        plan.OpPartialAggregate,
			AggFuncs:  aggFuncs(b.q.Aggs),
			AggCols:   aggCols(b.q.Aggs),
			GroupCols: b.q.GroupBy,
			Children:  []*plan.Node{input},
		}
		ex := &plan.Node{Op: plan.OpExchange, Children: []*plan.Node{partial}, Parallelism: dop}
		return &plan.Node{
			Op:        plan.OpFinalAggregate,
			AggFuncs:  aggFuncs(b.q.Aggs),
			AggCols:   aggCols(b.q.Aggs),
			GroupCols: b.q.GroupBy,
			Children:  []*plan.Node{ex},
		}
	}
	ex := &plan.Node{Op: plan.OpExchange, Children: []*plan.Node{input}, Parallelism: dop}
	return &plan.Node{
		Op:        aggOp,
		AggFuncs:  aggFuncs(b.q.Aggs),
		AggCols:   aggCols(b.q.Aggs),
		GroupCols: b.q.GroupBy,
		Children:  []*plan.Node{ex},
	}
}

func aggFuncs(specs []query.AggSpec) []plan.AggFunc {
	out := make([]plan.AggFunc, len(specs))
	for i, s := range specs {
		out[i] = s.Fn
	}
	return out
}

func aggCols(specs []query.AggSpec) []expr.ColumnRef {
	out := make([]expr.ColumnRef, len(specs))
	for i, s := range specs {
		out[i] = s.Col
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sortedOutput reports whether a subtree's output is already sorted (its
// pipeline root is a merge join or sort), making sort-based aggregation
// attractive.
func sortedOutput(n *plan.Node) bool {
	for n != nil {
		switch n.Op {
		case plan.OpMergeJoin, plan.OpSort, plan.OpLocalSort, plan.OpSortAggregate:
			return true
		case plan.OpFilter, plan.OpCalc, plan.OpProject, plan.OpSpool, plan.OpLazySpool:
			if len(n.Children) == 0 {
				return false
			}
			n = n.Children[0]
		default:
			return false
		}
	}
	return false
}
