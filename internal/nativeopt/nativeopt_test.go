package nativeopt

import (
	"testing"

	"loam/internal/expr"
	"loam/internal/plan"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/stats"
	"loam/internal/warehouse"
)

// fixture builds a 3-table query over a generated project with a chosen
// statistics policy.
type fixture struct {
	project *warehouse.Project
	view    *stats.View
	q       *query.Query
}

func newFixture(t *testing.T, pol stats.Policy) *fixture {
	t.Helper()
	a := warehouse.DefaultArchetype()
	a.Name = "opt"
	a.TempTableFrac = 0
	a.NumTables = 8
	a.RowsLog10Mean = 6.3
	a.RowsLog10Std = 0.3
	p := warehouse.Generate(simrand.New(77), a)
	v := stats.Snapshot(simrand.New(78), p, 5, pol)

	t0, t1, t2 := p.Tables[0], p.Tables[1], p.Tables[2]
	key := func(tb *warehouse.Table) expr.ColumnRef {
		best := tb.Columns[0]
		for _, c := range tb.Columns {
			if c.NDV > best.NDV {
				best = c
			}
		}
		return best.Ref(tb)
	}
	q := &query.Query{
		ID: "q1", Project: "opt", Day: 5,
		Tables: []string{t0.ID, t1.ID, t2.ID},
		Inputs: map[string]*query.TableInput{
			t0.ID: {PartitionFrac: 0.5, ColumnsAccessed: 3,
				Pred: expr.Compare(expr.FuncLT, t0.Columns[0].Ref(t0), 10)},
			t1.ID: {PartitionFrac: 1, ColumnsAccessed: 2,
				HardPred: expr.Compare(expr.FuncLike, t1.Columns[0].Ref(t1), 3)},
			t2.ID: {PartitionFrac: 1, ColumnsAccessed: 1},
		},
		Joins: []query.JoinEdge{
			{LeftTable: t0.ID, RightTable: t1.ID, LeftCol: key(t0), RightCol: key(t1), Form: plan.JoinInner},
			{LeftTable: t1.ID, RightTable: t2.ID, LeftCol: key(t1), RightCol: key(t2), Form: plan.JoinInner},
		},
		GroupBy: []expr.ColumnRef{t0.Columns[1].Ref(t0)},
		Aggs:    []query.AggSpec{{Fn: plan.AggSum, Col: t0.Columns[0].Ref(t0)}},
	}
	return &fixture{project: p, view: v, q: q}
}

func freshPolicy() stats.Policy {
	return stats.Policy{ColumnStatsProb: 1, FreshProb: 1, MaxStalenessDays: 0, NDVNoise: 0.01}
}

func missingPolicy() stats.Policy {
	return stats.Policy{ColumnStatsProb: 0, FreshProb: 1}
}

func countOps(p *plan.Plan, op plan.OpType) int {
	n := 0
	p.Root.Walk(func(m *plan.Node) {
		if m.Op == op {
			n++
		}
	})
	return n
}

func TestOptimizeDeterminism(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	p1 := o.Optimize(f.q, Flags{})
	p2 := o.Optimize(f.q, Flags{})
	if p1.Root.Fingerprint() != p2.Root.Fingerprint() {
		t.Fatal("optimization not deterministic")
	}
}

func TestDefaultPlanStructure(t *testing.T) {
	f := newFixture(t, freshPolicy())
	p := New(f.view).Optimize(f.q, Flags{})
	if p.Root.Op != plan.OpSelect {
		t.Fatalf("root op %v", p.Root.Op)
	}
	if got := len(p.Root.Tables()); got != 3 {
		t.Fatalf("plan scans %d tables", got)
	}
	joins := 0
	p.Root.Walk(func(n *plan.Node) {
		if n.Op.IsJoin() {
			joins++
		}
	})
	if joins != 2 {
		t.Fatalf("plan has %d joins", joins)
	}
	if !p.IsDefault() {
		t.Fatal("flagless plan should be default")
	}
}

func TestMergeJoinFlag(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	def := o.Optimize(f.q, Flags{})
	mj := o.Optimize(f.q, Flags{MergeJoin: true})
	if countOps(mj, plan.OpMergeJoin) <= countOps(def, plan.OpMergeJoin) &&
		countOps(mj, plan.OpHashJoin) >= countOps(def, plan.OpHashJoin) {
		t.Fatal("merge-join flag had no effect on physical joins")
	}
	if len(mj.Knobs) != 1 || mj.Knobs[0] != "flag:mergeJoin" {
		t.Fatalf("knobs %v", mj.Knobs)
	}
}

func TestFilterPushdownFlagWithMissingStats(t *testing.T) {
	f := newFixture(t, missingPolicy())
	o := New(f.view)
	def := o.Optimize(f.q, Flags{})
	pushed := o.Optimize(f.q, Flags{FilterPushdown: true})

	// Default defers the hard predicate above a join; the flag moves it to
	// the scan side. Detect via the filter's position: in the pushed plan no
	// Filter node should sit directly above a join.
	deferredIn := func(p *plan.Plan) bool {
		found := false
		p.Root.Walk(func(n *plan.Node) {
			if n.Op == plan.OpFilter && len(n.Children) == 1 && n.Children[0].Op.IsJoin() {
				found = true
			}
		})
		return found
	}
	if !deferredIn(def) {
		t.Fatal("default plan should defer the hard predicate above a join")
	}
	if deferredIn(pushed) {
		t.Fatal("pushdown flag left a deferred filter above a join")
	}
}

func TestHardPredPushedWhenStatsPresent(t *testing.T) {
	f := newFixture(t, freshPolicy())
	p := New(f.view).Optimize(f.q, Flags{})
	p.Root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpFilter && len(n.Children) == 1 && n.Children[0].Op.IsJoin() {
			t.Fatal("with column stats the hard predicate should be pushed to the scan")
		}
	})
}

func TestDopHighFlag(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	p := o.Optimize(f.q, Flags{DopHigh: true})
	found := false
	p.Root.Walk(func(n *plan.Node) {
		if n.Op.IsExchange() && n.Parallelism == highDOP {
			found = true
		}
	})
	if !found {
		t.Fatal("dop flag set no exchange parallelism")
	}
}

func TestShuffleCombineFlag(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	p := o.Optimize(f.q, Flags{ShuffleCombine: true})
	if countOps(p, plan.OpPartialAggregate) == 0 || countOps(p, plan.OpFinalAggregate) == 0 {
		t.Fatal("shuffle-combine flag did not split the aggregation")
	}
}

func TestSpoolEagerFlag(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	p := o.Optimize(f.q, Flags{SpoolEager: true})
	if countOps(p, plan.OpSpool) == 0 {
		t.Fatal("spool flag did not materialize eagerly")
	}
}

func TestJoinOrderSyntacticWithoutStats(t *testing.T) {
	f := newFixture(t, missingPolicy())
	b := &builder{opt: New(f.view), q: f.q, est: New(f.view).estimator()}
	order := b.joinOrder()
	for i, tb := range f.q.Tables {
		if order[i] != tb {
			t.Fatalf("order %v should be syntactic %v", order, f.q.Tables)
		}
	}
}

func TestCardScaleChangesOrder(t *testing.T) {
	f := newFixture(t, missingPolicy())
	def := New(f.view).Optimize(f.q, Flags{})
	scaled := (&Optimizer{View: f.view, CardScale: 5}).Optimize(f.q, Flags{})
	if def.Root.Fingerprint() == scaled.Root.Fingerprint() {
		t.Fatal("card scaling produced an identical plan")
	}
	if len(scaled.Knobs) == 0 || scaled.Knobs[0] != "cardScale" {
		t.Fatalf("knobs %v", scaled.Knobs)
	}
}

func TestCardScaleOrderStaysConnected(t *testing.T) {
	f := newFixture(t, missingPolicy())
	for _, scale := range []float64{0.2, 0.5, 5} {
		p := (&Optimizer{View: f.view, CardScale: scale}).Optimize(f.q, Flags{})
		// The chain query is fully connected: no nested-loop (cross) joins
		// may appear under any scaling.
		if got := countOps(p, plan.OpNestedLoopJoin); got != 0 {
			t.Fatalf("scale %g introduced %d cross joins", scale, got)
		}
	}
}

func TestRoughCostPositiveAndScalesWithWork(t *testing.T) {
	f := newFixture(t, freshPolicy())
	o := New(f.view)
	p := o.Optimize(f.q, Flags{})
	c := o.RoughCost(p)
	if c <= 0 {
		t.Fatalf("rough cost %g", c)
	}
	// Broadcast-heavy plan should not be free.
	if c2 := o.RoughCost(o.Optimize(f.q, Flags{BroadcastJoin: true})); c2 <= 0 {
		t.Fatalf("flagged rough cost %g", c2)
	}
}

func TestFlagsKnobsAndIsZero(t *testing.T) {
	if !(Flags{}).IsZero() {
		t.Fatal("zero flags should be zero")
	}
	f := Flags{MergeJoin: true, DopHigh: true}
	if f.IsZero() {
		t.Fatal("set flags should not be zero")
	}
	knobs := f.Knobs()
	if len(knobs) != 2 {
		t.Fatalf("knobs %v", knobs)
	}
}

func TestPartitionPruningInScan(t *testing.T) {
	f := newFixture(t, freshPolicy())
	p := New(f.view).Optimize(f.q, Flags{})
	scanTable := f.q.Tables[0]
	var scanNode *plan.Node
	p.Root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpTableScan && n.Table == scanTable {
			scanNode = n
		}
	})
	if scanNode == nil {
		t.Fatal("scan not found")
	}
	parts := f.view.PartitionEstimate(scanTable)
	if parts > 1 && scanNode.PartitionsRead >= parts {
		t.Fatalf("partition pruning not applied: read %d of %d", scanNode.PartitionsRead, parts)
	}
}

func TestBuildSideIsSmallerEstimate(t *testing.T) {
	f := newFixture(t, freshPolicy())
	p := New(f.view).Optimize(f.q, Flags{})
	est := New(f.view).estimator()
	cards := est.Estimate(p.Root)
	p.Root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpHashJoin && n.JoinForm == plan.JoinInner && len(n.Children) == 2 {
			l := cards.Rows(n.Children[0])
			r := cards.Rows(n.Children[1])
			// Allow a tolerance: estimates are recomputed post-assembly.
			if r > 3*l {
				t.Fatalf("build side much larger than probe: %g vs %g", r, l)
			}
		}
	})
}
