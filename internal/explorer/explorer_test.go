package explorer

import (
	"testing"

	"loam/internal/simrand"
	"loam/internal/stats"
	"loam/internal/warehouse"
	"loam/internal/workload"
)

func fixture(seed uint64, pol stats.Policy) (*Explorer, *workload.Generator) {
	a := warehouse.DefaultArchetype()
	a.Name = "e"
	a.TempTableFrac = 0
	a.RowsLog10Mean = 5.8
	p := warehouse.Generate(simrand.New(seed), a)
	v := stats.Snapshot(simrand.New(seed+1), p, 3, pol)
	g := workload.NewGenerator(simrand.New(seed+2), p, workload.DefaultConfig())
	return New(v), g
}

func TestCandidatesIncludeDefaultFirst(t *testing.T) {
	e, g := fixture(1, stats.DefaultPolicy())
	q := g.Templates[0].Instantiate(simrand.New(3), 3)
	cands := e.Candidates(q)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !cands[0].IsDefault() {
		t.Fatal("first candidate must be the default plan")
	}
	def := e.DefaultPlan(q)
	if cands[0].Root.Fingerprint() != def.Root.Fingerprint() {
		t.Fatal("candidate[0] differs from DefaultPlan")
	}
}

func TestCandidatesAreDistinct(t *testing.T) {
	e, g := fixture(2, stats.DefaultPolicy())
	for i, tpl := range g.Templates {
		if i >= 5 {
			break
		}
		q := tpl.Instantiate(simrand.New(4), 3)
		seen := map[uint64]bool{}
		for _, c := range e.Candidates(q) {
			fp := c.Root.Fingerprint()
			if seen[fp] {
				t.Fatalf("duplicate candidate for %s", q.ID)
			}
			seen[fp] = true
		}
	}
}

func TestTopKBound(t *testing.T) {
	e, g := fixture(3, stats.DefaultPolicy())
	e.TopK = 3
	q := g.Templates[0].Instantiate(simrand.New(5), 3)
	if got := len(e.Candidates(q)); got > 3 {
		t.Fatalf("TopK violated: %d candidates", got)
	}
	e.TopK = 0
	all := e.Candidates(q)
	e.TopK = 5
	top5 := e.Candidates(q)
	if len(top5) > 5 {
		t.Fatalf("top5 has %d", len(top5))
	}
	if len(all) < len(top5) {
		t.Fatal("uncut set smaller than cut set")
	}
}

func TestSafetyCutDropsDrasticPlans(t *testing.T) {
	e, g := fixture(4, stats.DefaultPolicy())
	q := g.Templates[0].Instantiate(simrand.New(6), 3)
	e.TopK = 0
	e.SafetyFactor = 0 // no cut
	all := e.Candidates(q)
	e.SafetyFactor = 1.0000001 // only near-default plans survive
	tight := e.Candidates(q)
	if len(tight) > len(all) {
		t.Fatal("tighter safety produced more candidates")
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	e, g := fixture(5, stats.DefaultPolicy())
	q := g.Templates[1].Instantiate(simrand.New(7), 3)
	c1 := e.Candidates(q)
	c2 := e.Candidates(q)
	if len(c1) != len(c2) {
		t.Fatal("candidate counts differ")
	}
	for i := range c1 {
		if c1[i].Root.Fingerprint() != c2[i].Root.Fingerprint() {
			t.Fatalf("candidate %d differs across calls", i)
		}
	}
}

func TestCandidateKnobsRecorded(t *testing.T) {
	e, g := fixture(6, stats.DefaultPolicy())
	q := g.Templates[0].Instantiate(simrand.New(8), 3)
	for i, c := range e.Candidates(q) {
		if i == 0 {
			if len(c.Knobs) != 0 {
				t.Fatalf("default plan has knobs %v", c.Knobs)
			}
			continue
		}
		if len(c.Knobs) == 0 {
			t.Fatalf("candidate %d has no knob label", i)
		}
	}
}

func TestWideExplorerSupersetsCandidates(t *testing.T) {
	e, g := fixture(7, stats.DefaultPolicy())
	q := g.Templates[0].Instantiate(simrand.New(9), 3)
	e.TopK = 0
	e.SafetyFactor = 0
	narrow := len(e.Candidates(q))

	w := NewWide(e.View)
	w.TopK = 0
	w.SafetyFactor = 0
	wide := len(w.Candidates(q))
	if wide <= narrow {
		t.Fatalf("wide exploration produced %d candidates vs narrow %d", wide, narrow)
	}
}

func TestPairFlagSetsCount(t *testing.T) {
	if got := len(pairFlagSets()); got != 15 {
		t.Fatalf("pairs %d, want C(6,2)=15", got)
	}
	for _, f := range pairFlagSets() {
		if len(f.Knobs()) != 2 {
			t.Fatalf("pair with %d knobs", len(f.Knobs()))
		}
	}
}
