// Package explorer implements LOAM's plan explorer (§3): steering the native
// optimizer with knobs to produce a diverse set of candidate plans. It
// combines Bao-style flag toggling with Lero-style cardinality scaling for
// sub-plans with at least three inputs, deduplicates by plan fingerprint,
// and keeps the top-k candidates by the native optimizer's rough cost —
// always including the default plan, mirroring the paper's evaluation setup
// (§7.1).
package explorer

import (
	"sort"

	"loam/internal/floatsafe"
	"loam/internal/nativeopt"
	"loam/internal/plan"
	"loam/internal/query"
	"loam/internal/stats"
)

// Explorer generates candidate plans for queries against one statistics
// view.
type Explorer struct {
	View *stats.View
	// CardScales are the Lero-style scaling factors tried (beyond 1).
	CardScales []float64
	// TopK bounds the candidate set (the paper retains the top 5 by rough
	// cost estimate). 0 means keep all.
	TopK int
	// SafetyFactor drops candidates whose rough cost exceeds this multiple
	// of the default plan's rough cost — the paper's flags were chosen to be
	// "safe enough to avoid drastically bad plans". 0 disables the cut.
	SafetyFactor float64
	// Wide additionally explores pairwise flag combinations (§7.3's
	// diversified-exploration direction).
	Wide bool
}

// New builds an explorer with the paper's defaults.
func New(v *stats.View) *Explorer {
	return &Explorer{View: v, CardScales: []float64{0.2, 0.5, 5.0}, TopK: 5, SafetyFactor: 3}
}

// NewWide builds a diversified explorer — the paper's §7.3 future-work
// direction ("the estimated value could be substantially improved by
// incorporating more diversified plan exploration strategies"): pairwise
// flag combinations, a denser cardinality-scaling grid, and a larger
// candidate budget.
func NewWide(v *stats.View) *Explorer {
	e := New(v)
	e.Wide = true
	e.CardScales = []float64{0.1, 0.2, 0.5, 2, 5, 10}
	e.TopK = 8
	return e
}

// singleFlagSets enumerates the six single-flag toggles.
func singleFlagSets() []nativeopt.Flags {
	return []nativeopt.Flags{
		{MergeJoin: true},
		{BroadcastJoin: true},
		{ShuffleCombine: true},
		{SpoolEager: true},
		{FilterPushdown: true},
		{DopHigh: true},
	}
}

// pairFlagSets enumerates every two-flag combination (wide exploration).
func pairFlagSets() []nativeopt.Flags {
	singles := singleFlagSets()
	var out []nativeopt.Flags
	for i := 0; i < len(singles); i++ {
		for j := i + 1; j < len(singles); j++ {
			f := merge(singles[i], singles[j])
			out = append(out, f)
		}
	}
	return out
}

func merge(a, b nativeopt.Flags) nativeopt.Flags {
	return nativeopt.Flags{
		MergeJoin:      a.MergeJoin || b.MergeJoin,
		BroadcastJoin:  a.BroadcastJoin || b.BroadcastJoin,
		ShuffleCombine: a.ShuffleCombine || b.ShuffleCombine,
		SpoolEager:     a.SpoolEager || b.SpoolEager,
		FilterPushdown: a.FilterPushdown || b.FilterPushdown,
		DopHigh:        a.DopHigh || b.DopHigh,
	}
}

// Candidates returns the candidate plan set for a query: the default plan
// first, then up to TopK-1 distinct knob-tuned alternatives ranked by the
// native rough cost.
func (e *Explorer) Candidates(q *query.Query) []*plan.Plan {
	base := nativeopt.New(e.View)
	def := base.Optimize(q, nativeopt.Flags{})

	type scored struct {
		p    *plan.Plan
		cost float64
	}
	// Candidates are sealed with the fingerprint the dedup pass computes
	// anyway: the predictor's plan-embedding cache keys on it every time a
	// candidate is scored, and re-walking the tree per lookup dominated the
	// warm serving path before the seal (see plan.Seal).
	def.Seal()
	seen := map[uint64]bool{def.CacheFingerprint(): true}
	defCost := base.RoughCost(def)
	var alts []scored

	add := func(p *plan.Plan) {
		fp := p.Seal()
		if seen[fp] {
			return
		}
		seen[fp] = true
		cost := base.RoughCost(p)
		if e.SafetyFactor > 0 && !floatsafe.LessEq(cost, e.SafetyFactor*defCost) {
			return // drastically bad (or NaN) by the native estimate
		}
		alts = append(alts, scored{p: p, cost: cost})
	}

	for _, f := range singleFlagSets() {
		add(base.Optimize(q, f))
	}
	if e.Wide {
		for _, f := range pairFlagSets() {
			add(base.Optimize(q, f))
		}
	}
	for _, scale := range e.CardScales {
		scaled := &nativeopt.Optimizer{View: e.View, CardScale: scale}
		add(scaled.Optimize(q, nativeopt.Flags{}))
	}

	sort.Slice(alts, func(i, j int) bool { return floatsafe.SortLess(alts[i].cost, alts[j].cost) })
	out := []*plan.Plan{def}
	limit := len(alts)
	if e.TopK > 0 && e.TopK-1 < limit {
		limit = e.TopK - 1
	}
	for _, s := range alts[:limit] {
		out = append(out, s.p)
	}
	return out
}

// DefaultPlan returns just the native optimizer's plan (no knobs).
func (e *Explorer) DefaultPlan(q *query.Query) *plan.Plan {
	return nativeopt.New(e.View).Optimize(q, nativeopt.Flags{})
}
