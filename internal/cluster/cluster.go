// Package cluster simulates the shared, multi-tenant machine pool that
// MaxCompute's Fuxi resource manager allocates stages onto.
//
// Each machine carries the four load metrics the paper encodes (App. B.2):
// CPU_IDLE, IO_WAIT, LOAD5, and MEM_USAGE, sampled every 20 seconds. Loads
// follow mean-reverting dynamics around a cluster-wide level with a diurnal
// component and tenant-interference bursts, which produces the cost-variance
// phenomenology of Challenge C1 (Fig. 1) and the roughly linear load→cost
// response of Fig. 5.
package cluster

import (
	"math"
	"sort"
	"sync"

	"loam/internal/simrand"
	"loam/internal/telemetry"
)

// SampleInterval is how often machine metrics are sampled, in seconds,
// matching the paper's 20-second sampling.
const SampleInterval = 20.0

// MaxLoad5 is the saturation value used to log-normalize LOAD5 into [0,1].
const MaxLoad5 = 64.0

// Metrics is one machine-load observation.
type Metrics struct {
	CPUIdle  float64 // fraction of CPU idle, in [0,1]
	IOWait   float64 // fraction of CPU time waiting on I/O, in [0,1]
	Load5    float64 // 5-minute load average, >= 0 (raw, not normalized)
	MemUsage float64 // fraction of memory used, in [0,1]
}

// Normalized returns the 4-feature vector used by the plan encoder:
// CPU_IDLE, IO_WAIT and MEM_USAGE are already bounded and used directly;
// LOAD5 is log-min-max normalized (§4, Execution Environment).
func (m Metrics) Normalized() [4]float64 {
	l := math.Log1p(m.Load5) / math.Log1p(MaxLoad5)
	if l > 1 {
		l = 1
	}
	return [4]float64{m.CPUIdle, m.IOWait, l, m.MemUsage}
}

// Add accumulates another observation (for averaging).
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		CPUIdle:  m.CPUIdle + o.CPUIdle,
		IOWait:   m.IOWait + o.IOWait,
		Load5:    m.Load5 + o.Load5,
		MemUsage: m.MemUsage + o.MemUsage,
	}
}

// Scale multiplies all metrics by f.
func (m Metrics) Scale(f float64) Metrics {
	return Metrics{CPUIdle: m.CPUIdle * f, IOWait: m.IOWait * f, Load5: m.Load5 * f, MemUsage: m.MemUsage * f}
}

type machine struct {
	load      float64 // latent utilization in [0,1]
	phase     float64 // diurnal phase offset
	burst     float64 // residual tenant-interference load
	io        float64 // latent IO pressure
	memBase   float64
	metricRNG *simrand.RNG
}

// Config parameterizes the cluster simulator.
type Config struct {
	Machines    int     // pool size (paper: >5,000; default 256)
	BaseLoad    float64 // long-run mean utilization
	DiurnalAmp  float64 // amplitude of the daily cycle
	Reversion   float64 // mean-reversion strength per sample
	LoadNoise   float64 // per-sample load noise
	BurstProb   float64 // probability a machine catches an interference burst per sample
	BurstSize   float64 // mean burst magnitude
	HistorySize int     // ring buffer length of cluster-average samples (24h = 4320)
}

// DefaultConfig returns production-flavored defaults.
func DefaultConfig() Config {
	return Config{
		Machines:    256,
		BaseLoad:    0.55,
		DiurnalAmp:  0.18,
		Reversion:   0.08,
		LoadNoise:   0.04,
		BurstProb:   0.02,
		BurstSize:   0.35,
		HistorySize: 24 * 3600 / int(SampleInterval),
	}
}

// Cluster is the simulated machine pool. It is safe for concurrent use: an
// RWMutex lets any number of readers (MachineMetrics, Average,
// ClusterAverage, HistoryAverage — the serving path's environment
// observations) proceed in parallel, while writers (Advance, AddLoad,
// Allocate) serialize. Simulated time itself stays logically single-threaded:
// concurrent Advance calls are ordered by the lock, so a deterministic
// trajectory still requires a single driving goroutine.
type Cluster struct {
	mu       sync.RWMutex
	cfg      Config
	machines []machine
	now      float64 // simulated seconds since epoch
	rng      *simrand.RNG

	// history is a ring buffer of cluster-average metrics, one per sample
	// interval — the data source for the LOAM-CE inference variant.
	history []Metrics
	histPos int
	histLen int

	tel clusterTelemetry
}

// clusterTelemetry holds the cluster's resolved instruments. All fields are
// nil-safe no-ops until Instrument wires a registry, so the hot path never
// branches on "is telemetry enabled".
type clusterTelemetry struct {
	cpuIdle  *telemetry.Gauge
	ioWait   *telemetry.Gauge
	load5    *telemetry.Gauge
	memUsage *telemetry.Gauge
	now      *telemetry.Gauge
	machines *telemetry.Gauge
	steps    *telemetry.Counter
}

// Instrument wires the cluster's load/utilization gauges into reg: the
// cluster-average CPU_IDLE, IO_WAIT, normalized LOAD5 and MEM_USAGE are
// refreshed at every sample step (piggybacking on the history recording, so
// instrumentation adds no extra pool scan), along with the simulated clock
// and a step counter. Call before concurrent use.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = clusterTelemetry{
		cpuIdle:  reg.Gauge("cluster.cpu_idle"),
		ioWait:   reg.Gauge("cluster.io_wait"),
		load5:    reg.Gauge("cluster.load5_norm"),
		memUsage: reg.Gauge("cluster.mem_usage"),
		now:      reg.Gauge("cluster.now_seconds"),
		machines: reg.Gauge("cluster.machines"),
		steps:    reg.Counter("cluster.steps"),
	}
	c.tel.machines.Set(float64(len(c.machines)))
	c.refreshTelemetryLocked(c.clusterAverageLocked())
}

// New builds a cluster with the given config, deterministic in rng.
func New(rng *simrand.RNG, cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 128
	}
	c := &Cluster{
		cfg:      cfg,
		machines: make([]machine, cfg.Machines),
		rng:      rng.Derive("cluster"),
		history:  make([]Metrics, cfg.HistorySize),
	}
	for i := range c.machines {
		mr := c.rng.DeriveN("machine", i)
		c.machines[i] = machine{
			load: clamp01(cfg.BaseLoad + mr.Normal(0, 0.1)),
			// The daily cycle is cluster-wide (traffic peaks are global);
			// machines only jitter around the shared phase.
			phase:     mr.Uniform(-0.6, 0.6),
			io:        clamp01(0.05 + mr.Normal(0, 0.01)),
			memBase:   mr.Uniform(0.25, 0.45),
			metricRNG: mr.Derive("metrics"),
		}
	}
	c.recordHistoryLocked()
	return c
}

// Now returns the simulated time in seconds.
func (c *Cluster) Now() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Size returns the number of machines. The pool never resizes after New, so
// no lock is needed.
func (c *Cluster) Size() int { return len(c.machines) }

// Advance moves simulated time forward, stepping machine dynamics at each
// sample interval.
func (c *Cluster) Advance(seconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	steps := int(seconds / SampleInterval)
	if steps < 1 {
		steps = 1
	}
	for s := 0; s < steps; s++ {
		c.now += SampleInterval
		c.stepLocked()
		c.recordHistoryLocked()
	}
}

func (c *Cluster) stepLocked() {
	dayFrac := c.now / 86400.0
	for i := range c.machines {
		m := &c.machines[i]
		target := c.cfg.BaseLoad + c.cfg.DiurnalAmp*math.Sin(2*math.Pi*dayFrac+m.phase)
		// Mean-reverting latent load with noise.
		m.load += c.cfg.Reversion*(target-m.load) + m.metricRNG.Normal(0, c.cfg.LoadNoise)
		// Tenant-interference bursts decay geometrically.
		m.burst *= 0.85
		if m.metricRNG.Bool(c.cfg.BurstProb) {
			m.burst += m.metricRNG.Uniform(0.3, 1.0) * c.cfg.BurstSize
		}
		m.load = clamp01(m.load)
		// IO pressure loosely tracks load with its own noise; expectation
		// near 0.05 per §5.
		m.io += 0.2*(0.03+0.06*m.load-m.io) + m.metricRNG.Normal(0, 0.005)
		m.io = clamp01(m.io)
	}
}

// MachineMetrics returns the current metrics of one machine.
func (c *Cluster) MachineMetrics(id int) Metrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.machineMetricsLocked(id)
}

// machineMetricsLocked reads one machine's metrics; callers hold the lock.
func (c *Cluster) machineMetricsLocked(id int) Metrics {
	m := &c.machines[id]
	eff := clamp01(m.load + m.burst)
	return Metrics{
		CPUIdle:  clamp01(1 - eff),
		IOWait:   m.io,
		Load5:    eff * 24, // ~24 runnable processes at full utilization
		MemUsage: clamp01(m.memBase + 0.5*eff),
	}
}

// Average returns the mean metrics over a set of machines.
func (c *Cluster) Average(ids []int) Metrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(ids) == 0 {
		return c.clusterAverageLocked()
	}
	var sum Metrics
	for _, id := range ids {
		sum = sum.Add(c.machineMetricsLocked(id))
	}
	return sum.Scale(1 / float64(len(ids)))
}

// ClusterAverage returns the mean metrics over the whole pool — what the
// LOAM-CB inference variant observes at optimization time.
func (c *Cluster) ClusterAverage() Metrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clusterAverageLocked()
}

func (c *Cluster) clusterAverageLocked() Metrics {
	var sum Metrics
	for i := range c.machines {
		sum = sum.Add(c.machineMetricsLocked(i))
	}
	return sum.Scale(1 / float64(len(c.machines)))
}

// recordHistoryLocked appends the current cluster average to the ring buffer
// and refreshes the utilization gauges from the same scan; callers hold the
// write lock (or, in New, exclusive ownership).
func (c *Cluster) recordHistoryLocked() {
	avg := c.clusterAverageLocked()
	c.history[c.histPos] = avg
	c.histPos = (c.histPos + 1) % len(c.history)
	if c.histLen < len(c.history) {
		c.histLen++
	}
	c.refreshTelemetryLocked(avg)
}

// refreshTelemetryLocked publishes the cluster-average metrics to the wired
// gauges; callers hold the lock. Gauge values are functions of simulated
// state only, so snapshots stay seed-deterministic.
func (c *Cluster) refreshTelemetryLocked(avg Metrics) {
	norm := avg.Normalized()
	c.tel.cpuIdle.Set(norm[0])
	c.tel.ioWait.Set(norm[1])
	c.tel.load5.Set(norm[2])
	c.tel.memUsage.Set(norm[3])
	c.tel.now.Set(c.now)
	c.tel.steps.Inc()
}

// HistoryAverage returns the mean cluster-wide metrics over the recorded
// window (up to 24 h) — what the LOAM-CE inference variant fits its
// environment distribution from.
func (c *Cluster) HistoryAverage() Metrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.histLen == 0 {
		return c.clusterAverageLocked()
	}
	var sum Metrics
	for i := 0; i < c.histLen; i++ {
		sum = sum.Add(c.history[i])
	}
	return sum.Scale(1 / float64(c.histLen))
}

// Allocate picks n machine IDs for a stage's instances, preferring idle
// machines — Fuxi schedules onto machines with more idle resources (§7.2.5).
// Allocation is randomized among the idlest half to model contention.
// Allocate takes the write lock: it draws from the scheduler's RNG stream.
func (c *Cluster) Allocate(n int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		n = 1
	}
	if n > len(c.machines) {
		n = len(c.machines)
	}
	type cand struct {
		id   int
		idle float64
	}
	cands := make([]cand, len(c.machines))
	for i := range c.machines {
		m := c.machineMetricsLocked(i)
		// Jitter breaks ties and models imperfect scheduler information.
		cands[i] = cand{id: i, idle: m.CPUIdle + c.rng.Uniform(0, 0.15)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].idle > cands[j].idle })
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].id
	}
	return out
}

// AddLoad injects extra utilization onto the given machines, modeling the
// footprint of a running stage.
func (c *Cluster) AddLoad(ids []int, amount float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		c.machines[id].burst = clamp01(c.machines[id].burst + amount)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
