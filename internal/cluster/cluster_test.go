package cluster

import (
	"math"
	"testing"

	"loam/internal/simrand"
)

func newCluster(seed uint64) *Cluster {
	cfg := DefaultConfig()
	cfg.Machines = 32
	return New(simrand.New(seed), cfg)
}

func TestMetricsBounds(t *testing.T) {
	c := newCluster(1)
	for step := 0; step < 50; step++ {
		c.Advance(SampleInterval)
		for i := 0; i < c.Size(); i++ {
			m := c.MachineMetrics(i)
			if m.CPUIdle < 0 || m.CPUIdle > 1 {
				t.Fatalf("CPUIdle %g", m.CPUIdle)
			}
			if m.IOWait < 0 || m.IOWait > 1 {
				t.Fatalf("IOWait %g", m.IOWait)
			}
			if m.MemUsage < 0 || m.MemUsage > 1 {
				t.Fatalf("MemUsage %g", m.MemUsage)
			}
			if m.Load5 < 0 {
				t.Fatalf("Load5 %g", m.Load5)
			}
		}
	}
}

func TestNormalizedFeatures(t *testing.T) {
	m := Metrics{CPUIdle: 0.5, IOWait: 0.05, Load5: MaxLoad5 * 2, MemUsage: 0.7}
	f := m.Normalized()
	if f[0] != 0.5 || f[1] != 0.05 || f[3] != 0.7 {
		t.Fatalf("passthrough features wrong: %v", f)
	}
	if f[2] != 1 {
		t.Fatalf("LOAD5 should saturate at 1, got %g", f[2])
	}
	zero := Metrics{}.Normalized()
	if zero[2] != 0 {
		t.Fatalf("zero load should normalize to 0, got %g", zero[2])
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := newCluster(2)
	before := c.Now()
	c.Advance(100)
	if c.Now() <= before {
		t.Fatal("time did not advance")
	}
}

func TestAdvanceChangesLoads(t *testing.T) {
	c := newCluster(3)
	before := c.ClusterAverage()
	c.Advance(3600)
	after := c.ClusterAverage()
	if before == after {
		t.Fatal("loads frozen after an hour")
	}
}

func TestAllocatePrefersIdle(t *testing.T) {
	c := newCluster(4)
	c.Advance(1200)
	picked := c.Allocate(8)
	if len(picked) != 8 {
		t.Fatalf("allocated %d", len(picked))
	}
	// Mean idleness of picked machines should beat the cluster mean.
	var pickedIdle float64
	for _, id := range picked {
		pickedIdle += c.MachineMetrics(id).CPUIdle
	}
	pickedIdle /= float64(len(picked))
	avg := c.ClusterAverage().CPUIdle
	if pickedIdle < avg {
		t.Fatalf("allocation not load-aware: picked %g vs cluster %g", pickedIdle, avg)
	}
}

func TestAllocateBounds(t *testing.T) {
	c := newCluster(5)
	if got := len(c.Allocate(0)); got != 1 {
		t.Fatalf("Allocate(0) = %d machines", got)
	}
	if got := len(c.Allocate(10_000)); got != c.Size() {
		t.Fatalf("Allocate(huge) = %d machines", got)
	}
	// No duplicates.
	picked := c.Allocate(16)
	seen := map[int]bool{}
	for _, id := range picked {
		if seen[id] {
			t.Fatalf("machine %d allocated twice", id)
		}
		seen[id] = true
	}
}

func TestAddLoadRaisesUtilization(t *testing.T) {
	c := newCluster(6)
	ids := []int{0, 1, 2}
	before := c.Average(ids)
	c.AddLoad(ids, 0.3)
	after := c.Average(ids)
	if after.CPUIdle >= before.CPUIdle {
		t.Fatalf("AddLoad did not reduce idle: %g -> %g", before.CPUIdle, after.CPUIdle)
	}
}

func TestHistoryAverageTracksWindow(t *testing.T) {
	c := newCluster(7)
	for i := 0; i < 100; i++ {
		c.Advance(SampleInterval)
	}
	h := c.HistoryAverage()
	cur := c.ClusterAverage()
	// Both should be plausible utilization levels, not wildly apart.
	if math.Abs(h.CPUIdle-cur.CPUIdle) > 0.5 {
		t.Fatalf("history %g vs current %g", h.CPUIdle, cur.CPUIdle)
	}
	if h.IOWait <= 0 {
		t.Fatal("history IO wait should be positive")
	}
}

func TestAverageEmptyFallsBackToCluster(t *testing.T) {
	c := newCluster(8)
	if c.Average(nil) != c.ClusterAverage() {
		t.Fatal("empty Average should be cluster-wide")
	}
}

func TestDeterminism(t *testing.T) {
	c1, c2 := newCluster(9), newCluster(9)
	c1.Advance(600)
	c2.Advance(600)
	if c1.ClusterAverage() != c2.ClusterAverage() {
		t.Fatal("same-seed clusters diverged")
	}
}

func TestMetricsAddScale(t *testing.T) {
	a := Metrics{CPUIdle: 0.2, IOWait: 0.1, Load5: 4, MemUsage: 0.5}
	b := a.Add(a).Scale(0.5)
	if b != a {
		t.Fatalf("Add/Scale roundtrip: %v", b)
	}
}

func TestDiurnalCycleMovesLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 16
	cfg.DiurnalAmp = 0.3
	cfg.BurstProb = 0
	cfg.LoadNoise = 0.001
	c := New(simrand.New(10), cfg)
	var loads []float64
	for i := 0; i < 24; i++ {
		c.Advance(3600)
		loads = append(loads, 1-c.ClusterAverage().CPUIdle)
	}
	lo, hi := loads[0], loads[0]
	for _, v := range loads {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.15 {
		t.Fatalf("diurnal swing too small: %g", hi-lo)
	}
}
