package experiments

import (
	"strings"
	"testing"
)

// gatePass is a PerfResult comfortably inside the baseline thresholds; each
// case below perturbs one dimension.
func gatePass() *PerfResult {
	r := &PerfResult{CalibNs: 1000}
	r.PredictCost.NsPerOp = 50000
	r.Select.UncachedQPS = 4000
	r.Select.WarmQPS = 200000
	r.Select.Identical = true
	r.Quant.Identical = true
	r.Coalesced.Identical = true
	return r
}

func gateBase() *PerfBaseline {
	return &PerfBaseline{CalibNs: 1000, PredictNsPerOp: 60000, WarmQPS: 80000}
}

// TestCompareBaseline pins the trend gate's semantics: the 10% bands, the
// calibration scaling with its [0.25, 4] clamp, and the identical-choices
// bits, each reported with a recognizable message.
func TestCompareBaseline(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *PerfResult, b *PerfBaseline)
		want   string // "" = gate passes
	}{
		{"healthy", func(r *PerfResult, b *PerfBaseline) {}, ""},
		{"predict regression", func(r *PerfResult, b *PerfBaseline) {
			r.PredictCost.NsPerOp = 67000 // limit is 1.1·60000 = 66000
		}, "PredictCost"},
		{"warm regression", func(r *PerfResult, b *PerfBaseline) {
			r.Select.WarmQPS = 71000 // floor is 0.9·80000 = 72000
		}, "warm select"},
		{"slow machine scales thresholds", func(r *PerfResult, b *PerfBaseline) {
			// 2× slower machine: raw numbers that would fail unscaled pass.
			r.CalibNs = 2000
			r.PredictCost.NsPerOp = 110000 // < 1.1·60000·2
			r.Select.WarmQPS = 40000       // > 0.9·80000/2
		}, ""},
		{"scale clamped at 4", func(r *PerfResult, b *PerfBaseline) {
			// A 100× calib ratio must not excuse a 10× latency regression.
			r.CalibNs = 100000
			r.PredictCost.NsPerOp = 600000 // > 1.1·60000·4
		}, "PredictCost"},
		{"scale clamped at 0.25", func(r *PerfResult, b *PerfBaseline) {
			// A 100× faster machine is only asked for 4× the numbers.
			r.CalibNs = 10
			r.PredictCost.NsPerOp = 16000 // < 1.1·60000·0.25 = 16500
			r.Select.WarmQPS = 290000     // > 0.9·80000/0.25 = 288000
		}, ""},
		{"cached choices diverge", func(r *PerfResult, b *PerfBaseline) {
			r.Select.Identical = false
		}, "warm cached scoring"},
		{"quant choices diverge", func(r *PerfResult, b *PerfBaseline) {
			r.Quant.Identical = false
		}, "quantized scoring"},
		{"coalesced choices diverge", func(r *PerfResult, b *PerfBaseline) {
			r.Coalesced.Identical = false
		}, "coalesced scoring"},
		{"zero calib means unscaled", func(r *PerfResult, b *PerfBaseline) {
			b.CalibNs = 0
			r.PredictCost.NsPerOp = 67000
		}, "PredictCost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, b := gatePass(), gateBase()
			tc.mutate(r, b)
			bad := r.CompareBaseline(b)
			if tc.want == "" {
				if len(bad) != 0 {
					t.Fatalf("unexpected violations: %v", bad)
				}
				return
			}
			if len(bad) != 1 || !strings.Contains(bad[0], tc.want) {
				t.Fatalf("violations %v, want one containing %q", bad, tc.want)
			}
		})
	}
}

// TestBaselineSpeedup: the reported speedup is warm q/s relative to the
// baseline in baseline-machine units — a 2× slower machine matching the
// baseline's raw q/s is really 2× faster.
func TestBaselineSpeedup(t *testing.T) {
	r, b := gatePass(), gateBase()
	if got := r.BaselineSpeedup(b); got != 200000.0/80000 {
		t.Fatalf("speedup = %v, want 2.5", got)
	}
	r.CalibNs = 2000 // twice as slow as the baseline machine
	if got := r.BaselineSpeedup(b); got != 2*200000.0/80000 {
		t.Fatalf("scaled speedup = %v, want 5", got)
	}
	if got := r.BaselineSpeedup(&PerfBaseline{}); got != 0 {
		t.Fatalf("speedup against empty baseline = %v, want 0", got)
	}
}

// TestCalibrateMachine: the calibration is a positive, finite wall-time
// measurement.
func TestCalibrateMachine(t *testing.T) {
	ns := CalibrateMachine()
	if !(ns > 0) || ns > 1e12 {
		t.Fatalf("calibration %v ns outside sane range", ns)
	}
}
