package experiments

import (
	"context"
	"errors"
	"testing"
)

// These are the regression tests for the ctxflow findings fixed in this
// change: Perf and Serve used to root a fresh context.Background()
// internally, so a caller's deadline or cancellation never reached
// OptimizeBatch. Both must now surface context.Canceled from a canceled
// caller context.

func TestServeHonorsCancellation(t *testing.T) {
	env := tinyEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.Serve(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve(canceled ctx) err = %v, want context.Canceled", err)
	}
}

func TestPerfHonorsCancellation(t *testing.T) {
	env := tinyEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.Perf(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Perf(canceled ctx) err = %v, want context.Canceled", err)
	}
}
