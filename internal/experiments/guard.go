package experiments

import (
	"fmt"
	"io"

	"loam"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/telemetry"
	"loam/internal/walltime"
)

// GuardResult measures the guarded serving layer riding out a forced
// learned-path outage: a healthy phase, an injected 100%-failure outage
// phase, and a recovery phase after the fault clears. Because the fault
// injector is seeded and the circuit breaker is clocked by serve calls (not
// wall time), the trip → cooldown → half-open probe → recovery trajectory
// lands on exactly the same queries every run.
type GuardResult struct {
	Project string
	Phases  []GuardPhase
	// Breaker lifecycle counts over the whole run (from guard.* telemetry).
	Trips     int64
	HalfOpens int64
	Closes    int64
	// Availability is served choices / optimize calls. The guard's whole
	// point: 1.0 even while the learned path is down.
	Availability float64
}

// GuardPhase tallies one phase's choices by serving origin.
type GuardPhase struct {
	Name    string
	Queries int
	Learned int
	Native  int
	Default int
	Errors  int
}

// guardPhaseQueries is the per-phase query count; sized so one outage phase
// walks the breaker through trip, full cooldown and a failed probe, and the
// recovery phase through the remaining cooldown, successful probes and
// close.
const guardPhaseQueries = 10

// Guard runs the guarded-serving outage experiment on the first evaluation
// project: train a LOAM deployment armed with a deterministic fault injector
// (off at first), then serve three phases — healthy, total learned-path
// outage, recovery — and report per-phase serving origins plus the breaker's
// lifecycle from the guard.* counters.
func (e *Env) Guard() (*GuardResult, error) {
	project := e.projects[0].Config.Name
	ps := e.Project(project)

	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = e.Cfg.TrainDays
	dcfg.TestDays = e.Cfg.TestDays
	dcfg.MaxTrain = e.Cfg.MaxTrain
	dcfg.Predictor = e.Cfg.predictorConfig(predictor.KindTCN)

	// The shared registry, so `loam-bench -metrics` renders the guard.*
	// counters alongside everything else; breaker lifecycle counts below are
	// deltas, so other deployments' guards don't leak in. The breaker is
	// sized so the outage and recovery dynamics fit in guardPhaseQueries
	// calls per phase.
	reg := e.Sim.Telemetry()
	before := breakerCounts(reg)
	inj := loam.NewFaultInjector(e.Cfg.Seed, loam.FaultInjectorConfig{PredictorErrorRate: 1})
	inj.SetEnabled(false)
	gcfg := loam.DefaultGuardConfig()
	gcfg.WindowSize = 8
	gcfg.TripThreshold = 4
	gcfg.CooldownSteps = 6
	gcfg.HalfOpenProbes = 2

	sw := walltime.Start()
	dep, err := ps.Deploy(dcfg,
		loam.WithMetrics(reg),
		loam.WithFaultInjector(inj),
		loam.WithGuardConfig(gcfg),
	)
	if err != nil {
		return nil, fmt.Errorf("guard %s: %w", project, err)
	}
	e.Cfg.logf("guard %s: trained in %.1fs", project, sw.Seconds())

	var qs []*query.Query
	for day := e.Cfg.TrainDays; len(qs) < 3*guardPhaseQueries; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}

	res := &GuardResult{Project: project}
	served := 0
	phases := []struct {
		name   string
		inject bool
	}{
		{"healthy", false},
		{"outage", true},
		{"recovery", false},
	}
	for i, p := range phases {
		inj.SetEnabled(p.inject)
		phase := GuardPhase{Name: p.name}
		for _, q := range qs[i*guardPhaseQueries : (i+1)*guardPhaseQueries] {
			phase.Queries++
			choice, err := dep.Optimize(q)
			if err != nil {
				phase.Errors++
				continue
			}
			served++
			switch choice.Origin {
			case loam.OriginNativeFallback:
				phase.Native++
			case loam.OriginDefaultFallback:
				phase.Default++
			default:
				phase.Learned++
			}
		}
		e.Cfg.logf("guard %s: phase %s learned=%d native=%d default=%d errors=%d breaker=%s",
			project, phase.Name, phase.Learned, phase.Native, phase.Default,
			phase.Errors, dep.Guard().State())
		res.Phases = append(res.Phases, phase)
	}

	after := breakerCounts(reg)
	res.Trips = after[0] - before[0]
	res.HalfOpens = after[1] - before[1]
	res.Closes = after[2] - before[2]
	res.Availability = float64(served) / float64(3*guardPhaseQueries)
	return res, nil
}

// breakerCounts reads the breaker lifecycle counters (opened, half-opened,
// closed) from a registry.
func breakerCounts(reg *telemetry.Registry) [3]int64 {
	return [3]int64{
		reg.Counter("guard.breaker.opened").Value(),
		reg.Counter("guard.breaker.half_opened").Value(),
		reg.Counter("guard.breaker.closed").Value(),
	}
}

// Render prints the per-phase origin tallies and the breaker lifecycle.
func (r *GuardResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Guarded serving under forced outage — project %q, availability %.0f%%\n",
		r.Project, r.Availability*100)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %7s\n",
		"phase", "queries", "learned", "native", "default", "errors")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-10s %8d %8d %8d %8d %7d\n",
			p.Name, p.Queries, p.Learned, p.Native, p.Default, p.Errors)
	}
	fmt.Fprintf(w, "breaker: %d trip(s), %d half-open probe window(s), %d close(s)\n",
		r.Trips, r.HalfOpens, r.Closes)
}
