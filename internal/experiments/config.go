// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): one function per artifact, shared by the loam-bench CLI
// and the repository's benchmark suite. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"

	"loam/internal/predictor"
	"loam/internal/stats"
	"loam/internal/warehouse"
	"loam/internal/workload"
)

// Config scales the experiment suite. The default is a reduced, laptop-scale
// configuration; PaperScale approaches the paper's workload sizes.
type Config struct {
	Seed uint64
	// TrainDays and TestDays split each project's history (paper: 25/5).
	TrainDays int
	TestDays  int
	// MaxTrain caps training sets (paper: 10,000).
	MaxTrain int
	// Epochs for neural predictors.
	Epochs int
	// EvalQueries caps the number of test queries evaluated per project.
	EvalQueries int
	// EvalReps is how many times each candidate plan is executed to obtain
	// ground-truth cost distributions (the paper executes each candidate
	// multiple times and averages).
	EvalReps int
	// WorkloadScale multiplies template counts and daily query volumes.
	WorkloadScale float64
	// FleetProjects is the project-fleet size for selector experiments
	// (paper: 28–30 sampled projects).
	FleetProjects int
	// FleetTenants is the synthetic-tenant count for the fleet-serving
	// experiment (the paper's deployment serves >100k projects; the
	// experiment defaults to 10k in miniature).
	FleetTenants int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Default returns the reduced-scale configuration used by `go test` benches.
func Default() Config {
	return Config{
		Seed:          42,
		TrainDays:     25,
		TestDays:      5,
		MaxTrain:      10_000,
		Epochs:        14,
		EvalQueries:   50,
		EvalReps:      5,
		WorkloadScale: 1,
		FleetProjects: 28,
		FleetTenants:  10_000,
	}
}

// Tiny returns a minimal configuration for fast integration tests.
func Tiny() Config {
	return Config{
		Seed:          42,
		TrainDays:     6,
		TestDays:      2,
		MaxTrain:      400,
		Epochs:        3,
		EvalQueries:   8,
		EvalReps:      3,
		WorkloadScale: 0.4,
		FleetProjects: 8,
		FleetTenants:  100,
	}
}

// PaperScale approaches the paper's sizes (slow: hours of simulation).
func PaperScale() Config {
	c := Default()
	c.Epochs = 30
	c.EvalQueries = 200
	c.WorkloadScale = 5
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// predictorConfig derives the model hyperparameters from the experiment
// config.
func (c Config) predictorConfig(kind predictor.Kind) predictor.Config {
	pc := predictor.DefaultConfig()
	pc.Kind = kind
	pc.Epochs = c.Epochs
	pc.Seed = c.Seed + uint64(kind)
	return pc
}

// ProjectSpec ties a paper evaluation project to its simulated archetype.
// The five specs are tuned to reproduce Table 1's shape (table/column
// counts, query volumes, average CPU cost magnitudes) and §7's improvement-
// space pattern: Projects 2 and 5 have large headroom (badly degraded
// statistics), Project 1 moderate headroom, Projects 3 and 4 little headroom
// (near-pristine statistics), and Project 4 additionally has scarce
// training data.
type ProjectSpec struct {
	Name      string
	Archetype warehouse.Archetype
	Workload  workload.Config
	Stats     stats.Policy
}

// EvalProjectSpecs returns the five evaluation projects at the config's
// workload scale.
func (c Config) EvalProjectSpecs() []ProjectSpec {
	s := c.WorkloadScale
	if s <= 0 {
		s = 1
	}
	scale := func(base float64) float64 { return base * s }
	tpl := func(base int) int {
		v := int(float64(base) * s)
		if v < 3 {
			v = 3
		}
		return v
	}

	wl := func(templates int, qpd float64, pushDifficult float64, minT, maxT int) workload.Config {
		w := workload.DefaultConfig()
		w.NumTemplates = tpl(templates)
		w.QueriesPerDayMean = scale(qpd)
		w.PushDifficultProb = pushDifficult
		w.MinTables = minT
		w.MaxTables = maxT
		w.NoiseSigmaMax = 0.25
		return w
	}
	arch := func(name string, tables, cols int, rowsMean, rowsStd float64) warehouse.Archetype {
		a := warehouse.DefaultArchetype()
		a.Name = name
		a.NumTables = tables
		a.ColumnsPerTable = cols
		a.RowsLog10Mean = rowsMean
		a.RowsLog10Std = rowsStd
		return a
	}

	degraded := stats.Policy{ColumnStatsProb: 0.38, FreshProb: 0.30, MaxStalenessDays: 25, NDVNoise: 0.8}
	moderate := stats.Policy{ColumnStatsProb: 0.85, FreshProb: 0.85, MaxStalenessDays: 10, NDVNoise: 0.2}
	pristine := stats.Policy{ColumnStatsProb: 0.95, FreshProb: 0.90, MaxStalenessDays: 5, NDVNoise: 0.1}

	return []ProjectSpec{
		{
			// Project 1: moderate headroom (paper D(M_d) ≈ 25%), plenty of
			// training data, mid-sized costs (avg ≈ 11.5k).
			Name:      "project1",
			Archetype: arch("project1", 60, 14, 4.7, 0.9),
			Workload:  wl(12, 10, 0.25, 2, 5),
			Stats:     moderate,
		},
		{
			// Project 2: large headroom (≈43%), few wide tables, very large
			// costs (avg ≈ 1.8M).
			Name:      "project2",
			Archetype: arch("project2", 30, 6, 6.2, 0.7),
			Workload:  wl(12, 12, 0.55, 3, 6),
			Stats:     degraded,
		},
		{
			// Project 3: little headroom (≈20%), many columns (hardest data
			// distributions to learn), small costs (avg ≈ 3.3k).
			Name:      "project3",
			Archetype: arch("project3", 85, 21, 4.2, 0.8),
			Workload:  wl(12, 10, 0.30, 2, 5),
			Stats:     pristine,
		},
		{
			// Project 4: little headroom (≈23%) and scarce training data
			// (paper: 4,187 training queries vs 10,000).
			Name:      "project4",
			Archetype: arch("project4", 50, 17, 4.0, 0.8),
			Workload:  wl(8, 4, 0.30, 2, 4),
			Stats:     pristine,
		},
		{
			// Project 5: large headroom (≈40%), large costs (avg ≈ 103k),
			// slightly fewer training queries (paper: 8,701).
			Name:      "project5",
			Archetype: arch("project5", 55, 9, 5.5, 0.8),
			Workload:  wl(11, 11, 0.50, 2, 5),
			Stats:     degraded,
		},
	}
}
