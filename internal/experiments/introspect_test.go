package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestIntrospect prints, for one project, the queries with the largest
// default-vs-best gaps and which knobs win — a tuning aid (env-gated).
func TestIntrospect(t *testing.T) {
	if os.Getenv("LOAM_INTROSPECT") == "" {
		t.Skip("set LOAM_INTROSPECT=<project> to run")
	}
	name := os.Getenv("LOAM_INTROSPECT")
	cfg := Default()
	cfg.Log = os.Stderr
	env := NewEnv(cfg)
	pe := env.Eval(name)

	type row struct {
		qi    int
		ratio float64
		knobs string
	}
	var rows []row
	winners := map[string]int{}
	for qi := range pe.Queries {
		q := &pe.Queries[qi]
		best, bi := q.Means[0], 0
		for ci, m := range q.Means {
			if m < best {
				best, bi = m, ci
			}
		}
		knobs := "default"
		if bi != 0 {
			knobs = strings.Join(q.Cands[bi].Knobs, ",")
		}
		winners[knobs]++
		rows = append(rows, row{qi: qi, ratio: q.Means[0] / best, knobs: knobs})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	fmt.Fprintf(os.Stderr, "winners: %v\n", winners)
	for _, r := range rows[:10] {
		q := &pe.Queries[r.qi]
		fmt.Fprintf(os.Stderr, "q%02d default/best=%.1fx best=%s tables=%d means=%v\n",
			r.qi, r.ratio, r.knobs, len(q.Entry.Query.Tables), fmtMeans(q.Means))
		if r.ratio > 2.5 {
			fmt.Fprintf(os.Stderr, "--- default plan:\n%s", q.Cands[0])
		}
	}
}

func fmtMeans(m []float64) string {
	parts := make([]string, len(m))
	for i, v := range m {
		parts[i] = fmt.Sprintf("%.0f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
