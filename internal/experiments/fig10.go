package experiments

import (
	"fmt"
	"io"

	"loam/internal/floatsafe"
	"loam/internal/predictor"
)

// Fig10Result reproduces Fig. 10: query-optimization performance of the
// plan-cost-inference strategies of §5 — LOAM (average-case machine-level
// environment), LOAM-CE (expected cluster-wide environment over 24 h),
// LOAM-CB (cluster-wide environment at optimization time), and LOAM-NL (no
// environment features at all) — in E2E CPU cost and relative deviance, with
// the best-achievable model's deviance as the bound.
type Fig10Result struct {
	Projects []Fig10Project
}

// Fig10Project is one project's strategy comparison.
type Fig10Project struct {
	Project string
	// Cost and RelDev are keyed by strategy label.
	Cost   map[string]float64
	RelDev map[string]float64
	// BestAchievableRelDev is D(M_b)/oracle (≈10% in the paper).
	BestAchievableRelDev float64
	Native               float64
}

// Fig10 evaluates the four inference strategies on every project.
func (e *Env) Fig10(f6 *Fig6Result) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, pr := range f6.Projects {
		pe := e.Eval(pr.Project)
		fp := Fig10Project{
			Project:              pr.Project,
			Cost:                 map[string]float64{},
			RelDev:               map[string]float64{},
			BestAchievableRelDev: pr.BestAchievableDeviance,
			Native:               pr.Native,
		}

		// LOAM / LOAM-CE / LOAM-CB share one trained model and differ only
		// in the environment vector supplied at inference. CE and CB read
		// the cluster-wide observations captured at each query's
		// optimization moment; LOAM uses the historical machine-level mean.
		dep, err := e.Deployment(pr.Project, LOAMVariant())
		if err != nil {
			return nil, err
		}
		for _, s := range []predictor.Strategy{
			predictor.StrategyMeanEnv,
			predictor.StrategyClusterExpected,
			predictor.StrategyClusterCurrent,
		} {
			strategy := s
			pick := func(q *EvalQuery) int {
				envs := dep.Predictor().EnvSourceFor(strategy, q.ClusterExpected, q.ClusterCurrent)
				costs := make([]float64, len(q.Cands))
				for i, c := range q.Cands {
					costs[i] = dep.Predictor().PredictCost(c, envs)
				}
				if best := floatsafe.ArgMin(costs); best >= 0 {
					return best
				}
				return 0 // every estimate NaN: fall back to the default plan
			}
			m := evalMethod(pe, s.String(), pick)
			fp.Cost[s.String()] = m.AvgCost
			fp.RelDev[s.String()] = m.RelDeviance
		}

		// LOAM-NL is a separate model trained without environment features.
		nl, err := e.Deployment(pr.Project, Variant{Kind: predictor.KindTCN, Adapt: true, UseEnv: false})
		if err != nil {
			return nil, err
		}
		pick := pickWith(nl.Predictor(), predictor.StrategyNoEnv, [4]float64{}, [4]float64{})
		m := evalMethod(pe, "LOAM-NL", pick)
		fp.Cost["LOAM-NL"] = m.AvgCost
		fp.RelDev["LOAM-NL"] = m.RelDeviance

		res.Projects = append(res.Projects, fp)
	}
	return res, nil
}

// Strategies lists the result columns in render order.
func (r *Fig10Result) Strategies() []string {
	return []string{"LOAM", "LOAM-CE", "LOAM-CB", "LOAM-NL"}
}

// Render prints the two Fig.-10 panels.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 10 — Query optimization performance w.r.t. cost inference methods")
	fmt.Fprintln(w, "(a) E2E CPU cost")
	fmt.Fprintf(w, "%-10s %12s", "project", "MaxCompute")
	for _, s := range r.Strategies() {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, fp := range r.Projects {
		fmt.Fprintf(w, "%-10s %12.0f", fp.Project, fp.Native)
		for _, s := range r.Strategies() {
			fmt.Fprintf(w, " %12.0f", fp.Cost[s])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(b) Relative deviance (vs oracle)")
	fmt.Fprintf(w, "%-10s %12s", "project", "BestAchiev")
	for _, s := range r.Strategies() {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, fp := range r.Projects {
		fmt.Fprintf(w, "%-10s %11.1f%%", fp.Project, fp.BestAchievableRelDev*100)
		for _, s := range r.Strategies() {
			fmt.Fprintf(w, " %11.1f%%", fp.RelDev[s]*100)
		}
		fmt.Fprintln(w)
	}
}
