package experiments

import (
	"fmt"
	"io"

	"loam/internal/simrand"
	"loam/internal/theory"
)

// Thm1Result verifies Theorem 1 empirically on the measured candidate cost
// distributions: for every tested model M, E[D_E(M)] ≥ E[D_E(M_b)] ≥
// E[D_E(M_o)] = 0, and M_b's relative deviance sits near the paper's ≈10%.
type Thm1Result struct {
	Queries int
	// Violations counts (query, model) pairs where a model's expected
	// deviance fell below M_b's beyond numerical tolerance.
	Violations int
	// Mean relative deviances per model.
	Native  float64
	Random  float64
	BestAch float64
	// MCAgreement is the mean absolute difference between the numeric
	// integral (Eq. 2) and a Monte-Carlo estimate of E[D(M_d)], relative to
	// oracle cost — a cross-check of the deviance machinery.
	MCAgreement float64
}

// Thm1 runs the verification over all evaluation projects' measured queries.
func (e *Env) Thm1() *Thm1Result {
	res := &Thm1Result{}
	rng := simrand.New(e.Cfg.Seed + 31)
	const tol = 0.02
	var mcDiff, mcCount float64
	for _, ps := range e.Projects() {
		pe := e.Eval(ps.Config.Name)
		for qi := range pe.Queries {
			q := &pe.Queries[qi]
			oracle := q.OracleCost()
			if oracle <= 0 || len(q.Dists) < 2 {
				continue
			}
			res.Queries++
			bi := q.BestAchievableIdx()
			devB := theory.ExpectedDeviance(q.Dists, bi) / oracle
			devNative := theory.ExpectedDeviance(q.Dists, 0) / oracle
			ri := rng.Intn(len(q.Dists))
			devRandom := theory.ExpectedDeviance(q.Dists, ri) / oracle

			res.BestAch += devB
			res.Native += devNative
			res.Random += devRandom
			if devNative < devB-tol || devRandom < devB-tol || devB < -tol {
				res.Violations++
			}

			// Monte-Carlo cross-check on a subsample.
			if res.Queries%7 == 0 {
				mc := theory.MonteCarloDeviance(rng, q.Dists, 0, 4000) / oracle
				d := mc - devNative
				if d < 0 {
					d = -d
				}
				mcDiff += d
				mcCount++
			}
		}
	}
	if res.Queries > 0 {
		res.BestAch /= float64(res.Queries)
		res.Native /= float64(res.Queries)
		res.Random /= float64(res.Queries)
	}
	if mcCount > 0 {
		res.MCAgreement = mcDiff / mcCount
	}
	return res
}

// Render prints the verification summary.
func (r *Thm1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Theorem 1 — Empirical verification over measured candidate distributions")
	fmt.Fprintf(w, "queries=%d violations=%d\n", r.Queries, r.Violations)
	fmt.Fprintf(w, "mean relative deviance: bestAchievable=%.1f%%  native=%.1f%%  random=%.1f%%\n",
		r.BestAch*100, r.Native*100, r.Random*100)
	fmt.Fprintf(w, "Eq.(2) vs Monte-Carlo mean |diff| = %.3f (relative to oracle)\n", r.MCAgreement)
}
