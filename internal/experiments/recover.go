package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"loam"
	"loam/internal/atomicio"
	"loam/internal/durable"
	"loam/internal/faultinject"
	"loam/internal/fleet"
	"loam/internal/query"
	"loam/internal/walltime"
)

// RecoverResult is the kill-point chaos proof for the durability layer: a
// forced-drift lifecycle run (deploy → promote → probation rollback) is first
// executed cleanly to count its durable write schedule, then re-executed once
// per write point with an injected crash at exactly that operation — cycling
// the crash flavors (before any byte lands, mid-write torn, rename pending) —
// and after every crash the store must fsck clean and RestoreDeployment (or,
// when the crash predates the first committed checkpoint, a redeploy into the
// same directory) must produce a deployment that serves with 100%
// availability. A fleet-grants restart leg rides along: the grant table a
// rebalanced registry persisted must survive a registry restart with the
// budget invariant intact. Same-seed runs print byte-identical reports.
type RecoverResult struct {
	Project string
	// WriteOps is the baseline run's durable write schedule length — and
	// therefore the number of kill points swept.
	WriteOps int
	// BaselineServes / BaselineEvents / FinalVersion describe the clean run.
	BaselineServes int
	BaselineEvents []LifecycleEvent
	FinalVersion   int
	// Points holds one recovery outcome per kill point, in schedule order.
	Points []RecoverPoint
	// Restores and Redeploys partition the sweep: a restore resumes from a
	// committed checkpoint, a redeploy handles a crash that predates one.
	Restores  int
	Redeploys int
	// Availability is served / attempted over every post-recovery probe; the
	// durability layer must never cost a query.
	Availability float64
	// GrantTenants counts the fleet tenants whose grants survived the
	// registry restart leg.
	GrantTenants int
}

// RecoverPoint is one kill point's recovery outcome.
type RecoverPoint struct {
	// Point is the 1-based index of the durable write that crashed.
	Point int
	// Flavor is the injected crash flavor (before / torn / after-temp).
	Flavor string
	// Op is the durable operation that was killed (write / append / remove).
	Op string
	// Mode is "restore" or "redeploy".
	Mode string
	// Version is the serving model's lineage version after recovery.
	Version int
	// TornTail reports that fsck saw a repairable torn journal tail.
	TornTail bool
}

// The chaos workload is deliberately small and private to the experiment: a
// fresh identically-seeded simulation per kill run replays the exact same
// serve stream (and therefore the exact same write schedule) every time.
const (
	recoverProjectName = "chaos"
	recoverTrainDays   = 6
	recoverTestDays    = 2
	// recoverQueries bounds each run's serve stream: enough for the
	// hair-trigger sentinel to force retrain → promote → probation rollback,
	// short enough that sweeping every write point stays cheap.
	recoverQueries = 22
	// recoverProbeQueries is the post-recovery serve probe per kill point.
	recoverProbeQueries = 6
	// recoverMaxDay bounds day generation against empty workload days.
	recoverMaxDay = 48
)

// recoverRunState is one chaos run's residue: the simulation it ran in, the
// store directory it wrote, and what happened before the kill point fired.
type recoverRunState struct {
	ps      *loam.ProjectSim
	dir     string
	crash   *atomicio.Crash
	ops     int
	served  int
	events  []LifecycleEvent
	version int
}

// Recover runs the kill-point chaos experiment. The caller's context bounds
// the sweep: cancellation is checked before each kill point and flows into
// the fleet-grant leg's routing.
func (e *Env) Recover(ctx context.Context) (*RecoverResult, error) {
	sw := walltime.Start()
	model, err := e.recoverModel()
	if err != nil {
		return nil, err
	}
	e.Cfg.logf("recover: trained chaos model (%.1fs)", sw.Seconds())

	base, err := e.recoverRun(0, faultinject.FlavorBefore, model)
	if base != nil {
		defer os.RemoveAll(base.dir)
	}
	if err != nil {
		return nil, err
	}
	if base.crash != nil {
		return nil, fmt.Errorf("recover: baseline crashed: %v", base.crash)
	}
	res := &RecoverResult{
		Project:        recoverProjectName,
		WriteOps:       base.ops,
		BaselineServes: base.served,
		BaselineEvents: base.events,
		FinalVersion:   base.version,
	}
	var promotes, rollbacks int
	for _, ev := range base.events {
		switch ev.Kind {
		case "promote":
			promotes++
		case "rollback":
			rollbacks++
		}
	}
	if promotes == 0 || rollbacks == 0 {
		return nil, fmt.Errorf("recover: baseline trajectory incomplete (%d promotes, %d rollbacks in %d serves): the sweep would not cover every checkpoint kind",
			promotes, rollbacks, base.served)
	}
	e.Cfg.logf("recover: baseline %d serves, %d write points (%.1fs)",
		base.served, base.ops, sw.Seconds())

	probes, served := 0, 0
	for n := 1; n <= res.WriteOps; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		flavor := faultinject.FlavorFor(n)
		st, err := e.recoverRun(n, flavor, model)
		if st == nil {
			return nil, err
		}
		if err == nil && st.crash == nil {
			err = fmt.Errorf("recover: kill point %d/%d never fired", n, res.WriteOps)
		}
		var pt RecoverPoint
		var p, ok int
		if err == nil {
			pt, p, ok, err = e.recoverPoint(st, n, flavor, model)
		}
		os.RemoveAll(st.dir)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
		if pt.Mode == "restore" {
			res.Restores++
		} else {
			res.Redeploys++
		}
		probes += p
		served += ok
		if n%10 == 0 {
			e.Cfg.logf("recover: %d/%d kill points recovered (%.1fs)", n, res.WriteOps, sw.Seconds())
		}
	}
	if probes > 0 {
		res.Availability = float64(served) / float64(probes)
	}

	res.GrantTenants, err = e.recoverGrants(ctx)
	if err != nil {
		return nil, err
	}
	e.Cfg.logf("recover: swept %d kill points in %.1fs", res.WriteOps, sw.Seconds())
	return res, nil
}

// recoverProject builds the chaos project in a fresh simulation seeded only
// by the experiment seed, so every call replays an identical workload — the
// property that makes "crash at the Nth write" meaningful across runs.
func (e *Env) recoverProject() *loam.ProjectSim {
	sim := loam.NewSimulation(e.Cfg.Seed, loam.DefaultSimulationConfig())
	cfg := loam.DefaultProjectConfig(recoverProjectName)
	cfg.Archetype.NumTables = 10
	cfg.Workload.NumTemplates = 6
	cfg.Workload.QueriesPerDayMean = 6
	ps := sim.AddProject(cfg)
	ps.RunDays(0, recoverTrainDays+recoverTestDays)
	return ps
}

// recoverConfigs returns the hair-trigger guard and quick lifecycle tuning
// the chaos runs share — the same forced-drift recipe as the lifecycle
// experiment, so promote and rollback land deterministically inside the
// serve budget.
func recoverConfigs() (loam.GuardConfig, loam.LifecycleConfig) {
	gcfg := loam.DefaultGuardConfig()
	gcfg.DivergenceBand = 0.01
	gcfg.DivergenceWindow = 4
	gcfg.QuarantineWindows = 1

	lcfg := loam.DefaultLifecycleConfig()
	lcfg.MinFeedback = 8
	lcfg.RetrainWindow = 64
	lcfg.ShadowWindow = 32
	lcfg.AcceptTolerance = 10
	lcfg.Probation = 16
	lcfg.DomainPlans = 8
	lcfg.Drift = loam.DriftConfig{Window: 1 << 20, Threshold: 1e9, Windows: 1 << 20}
	return gcfg, lcfg
}

// recoverModel trains the chaos model once; every run then deploys the same
// bytes via DeployFromModel, keeping the sweep's cost in serving, not
// training.
func (e *Env) recoverModel() ([]byte, error) {
	ps := e.recoverProject()
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = recoverTrainDays
	dcfg.TestDays = recoverTestDays
	dcfg.Predictor.Epochs = 2
	dcfg.DomainPlans = 8
	dep, err := ps.Deploy(dcfg, loam.WithMetrics(e.Sim.Telemetry()))
	if err != nil {
		return nil, fmt.Errorf("recover: train: %w", err)
	}
	var buf bytes.Buffer
	if err := dep.SaveModel(&buf); err != nil {
		return nil, fmt.Errorf("recover: save model: %w", err)
	}
	return buf.Bytes(), nil
}

// recoverRun executes one chaos run: deploy the saved model with a durable
// store behind a kill-point FS, then serve the forced-drift stream. at == 0
// never crashes (the baseline that counts the write schedule); otherwise the
// injected *atomicio.Crash panic is recovered here and returned in the state.
func (e *Env) recoverRun(at int, flavor faultinject.CrashFlavor, model []byte) (st *recoverRunState, err error) {
	ps := e.recoverProject()
	dir, err := os.MkdirTemp("", "loam-recover-")
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	st = &recoverRunState{ps: ps, dir: dir, version: 1}
	kp := faultinject.NewKillPoint(e.Cfg.Seed, at, flavor)
	defer func() {
		st.ops = kp.Ops()
		if r := recover(); r != nil {
			c, ok := r.(*atomicio.Crash)
			if !ok {
				panic(r)
			}
			st.crash = c
		}
	}()
	gcfg, lcfg := recoverConfigs()
	dep, err := ps.DeployFromModel(bytes.NewReader(model), recoverTrainDays, recoverTestDays,
		loam.WithMetrics(e.Sim.Telemetry()),
		loam.WithGuardConfig(gcfg),
		loam.WithLifecycle(lcfg),
		loam.WithDurableStore(dir),
		loam.WithDurableFS(atomicio.NewFS(kp)),
	)
	if err != nil {
		return st, fmt.Errorf("recover: deploy: %w", err)
	}
	lc := dep.Lifecycle()
	for day := recoverTrainDays + recoverTestDays; st.served < recoverQueries && day < recoverMaxDay; day++ {
		for _, q := range ps.Gen.Day(day) {
			if st.served >= recoverQueries {
				break
			}
			st.served++
			c, err := dep.Optimize(q)
			if err != nil {
				continue
			}
			dep.ExecuteChoice(c)
			if v := lc.Version(); v != st.version {
				kind := "promote"
				if v < st.version {
					kind = "rollback"
				}
				st.events = append(st.events, LifecycleEvent{Query: st.served, Kind: kind, Version: v})
				st.version = v
			}
		}
	}
	return st, nil
}

// recoverPoint recovers one crashed run: fsck the store the dead process left
// behind, rebuild a deployment from it (RestoreDeployment when a checkpoint
// committed, redeploy into the same directory when the crash predates one),
// probe-serve the recovered deployment, and fsck again. Every deviation from
// a clean recovery is an error — the experiment is the proof.
func (e *Env) recoverPoint(st *recoverRunState, n int, flavor faultinject.CrashFlavor, model []byte) (RecoverPoint, int, int, error) {
	out := RecoverPoint{Point: n, Flavor: flavor.String(), Op: st.crash.Op.String()}
	rep := durable.Fsck(st.dir)
	out.TornTail = rep.TornTail

	gcfg, lcfg := recoverConfigs()
	opts := []loam.DeployOption{
		loam.WithMetrics(e.Sim.Telemetry()),
		loam.WithGuardConfig(gcfg),
		loam.WithLifecycle(lcfg),
	}
	var dep *loam.Deployment
	var err error
	if rep.Manifest == nil {
		// The process died before its first checkpoint committed: nothing is
		// durable yet, so the consistent recovery is a redeploy into the same
		// directory. The only tolerable fsck problem is the missing recovery
		// point itself.
		for _, p := range rep.Problems {
			if !strings.Contains(p.Detail, "no recovery point") {
				return out, 0, 0, fmt.Errorf("recover: kill %d fsck %s: %s", n, p.Path, p.Detail)
			}
		}
		out.Mode = "redeploy"
		dep, err = st.ps.DeployFromModel(bytes.NewReader(model), recoverTrainDays, recoverTestDays,
			append(opts, loam.WithDurableStore(st.dir))...)
		if err != nil {
			return out, 0, 0, fmt.Errorf("recover: kill %d redeploy: %w", n, err)
		}
	} else {
		if !rep.OK() {
			p := rep.Problems[0]
			return out, 0, 0, fmt.Errorf("recover: kill %d fsck %s: %s", n, p.Path, p.Detail)
		}
		out.Mode = "restore"
		dep, err = st.ps.RestoreDeployment(st.dir, recoverTrainDays, recoverTestDays, opts...)
		if err != nil {
			return out, 0, 0, fmt.Errorf("recover: kill %d: %w", n, err)
		}
	}
	out.Version = dep.Lifecycle().Version()

	// The recovered deployment must serve; probe days sit past the chaos
	// stream so the generator hands out fresh queries.
	probes, served := 0, 0
	for day := recoverMaxDay; probes < recoverProbeQueries && day < recoverMaxDay+16; day++ {
		for _, q := range st.ps.Gen.Day(day) {
			if probes >= recoverProbeQueries {
				break
			}
			probes++
			c, err := dep.Optimize(q)
			if err != nil {
				continue
			}
			served++
			dep.ExecuteChoice(c)
		}
	}
	// The probes journaled (and may have checkpointed a probe-time rollback);
	// the store must still be consistent.
	if rep := durable.Fsck(st.dir); !rep.OK() {
		p := rep.Problems[0]
		return out, probes, served, fmt.Errorf("recover: kill %d post-probe fsck %s: %s", n, p.Path, p.Detail)
	}
	return out, probes, served, nil
}

// recoverGrants is the fleet-restart leg: a registry with durable grants
// rebalances under skewed traffic, a second registry restarts from the same
// directory, and the restored grants must match with the budget invariant
// (entries <= granted <= budget) intact.
func (e *Env) recoverGrants(ctx context.Context) (int, error) {
	dir, err := os.MkdirTemp("", "loam-recover-grants-")
	if err != nil {
		return 0, fmt.Errorf("recover: grants: %w", err)
	}
	defer os.RemoveAll(dir)

	fcfg := loam.DefaultFleetConfig()
	fcfg.CacheBudget = 96
	fcfg.InitialGrant = 16
	names := []string{"grant-a", "grant-b", "grant-c"}
	build := func() (*loam.FleetRegistry, error) {
		f := e.Sim.NewFleet(fcfg)
		if err := f.EnableDurableGrants(dir, nil); err != nil {
			return nil, err
		}
		for _, name := range names {
			if err := f.RegisterBackend(name, fleet.NewSyntheticTenant(name, e.Sim.Telemetry())); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	f, err := build()
	if err != nil {
		return 0, fmt.Errorf("recover: grants: %w", err)
	}
	// Skewed traffic earns grant-a the lion's share of the rebalanced budget.
	volume := map[string]int{"grant-a": 24, "grant-b": 6, "grant-c": 2}
	for _, name := range names {
		for i := 0; i < volume[name]; i++ {
			q := &query.Query{
				ID:         fmt.Sprintf("%s-%d", name, i),
				TemplateID: fmt.Sprintf("t%02d", i%4),
			}
			if _, err := f.Registry().Route(ctx, name, q); err != nil {
				return 0, fmt.Errorf("recover: grants route %s: %w", name, err)
			}
		}
	}
	f.Rebalance()
	want := map[string]int{}
	for _, name := range f.Tenants() {
		tst, _ := f.Stats(name)
		want[name] = tst.Grant
	}

	// "Restart" the registry: a fresh one re-registers the tenants and
	// restores the persisted table.
	f2, err := build()
	if err != nil {
		return 0, fmt.Errorf("recover: grants restart: %w", err)
	}
	restored, err := f2.RestoreGrants()
	if err != nil {
		return 0, fmt.Errorf("recover: grants restore: %w", err)
	}
	if !restored {
		return 0, fmt.Errorf("recover: grants restore: no saved table found")
	}
	for _, name := range names {
		tst, ok := f2.Stats(name)
		if !ok || tst.Grant != want[name] {
			return 0, fmt.Errorf("recover: grants restore: %s grant %d, want %d", name, tst.Grant, want[name])
		}
	}
	b := f2.Budget()
	if b.Granted > b.Budget || b.Entries > b.Granted {
		return 0, fmt.Errorf("recover: grants restore: budget invariant broken: entries %d, granted %d, budget %d",
			b.Entries, b.Granted, b.Budget)
	}
	return len(names), nil
}

// Render prints the deterministic chaos report: the baseline trajectory, one
// line per kill point, and the sweep summary.
func (r *RecoverResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Crash recovery under kill-point chaos — project %q, post-recovery availability %.0f%%\n",
		r.Project, r.Availability*100)
	fmt.Fprintf(w, "baseline: %d serves over %d durable writes, final model v%d\n",
		r.BaselineServes, r.WriteOps, r.FinalVersion)
	for _, ev := range r.BaselineEvents {
		fmt.Fprintf(w, "  serve %3d  %-8s -> v%d\n", ev.Query, ev.Kind, ev.Version)
	}
	for _, p := range r.Points {
		tail := ""
		if p.TornTail {
			tail = "  torn-tail"
		}
		fmt.Fprintf(w, "  kill %3d  %-10s %-8s %-8s -> v%d%s\n",
			p.Point, p.Flavor, p.Op, p.Mode, p.Version, tail)
	}
	fmt.Fprintf(w, "recovered %d/%d kill points (%d restores, %d redeploys), fsck clean at every point\n",
		len(r.Points), r.WriteOps, r.Restores, r.Redeploys)
	fmt.Fprintf(w, "fleet grants: %d tenants survive a registry restart, entries <= granted <= budget\n",
		r.GrantTenants)
}
