package experiments

import (
	"fmt"
	"io"

	"loam/internal/explorer"
)

// Ext1Result quantifies the paper's §7.3 conjecture: the fleet-benefit
// estimate is "restricted by current plan exploration strategies" and
// "could be substantially improved by incorporating more diversified plan
// exploration strategies". For each evaluation project it measures the
// exploration *ceiling* — the average per-query improvement of the best
// candidate over the default plan (by environment-free true work) — under
// the paper's conservative explorer and under the diversified wide explorer.
type Ext1Result struct {
	Projects []Ext1Project
}

// Ext1Project is one project's ceiling comparison.
type Ext1Project struct {
	Project string
	Queries int
	// NarrowCeiling and WideCeiling are mean per-query best-candidate
	// improvements (1 − bestWork/defaultWork).
	NarrowCeiling float64
	WideCeiling   float64
	// NarrowCands and WideCands are the mean candidate-set sizes.
	NarrowCands float64
	WideCands   float64
}

// Ext1 measures exploration ceilings over each project's test queries.
func (e *Env) Ext1() *Ext1Result {
	res := &Ext1Result{}
	for _, ps := range e.Projects() {
		pe := e.Eval(ps.Config.Name)
		p := Ext1Project{Project: ps.Config.Name}
		for qi := range pe.Queries {
			entry := pe.Queries[qi].Entry
			day := entry.Record.Day

			narrow := explorer.New(ps.View(day))
			narrow.TopK = 0
			wide := explorer.NewWide(ps.View(day))
			wide.TopK = 0

			ceiling := func(ex *explorer.Explorer) (float64, int) {
				cands := ex.Candidates(entry.Query)
				defWork, _, _, _ := ps.Executor.Work(cands[0], day)
				best := defWork
				for _, c := range cands[1:] {
					if w, _, _, _ := ps.Executor.Work(c, day); w < best {
						best = w
					}
				}
				if defWork <= 0 {
					return 0, len(cands)
				}
				return 1 - best/defWork, len(cands)
			}
			nc, nn := ceiling(narrow)
			wc, wn := ceiling(wide)
			p.NarrowCeiling += nc
			p.WideCeiling += wc
			p.NarrowCands += float64(nn)
			p.WideCands += float64(wn)
			p.Queries++
		}
		if p.Queries > 0 {
			n := float64(p.Queries)
			p.NarrowCeiling /= n
			p.WideCeiling /= n
			p.NarrowCands /= n
			p.WideCands /= n
		}
		res.Projects = append(res.Projects, p)
	}
	return res
}

// Render prints the ceiling comparison.
func (r *Ext1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Extension (§7.3) — Exploration ceiling: conservative vs diversified strategies")
	fmt.Fprintf(w, "%-10s %8s %14s %14s %10s %10s\n",
		"project", "queries", "narrowCeiling", "wideCeiling", "narrow#", "wide#")
	for _, p := range r.Projects {
		fmt.Fprintf(w, "%-10s %8d %13.1f%% %13.1f%% %10.1f %10.1f\n",
			p.Project, p.Queries, p.NarrowCeiling*100, p.WideCeiling*100, p.NarrowCands, p.WideCands)
	}
}
