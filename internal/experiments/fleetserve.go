package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"loam"
	"loam/internal/faultinject"
	"loam/internal/fleet"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/telemetry"
	"loam/internal/walltime"
)

// FleetServeResult measures the multi-tenant fleet registry at warehouse
// scale: FleetTenants synthetic projects plus two real LOAM deployments
// behind one registry, serving zipfian traffic through sharded routing,
// per-tenant admission control and the global plan-cache budget. The spike
// wave multiplies a deterministic subset of tenants' volume (the fault
// injector's tenant-skew fault): over-budget tenants degrade to the fallback
// rung instead of queueing, so availability stays 100% while the budget
// governor shifts cache toward the hot tenants.
//
// Everything reported is deterministic in the seed: traffic assignment is a
// pure function of the wave RNG, admission outcomes are pure functions of
// each tenant's own request order, and budget grants are integer arithmetic
// in sorted tenant order — routing runs parallel across tenants, and the
// tallies are order-independent sums.
type FleetServeResult struct {
	Tenants     int
	RealTenants []string
	Budget      int
	Shards      int
	// SkewedTenants is how many tenants the spike wave multiplied.
	SkewedTenants int
	// Availability is served choices / route calls over the whole run — the
	// shed path still serves, so this is 1.0 by design.
	Availability float64
	Waves        []FleetWave
}

// FleetWave tallies one traffic wave. Counter fields are deltas of the
// fleet.* instruments over the wave; Entries/Granted snapshot the budget
// after the post-wave Rebalance.
type FleetWave struct {
	Name    string
	Queries int64
	// Admitted and Shed split the admission outcomes; Recurring counts the
	// priority-lane (cache-keyed) queries among them.
	Admitted  int64
	Shed      int64
	Recurring int64
	// SynHitRate is the synthetic tenants' cache hit rate over the wave.
	SynHitRate float64
	// RealLearned/RealNative tally the real deployments' serving origins.
	RealLearned int64
	RealNative  int64
	Errors      int64
	// Entries and Granted are the post-rebalance budget snapshot; BudgetOK
	// asserts Entries <= Budget and Granted <= Budget.
	Entries  int
	Granted  int
	BudgetOK bool
}

// fleetWaveSpec shapes one wave: mean queries per tenant, and whether the
// tenant-skew spike is active.
type fleetWaveSpec struct {
	name   string
	volume int
	spike  bool
}

// fleetSkewRate and fleetSkewFactor configure the spike: ~2% of tenants at
// 4x volume, decided per-tenant by the seeded injector so the hot set is
// identical across same-seed runs.
const (
	fleetSkewRate   = 0.02
	fleetSkewFactor = 4
)

// FleetServe runs the fleet-serving experiment. Two real deployments are
// trained (on the first two evaluation projects) and registered alongside
// FleetTenants synthetic tenants; four waves of zipfian traffic — warmup,
// steady, spike, recover — are routed in parallel across tenants with each
// tenant's stream kept in order.
func (e *Env) FleetServe(ctx context.Context) (*FleetServeResult, error) {
	n := e.Cfg.FleetTenants
	if n <= 0 {
		n = 10_000
	}
	reg := e.Sim.NewFleet(loam.FleetConfig{
		Shards:       16,
		CacheBudget:  2*n + 256,
		InitialGrant: 4,
		Admission: loam.FleetAdmissionConfig{
			Burst:              6,
			RefillPerServe:     0.5,
			RefillPerTick:      6,
			StandardCost:       1,
			RecurringCost:      0.25,
			RecurringTemplates: 8,
		},
	})
	res := &FleetServeResult{
		Tenants: n,
		Budget:  reg.Budget().Budget,
		Shards:  reg.Registry().Config().Shards,
	}

	// Real tenants first, so they draw their initial grants before the
	// synthetic swarm drains the pool.
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = e.Cfg.TrainDays
	dcfg.TestDays = e.Cfg.TestDays
	dcfg.MaxTrain = e.Cfg.MaxTrain
	dcfg.Predictor = e.Cfg.predictorConfig(predictor.KindTCN)
	deps := map[string]*loam.Deployment{}
	for _, ps := range e.projects[:2] {
		name := ps.Config.Name
		sw := walltime.Start()
		dep, err := ps.Deploy(dcfg, loam.WithMetrics(e.Sim.Telemetry()))
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %w", name, err)
		}
		if err := reg.Register(name, dep); err != nil {
			return nil, fmt.Errorf("fleet %s: %w", name, err)
		}
		deps[name] = dep
		res.RealTenants = append(res.RealTenants, name)
		e.Cfg.logf("fleet: trained + registered %s (%.1fs)", name, sw.Seconds())
	}

	sw := walltime.Start()
	synNames := make([]string, n)
	for i := 0; i < n; i++ {
		synNames[i] = fmt.Sprintf("synth%05d", i)
		syn := fleet.NewSyntheticTenant(synNames[i], e.Sim.Telemetry())
		if err := reg.RegisterBackend(synNames[i], syn); err != nil {
			return nil, fmt.Errorf("fleet %s: %w", synNames[i], err)
		}
	}
	e.Cfg.logf("fleet: registered %d synthetic tenants (%.1fs)", n, sw.Seconds())

	// The tenant-skew fault decides the spike's hot set: a pure function of
	// (seed, "tenantskew", tenant name).
	inj := faultinject.New(e.Cfg.Seed, faultinject.Config{
		TenantSkewRate:   fleetSkewRate,
		TenantSkewFactor: fleetSkewFactor,
	})
	for _, name := range synNames {
		if inj.TenantSkew(name) {
			res.SkewedTenants++
		}
	}

	waves := []fleetWaveSpec{
		{"warmup", 2, false},
		{"steady", 3, false},
		{"spike", 3, true},
		{"recover", 3, false},
	}
	var totalRoutes, totalServed int64
	for w, spec := range waves {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sw := walltime.Start()
		traffic := e.fleetWaveTraffic(w, spec, synNames, res.RealTenants, inj)
		before := fleetCounts(e.Sim.Telemetry())
		tally, err := routeFleetWave(ctx, reg, traffic)
		if err != nil {
			return nil, err
		}
		reg.Tick()
		reg.Rebalance()
		st := reg.Budget()

		after := fleetCounts(e.Sim.Telemetry())
		wave := FleetWave{
			Name:        spec.name,
			Queries:     after[0] - before[0],
			Admitted:    after[1] - before[1],
			Shed:        after[2] - before[2],
			Recurring:   after[3] - before[3],
			RealLearned: tally.realLearned,
			RealNative:  tally.realNative,
			Errors:      tally.errors,
			Entries:     st.Entries,
			Granted:     st.Granted,
			BudgetOK:    st.Entries <= st.Budget && st.Granted <= st.Budget,
		}
		hits, misses := after[4]-before[4], after[5]-before[5]
		if hits+misses > 0 {
			wave.SynHitRate = float64(hits) / float64(hits+misses)
		}
		totalRoutes += wave.Queries
		totalServed += tally.served
		res.Waves = append(res.Waves, wave)
		e.Cfg.logf("fleet: wave %s routed %d queries (%d shed, %d cache entries) in %.1fs",
			spec.name, wave.Queries, wave.Shed, wave.Entries, sw.Seconds())
	}
	if totalRoutes > 0 {
		res.Availability = float64(totalServed) / float64(totalRoutes)
	}
	return res, nil
}

// fleetWaveTraffic builds one wave's per-tenant query streams: volume×n
// zipfian draws over the synthetic tenants (template mix drawn from the same
// wave RNG), a day of generated queries for each real deployment, and — on a
// spike wave — the skewed tenants' streams replicated SkewFactor times.
// Generation is sequential and deterministic; only routing runs in parallel.
func (e *Env) fleetWaveTraffic(w int, spec fleetWaveSpec, synNames, realNames []string, inj *faultinject.Injector) map[string][]*query.Query {
	rng := simrand.New(e.Cfg.Seed).Derive("fleetserve").DeriveN("wave", w)
	zipf := simrand.NewZipf(rng.Derive("zipf"), 1.1, len(synNames))
	traffic := make(map[string][]*query.Query, len(synNames)+len(realNames))
	draws := spec.volume * len(synNames)
	for k := 0; k < draws; k++ {
		name := synNames[zipf.Draw()]
		traffic[name] = append(traffic[name], &query.Query{
			ID:         fmt.Sprintf("%s-w%d-%d", name, w, len(traffic[name])),
			TemplateID: fmt.Sprintf("t%02d", rng.Intn(16)),
			Day:        w,
		})
	}
	// Real tenants serve one generated day per wave, past the training
	// horizon so the queries are fresh. Day generation derives a per-day RNG,
	// so the stream does not depend on which experiments ran before.
	day := e.Cfg.TrainDays + e.Cfg.TestDays + w
	for _, name := range realNames {
		traffic[name] = append(traffic[name], e.Project(name).Gen.Day(day)...)
	}
	if spec.spike {
		for _, name := range append(append([]string{}, synNames...), realNames...) {
			qs := traffic[name]
			if len(qs) == 0 || !inj.TenantSkew(name) {
				continue
			}
			spiked := make([]*query.Query, 0, fleetSkewFactor*len(qs))
			for r := 0; r < int(inj.SkewFactor()); r++ {
				spiked = append(spiked, qs...)
			}
			traffic[name] = spiked
		}
	}
	return traffic
}

// fleetTally accumulates order-independent routing outcomes for one wave.
type fleetTally struct {
	served      int64
	errors      int64
	realLearned int64
	realNative  int64
}

// routeFleetWave routes one wave: tenants fan out across a worker pool, each
// tenant's stream stays in order on one worker — the registry's determinism
// contract — and per-tenant tallies are summed (order-independent ints).
func routeFleetWave(ctx context.Context, reg *loam.FleetRegistry, traffic map[string][]*query.Query) (fleetTally, error) {
	names := make([]string, 0, len(traffic))
	for name := range traffic {
		names = append(names, name)
	}
	sort.Strings(names)

	const workers = 8
	jobs := make(chan string)
	out := make(chan fleetTally)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				var t fleetTally
				for _, q := range traffic[name] {
					res, err := reg.Registry().Route(ctx, name, q)
					if err != nil {
						t.errors++
						continue
					}
					switch c := res.(type) {
					case *fleet.SyntheticChoice:
						t.served++
					case *loam.Choice:
						t.served++
						if c.Origin == loam.OriginLearned {
							t.realLearned++
						} else {
							t.realNative++
						}
					default:
						t.errors++
					}
				}
				out <- t
			}
		}()
	}
	go func() {
		for _, name := range names {
			jobs <- name
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	var total fleetTally
	for t := range out {
		total.served += t.served
		total.errors += t.errors
		total.realLearned += t.realLearned
		total.realNative += t.realNative
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}

// fleetCounts reads the wave-delta instruments: route total, admitted, shed,
// recurring lane, synthetic cache hits and misses.
func fleetCounts(reg *telemetry.Registry) [6]int64 {
	return [6]int64{
		reg.Counter("fleet.route.total").Value(),
		reg.Counter("fleet.admission.admitted").Value(),
		reg.Counter("fleet.admission.shed").Value(),
		reg.Counter("fleet.admission.lane.recurring").Value(),
		reg.Counter("fleet.synthetic.cache.hits").Value(),
		reg.Counter("fleet.synthetic.cache.misses").Value(),
	}
}

// Render prints the wave table.
func (r *FleetServeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fleet serving at scale — %d tenants (%d real: %v), %d shards, cache budget %d, %d skewed on spike, availability %.1f%%\n",
		r.Tenants+len(r.RealTenants), len(r.RealTenants), r.RealTenants,
		r.Shards, r.Budget, r.SkewedTenants, r.Availability*100)
	fmt.Fprintf(w, "%-9s %9s %9s %8s %9s %8s %7s %7s %7s %8s %6s\n",
		"wave", "queries", "admitted", "shed", "recurring", "synhit%", "realL", "realN", "entries", "granted", "budget")
	for _, wv := range r.Waves {
		ok := "ok"
		if !wv.BudgetOK {
			ok = "OVER"
		}
		fmt.Fprintf(w, "%-9s %9d %9d %8d %9d %7.1f%% %7d %7d %7d %8d %6s\n",
			wv.Name, wv.Queries, wv.Admitted, wv.Shed, wv.Recurring,
			wv.SynHitRate*100, wv.RealLearned, wv.RealNative,
			wv.Entries, wv.Granted, ok)
	}
}
