package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyEnv is shared across the experiment smoke tests (building it is the
// expensive part).
var tinyEnvCache *Env

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	if tinyEnvCache == nil {
		tinyEnvCache = NewEnv(Tiny())
	}
	return tinyEnvCache
}

func TestFig1Shape(t *testing.T) {
	env := tinyEnv(t)
	r := env.Fig1()
	if len(r.RSDs) == 0 {
		t.Fatal("no RSDs")
	}
	for i, rsd := range r.RSDs {
		if rsd < 0 || rsd > 2 {
			t.Fatalf("RSD %g out of range", rsd)
		}
		if i > 0 && rsd < r.RSDs[i-1] {
			t.Fatal("RSDs not sorted")
		}
	}
	if r.Max() < 0.05 {
		t.Fatalf("max RSD %g implausibly low — environment variance missing", r.Max())
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestTable1Shape(t *testing.T) {
	env := tinyEnv(t)
	r := env.Table1()
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Tables <= 0 || row.Columns <= 0 || row.TrainCount <= 0 || row.AvgCost <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
	}
	// Project 2 has the largest average cost by construction.
	if r.Rows[1].AvgCost < r.Rows[2].AvgCost {
		t.Fatal("project2 should dwarf project3 in average cost")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	env := tinyEnv(t)
	r := env.Fig5()
	if len(r.Cost) == 0 {
		t.Fatal("no samples")
	}
	// The load→cost response is the phenomenon: cost decreases with idle.
	if r.CorrIdle >= 0 {
		t.Fatalf("corr(cost, idle) = %g, want negative", r.CorrIdle)
	}
	if r.CorrLoad5 <= 0 {
		t.Fatalf("corr(cost, load5) = %g, want positive", r.CorrLoad5)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("render missing title")
	}
}

func TestFig15Shape(t *testing.T) {
	env := tinyEnv(t)
	r := env.Fig15()
	if len(r.Costs) == 0 {
		t.Fatal("no costs")
	}
	if r.Fit.Sigma <= 0 {
		t.Fatal("no fit")
	}
	// The log-normal model should not be rejected on average (paper: ~0.6).
	if r.AvgPValue < 0.05 {
		t.Fatalf("avg KS p-value %g — cost distribution not log-normal", r.AvgPValue)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Q-Q") {
		t.Fatal("render missing Q-Q section")
	}
}

func TestThm1Holds(t *testing.T) {
	env := tinyEnv(t)
	r := env.Thm1()
	if r.Queries == 0 {
		t.Fatal("no queries verified")
	}
	if r.Violations != 0 {
		t.Fatalf("%d Theorem-1 violations", r.Violations)
	}
	if r.BestAch > r.Native+0.02 {
		t.Fatalf("best-achievable deviance %g above native %g", r.BestAch, r.Native)
	}
	if r.MCAgreement > 0.1 {
		t.Fatalf("Eq.(2) vs Monte-Carlo disagreement %g", r.MCAgreement)
	}
}

func TestFig12RankerBeatsRandomOnNDCG1(t *testing.T) {
	env := tinyEnv(t)
	r := env.Fig12()
	if len(r.Ks) == 0 {
		t.Fatal("no ks")
	}
	// At tiny scale only require the headline: NDCG@1 above random.
	if r.NDCG[0] <= r.NDCGRandom[0]-0.05 {
		t.Fatalf("Ranker NDCG@1 %g below random %g", r.NDCG[0], r.NDCGRandom[0])
	}
	for ki := range r.Ks {
		for _, v := range []float64{r.Recall[ki], r.NDCG[ki], r.RecallRandom[ki], r.NDCGRandom[ki]} {
			if v < 0 || v > 1.0001 {
				t.Fatalf("metric out of bounds: %g", v)
			}
		}
	}
}

func TestFig16Shape(t *testing.T) {
	env := tinyEnv(t)
	r := env.Fig16()
	if len(r.TrainSizes) == 0 {
		t.Fatal("no sizes")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 16") {
		t.Fatal("render missing title")
	}
}

func TestSec73Estimate(t *testing.T) {
	env := tinyEnv(t)
	f6, err := env.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	r := env.Sec73(f6)
	if r.FleetSize == 0 {
		t.Fatal("no fleet")
	}
	if r.PassRate < 0 || r.PassRate > 1 {
		t.Fatalf("pass rate %g", r.PassRate)
	}
	if r.Estimate != r.PassRate*r.WinRate {
		t.Fatal("estimate formula broken")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Section 7.3") {
		t.Fatal("render missing title")
	}
}

func TestFig8UsesCachedFullRun(t *testing.T) {
	env := tinyEnv(t)
	f6, err := env.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.Fig8(f6)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range r.Projects {
		if len(fp.Sizes) != len(fp.Costs) {
			t.Fatal("sweep length mismatch")
		}
		for i := 1; i < len(fp.Sizes); i++ {
			if fp.Sizes[i] < fp.Sizes[i-1] {
				t.Fatal("sizes not increasing")
			}
		}
		// The final point is the Fig.-6 LOAM result.
		var pr *ProjectResult
		for i := range f6.Projects {
			if f6.Projects[i].Project == fp.Project {
				pr = &f6.Projects[i]
			}
		}
		if m := pr.Method("LOAM"); m != nil && fp.Costs[len(fp.Costs)-1] != m.AvgCost {
			t.Fatal("full-size sweep point should reuse the Fig6 LOAM run")
		}
	}
}

func TestFig10Structure(t *testing.T) {
	env := tinyEnv(t)
	f6, err := env.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.Fig10(f6)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range r.Projects {
		for _, s := range r.Strategies() {
			if fp.Cost[s] <= 0 {
				t.Fatalf("%s %s cost %g", fp.Project, s, fp.Cost[s])
			}
			if fp.RelDev[s] < -1e-9 {
				t.Fatalf("%s %s negative deviance", fp.Project, s)
			}
		}
		if fp.BestAchievableRelDev < 0 {
			t.Fatal("negative best-achievable deviance")
		}
	}
}

func TestVariantLabels(t *testing.T) {
	cases := map[string]Variant{
		"LOAM":    LOAMVariant(),
		"LOAM-NA": {Kind: 1, Adapt: false, UseEnv: true},
		"LOAM-NL": {Kind: 1, Adapt: true, UseEnv: false},
		"GCN":     {Kind: 3, Adapt: true, UseEnv: true},
	}
	for want, v := range cases {
		if got := v.Label(); got != want {
			t.Fatalf("label %q, want %q", got, want)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Default()
	specs := cfg.EvalProjectSpecs()
	if len(specs) != 5 {
		t.Fatalf("specs %d", len(specs))
	}
	big := cfg
	big.WorkloadScale = 2
	bigSpecs := big.EvalProjectSpecs()
	for i := range specs {
		if bigSpecs[i].Workload.NumTemplates <= specs[i].Workload.NumTemplates {
			t.Fatal("scale did not grow templates")
		}
	}
}

func TestExt1WideCeilingAtLeastNarrow(t *testing.T) {
	env := tinyEnv(t)
	r := env.Ext1()
	if len(r.Projects) != 5 {
		t.Fatalf("projects %d", len(r.Projects))
	}
	for _, p := range r.Projects {
		if p.WideCeiling < p.NarrowCeiling-1e-9 {
			t.Fatalf("%s: wide ceiling %.3f below narrow %.3f", p.Project, p.WideCeiling, p.NarrowCeiling)
		}
		if p.WideCands < p.NarrowCands {
			t.Fatalf("%s: wide explores fewer candidates", p.Project)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Exploration ceiling") {
		t.Fatal("render missing title")
	}
}

func TestExt2LabelAblation(t *testing.T) {
	env := tinyEnv(t)
	r, err := env.Ext2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Projects) != 2 {
		t.Fatalf("projects %d", len(r.Projects))
	}
	for _, p := range r.Projects {
		if p.CostLabel <= 0 || p.LatencyLabel <= 0 || p.Native <= 0 {
			t.Fatalf("degenerate ablation row %+v", p)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "CPU cost vs E2E latency") {
		t.Fatal("render missing title")
	}
}

func TestExt3EncodingAblation(t *testing.T) {
	env := tinyEnv(t)
	r, err := env.Ext3()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Projects {
		if p.MultiSegment <= 0 || p.SingleSegment <= 0 {
			t.Fatalf("degenerate ablation row %+v", p)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "multi-segment") {
		t.Fatal("render missing title")
	}
}
