package experiments

import (
	"fmt"

	"loam"
	"loam/internal/exec"
	"loam/internal/selector"
	"loam/internal/simrand"
	"loam/internal/stats"
	"loam/internal/theory"
	"loam/internal/walltime"
	"loam/internal/warehouse"
	"loam/internal/workload"
)

// FleetProject is one project of the selector-experiment fleet, with its
// measured improvement space and Ranker training samples.
type FleetProject struct {
	PS *loam.ProjectSim
	// Improvement is the mean relative D(M_d) over the sampled workload —
	// the ground-truth relevance for ranking.
	Improvement float64
	// Samples pair each sampled query's observable default-plan features
	// with its measured improvement space.
	Samples []selector.RankerSample
	// Stats are the App.-D.1 filter metrics.
	Stats selector.WorkloadStats
}

// Fleet builds (and caches) a heterogeneous fleet of projects for the
// project-selection experiments: varied catalog sizes, statistics quality,
// query volumes and table churn, mirroring the paper's 28–30 sampled
// production projects.
func (e *Env) Fleet() []*FleetProject {
	if e.fleet != nil {
		return e.fleet
	}
	sw := walltime.Start()
	n := e.Cfg.FleetProjects
	if n <= 0 {
		n = 28
	}
	rng := simrand.New(e.Cfg.Seed + 999)
	days := 8
	sampleQueries := 10

	for i := 0; i < n; i++ {
		pr := rng.DeriveN("fleet", i)
		arch := warehouse.DefaultArchetype()
		arch.Name = fmt.Sprintf("fleet%02d", i)
		arch.NumTables = 15 + pr.Intn(50)
		arch.ColumnsPerTable = 5 + pr.Intn(14)
		arch.RowsLog10Mean = pr.Uniform(3.8, 5.8)
		arch.TempTableFrac = pr.Uniform(0, 0.6)

		wl := workload.DefaultConfig()
		wl.NumTemplates = 4 + pr.Intn(8)
		wl.QueriesPerDayMean = pr.Uniform(1.5, 14) * e.Cfg.WorkloadScale
		wl.PushDifficultProb = pr.Uniform(0.1, 0.5)
		wl.MinTables = 2
		wl.MaxTables = 3 + pr.Intn(4)

		pol := e.randomStatsPolicy(pr)

		ps := e.Sim.AddProject(loam.ProjectConfig{
			Name:        arch.Name,
			Archetype:   arch,
			Workload:    wl,
			StatsPolicy: pol,
		})
		ps.RunDays(0, days)

		fp := &FleetProject{PS: ps}
		fp.Stats = selector.ComputeStats(ps.Repo.All(), ps.Project, 30)

		// Sample queries and measure their improvement space the way
		// App. E.1 prescribes: execute each candidate repeatedly, fit
		// log-normals, integrate the deviance.
		entries := ps.Repo.All()
		stride := len(entries)/sampleQueries + 1
		sum, count := 0.0, 0
		for j := 0; j < len(entries); j += stride {
			entry := entries[j]
			ex := ps.Explorer(entry.Record.Day)
			cands := ex.Candidates(entry.Query)
			dists := make([]theory.LogNormal, len(cands))
			opt := exec.DefaultOptions()
			if entry.Query.NoiseSigma > 0 {
				opt.NoiseSigma = entry.Query.NoiseSigma
			}
			for ci, c := range cands {
				costs := make([]float64, 3)
				for r := range costs {
					costs[r] = ps.Executor.Execute(c, entry.Record.Day, opt).CPUCost
				}
				if d, err := theory.FitLogNormal(costs); err == nil {
					dists[ci] = d
				}
			}
			oracle := theory.ExpectedMin(dists)
			if oracle <= 0 {
				continue
			}
			imp := theory.ExpectedDeviance(dists, 0) / oracle
			rows := func(tableID string) float64 {
				if t := ps.Project.Table(tableID); t != nil {
					return float64(t.RowsAt(entry.Record.Day))
				}
				return 0
			}
			fp.Samples = append(fp.Samples, selector.RankerSample{
				Features:    selector.Features(entry.Record.Plan, entry.Record.CPUCost, rows),
				Improvement: imp,
			})
			sum += imp
			count++
		}
		if count > 0 {
			fp.Improvement = sum / float64(count)
		}
		e.fleet = append(e.fleet, fp)
	}
	e.Cfg.logf("built fleet: %d projects (%.1fs)", len(e.fleet), sw.Seconds())
	return e.fleet
}

// randomStatsPolicy spreads statistics quality across the fleet.
func (e *Env) randomStatsPolicy(pr *simrand.RNG) (pol stats.Policy) {
	pol.ColumnStatsProb = pr.Uniform(0.1, 0.95)
	pol.FreshProb = pr.Uniform(0.2, 0.95)
	pol.MaxStalenessDays = 5 + pr.Intn(25)
	pol.NDVNoise = pr.Uniform(0.1, 0.9)
	return pol
}
