package experiments

import (
	"fmt"
	"io"

	"loam/internal/ranking"
	"loam/internal/selector"
	"loam/internal/simrand"
)

// Fig12Result reproduces Fig. 12: Ranker's Recall@(k,k) and NDCG@k against
// the expected performance of a uniformly random ranking, cross-validated
// over splits of the fleet (paper: 13 training / 15 test projects).
type Fig12Result struct {
	Ks           []int
	Recall       []float64
	RecallRandom []float64
	NDCG         []float64
	NDCGRandom   []float64
	Splits       int
	TestProjects int
}

// rankerSplit trains a Ranker on trainIdx fleet projects and ranks testIdx,
// returning per-k recall and NDCG.
func rankerSplit(fleet []*FleetProject, trainIdx, testIdx []int, ks []int) (recall, ndcg []float64) {
	var samples []selector.RankerSample
	for _, i := range trainIdx {
		samples = append(samples, fleet[i].Samples...)
	}
	r := selector.TrainRanker(samples)

	rel := make([]float64, len(testIdx))
	scores := make([]float64, len(testIdx))
	for j, i := range testIdx {
		rel[j] = fleet[i].Improvement
		feats := make([][]float64, len(fleet[i].Samples))
		for si, s := range fleet[i].Samples {
			feats[si] = s.Features
		}
		scores[j] = r.ScoreWorkload(feats)
	}
	// Predicted order: descending score.
	order := ranking.IdealOrder(scores)

	recall = make([]float64, len(ks))
	ndcg = make([]float64, len(ks))
	for ki, k := range ks {
		recall[ki] = ranking.RecallAtKN(order, rel, k, k)
		ndcg[ki] = ranking.NDCGAtK(order, rel, k)
	}
	return recall, ndcg
}

// Fig12 cross-validates the Ranker over the fleet.
func (e *Env) Fig12() *Fig12Result {
	fleet := e.Fleet()
	ks := []int{1, 2, 3, 4, 5}
	nTest := 15
	if nTest > len(fleet)-2 {
		nTest = len(fleet) / 2
	}
	nTrain := len(fleet) - nTest

	res := &Fig12Result{
		Ks:           ks,
		Recall:       make([]float64, len(ks)),
		NDCG:         make([]float64, len(ks)),
		RecallRandom: make([]float64, len(ks)),
		NDCGRandom:   make([]float64, len(ks)),
		TestProjects: nTest,
	}
	rng := simrand.New(e.Cfg.Seed + 1234)
	const splits = 8
	res.Splits = splits
	for s := 0; s < splits; s++ {
		perm := rng.Perm(len(fleet))
		trainIdx := perm[:nTrain]
		testIdx := perm[nTrain:]
		recall, ndcg := rankerSplit(fleet, trainIdx, testIdx, ks)
		rel := make([]float64, len(testIdx))
		for j, i := range testIdx {
			rel[j] = fleet[i].Improvement
		}
		for ki := range ks {
			res.Recall[ki] += recall[ki] / splits
			res.NDCG[ki] += ndcg[ki] / splits
			res.RecallRandom[ki] += ranking.ExpectedRandomRecall(ks[ki], len(testIdx)) / splits
			res.NDCGRandom[ki] += ranking.ExpectedRandomNDCG(rel, ks[ki]) / splits
		}
	}
	return res
}

// Render prints the two Fig.-12 panels.
func (r *Fig12Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 12 — Performance of Ranker (%d splits, %d test projects)\n", r.Splits, r.TestProjects)
	fmt.Fprintln(w, "(a) Recall@(k,k)        (b) NDCG@k")
	fmt.Fprintf(w, "%4s %8s %8s   %8s %8s\n", "k", "Ranker", "Random", "Ranker", "Random")
	for ki, k := range r.Ks {
		fmt.Fprintf(w, "%4d %8.3f %8.3f   %8.3f %8.3f\n",
			k, r.Recall[ki], r.RecallRandom[ki], r.NDCG[ki], r.NDCGRandom[ki])
	}
}

// Fig16Result reproduces App. Fig. 16: Ranker quality as a function of the
// number of training projects (2 → 12), fixed test size.
type Fig16Result struct {
	TrainSizes []int
	// RecallAtK[k index][size index], k ∈ {1,3,5}.
	Ks     []int
	Recall [][]float64
	NDCG   [][]float64
}

// Fig16 sweeps the training-project count.
func (e *Env) Fig16() *Fig16Result {
	fleet := e.Fleet()
	ks := []int{1, 3, 5}
	nTest := 15
	if nTest > len(fleet)-2 {
		nTest = len(fleet) / 2
	}
	maxTrain := len(fleet) - nTest
	var sizes []int
	for _, s := range []int{2, 4, 6, 8, 10, 12} {
		if s <= maxTrain {
			sizes = append(sizes, s)
		}
	}
	res := &Fig16Result{TrainSizes: sizes, Ks: ks}
	res.Recall = make([][]float64, len(ks))
	res.NDCG = make([][]float64, len(ks))
	for ki := range ks {
		res.Recall[ki] = make([]float64, len(sizes))
		res.NDCG[ki] = make([]float64, len(sizes))
	}
	rng := simrand.New(e.Cfg.Seed + 5678)
	const splits = 6
	for s := 0; s < splits; s++ {
		perm := rng.Perm(len(fleet))
		testIdx := perm[len(fleet)-nTest:]
		for si, size := range sizes {
			trainIdx := perm[:size]
			recall, ndcg := rankerSplit(fleet, trainIdx, testIdx, ks)
			for ki := range ks {
				res.Recall[ki][si] += recall[ki] / splits
				res.NDCG[ki][si] += ndcg[ki] / splits
			}
		}
	}
	return res
}

// Render prints the sweep.
func (r *Fig16Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 16 — Ranker performance w.r.t. number of training projects")
	fmt.Fprintf(w, "%-12s", "train size")
	for _, s := range r.TrainSizes {
		fmt.Fprintf(w, " %8d", s)
	}
	fmt.Fprintln(w)
	for ki, k := range r.Ks {
		fmt.Fprintf(w, "Recall@%-5d", k)
		for si := range r.TrainSizes {
			fmt.Fprintf(w, " %8.3f", r.Recall[ki][si])
		}
		fmt.Fprintln(w)
	}
	for ki, k := range r.Ks {
		fmt.Fprintf(w, "NDCG@%-7d", k)
		for si := range r.TrainSizes {
			fmt.Fprintf(w, " %8.3f", r.NDCG[ki][si])
		}
		fmt.Fprintln(w)
	}
}
