package experiments

import (
	"fmt"
	"io"

	"loam"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/telemetry"
	"loam/internal/walltime"
)

// LifecycleResult measures the model lifecycle loop end to end on live
// serving traffic: the guard's regression sentinel detects drift, the
// lifecycle retrains from harvested feedback, shadow-scores the candidate,
// hot-swaps it in, and rolls it back when the sentinel trips again during
// probation. The sentinel's divergence band is set near zero, so every
// serving model is deterministically indicted after one sentinel window —
// a forced-drift harness in the same spirit as the guard experiment's
// forced outage. Same-seed runs produce identical event trajectories.
type LifecycleResult struct {
	Project string
	Queries int
	// Events is the promote/rollback trajectory in serve order.
	Events []LifecycleEvent
	// FinalVersion is the serving model's lineage version after the run.
	FinalVersion int
	// Counter deltas over the run (lifecycle.* and guard.quarantine.*).
	DriftSignals int64
	Retrains     int64
	Rejected     int64
	Promotes     int64
	Rollbacks    int64
	Trips        int64
	Released     int64
	// Availability is served choices / optimize calls; the lifecycle must
	// never cost a query (quarantined stretches serve the native fallback).
	Availability float64
}

// LifecycleEvent is one model transition observed during serving.
type LifecycleEvent struct {
	// Query is the 1-based serve index whose execution triggered the
	// transition.
	Query int
	// Kind is "promote" or "rollback".
	Kind string
	// Version is the serving model's version after the transition.
	Version int
}

// lifecycleQueries is the serve budget: enough for the feedback store to
// fill past the retrain floor, the first quarantine-triggered promote, the
// probation rollback, and a second promote cycle.
const lifecycleQueries = 60

// Lifecycle runs the continual-learning experiment on the first evaluation
// project: deploy with a lifecycle manager and a hair-trigger regression
// sentinel, serve a fixed query stream executing every choice, and record
// the drift → retrain → shadow-score → promote → rollback trajectory.
func (e *Env) Lifecycle() (*LifecycleResult, error) {
	project := e.projects[0].Config.Name
	ps := e.Project(project)

	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = e.Cfg.TrainDays
	dcfg.TestDays = e.Cfg.TestDays
	dcfg.MaxTrain = e.Cfg.MaxTrain
	dcfg.Predictor = e.Cfg.predictorConfig(predictor.KindTCN)

	// A near-zero divergence band makes every learned choice adverse to the
	// sentinel: one 4-sample window quarantines the serving model, so drift
	// arrives on a fixed cadence. The lifecycle is tuned to retrain as soon
	// as 8 observations are harvested and to accept generously — shadow
	// scores on a tiny window separate real models only weakly, and the
	// experiment pins the loop's mechanics, not model quality.
	gcfg := loam.DefaultGuardConfig()
	gcfg.DivergenceBand = 0.01
	gcfg.DivergenceWindow = 4
	gcfg.QuarantineWindows = 1

	lcfg := loam.DefaultLifecycleConfig()
	lcfg.MinFeedback = 8
	lcfg.RetrainWindow = 64
	lcfg.ShadowWindow = 32
	lcfg.AcceptTolerance = 10
	lcfg.Probation = 16
	lcfg.DomainPlans = 8
	// Park the prediction-vs-actual detector out of reach: the sentinel is
	// the sole drift trigger, keeping the trajectory easy to read.
	lcfg.Drift = loam.DriftConfig{Window: 1 << 20, Threshold: 1e9, Windows: 1 << 20}

	reg := e.Sim.Telemetry()
	before := lifecycleCounts(reg)

	sw := walltime.Start()
	dep, err := ps.Deploy(dcfg,
		loam.WithMetrics(reg),
		loam.WithGuardConfig(gcfg),
		loam.WithLifecycle(lcfg),
	)
	if err != nil {
		return nil, fmt.Errorf("lifecycle %s: %w", project, err)
	}
	e.Cfg.logf("lifecycle %s: trained in %.1fs", project, sw.Seconds())

	var qs []*query.Query
	for day := e.Cfg.TrainDays; len(qs) < lifecycleQueries; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	qs = qs[:lifecycleQueries]

	lc := dep.Lifecycle()
	res := &LifecycleResult{Project: project, Queries: len(qs)}
	served := 0
	version := lc.Version()
	for i, q := range qs {
		choice, err := dep.Optimize(q)
		if err != nil {
			continue
		}
		served++
		dep.ExecuteChoice(choice)
		if v := lc.Version(); v != version {
			kind := "promote"
			if v < version {
				kind = "rollback"
			}
			res.Events = append(res.Events, LifecycleEvent{Query: i + 1, Kind: kind, Version: v})
			e.Cfg.logf("lifecycle %s: serve %d %s -> v%d", project, i+1, kind, v)
			version = v
		}
	}

	after := lifecycleCounts(reg)
	res.FinalVersion = version
	res.DriftSignals = after[0] - before[0]
	res.Retrains = after[1] - before[1]
	res.Rejected = after[2] - before[2]
	res.Promotes = after[3] - before[3]
	res.Rollbacks = after[4] - before[4]
	res.Trips = after[5] - before[5]
	res.Released = after[6] - before[6]
	res.Availability = float64(served) / float64(len(qs))
	return res, nil
}

// lifecycleCounts reads the lifecycle trajectory counters from a registry:
// drift signals, retrain runs, rejections, promotes, rollbacks, quarantine
// trips and releases.
func lifecycleCounts(reg *telemetry.Registry) [7]int64 {
	return [7]int64{
		reg.Counter("lifecycle.drift.signals").Value(),
		reg.Counter("lifecycle.retrain.runs").Value(),
		reg.Counter("lifecycle.retrain.rejected").Value(),
		reg.Counter("lifecycle.promote").Value(),
		reg.Counter("lifecycle.rollback").Value(),
		reg.Counter("guard.quarantine.trips").Value(),
		reg.Counter("guard.quarantine.released").Value(),
	}
}

// Render prints the serve-order event trajectory and the loop counters.
func (r *LifecycleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Model lifecycle under forced drift — project %q, availability %.0f%%\n",
		r.Project, r.Availability*100)
	fmt.Fprintf(w, "%d queries served; drift signals %d, retrains %d (%d rejected), promotes %d, rollbacks %d\n",
		r.Queries, r.DriftSignals, r.Retrains, r.Rejected, r.Promotes, r.Rollbacks)
	fmt.Fprintf(w, "quarantines: %d tripped, %d released by swap/rollback\n", r.Trips, r.Released)
	for _, ev := range r.Events {
		fmt.Fprintf(w, "  serve %3d  %-8s -> v%d\n", ev.Query, ev.Kind, ev.Version)
	}
	fmt.Fprintf(w, "final model version: v%d\n", r.FinalVersion)
}
