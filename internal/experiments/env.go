package experiments

import (
	"fmt"

	"loam"
	"loam/internal/exec"
	"loam/internal/history"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/telemetry"
	"loam/internal/theory"
	"loam/internal/walltime"
)

// Env is the shared evaluation environment: one simulation hosting the five
// evaluation projects with 30 days of history, plus caches for trained
// deployments and ground-truth candidate measurements, so the experiments
// that share inputs (Figs. 6, 7, 9, 10, 11) do not recompute them.
type Env struct {
	Cfg Config
	Sim *loam.Simulation

	projects    []*loam.ProjectSim
	evals       map[string]*ProjectEval
	deployments map[string]*loam.Deployment
	fleet       []*FleetProject
}

// NewEnv builds the environment: projects generated, 30 days of production
// history executed and logged.
func NewEnv(cfg Config) *Env {
	e := &Env{
		Cfg:         cfg,
		Sim:         loam.NewSimulation(cfg.Seed, loam.DefaultSimulationConfig()),
		evals:       map[string]*ProjectEval{},
		deployments: map[string]*loam.Deployment{},
	}
	horizon := cfg.TrainDays + cfg.TestDays
	for _, spec := range cfg.EvalProjectSpecs() {
		sw := walltime.Start()
		ps := e.Sim.AddProject(loam.ProjectConfig{
			Name:        spec.Name,
			Archetype:   spec.Archetype,
			Workload:    spec.Workload,
			StatsPolicy: spec.Stats,
		})
		ps.RunDays(0, horizon)
		e.projects = append(e.projects, ps)
		cfg.logf("built %s: %d records, %d tables, %d columns (%.1fs)",
			spec.Name, ps.Repo.Len(), len(ps.Project.Tables), ps.Project.NumColumns(),
			sw.Seconds())
	}
	return e
}

// Metrics returns a deterministic snapshot of the environment's combined
// telemetry: cluster gauges, executor counters, and the training and serving
// metrics of every deployment trained through Env.Deployment (they all share
// the simulation's registry).
func (e *Env) Metrics() telemetry.Snapshot { return e.Sim.Metrics() }

// Telemetry returns the environment's shared registry, e.g. for wall-clock
// timings (Registry.WallTimings), which are reporting-only and never part of
// the deterministic snapshot.
func (e *Env) Telemetry() *telemetry.Registry { return e.Sim.Telemetry() }

// Projects returns the evaluation projects in Table-1 order.
func (e *Env) Projects() []*loam.ProjectSim { return e.projects }

// Project returns one project by name.
func (e *Env) Project(name string) *loam.ProjectSim { return e.Sim.Project(name) }

// EvalQuery is one test query with its candidate set and per-candidate
// ground-truth cost measurements.
type EvalQuery struct {
	Entry history.Entry
	// ClusterCurrent and ClusterExpected are the cluster-wide environment
	// observations at this query's optimization moment: the instantaneous
	// average (what LOAM-CB would read) and the 24-h fitted expectation
	// (what LOAM-CE would use).
	ClusterCurrent  [4]float64
	ClusterExpected [4]float64
	// Cands are the explorer's candidates; index 0 is the default plan.
	Cands []*plan.Plan
	// Costs[i] are the repeated-execution costs of candidate i.
	Costs [][]float64
	// Means[i] is the mean observed cost of candidate i.
	Means []float64
	// Dists[i] is the log-normal fitted to candidate i's costs (App. E.1).
	Dists []theory.LogNormal
}

// OracleCost returns the expected cost of the oracle model over this query's
// candidates.
func (q *EvalQuery) OracleCost() float64 { return theory.ExpectedMin(q.Dists) }

// BestAchievableIdx returns M_b's choice: the candidate minimizing expected
// cost.
func (q *EvalQuery) BestAchievableIdx() int { return theory.BestAchievable(q.Dists) }

// ProjectEval is a project's measured test workload.
type ProjectEval struct {
	Name    string
	Queries []EvalQuery
	// TrainSize is the deduplicated training-set size.
	TrainSize int
	// TestSize is the deduplicated test-set size before the EvalQueries cap.
	TestSize int
	// AvgTrainCost is the mean CPU cost over the training window (Table 1).
	AvgTrainCost float64
}

// Eval measures a project's test queries: for every test query the explorer
// produces the top-5 candidates (default included), and every candidate is
// executed EvalReps times in the flighting environment. Results are cached.
func (e *Env) Eval(name string) *ProjectEval {
	if pe, ok := e.evals[name]; ok {
		return pe
	}
	ps := e.Project(name)
	if ps == nil {
		panic(fmt.Sprintf("experiments: unknown project %q", name))
	}
	train, test := ps.Repo.Split(e.Cfg.TrainDays, e.Cfg.TestDays, e.Cfg.MaxTrain)
	pe := &ProjectEval{
		Name:         name,
		TrainSize:    len(train),
		TestSize:     len(test),
		AvgTrainCost: history.AvgCost(train),
	}
	if e.Cfg.EvalQueries > 0 && len(test) > e.Cfg.EvalQueries {
		test = test[:e.Cfg.EvalQueries]
	}
	sw := walltime.Start()
	cl := ps.Executor.Cluster
	for _, entry := range test {
		ex := ps.Explorer(entry.Record.Day)
		cands := ex.Candidates(entry.Query)
		eq := EvalQuery{
			Entry:           entry,
			ClusterCurrent:  cl.ClusterAverage().Normalized(),
			ClusterExpected: cl.HistoryAverage().Normalized(),
			Cands:           cands,
			Costs:           make([][]float64, len(cands)),
			Means:           make([]float64, len(cands)),
			Dists:           make([]theory.LogNormal, len(cands)),
		}
		opt := psExecOptions(entry)
		for i, c := range cands {
			costs := make([]float64, e.Cfg.EvalReps)
			for r := range costs {
				costs[r] = ps.Executor.Execute(c, entry.Record.Day, opt).CPUCost
			}
			eq.Costs[i] = costs
			mean := 0.0
			for _, v := range costs {
				mean += v
			}
			eq.Means[i] = mean / float64(len(costs))
			d, err := theory.FitLogNormal(costs)
			if err == nil {
				eq.Dists[i] = d
			}
		}
		pe.Queries = append(pe.Queries, eq)
	}
	e.Cfg.logf("evaluated %s: %d test queries × ≤5 candidates × %d reps (%.1fs)",
		name, len(pe.Queries), e.Cfg.EvalReps, sw.Seconds())
	e.evals[name] = pe
	return pe
}

// psExecOptions mirrors the project's execution options for a query.
func psExecOptions(entry history.Entry) exec.Options {
	opt := exec.DefaultOptions()
	if entry.Query.NoiseSigma > 0 {
		opt.NoiseSigma = entry.Query.NoiseSigma
	}
	return opt
}

// Variant identifies one trained model configuration.
type Variant struct {
	Kind     predictor.Kind
	Adapt    bool
	UseEnv   bool
	MaxTrain int // 0 = config default
}

// LOAMVariant is the default LOAM model.
func LOAMVariant() Variant { return Variant{Kind: predictor.KindTCN, Adapt: true, UseEnv: true} }

func (v Variant) key(project string) string {
	return fmt.Sprintf("%s/%v/adapt=%v/env=%v/max=%d", project, v.Kind, v.Adapt, v.UseEnv, v.MaxTrain)
}

// Label names the variant for result tables.
func (v Variant) Label() string {
	switch {
	case v.Kind != predictor.KindTCN:
		return v.Kind.String()
	case !v.Adapt:
		return "LOAM-NA"
	case !v.UseEnv:
		return "LOAM-NL"
	default:
		return "LOAM"
	}
}

// Deployment trains (or returns the cached) model for a project + variant.
func (e *Env) Deployment(project string, v Variant) (*loam.Deployment, error) {
	key := v.key(project)
	if d, ok := e.deployments[key]; ok {
		return d, nil
	}
	ps := e.Project(project)
	dcfg := loam.DefaultDeployConfig()
	dcfg.TrainDays = e.Cfg.TrainDays
	dcfg.TestDays = e.Cfg.TestDays
	dcfg.MaxTrain = e.Cfg.MaxTrain
	if v.MaxTrain > 0 {
		dcfg.MaxTrain = v.MaxTrain
	}
	dcfg.Predictor = e.Cfg.predictorConfig(v.Kind)
	dcfg.Predictor.Adapt = v.Adapt
	dcfg.Predictor.UseEnv = v.UseEnv
	sw := walltime.Start()
	// Route the deployment's telemetry into the simulation's registry so one
	// snapshot (Env.Metrics) covers substrate, training and serving.
	dep, err := ps.Deploy(dcfg, loam.WithMetrics(e.Sim.Telemetry()))
	if err != nil {
		return nil, fmt.Errorf("train %s: %w", key, err)
	}
	e.Cfg.logf("trained %s: train=%d %.1fs %.1fMB", key, dep.TrainSize,
		sw.Seconds(), float64(dep.Predictor().Metrics().ModelBytes)/1e6)
	e.deployments[key] = dep
	return dep, nil
}
