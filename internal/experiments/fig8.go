package experiments

import (
	"fmt"
	"io"

	"loam/internal/floatsafe"
	"loam/internal/predictor"
)

// Fig8Result reproduces Fig. 8: LOAM's end-to-end performance as a function
// of the training-set size, against the native optimizer and the
// best-achievable bound.
type Fig8Result struct {
	Projects []Fig8Project
}

// Fig8Project is one project's sweep.
type Fig8Project struct {
	Project        string
	Native         float64
	BestAchievable float64
	// Sizes are the training-set sizes swept; Costs[i] is LOAM's average
	// cost when trained on Sizes[i] queries.
	Sizes []int
	Costs []float64
}

// Fig8 sweeps the training-set size for each project. Fractions of the full
// training set stand in for the paper's 1k→MAX absolute sizes, scaling with
// the simulated workload.
func (e *Env) Fig8(f6 *Fig6Result) (*Fig8Result, error) {
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 1.0}
	res := &Fig8Result{}
	for _, pr := range f6.Projects {
		pe := e.Eval(pr.Project)
		fp := Fig8Project{
			Project:        pr.Project,
			Native:         pr.Native,
			BestAchievable: pr.BestAchievable,
		}
		cl := e.Sim.Cluster
		for _, f := range fracs {
			size := int(f * float64(pe.TrainSize))
			if size < 10 {
				size = 10
			}
			var (
				m   MethodResult
				err error
			)
			if f == 1.0 {
				// Full size: reuse the Fig.-6 LOAM run.
				if lm := pr.Method("LOAM"); lm != nil {
					m = *lm
				}
			} else {
				dep, derr := e.Deployment(pr.Project, Variant{
					Kind: predictor.KindTCN, Adapt: true, UseEnv: true, MaxTrain: size,
				})
				if derr != nil {
					err = derr
				} else {
					pick := pickWith(dep.Predictor(), predictor.StrategyMeanEnv,
						cl.HistoryAverage().Normalized(), cl.ClusterAverage().Normalized())
					m = evalMethod(pe, "LOAM", pick)
				}
			}
			if err != nil {
				return nil, err
			}
			fp.Sizes = append(fp.Sizes, size)
			fp.Costs = append(fp.Costs, m.AvgCost)
		}
		res.Projects = append(res.Projects, fp)
	}
	return res, nil
}

// Render prints the sweep series.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 8 — LOAM performance w.r.t. training data size")
	for _, fp := range r.Projects {
		fmt.Fprintf(w, "%-10s native=%.0f bestAchievable=%.0f\n", fp.Project, fp.Native, fp.BestAchievable)
		for i, size := range fp.Sizes {
			marker := ""
			if floatsafe.Less(fp.Costs[i], fp.Native) {
				marker = "  <- beats native"
			}
			fmt.Fprintf(w, "  train=%5d  avgCost=%12.0f%s\n", size, fp.Costs[i], marker)
		}
	}
}
