package experiments

import (
	"os"
	"testing"
)

// TestFig6Tiny smoke-runs the end-to-end comparison at tiny scale and checks
// structural invariants (not the paper's shapes, which need default scale).
func TestFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Tiny()
	cfg.Log = os.Stderr
	env := NewEnv(cfg)
	f6, err := env.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	f6.Render(os.Stderr)
	if len(f6.Projects) != 5 {
		t.Fatalf("want 5 projects, got %d", len(f6.Projects))
	}
	for _, pr := range f6.Projects {
		if pr.Native <= 0 {
			t.Errorf("%s: non-positive native cost", pr.Project)
		}
		if pr.BestAchievable > pr.Native*1.001 {
			t.Errorf("%s: best-achievable %.0f above native %.0f", pr.Project, pr.BestAchievable, pr.Native)
		}
		if len(pr.Methods) != 4 {
			t.Errorf("%s: want 4 methods, got %d", pr.Project, len(pr.Methods))
		}
	}
}
