package experiments

import (
	"fmt"
	"os"
	"testing"

	"loam/internal/predictor"
)

// TestCalibration is a tuning harness (skipped in -short): it trains LOAM
// and LOAM-NA on selected projects and reports selection quality in detail.
func TestCalibration(t *testing.T) {
	if os.Getenv("LOAM_CALIB") == "" {
		t.Skip("set LOAM_CALIB=1 to run the calibration harness")
	}
	cfg := Default()
	cfg.Log = os.Stderr
	if v := os.Getenv("LOAM_CALIB_EPOCHS"); v != "" {
		fmt.Sscanf(v, "%d", &cfg.Epochs)
	}
	env := NewEnv(cfg)
	cl := env.Sim.Cluster
	projects := []string{"project2", "project1", "project5"}
	if os.Getenv("LOAM_CALIB_ONE") != "" {
		projects = projects[:1]
	}
	for _, name := range projects {
		pe := env.Eval(name)
		pr, err := env.evalProject(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "== %s native=%.0f best=%.0f oracle=%.0f D(Md)=%.1f%%\n",
			name, pr.Native, pr.BestAchievable, pr.Oracle, pr.ImprovementSpace*100)

		for _, v := range []Variant{LOAMVariant(), {Kind: predictor.KindTCN, Adapt: false, UseEnv: true}} {
			dep, err := env.Deployment(name, v)
			if err != nil {
				t.Fatal(err)
			}
			pick := pickWith(dep.Predictor(), predictor.StrategyMeanEnv,
				cl.HistoryAverage().Normalized(), cl.ClusterAverage().Normalized())
			m := evalMethod(pe, v.Label(), pick)
			// Selection quality: how often the pick is the empirical best /
			// within 5% of best; distribution of chosen indices.
			hist := map[int]int{}
			exact, close := 0, 0
			for qi, idx := range m.ChosenIdx {
				hist[idx]++
				q := &pe.Queries[qi]
				best, bi := q.Means[0], 0
				for ci, mean := range q.Means {
					if mean < best {
						best, bi = mean, ci
					}
				}
				if idx == bi {
					exact++
				}
				if q.Means[idx] <= best*1.05 {
					close++
				}
			}
			fmt.Fprintf(os.Stderr, "  %-8s avg=%.0f gain=%.1f%% exactBest=%d/%d within5%%=%d picks=%v\n",
				m.Name, m.AvgCost, (1-m.AvgCost/pr.Native)*100, exact, len(m.ChosenIdx), close, hist)
		}
	}
}
