package experiments

import (
	"fmt"
	"io"

	"loam/internal/selector"
)

// Sec73Result reproduces §7.3's fleet-level benefit estimate: the fraction
// of projects expected to gain ≥10% CPU cost from deploying LOAM, computed
// as (Filter pass rate) × (win rate among sampled projects), mirroring the
// paper's conservative 40.5% × 10% ≈ 4% estimate.
type Sec73Result struct {
	FleetSize      int
	PassCount      int
	PassRate       float64
	FailuresByRule map[string]int
	// Winners is the number of evaluation projects with ≥10% LOAM gain.
	Winners int
	// SampledProjects is the denominator of the win rate (the paper treats
	// the 25 unevaluated sampled projects as no-gain, i.e. 3/30).
	SampledProjects int
	WinRate         float64
	// Estimate = PassRate × WinRate.
	Estimate float64
}

// Sec73 applies the rule-based Filter to the fleet and combines its pass
// rate with the Fig.-6 win rate.
func (e *Env) Sec73(f6 *Fig6Result) *Sec73Result {
	fleet := e.Fleet()
	// Thresholds scale with the simulated workload: R1's volume floor sits
	// in the middle of the fleet's volume distribution so, as in the paper,
	// a substantial fraction of projects is filtered out (59.5% there).
	fcfg := selector.ScaledFilterConfig(7 * e.Cfg.WorkloadScale)
	res := &Sec73Result{
		FleetSize:      len(fleet),
		FailuresByRule: map[string]int{},
	}
	for _, fp := range fleet {
		pass, failed := fcfg.Pass(fp.Stats)
		if pass {
			res.PassCount++
		}
		for _, f := range failed {
			res.FailuresByRule[f]++
		}
	}
	if res.FleetSize > 0 {
		res.PassRate = float64(res.PassCount) / float64(res.FleetSize)
	}

	// Win rate: projects with ≥10% gain among the paper's 30-project sample
	// convention (the 5 evaluated are the top candidates; the remaining 25
	// are conservatively treated as low-benefit).
	res.SampledProjects = 30
	for _, pr := range f6.Projects {
		if m := pr.Method("LOAM"); m != nil && pr.Native > 0 {
			if 1-m.AvgCost/pr.Native >= 0.10 {
				res.Winners++
			}
		}
	}
	res.WinRate = float64(res.Winners) / float64(res.SampledProjects)
	res.Estimate = res.PassRate * res.WinRate
	return res
}

// Render prints the estimate derivation.
func (r *Sec73Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Section 7.3 — Benefits in the fleet")
	fmt.Fprintf(w, "filter pass rate: %d/%d = %.1f%% (failures: %v)\n",
		r.PassCount, r.FleetSize, r.PassRate*100, r.FailuresByRule)
	fmt.Fprintf(w, "win rate (≥10%% gain): %d/%d = %.1f%%\n", r.Winners, r.SampledProjects, r.WinRate*100)
	fmt.Fprintf(w, "estimated fraction of fleet with ≥10%% gain: %.1f%% × %.1f%% = %.2f%%\n",
		r.PassRate*100, r.WinRate*100, r.Estimate*100)
}
