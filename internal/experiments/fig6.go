package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"loam/internal/floatsafe"
	"loam/internal/predictor"
	"loam/internal/theory"
	"loam/internal/walltime"
)

// MethodResult is one learned optimizer's measured behavior on one project.
type MethodResult struct {
	Name string
	// AvgCost is the mean E2E CPU cost of the plans the method selected.
	AvgCost float64
	// PerQuery[i] is the selected plan's measured cost on test query i.
	PerQuery []float64
	// ChosenIdx[i] is the candidate index the method chose.
	ChosenIdx []int
	// RelDeviance is the mean relative expected deviance of the method's
	// choices (§7.2.5).
	RelDeviance float64

	TrainSeconds    float64
	ModelBytes      int
	AvgInferSeconds float64
}

// ProjectResult aggregates one project's end-to-end evaluation.
type ProjectResult struct {
	Project   string
	TrainSize int
	TestSize  int

	// Native is the native optimizer's average cost (default plans).
	Native float64
	// NativePerQuery are the default plan costs per test query.
	NativePerQuery []float64
	// Oracle is the oracle model's expected average cost.
	Oracle float64
	// BestAchievable is M_b's average cost (Theorem 1's bound).
	BestAchievable float64
	// ImprovementSpace is the mean relative D(M_d) (§6).
	ImprovementSpace float64
	// BestAchievableDeviance is the mean relative D(M_b).
	BestAchievableDeviance float64

	Methods []MethodResult
}

// Fig6Result reproduces Fig. 6 (average CPU cost of learned optimizers and
// MaxCompute), and carries everything Figs. 7, 9 and 11 reuse.
type Fig6Result struct {
	Projects []ProjectResult
}

// evalMethod runs a selection rule over a project's measured queries.
func evalMethod(pe *ProjectEval, name string, pick func(q *EvalQuery) int) MethodResult {
	m := MethodResult{Name: name}
	devSum, oracleSum := 0.0, 0.0
	var inferTime time.Duration
	for i := range pe.Queries {
		q := &pe.Queries[i]
		sw := walltime.Start()
		idx := pick(q)
		inferTime += sw.Elapsed()
		if idx < 0 || idx >= len(q.Cands) {
			idx = 0
		}
		m.ChosenIdx = append(m.ChosenIdx, idx)
		m.PerQuery = append(m.PerQuery, q.Means[idx])
		m.AvgCost += q.Means[idx]
		oracle := q.OracleCost()
		if oracle > 0 {
			devSum += theory.ExpectedDeviance(q.Dists, idx) / oracle
			oracleSum++
		}
	}
	if n := len(pe.Queries); n > 0 {
		m.AvgCost /= float64(n)
		m.AvgInferSeconds = inferTime.Seconds() / float64(n)
	}
	if oracleSum > 0 {
		m.RelDeviance = devSum / oracleSum
	}
	return m
}

// pickWith returns a selection rule that scores the stored candidates with a
// trained predictor under an environment strategy.
func pickWith(p *predictor.Predictor, strategy predictor.Strategy, clusterExpected, clusterCurrent [4]float64) func(q *EvalQuery) int {
	envs := p.EnvSourceFor(strategy, clusterExpected, clusterCurrent)
	return func(q *EvalQuery) int {
		costs := make([]float64, len(q.Cands))
		for i, c := range q.Cands {
			costs[i] = p.PredictCost(c, envs)
		}
		if best := floatsafe.ArgMin(costs); best >= 0 {
			return best
		}
		return 0 // every estimate NaN: fall back to the default plan
	}
}

// evalProject measures the native baseline, the theory bounds, and a set of
// model variants on one project.
func (e *Env) evalProject(name string, variants []Variant) (ProjectResult, error) {
	pe := e.Eval(name)
	pr := ProjectResult{
		Project:   name,
		TrainSize: pe.TrainSize,
		TestSize:  pe.TestSize,
	}
	for i := range pe.Queries {
		q := &pe.Queries[i]
		pr.Native += q.Means[0]
		pr.NativePerQuery = append(pr.NativePerQuery, q.Means[0])
		oracle := q.OracleCost()
		pr.Oracle += oracle
		bi := q.BestAchievableIdx()
		pr.BestAchievable += q.Means[bi]
		if oracle > 0 {
			pr.ImprovementSpace += theory.ExpectedDeviance(q.Dists, 0) / oracle
			pr.BestAchievableDeviance += theory.ExpectedDeviance(q.Dists, bi) / oracle
		}
	}
	if n := float64(len(pe.Queries)); n > 0 {
		pr.Native /= n
		pr.Oracle /= n
		pr.BestAchievable /= n
		pr.ImprovementSpace /= n
		pr.BestAchievableDeviance /= n
	}

	cl := e.Sim.Cluster
	for _, v := range variants {
		dep, err := e.Deployment(name, v)
		if err != nil {
			return pr, err
		}
		pick := pickWith(dep.Predictor(), predictor.StrategyMeanEnv,
			cl.HistoryAverage().Normalized(), cl.ClusterAverage().Normalized())
		m := evalMethod(pe, v.Label(), pick)
		m.TrainSeconds = dep.Predictor().Metrics().TrainSeconds
		m.ModelBytes = dep.Predictor().Metrics().ModelBytes
		pr.Methods = append(pr.Methods, m)
	}
	return pr, nil
}

// Fig6 reproduces the end-to-end comparison: MaxCompute vs LOAM vs the
// Transformer, GCN and XGBoost baselines on the five evaluation projects,
// with the best-achievable bound.
func (e *Env) Fig6() (*Fig6Result, error) {
	variants := []Variant{
		LOAMVariant(),
		{Kind: predictor.KindTransformer, Adapt: true, UseEnv: true},
		{Kind: predictor.KindGCN, Adapt: true, UseEnv: true},
		{Kind: predictor.KindXGBoost, Adapt: true, UseEnv: true},
	}
	res := &Fig6Result{}
	for _, ps := range e.Projects() {
		pr, err := e.evalProject(ps.Config.Name, variants)
		if err != nil {
			return nil, err
		}
		res.Projects = append(res.Projects, pr)
	}
	return res, nil
}

// Method returns a project's method result by name, or nil.
func (pr *ProjectResult) Method(name string) *MethodResult {
	for i := range pr.Methods {
		if pr.Methods[i].Name == name {
			return &pr.Methods[i]
		}
	}
	return nil
}

// Render prints the Fig.-6 table.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 — Average E2E CPU cost (lower is better)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s %12s %12s | %8s %8s\n",
		"project", "MaxCompute", "LOAM", "Transformer", "GCN", "XGBoost",
		"BestAchiev", "Oracle", "D(Md)%", "gain%")
	for _, pr := range r.Projects {
		loam := pr.Method("LOAM")
		gain := 0.0
		if pr.Native > 0 && loam != nil {
			gain = (1 - loam.AvgCost/pr.Native) * 100
		}
		get := func(name string) float64 {
			if m := pr.Method(name); m != nil {
				return m.AvgCost
			}
			return 0
		}
		fmt.Fprintf(w, "%-10s %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f | %8.1f %8.1f\n",
			pr.Project, pr.Native, get("LOAM"), get("Transformer"), get("GCN"), get("XGBoost"),
			pr.BestAchievable, pr.Oracle, pr.ImprovementSpace*100, gain)
	}
}

// Fig7Result reproduces Fig. 7: per-query cost deltas of LOAM vs MaxCompute,
// sorted from worst slowdown to best speedup.
type Fig7Result struct {
	Projects []Fig7Project
}

// Fig7Project is one project's per-query comparison.
type Fig7Project struct {
	Project string
	// Delta[i] = native cost − LOAM cost for test query i, sorted ascending
	// (negative = regression).
	Delta []float64
	// Speedups and Slowdowns count queries improved/regressed by more than
	// the tolerance band (2%).
	Speedups, Slowdowns int
	// MaxGain and MaxLoss are the extreme absolute deltas.
	MaxGain, MaxLoss float64
}

// Fig7 derives the per-query analysis from the Fig.-6 measurements.
func (e *Env) Fig7(f6 *Fig6Result) *Fig7Result {
	const tol = 0.02
	res := &Fig7Result{}
	for _, pr := range f6.Projects {
		loam := pr.Method("LOAM")
		if loam == nil {
			continue
		}
		fp := Fig7Project{Project: pr.Project}
		for i, native := range pr.NativePerQuery {
			d := native - loam.PerQuery[i]
			fp.Delta = append(fp.Delta, d)
			switch {
			case d > tol*native:
				fp.Speedups++
				if d > fp.MaxGain {
					fp.MaxGain = d
				}
			case d < -tol*native:
				fp.Slowdowns++
				if -d > fp.MaxLoss {
					fp.MaxLoss = -d
				}
			}
		}
		sort.Float64s(fp.Delta)
		res.Projects = append(res.Projects, fp)
	}
	return res
}

// Render prints the Fig.-7 summary plus the sorted delta series.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 — Per-query cost delta (native − LOAM), sorted")
	for _, fp := range r.Projects {
		fmt.Fprintf(w, "%-10s queries=%d speedups=%d slowdowns=%d maxGain=%.0f maxLoss=%.0f\n",
			fp.Project, len(fp.Delta), fp.Speedups, fp.Slowdowns, fp.MaxGain, fp.MaxLoss)
		fmt.Fprintf(w, "  deltas:")
		for _, d := range fp.Delta {
			fmt.Fprintf(w, " %.0f", d)
		}
		fmt.Fprintln(w)
	}
}

// Fig9Result reproduces Fig. 9's three tables: training overhead, model
// footprint and average inference time per method per project.
type Fig9Result struct {
	Projects []string
	Methods  []string
	// Train[method][project], Size[method][project], Infer[method][project].
	Train map[string]map[string]float64
	Size  map[string]map[string]int
	Infer map[string]map[string]float64
}

// Fig9 derives the overhead tables from the Fig.-6 runs.
func (e *Env) Fig9(f6 *Fig6Result) *Fig9Result {
	res := &Fig9Result{
		Train: map[string]map[string]float64{},
		Size:  map[string]map[string]int{},
		Infer: map[string]map[string]float64{},
	}
	for _, pr := range f6.Projects {
		res.Projects = append(res.Projects, pr.Project)
		for _, m := range pr.Methods {
			if res.Train[m.Name] == nil {
				res.Methods = append(res.Methods, m.Name)
				res.Train[m.Name] = map[string]float64{}
				res.Size[m.Name] = map[string]int{}
				res.Infer[m.Name] = map[string]float64{}
			}
			res.Train[m.Name][pr.Project] = m.TrainSeconds
			res.Size[m.Name][pr.Project] = m.ModelBytes
			res.Infer[m.Name][pr.Project] = m.AvgInferSeconds
		}
	}
	return res
}

// Render prints the three overhead tables.
func (r *Fig9Result) Render(w io.Writer) {
	row := func(title string, get func(method, project string) string) {
		fmt.Fprintln(w, title)
		fmt.Fprintf(w, "%-12s", "method")
		for _, p := range r.Projects {
			fmt.Fprintf(w, " %12s", p)
		}
		fmt.Fprintln(w)
		for _, m := range r.Methods {
			fmt.Fprintf(w, "%-12s", m)
			for _, p := range r.Projects {
				fmt.Fprintf(w, " %12s", get(m, p))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "Figure 9 — Extra cost of learned optimizers")
	row("(a) Training time (s)", func(m, p string) string {
		return fmt.Sprintf("%.2f", r.Train[m][p])
	})
	row("(b) Model footprint (MB)", func(m, p string) string {
		return fmt.Sprintf("%.2f", float64(r.Size[m][p])/1e6)
	})
	row("(c) Avg inference time (s/query)", func(m, p string) string {
		return fmt.Sprintf("%.4f", r.Infer[m][p])
	})
}

// Fig11Result reproduces Fig. 11: the adaptive-training ablation.
type Fig11Result struct {
	Projects []string
	Native   map[string]float64
	NoAdapt  map[string]float64 // LOAM-NA
	LOAM     map[string]float64
}

// Fig11 evaluates LOAM-NA (no domain classifier / GRL) against LOAM and the
// native optimizer.
func (e *Env) Fig11(f6 *Fig6Result) (*Fig11Result, error) {
	res := &Fig11Result{
		Native:  map[string]float64{},
		NoAdapt: map[string]float64{},
		LOAM:    map[string]float64{},
	}
	for _, pr := range f6.Projects {
		name := pr.Project
		res.Projects = append(res.Projects, name)
		res.Native[name] = pr.Native
		if m := pr.Method("LOAM"); m != nil {
			res.LOAM[name] = m.AvgCost
		}
		dep, err := e.Deployment(name, Variant{Kind: predictor.KindTCN, Adapt: false, UseEnv: true})
		if err != nil {
			return nil, err
		}
		cl := e.Sim.Cluster
		pick := pickWith(dep.Predictor(), predictor.StrategyMeanEnv,
			cl.HistoryAverage().Normalized(), cl.ClusterAverage().Normalized())
		m := evalMethod(e.Eval(name), "LOAM-NA", pick)
		res.NoAdapt[name] = m.AvgCost
	}
	return res, nil
}

// Render prints the ablation table.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 11 — Effects of adaptive training (average CPU cost)")
	fmt.Fprintf(w, "%-12s", "method")
	for _, p := range r.Projects {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)
	printRow := func(name string, vals map[string]float64) {
		fmt.Fprintf(w, "%-12s", name)
		for _, p := range r.Projects {
			fmt.Fprintf(w, " %12.0f", vals[p])
		}
		fmt.Fprintln(w)
	}
	printRow("MaxCompute", r.Native)
	printRow("LOAM-NA", r.NoAdapt)
	printRow("LOAM", r.LOAM)
}
