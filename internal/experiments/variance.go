package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"loam"
	"loam/internal/cluster"
	"loam/internal/exec"
	"loam/internal/theory"
	"loam/internal/workload"
)

// Fig1Result reproduces Fig. 1's inset bar plot: the relative standard
// deviation of CPU costs for recurring queries observed over a month, where
// an identical query can fluctuate by up to ~50%.
type Fig1Result struct {
	// RSDs are per-template relative standard deviations of CPU cost,
	// sorted ascending.
	RSDs []float64
	// LatencyRSDs are the matching relative standard deviations of
	// end-to-end latency — the noisier metric LOAM deliberately avoids
	// predicting (§3).
	LatencyRSDs []float64
	Reps        int
}

// recurringRuns executes a template's canonical (non-churned) instance's
// default plan reps times on the live cluster, returning the observed CPU
// costs and end-to-end latencies.
func recurringRuns(ps *loam.ProjectSim, tpl *workload.Template, day, reps int) (costs, latencies []float64) {
	churn := tpl.ParamChurn
	tpl.ParamChurn = 0
	q := tpl.Instantiate(ps.Rng("fig1"), day)
	tpl.ParamChurn = churn

	def := ps.Explorer(day).DefaultPlan(q)
	opt := exec.DefaultOptions()
	opt.NoiseSigma = q.NoiseSigma
	costs = make([]float64, reps)
	latencies = make([]float64, reps)
	for r := range costs {
		rec := ps.Executor.Execute(def, day, opt)
		costs[r] = rec.CPUCost
		latencies[r] = rec.LatencySec
	}
	return costs, latencies
}

// recurringCosts returns just the CPU costs of recurringRuns.
func recurringCosts(ps *loam.ProjectSim, tpl *workload.Template, day, reps int) []float64 {
	costs, _ := recurringRuns(ps, tpl, day, reps)
	return costs
}

// Fig1 measures cost variability of recurring queries on project 1.
func (e *Env) Fig1() *Fig1Result {
	ps := e.Projects()[0]
	const reps = 25
	res := &Fig1Result{Reps: reps}
	for _, tpl := range ps.Gen.Templates {
		costs, latencies := recurringRuns(ps, tpl, 2, reps)
		_, rsd := theory.Moments(costs)
		res.RSDs = append(res.RSDs, rsd)
		_, lrsd := theory.Moments(latencies)
		res.LatencyRSDs = append(res.LatencyRSDs, lrsd)
	}
	sort.Float64s(res.RSDs)
	sort.Float64s(res.LatencyRSDs)
	return res
}

// Max returns the largest observed RSD.
func (r *Fig1Result) Max() float64 {
	if len(r.RSDs) == 0 {
		return 0
	}
	return r.RSDs[len(r.RSDs)-1]
}

// Render prints the RSD bars.
func (r *Fig1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 (inset) — Relative std-dev of CPU cost for recurring queries (%d executions each)\n", r.Reps)
	for i, rsd := range r.RSDs {
		fmt.Fprintf(w, "  query %2d: %5.1f%% %s\n", i+1, rsd*100, bar(rsd, 0.6, 40))
	}
	costMed, latMed := median(r.RSDs), median(r.LatencyRSDs)
	fmt.Fprintf(w, "median RSD: CPU cost %.1f%% vs E2E latency %.1f%% — latency is the noisier metric (§3)\n",
		costMed*100, latMed*100)
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)/2]
}

// Fig5Result reproduces Fig. 5: CPU cost of a recurring query against
// machine-load metrics, showing the roughly monotone/linear response.
type Fig5Result struct {
	// Samples are (CPU_IDLE, LOAD5-normalized, MEM_USAGE, cost) tuples.
	Idle, Load5, Mem, Cost []float64
	// CorrIdle and CorrLoad5 are Pearson correlations of cost with CPU_IDLE
	// (expected negative) and normalized LOAD5 (expected positive).
	CorrIdle, CorrLoad5 float64
}

// Fig5 executes one recurring query many times and relates cost to the
// per-execution average machine load.
func (e *Env) Fig5() *Fig5Result {
	ps := e.Projects()[0]
	tpl := ps.Gen.Templates[0]
	churn := tpl.ParamChurn
	tpl.ParamChurn = 0
	q := tpl.Instantiate(ps.Rng("fig5"), 2)
	tpl.ParamChurn = churn
	def := ps.Explorer(2).DefaultPlan(q)
	opt := exec.DefaultOptions()
	opt.NoiseSigma = 0.05 // isolate the environment effect

	res := &Fig5Result{}
	const reps = 120
	for r := 0; r < reps; r++ {
		rec := ps.Executor.Execute(def, 2, opt)
		var env cluster.Metrics
		for _, se := range rec.StageEnvs {
			env = env.Add(se)
		}
		env = env.Scale(1 / float64(len(rec.StageEnvs)))
		f := env.Normalized()
		res.Idle = append(res.Idle, f[0])
		res.Load5 = append(res.Load5, f[2])
		res.Mem = append(res.Mem, f[3])
		res.Cost = append(res.Cost, rec.CPUCost)
	}
	res.CorrIdle = pearson(res.Idle, res.Cost)
	res.CorrLoad5 = pearson(res.Load5, res.Cost)
	return res
}

// Render prints binned cost means against CPU_IDLE and LOAD5.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 — CPU cost of a recurring query w.r.t. machine load")
	fmt.Fprintf(w, "corr(cost, CPU_IDLE) = %+.3f   corr(cost, LOAD5) = %+.3f\n", r.CorrIdle, r.CorrLoad5)
	renderBins(w, "CPU_IDLE", r.Idle, r.Cost)
	renderBins(w, "LOAD5(norm)", r.Load5, r.Cost)
}

func renderBins(w io.Writer, label string, x, y []float64) {
	const bins = 6
	lo, hi := minMax(x)
	if hi <= lo {
		return
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for i := range x {
		b := int(float64(bins) * (x[i] - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += y[i]
		counts[b]++
	}
	fmt.Fprintf(w, "  %s bins:", label)
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			fmt.Fprintf(w, "  [%.2f: -]", lo+(hi-lo)*(float64(b)+0.5)/bins)
			continue
		}
		fmt.Fprintf(w, "  [%.2f: %.0f]", lo+(hi-lo)*(float64(b)+0.5)/bins, sums[b]/float64(counts[b]))
	}
	fmt.Fprintln(w)
}

// Fig15Result reproduces App. Fig. 15: the log-normal shape of a recurring
// plan's execution costs — histogram vs fitted curve, Q-Q points, and the
// Kolmogorov–Smirnov test (the paper reports an average p-value ≈ 0.6).
type Fig15Result struct {
	Costs    []float64
	Fit      theory.LogNormal
	KSStat   float64
	KSPValue float64
	// AvgPValue averages the KS p-value across several recurring templates.
	AvgPValue float64
}

// Fig15 fits the execution-cost distribution of recurring plans.
func (e *Env) Fig15() *Fig15Result {
	ps := e.Projects()[0]
	const reps = 120
	res := &Fig15Result{}
	pSum, pCount := 0.0, 0
	for i, tpl := range ps.Gen.Templates {
		costs := recurringCosts(ps, tpl, 2, reps)
		fit, err := theory.FitLogNormal(costs)
		if err != nil {
			continue
		}
		_, p := theory.KSTest(costs, fit)
		pSum += p
		pCount++
		if i == 0 {
			res.Costs = costs
			res.Fit = fit
			res.KSStat, res.KSPValue = theory.KSTest(costs, fit)
		}
		if pCount >= 6 {
			break
		}
	}
	if pCount > 0 {
		res.AvgPValue = pSum / float64(pCount)
	}
	return res
}

// Render prints the histogram with the fitted density and Q-Q pairs.
func (r *Fig15Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 15 — Cost distribution of an example recurring plan")
	fmt.Fprintf(w, "fit: LogNormal(mu=%.3f, sigma=%.3f)  KS=%.3f  p=%.3f  avg-p(6 plans)=%.3f\n",
		r.Fit.Mu, r.Fit.Sigma, r.KSStat, r.KSPValue, r.AvgPValue)
	if len(r.Costs) == 0 {
		return
	}
	sorted := append([]float64(nil), r.Costs...)
	sort.Float64s(sorted)
	const bins = 10
	lo, hi := sorted[0], sorted[len(sorted)-1]
	counts := make([]int, bins)
	for _, c := range r.Costs {
		b := int(float64(bins) * (c - lo) / (hi - lo + 1e-9))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	fmt.Fprintln(w, "(a) histogram (observed | fitted density scaled)")
	n := float64(len(r.Costs))
	width := (hi - lo) / bins
	for b := 0; b < bins; b++ {
		mid := lo + (float64(b)+0.5)*width
		expected := r.Fit.PDF(mid) * n * width
		fmt.Fprintf(w, "  [%9.0f] obs=%3d fit=%5.1f %s\n", mid, counts[b], expected, bar(float64(counts[b])/n, 0.5, 30))
	}
	fmt.Fprintln(w, "(b) Q-Q (theoretical vs empirical quantiles)")
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		emp := sorted[int(p*float64(len(sorted)-1))]
		fmt.Fprintf(w, "  p=%.2f theo=%9.0f emp=%9.0f\n", p, r.Fit.Quantile(p), emp)
	}
}

// Table1Result reproduces Table 1: statistics of the evaluation projects.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one project's statistics.
type Table1Row struct {
	Project    string
	Tables     int
	Columns    int
	TrainCount int
	TestCount  int
	AvgCost    float64
}

// Table1 computes the project statistics table.
func (e *Env) Table1() *Table1Result {
	res := &Table1Result{}
	for _, ps := range e.Projects() {
		pe := e.Eval(ps.Config.Name)
		res.Rows = append(res.Rows, Table1Row{
			Project:    ps.Config.Name,
			Tables:     len(ps.Project.Tables),
			Columns:    ps.Project.NumColumns(),
			TrainCount: pe.TrainSize,
			TestCount:  pe.TestSize,
			AvgCost:    pe.AvgTrainCost,
		})
	}
	return res
}

// Render prints Table 1.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Statistics of projects used in the experiments")
	fmt.Fprintf(w, "%-22s", "datasets")
	for _, row := range r.Rows {
		fmt.Fprintf(w, " %12s", row.Project)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(Table1Row) string) {
		fmt.Fprintf(w, "%-22s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(w, " %12s", get(row))
		}
		fmt.Fprintln(w)
	}
	line("# of tables", func(r Table1Row) string { return fmt.Sprint(r.Tables) })
	line("# of columns", func(r Table1Row) string { return fmt.Sprint(r.Columns) })
	line("# of training queries", func(r Table1Row) string { return fmt.Sprint(r.TrainCount) })
	line("# of test queries", func(r Table1Row) string { return fmt.Sprint(r.TestCount) })
	line("average CPU cost", func(r Table1Row) string { return fmt.Sprintf("%.0f", r.AvgCost) })
}

func bar(v, maxV float64, width int) string {
	n := int(v / maxV * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	mx, my := 0.0, 0.0
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func minMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
