package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"loam/internal/guard"
	"loam/internal/nn"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/walltime"
)

// PerfResult measures the serving fast path on one trained deployment: the
// allocation-free PredictCost forward, recurring-query SelectPlan throughput
// with the plan-embedding cache cold-bypassed vs warm, and end-to-end
// OptimizeBatch throughput at increasing parallelism. The struct is the
// machine-readable BENCH_serve.json payload (loam-bench -run perf -benchout).
// Timings and allocation counts are reporting-only measurements and are never
// part of the deterministic telemetry snapshot; Identical is the
// correctness bit — cached and uncached scoring must choose the same plans.
type PerfResult struct {
	Project string `json:"project"`
	Queries int    `json:"queries"`

	// CalibNs is the machine-speed calibration (CalibrateMachine): ns per
	// canonical blocked matmul on this machine, measured in the same process
	// as the numbers below. The -baseline trend gate divides it by the
	// committed baseline's calib_ns to scale thresholds to the measuring
	// machine instead of comparing raw wall times across hardware.
	CalibNs float64 `json:"calib_ns"`

	PredictCost PerfForward    `json:"predict_cost"`
	Select      PerfSelect     `json:"select"`
	Quant       PerfQuant      `json:"quant"`
	Coalesced   PerfCoalesced  `json:"coalesced"`
	Batch       []PerfBatchRow `json:"optimize_batch"`
}

// PerfForward is the PredictCost microbenchmark: one recurring plan scored
// repeatedly through the inference forward.
type PerfForward struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// PerfSelect compares candidate-set scoring throughput on a recurring
// workload with the plan-embedding cache bypassed vs warm.
type PerfSelect struct {
	Rounds           int     `json:"rounds"`
	UncachedQPS      float64 `json:"uncached_qps"`
	WarmQPS          float64 `json:"warm_qps"`
	RecurringSpeedup float64 `json:"recurring_speedup"`
	// Identical is true when warm cached scoring chose exactly the plans
	// uncached scoring chose for every query.
	Identical bool `json:"identical"`
}

// PerfQuant measures warm recurring-query throughput with the quantized
// int8/f32 cost head enabled. Identical is the end-to-end half of the
// argmin-preservation contract: quantized warm scoring must choose exactly
// the plans the uncached f64 path chose.
type PerfQuant struct {
	WarmQPS float64 `json:"warm_qps"`
	// SpeedupVsF64 is WarmQPS over the f64 warm-cache WarmQPS measured in the
	// same run.
	SpeedupVsF64 float64 `json:"speedup_vs_f64"`
	Identical    bool    `json:"identical"`
}

// PerfCoalesced measures the fused ServeBatch pass: the whole recurring
// workload scored as one micro-batched cost-head group per round, warm cache,
// f64 scoring.
type PerfCoalesced struct {
	QPS       float64 `json:"qps"`
	Identical bool    `json:"identical"`
}

// PerfBatchRow is one OptimizeBatch throughput measurement.
type PerfBatchRow struct {
	Parallelism int     `json:"parallelism"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
}

// PerfBaseline is the committed perf floor (BENCH_baseline.json): the f64
// serving numbers recorded before the quantized/micro-batched fast path
// landed, plus the calib_ns of the machine that recorded them. The trend gate
// (loam-bench -run perf -baseline) scales its thresholds by the calib ratio
// of the two machines, clamped to [0.25, 4] so a pathological calibration
// can neither mask a real regression nor manufacture one.
type PerfBaseline struct {
	CalibNs        float64 `json:"calib_ns"`
	PredictNsPerOp float64 `json:"predict_ns_per_op"`
	WarmQPS        float64 `json:"warm_qps"`
}

// CalibrateMachine times the canonical calibration workload — a fixed-shape
// blocked f64 matmul on deterministic inputs — and returns ns per matmul
// (best of several reps, so a background-noise spike cannot inflate it).
func CalibrateMachine() float64 {
	const n, iters, reps = 96, 8, 5
	rng := simrand.New(7)
	a := make([]float64, n*n)
	bt := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Uniform(-1, 1)
		bt[i] = rng.Uniform(-1, 1)
	}
	dst := make([]float64, n*n)
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		sw := walltime.Start()
		for it := 0; it < iters; it++ {
			nn.MatMulNTBlockedInto(dst, a, bt, n, n, n)
		}
		if ns := sw.Seconds() * 1e9 / iters; rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// CompareBaseline checks r against the committed baseline and returns the
// list of regressions (empty = gate passes). Thresholds are scaled by the
// calib ratio (this machine over the baseline machine, clamped): throughput
// must stay above 90% of the scaled baseline, PredictCost latency below 110%,
// and every identical-choices bit must hold.
func (r *PerfResult) CompareBaseline(b *PerfBaseline) []string {
	scale := 1.0
	if b.CalibNs > 0 && r.CalibNs > 0 {
		scale = r.CalibNs / b.CalibNs
		if scale < 0.25 {
			scale = 0.25
		} else if scale > 4 {
			scale = 4
		}
	}
	var bad []string
	if lim := 1.1 * b.PredictNsPerOp * scale; r.PredictCost.NsPerOp > lim {
		bad = append(bad, fmt.Sprintf("PredictCost %.0f ns/op exceeds scaled baseline limit %.0f ns/op",
			r.PredictCost.NsPerOp, lim))
	}
	if lim := 0.9 * b.WarmQPS / scale; r.Select.WarmQPS < lim {
		bad = append(bad, fmt.Sprintf("warm select %.0f q/s below scaled baseline floor %.0f q/s",
			r.Select.WarmQPS, lim))
	}
	if !r.Select.Identical {
		bad = append(bad, "warm cached scoring chose different plans than uncached scoring")
	}
	if !r.Quant.Identical {
		bad = append(bad, "quantized scoring chose different plans than f64 scoring")
	}
	if !r.Coalesced.Identical {
		bad = append(bad, "coalesced scoring chose different plans than per-query scoring")
	}
	return bad
}

// BaselineSpeedup reports this run's warm-cache throughput relative to the
// committed baseline, in baseline-machine units (scaled by the calib ratio).
func (r *PerfResult) BaselineSpeedup(b *PerfBaseline) float64 {
	if b.WarmQPS <= 0 {
		return 0
	}
	scale := 1.0
	if b.CalibNs > 0 && r.CalibNs > 0 {
		scale = r.CalibNs / b.CalibNs
		if scale < 0.25 {
			scale = 0.25
		} else if scale > 4 {
			scale = 4
		}
	}
	return r.Select.WarmQPS * scale / b.WarmQPS
}

// perfMeasure times n runs of f and reports ns/op plus heap allocations/op
// (malloc-count delta around the loop, GC-settled first).
func perfMeasure(n int, f func()) (nsPerOp, allocsPerOp float64) {
	f() // warm pools, caches and scratch slabs
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	sw := walltime.Start()
	for i := 0; i < n; i++ {
		f()
	}
	secs := sw.Seconds()
	runtime.ReadMemStats(&m1)
	return secs * 1e9 / float64(n), float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// Perf runs the serving fast-path benchmark on the first evaluation project.
// ctx bounds the end-to-end OptimizeBatch phase: cancellation propagates into
// the deployment's serving path.
func (e *Env) Perf(ctx context.Context) (*PerfResult, error) {
	project := e.projects[0].Config.Name
	dep, err := e.Deployment(project, LOAMVariant())
	if err != nil {
		return nil, err
	}
	ps := e.Project(project)

	var qs []*query.Query
	for day := e.Cfg.TrainDays; day < e.Cfg.TrainDays+e.Cfg.TestDays; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("perf %s: no test-window queries", project)
	}
	cands := make([][]*plan.Plan, len(qs))
	for i, q := range qs {
		cands[i] = ps.Explorer(q.Day).Candidates(q)
	}
	// The deployment's default strategy is MeanEnv, whose source and key are
	// environment-reading-independent, so one resolved pair serves the whole
	// benchmark and every round sees identical inputs.
	envs := dep.Predictor().EnvSourceFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})
	key := dep.Predictor().EnvKeyFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})

	res := &PerfResult{Project: project, Queries: len(qs), CalibNs: CalibrateMachine()}
	e.Cfg.logf("perf %s: machine calibration %.0f ns/matmul", project, res.CalibNs)

	// 1. PredictCost microbenchmark on one recurring plan.
	const fwdIters = 1000
	pl := cands[0][0]
	ns, allocs := perfMeasure(fwdIters, func() { dep.Predictor().PredictCost(pl, envs) })
	res.PredictCost = PerfForward{Iters: fwdIters, NsPerOp: ns, AllocsPerOp: allocs}
	e.Cfg.logf("perf %s: PredictCost %.0f ns/op, %.1f allocs/op", project, ns, allocs)

	// 2. Recurring-query SelectPlan throughput: every round re-scores the
	// same candidate sets, as a frontend serving a recurring workload would.
	// Uncached rounds go through the unkeyed path (cache bypassed); warm
	// rounds use keyed scoring against the deployment's cache after one
	// warming pass. Choices must agree bit for bit.
	const rounds = 3
	res.Select.Rounds = rounds
	uncachedChoice := make([]*plan.Plan, len(qs))
	sw := walltime.Start()
	for r := 0; r < rounds; r++ {
		for i := range qs {
			chosen, _, err := dep.Guard().ScoreLearned(cands[i], envs)
			if err != nil {
				return nil, fmt.Errorf("perf %s (uncached): %w", project, err)
			}
			uncachedChoice[i] = chosen
		}
	}
	uncachedSecs := sw.Seconds()
	res.Select.UncachedQPS = float64(rounds*len(qs)) / uncachedSecs

	res.Select.Identical = true
	for i := range qs { // warming pass + correctness check
		chosen, _, err := dep.Guard().ScoreLearnedKeyed(cands[i], envs, key)
		if err != nil {
			return nil, fmt.Errorf("perf %s (warming): %w", project, err)
		}
		if chosen != uncachedChoice[i] {
			res.Select.Identical = false
		}
	}
	sw = walltime.Start()
	for r := 0; r < rounds; r++ {
		for i := range qs {
			chosen, _, err := dep.Guard().ScoreLearnedKeyed(cands[i], envs, key)
			if err != nil {
				return nil, fmt.Errorf("perf %s (warm): %w", project, err)
			}
			if chosen != uncachedChoice[i] {
				res.Select.Identical = false
			}
		}
	}
	warmSecs := sw.Seconds()
	res.Select.WarmQPS = float64(rounds*len(qs)) / warmSecs
	if warmSecs > 0 {
		res.Select.RecurringSpeedup = uncachedSecs / warmSecs
	}
	e.Cfg.logf("perf %s: select uncached %.0f q/s, warm %.0f q/s (%.1fx), identical=%v",
		project, res.Select.UncachedQPS, res.Select.WarmQPS, res.Select.RecurringSpeedup,
		res.Select.Identical)

	// 3. Quantized warm throughput: flip the cost head to the calibrated
	// int8/f32 tiers and re-run the warm keyed rounds. Choices must match the
	// uncached f64 choices exactly — the argmin-preservation contract, end to
	// end — and the original scoring configuration is restored afterwards so
	// the remaining phases measure the deployment as configured.
	baseScoring := dep.Predictor().ScoringConfig()
	quantScoring := baseScoring
	quantScoring.Quantized = true
	dep.Predictor().SetScoringConfig(quantScoring)
	res.Quant.Identical = true
	checkQuant := func() error {
		for i := range qs {
			chosen, _, err := dep.Guard().ScoreLearnedKeyed(cands[i], envs, key)
			if err != nil {
				return fmt.Errorf("perf %s (quant): %w", project, err)
			}
			if chosen != uncachedChoice[i] {
				res.Quant.Identical = false
			}
		}
		return nil
	}
	if err := checkQuant(); err != nil { // warm the quant scratch tiers
		return nil, err
	}
	sw = walltime.Start()
	for r := 0; r < rounds; r++ {
		if err := checkQuant(); err != nil {
			return nil, err
		}
	}
	quantSecs := sw.Seconds()
	res.Quant.WarmQPS = float64(rounds*len(qs)) / quantSecs
	if res.Select.WarmQPS > 0 {
		res.Quant.SpeedupVsF64 = res.Quant.WarmQPS / res.Select.WarmQPS
	}
	dep.Predictor().SetScoringConfig(baseScoring)
	e.Cfg.logf("perf %s: quant warm %.0f q/s (%.2fx f64 warm), identical=%v",
		project, res.Quant.WarmQPS, res.Quant.SpeedupVsF64, res.Quant.Identical)

	// 4. Coalesced fused scoring: the whole recurring workload runs as one
	// micro-batched ServeBatch pass per round — one fused cost-head group
	// instead of one select per query — with per-query choices still matching
	// the uncached path.
	reqs := make([]guard.Request, len(qs))
	for i, q := range qs {
		reqs[i] = guard.Request{
			ID: q.ID, Day: q.Day, Query: q,
			Cands: cands[i], Envs: envs, EnvKey: key,
		}
	}
	batchRes := make([]guard.Result, len(qs))
	batchErrs := make([]error, len(qs))
	res.Coalesced.Identical = true
	checkCoalesced := func() error {
		dep.Guard().ServeBatch(ctx, reqs, batchRes, batchErrs)
		for i := range qs {
			if batchErrs[i] != nil {
				return fmt.Errorf("perf %s (coalesced): %w", project, batchErrs[i])
			}
			if batchRes[i].Chosen != uncachedChoice[i] {
				res.Coalesced.Identical = false
			}
		}
		return nil
	}
	if err := checkCoalesced(); err != nil { // warm the flush scratch
		return nil, err
	}
	sw = walltime.Start()
	for r := 0; r < rounds; r++ {
		if err := checkCoalesced(); err != nil {
			return nil, err
		}
	}
	coalSecs := sw.Seconds()
	res.Coalesced.QPS = float64(rounds*len(qs)) / coalSecs
	e.Cfg.logf("perf %s: coalesced %.0f q/s, identical=%v",
		project, res.Coalesced.QPS, res.Coalesced.Identical)

	// 5. End-to-end OptimizeBatch throughput (explorer + guard + scoring)
	// at fixed parallelism levels, cache warm.
	for _, par := range []int{1, 2, 4} {
		sw := walltime.Start()
		if _, err := dep.OptimizeBatch(ctx, qs, par); err != nil {
			return nil, fmt.Errorf("perf %s (batch %d): %w", project, par, err)
		}
		secs := sw.Seconds()
		row := PerfBatchRow{Parallelism: par, Seconds: secs, QPS: float64(len(qs)) / secs}
		res.Batch = append(res.Batch, row)
		e.Cfg.logf("perf %s: batch parallelism=%d %.0f q/s", project, par, row.QPS)
	}
	return res, nil
}

// Render prints the fast-path benchmark tables.
func (r *PerfResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Serving fast path — %d recurring queries on %q (calib %.0f ns)\n",
		r.Queries, r.Project, r.CalibNs)
	fmt.Fprintf(w, "PredictCost: %.0f ns/op, %.1f allocs/op (%d iters)\n",
		r.PredictCost.NsPerOp, r.PredictCost.AllocsPerOp, r.PredictCost.Iters)
	fmt.Fprintf(w, "SelectPlan:  uncached %.0f q/s, warm cache %.0f q/s, speedup %.2fx, identical choices: %v\n",
		r.Select.UncachedQPS, r.Select.WarmQPS, r.Select.RecurringSpeedup, r.Select.Identical)
	fmt.Fprintf(w, "Quantized:   warm cache %.0f q/s (%.2fx f64 warm), identical choices: %v\n",
		r.Quant.WarmQPS, r.Quant.SpeedupVsF64, r.Quant.Identical)
	fmt.Fprintf(w, "Coalesced:   fused batch %.0f q/s, identical choices: %v\n",
		r.Coalesced.QPS, r.Coalesced.Identical)
	fmt.Fprintf(w, "%-12s %10s %10s\n", "parallelism", "seconds", "queries/s")
	for _, row := range r.Batch {
		fmt.Fprintf(w, "%-12d %10.3f %10.0f\n", row.Parallelism, row.Seconds, row.QPS)
	}
}
