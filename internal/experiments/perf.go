package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/walltime"
)

// PerfResult measures the serving fast path on one trained deployment: the
// allocation-free PredictCost forward, recurring-query SelectPlan throughput
// with the plan-embedding cache cold-bypassed vs warm, and end-to-end
// OptimizeBatch throughput at increasing parallelism. The struct is the
// machine-readable BENCH_serve.json payload (loam-bench -run perf -benchout).
// Timings and allocation counts are reporting-only measurements and are never
// part of the deterministic telemetry snapshot; Identical is the
// correctness bit — cached and uncached scoring must choose the same plans.
type PerfResult struct {
	Project string `json:"project"`
	Queries int    `json:"queries"`

	PredictCost PerfForward    `json:"predict_cost"`
	Select      PerfSelect     `json:"select"`
	Batch       []PerfBatchRow `json:"optimize_batch"`
}

// PerfForward is the PredictCost microbenchmark: one recurring plan scored
// repeatedly through the inference forward.
type PerfForward struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// PerfSelect compares candidate-set scoring throughput on a recurring
// workload with the plan-embedding cache bypassed vs warm.
type PerfSelect struct {
	Rounds           int     `json:"rounds"`
	UncachedQPS      float64 `json:"uncached_qps"`
	WarmQPS          float64 `json:"warm_qps"`
	RecurringSpeedup float64 `json:"recurring_speedup"`
	// Identical is true when warm cached scoring chose exactly the plans
	// uncached scoring chose for every query.
	Identical bool `json:"identical"`
}

// PerfBatchRow is one OptimizeBatch throughput measurement.
type PerfBatchRow struct {
	Parallelism int     `json:"parallelism"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
}

// perfMeasure times n runs of f and reports ns/op plus heap allocations/op
// (malloc-count delta around the loop, GC-settled first).
func perfMeasure(n int, f func()) (nsPerOp, allocsPerOp float64) {
	f() // warm pools, caches and scratch slabs
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	sw := walltime.Start()
	for i := 0; i < n; i++ {
		f()
	}
	secs := sw.Seconds()
	runtime.ReadMemStats(&m1)
	return secs * 1e9 / float64(n), float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// Perf runs the serving fast-path benchmark on the first evaluation project.
// ctx bounds the end-to-end OptimizeBatch phase: cancellation propagates into
// the deployment's serving path.
func (e *Env) Perf(ctx context.Context) (*PerfResult, error) {
	project := e.projects[0].Config.Name
	dep, err := e.Deployment(project, LOAMVariant())
	if err != nil {
		return nil, err
	}
	ps := e.Project(project)

	var qs []*query.Query
	for day := e.Cfg.TrainDays; day < e.Cfg.TrainDays+e.Cfg.TestDays; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("perf %s: no test-window queries", project)
	}
	cands := make([][]*plan.Plan, len(qs))
	for i, q := range qs {
		cands[i] = ps.Explorer(q.Day).Candidates(q)
	}
	// The deployment's default strategy is MeanEnv, whose source and key are
	// environment-reading-independent, so one resolved pair serves the whole
	// benchmark and every round sees identical inputs.
	envs := dep.Predictor().EnvSourceFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})
	key := dep.Predictor().EnvKeyFor(predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})

	res := &PerfResult{Project: project, Queries: len(qs)}

	// 1. PredictCost microbenchmark on one recurring plan.
	const fwdIters = 1000
	pl := cands[0][0]
	ns, allocs := perfMeasure(fwdIters, func() { dep.Predictor().PredictCost(pl, envs) })
	res.PredictCost = PerfForward{Iters: fwdIters, NsPerOp: ns, AllocsPerOp: allocs}
	e.Cfg.logf("perf %s: PredictCost %.0f ns/op, %.1f allocs/op", project, ns, allocs)

	// 2. Recurring-query SelectPlan throughput: every round re-scores the
	// same candidate sets, as a frontend serving a recurring workload would.
	// Uncached rounds go through the unkeyed path (cache bypassed); warm
	// rounds use keyed scoring against the deployment's cache after one
	// warming pass. Choices must agree bit for bit.
	const rounds = 3
	res.Select.Rounds = rounds
	uncachedChoice := make([]*plan.Plan, len(qs))
	sw := walltime.Start()
	for r := 0; r < rounds; r++ {
		for i := range qs {
			chosen, _, err := dep.Guard().ScoreLearned(cands[i], envs)
			if err != nil {
				return nil, fmt.Errorf("perf %s (uncached): %w", project, err)
			}
			uncachedChoice[i] = chosen
		}
	}
	uncachedSecs := sw.Seconds()
	res.Select.UncachedQPS = float64(rounds*len(qs)) / uncachedSecs

	res.Select.Identical = true
	for i := range qs { // warming pass + correctness check
		chosen, _, err := dep.Guard().ScoreLearnedKeyed(cands[i], envs, key)
		if err != nil {
			return nil, fmt.Errorf("perf %s (warming): %w", project, err)
		}
		if chosen != uncachedChoice[i] {
			res.Select.Identical = false
		}
	}
	sw = walltime.Start()
	for r := 0; r < rounds; r++ {
		for i := range qs {
			chosen, _, err := dep.Guard().ScoreLearnedKeyed(cands[i], envs, key)
			if err != nil {
				return nil, fmt.Errorf("perf %s (warm): %w", project, err)
			}
			if chosen != uncachedChoice[i] {
				res.Select.Identical = false
			}
		}
	}
	warmSecs := sw.Seconds()
	res.Select.WarmQPS = float64(rounds*len(qs)) / warmSecs
	if warmSecs > 0 {
		res.Select.RecurringSpeedup = uncachedSecs / warmSecs
	}
	e.Cfg.logf("perf %s: select uncached %.0f q/s, warm %.0f q/s (%.1fx), identical=%v",
		project, res.Select.UncachedQPS, res.Select.WarmQPS, res.Select.RecurringSpeedup,
		res.Select.Identical)

	// 3. End-to-end OptimizeBatch throughput (explorer + guard + scoring)
	// at fixed parallelism levels, cache warm.
	for _, par := range []int{1, 2, 4} {
		sw := walltime.Start()
		if _, err := dep.OptimizeBatch(ctx, qs, par); err != nil {
			return nil, fmt.Errorf("perf %s (batch %d): %w", project, par, err)
		}
		secs := sw.Seconds()
		row := PerfBatchRow{Parallelism: par, Seconds: secs, QPS: float64(len(qs)) / secs}
		res.Batch = append(res.Batch, row)
		e.Cfg.logf("perf %s: batch parallelism=%d %.0f q/s", project, par, row.QPS)
	}
	return res, nil
}

// Render prints the fast-path benchmark tables.
func (r *PerfResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Serving fast path — %d recurring queries on %q\n", r.Queries, r.Project)
	fmt.Fprintf(w, "PredictCost: %.0f ns/op, %.1f allocs/op (%d iters)\n",
		r.PredictCost.NsPerOp, r.PredictCost.AllocsPerOp, r.PredictCost.Iters)
	fmt.Fprintf(w, "SelectPlan:  uncached %.0f q/s, warm cache %.0f q/s, speedup %.2fx, identical choices: %v\n",
		r.Select.UncachedQPS, r.Select.WarmQPS, r.Select.RecurringSpeedup, r.Select.Identical)
	fmt.Fprintf(w, "%-12s %10s %10s\n", "parallelism", "seconds", "queries/s")
	for _, row := range r.Batch {
		fmt.Fprintf(w, "%-12d %10.3f %10.0f\n", row.Parallelism, row.Seconds, row.QPS)
	}
}
