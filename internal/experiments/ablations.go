package experiments

import (
	"fmt"
	"io"

	"loam/internal/encoding"
	"loam/internal/predictor"
)

// Ext2Result ablates the §3 design choice of predicting CPU cost rather
// than end-to-end latency: "latency ... is highly sensitive to transient
// system conditions ... and thus often noisy. Accordingly, LOAM predicts CPU
// cost as a more stable proxy." The ablation trains an otherwise identical
// predictor on latency labels and compares the E2E CPU cost of its plan
// selections.
type Ext2Result struct {
	Projects []Ext2Project
}

// Ext2Project is one project's label ablation.
type Ext2Project struct {
	Project string
	Native  float64
	// CostLabel and LatencyLabel are the average measured CPU costs of the
	// plans selected by the cost-trained and latency-trained predictors.
	CostLabel    float64
	LatencyLabel float64
}

// trainOn fits a LOAM predictor on the project's training window with a
// custom label extractor, and returns its selection rule.
func (e *Env) trainOn(project string, labelOf func(cost, latency float64) float64) (func(q *EvalQuery) int, error) {
	ps := e.Project(project)
	train, _ := ps.Repo.Split(e.Cfg.TrainDays, e.Cfg.TestDays, e.Cfg.MaxTrain)
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples := make([]predictor.Sample, len(train))
	for i, entry := range train {
		samples[i] = predictor.Sample{
			Plan: entry.Record.Plan,
			Envs: encoding.RecordEnv(entry.Record.NodeEnv),
			Cost: labelOf(entry.Record.CPUCost, entry.Record.LatencySec),
		}
	}
	pcfg := e.Cfg.predictorConfig(predictor.KindTCN)
	pcfg.Adapt = false // isolate the label effect; adaptation is orthogonal
	pred, err := predictor.Train(pcfg, enc, samples, nil)
	if err != nil {
		return nil, err
	}
	return pickWith(pred, predictor.StrategyMeanEnv, [4]float64{}, [4]float64{}), nil
}

// Ext2 runs the label ablation on the two highest-headroom projects.
func (e *Env) Ext2() (*Ext2Result, error) {
	res := &Ext2Result{}
	for _, name := range []string{"project2", "project5"} {
		pe := e.Eval(name)
		pr := Ext2Project{Project: name}
		for i := range pe.Queries {
			pr.Native += pe.Queries[i].Means[0]
		}
		if n := float64(len(pe.Queries)); n > 0 {
			pr.Native /= n
		}

		costPick, err := e.trainOn(name, func(cost, latency float64) float64 { return cost })
		if err != nil {
			return nil, err
		}
		latPick, err := e.trainOn(name, func(cost, latency float64) float64 { return latency })
		if err != nil {
			return nil, err
		}
		pr.CostLabel = evalMethod(pe, "cost-label", costPick).AvgCost
		pr.LatencyLabel = evalMethod(pe, "latency-label", latPick).AvgCost
		res.Projects = append(res.Projects, pr)
	}
	return res, nil
}

// Render prints the label ablation.
func (r *Ext2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation (§3) — Training label: CPU cost vs E2E latency")
	fmt.Fprintf(w, "%-10s %12s %12s %14s\n", "project", "MaxCompute", "cost-label", "latency-label")
	for _, p := range r.Projects {
		fmt.Fprintf(w, "%-10s %12.0f %12.0f %14.0f\n", p.Project, p.Native, p.CostLabel, p.LatencyLabel)
	}
}

// Ext3Result ablates the App.-B.1 design choice of multi-segment hash
// encoding for table/column identifiers against the naive single-segment
// encoding of the same total width, which collides systematically.
type Ext3Result struct {
	Projects []Ext3Project
}

// Ext3Project is one project's encoding ablation.
type Ext3Project struct {
	Project string
	Native  float64
	// MultiSegment and SingleSegment are average measured CPU costs of
	// selections by predictors using 5×8 and 1×40 identifier encodings.
	MultiSegment  float64
	SingleSegment float64
}

// Ext3 runs the encoding ablation on the two highest-headroom projects.
func (e *Env) Ext3() (*Ext3Result, error) {
	res := &Ext3Result{}
	for _, name := range []string{"project2", "project5"} {
		ps := e.Project(name)
		pe := e.Eval(name)
		pr := Ext3Project{Project: name}
		for i := range pe.Queries {
			pr.Native += pe.Queries[i].Means[0]
		}
		if n := float64(len(pe.Queries)); n > 0 {
			pr.Native /= n
		}

		train, _ := ps.Repo.Split(e.Cfg.TrainDays, e.Cfg.TestDays, e.Cfg.MaxTrain)
		for _, multi := range []bool{true, false} {
			ecfg := encoding.DefaultConfig() // 5 segments × 8
			if !multi {
				ecfg.Segments = 1
				ecfg.SegmentDim = 40 // same total width, one hash function
			}
			enc := encoding.NewEncoder(ecfg)
			samples := make([]predictor.Sample, len(train))
			for i, entry := range train {
				samples[i] = predictor.Sample{
					Plan: entry.Record.Plan,
					Envs: encoding.RecordEnv(entry.Record.NodeEnv),
					Cost: entry.Record.CPUCost,
				}
			}
			pcfg := e.Cfg.predictorConfig(predictor.KindTCN)
			pcfg.Adapt = false
			pred, err := predictor.Train(pcfg, enc, samples, nil)
			if err != nil {
				return nil, err
			}
			pick := pickWith(pred, predictor.StrategyMeanEnv, [4]float64{}, [4]float64{})
			avg := evalMethod(pe, "enc", pick).AvgCost
			if multi {
				pr.MultiSegment = avg
			} else {
				pr.SingleSegment = avg
			}
		}
		res.Projects = append(res.Projects, pr)
	}
	return res, nil
}

// Render prints the encoding ablation.
func (r *Ext3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation (App. B.1) — Identifier encoding: 5×8 multi-segment vs 1×40 single-segment")
	fmt.Fprintf(w, "%-10s %12s %14s %14s\n", "project", "MaxCompute", "multiSegment", "singleSegment")
	for _, p := range r.Projects {
		fmt.Fprintf(w, "%-10s %12.0f %14.0f %14.0f\n", p.Project, p.Native, p.MultiSegment, p.SingleSegment)
	}
}
