package experiments

import (
	"os"
	"testing"
)

// TestFig6Default runs the full end-to-end comparison at default scale
// (minutes); gated behind an env var so `go test ./...` stays fast.
func TestFig6Default(t *testing.T) {
	if os.Getenv("LOAM_FULL") == "" {
		t.Skip("set LOAM_FULL=1 to run the default-scale Fig6")
	}
	cfg := Default()
	cfg.Log = os.Stderr
	env := NewEnv(cfg)
	f6, err := env.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	f6.Render(os.Stderr)
	env.Fig7(f6).Render(os.Stderr)
	env.Fig9(f6).Render(os.Stderr)
	r11, err := env.Fig11(f6)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	r11.Render(os.Stderr)
}
