package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"loam"
	"loam/internal/query"
	"loam/internal/walltime"
)

// ServeResult measures the §7-style serving deployment: one trained LOAM
// instance steering a day's worth of queries through OptimizeBatch at
// increasing parallelism. Because plan scoring is read-only and per-query
// independent, throughput should scale with workers while every plan choice
// stays identical to the sequential run — both are reported.
type ServeResult struct {
	Project string
	Queries int
	Rows    []ServeRow
	// Identical is true when every parallel run chose exactly the plans the
	// sequential run chose, in the same order.
	Identical bool
}

// ServeRow is one parallelism level's measured throughput.
type ServeRow struct {
	Parallelism int
	Seconds     float64
	QPS         float64
	// Speedup is relative to the sequential (parallelism=1) run.
	Speedup float64
}

// Serve runs the serving-throughput experiment on the first evaluation
// project: train (or reuse) the default LOAM deployment, generate the test
// window's queries, and steer them with OptimizeBatch at parallelism 1, 2, 4
// and GOMAXPROCS.
func (e *Env) Serve(ctx context.Context) (*ServeResult, error) {
	project := e.projects[0].Config.Name
	dep, err := e.Deployment(project, LOAMVariant())
	if err != nil {
		return nil, err
	}
	ps := e.Project(project)

	var qs []*query.Query
	for day := e.Cfg.TrainDays; day < e.Cfg.TrainDays+e.Cfg.TestDays; day++ {
		qs = append(qs, ps.Gen.Day(day)...)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("serve %s: no test-window queries", project)
	}

	res := &ServeResult{Project: project, Queries: len(qs), Identical: true}

	levels := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		levels = append(levels, p)
	}
	var baseline []*loam.Choice
	var seqSeconds float64
	for _, par := range levels {
		sw := walltime.Start()
		choices, err := dep.OptimizeBatch(ctx, qs, par)
		if err != nil {
			return nil, fmt.Errorf("serve %s (parallelism %d): %w", project, par, err)
		}
		secs := sw.Seconds()
		if par == 1 {
			baseline = choices
			seqSeconds = secs
		} else {
			for i := range choices {
				if choices[i].ChosenIdx != baseline[i].ChosenIdx {
					res.Identical = false
				}
			}
		}
		row := ServeRow{Parallelism: par, Seconds: secs, QPS: float64(len(qs)) / secs}
		if secs > 0 {
			row.Speedup = seqSeconds / secs
		}
		res.Rows = append(res.Rows, row)
		e.Cfg.logf("serve %s: parallelism=%d %d queries in %.2fs (%.0f q/s)",
			project, par, len(qs), secs, row.QPS)
	}
	return res, nil
}

// Render prints the serving-throughput table.
func (r *ServeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Serving throughput (§7) — %d queries on %q, identical plan choices: %v\n",
		r.Queries, r.Project, r.Identical)
	fmt.Fprintf(w, "%-12s %10s %10s %9s\n", "parallelism", "seconds", "queries/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12d %10.3f %10.0f %8.2fx\n", row.Parallelism, row.Seconds, row.QPS, row.Speedup)
	}
}
