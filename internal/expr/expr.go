// Package expr models filtering predicates as expression trees, mirroring
// MaxCompute's representation described in the paper (§4, "Filtering and
// Related Operators"): internal nodes are functions (>, <, =, AND, ...) and
// leaves are columns and constants.
//
// The package also evaluates the *true* selectivity of a predicate against a
// column-distribution provider. The provider abstraction keeps expr free of a
// dependency on the warehouse package; the warehouse implements it from its
// hidden ground-truth column distributions, and the stats package implements
// it from the optimizer-visible (possibly stale) statistics.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Func identifies a predicate function. The set mirrors the common predicate
// functions encoded multi-hot by LOAM's plan vectorization.
type Func int

// Predicate functions. Comparison functions take a column and a constant;
// boolean connectives take sub-predicates.
const (
	FuncEQ Func = iota + 1
	FuncNE
	FuncLT
	FuncLE
	FuncGT
	FuncGE
	FuncIn
	FuncLike
	FuncBetween
	FuncIsNull
	FuncAnd
	FuncOr
	FuncNot
)

// NumFuncs is the number of distinct predicate functions, used by the
// multi-hot encoder.
const NumFuncs = int(FuncNot)

var funcNames = map[Func]string{
	FuncEQ:      "=",
	FuncNE:      "!=",
	FuncLT:      "<",
	FuncLE:      "<=",
	FuncGT:      ">",
	FuncGE:      ">=",
	FuncIn:      "IN",
	FuncLike:    "LIKE",
	FuncBetween: "BETWEEN",
	FuncIsNull:  "IS NULL",
	FuncAnd:     "AND",
	FuncOr:      "OR",
	FuncNot:     "NOT",
}

// String returns the SQL-ish spelling of the function.
func (f Func) String() string {
	if s, ok := funcNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// IsComparison reports whether f compares a column against constants (as
// opposed to combining sub-predicates).
func (f Func) IsComparison() bool {
	switch f {
	case FuncEQ, FuncNE, FuncLT, FuncLE, FuncGT, FuncGE, FuncIn, FuncLike, FuncBetween, FuncIsNull:
		return true
	default:
		return false
	}
}

// ColumnRef identifies a column by its globally unique table and column
// identifiers (the same identifiers the hash encoder consumes).
type ColumnRef struct {
	Table  string `json:"table"`
	Column string `json:"column"`
}

// String returns "table.column".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// Node is one node of a predicate expression tree.
//
// Comparison nodes have Col set and use Args as the constant operand(s):
// one value for =, !=, <, <=, >, >=; two for BETWEEN; k for IN. Constants are
// value *ranks* in the column's domain [0, NDV): the simulator's synthetic
// data identifies a value with its frequency rank under the column's
// distribution, which is all that selectivity arithmetic needs.
//
// Connective nodes (AND, OR, NOT) use Children.
type Node struct {
	Fn       Func      `json:"fn"`
	Col      ColumnRef `json:"col,omitempty"`
	Args     []float64 `json:"args,omitempty"`
	Children []*Node   `json:"children,omitempty"`
}

// Compare builds a comparison node fn(col, args...).
func Compare(fn Func, col ColumnRef, args ...float64) *Node {
	return &Node{Fn: fn, Col: col, Args: args}
}

// And conjoins sub-predicates. nil children are dropped; a single child is
// returned unwrapped; an empty conjunction returns nil (TRUE).
func And(children ...*Node) *Node { return connective(FuncAnd, children) }

// Or disjoins sub-predicates with the same normalization rules as And.
func Or(children ...*Node) *Node { return connective(FuncOr, children) }

func connective(fn Func, children []*Node) *Node {
	kept := make([]*Node, 0, len(children))
	for _, c := range children {
		if c != nil {
			kept = append(kept, c)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return &Node{Fn: fn, Children: kept}
	}
}

// Not negates a sub-predicate.
func Not(child *Node) *Node {
	if child == nil {
		return nil
	}
	return &Node{Fn: FuncNot, Children: []*Node{child}}
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Fn: n.Fn, Col: n.Col}
	if len(n.Args) > 0 {
		out.Args = append([]float64(nil), n.Args...)
	}
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Size returns the number of nodes in the tree. A nil predicate has size 0.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the height of the tree (1 for a single node, 0 for nil).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > best {
			best = d
		}
	}
	return best + 1
}

// Funcs returns the set of functions appearing in the tree, sorted. This is
// the input to the plan encoder's multi-hot function feature.
func (n *Node) Funcs() []Func {
	seen := map[Func]bool{}
	n.walk(func(m *Node) { seen[m.Fn] = true })
	out := make([]Func, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Columns returns the distinct columns referenced by the tree, sorted by
// their string form. This is the input to the encoder's column hash feature.
func (n *Node) Columns() []ColumnRef {
	seen := map[ColumnRef]bool{}
	n.walk(func(m *Node) {
		if m.Fn.IsComparison() {
			seen[m.Col] = true
		}
	})
	out := make([]ColumnRef, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (n *Node) walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.walk(fn)
	}
}

// String renders the predicate in SQL-ish infix form.
func (n *Node) String() string {
	if n == nil {
		return "TRUE"
	}
	switch n.Fn {
	case FuncAnd, FuncOr:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " "+n.Fn.String()+" ") + ")"
	case FuncNot:
		return "NOT (" + n.Children[0].String() + ")"
	case FuncBetween:
		return fmt.Sprintf("%s BETWEEN %g AND %g", n.Col, arg(n.Args, 0), arg(n.Args, 1))
	case FuncIn:
		vals := make([]string, len(n.Args))
		for i, v := range n.Args {
			vals[i] = fmt.Sprintf("%g", v)
		}
		return fmt.Sprintf("%s IN (%s)", n.Col, strings.Join(vals, ", "))
	case FuncIsNull:
		return fmt.Sprintf("%s IS NULL", n.Col)
	default:
		return fmt.Sprintf("%s %s %g", n.Col, n.Fn, arg(n.Args, 0))
	}
}

func arg(args []float64, i int) float64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

// DistProvider supplies per-column selectivity for atomic comparisons. The
// warehouse implements this over ground-truth distributions; the stats view
// implements it over (possibly stale or missing) optimizer statistics.
type DistProvider interface {
	// CompareSelectivity returns the fraction of rows satisfying
	// fn(col, args...), in [0,1].
	CompareSelectivity(col ColumnRef, fn Func, args []float64) float64
}

// Selectivity evaluates the tree's selectivity against dist using the
// standard independence assumptions: conjunctions multiply, disjunctions use
// inclusion-exclusion pairwise-independence, negation complements. A nil
// predicate is TRUE (selectivity 1).
func Selectivity(n *Node, dist DistProvider) float64 {
	if n == nil {
		return 1
	}
	switch n.Fn {
	case FuncAnd:
		s := 1.0
		for _, c := range n.Children {
			s *= Selectivity(c, dist)
		}
		return clamp01(s)
	case FuncOr:
		// P(A or B or ...) under independence = 1 - prod(1 - P_i).
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - Selectivity(c, dist)
		}
		return clamp01(1 - q)
	case FuncNot:
		return clamp01(1 - Selectivity(n.Children[0], dist))
	default:
		return clamp01(dist.CompareSelectivity(n.Col, n.Fn, n.Args))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
