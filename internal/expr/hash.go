package expr

import "math"

// Hash is an inline FNV-1a 64-bit accumulator for the zero-allocation
// structural hashes used on the serving hot path (predicate hashing here,
// plan fingerprinting in internal/plan). The stdlib hash/fnv writer escapes
// to the heap behind its interface and forces callers to build intermediate
// strings; this value type folds fields in directly. Hash values are
// compared only within a process (dedup maps, cache keys) and are not a
// stable serialization format.
type Hash uint64

const (
	fnvOffset64 = 14695981039346269237
	fnvPrime64  = 1099511628211
)

// NewHash returns the FNV-1a offset basis.
func NewHash() Hash { return fnvOffset64 }

// Byte folds one byte.
func (h Hash) Byte(b byte) Hash { return (h ^ Hash(b)) * fnvPrime64 }

// Str folds the string's bytes plus a NUL terminator, so consecutive
// strings can't alias across their boundary.
func (h Hash) Str(s string) Hash {
	for i := 0; i < len(s); i++ {
		h = (h ^ Hash(s[i])) * fnvPrime64
	}
	return h.Byte(0)
}

// Uint64 folds v least-significant byte first (little-endian order).
func (h Hash) Uint64(v uint64) Hash {
	for i := 0; i < 8; i++ {
		h = (h ^ Hash(v&0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// Int folds a signed integer.
func (h Hash) Int(v int) Hash { return h.Uint64(uint64(int64(v))) }

// Float folds a float64 by its IEEE-754 bits.
func (h Hash) Float(f float64) Hash { return h.Uint64(math.Float64bits(f)) }

// AppendHash folds "table.column" (componentwise, no string building).
func (c ColumnRef) AppendHash(h Hash) Hash { return h.Str(c.Table).Str(c.Column) }

// AppendHash folds the predicate's structure — function, column, constant
// operands, children — in preorder. It distinguishes nil from present
// sub-predicates with a leading presence byte and never renders the tree to
// a string, so hashing a predicate allocates nothing.
func (n *Node) AppendHash(h Hash) Hash {
	if n == nil {
		return h.Byte(0)
	}
	h = h.Byte(1).Int(int(n.Fn))
	h = n.Col.AppendHash(h)
	h = h.Int(len(n.Args))
	for _, v := range n.Args {
		h = h.Float(v)
	}
	h = h.Int(len(n.Children))
	for _, c := range n.Children {
		h = c.AppendHash(h)
	}
	return h
}
