package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

var colA = ColumnRef{Table: "t1", Column: "a"}
var colB = ColumnRef{Table: "t1", Column: "b"}

// constDist returns fixed selectivities per column for testing the
// combinator arithmetic.
type constDist map[ColumnRef]float64

func (d constDist) CompareSelectivity(col ColumnRef, fn Func, args []float64) float64 {
	if s, ok := d[col]; ok {
		return s
	}
	return 1
}

func TestAndNormalization(t *testing.T) {
	if And() != nil {
		t.Fatal("empty And should be nil")
	}
	single := Compare(FuncEQ, colA, 1)
	if got := And(nil, single, nil); got != single {
		t.Fatal("single-child And should unwrap")
	}
	both := And(Compare(FuncEQ, colA, 1), Compare(FuncLT, colB, 2))
	if both.Fn != FuncAnd || len(both.Children) != 2 {
		t.Fatalf("And structure wrong: %v", both)
	}
}

func TestOrNotNormalization(t *testing.T) {
	if Or() != nil || Not(nil) != nil {
		t.Fatal("nil handling broken")
	}
	n := Not(Compare(FuncEQ, colA, 1))
	if n.Fn != FuncNot || len(n.Children) != 1 {
		t.Fatal("Not structure wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := And(Compare(FuncIn, colA, 1, 2, 3), Compare(FuncLT, colB, 5))
	clone := orig.Clone()
	clone.Children[0].Args[0] = 99
	clone.Children[1].Col = ColumnRef{Table: "x", Column: "y"}
	if orig.Children[0].Args[0] != 1 {
		t.Fatal("clone shares Args")
	}
	if orig.Children[1].Col != colB {
		t.Fatal("clone shares Col")
	}
}

func TestSizeAndDepth(t *testing.T) {
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 {
		t.Fatal("nil size/depth")
	}
	leaf := Compare(FuncEQ, colA, 1)
	if leaf.Size() != 1 || leaf.Depth() != 1 {
		t.Fatal("leaf size/depth")
	}
	tree := And(leaf, Or(Compare(FuncLT, colB, 1), Compare(FuncGT, colB, 2)))
	if tree.Size() != 5 {
		t.Fatalf("size %d", tree.Size())
	}
	if tree.Depth() != 3 {
		t.Fatalf("depth %d", tree.Depth())
	}
}

func TestFuncsCollected(t *testing.T) {
	tree := And(Compare(FuncEQ, colA, 1), Not(Compare(FuncLike, colB, 2)))
	fns := tree.Funcs()
	want := []Func{FuncEQ, FuncLike, FuncAnd, FuncNot}
	if len(fns) != len(want) {
		t.Fatalf("funcs %v", fns)
	}
	set := map[Func]bool{}
	for _, f := range fns {
		set[f] = true
	}
	for _, f := range want {
		if !set[f] {
			t.Fatalf("missing %v in %v", f, fns)
		}
	}
}

func TestColumnsDistinctSorted(t *testing.T) {
	tree := And(Compare(FuncEQ, colB, 1), Compare(FuncLT, colA, 2), Compare(FuncGE, colB, 0))
	cols := tree.Columns()
	if len(cols) != 2 || cols[0] != colA || cols[1] != colB {
		t.Fatalf("columns %v", cols)
	}
}

func TestSelectivityNil(t *testing.T) {
	if Selectivity(nil, constDist{}) != 1 {
		t.Fatal("nil predicate should be TRUE")
	}
}

func TestSelectivityAndMultiplies(t *testing.T) {
	d := constDist{colA: 0.5, colB: 0.2}
	got := Selectivity(And(Compare(FuncEQ, colA, 0), Compare(FuncEQ, colB, 0)), d)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("AND selectivity %g", got)
	}
}

func TestSelectivityOrInclusionExclusion(t *testing.T) {
	d := constDist{colA: 0.5, colB: 0.2}
	got := Selectivity(Or(Compare(FuncEQ, colA, 0), Compare(FuncEQ, colB, 0)), d)
	want := 1 - 0.5*0.8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("OR selectivity %g, want %g", got, want)
	}
}

func TestSelectivityNotComplements(t *testing.T) {
	d := constDist{colA: 0.3}
	got := Selectivity(Not(Compare(FuncEQ, colA, 0)), d)
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("NOT selectivity %g", got)
	}
}

func TestSelectivityAlwaysInUnitInterval(t *testing.T) {
	if err := quick.Check(func(sa, sb float64, negate bool) bool {
		d := constDist{colA: math.Abs(math.Mod(sa, 2)), colB: math.Abs(math.Mod(sb, 2))}
		tree := And(Compare(FuncEQ, colA, 0), Or(Compare(FuncLT, colB, 1), Compare(FuncGT, colB, 2)))
		if negate {
			tree = Not(tree)
		}
		s := Selectivity(tree, d)
		return s >= 0 && s <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	tree := And(
		Compare(FuncBetween, colA, 1, 5),
		Compare(FuncIn, colB, 1, 2),
		Not(Compare(FuncIsNull, colA)),
	)
	s := tree.String()
	for _, want := range []string{"BETWEEN", "IN (1, 2)", "NOT", "IS NULL", "AND"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering %q missing %q", s, want)
		}
	}
	var nilNode *Node
	if nilNode.String() != "TRUE" {
		t.Fatal("nil should render TRUE")
	}
}

func TestIsComparison(t *testing.T) {
	for _, f := range []Func{FuncEQ, FuncNE, FuncLT, FuncLE, FuncGT, FuncGE, FuncIn, FuncLike, FuncBetween, FuncIsNull} {
		if !f.IsComparison() {
			t.Fatalf("%v should be comparison", f)
		}
	}
	for _, f := range []Func{FuncAnd, FuncOr, FuncNot} {
		if f.IsComparison() {
			t.Fatalf("%v should not be comparison", f)
		}
	}
}

func TestFuncStrings(t *testing.T) {
	if FuncEQ.String() != "=" || FuncLike.String() != "LIKE" {
		t.Fatal("func names wrong")
	}
	if !strings.Contains(Func(99).String(), "99") {
		t.Fatal("unknown func should include number")
	}
}
