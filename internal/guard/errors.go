package guard

import (
	"errors"

	"loam/internal/predictor"
)

// The failure taxonomy. Every learned-path failure the guard observes is
// classified into exactly one of two classes, both re-exported as sentinels
// from the root loam package so callers can errors.Is against them:
//
//   - ErrTransient: the failure is expected to clear without intervention —
//     a deadline hit, an injected fault, a breaker rejection during an
//     outage. Transient failures feed the circuit breaker's sliding window.
//   - ErrPermanent: the failure is deterministic for this query or model —
//     the explorer produced no candidates, or no candidate had a finite
//     estimate. Retrying the same query against the same model cannot help.
//
// Specific causes (deadline, breaker-open, quarantine) are separate
// sentinels wrapped alongside the class, so both
// errors.Is(err, ErrTransient) and errors.Is(err, ErrDeadline) hold for a
// classified deadline failure.
var (
	// ErrTransient classifies failures likely to clear on their own.
	ErrTransient = errors.New("guard: transient learned-path failure")
	// ErrPermanent classifies failures deterministic for the query or model.
	ErrPermanent = errors.New("guard: permanent learned-path failure")
	// ErrDeadline reports the learned path exceeding its per-query deadline.
	ErrDeadline = errors.New("guard: learned-path deadline exceeded")
	// ErrBreakerOpen reports the learned path being skipped because the
	// circuit breaker is open (cooling down after repeated failures).
	ErrBreakerOpen = errors.New("guard: circuit breaker open")
	// ErrQuarantined reports the model being quarantined by the regression
	// sentinel (learned estimates diverged adversely from native ones).
	ErrQuarantined = errors.New("guard: model quarantined by regression sentinel")
	// ErrNoServablePlan is returned only when every rung of the fallback
	// ladder — learned, native re-plan, default candidate — failed.
	ErrNoServablePlan = errors.New("guard: no servable plan")
	// ErrLoadShed reports a query degraded to the fallback ladder by an
	// admission gate (the fleet registry's token buckets) before the learned
	// path ran. Shedding is a resource decision, not a model failure: it
	// never charges the breaker and takes no sentinel sample.
	ErrLoadShed = errors.New("guard: load shed by admission control")
)

// failure is a classified learned-path error: the class sentinel
// (ErrTransient/ErrPermanent) plus the concrete cause, both reachable
// through errors.Is via multi-error Unwrap.
type failure struct {
	class error
	cause error
}

func (f *failure) Error() string { return f.class.Error() + ": " + f.cause.Error() }

func (f *failure) Unwrap() []error { return []error{f.class, f.cause} }

// classify wraps a raw learned-path error with its taxonomy class.
func classify(err error) *failure {
	if errors.Is(err, predictor.ErrNoCandidates) || errors.Is(err, predictor.ErrNoFiniteEstimate) {
		return &failure{class: ErrPermanent, cause: err}
	}
	return &failure{class: ErrTransient, cause: err}
}

// countsTowardBreaker reports whether a failure is evidence of model
// ill-health. An empty candidate set indicts the explorer (or the query),
// not the learned scorer, so it falls back without charging the breaker;
// everything else — errors, deadline hits, NaN estimates — does.
func countsTowardBreaker(cause error) bool {
	return !errors.Is(cause, predictor.ErrNoCandidates)
}
