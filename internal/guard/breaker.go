package guard

// BreakerState is the circuit breaker's position. The zero value is
// BreakerClosed (healthy: learned path serves).
type BreakerState int

const (
	// BreakerClosed admits every call to the learned path.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects the learned path while the cooldown runs down.
	BreakerOpen
	// BreakerHalfOpen admits probe calls; enough consecutive successes
	// close the breaker, any failure reopens it.
	BreakerHalfOpen
)

// String renders the state for logs and experiment tables.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the closed → open → half-open state machine. It is clocked by
// guarded serve calls — a logical, simulation-aligned step counter — never
// by wall time, so same-seed runs trip, cool down and recover on exactly the
// same call numbers regardless of machine speed (the determinism contract;
// see DESIGN.md "Degraded-mode serving contract"). All fields are guarded by
// the owning Guard's mutex.
type breaker struct {
	cfg Config

	state BreakerState
	// window is a ring of recent learned-path outcomes (true = failure)
	// while closed; fails counts the failures currently inside it.
	window []bool
	wpos   int
	wlen   int
	fails  int
	// cooldown is the number of serve steps left before an open breaker
	// starts probing.
	cooldown int
	// probes counts consecutive half-open successes.
	probes int
}

func newBreaker(cfg Config) breaker {
	return breaker{cfg: cfg, window: make([]bool, cfg.WindowSize)}
}

// tick advances the breaker's logical clock by one serve call and reports
// whether the learned path is admitted, plus whether this tick transitioned
// open → half-open (for telemetry).
func (b *breaker) tick() (admit, toHalfOpen bool) {
	if b.state != BreakerOpen {
		return true, false
	}
	b.cooldown--
	if b.cooldown > 0 {
		return false, false
	}
	b.state = BreakerHalfOpen
	b.probes = 0
	return true, true
}

// push records one closed-state outcome into the sliding window.
func (b *breaker) push(fail bool) {
	if b.wlen == len(b.window) {
		if b.window[b.wpos] {
			b.fails--
		}
	} else {
		b.wlen++
	}
	b.window[b.wpos] = fail
	b.wpos = (b.wpos + 1) % len(b.window)
	if fail {
		b.fails++
	}
}

// resetWindow clears the sliding window (on close).
func (b *breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.wpos, b.wlen, b.fails = 0, 0, 0
}

// recordSuccess registers a learned-path success; it reports whether the
// breaker closed on this call (half-open probes satisfied).
func (b *breaker) recordSuccess() (closed bool) {
	switch b.state {
	case BreakerHalfOpen:
		b.probes++
		if b.probes >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.resetWindow()
			return true
		}
	case BreakerClosed:
		b.push(false)
	}
	return false
}

// recordFailure registers a breaker-counting learned-path failure; it
// reports whether the breaker opened on this call (window tripped, or a
// half-open probe failed).
func (b *breaker) recordFailure() (opened bool) {
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.cooldown = b.cfg.CooldownSteps
		return true
	case BreakerClosed:
		b.push(true)
		if b.fails >= b.cfg.TripThreshold {
			b.state = BreakerOpen
			b.cooldown = b.cfg.CooldownSteps
			b.resetWindow()
			return true
		}
	}
	return false
}
