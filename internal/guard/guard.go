// Package guard is the degraded-mode serving layer between the deployment
// API and the learned predictor: the reason a mis-trained or unhealthy model
// can never take serving availability down with it.
//
// Every OptimizeCtx/OptimizeBatch call routes through Guard.Serve, which
//
//  1. enforces a per-query deadline on the learned path (a wall-clock
//     watchdog for genuine hangs; deterministic deadline testing goes
//     through internal/faultinject's simulated delays),
//  2. classifies failures into the transient/permanent taxonomy
//     (errors.go), re-exported as root-package sentinels,
//  3. falls back on any learned-path failure: first a fresh native-optimizer
//     plan, then the explorer's default candidate — so a valid plan is
//     served unless every rung fails,
//  4. wraps the learned path in a circuit breaker (closed → open →
//     half-open) over a sliding failure window, cooled down in logical
//     serve steps rather than wall time, and
//  5. runs a regression sentinel that quarantines the model when learned
//     choices diverge adversely from the native optimizer's judgment for
//     K consecutive windows (the Bao/QO-advisor guardrail pattern).
//
// Every decision is counted through guard.* telemetry; all counts are
// order-independent, so same-seed runs snapshot byte-identically whenever
// the per-query outcome set is deterministic (injection rates 0 or 1, or
// sequential serving).
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"loam/internal/encoding"
	"loam/internal/faultinject"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/telemetry"
	"loam/internal/walltime"
)

// Origin labels which rung of the serving ladder produced a plan.
type Origin int

const (
	// OriginLearned: the learned predictor's choice served.
	OriginLearned Origin = iota
	// OriginNativeFallback: the native optimizer re-planned the query after
	// a learned-path failure.
	OriginNativeFallback
	// OriginDefaultFallback: the explorer's default candidate served as the
	// last resort.
	OriginDefaultFallback
)

// String renders the origin as its stable label.
func (o Origin) String() string {
	switch o {
	case OriginNativeFallback:
		return "native-fallback"
	case OriginDefaultFallback:
		return "default-fallback"
	default:
		return "learned"
	}
}

// Config tunes the guard. The zero value is normalized by New to
// DefaultConfig's settings field-by-field.
type Config struct {
	// Deadline bounds real scoring time per query (<= 0 disables the
	// watchdog). It is the one wall-clock input: on a healthy run scoring
	// finishes orders of magnitude sooner, so expiry only changes behavior
	// on runs that were already hung.
	Deadline time.Duration
	// WindowSize is the sliding failure window over recent learned calls.
	WindowSize int
	// TripThreshold opens the breaker when this many failures sit in the
	// window.
	TripThreshold int
	// CooldownSteps is how many serve calls an open breaker rejects before
	// probing (logical steps, not wall time — see breaker.go).
	CooldownSteps int
	// HalfOpenProbes is how many consecutive successful probes close a
	// half-open breaker.
	HalfOpenProbes int
	// DivergenceBand is the regression sentinel's tolerance: a learned
	// choice is adverse when its native rough cost exceeds the default
	// plan's by more than this factor.
	DivergenceBand float64
	// DivergenceWindow is how many learned choices form one sentinel
	// window; a window is adverse when a majority of its samples are.
	DivergenceWindow int
	// QuarantineWindows is how many consecutive adverse windows quarantine
	// the model.
	QuarantineWindows int
}

// DefaultConfig returns serving-scale guard settings.
func DefaultConfig() Config {
	return Config{
		Deadline:          2 * time.Second,
		WindowSize:        16,
		TripThreshold:     8,
		CooldownSteps:     32,
		HalfOpenProbes:    3,
		DivergenceBand:    3,
		DivergenceWindow:  16,
		QuarantineWindows: 3,
	}
}

// normalize fills zero fields from the defaults (Deadline excepted: 0 there
// legitimately means "no watchdog").
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.WindowSize <= 0 {
		c.WindowSize = d.WindowSize
	}
	if c.TripThreshold <= 0 {
		c.TripThreshold = d.TripThreshold
	}
	if c.CooldownSteps <= 0 {
		c.CooldownSteps = d.CooldownSteps
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	if c.DivergenceBand <= 0 {
		c.DivergenceBand = d.DivergenceBand
	}
	if c.DivergenceWindow <= 0 {
		c.DivergenceWindow = d.DivergenceWindow
	}
	if c.QuarantineWindows <= 0 {
		c.QuarantineWindows = d.QuarantineWindows
	}
	return c
}

// Scorer is the learned path: predictor.Predictor implements it, tests stub
// it.
type Scorer interface {
	SelectPlan(cands []*plan.Plan, envs encoding.EnvSource) (*plan.Plan, []float64, error)
}

// KeyedScorer is the cache-eligible learned path: a scorer that also accepts
// the environment key identifying the request's EnvSource, unlocking the
// predictor's plan-embedding cache. predictor.Predictor implements it; plain
// Scorer stubs keep working and simply serve uncached.
type KeyedScorer interface {
	Scorer
	SelectPlanKeyed(cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey) (*plan.Plan, []float64, error)
}

// Request is one query's serving context.
type Request struct {
	// ID is the stable query identifier; it keys fault-injection decisions.
	ID string
	// Day is the simulated day, used for native rough-cost lookups.
	Day int
	// Query is the query itself, re-planned by the native fallback rung.
	Query *query.Query
	// Cands are the explorer's candidates; index 0, when present, is the
	// default plan (the last-resort rung).
	Cands []*plan.Plan
	// Envs is the resolved environment source for learned scoring.
	Envs encoding.EnvSource
	// EnvKey is the hashable identity of Envs, when it has one. A keyed
	// request lets a KeyedScorer reuse cached plan embeddings; the zero
	// (unkeyed) value always scores uncached. Callers must keep EnvKey in
	// lockstep with Envs — a stale key would pin wrong embeddings.
	EnvKey encoding.EnvKey
}

// Result is a guarded serving outcome: a plan, where it came from, and — for
// fallbacks — the classified failure that pushed serving off the learned
// path.
type Result struct {
	Chosen    *plan.Plan
	Estimates []float64
	Origin    Origin
	// FallbackCause is non-nil iff Origin != OriginLearned; it wraps both a
	// taxonomy class (ErrTransient/ErrPermanent) and the concrete cause.
	FallbackCause error
}

// Options wires a Guard.
type Options struct {
	Config Config
	// Scorer is the learned path (required).
	Scorer Scorer
	// Native re-plans a query with the native optimizer, independent of the
	// candidate set; nil disables the first fallback rung.
	Native func(q *query.Query) *plan.Plan
	// Rough returns the native optimizer's rough cost of a plan against a
	// day's statistics; nil disables the regression sentinel.
	Rough func(day int, p *plan.Plan) float64
	// Injector forces faults for tests and chaos experiments; nil is a
	// no-op.
	Injector *faultinject.Injector
	// Metrics receives the guard.* instruments.
	Metrics *telemetry.Registry
	// CoalesceWindow, when > 1, enables cross-query micro-batching on the
	// learned path: up to this many concurrent Serve calls are coalesced into
	// one fused scoring pass when the scorer supports batch scoring (see
	// coalesce.go). ≤ 1 disables coalescing (the default).
	CoalesceWindow int
}

// Guard is the guarded serving gate. It is safe for concurrent use: the
// scorer, breaker, sentinel and quarantine state live behind one mutex, and
// everything else is read-only after New.
type Guard struct {
	cfg    Config
	native func(q *query.Query) *plan.Plan
	rough  func(day int, p *plan.Plan) float64
	inj    *faultinject.Injector
	tel    guardTelemetry
	// onQuarantine, when set, is invoked (outside the guard's mutex, on the
	// serving goroutine that observed the trip) each time the regression
	// sentinel quarantines the scorer — the model-lifecycle drift signal.
	// Set via SetDriftHook before serving starts.
	onQuarantine func()
	// coal is the asynchronous micro-batch coalescer (nil when coalescing is
	// disabled); sb is ServeBatch's private flush scratch, serialized by
	// ServeBatch's single-driver contract.
	coal *coalescer
	sb   batchScratch

	mu sync.Mutex
	// scorer is the live learned path. It is mutable: the model lifecycle
	// hot-swaps it on promote and rollback (SwapScorer); every read goes
	// through currentScorer.
	scorer      Scorer
	br          breaker
	quarantined bool
	// Sentinel window accumulation: samples and adverse samples in the
	// current window, plus the consecutive-adverse-window run length.
	winN, winAdverse, adverseRun int
}

// New builds a guard from options (Config normalized via DefaultConfig).
func New(o Options) *Guard {
	cfg := o.Config.normalize()
	g := &Guard{
		cfg:    cfg,
		scorer: o.Scorer,
		native: o.Native,
		rough:  o.Rough,
		inj:    o.Injector,
		tel:    newGuardTelemetry(o.Metrics),
		br:     newBreaker(cfg),
	}
	if o.CoalesceWindow > 1 {
		g.coal = &coalescer{window: o.CoalesceWindow}
	}
	return g
}

// Config returns the guard's normalized configuration.
func (g *Guard) Config() Config { return g.cfg }

// SetDriftHook registers fn to run whenever the regression sentinel
// quarantines the scorer. The hook runs outside the guard's mutex on the
// serving goroutine that observed the trip, so it may call back into the
// guard (SwapScorer, Quarantined); it must be fast and must not block. Set
// it before serving starts — it is not safe to change concurrently with
// Serve. The model lifecycle uses it to turn "quarantine and stall" into
// "trigger retrain".
func (g *Guard) SetDriftHook(fn func()) { g.onQuarantine = fn }

// currentScorer returns the live scorer.
func (g *Guard) currentScorer() Scorer {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.scorer
}

// SwapScorer atomically replaces the learned path with s — the model
// lifecycle's hot-swap seam (promote and rollback both land here). The new
// scorer starts with a clean health record: the breaker closes, the sentinel
// windows clear, and any quarantine is released (counted in
// guard.quarantine.released) — the old model's divergence history says
// nothing about the new model. A nil s is ignored. Do not call this outside
// the lifecycle seam; loam-vet's guarddiscipline enforces that swaps happen
// only there.
func (g *Guard) SwapScorer(s Scorer) {
	if s == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.scorer = s
	g.br = newBreaker(g.cfg)
	g.winN, g.winAdverse, g.adverseRun = 0, 0, 0
	if g.quarantined {
		g.quarantined = false
		g.tel.quarantineReleased.Inc()
	}
	g.tel.breakerState.Set(float64(BreakerClosed))
	g.tel.quarantineActive.Set(0)
}

// State returns the breaker's current position.
func (g *Guard) State() BreakerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.br.state
}

// Quarantined reports whether the regression sentinel has quarantined the
// model. Quarantine is sticky: like the production guardrail it models, a
// quarantined model stays fenced until an operator retrains or Resets.
func (g *Guard) Quarantined() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quarantined
}

// Reset returns the guard to its initial state: breaker closed, windows
// empty, quarantine lifted (counted in guard.quarantine.released, like a
// lifecycle-driven release). The operator-intervention path.
func (g *Guard) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.br = newBreaker(g.cfg)
	if g.quarantined {
		g.quarantined = false
		g.tel.quarantineReleased.Inc()
	}
	g.winN, g.winAdverse, g.adverseRun = 0, 0, 0
	g.tel.breakerState.Set(float64(BreakerClosed))
	g.tel.quarantineActive.Set(0)
}

// Serve runs one query through the guarded ladder. It returns an error only
// for caller cancellation (ctx.Err(), passed through unwrapped so batch
// cancellation semantics are unchanged) or when every rung failed
// (ErrNoServablePlan); every other learned-path failure degrades to a
// fallback Result instead.
func (g *Guard) Serve(ctx context.Context, req Request) (Result, error) {
	g.tel.serveTotal.Inc()
	if g.inj.LoadSpike(req.ID) {
		g.tel.injSpike.Inc()
	}
	admit, blocked := g.admit()
	if !admit {
		return g.fallback(req, blocked)
	}
	chosen, costs, err := g.score(ctx, req)
	if err == nil {
		g.observeLearned(req, chosen)
		g.tel.serveLearned.Inc()
		return Result{Chosen: chosen, Estimates: costs, Origin: OriginLearned}, nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		// Caller cancellation is not a model failure: no fallback (the
		// caller no longer wants a plan) and no breaker charge.
		return Result{}, err
	}
	f := classify(err)
	g.recordFailure(f)
	return g.fallback(req, f)
}

// ServeShed serves one query entirely from the fallback ladder — the load-
// shedding rung the fleet registry's admission gate degrades over-budget
// tenants to. The learned path never runs, so shedding costs no model time;
// the breaker is not charged and the sentinel takes no sample, because a
// shed is a resource decision, not evidence of model ill-health. cause (the
// admission gate's reason, e.g. the fleet's throttle sentinel) is wrapped
// under ErrLoadShed and ErrTransient in the Result's FallbackCause, so
// callers can errors.Is against any of the three.
func (g *Guard) ServeShed(req Request, cause error) (Result, error) {
	g.tel.serveTotal.Inc()
	g.tel.serveShed.Inc()
	shed := error(ErrLoadShed)
	if cause != nil {
		shed = fmt.Errorf("%w: %w", ErrLoadShed, cause)
	}
	return g.fallback(req, &failure{class: ErrTransient, cause: shed})
}

// ScoreLearned scores candidates on the raw learned path — no breaker, no
// fallback, no injection. It exists for the pre-deployment validation gate
// (loam.Validate), which must observe the model's unmasked behavior; serving
// traffic goes through Serve. This and the predictor's own internals are the
// only sanctioned SelectPlan call sites (loam-vet's guarddiscipline rule).
func (g *Guard) ScoreLearned(cands []*plan.Plan, envs encoding.EnvSource) (*plan.Plan, []float64, error) {
	return g.currentScorer().SelectPlan(cands, envs)
}

// ScoreLearnedKeyed is ScoreLearned for a keyed environment source: when the
// scorer supports keyed scoring the predictor's plan-embedding cache applies,
// which is what serving benchmarks measure. Results are bit-identical to
// ScoreLearned either way.
func (g *Guard) ScoreLearnedKeyed(cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey) (*plan.Plan, []float64, error) {
	scorer := g.currentScorer()
	if ks, ok := scorer.(KeyedScorer); ok && key.Keyed {
		return ks.SelectPlanKeyed(cands, envs, key)
	}
	return scorer.SelectPlan(cands, envs)
}

// selectLearned routes one request to the live scorer, using the keyed entry
// point when both the scorer and the request support it. The scorer is read
// once per call: a request concurrent with a lifecycle swap scores entirely
// under one model or the other, never a mixture.
func (g *Guard) selectLearned(req Request) (*plan.Plan, []float64, error) {
	scorer := g.currentScorer()
	if c := g.coal; c != nil {
		if bs, ok := scorer.(BatchScorer); ok {
			return c.selectCoalesced(g, bs, req)
		}
	}
	if ks, ok := scorer.(KeyedScorer); ok && req.EnvKey.Keyed {
		return ks.SelectPlanKeyed(req.Cands, req.Envs, req.EnvKey)
	}
	return scorer.SelectPlan(req.Cands, req.Envs)
}

// admit ticks the breaker's logical clock and decides whether the learned
// path runs for this call.
func (g *Guard) admit() (bool, *failure) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.quarantined {
		return false, &failure{class: ErrPermanent, cause: ErrQuarantined}
	}
	admit, toHalfOpen := g.br.tick()
	if toHalfOpen {
		g.tel.breakerHalfOpened.Inc()
		g.tel.breakerState.Set(float64(BreakerHalfOpen))
	}
	if !admit {
		return false, &failure{class: ErrTransient, cause: ErrBreakerOpen}
	}
	return true, nil
}

// score runs the learned path with fault injection and the deadline
// watchdog.
func (g *Guard) score(ctx context.Context, req Request) (*plan.Plan, []float64, error) {
	if g.inj.PredictorError(req.ID) {
		g.tel.injPredictor.Inc()
		return nil, nil, fmt.Errorf("%w: forced predictor error", faultinject.ErrInjected)
	}
	if g.inj.Delay(req.ID) {
		// Simulated stall: treated as a deadline hit without arming a real
		// timer, so deadline behavior is testable deterministically.
		g.tel.injDelay.Inc()
		return nil, nil, fmt.Errorf("%w: %w", faultinject.ErrInjected, ErrDeadline)
	}
	chosen, costs, err := g.scoreWithWatchdog(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if g.inj.CorruptNaN(req.ID) {
		g.tel.injNaN.Inc()
		nan := make([]float64, len(costs))
		for i := range nan {
			nan[i] = math.NaN()
		}
		return nil, nan, fmt.Errorf("%w: %w", faultinject.ErrInjected, predictor.ErrNoFiniteEstimate)
	}
	return chosen, costs, nil
}

// scoreWithWatchdog calls the scorer under the per-query deadline. The
// scorer runs in its own goroutine only when a watchdog is armed; on expiry
// or cancellation the goroutine is abandoned (its result is discarded on
// arrival) — scoring is read-only on the trained model, so abandonment is
// safe.
func (g *Guard) scoreWithWatchdog(ctx context.Context, req Request) (*plan.Plan, []float64, error) {
	if g.cfg.Deadline <= 0 {
		return g.selectLearned(req)
	}
	type outcome struct {
		chosen *plan.Plan
		costs  []float64
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		o.chosen, o.costs, o.err = g.selectLearned(req)
		ch <- o
	}()
	wd := walltime.NewWatchdog(g.cfg.Deadline)
	defer wd.Stop()
	select {
	case o := <-ch:
		return o.chosen, o.costs, o.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case <-wd.Expired():
		return nil, nil, ErrDeadline
	}
}

// observeLearned records a learned-path success: breaker credit plus one
// regression-sentinel sample comparing the learned choice against the
// native default under the native optimizer's own rough cost model. When the
// sample quarantines the model, the registered drift hook fires after the
// mutex is released, on this serving goroutine — single-driver runs observe
// drift at a deterministic point in the serve sequence.
func (g *Guard) observeLearned(req Request, chosen *plan.Plan) {
	adverse, sampled := g.divergence(req, chosen)
	if g.observeLearnedLocked(adverse, sampled) && g.onQuarantine != nil {
		g.onQuarantine()
	}
}

// observeLearnedLocked applies one learned-path success under the mutex and
// reports whether this sample tripped the quarantine.
func (g *Guard) observeLearnedLocked(adverse, sampled bool) (tripped bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.br.recordSuccess() {
		g.tel.breakerClosed.Inc()
		g.tel.breakerState.Set(float64(BreakerClosed))
	}
	if !sampled {
		return false
	}
	g.tel.sentinelSamples.Inc()
	g.winN++
	if adverse {
		g.tel.sentinelAdverse.Inc()
		g.winAdverse++
	}
	if g.winN >= g.cfg.DivergenceWindow {
		if 2*g.winAdverse > g.winN {
			g.adverseRun++
			if g.adverseRun >= g.cfg.QuarantineWindows && !g.quarantined {
				g.quarantined = true
				g.tel.quarantineTrips.Inc()
				g.tel.quarantineActive.Set(1)
				tripped = true
			}
		} else {
			g.adverseRun = 0
		}
		g.winN, g.winAdverse = 0, 0
	}
	return tripped
}

// divergence scores one sentinel sample: is the learned choice's native
// rough cost beyond DivergenceBand × the default plan's? Rough costs are
// the native expert's opinion, so this is exactly the "learned estimates
// diverge adversely from native estimates" guardrail.
func (g *Guard) divergence(req Request, chosen *plan.Plan) (adverse, sampled bool) {
	if g.rough == nil || chosen == nil || len(req.Cands) == 0 || req.Cands[0] == nil {
		return false, false
	}
	learned := g.rough(req.Day, chosen)
	base := g.rough(req.Day, req.Cands[0])
	if math.IsNaN(learned) || math.IsNaN(base) || base <= 0 {
		return false, false
	}
	return learned/base > g.cfg.DivergenceBand, true
}

// recordFailure charges a classified failure to the breaker (when it counts)
// and the deadline counter.
func (g *Guard) recordFailure(f *failure) {
	if errors.Is(f.cause, ErrDeadline) {
		g.tel.deadlineHits.Inc()
	}
	if !countsTowardBreaker(f.cause) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.br.recordFailure() {
		g.tel.breakerOpened.Inc()
		g.tel.breakerState.Set(float64(BreakerOpen))
	}
}

// fallback walks the degraded rungs: a fresh native plan, then the default
// candidate. Only when both are unavailable does serving fail.
func (g *Guard) fallback(req Request, cause *failure) (Result, error) {
	g.tel.reason(cause).Inc()
	if g.native != nil {
		if g.inj.NativeFail(req.ID) {
			g.tel.injNative.Inc()
		} else if p := g.safeNative(req.Query); p != nil {
			g.tel.fallbackNative.Inc()
			return Result{Chosen: p, Origin: OriginNativeFallback, FallbackCause: cause}, nil
		}
	}
	if len(req.Cands) > 0 && req.Cands[0] != nil {
		g.tel.fallbackDefault.Inc()
		return Result{Chosen: req.Cands[0], Origin: OriginDefaultFallback, FallbackCause: cause}, nil
	}
	g.tel.exhausted.Inc()
	return Result{}, fmt.Errorf("%w: %w", ErrNoServablePlan, cause)
}

// safeNative re-plans natively, converting a planner panic into a nil plan
// so a corrupted statistics view cannot crash serving.
func (g *Guard) safeNative(q *query.Query) (p *plan.Plan) {
	defer func() {
		if recover() != nil {
			p = nil
		}
	}()
	if q == nil {
		return nil
	}
	return g.native(q)
}
