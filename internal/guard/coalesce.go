package guard

import (
	"context"
	"fmt"
	"sync"

	"loam/internal/faultinject"
	"loam/internal/plan"
	"loam/internal/predictor"
)

// This file is the guard's cross-query micro-batching layer: concurrent
// OptimizeCtx calls that land on the learned path at the same time are
// coalesced into one fused cost-head pass (predictor.SelectPlanGroups)
// instead of one pass per query. Two entry points share the same flush core:
//
//   - ServeBatch: the deterministic path. A sequential driver (OptimizeBatch
//     with parallelism ≤ 1) hands over a whole request slice; the batch
//     composition — and therefore the serve.batch.coalesced histogram — is
//     identical run to run.
//   - the coalescer: the asynchronous path behind selectLearned. Requests
//     arriving while a flush is in progress accumulate and are flushed
//     together by the next leader (group commit): no timers, no wall-clock
//     windows — the batch window is bounded in serve calls (Options.
//     CoalesceWindow), and a lone request flushes immediately, so coalescing
//     never adds latency. Batch composition depends on goroutine arrival
//     order, so this path records only order-independent counters; per-query
//     plans and estimates are unaffected (group scoring is row-independent
//     and argmin certification is per group).
//
// Both paths preserve Serve's per-request semantics exactly: admission,
// fault injection, breaker charges, sentinel samples and fallback rungs are
// applied per request, and the scores are the ones selectPlan would have
// produced for each request alone.

// BatchScorer is a keyed scorer that can score many queries' candidate sets
// in one fused pass. predictor.Predictor implements it; scorers that don't
// are served per-request even when coalescing is enabled.
type BatchScorer interface {
	KeyedScorer
	SelectPlanGroups(groups []predictor.Group)
}

// batchScratch holds the reusable staging state of one flush site. Buffers
// grow with the self-append idiom and are retained across flushes, so a warm
// flush allocates nothing.
type batchScratch struct {
	groups []predictor.Group
	costs  []float64
	join   []bool
}

// growCosts extends buf to at least n elements (self-append growth, exempt
// from the allocation discipline as amortized warm-up).
func growCosts(buf []float64, n int) []float64 {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf
}

// ServeBatch runs reqs through the guarded ladder with one fused scoring
// pass, writing per-request outcomes into results and errs (both must have
// len(reqs); per-request entries mirror what Serve would have returned).
// When the live scorer is not a BatchScorer, or the batch is trivial, it
// degrades to per-request Serve calls.
//
// Estimates in learned results alias guard-internal scratch and are valid
// only until the next ServeBatch call on this guard: callers that retain
// them must copy (the root OptimizeBatch driver does).
//
// Semantics relative to a sequential Serve loop: admission (one breaker tick
// per request) and pre-scoring fault injection run request by request in
// order, exactly as Serve would; the batch then scores as one fused pass, so
// breaker charges for scoring failures (no candidates, no finite estimate)
// land after every request's admission tick rather than interleaved. The
// per-request outcomes are otherwise identical, and on healthy or
// injection-driven runs (rates 0 or 1) the telemetry counts match the
// sequential ladder exactly.
//
// ServeBatch is not safe for concurrent use with itself; it is the
// sequential driver's entry point. Concurrent serving coalesces through
// Serve and the asynchronous coalescer instead.
func (g *Guard) ServeBatch(ctx context.Context, reqs []Request, results []Result, errs []error) {
	scorer := g.currentScorer()
	bs, ok := scorer.(BatchScorer)
	if !ok || len(reqs) < 2 {
		for i := range reqs {
			results[i], errs[i] = g.Serve(ctx, reqs[i])
		}
		return
	}
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return
	}

	// Pre-scoring ladder, request by request in order: totals, injected load
	// spikes, admission, and the pre-scoring fault injections, each handled
	// exactly as Serve handles them.
	sb := &g.sb
	sb.join = sb.join[:0]
	for i := range reqs {
		req := &reqs[i]
		g.tel.serveTotal.Inc()
		if g.inj.LoadSpike(req.ID) {
			g.tel.injSpike.Inc()
		}
		admit, blocked := g.admit()
		if !admit {
			results[i], errs[i] = g.fallback(*req, blocked)
			sb.join = append(sb.join, false)
			continue
		}
		if g.inj.PredictorError(req.ID) {
			g.tel.injPredictor.Inc()
			f := classify(fmt.Errorf("%w: forced predictor error", faultinject.ErrInjected))
			g.recordFailure(f)
			results[i], errs[i] = g.fallback(*req, f)
			sb.join = append(sb.join, false)
			continue
		}
		if g.inj.Delay(req.ID) {
			g.tel.injDelay.Inc()
			f := classify(fmt.Errorf("%w: %w", faultinject.ErrInjected, ErrDeadline))
			g.recordFailure(f)
			results[i], errs[i] = g.fallback(*req, f)
			sb.join = append(sb.join, false)
			continue
		}
		sb.join = append(sb.join, true)
	}

	g.flushCoalesced(bs, reqs, sb)
	g.tel.coalescedBatch.Observe(float64(len(sb.groups)))
	g.tel.coalesceRequests.Add(int64(len(sb.groups)))
	g.tel.coalesceFlushes.Inc()

	// Post-scoring ladder per fused request: NaN corruption injection, then
	// either the learned success bookkeeping or classification + fallback.
	gi := 0
	for i := range reqs {
		if !sb.join[i] {
			continue
		}
		req := &reqs[i]
		grp := &sb.groups[gi]
		gi++
		best, costs, err := grp.Best, grp.Costs, grp.Err
		if err == nil && g.inj.CorruptNaN(req.ID) {
			g.tel.injNaN.Inc()
			err = fmt.Errorf("%w: %w", faultinject.ErrInjected, predictor.ErrNoFiniteEstimate)
		}
		if err == nil {
			g.observeLearned(*req, best)
			g.tel.serveLearned.Inc()
			results[i] = Result{Chosen: best, Estimates: costs, Origin: OriginLearned}
			continue
		}
		f := classify(err)
		g.recordFailure(f)
		results[i], errs[i] = g.fallback(*req, f)
	}
}

// flushCoalesced stages every joined request's candidate set into contiguous
// group slices over the shared costs arena and scores them all with one
// fused SelectPlanGroups pass. This is the coalescer's flush core and an
// allocdiscipline root: a warm flush allocates nothing (buffers grow with
// the self-append idiom, group Costs are arena re-slices).
func (g *Guard) flushCoalesced(bs BatchScorer, reqs []Request, sb *batchScratch) {
	total := 0
	for i := range reqs {
		if sb.join[i] {
			total += len(reqs[i].Cands)
		}
	}
	sb.costs = growCosts(sb.costs, total)
	sb.groups = sb.groups[:0]
	off := 0
	for i := range reqs {
		if !sb.join[i] {
			continue
		}
		n := len(reqs[i].Cands)
		sb.groups = append(sb.groups, predictor.Group{
			Cands: reqs[i].Cands,
			Envs:  reqs[i].Envs,
			Key:   reqs[i].EnvKey,
			Costs: sb.costs[off : off+n],
		})
		off += n
	}
	bs.SelectPlanGroups(sb.groups)
}

// coalPending is one in-flight request parked in the asynchronous coalescer.
type coalPending struct {
	req  Request
	done chan struct{}

	best  *plan.Plan
	costs []float64
	err   error
}

// coalescer implements group-commit micro-batching for concurrent Serve
// calls: the first arrival becomes the leader and flushes immediately;
// requests arriving while that flush runs accumulate and are flushed
// together by the leader's next loop turn (or by the next leader). The
// window caps how many requests one fused pass may carry.
type coalescer struct {
	window int

	mu       sync.Mutex
	queue    []*coalPending
	flushing bool
	sb       batchScratch
}

// selectCoalesced is the coalescing twin of selectLearned: it parks the
// request on the queue and either drives the flush loop (leader) or waits
// for a leader to score it. The whole batch scores under the leader's
// scorer, preserving the swap invariant that one request never scores under
// a mixture of models.
func (c *coalescer) selectCoalesced(g *Guard, bs BatchScorer, req Request) (*plan.Plan, []float64, error) {
	p := &coalPending{req: req, done: make(chan struct{})}
	c.mu.Lock()
	c.queue = append(c.queue, p)
	if c.flushing {
		c.mu.Unlock()
		<-p.done
		return p.best, p.costs, p.err
	}
	c.flushing = true
	for len(c.queue) > 0 {
		n := len(c.queue)
		if n > c.window {
			n = c.window
		}
		batch := c.queue[:n:n]
		c.queue = c.queue[n:]
		c.mu.Unlock()
		c.flush(g, bs, batch)
		c.mu.Lock()
	}
	c.flushing = false
	// The queue slice has been re-sliced away from its backing array by the
	// loop; start the next accumulation fresh so the array can be reclaimed.
	c.queue = nil
	c.mu.Unlock()
	<-p.done
	return p.best, p.costs, p.err
}

// flush stages one batch of pending requests through the fused pass and
// hands each waiter its private outcome. Estimates are copied out of the
// flush arena because Serve results escape to callers.
func (c *coalescer) flush(g *Guard, bs BatchScorer, batch []*coalPending) {
	c.sb.join = c.sb.join[:0]
	reqs := make([]Request, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
		c.sb.join = append(c.sb.join, true)
	}
	g.flushCoalesced(bs, reqs, &c.sb)
	g.tel.coalesceRequests.Add(int64(len(batch)))
	g.tel.coalesceFlushes.Inc()
	for i, p := range batch {
		grp := &c.sb.groups[i]
		p.best, p.err = grp.Best, grp.Err
		if p.err == nil {
			p.costs = append([]float64(nil), grp.Costs...)
		}
		close(p.done)
	}
}
