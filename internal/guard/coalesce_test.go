package guard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"loam/internal/encoding"
	"loam/internal/faultinject"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
)

// batchStub is a deterministic BatchScorer: candidate i of any request costs
// float64(len(cands)-i), so the last candidate always wins, and the fused
// group path reproduces the per-request path exactly. Call counters expose
// which entry point served a request.
type batchStub struct {
	mu          sync.Mutex
	singleCalls int
	groupCalls  int
}

func (s *batchStub) score(cands []*plan.Plan, costs []float64) (*plan.Plan, error) {
	if len(cands) == 0 {
		return nil, predictor.ErrNoCandidates
	}
	for i := range cands {
		costs[i] = float64(len(cands) - i)
	}
	return cands[len(cands)-1], nil
}

func (s *batchStub) SelectPlan(cands []*plan.Plan, envs encoding.EnvSource) (*plan.Plan, []float64, error) {
	s.mu.Lock()
	s.singleCalls++
	s.mu.Unlock()
	costs := make([]float64, len(cands))
	best, err := s.score(cands, costs)
	if err != nil {
		return nil, nil, err
	}
	return best, costs, nil
}

func (s *batchStub) SelectPlanKeyed(cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey) (*plan.Plan, []float64, error) {
	return s.SelectPlan(cands, envs)
}

func (s *batchStub) SelectPlanGroups(groups []predictor.Group) {
	s.mu.Lock()
	s.groupCalls++
	s.mu.Unlock()
	for gi := range groups {
		g := &groups[gi]
		g.Best, g.Err = s.score(g.Cands, g.Costs)
	}
}

// coalesceReqs builds n distinct two-candidate requests.
func coalesceReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		id := fmt.Sprintf("q%d", i)
		reqs[i] = Request{
			ID:    id,
			Query: &query.Query{ID: id},
			Cands: []*plan.Plan{{}, {}},
			Envs:  encoding.NoEnv(),
		}
	}
	return reqs
}

// TestServeBatchMatchesSequentialServe: for healthy serving and for
// deterministic rate-1 injections, ServeBatch produces per-request outcomes
// (plan, origin, estimates, error) identical to a sequential Serve loop over
// the same requests on an identically configured guard, and the shared
// ladder counters agree.
func TestServeBatchMatchesSequentialServe(t *testing.T) {
	// NaN corruption is a post-scoring failure: ServeBatch lands its breaker
	// charges after every request's admission tick (the one documented
	// divergence from a sequential loop), so at rate 1 a breaker small enough
	// to trip mid-batch would open at different points on the two paths. The
	// equivalence contract holds for breakers that don't trip inside one
	// batch; that case pins it with a wide window.
	wideCfg := smallCfg()
	wideCfg.WindowSize = 100
	wideCfg.TripThreshold = 99
	cases := []struct {
		name string
		cfg  Config
		inj  func(seed uint64) *faultinject.Injector
	}{
		{"healthy", smallCfg(), func(uint64) *faultinject.Injector { return nil }},
		{"predictor-error", smallCfg(), func(seed uint64) *faultinject.Injector {
			return faultinject.New(seed, faultinject.Config{PredictorErrorRate: 1})
		}},
		{"nan-corruption", wideCfg, func(seed uint64) *faultinject.Injector {
			return faultinject.New(seed, faultinject.Config{NaNRate: 1})
		}},
		{"delay", smallCfg(), func(seed uint64) *faultinject.Injector {
			return faultinject.New(seed, faultinject.Config{DelayRate: 1})
		}},
	}
	ladderCounters := []string{
		"guard.serve.total", "guard.serve.learned", "guard.serve.shed",
		"guard.fallback.native", "guard.fallback.default",
		"guard.fallback.reason.predictor_error", "guard.fallback.reason.deadline",
		"guard.fallback.reason.no_finite_estimate", "guard.fallback.reason.breaker_open",
		"guard.inject.predictor_errors", "guard.inject.nan_estimates", "guard.inject.delays",
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkHarness := func() *testHarness {
				return newHarness(tc.cfg, &batchStub{}, func(o *Options) {
					o.Injector = tc.inj(7)
				})
			}
			seq, bat := mkHarness(), mkHarness()
			reqs := coalesceReqs(9)
			// One empty-candidate request exercises the scoring-failure leg.
			reqs[4].Cands = nil

			wantRes := make([]Result, len(reqs))
			wantErr := make([]error, len(reqs))
			for i := range reqs {
				wantRes[i], wantErr[i] = seq.g.Serve(context.Background(), reqs[i])
			}

			gotRes := make([]Result, len(reqs))
			gotErr := make([]error, len(reqs))
			bat.g.ServeBatch(context.Background(), reqs, gotRes, gotErr)

			for i := range reqs {
				if (wantErr[i] == nil) != (gotErr[i] == nil) {
					t.Fatalf("req %d: err %v vs %v", i, wantErr[i], gotErr[i])
				}
				w, g := wantRes[i], gotRes[i]
				if w.Origin != g.Origin {
					t.Fatalf("req %d: origin %v vs %v", i, w.Origin, g.Origin)
				}
				// Each harness owns a distinct native plan object; everything
				// else (candidates) is shared, so pointers must match exactly.
				if w.Chosen == seq.native || g.Chosen == bat.native {
					if w.Chosen != seq.native || g.Chosen != bat.native {
						t.Fatalf("req %d: only one path served the native plan", i)
					}
				} else if w.Chosen != g.Chosen {
					t.Fatalf("req %d: chose different plans (%v)", i, w.Origin)
				}
				if len(w.Estimates) != len(g.Estimates) {
					t.Fatalf("req %d: %d estimates vs %d", i, len(w.Estimates), len(g.Estimates))
				}
				for j := range w.Estimates {
					if w.Estimates[j] != g.Estimates[j] {
						t.Fatalf("req %d estimate %d: %v vs %v", i, j, w.Estimates[j], g.Estimates[j])
					}
				}
				if (w.FallbackCause == nil) != (g.FallbackCause == nil) {
					t.Fatalf("req %d: cause %v vs %v", i, w.FallbackCause, g.FallbackCause)
				}
			}
			for _, name := range ladderCounters {
				if w, g := seq.counter(t, name), bat.counter(t, name); w != g {
					t.Fatalf("%s: sequential %d vs batch %d", name, w, g)
				}
			}
			// The batch path additionally records its coalescing instruments.
			if f := bat.counter(t, "guard.coalesce.flushes"); f != 1 {
				t.Fatalf("coalesce flushes = %d, want 1", f)
			}
		})
	}
}

// TestServeBatchDegrades: a scorer without group support, or a trivial batch,
// serves through the plain per-request ladder — same outcomes, no coalescing
// telemetry.
func TestServeBatchDegrades(t *testing.T) {
	t.Run("non-batch scorer", func(t *testing.T) {
		h := newHarness(smallCfg(), &stubScorer{}, nil)
		reqs := coalesceReqs(4)
		res := make([]Result, len(reqs))
		errs := make([]error, len(reqs))
		h.g.ServeBatch(context.Background(), reqs, res, errs)
		for i := range reqs {
			if errs[i] != nil || res[i].Origin != OriginLearned {
				t.Fatalf("req %d: err=%v origin=%v", i, errs[i], res[i].Origin)
			}
		}
		if f := h.counter(t, "guard.coalesce.flushes"); f != 0 {
			t.Fatalf("degraded path recorded %d flushes", f)
		}
	})
	t.Run("single request", func(t *testing.T) {
		h := newHarness(smallCfg(), &batchStub{}, nil)
		reqs := coalesceReqs(1)
		res := make([]Result, 1)
		errs := make([]error, 1)
		h.g.ServeBatch(context.Background(), reqs, res, errs)
		if errs[0] != nil || res[0].Origin != OriginLearned {
			t.Fatalf("err=%v origin=%v", errs[0], res[0].Origin)
		}
		if f := h.counter(t, "guard.coalesce.flushes"); f != 0 {
			t.Fatalf("trivial batch recorded %d flushes", f)
		}
	})
	t.Run("cancelled context", func(t *testing.T) {
		h := newHarness(smallCfg(), &batchStub{}, nil)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		reqs := coalesceReqs(3)
		res := make([]Result, len(reqs))
		errs := make([]error, len(reqs))
		h.g.ServeBatch(ctx, reqs, res, errs)
		for i := range errs {
			if !errors.Is(errs[i], context.Canceled) {
				t.Fatalf("req %d: err = %v, want context.Canceled", i, errs[i])
			}
		}
	})
}

// TestCoalescerConcurrentServe: with CoalesceWindow set, concurrent Serve
// calls flow through the group-commit coalescer — every request still gets
// its own correct outcome, the request/flush accounting adds up, and the
// window bounds each fused batch (16 requests through a window of 4 need at
// least 4 flushes).
func TestCoalescerConcurrentServe(t *testing.T) {
	stub := &batchStub{}
	h := newHarness(smallCfg(), stub, func(o *Options) { o.CoalesceWindow = 4 })
	const n = 16
	reqs := coalesceReqs(n)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := range reqs {
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			res, err := h.g.Serve(context.Background(), req)
			if err != nil {
				errCh <- err
				return
			}
			if res.Origin != OriginLearned || res.Chosen != req.Cands[len(req.Cands)-1] {
				errCh <- fmt.Errorf("request %s: wrong outcome (origin %v)", req.ID, res.Origin)
				return
			}
			if len(res.Estimates) != 2 || res.Estimates[0] != 2 || res.Estimates[1] != 1 {
				errCh <- fmt.Errorf("request %s: estimates %v", req.ID, res.Estimates)
			}
		}(reqs[i])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	requests := h.counter(t, "guard.coalesce.requests")
	flushes := h.counter(t, "guard.coalesce.flushes")
	if requests != n {
		t.Fatalf("coalesce requests = %d, want %d", requests, n)
	}
	if flushes < (n+3)/4 || flushes > n {
		t.Fatalf("coalesce flushes = %d, want within [%d, %d]", flushes, (n+3)/4, n)
	}
	if got := h.counter(t, "guard.serve.learned"); got != n {
		t.Fatalf("serve.learned = %d, want %d", got, n)
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.singleCalls != 0 {
		t.Fatalf("%d requests bypassed the coalescer", stub.singleCalls)
	}
}

// TestServeBatchWarmFlushZeroAlloc: after the first flush grows the scratch,
// a ServeBatch flush over caller-owned result slices allocates nothing — the
// coalesced flush path is inside the zero-alloc serving contract.
func TestServeBatchWarmFlushZeroAlloc(t *testing.T) {
	h := newHarness(smallCfg(), &batchStub{}, nil)
	reqs := coalesceReqs(6)
	res := make([]Result, len(reqs))
	errs := make([]error, len(reqs))
	ctx := context.Background()
	h.g.ServeBatch(ctx, reqs, res, errs)
	allocs := testing.AllocsPerRun(100, func() {
		h.g.ServeBatch(ctx, reqs, res, errs)
	})
	if allocs != 0 {
		t.Fatalf("warm ServeBatch allocated %.1f times per run, want 0", allocs)
	}
}
