package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"loam/internal/encoding"
	"loam/internal/faultinject"
	"loam/internal/plan"
	"loam/internal/predictor"
	"loam/internal/query"
	"loam/internal/telemetry"
)

// stubScorer scripts the learned path: errs[i] decides call i (nil =
// success); past the script, defaultErr applies. A non-nil block channel
// stalls every call until the channel closes (deadline tests).
type stubScorer struct {
	mu         sync.Mutex
	calls      int
	errs       []error
	defaultErr error
	block      chan struct{}
}

func (s *stubScorer) SelectPlan(cands []*plan.Plan, envs encoding.EnvSource) (*plan.Plan, []float64, error) {
	if s.block != nil {
		<-s.block
	}
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	err := s.defaultErr
	if i < len(s.errs) {
		err = s.errs[i]
	}
	if err != nil {
		return nil, nil, err
	}
	if len(cands) == 0 {
		return nil, nil, predictor.ErrNoCandidates
	}
	return cands[len(cands)-1], []float64{2, 1}, nil
}

// testHarness bundles a guard over a stub scorer with a two-candidate
// request and a registry for counter assertions.
type testHarness struct {
	g      *Guard
	req    Request
	reg    *telemetry.Registry
	native *plan.Plan
}

func newHarness(cfg Config, sc Scorer, mutate func(*Options)) *testHarness {
	nativePlan := &plan.Plan{}
	reg := telemetry.NewRegistry()
	o := Options{
		Config:  cfg,
		Scorer:  sc,
		Native:  func(q *query.Query) *plan.Plan { return nativePlan },
		Metrics: reg,
	}
	if mutate != nil {
		mutate(&o)
	}
	return &testHarness{
		g:      New(o),
		req:    Request{ID: "q1", Query: &query.Query{ID: "q1"}, Cands: []*plan.Plan{{}, {}}, Envs: encoding.NoEnv()},
		reg:    reg,
		native: nativePlan,
	}
}

func (h *testHarness) counter(t *testing.T, name string) int64 {
	t.Helper()
	return h.reg.Counter(name).Value()
}

// smallCfg is a breaker configuration sized so tests can walk a full cycle
// in a handful of calls. Deadline 0: no watchdog goroutines in unit tests.
func smallCfg() Config {
	return Config{
		Deadline:       -1, // negative: normalize keeps it, watchdog off
		WindowSize:     4,
		TripThreshold:  2,
		CooldownSteps:  3,
		HalfOpenProbes: 2,
	}
}

var errScore = errors.New("scorer exploded")

// TestServeShed pins the load-shedding rung: the learned path never runs,
// the native fallback serves, the breaker takes no charge, and the cause
// chain carries ErrTransient, ErrLoadShed, and the admission gate's own
// sentinel. With no native planner, shedding degrades to the default
// candidate rather than failing.
func TestServeShed(t *testing.T) {
	errThrottled := errors.New("fleet: tenant over budget")
	sc := &stubScorer{}
	h := newHarness(smallCfg(), sc, nil)

	res, err := h.g.ServeShed(h.req, errThrottled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin != OriginNativeFallback || res.Chosen != h.native {
		t.Fatalf("shed served origin %v, want native fallback", res.Origin)
	}
	for _, sentinel := range []error{ErrTransient, ErrLoadShed, errThrottled} {
		if !errors.Is(res.FallbackCause, sentinel) {
			t.Fatalf("cause chain lost %v: %v", sentinel, res.FallbackCause)
		}
	}
	if sc.calls != 0 {
		t.Fatalf("shed ran the learned path %d times", sc.calls)
	}
	if got := h.counter(t, "guard.serve.shed"); got != 1 {
		t.Fatalf("guard.serve.shed = %d, want 1", got)
	}
	if got := h.counter(t, "guard.serve.total"); got != 1 {
		t.Fatalf("guard.serve.total = %d, want 1", got)
	}
	if got := h.counter(t, "guard.fallback.reason.load_shed"); got != 1 {
		t.Fatalf("guard.fallback.reason.load_shed = %d, want 1", got)
	}
	// Sheds are not model failures: the breaker never opens no matter how
	// many land in the window.
	for i := 0; i < 8; i++ {
		if _, err := h.g.ServeShed(h.req, errThrottled); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.g.State(); st != BreakerClosed {
		t.Fatalf("shedding charged the breaker: state %v", st)
	}
	if got := h.counter(t, "guard.breaker.opened"); got != 0 {
		t.Fatalf("breaker opened %d times under pure shedding", got)
	}

	// Nil cause: the chain is just class + ErrLoadShed.
	res, err = h.g.ServeShed(h.req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.FallbackCause, ErrLoadShed) {
		t.Fatalf("nil-cause shed lost ErrLoadShed: %v", res.FallbackCause)
	}

	// No native planner: the default candidate is the shedding rung.
	h2 := newHarness(smallCfg(), &stubScorer{}, func(o *Options) { o.Native = nil })
	res, err = h2.g.ServeShed(h2.req, errThrottled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin != OriginDefaultFallback || res.Chosen != h2.req.Cands[0] {
		t.Fatalf("nativeless shed served origin %v", res.Origin)
	}
}

// TestRecoveryCyclePinnedSequence drives the breaker through a full
// closed → open → half-open → closed cycle with a scripted scorer and pins
// the exact per-call (origin, state, cause) event sequence — the
// deterministic recovery test the logical (step-clocked, not wall-clocked)
// cooldown makes possible.
func TestRecoveryCyclePinnedSequence(t *testing.T) {
	sc := &stubScorer{errs: []error{nil, errScore, errScore}}
	h := newHarness(smallCfg(), sc, nil)

	type event struct {
		origin Origin
		state  BreakerState
		cause  error // sentinel the FallbackCause must match; nil = learned
	}
	expected := []event{
		{OriginLearned, BreakerClosed, nil},           // healthy
		{OriginNativeFallback, BreakerClosed, ErrTransient},   // failure 1/2
		{OriginNativeFallback, BreakerOpen, ErrTransient},     // failure 2/2 trips
		{OriginNativeFallback, BreakerOpen, ErrBreakerOpen},   // cooldown 3→2
		{OriginNativeFallback, BreakerOpen, ErrBreakerOpen},   // cooldown 2→1
		{OriginLearned, BreakerHalfOpen, nil},         // cooldown expires, probe 1
		{OriginLearned, BreakerClosed, nil},           // probe 2 closes
		{OriginLearned, BreakerClosed, nil},           // healthy again
	}
	for i, want := range expected {
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if res.Origin != want.origin {
			t.Fatalf("call %d: origin %v, want %v", i, res.Origin, want.origin)
		}
		if got := h.g.State(); got != want.state {
			t.Fatalf("call %d: state %v, want %v", i, got, want.state)
		}
		if want.cause == nil {
			if res.FallbackCause != nil {
				t.Fatalf("call %d: unexpected cause %v", i, res.FallbackCause)
			}
		} else if !errors.Is(res.FallbackCause, want.cause) {
			t.Fatalf("call %d: cause %v does not match %v", i, res.FallbackCause, want.cause)
		}
		if res.Chosen == nil {
			t.Fatalf("call %d: nil plan served", i)
		}
	}
	for name, want := range map[string]int64{
		"guard.serve.total":                      8,
		"guard.serve.learned":                    4,
		"guard.fallback.native":                  4,
		"guard.breaker.opened":                   1,
		"guard.breaker.half_opened":              1,
		"guard.breaker.closed":                   1,
		"guard.fallback.reason.breaker_open":     2,
		"guard.fallback.reason.predictor_error":  2,
	} {
		if got := h.counter(t, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestHalfOpenProbeFailureReopens: a failed probe sends the breaker straight
// back to open with a fresh cooldown.
func TestHalfOpenProbeFailureReopens(t *testing.T) {
	cfg := smallCfg()
	cfg.CooldownSteps = 2
	sc := &stubScorer{defaultErr: errScore}
	h := newHarness(cfg, sc, nil)

	// Two failures trip; one rejected call burns the cooldown; the next is
	// a half-open probe that fails and reopens.
	for i := 0; i < 4; i++ {
		if _, err := h.g.Serve(context.Background(), h.req); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.g.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	if got := h.counter(t, "guard.breaker.opened"); got != 2 {
		t.Fatalf("opened %d times, want 2", got)
	}
	if got := h.counter(t, "guard.breaker.closed"); got != 0 {
		t.Fatalf("closed %d times, want 0", got)
	}
}

// TestFailureClassification pins the taxonomy: injected faults and deadline
// hits are transient; no-candidates and no-finite-estimate are permanent;
// and only model-health failures charge the breaker.
func TestFailureClassification(t *testing.T) {
	t.Run("injected predictor error is transient", func(t *testing.T) {
		inj := faultinject.New(1, faultinject.Config{PredictorErrorRate: 1})
		h := newHarness(smallCfg(), &stubScorer{}, func(o *Options) { o.Injector = inj })
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(res.FallbackCause, ErrTransient) || !errors.Is(res.FallbackCause, faultinject.ErrInjected) {
			t.Fatalf("cause %v: want transient + injected", res.FallbackCause)
		}
		if errors.Is(res.FallbackCause, ErrPermanent) {
			t.Fatal("injected fault classified permanent")
		}
	})

	t.Run("no candidates is permanent and never trips the breaker", func(t *testing.T) {
		sc := &stubScorer{defaultErr: predictor.ErrNoCandidates}
		h := newHarness(smallCfg(), sc, nil)
		for i := 0; i < 10; i++ {
			res, err := h.g.Serve(context.Background(), h.req)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(res.FallbackCause, ErrPermanent) {
				t.Fatalf("cause %v: want permanent", res.FallbackCause)
			}
		}
		if got := h.g.State(); got != BreakerClosed {
			t.Fatalf("no-candidates failures tripped the breaker (state %v)", got)
		}
		if got := h.counter(t, "guard.fallback.reason.no_candidates"); got != 10 {
			t.Fatalf("no_candidates reason = %d, want 10", got)
		}
	})

	t.Run("no finite estimate is permanent and charges the breaker", func(t *testing.T) {
		sc := &stubScorer{defaultErr: predictor.ErrNoFiniteEstimate}
		h := newHarness(smallCfg(), sc, nil)
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(res.FallbackCause, ErrPermanent) || !errors.Is(res.FallbackCause, predictor.ErrNoFiniteEstimate) {
			t.Fatalf("cause %v: want permanent + no-finite-estimate", res.FallbackCause)
		}
		if _, err := h.g.Serve(context.Background(), h.req); err != nil {
			t.Fatal(err)
		}
		if got := h.g.State(); got != BreakerOpen {
			t.Fatalf("NaN-model failures did not trip the breaker (state %v)", got)
		}
	})
}

// TestFallbackLadder walks the rungs: native re-plan first, the default
// candidate when native fails, and ErrNoServablePlan only when nothing is
// left.
func TestFallbackLadder(t *testing.T) {
	failing := func() Scorer { return &stubScorer{defaultErr: errScore} }

	t.Run("native rung serves first", func(t *testing.T) {
		h := newHarness(smallCfg(), failing(), nil)
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Origin != OriginNativeFallback || res.Chosen != h.native {
			t.Fatalf("origin %v chosen %p, want native fallback plan %p", res.Origin, res.Chosen, h.native)
		}
	})

	t.Run("no native planner falls to the default candidate", func(t *testing.T) {
		h := newHarness(smallCfg(), failing(), func(o *Options) { o.Native = nil })
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Origin != OriginDefaultFallback || res.Chosen != h.req.Cands[0] {
			t.Fatalf("origin %v, want default fallback of cands[0]", res.Origin)
		}
	})

	t.Run("injected native failure falls to the default candidate", func(t *testing.T) {
		inj := faultinject.New(2, faultinject.Config{PredictorErrorRate: 1, NativeFailRate: 1})
		h := newHarness(smallCfg(), &stubScorer{}, func(o *Options) { o.Injector = inj })
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Origin != OriginDefaultFallback {
			t.Fatalf("origin %v, want default fallback", res.Origin)
		}
		if h.counter(t, "guard.inject.native_failures") != 1 {
			t.Fatal("native-failure injection not counted")
		}
	})

	t.Run("a native panic is contained", func(t *testing.T) {
		h := newHarness(smallCfg(), failing(), func(o *Options) {
			o.Native = func(q *query.Query) *plan.Plan { panic("corrupt view") }
		})
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Origin != OriginDefaultFallback {
			t.Fatalf("origin %v, want default fallback after native panic", res.Origin)
		}
	})

	t.Run("every rung gone yields ErrNoServablePlan", func(t *testing.T) {
		h := newHarness(smallCfg(), failing(), func(o *Options) { o.Native = nil })
		req := h.req
		req.Cands = nil
		_, err := h.g.Serve(context.Background(), req)
		if !errors.Is(err, ErrNoServablePlan) {
			t.Fatalf("err %v, want ErrNoServablePlan", err)
		}
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("err %v should still expose the classified cause", err)
		}
		if h.counter(t, "guard.serve.exhausted") != 1 {
			t.Fatal("exhausted not counted")
		}
	})
}

// TestRegressionSentinelQuarantine: adverse learned choices for K
// consecutive windows quarantine the model; the guard then serves fallbacks
// with ErrQuarantined until Reset.
func TestRegressionSentinelQuarantine(t *testing.T) {
	cfg := smallCfg()
	cfg.DivergenceBand = 2
	cfg.DivergenceWindow = 2
	cfg.QuarantineWindows = 2
	h := newHarness(cfg, &stubScorer{}, nil)
	// The stub picks the last candidate; rough prices it 10× the default.
	h.g.rough = func(day int, p *plan.Plan) float64 {
		if p == h.req.Cands[0] {
			return 1
		}
		return 10
	}

	// Two windows of two adverse samples each → quarantine.
	for i := 0; i < 4; i++ {
		res, err := h.g.Serve(context.Background(), h.req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Origin != OriginLearned {
			t.Fatalf("call %d: origin %v before quarantine", i, res.Origin)
		}
	}
	if !h.g.Quarantined() {
		t.Fatal("model not quarantined after 2 adverse windows")
	}
	res, err := h.g.Serve(context.Background(), h.req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin == OriginLearned || !errors.Is(res.FallbackCause, ErrQuarantined) {
		t.Fatalf("quarantined guard served origin %v cause %v", res.Origin, res.FallbackCause)
	}
	for name, want := range map[string]int64{
		"guard.sentinel.samples":         4,
		"guard.sentinel.adverse_samples": 4,
		"guard.quarantine.trips":         1,
	} {
		if got := h.counter(t, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	h.g.Reset()
	if h.g.Quarantined() {
		t.Fatal("Reset did not lift quarantine")
	}
	if res, err := h.g.Serve(context.Background(), h.req); err != nil || res.Origin != OriginLearned {
		t.Fatalf("after Reset: origin %v err %v", res.Origin, err)
	}
}

// TestHealthySentinelNeverQuarantines: when learned choices stay inside the
// band, consecutive-window runs reset and the model keeps serving.
func TestHealthySentinelNeverQuarantines(t *testing.T) {
	cfg := smallCfg()
	cfg.DivergenceWindow = 2
	cfg.QuarantineWindows = 1
	h := newHarness(cfg, &stubScorer{}, nil)
	h.g.rough = func(day int, p *plan.Plan) float64 { return 5 } // identical costs
	for i := 0; i < 20; i++ {
		if res, err := h.g.Serve(context.Background(), h.req); err != nil || res.Origin != OriginLearned {
			t.Fatalf("call %d: origin %v err %v", i, res.Origin, err)
		}
	}
	if h.g.Quarantined() {
		t.Fatal("healthy model quarantined")
	}
	if got := h.counter(t, "guard.sentinel.adverse_samples"); got != 0 {
		t.Fatalf("adverse samples = %d, want 0", got)
	}
}

// TestDeadlineWatchdog arms a real (tests-only-short) deadline against a
// hung scorer: the guard must degrade to the native fallback with a
// transient ErrDeadline cause instead of stalling the query.
func TestDeadlineWatchdog(t *testing.T) {
	cfg := smallCfg()
	cfg.Deadline = 10 * time.Millisecond
	sc := &stubScorer{block: make(chan struct{})}
	defer close(sc.block)
	h := newHarness(cfg, sc, nil)

	res, err := h.g.Serve(context.Background(), h.req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin != OriginNativeFallback {
		t.Fatalf("origin %v, want native fallback", res.Origin)
	}
	if !errors.Is(res.FallbackCause, ErrDeadline) || !errors.Is(res.FallbackCause, ErrTransient) {
		t.Fatalf("cause %v, want transient deadline", res.FallbackCause)
	}
	if got := h.counter(t, "guard.deadline.hits"); got != 1 {
		t.Fatalf("deadline hits = %d, want 1", got)
	}
}

// TestInjectedDelayIsDeterministicDeadline: the injector's delay fault is a
// logical stall — a deadline hit with no real timer and no sleeping.
func TestInjectedDelayIsDeterministicDeadline(t *testing.T) {
	inj := faultinject.New(4, faultinject.Config{DelayRate: 1})
	h := newHarness(smallCfg(), &stubScorer{}, func(o *Options) { o.Injector = inj })
	res, err := h.g.Serve(context.Background(), h.req)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.FallbackCause, ErrDeadline) || !errors.Is(res.FallbackCause, faultinject.ErrInjected) {
		t.Fatalf("cause %v, want injected deadline", res.FallbackCause)
	}
	if h.counter(t, "guard.deadline.hits") != 1 || h.counter(t, "guard.inject.delays") != 1 {
		t.Fatal("delay injection not counted as a deadline hit")
	}
}

// TestCancellationPassesThrough: caller cancellation is returned unwrapped —
// no fallback plan, no breaker charge — preserving the serving layer's batch
// cancellation semantics.
func TestCancellationPassesThrough(t *testing.T) {
	cfg := smallCfg()
	cfg.Deadline = time.Minute // watchdog armed so ctx.Done is selected
	sc := &stubScorer{block: make(chan struct{})}
	defer close(sc.block)
	h := newHarness(cfg, sc, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := h.g.Serve(ctx, h.req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if h.g.State() != BreakerClosed {
		t.Fatal("cancellation charged the breaker")
	}
	if h.counter(t, "guard.fallback.native")+h.counter(t, "guard.fallback.default") != 0 {
		t.Fatal("cancellation produced a fallback plan")
	}
}

// TestConcurrentServeUnderFullOutage hammers one guard from many goroutines
// with a 100% injected failure rate (run with -race): every call must serve
// a fallback plan, and the order-independent counters must balance exactly.
func TestConcurrentServeUnderFullOutage(t *testing.T) {
	inj := faultinject.New(9, faultinject.Config{PredictorErrorRate: 1})
	h := newHarness(smallCfg(), &stubScorer{}, func(o *Options) { o.Injector = inj })

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				res, err := h.g.Serve(context.Background(), h.req)
				if err != nil {
					t.Errorf("goroutine %d call %d: %v", g, k, err)
					return
				}
				if res.Chosen == nil || res.Origin == OriginLearned {
					t.Errorf("goroutine %d call %d: origin %v chosen %p", g, k, res.Origin, res.Chosen)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if got := h.counter(t, "guard.serve.total"); got != total {
		t.Fatalf("serve.total = %d, want %d", got, total)
	}
	if got := h.counter(t, "guard.fallback.native"); got != total {
		t.Fatalf("fallback.native = %d, want %d (every call must degrade)", got, total)
	}
	if got := h.counter(t, "guard.serve.learned"); got != 0 {
		t.Fatalf("learned = %d under full outage", got)
	}
	if got := h.counter(t, "guard.breaker.opened"); got < 1 {
		t.Fatalf("breaker never opened under sustained failure (opened=%d)", got)
	}
}

// TestConfigNormalization: zero fields inherit defaults; Deadline 0 stays 0
// (watchdog off).
func TestConfigNormalization(t *testing.T) {
	g := New(Options{Scorer: &stubScorer{}})
	d := DefaultConfig()
	if g.Config().WindowSize != d.WindowSize || g.Config().TripThreshold != d.TripThreshold {
		t.Fatalf("zero config not normalized: %+v", g.Config())
	}
	cfg := DefaultConfig()
	cfg.Deadline = 0
	if got := New(Options{Config: cfg, Scorer: &stubScorer{}}).Config().Deadline; got != 0 {
		t.Fatalf("explicit zero deadline overridden to %v", got)
	}
}

// quarantineHarness builds a guard whose sentinel quarantines after two
// 2-sample adverse windows (the stub picks the last candidate; rough prices
// it 10x the default) and drives it there.
func quarantineHarness(t *testing.T) *testHarness {
	t.Helper()
	cfg := smallCfg()
	cfg.DivergenceBand = 2
	cfg.DivergenceWindow = 2
	cfg.QuarantineWindows = 2
	h := newHarness(cfg, &stubScorer{}, nil)
	h.g.rough = func(day int, p *plan.Plan) float64 {
		if p == h.req.Cands[0] {
			return 1
		}
		return 10
	}
	for i := 0; i < 4; i++ {
		if _, err := h.g.Serve(context.Background(), h.req); err != nil {
			t.Fatal(err)
		}
	}
	if !h.g.Quarantined() {
		t.Fatal("harness failed to quarantine")
	}
	return h
}

// TestSwapScorerReleasesQuarantine pins the lifecycle seam's guard side: a
// scorer swap installs the new model, restarts the breaker and sentinel,
// lifts the quarantine, and counts the release.
func TestSwapScorerReleasesQuarantine(t *testing.T) {
	h := quarantineHarness(t)
	h.g.SwapScorer(&stubScorer{})
	if h.g.Quarantined() {
		t.Fatal("SwapScorer did not lift quarantine")
	}
	if got := h.counter(t, "guard.quarantine.released"); got != 1 {
		t.Fatalf("guard.quarantine.released = %d, want 1", got)
	}
	if got := h.reg.Gauge("guard.quarantine.active").Value(); got != 0 {
		t.Fatalf("guard.quarantine.active = %v, want 0", got)
	}
	if h.g.State() != BreakerClosed {
		t.Fatalf("breaker not restarted: %v", h.g.State())
	}
	res, err := h.g.Serve(context.Background(), h.req)
	if err != nil || res.Origin != OriginLearned {
		t.Fatalf("swapped scorer not serving: origin %v err %v", res.Origin, err)
	}
	// The sentinel restarted too: one window of history is gone, so the
	// same adverse cadence needs two full windows again to re-trip.
	for i := 0; i < 3; i++ {
		if _, err := h.g.Serve(context.Background(), h.req); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.counter(t, "guard.quarantine.trips"); got != 2 {
		t.Fatalf("guard.quarantine.trips = %d, want 2 (fresh windows after swap)", got)
	}
}

// TestSwapScorerNilIsNoop: a nil swap must not clear the serving scorer or
// disturb guard state.
func TestSwapScorerNilIsNoop(t *testing.T) {
	h := quarantineHarness(t)
	h.g.SwapScorer(nil)
	if !h.g.Quarantined() {
		t.Fatal("nil swap disturbed quarantine state")
	}
	if got := h.counter(t, "guard.quarantine.released"); got != 0 {
		t.Fatalf("nil swap counted a release: %d", got)
	}
}

// TestResetCountsQuarantineRelease: the manual operator path reports the
// same release telemetry as the lifecycle path.
func TestResetCountsQuarantineRelease(t *testing.T) {
	h := quarantineHarness(t)
	h.g.Reset()
	if got := h.counter(t, "guard.quarantine.released"); got != 1 {
		t.Fatalf("guard.quarantine.released = %d, want 1", got)
	}
	if got := h.reg.Gauge("guard.quarantine.active").Value(); got != 0 {
		t.Fatalf("guard.quarantine.active = %v, want 0", got)
	}
	// Reset without a quarantine must not count a release.
	h.g.Reset()
	if got := h.counter(t, "guard.quarantine.released"); got != 1 {
		t.Fatalf("unquarantined Reset counted a release: %d", got)
	}
}

// TestDriftHookFiresOutsideLock: the sentinel trip invokes the drift hook on
// the serving goroutine, after the guard lock is released — calling back
// into the guard from the hook (as the lifecycle's rollback path does) must
// not deadlock.
func TestDriftHookFiresOutsideLock(t *testing.T) {
	cfg := smallCfg()
	cfg.DivergenceBand = 2
	cfg.DivergenceWindow = 2
	cfg.QuarantineWindows = 1
	h := newHarness(cfg, &stubScorer{}, nil)
	h.g.rough = func(day int, p *plan.Plan) float64 {
		if p == h.req.Cands[0] {
			return 1
		}
		return 10
	}
	fired := 0
	h.g.SetDriftHook(func() {
		fired++
		// Reentrancy: the lifecycle swaps a fresh model in from the hook.
		h.g.SwapScorer(&stubScorer{})
	})
	for i := 0; i < 2; i++ {
		if _, err := h.g.Serve(context.Background(), h.req); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Fatalf("drift hook fired %d times, want 1", fired)
	}
	if h.g.Quarantined() {
		t.Fatal("hook's SwapScorer should have released the quarantine")
	}
	if got := h.counter(t, "guard.quarantine.released"); got != 1 {
		t.Fatalf("guard.quarantine.released = %d, want 1", got)
	}
}
