package guard

import (
	"errors"

	"loam/internal/predictor"
	"loam/internal/telemetry"
)

// guardTelemetry holds the guard.* instruments. Every field is a nil-safe
// no-op without a registry, and every recorded value is an order-independent
// count, so parallel serving snapshots byte-identically to sequential
// serving whenever the set of per-query outcomes is the same (always true at
// injection rates 0 and 1, the rates the determinism tests pin).
type guardTelemetry struct {
	serveTotal   *telemetry.Counter
	serveLearned *telemetry.Counter
	serveShed    *telemetry.Counter
	exhausted    *telemetry.Counter

	fallbackNative  *telemetry.Counter
	fallbackDefault *telemetry.Counter

	reasonBreaker    *telemetry.Counter
	reasonShed       *telemetry.Counter
	reasonDeadline   *telemetry.Counter
	reasonNoCands    *telemetry.Counter
	reasonNoFinite   *telemetry.Counter
	reasonPredictor  *telemetry.Counter
	reasonQuarantine *telemetry.Counter

	breakerOpened     *telemetry.Counter
	breakerHalfOpened *telemetry.Counter
	breakerClosed     *telemetry.Counter
	breakerState      *telemetry.Gauge

	deadlineHits       *telemetry.Counter
	quarantineTrips    *telemetry.Counter
	quarantineReleased *telemetry.Counter
	quarantineActive   *telemetry.Gauge
	sentinelSamples    *telemetry.Counter
	sentinelAdverse    *telemetry.Counter

	injPredictor *telemetry.Counter
	injNaN       *telemetry.Counter
	injDelay     *telemetry.Counter
	injNative    *telemetry.Counter
	injSpike     *telemetry.Counter

	// Micro-batch coalescing. The request/flush counters are recorded on both
	// coalescing paths; the batch-size histogram only on the deterministic
	// ServeBatch path, because asynchronous batch composition depends on
	// goroutine arrival order and the histogram would break snapshot
	// determinism (the counters' totals would not).
	coalesceRequests *telemetry.Counter
	coalesceFlushes  *telemetry.Counter
	coalescedBatch   *telemetry.Histogram
}

// newGuardTelemetry resolves the guard instruments from a registry.
func newGuardTelemetry(reg *telemetry.Registry) guardTelemetry {
	return guardTelemetry{
		serveTotal:   reg.Counter("guard.serve.total"),
		serveLearned: reg.Counter("guard.serve.learned"),
		serveShed:    reg.Counter("guard.serve.shed"),
		exhausted:    reg.Counter("guard.serve.exhausted"),

		fallbackNative:  reg.Counter("guard.fallback.native"),
		fallbackDefault: reg.Counter("guard.fallback.default"),

		reasonBreaker:    reg.Counter("guard.fallback.reason.breaker_open"),
		reasonShed:       reg.Counter("guard.fallback.reason.load_shed"),
		reasonDeadline:   reg.Counter("guard.fallback.reason.deadline"),
		reasonNoCands:    reg.Counter("guard.fallback.reason.no_candidates"),
		reasonNoFinite:   reg.Counter("guard.fallback.reason.no_finite_estimate"),
		reasonPredictor:  reg.Counter("guard.fallback.reason.predictor_error"),
		reasonQuarantine: reg.Counter("guard.fallback.reason.quarantined"),

		breakerOpened:     reg.Counter("guard.breaker.opened"),
		breakerHalfOpened: reg.Counter("guard.breaker.half_opened"),
		breakerClosed:     reg.Counter("guard.breaker.closed"),
		breakerState:      reg.Gauge("guard.breaker.state"),

		deadlineHits:       reg.Counter("guard.deadline.hits"),
		quarantineTrips:    reg.Counter("guard.quarantine.trips"),
		quarantineReleased: reg.Counter("guard.quarantine.released"),
		quarantineActive:   reg.Gauge("guard.quarantine.active"),
		sentinelSamples:    reg.Counter("guard.sentinel.samples"),
		sentinelAdverse:    reg.Counter("guard.sentinel.adverse_samples"),

		injPredictor: reg.Counter("guard.inject.predictor_errors"),
		injNaN:       reg.Counter("guard.inject.nan_estimates"),
		injDelay:     reg.Counter("guard.inject.delays"),
		injNative:    reg.Counter("guard.inject.native_failures"),
		injSpike:     reg.Counter("guard.inject.load_spikes"),

		coalesceRequests: reg.Counter("guard.coalesce.requests"),
		coalesceFlushes:  reg.Counter("guard.coalesce.flushes"),
		coalescedBatch:   reg.Histogram("serve.batch.coalesced", telemetry.LinearBuckets(1, 1, 8)),
	}
}

// reason maps a fallback cause to its guard.fallback.reason.* counter.
func (t *guardTelemetry) reason(cause error) *telemetry.Counter {
	switch {
	case errors.Is(cause, ErrLoadShed):
		return t.reasonShed
	case errors.Is(cause, ErrBreakerOpen):
		return t.reasonBreaker
	case errors.Is(cause, ErrQuarantined):
		return t.reasonQuarantine
	case errors.Is(cause, ErrDeadline):
		return t.reasonDeadline
	case errors.Is(cause, predictor.ErrNoCandidates):
		return t.reasonNoCands
	case errors.Is(cause, predictor.ErrNoFiniteEstimate):
		return t.reasonNoFinite
	default:
		return t.reasonPredictor
	}
}
