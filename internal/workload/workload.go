// Package workload generates template-based, recurring query workloads.
//
// Production workloads in the paper are "pervasively driven by
// parameterized, template-based queries whose parameters vary across runs"
// (§4) — the stable, repetitive pattern that lets a statistics-free encoding
// infer data-distribution details from history. A Template here is such a
// parameterized query; Instantiate fills its parameters for a given day.
package workload

import (
	"fmt"
	"math"

	"loam/internal/expr"
	"loam/internal/plan"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

// FilterSpec describes one parameterized predicate of a template.
type FilterSpec struct {
	Col expr.ColumnRef
	// Fns is the comparison chain (conjunction) applied to the column.
	Fns []expr.Func
	// NDV of the column, cached for parameter drawing.
	NDV int64
	// PushDifficult marks predicates the native optimizer's default rules
	// decline to push below joins.
	PushDifficult bool
	// BaseArgs are the template's canonical parameters; instances reuse them
	// unless the parameter churn fires.
	BaseArgs [][]float64
}

// Template is one recurring parameterized query shape.
type Template struct {
	ID      string
	Project string
	Tables  []string
	Joins   []query.JoinEdge
	Filters map[string][]FilterSpec
	// PartitionFrac and ColumnsAccessed per table.
	PartitionFrac   map[string]float64
	ColumnsAccessed map[string]int
	GroupBy         []expr.ColumnRef
	Aggs            []query.AggSpec
	// NoiseSigma is the template's intrinsic cost variability; the fleet of
	// templates spans the paper's Fig.-1 spread.
	NoiseSigma float64
	// ParamChurn is the probability an instantiation redraws parameters
	// rather than reusing the canonical ones.
	ParamChurn float64
	// QueriesPerDay is the mean daily submission count.
	QueriesPerDay float64

	counter int
}

// Config tunes workload generation for one project.
type Config struct {
	NumTemplates      int
	QueriesPerDayMean float64
	MinTables         int
	MaxTables         int // paper: ~3.8 tables joined on average
	FilterProb        float64
	PushDifficultProb float64
	PartitionPrune    float64 // probability a scan prunes partitions
	AggProb           float64
	NoiseSigmaMin     float64
	NoiseSigmaMax     float64
	ParamChurn        float64
}

// DefaultConfig returns a join-heavy OLAP workload shape.
func DefaultConfig() Config {
	return Config{
		NumTemplates:      40,
		QueriesPerDayMean: 12,
		MinTables:         2,
		MaxTables:         6,
		FilterProb:        0.8,
		PushDifficultProb: 0.3,
		PartitionPrune:    0.4,
		AggProb:           0.7,
		NoiseSigmaMin:     0.03,
		NoiseSigmaMax:     0.30,
		ParamChurn:        0.6,
	}
}

// Generator produces templates and daily query batches for one project.
type Generator struct {
	Project   *warehouse.Project
	Config    Config
	Templates []*Template

	rng *simrand.RNG
}

// NewGenerator builds the template set for a project, deterministic in rng.
func NewGenerator(rng *simrand.RNG, p *warehouse.Project, cfg Config) *Generator {
	g := &Generator{Project: p, Config: cfg, rng: rng.Derive("workload")}
	stable := stableTables(p)
	if len(stable) == 0 {
		stable = p.Tables
	}
	for i := 0; i < cfg.NumTemplates; i++ {
		tRNG := g.rng.DeriveN("template", i)
		tpl := g.buildTemplate(tRNG, i, stable)
		if tpl != nil {
			g.Templates = append(g.Templates, tpl)
		}
	}
	return g
}

func stableTables(p *warehouse.Project) []*warehouse.Table {
	out := make([]*warehouse.Table, 0, len(p.Tables))
	for _, t := range p.Tables {
		if !t.Temp {
			out = append(out, t)
		}
	}
	return out
}

func (g *Generator) buildTemplate(rng *simrand.RNG, idx int, pool []*warehouse.Table) *Template {
	cfg := g.Config
	nTables := cfg.MinTables
	if cfg.MaxTables > cfg.MinTables {
		nTables += rng.Intn(cfg.MaxTables - cfg.MinTables + 1)
	}
	if nTables > len(pool) {
		nTables = len(pool)
	}
	if nTables < 1 {
		return nil
	}
	// Occasionally involve a temp table so selector rule R3 has signal.
	perm := rng.Perm(len(pool))
	tables := make([]*warehouse.Table, 0, nTables)
	for _, pi := range perm[:nTables] {
		tables = append(tables, pool[pi])
	}
	if temp := g.pickTempTable(rng); temp != nil && rng.Bool(0.15) && nTables > 1 {
		tables[len(tables)-1] = temp
	}

	tpl := &Template{
		ID:              fmt.Sprintf("%s.tpl%03d", g.Project.Name, idx),
		Project:         g.Project.Name,
		Filters:         make(map[string][]FilterSpec),
		PartitionFrac:   make(map[string]float64),
		ColumnsAccessed: make(map[string]int),
		NoiseSigma:      rng.Uniform(cfg.NoiseSigmaMin, cfg.NoiseSigmaMax),
		ParamChurn:      cfg.ParamChurn,
		QueriesPerDay:   math.Max(1, rng.Normal(cfg.QueriesPerDayMean, cfg.QueriesPerDayMean/3)),
	}
	for _, t := range tables {
		tpl.Tables = append(tpl.Tables, t.ID)
		tpl.ColumnsAccessed[t.ID] = 1 + rng.Intn(len(t.Columns))
		if rng.Bool(cfg.PartitionPrune) && t.Partitions > 1 {
			tpl.PartitionFrac[t.ID] = rng.Uniform(0.02, 0.5)
		} else {
			tpl.PartitionFrac[t.ID] = 1
		}
	}

	// Join graph: chain with occasional star edges back to the first table.
	for i := 1; i < len(tables); i++ {
		leftIdx := i - 1
		if i >= 2 && rng.Bool(0.35) {
			leftIdx = 0 // star
		}
		left, right := tables[leftIdx], tables[i]
		lc := pickJoinColumn(rng, left)
		rc := pickJoinColumn(rng, right)
		form := plan.JoinInner
		switch {
		case rng.Bool(0.10):
			form = plan.JoinLeft
		case rng.Bool(0.05):
			form = plan.JoinSemi
		}
		tpl.Joins = append(tpl.Joins, query.JoinEdge{
			LeftTable: left.ID, RightTable: right.ID,
			LeftCol: lc.Ref(left), RightCol: rc.Ref(right),
			Form: form,
		})
	}

	// Parameterized filters. A spec marked PushDifficult is genuinely
	// non-sargable (LIKE / IN expression trees) — the only kind of predicate
	// the native optimizer's conservative rules refuse to push below joins.
	for _, t := range tables {
		if !rng.Bool(cfg.FilterProb) {
			continue
		}
		nPreds := 1 + rng.Intn(2)
		specs := make([]FilterSpec, 0, nPreds)
		for pi := 0; pi < nPreds; pi++ {
			c := t.Columns[rng.Intn(len(t.Columns))]
			spec := FilterSpec{Col: c.Ref(t), NDV: c.NDV}
			if rng.Bool(cfg.PushDifficultProb) {
				spec.PushDifficult = true
				spec.Fns = []expr.Func{expr.FuncLike}
				if rng.Bool(0.3) {
					spec.Fns = append(spec.Fns, expr.FuncIn)
				}
			} else {
				spec.Fns = []expr.Func{pickCompareFunc(rng)}
				if rng.Bool(0.3) {
					spec.Fns = append(spec.Fns, pickCompareFunc(rng))
				}
			}
			spec.BaseArgs = drawArgs(rng, spec)
			specs = append(specs, spec)
		}
		tpl.Filters[t.ID] = specs
	}

	// Aggregation.
	if rng.Bool(cfg.AggProb) {
		gt := tables[rng.Intn(len(tables))]
		gc := gt.Columns[rng.Intn(len(gt.Columns))]
		tpl.GroupBy = []expr.ColumnRef{gc.Ref(gt)}
		nAggs := 1 + rng.Intn(3)
		for ai := 0; ai < nAggs; ai++ {
			at := tables[rng.Intn(len(tables))]
			ac := at.Columns[rng.Intn(len(at.Columns))]
			tpl.Aggs = append(tpl.Aggs, query.AggSpec{
				Fn:  plan.AggFunc(1 + rng.Intn(plan.NumAggFuncs)),
				Col: ac.Ref(at),
			})
		}
	}
	return tpl
}

func (g *Generator) pickTempTable(rng *simrand.RNG) *warehouse.Table {
	var temps []*warehouse.Table
	for _, t := range g.Project.Tables {
		if t.Temp {
			temps = append(temps, t)
		}
	}
	if len(temps) == 0 {
		return nil
	}
	return temps[rng.Intn(len(temps))]
}

func pickJoinColumn(rng *simrand.RNG, t *warehouse.Table) *warehouse.Column {
	// Join keys are key-like: the highest-NDV column, with a small chance of
	// the runner-up (foreign keys with moderate duplication). Low-NDV join
	// keys would produce unbounded m:n blowups no production workload runs.
	best, second := t.Columns[0], t.Columns[0]
	for _, c := range t.Columns {
		if c.NDV > best.NDV {
			second = best
			best = c
		} else if c.NDV > second.NDV || second == best {
			second = c
		}
	}
	if rng.Bool(0.2) {
		return second
	}
	return best
}

func pickCompareFunc(rng *simrand.RNG) expr.Func {
	r := rng.Float64()
	switch {
	case r < 0.35:
		return expr.FuncEQ
	case r < 0.55:
		return expr.FuncLT
	case r < 0.70:
		return expr.FuncGE
	case r < 0.80:
		return expr.FuncBetween
	case r < 0.90:
		return expr.FuncIn
	default:
		return expr.FuncLike
	}
}

func drawArgs(rng *simrand.RNG, spec FilterSpec) [][]float64 {
	out := make([][]float64, len(spec.Fns))
	for i, fn := range spec.Fns {
		switch fn {
		case expr.FuncBetween:
			a := float64(rng.Int63n(spec.NDV))
			b := float64(rng.Int63n(spec.NDV))
			if a > b {
				a, b = b, a
			}
			out[i] = []float64{a, b}
		case expr.FuncIn:
			k := 2 + rng.Intn(4)
			vals := make([]float64, k)
			for j := range vals {
				vals[j] = float64(rng.Int63n(spec.NDV))
			}
			out[i] = vals
		default:
			out[i] = []float64{float64(rng.Int63n(spec.NDV))}
		}
	}
	return out
}

// Instantiate produces one query instance of the template for a day. With
// probability ParamChurn the parameters are redrawn; otherwise the canonical
// parameters are reused (an exactly recurring query).
func (t *Template) Instantiate(rng *simrand.RNG, day int) *query.Query {
	t.counter++
	q := &query.Query{
		ID:         fmt.Sprintf("%s.q%06d", t.ID, t.counter),
		TemplateID: t.ID,
		Project:    t.Project,
		Day:        day,
		Tables:     append([]string(nil), t.Tables...),
		Inputs:     make(map[string]*query.TableInput, len(t.Tables)),
		Joins:      append([]query.JoinEdge(nil), t.Joins...),
		GroupBy:    append([]expr.ColumnRef(nil), t.GroupBy...),
		Aggs:       append([]query.AggSpec(nil), t.Aggs...),
		NoiseSigma: t.NoiseSigma,
	}
	for _, tb := range t.Tables {
		in := &query.TableInput{
			PartitionFrac:   t.PartitionFrac[tb],
			ColumnsAccessed: t.ColumnsAccessed[tb],
		}
		specs := t.Filters[tb]
		var soft, hard []*expr.Node
		for _, spec := range specs {
			args := spec.BaseArgs
			if rng.Bool(t.ParamChurn) {
				args = drawArgs(rng, spec)
			}
			for i, fn := range spec.Fns {
				p := expr.Compare(fn, spec.Col, args[i]...)
				if spec.PushDifficult {
					hard = append(hard, p)
				} else {
					soft = append(soft, p)
				}
			}
		}
		in.Pred = expr.And(soft...)
		in.HardPred = expr.And(hard...)
		q.Inputs[tb] = in
	}
	return q
}

// Day generates the day's query batch across all templates whose tables are
// alive, in deterministic order.
func (g *Generator) Day(day int) []*query.Query {
	var out []*query.Query
	dayRNG := g.rng.DeriveN("day", day)
	for _, t := range g.Templates {
		if !g.alive(t, day) {
			continue
		}
		n := poissonish(dayRNG, t.QueriesPerDay)
		for i := 0; i < n; i++ {
			out = append(out, t.Instantiate(dayRNG, day))
		}
	}
	return out
}

func (g *Generator) alive(t *Template, day int) bool {
	for _, tb := range t.Tables {
		wt := g.Project.Table(tb)
		if wt == nil || !wt.AliveOn(day) {
			return false
		}
	}
	return true
}

// poissonish approximates a Poisson draw with mean m (normal approximation
// floored at 0, exact for small m).
func poissonish(rng *simrand.RNG, m float64) int {
	if m <= 0 {
		return 0
	}
	if m < 8 {
		// Knuth's method.
		l := math.Exp(-m)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
			if k > 200 {
				return k
			}
		}
	}
	v := rng.Normal(m, math.Sqrt(m))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}
