package workload

import (
	"math"
	"testing"

	"loam/internal/expr"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

func testGenerator(seed uint64, cfg Config) *Generator {
	a := warehouse.DefaultArchetype()
	a.Name = "w"
	p := warehouse.Generate(simrand.New(seed), a)
	return NewGenerator(simrand.New(seed+1), p, cfg)
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := testGenerator(5, DefaultConfig())
	g2 := testGenerator(5, DefaultConfig())
	if len(g1.Templates) != len(g2.Templates) {
		t.Fatal("template counts differ")
	}
	for i := range g1.Templates {
		if g1.Templates[i].ID != g2.Templates[i].ID {
			t.Fatal("template ids differ")
		}
		if len(g1.Templates[i].Tables) != len(g2.Templates[i].Tables) {
			t.Fatal("template table counts differ")
		}
	}
	d1 := g1.Day(3)
	d2 := g2.Day(3)
	if len(d1) != len(d2) {
		t.Fatalf("day batches differ: %d vs %d", len(d1), len(d2))
	}
}

func TestTemplateTableBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinTables = 2
	cfg.MaxTables = 4
	g := testGenerator(6, cfg)
	for _, tpl := range g.Templates {
		if len(tpl.Tables) < 2 || len(tpl.Tables) > 4 {
			t.Fatalf("template %s has %d tables", tpl.ID, len(tpl.Tables))
		}
		// Join edges connect the template's tables.
		if len(tpl.Joins) != len(tpl.Tables)-1 {
			t.Fatalf("template %s: %d joins for %d tables", tpl.ID, len(tpl.Joins), len(tpl.Tables))
		}
	}
}

func TestInstantiateFieldsPopulated(t *testing.T) {
	g := testGenerator(7, DefaultConfig())
	tpl := g.Templates[0]
	q := tpl.Instantiate(simrand.New(1), 4)
	if q.Day != 4 || q.TemplateID != tpl.ID {
		t.Fatal("instance metadata wrong")
	}
	if len(q.Tables) != len(tpl.Tables) {
		t.Fatal("instance table list wrong")
	}
	for _, tb := range q.Tables {
		in := q.Input(tb)
		if in.PartitionFrac <= 0 || in.PartitionFrac > 1 {
			t.Fatalf("partition frac %g", in.PartitionFrac)
		}
		if in.ColumnsAccessed < 1 {
			t.Fatal("columns accessed < 1")
		}
	}
	if q.NoiseSigma <= 0 {
		t.Fatal("noise sigma missing")
	}
}

func TestZeroChurnIsExactlyRecurring(t *testing.T) {
	g := testGenerator(8, DefaultConfig())
	tpl := g.Templates[0]
	tpl.ParamChurn = 0
	rng := simrand.New(2)
	q1 := tpl.Instantiate(rng, 1)
	q2 := tpl.Instantiate(rng, 1)
	for _, tb := range q1.Tables {
		p1, p2 := q1.Input(tb).FullPred(), q2.Input(tb).FullPred()
		if (p1 == nil) != (p2 == nil) {
			t.Fatal("predicate presence differs")
		}
		if p1 != nil && p1.String() != p2.String() {
			t.Fatalf("recurring instance predicates differ:\n%s\n%s", p1, p2)
		}
	}
}

func TestChurnVariesParameters(t *testing.T) {
	g := testGenerator(9, DefaultConfig())
	varied := false
	for _, tpl := range g.Templates {
		if len(tpl.Filters) == 0 {
			continue
		}
		tpl.ParamChurn = 1
		rng := simrand.New(3)
		q1 := tpl.Instantiate(rng, 1)
		q2 := tpl.Instantiate(rng, 1)
		for _, tb := range q1.Tables {
			p1, p2 := q1.Input(tb).FullPred(), q2.Input(tb).FullPred()
			if p1 != nil && p2 != nil && p1.String() != p2.String() {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("full churn produced identical parameters everywhere")
	}
}

func TestHardPredsAreNonSargable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PushDifficultProb = 1
	cfg.FilterProb = 1
	g := testGenerator(10, cfg)
	q := g.Templates[0].Instantiate(simrand.New(4), 1)
	foundHard := false
	for _, tb := range q.Tables {
		in := q.Input(tb)
		if in.HardPred == nil {
			continue
		}
		foundHard = true
		for _, fn := range in.HardPred.Funcs() {
			if fn != expr.FuncLike && fn != expr.FuncIn && fn != expr.FuncAnd {
				t.Fatalf("hard predicate contains sargable function %v", fn)
			}
		}
	}
	if !foundHard {
		t.Fatal("no hard predicates generated at prob 1")
	}
}

func TestDaySkipsDeadTemplates(t *testing.T) {
	a := warehouse.DefaultArchetype()
	a.Name = "dead"
	a.TempTableFrac = 0.9 // most tables short-lived
	a.HorizonDays = 10
	p := warehouse.Generate(simrand.New(11), a)
	g := NewGenerator(simrand.New(12), p, DefaultConfig())
	for _, q := range g.Day(9) {
		for _, tb := range q.Tables {
			wt := p.Table(tb)
			if wt == nil || !wt.AliveOn(9) {
				t.Fatalf("query %s references dead table %s", q.ID, tb)
			}
		}
	}
}

func TestPoissonishMean(t *testing.T) {
	rng := simrand.New(13)
	for _, mean := range []float64{0.5, 3, 20} {
		total := 0
		n := 3000
		for i := 0; i < n; i++ {
			total += poissonish(rng, mean)
		}
		got := float64(total) / float64(n)
		if math.Abs(got-mean) > 0.15*mean+0.1 {
			t.Fatalf("poissonish mean %g, want %g", got, mean)
		}
	}
	if poissonish(rng, 0) != 0 {
		t.Fatal("zero mean should yield zero")
	}
}

func TestJoinKeysAreKeyLike(t *testing.T) {
	g := testGenerator(14, DefaultConfig())
	for _, tpl := range g.Templates {
		for _, j := range tpl.Joins {
			lt := g.Project.Table(j.LeftTable)
			col := lt.Column(j.LeftCol.Column)
			if col == nil {
				t.Fatalf("join column %v missing", j.LeftCol)
			}
			// The chosen key must be among the top-2 NDV columns.
			higher := 0
			for _, c := range lt.Columns {
				if c.NDV > col.NDV {
					higher++
				}
			}
			if higher > 1 {
				t.Fatalf("join key %s has %d higher-NDV alternatives", col.ID, higher)
			}
		}
	}
}
