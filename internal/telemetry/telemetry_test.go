package telemetry_test

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"loam/internal/telemetry"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("a.total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.total") != c {
		t.Fatal("counter not memoized by name")
	}
	g := r.Gauge("a.level")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
	g.Set(math.NaN())
	g.Set(math.Inf(1))
	if got := g.Value(); got != 0.75 {
		t.Fatalf("non-finite Set changed gauge to %g", got)
	}
}

func TestHistogramBucketsAndNonFinite(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN(), math.Inf(-1)} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("finite count = %d, want 5", got)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	wantCounts := []int64{2, 1, 1, 1} // le1:{0.5,1} le2:{1.5} le4:{3} inf:{100}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], want, hs.Counts)
		}
	}
	if hs.NonFinite != 2 {
		t.Fatalf("nonFinite = %d, want 2", hs.NonFinite)
	}
	if hs.Min != 0.5 || hs.Max != 100 {
		t.Fatalf("min/max = %g/%g, want 0.5/100", hs.Min, hs.Max)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *telemetry.Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	span := r.Timer("x").Start()
	span.Stop()
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.WallTimings() != nil {
		t.Fatal("nil registry wall timings not nil")
	}
}

func TestTimerCountsDeterministicSecondsSegregated(t *testing.T) {
	r := telemetry.NewRegistry()
	tm := r.Timer("t")
	for i := 0; i < 3; i++ {
		sp := tm.Start()
		sp.Stop()
	}
	snap := r.Snapshot()
	if len(snap.Timers) != 1 || snap.Timers[0].Count != 3 {
		t.Fatalf("timer snapshot %+v, want count 3", snap.Timers)
	}
	wt := r.WallTimings()
	if len(wt) != 1 || wt[0].Count != 3 || wt[0].Seconds < 0 {
		t.Fatalf("wall timings %+v", wt)
	}
}

// TestSnapshotOrderIndependent hammers one registry from many goroutines and
// requires the snapshot to equal a sequentially built one — the contract
// that makes serving-path metrics deterministic under OptimizeBatch
// parallelism.
func TestSnapshotOrderIndependent(t *testing.T) {
	build := func(parallel bool) telemetry.Snapshot {
		r := telemetry.NewRegistry()
		c := r.Counter("c")
		h := r.Histogram("h", telemetry.ExpBuckets(1, 2, 8))
		work := func(w int) {
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(float64((w*500 + i) % 97))
			}
		}
		if parallel {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) { defer wg.Done(); work(w) }(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < 8; w++ {
				work(w)
			}
		}
		return r.Snapshot()
	}
	var seq, par bytes.Buffer
	if err := build(false).WriteText(&seq); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteText(&par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel snapshot diverged from sequential:\n%s\nvs\n%s", par.String(), seq.String())
	}
}

func TestSnapshotStableText(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("mid").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.Timer("t")
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("repeated WriteText differs")
	}
	want := "counter a.first 1\ncounter z.last 2\ngauge mid 1.5\n" +
		"histogram h count=1 nonfinite=0 min=0.5 max=0.5 le1:1,inf:0\n" +
		"timer t count=0\n"
	if b1.String() != want {
		t.Fatalf("text exposition:\n%q\nwant:\n%q", b1.String(), want)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2.25)
	r.Histogram("h", []float64{1, 10}).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got telemetry.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.String())
	}
	if len(got.Counters) != 1 || got.Counters[0].Value != 1 {
		t.Fatalf("round-trip counters %+v", got.Counters)
	}
	if len(got.Histograms) != 1 || got.Histograms[0].Count != 1 {
		t.Fatalf("round-trip histograms %+v", got.Histograms)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := telemetry.LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Fatalf("linear %v", lin)
	}
	exp := telemetry.ExpBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exp %v", exp)
	}
}
