// Package telemetry is the repo's dependency-free metrics layer: a registry
// of named counters, gauges, fixed-bucket histograms, and wall-clock timers
// that the serving, training, and substrate layers report into (§7's
// production story: watching the optimizer in flight).
//
// The package is built around one contract, machine-checked by the tests and
// compatible with the repo's determinism rules (see cmd/loam-vet):
//
//   - Every value in a Snapshot is an ORDER-INDEPENDENT aggregate — integer
//     increments, bucket counts, minima/maxima — so two identically-seeded
//     runs produce byte-identical snapshots even when observations arrive
//     from concurrently scheduled goroutines (OptimizeBatch workers). This
//     is why histograms deliberately carry no floating-point sum: float
//     addition is not associative, and a sum's low bits would leak goroutine
//     scheduling into the snapshot.
//   - Wall-clock readings never enter a Snapshot. Timers route through
//     internal/walltime (the repo's only sanctioned clock boundary) and
//     split their state: the observation COUNT is deterministic and appears
//     in the snapshot, the elapsed SECONDS are reporting-only and are
//     exposed separately via WallTimings.
//   - Instruments and the registry are nil-safe: methods on a nil *Counter,
//     *Gauge, *Histogram, *Timer, or *Registry are no-ops, so un-instrumented
//     code paths need no branching.
//
// All instruments are safe for concurrent use.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"loam/internal/walltime"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. Set drops non-finite values: a NaN or ±Inf
// gauge would poison the snapshot's JSON exposition, and per the repo's NaN
// contract a non-finite reading is a bug to count, not a value to store.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; non-finite values are ignored.
func (g *Gauge) Set(v float64) {
	if g == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: counts per upper bound plus an
// implicit +Inf overflow bucket, with running min/max. Non-finite
// observations are counted separately and touch neither buckets nor
// min/max — every retained aggregate stays order-independent and
// JSON-representable.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64 // sorted ascending upper bounds (v <= bound)
	counts    []int64   // len(bounds)+1; last is overflow
	count     int64     // finite observations
	nonFinite int64     // NaN / ±Inf observations rejected
	min, max  float64   // over finite observations; valid iff count > 0
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite++
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count returns the number of finite observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Timer counts timed sections and accumulates their wall-clock duration via
// internal/walltime. The count is deterministic state (it appears in
// snapshots); the accumulated seconds are wall-clock, reporting-only, and
// surface exclusively through Registry.WallTimings.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Span is one in-flight timed section.
type Span struct {
	t  *Timer
	sw walltime.Stopwatch
}

// Start opens a timed section; Stop on the returned span closes it.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, sw: walltime.Start()}
}

// Stop records the span's elapsed wall time and increments the timer count.
func (s Span) Stop() {
	if s.t == nil {
		return
	}
	s.t.count.Add(1)
	s.t.nanos.Add(int64(s.sw.Elapsed()))
}

// Count returns the number of completed spans.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Seconds returns the accumulated wall-clock seconds. Reporting-only: this
// value must never feed simulated state or a snapshot (see package doc).
func (t *Timer) Seconds() float64 {
	if t == nil {
		return 0
	}
	return float64(t.nanos.Load()) / 1e9
}

// Registry holds named instruments. Lookup methods create on first use and
// return the existing instrument afterwards; a histogram's buckets are fixed
// by its first registration. Instruments of different kinds live in separate
// namespaces, but sharing one name across kinds is poor hygiene.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. bounds are copied and sorted; non-finite bounds
// are dropped. Later registrations under the same name return the existing
// histogram and ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, 0, len(bounds))
		for _, b := range bounds {
			if !math.IsNaN(b) && !math.IsInf(b, 0) {
				bs = append(bs, b)
			}
		}
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
