package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CounterSnap is one counter's snapshot value.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's snapshot value.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is one histogram's snapshot: cumulative-free per-bucket
// counts aligned with Bounds, plus the implicit +Inf overflow bucket as the
// final Counts element.
type HistogramSnap struct {
	Name      string    `json:"name"`
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	NonFinite int64     `json:"nonFinite"`
	Min       float64   `json:"min"`
	Max       float64   `json:"max"`
}

// TimerSnap is a timer's deterministic part: only the observation count.
// Elapsed wall seconds are exposed via Registry.WallTimings, never here.
type TimerSnap struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

// Snapshot is a stable-ordered, deterministic view of a registry: every
// section is sorted by instrument name, and every value is an
// order-independent aggregate (see the package doc), so identically-seeded
// runs render byte-identical snapshots regardless of goroutine scheduling.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	Timers     []TimerSnap     `json:"timers"`
}

// Snapshot captures the registry's deterministic state. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Snapshot{
		Counters:   counterSnaps(r.counters),
		Gauges:     gaugeSnaps(r.gauges),
		Histograms: histSnaps(r.hists),
		Timers:     timerSnaps(r.timers),
	}
}

func sortedNames[T any](m map[string]T) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func counterSnaps(m map[string]*Counter) []CounterSnap {
	names := sortedNames(m)
	out := make([]CounterSnap, len(names))
	for i, n := range names {
		out[i] = CounterSnap{Name: n, Value: m[n].Value()}
	}
	return out
}

func gaugeSnaps(m map[string]*Gauge) []GaugeSnap {
	names := sortedNames(m)
	out := make([]GaugeSnap, len(names))
	for i, n := range names {
		out[i] = GaugeSnap{Name: n, Value: m[n].Value()}
	}
	return out
}

func histSnaps(m map[string]*Histogram) []HistogramSnap {
	names := sortedNames(m)
	out := make([]HistogramSnap, len(names))
	for i, n := range names {
		h := m[n]
		h.mu.Lock()
		snap := HistogramSnap{
			Name:      n,
			Bounds:    append([]float64(nil), h.bounds...),
			Counts:    append([]int64(nil), h.counts...),
			Count:     h.count,
			NonFinite: h.nonFinite,
		}
		if h.count > 0 {
			snap.Min, snap.Max = h.min, h.max
		}
		h.mu.Unlock()
		out[i] = snap
	}
	return out
}

func timerSnaps(m map[string]*Timer) []TimerSnap {
	names := sortedNames(m)
	out := make([]TimerSnap, len(names))
	for i, n := range names {
		out[i] = TimerSnap{Name: n, Count: m[n].Count()}
	}
	return out
}

// Empty reports whether the snapshot carries no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 &&
		len(s.Histograms) == 0 && len(s.Timers) == 0
}

// fmtFloat renders a float deterministically: shortest representation that
// round-trips, the same on every run for the same value.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the snapshot in the canonical line-oriented text
// exposition:
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count=<n> nonfinite=<n> min=<v> max=<v> le<b>:<n>,...,inf:<n>
//	timer <name> count=<n>
//
// Output is byte-stable for equal snapshots.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %s\n", g.Name, fmtFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		parts := make([]string, 0, len(h.Counts))
		for i, n := range h.Counts {
			label := "inf"
			if i < len(h.Bounds) {
				label = "le" + fmtFloat(h.Bounds[i])
			}
			parts = append(parts, fmt.Sprintf("%s:%d", label, n))
		}
		if _, err := fmt.Fprintf(w, "histogram %s count=%d nonfinite=%d min=%s max=%s %s\n",
			h.Name, h.Count, h.NonFinite, fmtFloat(h.Min), fmtFloat(h.Max),
			strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	for _, t := range s.Timers {
		if _, err := fmt.Fprintf(w, "timer %s count=%d\n", t.Name, t.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON. Stable for equal
// snapshots: all sections are name-sorted slices and every value is finite.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WallTiming is one timer's wall-clock reading: reporting-only, excluded
// from Snapshot by design (see package doc).
type WallTiming struct {
	Name    string
	Count   int64
	Seconds float64
}

// WallTimings returns every timer's accumulated wall-clock seconds, sorted
// by name. The values are nondeterministic across runs; render them for
// humans, never feed them back into simulated state or snapshots.
func (r *Registry) WallTimings() []WallTiming {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := sortedNames(r.timers)
	out := make([]WallTiming, len(names))
	for i, n := range names {
		t := r.timers[n]
		out[i] = WallTiming{Name: n, Count: t.Count(), Seconds: t.Seconds()}
	}
	return out
}

// WriteWallText renders wall timings as "walltimer <name> count=<n>
// seconds=<s>" lines.
func WriteWallText(w io.Writer, ts []WallTiming) error {
	for _, t := range ts {
		if _, err := fmt.Fprintf(w, "walltimer %s count=%d seconds=%.3f\n",
			t.Name, t.Count, t.Seconds); err != nil {
			return err
		}
	}
	return nil
}
