package fleet

import (
	"context"
	"sync"

	"loam/internal/query"
	"loam/internal/telemetry"
)

// SyntheticChoice is the outcome a SyntheticTenant serves: enough shape to
// drive fleet-scale experiments (origin, lane, cache behavior) without the
// cost of a trained deployment per tenant.
type SyntheticChoice struct {
	Tenant string
	// Origin mirrors guard.Origin labels: "learned" for admitted traffic,
	// "native-fallback" for shed traffic.
	Origin string
	// CacheHit reports whether the query's template was resident in the
	// tenant's (budget-governed) cache.
	CacheHit bool
	// Shed is true when the admission gate degraded this query.
	Shed bool
	// Cause is the shed cause (wraps ErrTenantThrottled), nil when admitted.
	Cause error
}

// SyntheticTenant is a Backend for fleet-scale experiments: it serves
// instantly, but its plan cache is real — a bounded LRU keyed by query
// template whose capacity is granted (and revoked) by the registry's budget
// governor exactly like a deployment's plan-embedding cache. Ten thousand
// of these plus a handful of real deployments exercise the registry's
// sharding, admission and budget machinery at warehouse scale.
type SyntheticTenant struct {
	name string

	mu      sync.Mutex
	cap     int
	seq     int64
	entries map[string]int64 // template -> last-use sequence

	hits, misses, evictions *telemetry.Counter
}

// NewSyntheticTenant builds a synthetic backend. Cache counters aggregate
// into the shared fleet.synthetic.cache.* instruments on reg (nil-safe):
// per-tenant hit/miss outcomes depend only on that tenant's own request
// order and grant sequence, so the aggregate totals are
// scheduling-independent under parallel-across-tenants traffic.
func NewSyntheticTenant(name string, reg *telemetry.Registry) *SyntheticTenant {
	return &SyntheticTenant{
		name:      name,
		entries:   map[string]int64{},
		hits:      reg.Counter("fleet.synthetic.cache.hits"),
		misses:    reg.Counter("fleet.synthetic.cache.misses"),
		evictions: reg.Counter("fleet.synthetic.cache.evictions"),
	}
}

// OptimizeCtx serves one admitted query: an LRU probe of the template cache.
func (s *SyntheticTenant) OptimizeCtx(ctx context.Context, q *query.Query) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := q.TemplateID
	if key == "" {
		key = q.ID
	}
	s.mu.Lock()
	s.seq++
	hit := false
	if _, ok := s.entries[key]; ok {
		hit = true
		s.entries[key] = s.seq
		s.hits.Inc()
	} else {
		s.misses.Inc()
		if s.cap > 0 {
			s.entries[key] = s.seq
			s.evictOverLocked()
		}
	}
	s.mu.Unlock()
	return &SyntheticChoice{Tenant: s.name, Origin: "learned", CacheHit: hit}, nil
}

// ShedCtx serves one load-shed query from the (synthetic) fallback rung.
func (s *SyntheticTenant) ShedCtx(ctx context.Context, q *query.Query, cause error) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &SyntheticChoice{Tenant: s.name, Origin: "native-fallback", Shed: true, Cause: cause}, nil
}

// CacheLen reports resident entries.
func (s *SyntheticTenant) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// SetCacheCapacity applies a budget grant, evicting LRU entries when
// shrinking — the invariant len <= cap holds on exit and is maintained by
// every insert.
func (s *SyntheticTenant) SetCacheCapacity(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cap = n
	s.evictOverLocked()
}

// evictOverLocked evicts least-recently-used entries (ties broken by key,
// which cannot occur for live traffic since sequences are unique) until
// len <= cap. Caller holds mu. The min-reduction over the map is
// order-insensitive, so randomized iteration order cannot change the victim.
func (s *SyntheticTenant) evictOverLocked() {
	for len(s.entries) > s.cap {
		victim := ""
		var vseq int64
		first := true
		for k, sq := range s.entries {
			if first || sq < vseq || (sq == vseq && k < victim) {
				victim, vseq, first = k, sq, false
			}
		}
		delete(s.entries, victim)
		s.evictions.Inc()
	}
}
