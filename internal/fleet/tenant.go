package fleet

import (
	"sync"

	"loam/internal/floatsafe"
	"loam/internal/query"
)

// tenant is one registered project: its backend plus the admission and
// budget state the registry keeps for it. All mutable fields sit behind the
// tenant's own mutex, so per-tenant admission outcomes are a pure function
// of that tenant's serve sequence — the scheduling-independence contract.
type tenant struct {
	name    string
	backend Backend
	adm     AdmissionConfig

	mu sync.Mutex
	// tokens is the admission bucket level, in [0, adm.Burst].
	tokens float64
	// served counts serve calls since the last Rebalance — the weight by
	// which this tenant earns cache from the global budget.
	served int64
	// grant is the current cache capacity granted from the global budget.
	// Written under mu by Rebalance (and pre-publication by Register);
	// every write happens while the registry lock is also held, so
	// control-plane readers holding that lock need not take mu.
	grant int
	// recurring is the bounded set of templates this tenant has seen, FIFO
	// over first-seen order via the ring below. Membership decides the
	// priority lane.
	recurring     map[string]struct{}
	recurringRing []string
	ringHead      int
}

func newTenant(name string, b Backend, adm AdmissionConfig) *tenant {
	return &tenant{
		name:      name,
		backend:   b,
		adm:       adm,
		tokens:    adm.Burst,
		recurring: make(map[string]struct{}, adm.RecurringTemplates),
	}
}

// admit runs the token bucket for one serve call: refill, classify the
// lane, then charge. A query is recurring when its template was already in
// the tenant's recent-template set before this call. Deterministic given
// the tenant's own request sequence alone.
func (t *tenant) admit(q *query.Query) (admitted, recurring bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.served++
	recurring = t.noteTemplate(q)
	t.tokens += t.adm.RefillPerServe
	if t.tokens > t.adm.Burst {
		t.tokens = t.adm.Burst
	}
	price := t.adm.StandardCost
	if recurring {
		price = t.adm.RecurringCost
	}
	if floatsafe.LessEq(price, t.tokens) {
		t.tokens -= price
		return true, recurring
	}
	return false, recurring
}

// noteTemplate records q's template in the bounded recurring set and
// reports whether it was already present. Queries without a template never
// ride the recurring lane. Caller holds mu.
func (t *tenant) noteTemplate(q *query.Query) bool {
	id := q.TemplateID
	if id == "" || t.adm.RecurringTemplates <= 0 {
		return false
	}
	if _, ok := t.recurring[id]; ok {
		return true
	}
	if len(t.recurring) < t.adm.RecurringTemplates {
		t.recurring[id] = struct{}{}
		t.recurringRing = append(t.recurringRing, id)
		return false
	}
	// Full: evict the oldest first-seen template, FIFO.
	old := t.recurringRing[t.ringHead]
	delete(t.recurring, old)
	t.recurring[id] = struct{}{}
	t.recurringRing[t.ringHead] = id
	t.ringHead = (t.ringHead + 1) % len(t.recurringRing)
	return false
}

// refill adds n tokens (capped at Burst) — the control-plane Tick.
func (t *tenant) refill(n float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tokens += n
	if t.tokens > t.adm.Burst {
		t.tokens = t.adm.Burst
	}
}

// takeServed returns and resets the serve-count weight; called by Rebalance
// so each epoch's grants reflect the traffic since the previous one.
func (t *tenant) takeServed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.served
	t.served = 0
	return n
}

// setGrant applies a budget grant to the tenant and its backend. Called
// only with the registry lock held (see grant's field comment).
func (t *tenant) setGrant(n int) {
	t.mu.Lock()
	t.grant = n
	t.mu.Unlock()
	t.backend.SetCacheCapacity(n)
}

// stats snapshots the tenant's mutable state.
func (t *tenant) stats() TenantStats {
	t.mu.Lock()
	s := TenantStats{
		Tokens:    t.tokens,
		Served:    t.served,
		Grant:     t.grant,
		Recurring: len(t.recurring),
	}
	t.mu.Unlock()
	s.CacheLen = t.backend.CacheLen()
	return s
}
