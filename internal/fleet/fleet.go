// Package fleet is the multi-tenant serving layer: a deployment registry
// that routes per-project traffic to hash-sharded backends behind one public
// entry point (Route), governs a global plan-cache memory budget across all
// tenants, and applies per-tenant admission control so one hot project
// degrades itself — never its neighbors — under load.
//
// The paper's deployment serves >100k projects across >5k machines; the
// registry is that warehouse-scale shape in miniature. Three disciplines
// carry over from the rest of the repo:
//
//   - Lock-free request-path reads. Each shard publishes its tenant table as
//     an atomic snapshot (the same atomic.Pointer discipline lifecycle.go
//     uses for predictor hot-swap); Route loads the snapshot and never takes
//     a control-plane lock. Register/Deregister copy-and-swap under the
//     shard lock.
//   - Deterministic admission. Token buckets are clocked on serve calls,
//     never wall time (the circuit breaker's convention): each serve refills
//     a fixed fraction and charges a per-lane price, and Tick — a
//     control-plane call between traffic waves — restores burst headroom.
//     Per-tenant outcomes are a pure function of that tenant's own request
//     sequence, so fleet.* counters are scheduling-independent when traffic
//     is parallel across tenants and ordered within one.
//   - Deterministic budget governance. The global cache budget is divided by
//     Rebalance in sorted tenant order using integer arithmetic — hot
//     projects (by serve count since the last rebalance) earn cache, cold
//     ones shrink — and grants are applied under the shard lock, so
//     eviction sequences and fleet.cache.* gauges are reproducible.
//
// An over-budget tenant is never queued: Route degrades it to the backend's
// shed path (the guard's native-fallback rung), keeping availability at 100%
// while the learned path's cost is withheld. Recurring (cache-keyed) queries
// ride a cheaper priority lane, so the traffic that amortizes best through
// the plan cache is the last to shed.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"loam/internal/query"
	"loam/internal/telemetry"
)

// Sentinel errors for registry operations and admission decisions.
var (
	// ErrUnknownTenant reports routing to a project with no registered
	// backend.
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	// ErrDuplicateTenant reports registering a project twice.
	ErrDuplicateTenant = errors.New("fleet: tenant already registered")
	// ErrNilBackend reports registering a nil backend.
	ErrNilBackend = errors.New("fleet: nil backend")
	// ErrTenantThrottled is the admission gate's shed cause: the tenant's
	// token bucket is exhausted, so this query serves from the fallback
	// ladder instead of the learned path. It appears (wrapped under the
	// guard's ErrLoadShed) in the served Choice's FallbackCause — never as a
	// Route error, because shedding is degradation, not failure.
	ErrTenantThrottled = errors.New("fleet: tenant over admission budget")
)

// Backend is one tenant's serving engine. The root package adapts
// *loam.Deployment to it; synthetic tenants implement it directly for
// fleet-scale experiments. OptimizeCtx is the admitted path and ShedCtx the
// degraded one; both return the backend's native choice type as `any` (the
// root veneer restores the concrete type).
type Backend interface {
	// OptimizeCtx serves one admitted query on the full ladder (learned path
	// first). Reached only through the registry's admission gate —
	// loam-vet's guarddiscipline enforces that inside this package.
	OptimizeCtx(ctx context.Context, q *query.Query) (any, error)
	// ShedCtx serves one load-shed query from the fallback ladder only,
	// with cause recording why admission declined it.
	ShedCtx(ctx context.Context, q *query.Query, cause error) (any, error)
	// CacheLen reports the backend's current plan-cache entry count.
	CacheLen() int
	// SetCacheCapacity applies a budget grant to the backend's plan cache,
	// evicting down to n entries when shrinking.
	SetCacheCapacity(n int)
}

// Config tunes the registry. The zero value is normalized to DefaultConfig
// field-by-field.
type Config struct {
	// Shards is the number of serving shards tenants hash across.
	Shards int
	// CacheBudget is the global plan-cache budget: the sum of all tenants'
	// cache grants never exceeds it.
	CacheBudget int
	// InitialGrant caps the cache grant a tenant receives at Register time,
	// drawn from the unallocated pool; Rebalance later re-divides the whole
	// budget by observed traffic.
	InitialGrant int
	// Admission tunes the per-tenant token buckets.
	Admission AdmissionConfig
	// Metrics receives the fleet.* instruments; nil disables telemetry.
	Metrics *telemetry.Registry
}

// AdmissionConfig tunes the serve-call-clocked token buckets. All prices and
// refills are in tokens; a bucket starts full at Burst.
type AdmissionConfig struct {
	// Burst is the bucket capacity.
	Burst float64
	// RefillPerServe is added to the bucket at each of the tenant's own
	// serve calls (before charging), capped at Burst. Keeping it below
	// StandardCost makes sustained over-rate traffic drain the bucket.
	RefillPerServe float64
	// RefillPerTick is added per control-plane Tick (between traffic waves),
	// capped at Burst.
	RefillPerTick float64
	// StandardCost is the admission price of a standard-lane query.
	StandardCost float64
	// RecurringCost is the admission price of a recurring-lane query — a
	// query whose template the tenant has seen recently, i.e. the
	// cache-keyed traffic that amortizes through the plan cache. Priced
	// below StandardCost it forms the priority lane.
	RecurringCost float64
	// RecurringTemplates bounds the per-tenant set of templates considered
	// recurring (FIFO over first-seen order).
	RecurringTemplates int
}

// DefaultConfig returns serving-scale registry settings.
func DefaultConfig() Config {
	return Config{
		Shards:       8,
		CacheBudget:  4096,
		InitialGrant: 64,
		Admission: AdmissionConfig{
			Burst:              32,
			RefillPerServe:     0.75,
			RefillPerTick:      8,
			StandardCost:       1,
			RecurringCost:      0.25,
			RecurringTemplates: 32,
		},
	}
}

// normalize fills non-positive or non-finite fields from the defaults.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = d.CacheBudget
	}
	if c.InitialGrant <= 0 {
		c.InitialGrant = d.InitialGrant
	}
	c.Admission = c.Admission.normalize(d.Admission)
	return c
}

func (a AdmissionConfig) normalize(d AdmissionConfig) AdmissionConfig {
	bad := func(v float64) bool { return math.IsNaN(v) || v <= 0 }
	if bad(a.Burst) {
		a.Burst = d.Burst
	}
	if bad(a.RefillPerServe) {
		a.RefillPerServe = d.RefillPerServe
	}
	if bad(a.RefillPerTick) {
		a.RefillPerTick = d.RefillPerTick
	}
	if bad(a.StandardCost) {
		a.StandardCost = d.StandardCost
	}
	if bad(a.RecurringCost) {
		a.RecurringCost = d.RecurringCost
	}
	if a.RecurringTemplates <= 0 {
		a.RecurringTemplates = d.RecurringTemplates
	}
	return a
}

// Registry is the sharded deployment registry — the single public serving
// entry point for a fleet. Route is safe for unbounded concurrency; the
// control-plane methods (Register, Deregister, Tick, Rebalance) serialize on
// the registry lock and may run concurrently with serving.
type Registry struct {
	cfg    Config
	shards []*shard
	tel    fleetTelemetry

	// mu serializes the control plane: registration, deregistration and
	// budget accounting. Lock order: mu -> shard.mu -> tenant.mu.
	mu      sync.Mutex
	granted int // Σ live cache grants; invariant: granted <= cfg.CacheBudget
	count   int // live tenants
}

// shard holds one hash partition of the tenant table. The request path reads
// the view pointer only; mutations copy the map and swap under mu.
type shard struct {
	mu   sync.Mutex
	view atomic.Pointer[map[string]*tenant]
}

// New builds an empty registry (Config normalized via DefaultConfig).
func New(cfg Config) *Registry {
	cfg = cfg.normalize()
	r := &Registry{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		tel:    newFleetTelemetry(cfg.Metrics),
	}
	empty := map[string]*tenant{}
	for i := range r.shards {
		r.shards[i] = &shard{}
		r.shards[i].view.Store(&empty)
	}
	r.tel.budget.Set(float64(cfg.CacheBudget))
	return r
}

// Config returns the registry's normalized configuration.
func (r *Registry) Config() Config { return r.cfg }

// shardFor hashes a project name onto its shard (FNV-1a).
func (r *Registry) shardFor(project string) *shard {
	h := fnv.New32a()
	h.Write([]byte(project))
	return r.shards[int(h.Sum32())%len(r.shards)]
}

// lookup resolves a project on the lock-free request path.
func (r *Registry) lookup(project string) *tenant {
	m := r.shardFor(project).view.Load()
	return (*m)[project]
}

// Register adds a backend for project and grants it cache capacity from the
// unallocated pool (up to InitialGrant). The new tenant becomes routable the
// moment the shard view swaps.
func (r *Registry) Register(project string, b Backend) error {
	if b == nil {
		return fmt.Errorf("register %q: %w", project, ErrNilBackend)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shardFor(project)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.view.Load()
	if _, ok := old[project]; ok {
		return fmt.Errorf("register %q: %w", project, ErrDuplicateTenant)
	}
	grant := r.cfg.InitialGrant
	if free := r.cfg.CacheBudget - r.granted; grant > free {
		grant = free
	}
	if grant < 0 {
		grant = 0
	}
	t := newTenant(project, b, r.cfg.Admission)
	t.grant = grant
	b.SetCacheCapacity(grant)
	next := make(map[string]*tenant, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[project] = t
	sh.view.Store(&next)
	r.granted += grant
	r.count++
	r.tel.registered.Inc()
	r.tel.tenants.Set(float64(r.count))
	r.tel.grantedGauge.Set(float64(r.granted))
	return nil
}

// Deregister removes project's backend, returning its cache grant to the
// pool (the backend's cache capacity is set to 0 — it leaves governed and
// empty). Reports whether the project was registered.
func (r *Registry) Deregister(project string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shardFor(project)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.view.Load()
	t, ok := old[project]
	if !ok {
		return false
	}
	next := make(map[string]*tenant, len(old)-1)
	for k, v := range old {
		if k != project {
			next[k] = v
		}
	}
	sh.view.Store(&next)
	r.granted -= t.grant
	r.count--
	t.backend.SetCacheCapacity(0)
	r.tel.deregistered.Inc()
	r.tel.tenants.Set(float64(r.count))
	r.tel.grantedGauge.Set(float64(r.granted))
	return true
}

// Route serves one query for project: resolve the tenant on the lock-free
// snapshot, run the admission gate, then either the full ladder (admitted)
// or the backend's shed path (over budget). It returns the backend's choice
// value; the error is non-nil only for unknown tenants, caller
// cancellation, or a backend whose every serving rung failed — a shed, by
// design, still succeeds.
func (r *Registry) Route(ctx context.Context, project string, q *query.Query) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.tel.routeTotal.Inc()
	span := r.tel.routeLatency.Start()
	defer span.Stop()
	t := r.lookup(project)
	if t == nil {
		r.tel.routeUnknown.Inc()
		return nil, fmt.Errorf("route %q: %w", project, ErrUnknownTenant)
	}
	admitted, recurring := t.admit(q)
	if recurring {
		r.tel.laneRecurring.Inc()
	} else {
		r.tel.laneStandard.Inc()
	}
	if !admitted {
		r.tel.shed.Inc()
		out, err := t.backend.ShedCtx(ctx, q, ErrTenantThrottled)
		if err != nil {
			r.tel.routeErrors.Inc()
		}
		return out, err
	}
	r.tel.admitted.Inc()
	out, err := r.serveAdmitted(ctx, t, q)
	if err != nil {
		r.tel.routeErrors.Inc()
	}
	return out, err
}

// serveAdmitted is the one sanctioned exit from the admission gate to a
// backend's full serving ladder. Keep every Backend.OptimizeCtx call in this
// package inside this function: loam-vet's guarddiscipline analyzer flags
// any other call site, because a stray OptimizeCtx would bypass the token
// buckets entirely.
func (r *Registry) serveAdmitted(ctx context.Context, t *tenant, q *query.Query) (any, error) {
	return t.backend.OptimizeCtx(ctx, q)
}

// Tenants returns the registered project names, sorted.
func (r *Registry) Tenants() []string {
	var names []string
	for _, sh := range r.shards {
		m := *sh.view.Load()
		for name := range m {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// TenantStats is a point-in-time view of one tenant's admission and cache
// state, for tests and experiment reporting.
type TenantStats struct {
	Tokens    float64
	Served    int64
	Grant     int
	CacheLen  int
	Recurring int
}

// Stats returns project's current stats; ok is false for unknown tenants.
func (r *Registry) Stats(project string) (TenantStats, bool) {
	t := r.lookup(project)
	if t == nil {
		return TenantStats{}, false
	}
	return t.stats(), true
}
