package fleet

import "loam/internal/telemetry"

// fleetTelemetry holds the fleet.* instruments. Every field is a nil-safe
// no-op without a registry. All counters are order-independent totals and
// all gauges are set only from the control plane (under the registry lock),
// so same-seed runs snapshot byte-identically when traffic is parallel
// across tenants and ordered within each tenant — the registry's
// determinism contract. The one wall-clock instrument, fleet.route.latency,
// is a Timer: its count is deterministic, its seconds are wall-only and
// excluded from snapshots (the internal/telemetry convention).
type fleetTelemetry struct {
	routeTotal   *telemetry.Counter
	routeUnknown *telemetry.Counter
	routeErrors  *telemetry.Counter
	routeLatency *telemetry.Timer

	admitted      *telemetry.Counter
	shed          *telemetry.Counter
	laneStandard  *telemetry.Counter
	laneRecurring *telemetry.Counter
	ticks         *telemetry.Counter

	registered   *telemetry.Counter
	deregistered *telemetry.Counter
	tenants      *telemetry.Gauge

	rebalances   *telemetry.Counter
	grantChanges *telemetry.Counter
	budget       *telemetry.Gauge
	grantedGauge *telemetry.Gauge
	entriesGauge *telemetry.Gauge
}

// newFleetTelemetry resolves the fleet instruments from a registry.
func newFleetTelemetry(reg *telemetry.Registry) fleetTelemetry {
	return fleetTelemetry{
		routeTotal:   reg.Counter("fleet.route.total"),
		routeUnknown: reg.Counter("fleet.route.unknown_tenant"),
		routeErrors:  reg.Counter("fleet.route.errors"),
		routeLatency: reg.Timer("fleet.route.latency"),

		admitted:      reg.Counter("fleet.admission.admitted"),
		shed:          reg.Counter("fleet.admission.shed"),
		laneStandard:  reg.Counter("fleet.admission.lane.standard"),
		laneRecurring: reg.Counter("fleet.admission.lane.recurring"),
		ticks:         reg.Counter("fleet.admission.ticks"),

		registered:   reg.Counter("fleet.tenants.registered"),
		deregistered: reg.Counter("fleet.tenants.deregistered"),
		tenants:      reg.Gauge("fleet.tenants.active"),

		rebalances:   reg.Counter("fleet.budget.rebalances"),
		grantChanges: reg.Counter("fleet.cache.grant_changes"),
		budget:       reg.Gauge("fleet.cache.budget"),
		grantedGauge: reg.Gauge("fleet.cache.granted"),
		entriesGauge: reg.Gauge("fleet.cache.entries"),
	}
}
