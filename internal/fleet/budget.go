package fleet

import "sort"

// This file is the registry's control plane for shared resources: Tick
// restores admission headroom between traffic waves, and Rebalance
// re-divides the global plan-cache budget by observed traffic. Both are
// deterministic — integer arithmetic, sorted tenant order, logical clocks —
// so same-seed experiment runs produce identical grant sequences and
// identical fleet.cache.* gauges.

// Tick advances the fleet's logical admission clock by one step: every
// tenant's bucket refills by RefillPerTick (capped at Burst). Call it
// between traffic waves; per-tenant refills are independent, so order does
// not matter.
func (r *Registry) Tick() {
	r.tel.ticks.Inc()
	for _, sh := range r.shards {
		m := *sh.view.Load()
		for _, t := range m {
			t.refill(t.adm.RefillPerTick)
		}
	}
}

// Rebalance re-divides the global cache budget across tenants in proportion
// to each tenant's serve count since the previous rebalance — hot projects
// earn cache, cold ones shrink — and applies the new grants to the backends
// (shrinking backends evict their LRU tail down to the grant). With no
// traffic at all since the last call, every tenant weighs equally.
//
// The division is exact and deterministic: floor(budget·w/W) per tenant in
// sorted name order, with the remainder distributed one entry at a time to
// the heaviest tenants (name-ordered among ties). Grants are applied under
// each tenant's shard lock, so cache evictions triggered by shrinking are
// serialized with view swaps.
func (r *Registry) Rebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tel.rebalances.Inc()

	var ts []*tenant
	for _, sh := range r.shards {
		m := *sh.view.Load()
		for _, t := range m {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	if len(ts) == 0 {
		r.granted = 0
		r.tel.grantedGauge.Set(0)
		return
	}

	weights := make([]int64, len(ts))
	var total int64
	for i, t := range ts {
		weights[i] = t.takeServed()
		total += weights[i]
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1
		}
		total = int64(len(ts))
	}

	budget := int64(r.cfg.CacheBudget)
	grants := make([]int, len(ts))
	var given int64
	for i := range ts {
		g := budget * weights[i] / total
		grants[i] = int(g)
		given += g
	}
	// Distribute the flooring remainder to the heaviest tenants, one entry
	// each; ties break by name order (ts is name-sorted, and the sort is
	// stable).
	rem := int(budget - given)
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	for k := 0; k < rem && k < len(order); k++ {
		grants[order[k]]++
	}

	granted := 0
	for i, t := range ts {
		granted += grants[i]
		if grants[i] == t.grant {
			continue
		}
		sh := r.shardFor(t.name)
		sh.mu.Lock()
		t.setGrant(grants[i])
		sh.mu.Unlock()
		r.tel.grantChanges.Inc()
	}
	r.granted = granted
	r.tel.grantedGauge.Set(float64(granted))
}

// ApplyGrants installs a saved grant table — the fleet's warm-restore path
// after a restart. Tenants are visited in sorted name order; a tenant named
// in grants takes that grant, one absent from the table keeps its current
// grant, and every grant is clamped so the running total never exceeds the
// budget. Unknown names in grants (tenants deregistered since the save) are
// ignored. The granted sum is recomputed from what was actually applied, so
// the Granted <= Budget invariant holds whatever the table says.
func (r *Registry) ApplyGrants(grants map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()

	var ts []*tenant
	for _, sh := range r.shards {
		m := *sh.view.Load()
		for _, t := range m {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })

	granted := 0
	for _, t := range ts {
		g, ok := grants[t.name]
		if !ok {
			g = t.grant
		}
		if g < 0 {
			g = 0
		}
		if free := r.cfg.CacheBudget - granted; g > free {
			g = free
		}
		granted += g
		if g != t.grant {
			sh := r.shardFor(t.name)
			sh.mu.Lock()
			t.setGrant(g)
			sh.mu.Unlock()
			r.tel.grantChanges.Inc()
		}
	}
	r.granted = granted
	r.tel.grantedGauge.Set(float64(granted))
}

// BudgetStatus is a point-in-time view of the global cache budget.
type BudgetStatus struct {
	// Budget is the configured global entry budget.
	Budget int
	// Granted is the sum of live grants (invariant: Granted <= Budget).
	Granted int
	// Entries is the sum of live cache entries across backends (invariant:
	// Entries <= Granted when the fleet is quiescent; each backend holds
	// len <= cap at all times, so Entries <= Granted also holds at every
	// concurrent snapshot).
	Entries int
	// Tenants is the live tenant count.
	Tenants int
}

// Budget reports the current budget status and refreshes the
// fleet.cache.entries gauge.
func (r *Registry) Budget() BudgetStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ts []*tenant
	for _, sh := range r.shards {
		m := *sh.view.Load()
		for _, t := range m {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	entries := 0
	for _, t := range ts {
		entries += t.backend.CacheLen()
	}
	st := BudgetStatus{
		Budget:  r.cfg.CacheBudget,
		Granted: r.granted,
		Entries: entries,
		Tenants: r.count,
	}
	r.tel.entriesGauge.Set(float64(entries))
	return st
}
