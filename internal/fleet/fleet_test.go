package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"loam/internal/query"
	"loam/internal/telemetry"
)

func testConfig(reg *telemetry.Registry) Config {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.CacheBudget = 64
	cfg.InitialGrant = 8
	cfg.Admission = AdmissionConfig{
		Burst:              4,
		RefillPerServe:     0.5,
		RefillPerTick:      2,
		StandardCost:       1,
		RecurringCost:      0.25,
		RecurringTemplates: 8,
	}
	cfg.Metrics = reg
	return cfg
}

func q(tenant string, i int, tpl string) *query.Query {
	return &query.Query{ID: fmt.Sprintf("%s-q%d", tenant, i), TemplateID: tpl, Project: tenant}
}

// register n synthetic tenants named t000..; returns their names.
func registerN(t *testing.T, r *Registry, reg *telemetry.Registry, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%03d", i)
		if err := r.Register(names[i], NewSyntheticTenant(names[i], reg)); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

func TestRegisterRouteDeregister(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(testConfig(reg))
	names := registerN(t, r, reg, 10)

	if err := r.Register("t003", NewSyntheticTenant("x", reg)); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := r.Register("nil", nil); !errors.Is(err, ErrNilBackend) {
		t.Fatalf("nil register: %v", err)
	}
	if got := r.Tenants(); len(got) != 10 || got[0] != "t000" || got[9] != "t009" {
		t.Fatalf("Tenants() = %v", got)
	}

	out, err := r.Route(context.Background(), "t005", q("t005", 0, "tpl1"))
	if err != nil {
		t.Fatal(err)
	}
	c := out.(*SyntheticChoice)
	if c.Tenant != "t005" || c.Origin != "learned" || c.Shed {
		t.Fatalf("routed choice %+v", c)
	}

	if _, err := r.Route(context.Background(), "ghost", q("ghost", 0, "")); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if got := reg.Counter("fleet.route.unknown_tenant").Value(); got != 1 {
		t.Fatalf("unknown counter = %d", got)
	}

	if !r.Deregister("t005") {
		t.Fatal("deregister failed")
	}
	if r.Deregister("t005") {
		t.Fatal("double deregister succeeded")
	}
	if _, err := r.Route(context.Background(), "t005", q("t005", 1, "")); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("deregistered tenant still routable: %v", err)
	}
	// Its grant returned to the pool.
	st := r.Budget()
	if st.Tenants != 9 {
		t.Fatalf("tenants = %d, want 9", st.Tenants)
	}
	if st.Granted > st.Budget {
		t.Fatalf("granted %d exceeds budget %d", st.Granted, st.Budget)
	}
	_ = names

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Route(ctx, "t001", q("t001", 9, "")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled route: %v", err)
	}
}

// TestAdmissionTrajectory pins the token-bucket math for one tenant:
// burst 4, +0.5/serve, standard price 1 → exactly 8 standard queries admit
// before the bucket pins to shedding; recurring-lane queries stay admitted
// (price 0.25 < refill 0.5); Tick restores headroom for 4 more.
func TestAdmissionTrajectory(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(testConfig(reg))
	registerN(t, r, reg, 1)
	ctx := context.Background()

	var outcomes []bool
	for i := 0; i < 12; i++ {
		out, err := r.Route(ctx, "t000", q("t000", i, "")) // no template: standard lane
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, !out.(*SyntheticChoice).Shed)
	}
	// tokens: start 4, +0.5/serve capped at 4, price 1 ⇒ net −0.5/serve
	// while admitting: 7 straight admits drain to 0, then the bucket
	// oscillates (shed at 0.5, admit at 1.0) — over-rate traffic degrades
	// to roughly the sustainable rate instead of stopping.
	want := []bool{true, true, true, true, true, true, true, false, true, false, true, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("serve %d admitted=%v, want %v (trajectory %v)", i, outcomes[i], want[i], outcomes)
		}
	}
	if got := reg.Counter("fleet.admission.shed").Value(); got != 3 {
		t.Fatalf("shed = %d, want 3", got)
	}

	// A shed outcome still serves — native-fallback origin, cause chain
	// intact. Availability is the registry's whole point. (Query 99 lands
	// on the oscillation's admit beat, 100 on the shed beat.)
	if _, err := r.Route(ctx, "t000", q("t000", 99, "")); err != nil {
		t.Fatal(err)
	}
	out, err := r.Route(ctx, "t000", q("t000", 100, ""))
	if err != nil {
		t.Fatal(err)
	}
	c := out.(*SyntheticChoice)
	if !c.Shed || c.Origin != "native-fallback" || !errors.Is(c.Cause, ErrTenantThrottled) {
		t.Fatalf("shed choice %+v", c)
	}

	// Tick restores 2 tokens (0.5 + 2 = 2.5) → 4 more standard admits
	// before the bucket drains back to the oscillation point.
	r.Tick()
	admits := 0
	for i := 0; i < 4; i++ {
		out, err := r.Route(ctx, "t000", q("t000", 200+i, ""))
		if err != nil {
			t.Fatal(err)
		}
		if !out.(*SyntheticChoice).Shed {
			admits++
		}
	}
	if admits != 4 {
		t.Fatalf("post-tick admits = %d, want 4", admits)
	}
}

// TestRecurringLanePriority: once a template is in the recurring set, its
// queries price at RecurringCost < RefillPerServe, so recurring traffic
// sustains indefinitely while standard traffic sheds.
func TestRecurringLanePriority(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(testConfig(reg))
	registerN(t, r, reg, 1)
	ctx := context.Background()

	// First sight of the template is standard-lane (not yet recurring).
	out, _ := r.Route(ctx, "t000", q("t000", 0, "tpl"))
	if out.(*SyntheticChoice).Shed {
		t.Fatal("first query shed")
	}
	if got := reg.Counter("fleet.admission.lane.recurring").Value(); got != 0 {
		t.Fatalf("first sight counted recurring: %d", got)
	}
	// From the second on, the same template rides the recurring lane and
	// never sheds, even far past the standard-lane budget.
	for i := 1; i < 100; i++ {
		out, err := r.Route(ctx, "t000", q("t000", i, "tpl"))
		if err != nil {
			t.Fatal(err)
		}
		if out.(*SyntheticChoice).Shed {
			t.Fatalf("recurring query %d shed", i)
		}
	}
	if got := reg.Counter("fleet.admission.lane.recurring").Value(); got != 99 {
		t.Fatalf("recurring lane = %d, want 99", got)
	}

	// The recurring set is bounded FIFO: flooding RecurringTemplates new
	// templates evicts "tpl", so it re-enters as standard.
	for i := 0; i < 8; i++ {
		r.Route(ctx, "t000", q("t000", 300+i, fmt.Sprintf("flood%d", i)))
	}
	before := reg.Counter("fleet.admission.lane.standard").Value()
	r.Route(ctx, "t000", q("t000", 400, "tpl"))
	if got := reg.Counter("fleet.admission.lane.standard").Value(); got != before+1 {
		t.Fatal("evicted template still rode the recurring lane")
	}
}

// TestBudgetRebalance: grants track serve-count weights deterministically,
// sum exactly to the budget, and shrink a cold tenant's resident cache.
func TestBudgetRebalance(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig(reg)
	cfg.CacheBudget = 30
	cfg.InitialGrant = 10
	r := New(cfg)
	names := registerN(t, r, reg, 3)
	ctx := context.Background()

	// Registration grants: 10 each, 30 total = budget.
	st := r.Budget()
	if st.Granted != 30 {
		t.Fatalf("initial granted = %d", st.Granted)
	}

	// t000 hot (recurring lane keeps it admitted), t001 mild, t002 cold.
	for i := 0; i < 30; i++ {
		r.Route(ctx, "t000", q("t000", i, fmt.Sprintf("tpl%d", i%6)))
	}
	for i := 0; i < 6; i++ {
		r.Route(ctx, "t001", q("t001", i, fmt.Sprintf("tpl%d", i)))
	}
	// Fill t002's cache before it goes cold.
	for i := 0; i < 6; i++ {
		r.Route(ctx, "t002", q("t002", i, fmt.Sprintf("tpl%d", i)))
	}

	r.Rebalance()
	// Weights 30/6/6: grants floor(30·30/42)=21, floor(30·6/42)=4, 4 → rem 1
	// to the heaviest (t000) = 22, 4, 4.
	wantGrants := []int{22, 4, 4}
	for i, name := range names {
		s, ok := r.Stats(name)
		if !ok {
			t.Fatalf("stats %s missing", name)
		}
		if s.Grant != wantGrants[i] {
			t.Fatalf("%s grant = %d, want %d", name, s.Grant, wantGrants[i])
		}
		if s.CacheLen > s.Grant {
			t.Fatalf("%s cache %d exceeds grant %d", name, s.CacheLen, s.Grant)
		}
		if s.Served != 0 {
			t.Fatalf("%s weight not reset: %d", name, s.Served)
		}
	}
	st = r.Budget()
	if st.Granted != 30 || st.Entries > st.Budget {
		t.Fatalf("post-rebalance budget %+v", st)
	}
	// t002 had 6 resident entries, now capped at 4 — the shrink evicted.
	s, _ := r.Stats("t002")
	if s.CacheLen != 4 {
		t.Fatalf("cold tenant cache = %d, want 4", s.CacheLen)
	}
	if ev := reg.Counter("fleet.synthetic.cache.evictions").Value(); ev < 2 {
		t.Fatalf("shrink evictions = %d, want >= 2", ev)
	}

	// Quiescent rebalance: equal weights, deterministic equal split.
	r.Rebalance()
	for _, name := range names {
		s, _ := r.Stats(name)
		if s.Grant != 10 {
			t.Fatalf("quiescent grant %s = %d, want 10", name, s.Grant)
		}
	}
}

// TestRegisterBeyondBudget: once the pool is exhausted, later registrants
// get zero grant until a rebalance re-divides, and granted never exceeds
// the budget.
func TestRegisterBeyondBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig(reg)
	cfg.CacheBudget = 20
	cfg.InitialGrant = 8
	r := New(cfg)
	registerN(t, r, reg, 5) // 8+8+4+0+0
	wants := []int{8, 8, 4, 0, 0}
	for i, want := range wants {
		s, _ := r.Stats(fmt.Sprintf("t%03d", i))
		if s.Grant != want {
			t.Fatalf("t%03d grant = %d, want %d", i, s.Grant, want)
		}
	}
	if st := r.Budget(); st.Granted != 20 {
		t.Fatalf("granted = %d", st.Granted)
	}
	r.Rebalance() // equal weights: 4 each
	for i := 0; i < 5; i++ {
		s, _ := r.Stats(fmt.Sprintf("t%03d", i))
		if s.Grant != 4 {
			t.Fatalf("post-rebalance t%03d grant = %d, want 4", i, s.Grant)
		}
	}
}

// routeAll drives per-tenant query sequences through the registry with the
// given worker parallelism: parallel across tenants, ordered within one —
// the registry's determinism precondition.
func routeAll(t *testing.T, r *Registry, names []string, perTenant [][]*query.Query, workers int) {
	t.Helper()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				for _, qq := range perTenant[i] {
					if _, err := r.Route(context.Background(), names[i], qq); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// TestTelemetryParallelByteIdentical is the satellite contract: the same
// per-tenant traffic, served sequentially vs with 8 workers, snapshots the
// fleet.* (and synthetic cache) telemetry byte-identically.
func TestTelemetryParallelByteIdentical(t *testing.T) {
	build := func(workers int) string {
		reg := telemetry.NewRegistry()
		r := New(testConfig(reg))
		names := registerN(t, r, reg, 40)
		perTenant := make([][]*query.Query, len(names))
		for i, name := range names {
			n := 4 + i%7
			for j := 0; j < n; j++ {
				perTenant[i] = append(perTenant[i], q(name, j, fmt.Sprintf("tpl%d", j%3)))
			}
		}
		for wave := 0; wave < 3; wave++ {
			routeAll(t, r, names, perTenant, workers)
			r.Tick()
			r.Rebalance()
			r.Budget()
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := build(1)
	par := build(8)
	if seq != par {
		t.Fatalf("parallel snapshot differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if seq == "" {
		t.Fatal("empty snapshot")
	}
}

// TestConcurrentControlPlane races Register/Deregister/Rebalance/Tick/Budget
// against full-speed routing — the -race exercise for the snapshot-swap
// request path against the locked control plane.
func TestConcurrentControlPlane(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(testConfig(reg))
	names := registerN(t, r, reg, 16)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(g*5+i)%len(names)]
				_, err := r.Route(context.Background(), name, q(name, i, "tpl"))
				if err != nil && !errors.Is(err, ErrUnknownTenant) {
					t.Error(err)
					return
				}
				i++
			}
		}(g)
	}
	for k := 0; k < 50; k++ {
		extra := fmt.Sprintf("x%03d", k)
		if err := r.Register(extra, NewSyntheticTenant(extra, reg)); err != nil {
			t.Error(err)
		}
		r.Tick()
		r.Rebalance()
		st := r.Budget()
		if st.Granted > st.Budget {
			t.Errorf("granted %d > budget %d", st.Granted, st.Budget)
		}
		if !r.Deregister(extra) {
			t.Error("deregister failed")
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardDistribution sanity-checks FNV sharding: many tenants spread
// over all shards, and lookup resolves every one.
func TestShardDistribution(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig(reg)
	cfg.Shards = 8
	r := New(cfg)
	names := registerN(t, r, reg, 200)
	seen := map[*shard]int{}
	for _, name := range names {
		if r.lookup(name) == nil {
			t.Fatalf("lookup %s failed", name)
		}
		seen[r.shardFor(name)]++
	}
	if len(seen) != 8 {
		t.Fatalf("200 tenants landed on %d/8 shards", len(seen))
	}
}
