// Package predictor implements LOAM's adaptive cost predictor (§4, Fig. 3):
// a plan-embedding backbone (PlanEmb), a cost prediction head (CostPred),
// and a domain classifier (DomClf) behind a gradient reversal layer, trained
// jointly with the Eq.-(1) loss so the embedding is both discriminative for
// cost and invariant between historically executed default plans and
// knob-tuned candidate plans — eliminating conventional refinement
// (Challenge C3).
package predictor

import (
	"errors"
	"math"
	"runtime"

	"loam/internal/encoding"
	"loam/internal/floatsafe"
	"loam/internal/nn"
	"loam/internal/plan"
	"loam/internal/simrand"
	"loam/internal/telemetry"
	"loam/internal/walltime"
	"loam/internal/xgb"
)

// Sample is one training example: a historically executed default plan with
// its logged per-node execution environment and observed CPU cost.
type Sample struct {
	Plan *plan.Plan
	Envs encoding.EnvSource
	Cost float64
}

// Config are the predictor hyperparameters. Defaults follow the paper's
// setup (initial LR 0.01, 0.99 exponential decay; no per-project tuning).
type Config struct {
	Kind   Kind
	Hidden int
	EmbDim int
	Layers int
	Epochs int
	LR     float64
	// LRDecay is the per-epoch exponential decay factor.
	LRDecay float64
	// Adapt enables the domain-adversarial training; false yields LOAM-NA.
	Adapt bool
	// UseEnv includes execution-environment features; false yields LOAM-NL.
	UseEnv bool
	// BatchDefault and BatchCandidate size each mini-batch's two domains.
	BatchDefault   int
	BatchCandidate int
	Seed           uint64
}

// DefaultConfig returns the LOAM defaults.
func DefaultConfig() Config {
	return Config{
		Kind:           KindTCN,
		Hidden:         32,
		EmbDim:         24,
		Layers:         3,
		Epochs:         12,
		LR:             0.003,
		LRDecay:        0.99,
		Adapt:          true,
		UseEnv:         true,
		BatchDefault:   16,
		BatchCandidate: 6,
		Seed:           7,
	}
}

// Metrics reports training cost and footprint (§7.2.1, Fig. 9).
type Metrics struct {
	TrainSeconds  float64
	ModelBytes    int
	Epochs        int
	FinalCostLoss float64
	FinalDomLoss  float64
}

// Predictor is a trained adaptive cost predictor.
type Predictor struct {
	cfg    Config
	enc    *encoding.Encoder
	encCfg encoding.Config

	bb       backbone
	costHead *nn.Linear
	domHid   *nn.Linear
	domOut   *nn.Linear
	lambda   float64

	xgbModel *xgb.Model

	// Label normalization: y = (ln cost − muY)/sigmaY.
	muY, sigmaY float64
	// trainMeanEnv is the expected machine-level environment observed across
	// training plans — the §5 representative instance e_r.
	trainMeanEnv [4]float64

	// cache, when non-nil, memoizes plan embeddings for keyed environment
	// sources (see cache.go). Configured via EnablePlanCache, typically by
	// the deployment layer; nil disables caching entirely.
	cache *planCache

	// scoring tunes the SelectPlan fast path (see ScoringConfig); quant is
	// the calibrated int8/f32 cost head, non-nil iff scoring.Quantized and
	// the model has a neural cost head. Both are runtime wiring configured
	// via SetScoringConfig — serialized alongside the snapshot so a restored
	// model keeps its scoring mode, recalibrated from the weights on load.
	scoring ScoringConfig
	quant   *nn.QuantLinear

	metrics Metrics
	tel     predictorTelemetry

	// modelVersion is the lifecycle lineage number this predictor serves as
	// (0 = untracked). It rides inside the serialized snapshot so
	// SaveModel/DeployFromModel and the durable store round-trip lineage;
	// see serialize.go.
	modelVersion int
}

// predictorTelemetry holds the predictor's resolved instruments; every field
// is a nil-safe no-op until Instrument wires a registry, so untelemetered
// predictors pay nothing. Telemetry is runtime wiring, never serialized:
// Save/Load ignore it, and restored predictors re-wire via Instrument.
type predictorTelemetry struct {
	trainRuns     *telemetry.Counter
	trainSamples  *telemetry.Counter
	trainDomain   *telemetry.Counter
	adaptSteps    *telemetry.Counter
	epochCostLoss *telemetry.Histogram
	finalCostLoss *telemetry.Gauge
	finalDomLoss  *telemetry.Gauge
	trainTime     *telemetry.Timer

	selectCalls      *telemetry.Counter
	selectEmpty      *telemetry.Counter
	selectNaN        *telemetry.Counter
	selectNoFinite   *telemetry.Counter
	selectCandidates *telemetry.Histogram
	selectTime       *telemetry.Timer

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	cacheFlushes   *telemetry.Counter
	cacheSize      *telemetry.Gauge

	quantBatches   *telemetry.Counter
	quantInt8      *telemetry.Counter
	quantF32       *telemetry.Counter
	quantFallbacks *telemetry.Counter
}

// Instrument wires the predictor's training and plan-selection metrics into
// reg. Safe to call on a freshly loaded predictor before serving; must not
// race with in-flight SelectPlan calls.
func (p *Predictor) Instrument(reg *telemetry.Registry) {
	p.tel = predictorTelemetry{
		trainRuns:     reg.Counter("train.runs"),
		trainSamples:  reg.Counter("train.samples"),
		trainDomain:   reg.Counter("train.domain_plans"),
		adaptSteps:    reg.Counter("train.adapt_steps"),
		epochCostLoss: reg.Histogram("train.epoch_cost_loss", telemetry.ExpBuckets(1e-3, 10, 7)),
		finalCostLoss: reg.Gauge("train.final_cost_loss"),
		finalDomLoss:  reg.Gauge("train.final_dom_loss"),
		trainTime:     reg.Timer("train.time"),

		selectCalls:      reg.Counter("predictor.selectplan.calls"),
		selectEmpty:      reg.Counter("predictor.selectplan.empty"),
		selectNaN:        reg.Counter("predictor.selectplan.nan_estimates"),
		selectNoFinite:   reg.Counter("predictor.selectplan.no_finite"),
		selectCandidates: reg.Histogram("predictor.selectplan.candidates", telemetry.LinearBuckets(1, 1, 8)),
		selectTime:       reg.Timer("predictor.selectplan.time"),

		cacheHits:      reg.Counter("predictor.cache.hits"),
		cacheMisses:    reg.Counter("predictor.cache.misses"),
		cacheEvictions: reg.Counter("predictor.cache.evictions"),
		cacheFlushes:   reg.Counter("predictor.cache.flushes"),
		cacheSize:      reg.Gauge("predictor.cache.size"),

		// Registered unconditionally so the standard snapshot always carries
		// the quant outcome counters (zero-valued when quantization is off —
		// deterministic either way). batches counts select calls scored in
		// quant mode; int8/f32 split them by the tier whose margin check
		// certified the argmin; fallbacks counts the full-f64 recomputes.
		quantBatches:   reg.Counter("predictor.quant.batches"),
		quantInt8:      reg.Counter("predictor.quant.int8"),
		quantF32:       reg.Counter("predictor.quant.f32"),
		quantFallbacks: reg.Counter("predictor.quant.fallbacks"),
	}
}

// ErrNoTrainingData is returned when the training set is empty.
var ErrNoTrainingData = errors.New("predictor: no training data")

// ErrNoCandidates is returned by SelectPlan when the candidate set is empty.
var ErrNoCandidates = errors.New("predictor: no candidate plans")

// ErrNoFiniteEstimate is returned by SelectPlan when every candidate's cost
// estimate is NaN, so no plan can be preferred over another.
var ErrNoFiniteEstimate = errors.New("predictor: no candidate has a finite cost estimate")

// Train fits the predictor. candPlans is a small set of *unexecuted*
// candidate plans used purely for domain alignment — they carry no cost
// labels (§4, Adaptive Training Paradigm). It may be empty when cfg.Adapt is
// false.
func Train(cfg Config, enc *encoding.Encoder, train []Sample, candPlans []*plan.Plan) (*Predictor, error) {
	return TrainInstrumented(cfg, enc, train, candPlans, nil)
}

// TrainInstrumented is Train reporting into a telemetry registry: sample and
// domain-plan counts, per-epoch cost losses, adversarial adaptation steps,
// final losses, and wall training time (count deterministic, seconds
// reporting-only). A nil registry trains silently.
func TrainInstrumented(cfg Config, enc *encoding.Encoder, train []Sample, candPlans []*plan.Plan, reg *telemetry.Registry) (*Predictor, error) {
	if len(train) == 0 {
		return nil, ErrNoTrainingData
	}
	sw := walltime.Start()
	p := &Predictor{cfg: cfg, enc: enc, encCfg: enc.Config(), scoring: DefaultScoringConfig()}
	p.Instrument(reg)
	p.tel.trainRuns.Inc()
	p.tel.trainSamples.Add(int64(len(train)))
	p.tel.trainDomain.Add(int64(len(candPlans)))
	span := p.tel.trainTime.Start()
	defer span.Stop()
	p.fitNormalization(train)
	p.fitMeanEnv(train)

	if cfg.Kind == KindXGBoost {
		if err := p.trainXGB(train); err != nil {
			return nil, err
		}
		p.metrics.TrainSeconds = sw.Seconds()
		p.metrics.ModelBytes = p.xgbModel.SizeBytes()
		return p, nil
	}

	rng := simrand.New(cfg.Seed)
	switch cfg.Kind {
	case KindTransformer:
		p.bb = newTransformer(rng, enc, cfg.Hidden, 2, cfg.EmbDim)
	case KindGCN:
		p.bb = newGCN(rng, enc, cfg.Hidden, cfg.Layers, cfg.EmbDim)
	default:
		p.bb = newTCN(rng, enc, cfg.Hidden, cfg.Layers, cfg.EmbDim)
	}
	p.costHead = nn.NewLinear(rng.Derive("cost"), cfg.EmbDim, 1)
	p.domHid = nn.NewLinear(rng.Derive("domHid"), cfg.EmbDim, cfg.Hidden)
	p.domOut = nn.NewLinear(rng.Derive("domOut"), cfg.Hidden, 2)

	params := append(p.bb.params(), p.costHead.Params()...)
	params = append(params, p.domHid.Params()...)
	params = append(params, p.domOut.Params()...)
	opt := nn.NewAdam(params, cfg.LR)

	p.trainLoop(rng, opt, train, candPlans)

	p.metrics.TrainSeconds = sw.Seconds()
	p.metrics.ModelBytes = nn.ParamBytes(params)
	p.metrics.Epochs = cfg.Epochs
	return p, nil
}

func (p *Predictor) trainLoop(rng *simrand.RNG, opt *nn.Adam, train []Sample, candPlans []*plan.Plan) {
	cfg := p.cfg
	adapt := cfg.Adapt && len(candPlans) > 0
	bd := cfg.BatchDefault
	if bd <= 0 {
		bd = 16
	}
	bc := cfg.BatchCandidate
	if bc <= 0 {
		bc = 6
	}
	candEnv := encoding.FixedEnv(p.trainMeanEnv)
	if !cfg.UseEnv {
		candEnv = encoding.NoEnv()
	}

	// EMA-based automatic loss-weight balancing (wc, wd of Eq. 1).
	emaCost, emaDom := 1.0, 1.0
	const emaBeta = 0.9

	steps := (len(train) + bd - 1) / bd
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// GRL schedule from Ganin & Lempitsky: λ = 2/(1+e^{-10p}) − 1.
		prog := float64(epoch) / math.Max(1, float64(cfg.Epochs-1))
		p.lambda = 2/(1+math.Exp(-10*prog)) - 1

		order := rng.Perm(len(train))
		for s := 0; s < steps; s++ {
			lo := s * bd
			hi := lo + bd
			if hi > len(train) {
				hi = len(train)
			}
			batch := order[lo:hi]

			embDefs := make([]*nn.Tensor, 0, len(batch))
			targets := make([]float64, 0, len(batch))
			for _, i := range batch {
				sm := train[i]
				envs := sm.Envs
				if !cfg.UseEnv {
					envs = encoding.NoEnv()
				}
				embDefs = append(embDefs, p.bb.embed(sm.Plan, envs))
				targets = append(targets, p.normalize(sm.Cost))
			}
			embDef := nn.ConcatRows(embDefs...)
			costLoss := nn.MSE(p.costHead.Forward(embDef), targets)

			var loss *nn.Tensor
			var domLossVal float64
			if adapt {
				embCands := make([]*nn.Tensor, 0, bc)
				labels := make([]int, 0, len(batch)+bc)
				for range batch {
					labels = append(labels, 0)
				}
				for j := 0; j < bc; j++ {
					cp := candPlans[rng.Intn(len(candPlans))]
					embCands = append(embCands, p.bb.embed(cp, candEnv))
					labels = append(labels, 1)
				}
				embAll := nn.ConcatRows(append(append([]*nn.Tensor{}, embDefs...), embCands...)...)
				domLogits := p.domOut.Forward(nn.ReLU(p.domHid.Forward(nn.GRL(embAll, &p.lambda))))
				domLoss := nn.CrossEntropy(domLogits, labels)
				domLossVal = domLoss.Data[0]

				emaCost = emaBeta*emaCost + (1-emaBeta)*costLoss.Data[0]
				emaDom = emaBeta*emaDom + (1-emaBeta)*domLossVal
				wd := 0.0
				if emaDom > 1e-9 {
					wd = 0.5 * emaCost / emaDom
				}
				loss = nn.AddScalarLoss([]float64{1, wd}, costLoss, domLoss)
			} else {
				loss = costLoss
			}

			opt.ZeroGrad()
			loss.Backward()
			opt.Step()

			p.metrics.FinalCostLoss = costLoss.Data[0]
			p.metrics.FinalDomLoss = domLossVal
			if adapt {
				p.tel.adaptSteps.Inc()
			}
		}
		p.tel.epochCostLoss.Observe(p.metrics.FinalCostLoss)
		opt.DecayLR(cfg.LRDecay)
	}
	p.tel.finalCostLoss.Set(p.metrics.FinalCostLoss)
	p.tel.finalDomLoss.Set(p.metrics.FinalDomLoss)
}

func (p *Predictor) trainXGB(train []Sample) error {
	x := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, sm := range train {
		envs := sm.Envs
		if !p.cfg.UseEnv {
			envs = encoding.NoEnv()
		}
		x[i] = p.enc.EncodeFlat(sm.Plan, envs)
		y[i] = p.normalize(sm.Cost)
	}
	p.xgbModel = xgb.Train(xgb.DefaultConfig(), x, y)
	return nil
}

func (p *Predictor) fitNormalization(train []Sample) {
	n := float64(len(train))
	mu := 0.0
	for _, sm := range train {
		mu += safeLog(sm.Cost)
	}
	mu /= n
	v := 0.0
	for _, sm := range train {
		d := safeLog(sm.Cost) - mu
		v += d * d
	}
	p.muY = mu
	p.sigmaY = math.Sqrt(v/n) + 1e-6
}

func (p *Predictor) fitMeanEnv(train []Sample) {
	var sum [4]float64
	count := 0.0
	for _, sm := range train {
		sm.Plan.Root.Walk(func(n *plan.Node) {
			env, ok := sm.Envs(n)
			if !ok {
				return
			}
			for i := range sum {
				sum[i] += env[i]
			}
			count++
		})
	}
	if count > 0 {
		for i := range sum {
			p.trainMeanEnv[i] = sum[i] / count
		}
	}
}

func (p *Predictor) normalize(cost float64) float64 {
	return (safeLog(cost) - p.muY) / p.sigmaY
}

func (p *Predictor) denormalize(y float64) float64 {
	return math.Exp(y*p.sigmaY + p.muY)
}

func safeLog(v float64) float64 {
	if v < 1e-9 {
		v = 1e-9
	}
	return math.Log(v)
}

// Metrics returns training cost/footprint measurements.
func (p *Predictor) Metrics() Metrics { return p.metrics }

// TrainMeanEnv returns the representative environment instance e_r (§5):
// per-feature means observed across training plans.
func (p *Predictor) TrainMeanEnv() [4]float64 { return p.trainMeanEnv }

// Config returns the hyperparameter configuration the predictor was trained
// with (after Train's normalization). The model lifecycle derives retrain
// configurations from it — same architecture and budgets, a bumped seed per
// trained successor — so retrained models are deterministic descendants of
// the incumbent.
func (p *Predictor) Config() Config { return p.cfg }

// EncoderConfig returns the encoder configuration the predictor was trained
// with. After predictor.Load it is the configuration restored from the
// snapshot — callers rebinding a restored model to a serving deployment must
// rebuild their encoder from it, not from encoding.DefaultConfig.
func (p *Predictor) EncoderConfig() encoding.Config { return p.encCfg }

// PredictCost estimates a plan's CPU cost under the given environment
// source. It is safe for concurrent use once training has returned: the
// forward pass only reads the trained weights, and each call borrows private
// scratch buffers from a pool instead of building an autograd graph. The
// inference forward is bit-identical to the training-path forward (see
// internal/nn/infer.go), so moving serving onto it changed no estimate.
func (p *Predictor) PredictCost(pl *plan.Plan, envs encoding.EnvSource) float64 {
	if !p.cfg.UseEnv {
		envs = encoding.NoEnv()
	}
	if p.cfg.Kind == KindXGBoost {
		return p.denormalize(p.xgbModel.Predict(p.enc.EncodeFlat(pl, envs)))
	}
	s := getScratch()
	defer putScratch(s)
	s.nn.Reset()
	emb := p.bb.embedInfer(s, pl, envs)
	out := p.costHead.ForwardInfer(&s.nn, emb)
	return p.denormalize(out.Data[0])
}

// Strategy selects how environment features are set at inference time, when
// the execution environment is unobservable (§5).
type Strategy int

// Inference strategies of §7.2.5.
const (
	// StrategyMeanEnv predicts under the representative average-case
	// machine-level environment from training history (LOAM).
	StrategyMeanEnv Strategy = iota + 1
	// StrategyClusterExpected uses expected cluster-wide conditions fitted
	// over the past 24 h (LOAM-CE).
	StrategyClusterExpected
	// StrategyClusterCurrent uses the cluster-wide conditions at the moment
	// of optimization (LOAM-CB).
	StrategyClusterCurrent
	// StrategyNoEnv supplies no environment features (LOAM-NL; only
	// meaningful for predictors trained with UseEnv=false).
	StrategyNoEnv
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyMeanEnv:
		return "LOAM"
	case StrategyClusterExpected:
		return "LOAM-CE"
	case StrategyClusterCurrent:
		return "LOAM-CB"
	case StrategyNoEnv:
		return "LOAM-NL"
	default:
		return "Unknown"
	}
}

// EnvSourceFor materializes a strategy into an EnvSource. clusterExpected
// and clusterCurrent carry the cluster-side observations the CE/CB variants
// rely on; they are ignored by the other strategies.
func (p *Predictor) EnvSourceFor(s Strategy, clusterExpected, clusterCurrent [4]float64) encoding.EnvSource {
	switch s {
	case StrategyClusterExpected:
		return encoding.FixedEnv(clusterExpected)
	case StrategyClusterCurrent:
		return encoding.FixedEnv(clusterCurrent)
	case StrategyNoEnv:
		return encoding.NoEnv()
	default:
		return encoding.FixedEnv(p.trainMeanEnv)
	}
}

// DefaultParallelThreshold is the candidate count at or above which
// SelectPlan fans embedding work out to a worker pool when no ScoringConfig
// overrides it. With the batched cost head, sequential scoring wins below
// roughly this size — goroutine startup costs more than the embeddings —
// which is why the old hardwired constant of 4 was wrong on 1-CPU CI.
const DefaultParallelThreshold = 16

// ScoringConfig tunes the SelectPlan fast path. The zero value is normalized
// to the defaults at SetScoringConfig time.
type ScoringConfig struct {
	// ParallelThreshold is the candidate count at or above which embedding
	// work fans out to a worker pool (<= 0 takes DefaultParallelThreshold).
	// Parallel and sequential scoring are bit-identical, so this is purely a
	// latency knob.
	ParallelThreshold int `json:"parallelThreshold,omitempty"`
	// Quantized enables the quantized select path: candidate embeddings are
	// staged in float32 and the cost head is scored through calibrated int8
	// weights (escalating to float32, then full f64) under the
	// argmin-preservation contract — a quantized score is only used to pick
	// a plan when the per-batch margin check proves the f64 argmin is
	// unchanged; everything else falls back to the bit-exact f64 path,
	// counted in predictor.quant.fallbacks. PredictCost point estimates are
	// always pure f64 regardless of this flag: quantization accelerates
	// choosing between candidates, never the reported cost of one.
	Quantized bool `json:"quantized,omitempty"`
}

// DefaultScoringConfig returns the standard scoring configuration:
// DefaultParallelThreshold, quantization off.
func DefaultScoringConfig() ScoringConfig {
	return ScoringConfig{ParallelThreshold: DefaultParallelThreshold}
}

// normalize fills zero fields with defaults.
func (c ScoringConfig) normalize() ScoringConfig {
	if c.ParallelThreshold <= 0 {
		c.ParallelThreshold = DefaultParallelThreshold
	}
	return c
}

// SetScoringConfig installs cfg (zero fields normalized to defaults),
// calibrating the quantized cost head when cfg.Quantized and the model has
// a neural head (XGBoost models ignore the flag — there is no head to
// quantize). Calibration is deterministic and data-free: absmax scales are
// a pure function of the trained weights, so deploy, promote and restore
// all reproduce the identical quantized model. Like EnablePlanCache, not
// safe to call concurrently with serving.
func (p *Predictor) SetScoringConfig(cfg ScoringConfig) {
	p.scoring = cfg.normalize()
	p.quant = nil
	if p.scoring.Quantized && p.costHead != nil {
		p.quant = nn.QuantizeLinear(p.costHead)
	}
}

// ScoringConfig returns the active scoring configuration (normalized).
func (p *Predictor) ScoringConfig() ScoringConfig { return p.scoring.normalize() }

// parallelThreshold resolves the active fan-out threshold.
func (p *Predictor) parallelThreshold() int {
	if p.scoring.ParallelThreshold > 0 {
		return p.scoring.ParallelThreshold
	}
	return DefaultParallelThreshold
}

// SelectPlan returns the candidate with the lowest estimated cost, along
// with all estimates. Candidate embeddings are computed (or fetched from the
// plan cache, when enabled and the environment is keyed) concurrently on a
// bounded worker pool when the set is large enough, then scored through the
// cost head in a single batched matrix-matrix pass. The batched pass produces
// bit-identical costs to scoring candidates one at a time, and ties and NaN
// handling match the sequential argmin, so the chosen plan never depends on
// batching or the degree of parallelism.
//
// An empty candidate set returns ErrNoCandidates; candidates whose estimate
// is NaN are skipped when choosing, and if every estimate is NaN the error is
// ErrNoFiniteEstimate. The costs slice is returned even on
// ErrNoFiniteEstimate so callers can log the estimates.
func (p *Predictor) SelectPlan(cands []*plan.Plan, envs encoding.EnvSource) (best *plan.Plan, costs []float64, err error) {
	return p.selectPlan(cands, envs, encoding.EnvKey{}, 0)
}

// SelectPlanParallel is SelectPlan with an explicit worker count: 0 means
// runtime.GOMAXPROCS(0), 1 forces the sequential path (used by benchmarks to
// compare against), and anything larger bounds the embedding pool.
func (p *Predictor) SelectPlanParallel(cands []*plan.Plan, envs encoding.EnvSource, workers int) (best *plan.Plan, costs []float64, err error) {
	return p.selectPlan(cands, envs, encoding.EnvKey{}, workers)
}

// SelectPlanKeyed is SelectPlan for a keyed environment source: key must
// identify envs (see EnvKeyFor), which makes candidate embeddings eligible
// for the plan cache. An unkeyed (zero) key degrades to uncached scoring.
func (p *Predictor) SelectPlanKeyed(cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey) (best *plan.Plan, costs []float64, err error) {
	return p.selectPlan(cands, envs, key, 0)
}

func (p *Predictor) selectPlan(cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, workers int) (best *plan.Plan, costs []float64, err error) {
	p.tel.selectCalls.Inc()
	if len(cands) == 0 {
		p.tel.selectEmpty.Inc()
		return nil, nil, ErrNoCandidates
	}
	p.tel.selectCandidates.Observe(float64(len(cands)))
	span := p.tel.selectTime.Start()
	defer span.Stop()
	if !p.cfg.UseEnv {
		envs = encoding.NoEnv()
		key = encoding.NoEnvKey()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	costs = make([]float64, len(cands))
	switch {
	case p.cfg.Kind == KindXGBoost:
		p.scoreXGB(costs, cands, envs, workers)
	case p.quant != nil:
		p.tel.quantBatches.Inc()
		if !p.scoreQuant(costs, cands, envs, key) {
			// The margin check could not certify the argmin (or a score was
			// non-finite): recompute the whole batch on the bit-exact f64
			// path, so a fallback is indistinguishable from quant-off.
			p.tel.quantFallbacks.Inc()
			p.scoreBatched(costs, cands, envs, key, workers)
		}
	default:
		p.scoreBatched(costs, cands, envs, key, workers)
	}
	nans := int64(0)
	for i := range costs {
		if math.IsNaN(costs[i]) {
			nans++
		}
	}
	p.tel.selectNaN.Add(nans)
	bestIdx := floatsafe.ArgMin(costs)
	if bestIdx < 0 {
		p.tel.selectNoFinite.Inc()
		return nil, costs, ErrNoFiniteEstimate
	}
	return cands[bestIdx], costs, nil
}

// EnvKeyFor returns the cache key identifying EnvSourceFor(s, ...) with the
// same arguments. The two must stay in lockstep: a key that does not match
// its source would poison the plan cache with mismatched embeddings.
func (p *Predictor) EnvKeyFor(s Strategy, clusterExpected, clusterCurrent [4]float64) encoding.EnvKey {
	switch s {
	case StrategyClusterExpected:
		return encoding.FixedEnvKey(clusterExpected)
	case StrategyClusterCurrent:
		return encoding.FixedEnvKey(clusterCurrent)
	case StrategyNoEnv:
		return encoding.NoEnvKey()
	default:
		return encoding.FixedEnvKey(p.trainMeanEnv)
	}
}

// EnablePlanCache installs a fresh plan-embedding cache holding up to
// capacity entries (capacity <= 0 disables caching). Any previous cache is
// discarded wholesale, so calling this after retraining or on deployment is
// the cache-invalidation mechanism. Not safe to call concurrently with
// serving.
func (p *Predictor) EnablePlanCache(capacity int) {
	if capacity <= 0 {
		p.cache = nil
		return
	}
	p.cache = newPlanCache(capacity, &p.tel)
}

// SetPlanCacheCapacity resizes the plan-embedding cache in place to hold up
// to capacity entries, evicting strict-LRU tail entries when shrinking. This
// is the external-governance seam the fleet registry's global cache budget
// uses: unlike EnablePlanCache it never discards surviving entries, and once
// a cache is installed it is safe to call concurrently with serving (the
// resize happens under the cache's own lock). When no cache exists yet it
// installs an empty one — do that before serving starts, same as
// EnablePlanCache. capacity <= 0 keeps the cache installed but empty (every
// fill is immediately evicted), which is how a zero-grant tenant remains
// governable without the nil-cache special case.
func (p *Predictor) SetPlanCacheCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	if p.cache == nil {
		p.cache = newPlanCache(capacity, &p.tel)
		return
	}
	p.cache.setCapacity(capacity)
}

// PlanCacheCap reports the cache's current entry budget (0 when disabled).
func (p *Predictor) PlanCacheCap() int {
	if p.cache == nil {
		return 0
	}
	return p.cache.capacity()
}

// FlushPlanCache empties the plan cache, if one is enabled.
func (p *Predictor) FlushPlanCache() {
	if p.cache != nil {
		p.cache.flush()
	}
}

// PlanCacheLen reports the number of cached embeddings (0 when disabled).
func (p *Predictor) PlanCacheLen() int {
	if p.cache == nil {
		return 0
	}
	return p.cache.len()
}
