package predictor

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"loam/internal/encoding"
	"loam/internal/plan"
	"loam/internal/telemetry"
)

// TestQuantArgminPreserved is the contract test for quantized mode: across
// seeds, backbones and candidate-set sizes, the plan chosen with quantized
// scoring enabled is identical to the plan chosen with it off. Uncertifiable
// batches are allowed (they fall back to f64, counted), but a certified batch
// that picks a different plan is a soundness failure.
func TestQuantArgminPreserved(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	for seed := uint64(31); seed < 35; seed++ {
		samples, _ := synthetic(80, seed)
		p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		p.Instrument(reg)
		p.EnablePlanCache(256)
		envs := encoding.FixedEnv(p.TrainMeanEnv())
		key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})

		// Sweep candidate sets of varied size and composition.
		type pick struct {
			best  *plan.Plan
			cands []*plan.Plan
		}
		var sets [][]*plan.Plan
		for lo := 0; lo+2 < len(samples); lo += 7 {
			n := 2 + lo%9
			if lo+n > len(samples) {
				n = len(samples) - lo
			}
			cands := make([]*plan.Plan, n)
			for i := range cands {
				cands[i] = samples[lo+i].Plan
			}
			sets = append(sets, cands)
		}

		var want []pick
		for _, cands := range sets {
			best, _, err := p.SelectPlanKeyed(cands, envs, key)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, pick{best: best, cands: cands})
		}

		p.SetScoringConfig(ScoringConfig{Quantized: true})
		if p.quant == nil {
			t.Fatal("quantized mode did not calibrate")
		}
		for i, w := range want {
			best, costs, err := p.SelectPlanKeyed(w.cands, envs, key)
			if err != nil {
				t.Fatal(err)
			}
			if best != w.best {
				t.Fatalf("seed %d set %d: quantized mode chose a different plan", seed, i)
			}
			for j, c := range costs {
				if math.IsNaN(c) || c <= 0 {
					t.Fatalf("seed %d set %d: bad quantized estimate %v at %d", seed, i, c, j)
				}
			}
		}

		// Accounting: every quantized batch resolved on exactly one tier.
		batches := p.tel.quantBatches.Value()
		resolved := p.tel.quantInt8.Value() + p.tel.quantF32.Value() + p.tel.quantFallbacks.Value()
		if batches == 0 {
			t.Fatalf("seed %d: no quantized batches recorded", seed)
		}
		if batches != resolved {
			t.Fatalf("seed %d: %d quantized batches but %d tier resolutions", seed, batches, resolved)
		}
	}
}

// TestQuantSelectAllocParity: quantized keyed selection in the steady state
// (warm plan cache, grown scratch) allocates exactly as much as the f64 path
// — the one allowlisted returned-costs slice per call, nothing from the
// quantized tiers themselves. And PredictCost, which stays pure f64 under
// quantized mode, remains allocation-free.
func TestQuantSelectAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; allocation counts are meaningless")
	}
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 36)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.EnablePlanCache(64)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})
	cands := make([]*plan.Plan, 8)
	for i := range cands {
		cands[i] = samples[i].Plan
	}
	warmSelect := func() {
		if _, _, err := p.SelectPlanKeyed(cands, envs, key); err != nil {
			t.Fatal(err)
		}
	}
	warmSelect()
	f64Allocs := testing.AllocsPerRun(100, warmSelect)

	p.SetScoringConfig(ScoringConfig{Quantized: true})
	warmSelect()
	if got := testing.AllocsPerRun(100, warmSelect); got != f64Allocs {
		t.Fatalf("warm quantized select allocated %.1f times per run, f64 path %.1f", got, f64Allocs)
	}
	if f64Allocs > 1 {
		t.Fatalf("warm select allocated %.1f times per run, want at most the returned costs slice", f64Allocs)
	}

	p.PredictCost(cands[0], envs)
	if got := testing.AllocsPerRun(100, func() { p.PredictCost(cands[0], envs) }); got != 0 {
		t.Fatalf("PredictCost under quantized mode allocated %.1f times per run, want 0", got)
	}
}

// TestSelectPlanGroupsMatchesPerGroup: the fused group scorer must reproduce
// per-group SelectPlanKeyed exactly — bit-identical costs and the same chosen
// plan on the f64 path, the same chosen plan on the quantized path — and
// handle empty groups with the ErrNoCandidates sentinel without disturbing
// their neighbors.
func TestSelectPlanGroupsMatchesPerGroup(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(80, 37)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.EnablePlanCache(256)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})

	mkGroups := func() []Group {
		gs := make([]Group, 0, 5)
		for _, span := range [][2]int{{0, 5}, {5, 5}, {10, 0}, {10, 3}, {13, 7}} {
			cands := make([]*plan.Plan, span[1])
			for i := range cands {
				cands[i] = samples[span[0]+i].Plan
			}
			gs = append(gs, Group{Cands: cands, Envs: envs, Key: key, Costs: make([]float64, len(cands))})
		}
		return gs
	}

	check := func(name string, wantBits bool) {
		t.Helper()
		groups := mkGroups()
		p.SelectPlanGroups(groups)
		for gi := range groups {
			g := &groups[gi]
			if len(g.Cands) == 0 {
				if !errors.Is(g.Err, ErrNoCandidates) {
					t.Fatalf("%s group %d: empty group err = %v, want ErrNoCandidates", name, gi, g.Err)
				}
				continue
			}
			best, costs, err := p.SelectPlanKeyed(g.Cands, envs, key)
			if err != nil || g.Err != nil {
				t.Fatalf("%s group %d: errs %v / %v", name, gi, err, g.Err)
			}
			if g.Best != best {
				t.Fatalf("%s group %d: fused scoring chose a different plan", name, gi)
			}
			if wantBits {
				costsSameBits(t, name, costs, g.Costs)
			}
		}
	}

	check("f64", true)
	p.SetScoringConfig(ScoringConfig{Quantized: true})
	// Quantized costs are certified-argmin estimates, not bit-copies of f64;
	// only the choices are contractual.
	check("quant", false)
}

// TestSelectPlanGroupsZeroAlloc: a warm fused flush (embeddings cached,
// scratch grown, caller-owned cost arenas) is allocation-free end to end.
func TestSelectPlanGroupsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; allocation counts are meaningless")
	}
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 38)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetScoringConfig(ScoringConfig{Quantized: true})
	p.EnablePlanCache(64)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})
	groups := make([]Group, 3)
	for gi := range groups {
		cands := make([]*plan.Plan, 4)
		for i := range cands {
			cands[i] = samples[gi*4+i].Plan
		}
		groups[gi] = Group{Cands: cands, Envs: envs, Key: key, Costs: make([]float64, len(cands))}
	}
	p.SelectPlanGroups(groups)
	allocs := testing.AllocsPerRun(100, func() { p.SelectPlanGroups(groups) })
	if allocs != 0 {
		t.Fatalf("warm fused group scoring allocated %.1f times per run, want 0", allocs)
	}
}

// TestQuantSnapshotRoundTrip: Save/Load preserves the scoring configuration
// and rebuilds the quantization state, and the restored predictor picks the
// same plans as the original.
func TestQuantSnapshotRoundTrip(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 39)
	orig, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetScoringConfig(ScoringConfig{ParallelThreshold: 9, Quantized: true})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.ScoringConfig(); got != orig.ScoringConfig() {
		t.Fatalf("scoring config lost: %+v vs %+v", got, orig.ScoringConfig())
	}
	if loaded.quant == nil {
		t.Fatal("quantization state not rebuilt on load")
	}
	for j := range orig.quant.SW {
		if orig.quant.SW[j] != loaded.quant.SW[j] || orig.quant.ColAbs1[j] != loaded.quant.ColAbs1[j] {
			t.Fatalf("recalibration drifted at column %d", j)
		}
	}
	envs := encoding.FixedEnv(orig.TrainMeanEnv())
	cands := []*plan.Plan{samples[0].Plan, samples[3].Plan, samples[6].Plan, samples[9].Plan}
	wantBest, _, err := orig.SelectPlan(cands, envs)
	if err != nil {
		t.Fatal(err)
	}
	gotBest, _, err := loaded.SelectPlan(cands, envs)
	if err != nil {
		t.Fatal(err)
	}
	if wantBest != gotBest {
		t.Fatal("restored predictor chose a different plan")
	}
}

// TestQuantSnapshotOmittedWhenDefault: a predictor with the default scoring
// configuration serializes without scoring or quant fields — byte-compatible
// with snapshots written before the fields existed.
func TestQuantSnapshotOmittedWhenDefault(t *testing.T) {
	snap := savedSnapshot(t, KindTCN)
	if _, ok := snap["scoring"]; ok {
		t.Fatal("default scoring config was serialized")
	}
	if _, ok := snap["quant"]; ok {
		t.Fatal("quant state serialized without quantized mode")
	}
}

// quantSavedSnapshot trains a quantized-mode predictor and returns its
// decoded snapshot payload for tampering.
func quantSavedSnapshot(t *testing.T) map[string]json.RawMessage {
	t.Helper()
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 40)
	orig, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetScoringConfig(ScoringConfig{Quantized: true})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(framedPayload(t, buf.Bytes()), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestLoadRejectsTamperedQuantState: the stored calibration is cross-checked
// against recalibration from the restored weights; a snapshot whose scales
// disagree with its own weights is corrupt, as is an unsupported quant
// version. A quantized snapshot with the quant field dropped entirely
// recalibrates silently (the "recalibrated on restore if absent" contract).
func TestLoadRejectsTamperedQuantState(t *testing.T) {
	base := quantSavedSnapshot(t)
	if _, ok := base["quant"]; !ok {
		t.Fatal("quantized snapshot carries no quant state")
	}

	tamper := func(mut func(q *quantSnap) bool) error {
		t.Helper()
		snap := map[string]json.RawMessage{}
		for k, v := range base {
			snap[k] = v
		}
		var q quantSnap
		if err := json.Unmarshal(snap["quant"], &q); err != nil {
			t.Fatal(err)
		}
		if keep := mut(&q); keep {
			data, err := json.Marshal(&q)
			if err != nil {
				t.Fatal(err)
			}
			snap["quant"] = data
		} else {
			delete(snap, "quant")
		}
		return loadSnapshot(t, snap)
	}

	if err := tamper(func(q *quantSnap) bool { q.SW[0] += 1e-9; return true }); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("drifted scale: want ErrCorruptSnapshot, got %v", err)
	}
	if err := tamper(func(q *quantSnap) bool { q.ColAbs1 = q.ColAbs1[:0]; return true }); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("truncated column sums: want ErrCorruptSnapshot, got %v", err)
	}
	if err := tamper(func(q *quantSnap) bool { q.Version = 99; return true }); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("unknown quant version: want ErrCorruptSnapshot, got %v", err)
	}
	if err := tamper(func(q *quantSnap) bool { return false }); err != nil {
		t.Fatalf("absent quant state must recalibrate silently, got %v", err)
	}
}
