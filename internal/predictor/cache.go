package predictor

import "sync"

// planCache is a bounded LRU of plan embeddings keyed by the plan's
// structural fingerprint plus the environment key — the two inputs that fully
// determine a backbone embedding (weights are fixed per deployed predictor;
// deployment replaces the cache wholesale, which is the invalidation rule).
//
// It is a singleflight cache: the first goroutine to miss a key inserts an
// in-flight entry and computes; concurrent lookups of the same key count as
// hits and block on the entry's done channel instead of recomputing. That
// keeps hit/miss totals a function of the request sequence alone, not of
// scheduling — required by the deterministic-telemetry contract. Eviction is
// strict LRU from the tail of an intrusive list, so with a fixed request
// order the eviction sequence is deterministic too.
type planCache struct {
	mu   sync.Mutex
	cap  int
	m    map[cacheKey]*cacheEntry
	head *cacheEntry // most recently used
	tail *cacheEntry // least recently used
	tel  *predictorTelemetry
}

// cacheKey identifies one embedding: the env-independent structural plan
// fingerprint and the EnvKey sum of a keyed environment source.
type cacheKey struct {
	plan uint64
	env  uint64
}

type cacheEntry struct {
	key        cacheKey
	emb        []float64
	done       chan struct{} // closed once emb is final (or the compute failed)
	failed     bool          // set before close(done) if the compute panicked
	prev, next *cacheEntry
}

func newPlanCache(capacity int, tel *predictorTelemetry) *planCache {
	return &planCache{
		cap: capacity,
		m:   make(map[cacheKey]*cacheEntry, capacity),
		tel: tel,
	}
}

// list ops — caller holds mu.

func (c *planCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *planCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *planCache) moveFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// getOrCompute returns the cached embedding for key, computing it via compute
// on a miss. The returned slice is cache-owned and must not be mutated.
// Whether a lookup is a hit depends only on whether the key was present (or
// in flight) at lookup time, so totals do not vary with worker interleaving
// of *distinct* keys.
func (c *planCache) getOrCompute(key cacheKey, compute func() []float64) []float64 {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.moveFront(e)
		c.tel.cacheHits.Inc()
		c.mu.Unlock()
		<-e.done
		if !e.failed {
			return e.emb
		}
		// The computing goroutine died; fall back to computing locally
		// without touching the cache.
		return compute()
	}

	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.m[key] = e
	c.pushFront(e)
	c.tel.cacheMisses.Inc()
	for len(c.m) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.tel.cacheEvictions.Inc()
	}
	c.tel.cacheSize.Set(float64(len(c.m)))
	c.mu.Unlock()

	computed := false
	defer func() {
		if computed {
			return
		}
		// compute panicked: drop the in-flight entry (unless already
		// evicted) and release waiters so they retry locally.
		c.mu.Lock()
		if c.m[key] == e {
			c.unlink(e)
			delete(c.m, key)
			c.tel.cacheSize.Set(float64(len(c.m)))
		}
		c.mu.Unlock()
		e.failed = true
		close(e.done)
	}()
	emb := compute()
	e.emb = emb
	computed = true
	close(e.done)
	return emb
}

// setCapacity resizes the cache in place. Shrinking evicts strict-LRU tail
// entries (counted as evictions) under the same lock that decides hits and
// misses, so a resize interleaved with a fixed per-key request order still
// yields scheduling-independent counter totals. Unlike a fresh cache it keeps
// every surviving entry, which is what lets an external budget governor
// shrink a cold tenant without discarding its hot head. capacity < 0 clamps
// to 0: the cache stays installed but retains nothing.
func (c *planCache) setCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for len(c.m) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.tel.cacheEvictions.Inc()
	}
	c.tel.cacheSize.Set(float64(len(c.m)))
}

// capacity reports the current entry budget.
func (c *planCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// flush drops every entry. In-flight computations complete and deliver to
// their waiters but are no longer retained.
func (c *planCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[cacheKey]*cacheEntry, c.cap)
	c.head, c.tail = nil, nil
	c.tel.cacheFlushes.Inc()
	c.tel.cacheSize.Set(0)
}

// len reports the current entry count (including in-flight entries).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
