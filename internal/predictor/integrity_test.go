package predictor

// Pinned tests for the snapshot corruption taxonomy (ISSUE 9): integrity
// failures (bad checksum, truncated frame, unrecognizable header) must wrap
// BOTH ErrSnapshotIntegrity and ErrCorruptSnapshot; structural failures stay
// ErrCorruptSnapshot-only; legacy v1 bare-JSON snapshots still load.

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"loam/internal/atomicio"
	"loam/internal/encoding"
)

// trainedSnapshotBytes trains a tiny TCN and returns the predictor plus its
// framed v2 snapshot bytes.
func trainedSnapshotBytes(t *testing.T) (*Predictor, []byte) {
	t.Helper()
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 24)
	orig, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return orig, buf.Bytes()
}

// wantIntegrity asserts err matches both sentinels.
func wantIntegrity(t *testing.T, err error, what string) {
	t.Helper()
	if !errors.Is(err, ErrSnapshotIntegrity) {
		t.Fatalf("%s: want ErrSnapshotIntegrity, got %v", what, err)
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("%s: integrity error must also match ErrCorruptSnapshot, got %v", what, err)
	}
}

func TestLoadIntegrityTruncationEveryBoundary(t *testing.T) {
	_, framed := trainedSnapshotBytes(t)
	// Every truncation point — inside the magic, inside the frame header,
	// inside the payload — must fail as an integrity error, never load a
	// partial model, and never panic.
	for n := 0; n < len(framed); n++ {
		_, err := Load(bytes.NewReader(framed[:n]))
		if err == nil {
			t.Fatalf("truncation at byte %d loaded successfully", n)
		}
		wantIntegrity(t, err, "truncation")
	}
	if _, err := Load(bytes.NewReader(framed)); err != nil {
		t.Fatalf("untruncated snapshot: %v", err)
	}
}

func TestLoadIntegrityBitFlip(t *testing.T) {
	_, framed := trainedSnapshotBytes(t)
	// Stride across the file so the flips land in the magic, the frame
	// header, and the payload body; every single-bit flip must surface as
	// corruption (the JSON payload has no slack bits: length and checksum
	// guard all of it).
	stride := len(framed) * 8 / 257
	if stride < 1 {
		stride = 1
	}
	for bit := 0; bit < len(framed)*8; bit += stride {
		mut := append([]byte(nil), framed...)
		mut[bit/8] ^= 1 << (bit % 8)
		_, err := Load(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d loaded successfully", bit)
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("bit flip at %d: want ErrCorruptSnapshot, got %v", bit, err)
		}
	}
}

func TestLoadIntegrityChecksumMismatch(t *testing.T) {
	_, framed := trainedSnapshotBytes(t)
	// Flip a payload bit specifically (past magic + frame header): the frame
	// length still matches, so the failure is the checksum — the pure
	// bit-rot case.
	mut := append([]byte(nil), framed...)
	mut[len(mut)-1] ^= 0x01
	_, err := Load(bytes.NewReader(mut))
	wantIntegrity(t, err, "payload bit rot")
	if !errors.Is(err, atomicio.ErrChecksum) {
		t.Fatalf("payload bit rot: want ErrChecksum in chain, got %v", err)
	}
}

func TestStructuralErrorIsNotIntegrity(t *testing.T) {
	snap := savedSnapshot(t, KindTCN)
	var params [][]float64
	if err := json.Unmarshal(snap["params"], &params); err != nil {
		t.Fatal(err)
	}
	params = params[:len(params)-1]
	trunc, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	snap["params"] = trunc
	lerr := loadSnapshot(t, snap)
	if !errors.Is(lerr, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot, got %v", lerr)
	}
	if errors.Is(lerr, ErrSnapshotIntegrity) {
		t.Fatalf("structural mismatch must not claim an integrity failure: %v", lerr)
	}
}

func TestLoadV1Compat(t *testing.T) {
	orig, framed := trainedSnapshotBytes(t)
	// Reconstruct the legacy v1 form: bare JSON, version 1, no model field.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(framedPayload(t, framed), &snap); err != nil {
		t.Fatal(err)
	}
	snap["version"] = json.RawMessage("1")
	delete(snap, "model")
	v1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 snapshot should load: %v", err)
	}
	if loaded.ModelVersion() != 0 {
		t.Fatalf("v1 snapshot model version = %d, want 0 (untracked)", loaded.ModelVersion())
	}
	envs := encoding.FixedEnv(orig.TrainMeanEnv())
	samples, _ := synthetic(40, 24)
	for i := 0; i < 5; i++ {
		if want, got := orig.PredictCost(samples[i].Plan, envs), loaded.PredictCost(samples[i].Plan, envs); want != got {
			t.Fatalf("v1 round trip changed prediction: %g vs %g", want, got)
		}
	}

	// A v1 payload claiming a later version must be rejected, not guessed at.
	snap["version"] = json.RawMessage("3")
	v3, _ := json.Marshal(snap)
	if _, err := Load(bytes.NewReader(v3)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("bare-JSON v3: want ErrCorruptSnapshot, got %v", err)
	}
}

func TestModelVersionRoundTrip(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 25)
	orig, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetModelVersion(7)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelVersion() != 7 {
		t.Fatalf("model version = %d, want 7", loaded.ModelVersion())
	}
}
