package predictor

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"loam/internal/atomicio"
	"loam/internal/encoding"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(100, 21)
	for _, kind := range []Kind{KindTCN, KindTransformer, KindGCN, KindXGBoost} {
		orig, err := Train(tinyConfig(kind), enc, samples, cands)
		if err != nil {
			t.Fatalf("%v train: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%v save: %v", kind, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v load: %v", kind, err)
		}
		envs := encoding.FixedEnv(orig.TrainMeanEnv())
		for i := 0; i < 10; i++ {
			want := orig.PredictCost(samples[i].Plan, envs)
			got := loaded.PredictCost(samples[i].Plan, envs)
			if want != got {
				t.Fatalf("%v: prediction changed after round trip: %g vs %g", kind, want, got)
			}
		}
		if loaded.TrainMeanEnv() != orig.TrainMeanEnv() {
			t.Fatalf("%v: mean env lost", kind)
		}
		if loaded.Metrics().ModelBytes != orig.Metrics().ModelBytes {
			t.Fatalf("%v: metrics lost", kind)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version should fail")
	}
}

func TestLoadRejectsTamperedParams(t *testing.T) {
	snap := savedSnapshot(t, KindTCN)
	// Prepend a bogus one-element tensor: tensor count no longer matches the
	// architecture.
	tampered := strings.Replace(string(snap["params"]), `[[`, `[[9],[`, 1)
	snap["params"] = json.RawMessage(tampered)
	if err := loadSnapshot(t, snap); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("mismatched tensor shapes: want ErrCorruptSnapshot, got %v", err)
	}
}

// framedPayload splits a Save output into its JSON payload, failing the test
// on any framing error.
func framedPayload(t *testing.T, framed []byte) []byte {
	t.Helper()
	if !bytes.HasPrefix(framed, []byte(snapshotMagic)) {
		t.Fatalf("snapshot missing magic header")
	}
	payload, rest, err := atomicio.DecodeFrame(framed[len(snapshotMagic):])
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode snapshot frame: err=%v rest=%d", err, len(rest))
	}
	return payload
}

// savedSnapshot trains a tiny model of the given kind and returns its
// decoded snapshot payload for tampering.
func savedSnapshot(t *testing.T, kind Kind) map[string]json.RawMessage {
	t.Helper()
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 23)
	orig, err := Train(tinyConfig(kind), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(framedPayload(t, buf.Bytes()), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// loadSnapshot re-frames a (tampered) snapshot map and runs Load on it. The
// frame checksum is recomputed over the tampered payload, so structural
// validation — not the integrity check — is what these tests exercise.
func loadSnapshot(t *testing.T, snap map[string]json.RawMessage) error {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte(snapshotMagic), atomicio.EncodeFrame(data)...)
	_, lerr := Load(bytes.NewReader(framed))
	return lerr
}

func TestLoadRejectsTruncatedParamList(t *testing.T) {
	snap := savedSnapshot(t, KindTCN)
	var params [][]float64
	if err := json.Unmarshal(snap["params"], &params); err != nil {
		t.Fatal(err)
	}
	params = params[:len(params)-1]
	trunc, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	snap["params"] = trunc
	lerr := loadSnapshot(t, snap)
	if lerr == nil {
		t.Fatal("truncated param list should fail")
	}
	if !errors.Is(lerr, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot, got %v", lerr)
	}
}

func TestLoadRejectsWrongTensorShape(t *testing.T) {
	snap := savedSnapshot(t, KindTCN)
	var params [][]float64
	if err := json.Unmarshal(snap["params"], &params); err != nil {
		t.Fatal(err)
	}
	// Same tensor count, one tensor shortened: per-tensor validation must
	// catch it before any weight is copied.
	last := len(params) - 1
	params[last] = params[last][:len(params[last])-1]
	resized, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	snap["params"] = resized
	lerr := loadSnapshot(t, snap)
	if lerr == nil {
		t.Fatal("reshaped tensor should fail")
	}
	if !errors.Is(lerr, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot, got %v", lerr)
	}
}

// TestLoadRejectsKindMismatch crosses the two snapshot payload shapes: a
// neural snapshot whose config claims XGBoost (no booster present) and an
// XGBoost snapshot whose config claims a neural kind (no params present).
// Both must fail with ErrCorruptSnapshot instead of panicking or building a
// model with garbage weights.
func TestLoadRejectsKindMismatch(t *testing.T) {
	swapKind := func(snap map[string]json.RawMessage, kind Kind) {
		var cfg Config
		if err := json.Unmarshal(snap["config"], &cfg); err != nil {
			t.Fatal(err)
		}
		cfg.Kind = kind
		raw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap["config"] = raw
	}

	neural := savedSnapshot(t, KindTCN)
	swapKind(neural, KindXGBoost)
	if err := loadSnapshot(t, neural); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("neural snapshot relabeled xgboost: want ErrCorruptSnapshot, got %v", err)
	}

	booster := savedSnapshot(t, KindXGBoost)
	swapKind(booster, KindTCN)
	if err := loadSnapshot(t, booster); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("xgboost snapshot relabeled neural: want ErrCorruptSnapshot, got %v", err)
	}
}

// TestLoadRejectsBadArchitectureDims pins the pre-rebuild validation: a
// tampered config with non-positive layer sizes must fail cleanly instead
// of panicking inside the layer constructors.
func TestLoadRejectsBadArchitectureDims(t *testing.T) {
	for _, tamper := range []func(*Config){
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Layers = -1 },
		func(c *Config) { c.EmbDim = 0 },
	} {
		snap := savedSnapshot(t, KindTCN)
		var cfg Config
		if err := json.Unmarshal(snap["config"], &cfg); err != nil {
			t.Fatal(err)
		}
		tamper(&cfg)
		raw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap["config"] = raw
		if lerr := loadSnapshot(t, snap); !errors.Is(lerr, ErrCorruptSnapshot) {
			t.Fatalf("bad dims (%+v): want ErrCorruptSnapshot, got %v", cfg, lerr)
		}
	}
}
