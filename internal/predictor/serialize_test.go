package predictor

import (
	"bytes"
	"strings"
	"testing"

	"loam/internal/encoding"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(100, 21)
	for _, kind := range []Kind{KindTCN, KindTransformer, KindGCN, KindXGBoost} {
		orig, err := Train(tinyConfig(kind), enc, samples, cands)
		if err != nil {
			t.Fatalf("%v train: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%v save: %v", kind, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v load: %v", kind, err)
		}
		envs := encoding.FixedEnv(orig.TrainMeanEnv())
		for i := 0; i < 10; i++ {
			want := orig.PredictCost(samples[i].Plan, envs)
			got := loaded.PredictCost(samples[i].Plan, envs)
			if want != got {
				t.Fatalf("%v: prediction changed after round trip: %g vs %g", kind, want, got)
			}
		}
		if loaded.TrainMeanEnv() != orig.TrainMeanEnv() {
			t.Fatalf("%v: mean env lost", kind)
		}
		if loaded.Metrics().ModelBytes != orig.Metrics().ModelBytes {
			t.Fatalf("%v: metrics lost", kind)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version should fail")
	}
}

func TestLoadRejectsTamperedParams(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 22)
	orig, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the parameter list.
	s := buf.String()
	s = strings.Replace(s, `"params":[[`, `"params":[[9],[`, 1)
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Fatal("mismatched tensor shapes should fail")
	}
}
