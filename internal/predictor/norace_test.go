//go:build !race

package predictor

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
