//go:build race

package predictor

// raceEnabled reports that this binary was built with -race. The race
// detector makes sync.Pool drop items on purpose (to widen the race window),
// so allocation-count assertions on pooled paths are meaningless under it.
const raceEnabled = true
