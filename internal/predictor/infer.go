package predictor

import (
	"sync"

	"loam/internal/encoding"
	"loam/internal/nn"
	"loam/internal/plan"
)

// This file is the predictor's inference fast path: per-worker scratch
// arenas, allocation-free backbone forwards (embedInfer), and the batched
// cost-head scoring used by SelectPlan. Everything here is bit-identical to
// the autograd training-path forwards (see internal/nn/infer.go for the
// kernel-level contract), so routing serving through it changes latency and
// allocation counts but never a single predicted cost or plan choice.

// inferScratch bundles one worker's reusable inference state: the nn
// activation arena plus the flat encoding buffers each backbone kind fills
// in place. One inferScratch serves one forward pass at a time; workers each
// borrow their own from the pool.
type inferScratch struct {
	nn nn.Scratch
	ft encoding.FlatTree
	fg encoding.FlatGraph
	fs encoding.FlatSeq
}

// scratchPool recycles inference scratch state across queries and workers.
var scratchPool = sync.Pool{New: func() any { return new(inferScratch) }}

func getScratch() *inferScratch  { return scratchPool.Get().(*inferScratch) }
func putScratch(s *inferScratch) { scratchPool.Put(s) }

// poolConcat3 computes ConcatCols(MeanRows(x), MaxRows(x), SumRows(x, 1/16))
// into a single 1×3C scratch row — the TCN/GCN pooling head.
func poolConcat3(s *nn.Scratch, x nn.Mat) nn.Mat {
	pooled := s.Mat(1, 3*x.C)
	nn.MeanRowsInto(pooled.Data[:x.C], x)
	nn.MaxRowsInto(pooled.Data[x.C:2*x.C], x)
	nn.SumRowsInto(pooled.Data[2*x.C:], x, 1.0/16)
	return pooled
}

func (b *tcnBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeTreeFlatInto(&s.ft, p, envs)
	x := nn.Mat{R: s.ft.Len(), C: b.enc.Dim(), Data: s.ft.Feats}
	for _, l := range b.layers {
		x = l.ForwardInfer(&s.nn, x, s.ft.Self, s.ft.Left, s.ft.Right)
	}
	out := b.proj.ForwardInfer(&s.nn, poolConcat3(&s.nn, x))
	nn.ReLUInPlace(out)
	return out
}

func (b *gcnBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeGraphFlatInto(&s.fg, p, envs)
	n := s.fg.Len()
	ahat := nn.NormalizedAdjacencyInto(&s.nn, n, s.fg.Edges)
	x := nn.Mat{R: n, C: b.enc.Dim(), Data: s.fg.Feats}
	for _, l := range b.layers {
		x = l.ForwardInfer(&s.nn, ahat, x)
	}
	out := b.proj.ForwardInfer(&s.nn, poolConcat3(&s.nn, x))
	nn.ReLUInPlace(out)
	return out
}

func (b *transformerBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeSequenceFlatInto(&s.fs, p, envs)
	x := nn.Mat{R: s.fs.Len(), C: b.enc.SeqDim(), Data: s.fs.Feats}
	x = b.inProj.ForwardInfer(&s.nn, x)
	for _, blk := range b.blocks {
		x = blk.ForwardInfer(&s.nn, x)
	}
	pooled := s.nn.Mat(1, 2*x.C)
	nn.MeanRowsInto(pooled.Data[:x.C], x)
	nn.SumRowsInto(pooled.Data[x.C:], x, 1.0/16)
	out := b.proj.ForwardInfer(&s.nn, pooled)
	nn.ReLUInPlace(out)
	return out
}

// embedRow writes the embedding of pl into dst, consulting the plan cache
// when one is enabled and the environment source is keyed. Cache values are
// private copies, never scratch-backed slices.
func (p *Predictor) embedRow(s *inferScratch, pl *plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, dst []float64) {
	if c := p.cache; c != nil && key.Keyed {
		emb := c.getOrCompute(cacheKey{plan: pl.Root.Fingerprint(), env: key.Sum}, func() []float64 {
			s.nn.Reset()
			m := p.bb.embedInfer(s, pl, envs)
			out := make([]float64, len(m.Data))
			copy(out, m.Data)
			return out
		})
		copy(dst, emb)
		return
	}
	s.nn.Reset()
	m := p.bb.embedInfer(s, pl, envs)
	copy(dst, m.Data)
}

// scoreBatched fills costs for every candidate: embeddings are computed (or
// fetched from the plan cache) per candidate — in parallel when the worker
// budget allows — then stacked into one n×emb matrix and scored with a
// single matrix-matrix forward through the cost head, replacing n
// matrix-vector passes. Each output row is the same full-length dot product
// the sequential head computes, so costs are bit-identical to scoring
// candidates one at a time.
func (p *Predictor) scoreBatched(costs []float64, cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, workers int) {
	n := len(cands)
	embDim := p.costHead.W.R
	batch := make([]float64, n*embDim)
	if workers == 1 || n < parallelCandidateThreshold {
		s := getScratch()
		for i, c := range cands {
			p.embedRow(s, c, envs, key, batch[i*embDim:(i+1)*embDim])
		}
		putScratch(s)
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := getScratch()
				defer putScratch(s)
				for i := range next {
					p.embedRow(s, cands[i], envs, key, batch[i*embDim:(i+1)*embDim])
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	s := getScratch()
	defer putScratch(s)
	s.nn.Reset()
	out := p.costHead.ForwardInfer(&s.nn, nn.Mat{R: n, C: embDim, Data: batch})
	for i := range costs {
		costs[i] = p.denormalize(out.Data[i])
	}
}

// scoreXGB scores candidates through the XGBoost backbone, which has no
// embedding to batch or cache; the per-candidate path fans out over the
// worker pool exactly like the pre-fast-path SelectPlan.
func (p *Predictor) scoreXGB(costs []float64, cands []*plan.Plan, envs encoding.EnvSource, workers int) {
	if workers == 1 || len(cands) < parallelCandidateThreshold {
		for i, c := range cands {
			costs[i] = p.PredictCost(c, envs)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				costs[i] = p.PredictCost(cands[i], envs)
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
}
