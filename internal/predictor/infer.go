package predictor

import (
	"math"
	"sync"

	"loam/internal/encoding"
	"loam/internal/nn"
	"loam/internal/plan"
)

// This file is the predictor's inference fast path: per-worker scratch
// arenas, allocation-free backbone forwards (embedInfer), and the batched
// cost-head scoring used by SelectPlan. Everything here is bit-identical to
// the autograd training-path forwards (see internal/nn/infer.go for the
// kernel-level contract), so routing serving through it changes latency and
// allocation counts but never a single predicted cost or plan choice.

// inferScratch bundles one worker's reusable inference state: the nn
// activation arena plus the flat encoding buffers each backbone kind fills
// in place. One inferScratch serves one forward pass at a time; workers each
// borrow their own from the pool.
type inferScratch struct {
	nn nn.Scratch
	ft encoding.FlatTree
	fg encoding.FlatGraph
	fs encoding.FlatSeq

	// Cross-row staging buffers for batched scoring. They live outside the
	// nn arena on purpose: embedRow resets s.nn once per candidate, which
	// would invalidate an arena-backed batch mid-fill. All are grown with
	// the self-append idiom (growFloats and friends) so steady-state batched
	// scoring allocates nothing.
	stage   []float64 // f64 embedding batch (scoreBatched, group scoring)
	stage32 []float32 // f32 embedding batch (quantized scoring)
	row     []float64 // one f64 embedding row (embedRow32's conversion source)
	qrow    []int8    // one row's quantized inputs (ForwardInferQuant staging)
	qout    []float64 // quantized scores + bounds, interleaved [out | bound]
}

// growFloats extends buf to at least n elements. Growth is the plain
// self-append idiom — x = append(x, ...) — which the allocdiscipline
// analyzer exempts as amortized: after warm-up the loop body never runs and
// the serving path performs zero allocations.
func growFloats(buf []float64, n int) []float64 {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf
}

// growFloats32 is growFloats for float32 staging buffers.
func growFloats32(buf []float32, n int) []float32 {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf
}

// growInt8 is growFloats for int8 staging buffers.
func growInt8(buf []int8, n int) []int8 {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf
}

// scratchPool recycles inference scratch state across queries and workers.
var scratchPool = sync.Pool{New: func() any { return new(inferScratch) }}

func getScratch() *inferScratch  { return scratchPool.Get().(*inferScratch) }
func putScratch(s *inferScratch) { scratchPool.Put(s) }

// poolConcat3 computes ConcatCols(MeanRows(x), MaxRows(x), SumRows(x, 1/16))
// into a single 1×3C scratch row — the TCN/GCN pooling head.
func poolConcat3(s *nn.Scratch, x nn.Mat) nn.Mat {
	pooled := s.Mat(1, 3*x.C)
	nn.MeanRowsInto(pooled.Data[:x.C], x)
	nn.MaxRowsInto(pooled.Data[x.C:2*x.C], x)
	nn.SumRowsInto(pooled.Data[2*x.C:], x, 1.0/16)
	return pooled
}

func (b *tcnBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeTreeFlatInto(&s.ft, p, envs)
	x := nn.Mat{R: s.ft.Len(), C: b.enc.Dim(), Data: s.ft.Feats}
	for _, l := range b.layers {
		x = l.ForwardInfer(&s.nn, x, s.ft.Self, s.ft.Left, s.ft.Right)
	}
	out := b.proj.ForwardInfer(&s.nn, poolConcat3(&s.nn, x))
	nn.ReLUInPlace(out)
	return out
}

func (b *gcnBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeGraphFlatInto(&s.fg, p, envs)
	n := s.fg.Len()
	ahat := nn.NormalizedAdjacencyInto(&s.nn, n, s.fg.Edges)
	x := nn.Mat{R: n, C: b.enc.Dim(), Data: s.fg.Feats}
	for _, l := range b.layers {
		x = l.ForwardInfer(&s.nn, ahat, x)
	}
	out := b.proj.ForwardInfer(&s.nn, poolConcat3(&s.nn, x))
	nn.ReLUInPlace(out)
	return out
}

func (b *transformerBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	b.enc.EncodeSequenceFlatInto(&s.fs, p, envs)
	x := nn.Mat{R: s.fs.Len(), C: b.enc.SeqDim(), Data: s.fs.Feats}
	x = b.inProj.ForwardInfer(&s.nn, x)
	for _, blk := range b.blocks {
		x = blk.ForwardInfer(&s.nn, x)
	}
	pooled := s.nn.Mat(1, 2*x.C)
	nn.MeanRowsInto(pooled.Data[:x.C], x)
	nn.SumRowsInto(pooled.Data[x.C:], x, 1.0/16)
	out := b.proj.ForwardInfer(&s.nn, pooled)
	nn.ReLUInPlace(out)
	return out
}

// embedRow writes the embedding of pl into dst, consulting the plan cache
// when one is enabled and the environment source is keyed. Cache values are
// private copies, never scratch-backed slices.
func (p *Predictor) embedRow(s *inferScratch, pl *plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, dst []float64) {
	if c := p.cache; c != nil && key.Keyed {
		emb := c.getOrCompute(cacheKey{plan: pl.CacheFingerprint(), env: key.Sum}, func() []float64 {
			s.nn.Reset()
			m := p.bb.embedInfer(s, pl, envs)
			out := make([]float64, len(m.Data))
			copy(out, m.Data)
			return out
		})
		copy(dst, emb)
		return
	}
	s.nn.Reset()
	m := p.bb.embedInfer(s, pl, envs)
	copy(dst, m.Data)
}

// scoreBatched fills costs for every candidate: embeddings are computed (or
// fetched from the plan cache) per candidate — in parallel when the worker
// budget allows — then stacked into one n×emb matrix and scored with a
// single matrix-matrix forward through the cost head, replacing n
// matrix-vector passes. Each output row is the same full-length dot product
// the sequential head computes, so costs are bit-identical to scoring
// candidates one at a time.
func (p *Predictor) scoreBatched(costs []float64, cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, workers int) {
	n := len(cands)
	embDim := p.costHead.W.R
	s := getScratch()
	defer putScratch(s)
	s.stage = growFloats(s.stage, n*embDim)
	batch := s.stage[:n*embDim]
	if workers == 1 || n < p.parallelThreshold() {
		for i, c := range cands {
			p.embedRow(s, c, envs, key, batch[i*embDim:(i+1)*embDim])
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := getScratch()
				defer putScratch(ws)
				for i := range next {
					p.embedRow(ws, cands[i], envs, key, batch[i*embDim:(i+1)*embDim])
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	s.nn.Reset()
	out := p.costHead.ForwardInfer(&s.nn, nn.Mat{R: n, C: embDim, Data: batch})
	for i := range costs {
		costs[i] = p.denormalize(out.Data[i])
	}
}

// embedRow32 writes the f32 staging copy of pl's embedding into dst. The
// embedding itself is the exact f64 embedRow result (cache included); only
// the final copy narrows, and that narrowing is the first term of the
// quantization error model in internal/nn/quant.go.
func (p *Predictor) embedRow32(s *inferScratch, pl *plan.Plan, envs encoding.EnvSource, key encoding.EnvKey, dst []float32) {
	s.row = growFloats(s.row, len(dst))
	row := s.row[:len(dst)]
	p.embedRow(s, pl, envs, key, row)
	for i, v := range row {
		dst[i] = float32(v)
	}
}

// quantMarginGuard is the absolute separation, in normalized-score times
// sigmaY units (i.e. in log-cost space), demanded on top of the error bounds
// before a quantized argmin is certified. The guard exists for one reason:
// denormalize is exp(y·sigmaY + muY), and while it is strictly monotone over
// the reals, two distinct f64 arguments closer than ~eps64·|arg| can round to
// the same f64 cost — at which point the f64 path's ArgMin and the quantized
// path's ArgMin could break the tie at different indices. Demanding the gap
// exceed 1e-12 in log-cost space keeps both paths' denormalized costs
// strictly ordered (1e-12 is ~40 ulps at |log cost| ≈ 50, versus the ≤ 4-ulp
// wobble of the exp evaluations), so the certified index is the unique
// argmin of BOTH cost vectors.
const quantMarginGuard = 1e-12

// quantArgminCertified reports whether the quantized normalized scores out —
// each within ±bound[i] of its true f64 counterpart — provably have the same
// unique argmin as the true scores. Certification demands, for the observed
// minimum i1 and every other j:
//
//	(out[j] − bound[j]) − (out[i1] + bound[i1]) > guard/sigma
//
// i.e. even the most pessimistic placement of the true scores keeps i1
// strictly smallest, with room to spare for denormalization rounding (see
// quantMarginGuard). Any NaN score or ±Inf bound fails the comparison and
// returns false, as does a tie for the observed minimum.
func quantArgminCertified(out, bound []float64, sigma float64) bool {
	best := 0
	for i, v := range out {
		if math.IsNaN(v) {
			return false
		}
		if v < out[best] {
			best = i
		}
	}
	hi := out[best] + bound[best]
	for i, v := range out {
		if i == best {
			continue
		}
		if !((v-bound[i]-hi)*sigma > quantMarginGuard) {
			return false
		}
	}
	return true
}

// scoreQuant attempts to score the candidate set through the quantized cost
// head, filling costs with denormalized quantized estimates ONLY when the
// argmin-preservation check certifies that the f64 path would pick the same
// plan. It tries the int8 tier first, escalates to the f32 rescore tier on a
// failed margin check (the staged f32 batch is already in hand), and returns
// false — costs untouched — when neither tier certifies; the caller then
// reruns the bit-exact f64 path and counts the fallback. Embeddings are
// always computed (and cached) in full f64; quantization begins strictly at
// the cost head.
func (p *Predictor) scoreQuant(costs []float64, cands []*plan.Plan, envs encoding.EnvSource, key encoding.EnvKey) bool {
	n := len(cands)
	embDim := p.quant.In
	s := getScratch()
	defer putScratch(s)
	s.stage32 = growFloats32(s.stage32, n*embDim)
	batch := nn.Mat32{R: n, C: embDim, Data: s.stage32[:n*embDim]}
	for i, c := range cands {
		p.embedRow32(s, c, envs, key, batch.Row(i))
	}
	s.qrow = growInt8(s.qrow, embDim)
	s.qout = growFloats(s.qout, 2*n)
	out, bnd := s.qout[:n], s.qout[n:2*n]

	p.quant.ForwardInferQuant(s.qrow[:embDim], batch, out, bnd)
	if quantArgminCertified(out, bnd, p.sigmaY) {
		p.tel.quantInt8.Inc()
		for i := range costs {
			costs[i] = p.denormalize(out[i])
		}
		return true
	}
	p.quant.ForwardInfer32(batch, out, bnd)
	if quantArgminCertified(out, bnd, p.sigmaY) {
		p.tel.quantF32.Inc()
		for i := range costs {
			costs[i] = p.denormalize(out[i])
		}
		return true
	}
	return false
}

// scoreXGB scores candidates through the XGBoost backbone, which has no
// embedding to batch or cache; the per-candidate path fans out over the
// worker pool exactly like the pre-fast-path SelectPlan.
func (p *Predictor) scoreXGB(costs []float64, cands []*plan.Plan, envs encoding.EnvSource, workers int) {
	if workers == 1 || len(cands) < p.parallelThreshold() {
		for i, c := range cands {
			costs[i] = p.PredictCost(c, envs)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				costs[i] = p.PredictCost(cands[i], envs)
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
}
