package predictor

import (
	"math"

	"loam/internal/encoding"
	"loam/internal/floatsafe"
	"loam/internal/nn"
	"loam/internal/plan"
)

// Group is one query's plan-selection request inside a fused cross-query
// batch: the guard's micro-batch coalescer gathers concurrent OptimizeCtx
// calls into a []Group and scores them with a single staged cost-head pass
// (SelectPlanGroups) instead of one pass per query.
//
// Cands, Envs, Key and Costs are inputs; Best and Err are outputs. Costs is
// caller-owned and must have len(Cands) — the callee never allocates result
// storage, which is what keeps the coalesced flush path on the zero-alloc
// discipline. Errors are the same sentinels selectPlan returns
// (ErrNoCandidates, ErrNoFiniteEstimate), per group.
type Group struct {
	Cands []*plan.Plan
	Envs  encoding.EnvSource
	Key   encoding.EnvKey

	Best  *plan.Plan
	Costs []float64
	Err   error
}

// SelectPlanGroups scores every group's candidates through one fused staging
// pass: all embeddings land in a single matrix, the cost head runs over
// contiguous per-group row ranges, and each group gets exactly the plan
// SelectPlanKeyed would have picked for it alone — same scores bit for bit
// on the f64 path, same argmin-certification rules on the quantized path
// (certification is per group; a group that fails the margin check falls
// back to a bit-exact f64 pass over its own rows and is counted in
// predictor.quant.fallbacks). Per-group telemetry (select calls, candidate
// counts, NaN and no-finite counters) matches one selectPlan call per group,
// so coalescing is invisible in the standard snapshot apart from the
// serve-side batch histogram.
//
// Embedding is sequential by design: the coalescer is a latency optimization
// for small concurrent batches, and a deterministic fill order keeps the
// fused path byte-identical run to run.
func (p *Predictor) SelectPlanGroups(groups []Group) {
	if len(groups) == 0 {
		return
	}
	span := p.tel.selectTime.Start()
	defer span.Stop()

	if p.cfg.Kind == KindXGBoost {
		// No embedding stage to fuse: score each group on the sequential
		// per-candidate path.
		for gi := range groups {
			g := &groups[gi]
			p.tel.selectCalls.Inc()
			if len(g.Cands) == 0 {
				p.tel.selectEmpty.Inc()
				g.Best, g.Err = nil, ErrNoCandidates
				continue
			}
			p.tel.selectCandidates.Observe(float64(len(g.Cands)))
			envs := g.Envs
			if !p.cfg.UseEnv {
				envs = encoding.NoEnv()
			}
			p.scoreXGB(g.Costs[:len(g.Cands)], g.Cands, envs, 1)
			p.finishGroup(g)
		}
		return
	}

	embDim := p.costHead.W.R
	total := 0
	for gi := range groups {
		total += len(groups[gi].Cands)
	}
	s := getScratch()
	defer putScratch(s)
	s.stage = growFloats(s.stage, total*embDim)
	stage := s.stage[:total*embDim]

	// Stage every group's embeddings contiguously; groups keep their row
	// offsets so per-group sub-matrices are plain re-slices.
	off := 0
	for gi := range groups {
		g := &groups[gi]
		p.tel.selectCalls.Inc()
		if len(g.Cands) == 0 {
			p.tel.selectEmpty.Inc()
			g.Best, g.Err = nil, ErrNoCandidates
			continue
		}
		p.tel.selectCandidates.Observe(float64(len(g.Cands)))
		envs, key := g.Envs, g.Key
		if !p.cfg.UseEnv {
			envs = encoding.NoEnv()
			key = encoding.NoEnvKey()
		}
		for i, c := range g.Cands {
			p.embedRow(s, c, envs, key, stage[(off+i)*embDim:(off+i+1)*embDim])
		}
		off += len(g.Cands)
	}

	if p.quant != nil {
		p.scoreGroupsQuant(s, groups, stage, embDim)
	} else {
		p.scoreGroupsF64(s, groups, stage, embDim)
	}
}

// scoreGroupsF64 runs the bit-exact cost head over the fused stage in one
// matrix-matrix pass and splits the outputs back per group.
func (p *Predictor) scoreGroupsF64(s *inferScratch, groups []Group, stage []float64, embDim int) {
	n := len(stage) / embDim
	s.nn.Reset()
	out := p.costHead.ForwardInfer(&s.nn, nn.Mat{R: n, C: embDim, Data: stage})
	off := 0
	for gi := range groups {
		g := &groups[gi]
		if g.Err != nil || len(g.Cands) == 0 {
			continue
		}
		for i := range g.Cands {
			g.Costs[i] = p.denormalize(out.Data[off+i])
		}
		off += len(g.Cands)
		p.finishGroup(g)
	}
}

// scoreGroupsQuant mirrors scoreQuant across the fused batch: one int8 pass
// over every staged row, then per-group argmin certification. A group the
// int8 bound cannot certify escalates to the f32 tier over its own rows, and
// failing that recomputes its rows on the bit-exact f64 head — so each
// group's outcome (scores, choice, fallback accounting) is identical to
// scoring it alone through selectPlan.
func (p *Predictor) scoreGroupsQuant(s *inferScratch, groups []Group, stage []float64, embDim int) {
	n := len(stage) / embDim
	s.stage32 = growFloats32(s.stage32, n*embDim)
	stage32 := s.stage32[:n*embDim]
	for i, v := range stage {
		stage32[i] = float32(v)
	}
	s.qrow = growInt8(s.qrow, embDim)
	s.qout = growFloats(s.qout, 2*n)
	out, bnd := s.qout[:n], s.qout[n:2*n]
	p.quant.ForwardInferQuant(s.qrow[:embDim], nn.Mat32{R: n, C: embDim, Data: stage32}, out, bnd)

	off := 0
	for gi := range groups {
		g := &groups[gi]
		if g.Err != nil || len(g.Cands) == 0 {
			continue
		}
		gn := len(g.Cands)
		gout, gbnd := out[off:off+gn], bnd[off:off+gn]
		p.tel.quantBatches.Inc()
		switch {
		case quantArgminCertified(gout, gbnd, p.sigmaY):
			p.tel.quantInt8.Inc()
			for i := range g.Cands {
				g.Costs[i] = p.denormalize(gout[i])
			}
		default:
			sub := nn.Mat32{R: gn, C: embDim, Data: stage32[off*embDim : (off+gn)*embDim]}
			p.quant.ForwardInfer32(sub, gout, gbnd)
			if quantArgminCertified(gout, gbnd, p.sigmaY) {
				p.tel.quantF32.Inc()
				for i := range g.Cands {
					g.Costs[i] = p.denormalize(gout[i])
				}
			} else {
				p.tel.quantFallbacks.Inc()
				s.nn.Reset()
				fb := p.costHead.ForwardInfer(&s.nn, nn.Mat{R: gn, C: embDim, Data: stage[off*embDim : (off+gn)*embDim]})
				for i := range g.Cands {
					g.Costs[i] = p.denormalize(fb.Data[i])
				}
			}
		}
		off += gn
		p.finishGroup(g)
	}
}

// finishGroup applies selectPlan's post-scoring bookkeeping to one group:
// NaN counting, argmin, and the no-finite sentinel.
func (p *Predictor) finishGroup(g *Group) {
	costs := g.Costs[:len(g.Cands)]
	nans := int64(0)
	for i := range costs {
		if math.IsNaN(costs[i]) {
			nans++
		}
	}
	p.tel.selectNaN.Add(nans)
	bestIdx := floatsafe.ArgMin(costs)
	if bestIdx < 0 {
		p.tel.selectNoFinite.Inc()
		g.Best, g.Err = nil, ErrNoFiniteEstimate
		return
	}
	g.Best, g.Err = g.Cands[bestIdx], nil
}
