package predictor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"loam/internal/encoding"
	"loam/internal/nn"
	"loam/internal/simrand"
	"loam/internal/xgb"
)

// snapshot is the serialized form of a trained predictor. Neural weights are
// stored as a flat list in the architecture's deterministic parameter order;
// Load rebuilds the architecture from Config and overwrites the weights.
type snapshot struct {
	Version int             `json:"version"`
	Config  Config          `json:"config"`
	Encoder encoding.Config `json:"encoder"`
	MuY     float64         `json:"muY"`
	SigmaY  float64         `json:"sigmaY"`
	MeanEnv [4]float64      `json:"meanEnv"`
	Metrics Metrics         `json:"metrics"`
	// Params holds every trainable tensor's data in construction order
	// (neural kinds only).
	Params [][]float64 `json:"params,omitempty"`
	// XGB holds the serialized booster (XGBoost kind only).
	XGB json.RawMessage `json:"xgb,omitempty"`
}

const snapshotVersion = 1

// ErrCorruptSnapshot marks a snapshot whose payload disagrees with the
// architecture its own config describes — truncated or missing tensors,
// shape mismatches, a booster-kind snapshot without a booster, or
// non-positive architecture dimensions. The lifecycle's hot-swap path (and
// any DeployFromModel caller) matches it with errors.Is to tell corruption
// from I/O failures; a Load that returns it has mutated nothing.
var ErrCorruptSnapshot = errors.New("predictor: corrupt model snapshot")

// allParams returns the predictor's trainable tensors in a deterministic
// order (backbone, cost head, domain classifier).
func (p *Predictor) allParams() []*nn.Tensor {
	params := append([]*nn.Tensor{}, p.bb.params()...)
	params = append(params, p.costHead.Params()...)
	params = append(params, p.domHid.Params()...)
	params = append(params, p.domOut.Params()...)
	return params
}

// Save serializes the trained predictor to w as JSON.
func (p *Predictor) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Config:  p.cfg,
		Encoder: p.encCfg,
		MuY:     p.muY,
		SigmaY:  p.sigmaY,
		MeanEnv: p.trainMeanEnv,
		Metrics: p.metrics,
	}
	if p.cfg.Kind == KindXGBoost {
		data, err := json.Marshal(p.xgbModel)
		if err != nil {
			return fmt.Errorf("marshal booster: %w", err)
		}
		snap.XGB = data
	} else {
		for _, t := range p.allParams() {
			snap.Params = append(snap.Params, append([]float64(nil), t.Data...))
		}
	}
	return json.NewEncoder(w).Encode(snap)
}

// Load restores a predictor saved with Save. The returned predictor serves
// predictions exactly as the original did.
func Load(r io.Reader) (*Predictor, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", snap.Version)
	}
	p := &Predictor{
		cfg:          snap.Config,
		enc:          encoding.NewEncoder(snap.Encoder),
		encCfg:       snap.Encoder,
		muY:          snap.MuY,
		sigmaY:       snap.SigmaY,
		trainMeanEnv: snap.MeanEnv,
		metrics:      snap.Metrics,
	}
	if snap.Config.Kind == KindXGBoost {
		if len(snap.XGB) == 0 {
			return nil, fmt.Errorf("%w: xgboost snapshot carries no booster", ErrCorruptSnapshot)
		}
		p.xgbModel = &xgb.Model{}
		if err := json.Unmarshal(snap.XGB, p.xgbModel); err != nil {
			return nil, fmt.Errorf("%w: unmarshal booster: %v", ErrCorruptSnapshot, err)
		}
		return p, nil
	}

	// Validate the architecture dimensions before rebuilding: a tampered
	// config with non-positive sizes would otherwise panic inside the layer
	// constructors.
	if snap.Config.Hidden <= 0 || snap.Config.Layers <= 0 || snap.Config.EmbDim <= 0 {
		return nil, fmt.Errorf("%w: non-positive architecture dims (hidden=%d layers=%d embdim=%d)",
			ErrCorruptSnapshot, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	}

	// Rebuild the architecture, then overwrite the weights.
	rng := simrand.New(snap.Config.Seed)
	switch snap.Config.Kind {
	case KindTransformer:
		p.bb = newTransformer(rng, p.enc, snap.Config.Hidden, 2, snap.Config.EmbDim)
	case KindGCN:
		p.bb = newGCN(rng, p.enc, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	default:
		p.bb = newTCN(rng, p.enc, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	}
	p.costHead = nn.NewLinear(rng.Derive("cost"), snap.Config.EmbDim, 1)
	p.domHid = nn.NewLinear(rng.Derive("domHid"), snap.Config.EmbDim, snap.Config.Hidden)
	p.domOut = nn.NewLinear(rng.Derive("domOut"), snap.Config.Hidden, 2)

	// Every tensor is validated against the rebuilt architecture before any
	// weight is copied: a truncated or reshaped Params list (including a
	// neural-kind snapshot carrying a booster payload instead) fails loudly
	// here rather than panicking or silently corrupting weights.
	params := p.allParams()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("%w: snapshot has %d tensors, architecture needs %d",
			ErrCorruptSnapshot, len(snap.Params), len(params))
	}
	for i, t := range params {
		if len(t.Data) != len(snap.Params[i]) {
			return nil, fmt.Errorf("%w: tensor %d size mismatch: snapshot %d vs architecture %d",
				ErrCorruptSnapshot, i, len(snap.Params[i]), len(t.Data))
		}
	}
	for i, t := range params {
		copy(t.Data, snap.Params[i])
	}
	return p, nil
}
