package predictor

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"loam/internal/atomicio"
	"loam/internal/encoding"
	"loam/internal/nn"
	"loam/internal/simrand"
	"loam/internal/xgb"
)

// snapshot is the serialized form of a trained predictor. Neural weights are
// stored as a flat list in the architecture's deterministic parameter order;
// Load rebuilds the architecture from Config and overwrites the weights.
type snapshot struct {
	Version int `json:"version"`
	// Model is the lifecycle lineage number (model.version) the predictor
	// was serving as when saved; 0 means untracked (v1 snapshots, or a
	// predictor trained outside a lifecycle).
	Model   int             `json:"model,omitempty"`
	Config  Config          `json:"config"`
	Encoder encoding.Config `json:"encoder"`
	MuY     float64         `json:"muY"`
	SigmaY  float64         `json:"sigmaY"`
	MeanEnv [4]float64      `json:"meanEnv"`
	Metrics Metrics         `json:"metrics"`
	// Params holds every trainable tensor's data in construction order
	// (neural kinds only).
	Params [][]float64 `json:"params,omitempty"`
	// XGB holds the serialized booster (XGBoost kind only).
	XGB json.RawMessage `json:"xgb,omitempty"`
	// Scoring persists the serving-time scoring configuration (parallel
	// threshold, quantized mode). Omitted when it matches the default, so
	// pre-existing snapshots and default deployments serialize byte-identically
	// to before the field existed.
	Scoring *ScoringConfig `json:"scoring,omitempty"`
	// Quant carries the quantized cost-head calibration when Scoring.Quantized
	// is set. Calibration is a pure function of the weights, so Load always
	// recalibrates from the restored weights; a stored Quant is a cross-check
	// (mismatch means the snapshot is internally inconsistent), and its absence
	// on a quantized snapshot simply recalibrates — the ISSUE's
	// "recalibrated on restore if absent" contract.
	Quant *quantSnap `json:"quant,omitempty"`
}

// quantSnap is the version-tagged serialized quantization state: the
// per-column weight scales and absolute column sums of the calibrated cost
// head. The int8/f32 weight matrices are NOT stored — they are recomputed
// from the f64 weights, which the snapshot already carries exactly.
type quantSnap struct {
	Version int       `json:"version"`
	SW      []float64 `json:"sw"`
	ColAbs1 []float64 `json:"colAbs1"`
}

const quantSnapVersion = 1

// Snapshot format history:
//
//	v1 — bare JSON object (no framing, no checksum, no model version).
//	v2 — snapshotMagic followed by one atomicio frame whose payload is the
//	     JSON object; the frame checksum makes bit rot and truncation
//	     detectable before the decoder runs, and the object carries the
//	     lifecycle model version.
//
// Save always writes the current version; Load accepts both.
const (
	snapshotVersion = 2
	snapshotMagic   = "LOAMSNP2"
)

// ErrCorruptSnapshot marks a snapshot whose payload disagrees with the
// architecture its own config describes — truncated or missing tensors,
// shape mismatches, a booster-kind snapshot without a booster, or
// non-positive architecture dimensions. The lifecycle's hot-swap path (and
// any DeployFromModel caller) matches it with errors.Is to tell corruption
// from I/O failures; a Load that returns it has mutated nothing.
var ErrCorruptSnapshot = errors.New("predictor: corrupt model snapshot")

// ErrSnapshotIntegrity marks a snapshot whose bytes failed verification
// before decoding — a frame checksum mismatch, a truncated frame, or an
// unrecognizable header. Integrity errors also wrap ErrCorruptSnapshot, so
// existing errors.Is(err, ErrCorruptSnapshot) callers keep matching; fsck
// and the durable store match ErrSnapshotIntegrity to report media
// corruption distinctly from structural mismatch.
var ErrSnapshotIntegrity = errors.New("predictor: snapshot failed integrity check")

// integrityErr wraps both sentinels (multi-%w) around a detail error.
func integrityErr(detail error) error {
	return fmt.Errorf("%w: %w: %w", ErrSnapshotIntegrity, ErrCorruptSnapshot, detail)
}

// ModelVersion reports the lifecycle lineage number the predictor carries
// (0 = untracked).
func (p *Predictor) ModelVersion() int { return p.modelVersion }

// SetModelVersion stamps the lineage number serialized by Save. The
// lifecycle calls it at train/promote time; it must not race with Save.
func (p *Predictor) SetModelVersion(v int) { p.modelVersion = v }

// allParams returns the predictor's trainable tensors in a deterministic
// order (backbone, cost head, domain classifier).
func (p *Predictor) allParams() []*nn.Tensor {
	params := append([]*nn.Tensor{}, p.bb.params()...)
	params = append(params, p.costHead.Params()...)
	params = append(params, p.domHid.Params()...)
	params = append(params, p.domOut.Params()...)
	return params
}

// Save serializes the trained predictor to w in the v2 framed format: the
// magic header followed by one checksummed frame carrying the JSON snapshot.
func (p *Predictor) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Model:   p.modelVersion,
		Config:  p.cfg,
		Encoder: p.encCfg,
		MuY:     p.muY,
		SigmaY:  p.sigmaY,
		MeanEnv: p.trainMeanEnv,
		Metrics: p.metrics,
	}
	if p.cfg.Kind == KindXGBoost {
		data, err := json.Marshal(p.xgbModel)
		if err != nil {
			return fmt.Errorf("marshal booster: %w", err)
		}
		snap.XGB = data
	} else {
		for _, t := range p.allParams() {
			snap.Params = append(snap.Params, append([]float64(nil), t.Data...))
		}
	}
	if sc := p.scoring.normalize(); sc != DefaultScoringConfig() {
		snap.Scoring = &sc
	}
	if p.quant != nil {
		snap.Quant = &quantSnap{
			Version: quantSnapVersion,
			SW:      append([]float64(nil), p.quant.SW...),
			ColAbs1: append([]float64(nil), p.quant.ColAbs1...),
		}
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("marshal snapshot: %w", err)
	}
	out := append([]byte(snapshotMagic), atomicio.EncodeFrame(payload)...)
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("write snapshot: %w", err)
	}
	return nil
}

// Load restores a predictor saved with Save. It accepts both the current
// framed format and legacy v1 bare-JSON snapshots. The returned predictor
// serves predictions exactly as the original did.
func Load(r io.Reader) (*Predictor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("read snapshot: %w", err)
	}
	var snap snapshot
	switch {
	case bytes.HasPrefix(data, []byte(snapshotMagic)):
		payload, rest, err := atomicio.DecodeFrame(data[len(snapshotMagic):])
		if err != nil {
			return nil, integrityErr(err)
		}
		if len(rest) != 0 {
			return nil, integrityErr(fmt.Errorf("%d trailing bytes after snapshot frame", len(rest)))
		}
		if err := json.Unmarshal(payload, &snap); err != nil {
			// The frame checksum passed, so this is a writer bug, not media
			// corruption — structural, not integrity.
			return nil, fmt.Errorf("%w: decode snapshot: %v", ErrCorruptSnapshot, err)
		}
		if snap.Version != snapshotVersion {
			return nil, fmt.Errorf("%w: framed snapshot declares version %d, want %d",
				ErrCorruptSnapshot, snap.Version, snapshotVersion)
		}
	case len(data) > 0 && data[0] == '{':
		// Legacy v1: bare JSON, no checksum to verify first.
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("%w: decode v1 snapshot: %v", ErrCorruptSnapshot, err)
		}
		if snap.Version != 1 {
			return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorruptSnapshot, snap.Version)
		}
	default:
		// Neither magic nor JSON: truncated below the header, or garbage.
		return nil, integrityErr(fmt.Errorf("unrecognized snapshot header (%d bytes)", len(data)))
	}
	return rebuildSnapshot(&snap)
}

// rebuildSnapshot rebuilds a predictor from a decoded snapshot.
func rebuildSnapshot(snap *snapshot) (*Predictor, error) {
	p := &Predictor{
		cfg:          snap.Config,
		enc:          encoding.NewEncoder(snap.Encoder),
		encCfg:       snap.Encoder,
		muY:          snap.MuY,
		sigmaY:       snap.SigmaY,
		trainMeanEnv: snap.MeanEnv,
		metrics:      snap.Metrics,
		modelVersion: snap.Model,
	}
	if snap.Config.Kind == KindXGBoost {
		if len(snap.XGB) == 0 {
			return nil, fmt.Errorf("%w: xgboost snapshot carries no booster", ErrCorruptSnapshot)
		}
		p.xgbModel = &xgb.Model{}
		if err := json.Unmarshal(snap.XGB, p.xgbModel); err != nil {
			return nil, fmt.Errorf("%w: unmarshal booster: %v", ErrCorruptSnapshot, err)
		}
		if err := restoreScoring(p, snap); err != nil {
			return nil, err
		}
		return p, nil
	}

	// Validate the architecture dimensions before rebuilding: a tampered
	// config with non-positive sizes would otherwise panic inside the layer
	// constructors.
	if snap.Config.Hidden <= 0 || snap.Config.Layers <= 0 || snap.Config.EmbDim <= 0 {
		return nil, fmt.Errorf("%w: non-positive architecture dims (hidden=%d layers=%d embdim=%d)",
			ErrCorruptSnapshot, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	}

	// Rebuild the architecture, then overwrite the weights.
	rng := simrand.New(snap.Config.Seed)
	switch snap.Config.Kind {
	case KindTransformer:
		p.bb = newTransformer(rng, p.enc, snap.Config.Hidden, 2, snap.Config.EmbDim)
	case KindGCN:
		p.bb = newGCN(rng, p.enc, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	default:
		p.bb = newTCN(rng, p.enc, snap.Config.Hidden, snap.Config.Layers, snap.Config.EmbDim)
	}
	p.costHead = nn.NewLinear(rng.Derive("cost"), snap.Config.EmbDim, 1)
	p.domHid = nn.NewLinear(rng.Derive("domHid"), snap.Config.EmbDim, snap.Config.Hidden)
	p.domOut = nn.NewLinear(rng.Derive("domOut"), snap.Config.Hidden, 2)

	// Every tensor is validated against the rebuilt architecture before any
	// weight is copied: a truncated or reshaped Params list (including a
	// neural-kind snapshot carrying a booster payload instead) fails loudly
	// here rather than panicking or silently corrupting weights.
	params := p.allParams()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("%w: snapshot has %d tensors, architecture needs %d",
			ErrCorruptSnapshot, len(snap.Params), len(params))
	}
	for i, t := range params {
		if len(t.Data) != len(snap.Params[i]) {
			return nil, fmt.Errorf("%w: tensor %d size mismatch: snapshot %d vs architecture %d",
				ErrCorruptSnapshot, i, len(snap.Params[i]), len(t.Data))
		}
	}
	for i, t := range params {
		copy(t.Data, snap.Params[i])
	}
	if err := restoreScoring(p, snap); err != nil {
		return nil, err
	}
	return p, nil
}

// restoreScoring reinstates the serialized scoring configuration after the
// weights are in place. Quantization state is always recalibrated from the
// restored weights — it is a pure function of them — and then, when the
// snapshot stored its calibration, cross-checked scale by scale: a mismatch
// means the snapshot's weights and its recorded quantization disagree, which
// is corruption, not drift. A quantized snapshot without stored calibration
// (e.g. written by a future minimal writer) recalibrates silently.
func restoreScoring(p *Predictor, snap *snapshot) error {
	if snap.Scoring == nil {
		p.scoring = DefaultScoringConfig()
		return nil
	}
	p.SetScoringConfig(*snap.Scoring)
	q := snap.Quant
	if q == nil {
		return nil
	}
	if q.Version != quantSnapVersion {
		return fmt.Errorf("%w: unsupported quantization state version %d", ErrCorruptSnapshot, q.Version)
	}
	if p.quant == nil {
		// Stored calibration for a model that cannot be quantized (booster
		// kind, or quantization off): internally inconsistent.
		return fmt.Errorf("%w: snapshot carries quantization state but quantized scoring is unavailable", ErrCorruptSnapshot)
	}
	if len(q.SW) != len(p.quant.SW) || len(q.ColAbs1) != len(p.quant.ColAbs1) {
		return fmt.Errorf("%w: quantization state sized %d/%d, recalibration yields %d/%d",
			ErrCorruptSnapshot, len(q.SW), len(q.ColAbs1), len(p.quant.SW), len(p.quant.ColAbs1))
	}
	for j := range q.SW {
		if q.SW[j] != p.quant.SW[j] || q.ColAbs1[j] != p.quant.ColAbs1[j] {
			return fmt.Errorf("%w: quantization scales disagree with recalibration at column %d", ErrCorruptSnapshot, j)
		}
	}
	return nil
}
