package predictor

import (
	"loam/internal/encoding"
	"loam/internal/nn"
	"loam/internal/plan"
	"loam/internal/simrand"
)

// Kind selects the cost-model backbone. TCN is LOAM's default (§4); the
// others are the baselines of §7.1.
type Kind int

// Backbone kinds.
const (
	KindTCN Kind = iota + 1
	KindTransformer
	KindGCN
	KindXGBoost
)

// String names the backbone.
func (k Kind) String() string {
	switch k {
	case KindTCN:
		return "TCN"
	case KindTransformer:
		return "Transformer"
	case KindGCN:
		return "GCN"
	case KindXGBoost:
		return "XGBoost"
	default:
		return "Unknown"
	}
}

// backbone turns an encoded plan into a 1×emb embedding (PlanEmb in Fig. 3).
// embed builds the autograd graph used during training; embedInfer is the
// allocation-free serving path (see infer.go) and must return bit-identical
// values in scratch-backed storage.
type backbone interface {
	embed(p *plan.Plan, envs encoding.EnvSource) *nn.Tensor
	embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat
	params() []*nn.Tensor
}

// flatTree is a plan tree flattened for the tree-convolution gather step.
type flatTree struct {
	feats             [][]float64
	self, left, right []int
}

func flattenTree(t *encoding.Tree) *flatTree {
	f := &flatTree{}
	var walk func(n *encoding.Tree) int
	walk = func(n *encoding.Tree) int {
		idx := len(f.feats)
		f.feats = append(f.feats, n.Feat)
		f.self = append(f.self, idx)
		f.left = append(f.left, -1)
		f.right = append(f.right, -1)
		if n.Left != nil {
			f.left[idx] = walk(n.Left)
		}
		if n.Right != nil {
			f.right[idx] = walk(n.Right)
		}
		return idx
	}
	walk(t)
	return f
}

// tcnBackbone is LOAM's tree convolutional network: stacked tree
// convolutions, mean+max pooling, and a fully connected projection.
type tcnBackbone struct {
	enc    *encoding.Encoder
	layers []*nn.TreeConv
	proj   *nn.Linear
}

func newTCN(rng *simrand.RNG, enc *encoding.Encoder, hidden, layers, emb int) *tcnBackbone {
	b := &tcnBackbone{enc: enc}
	in := enc.Dim()
	for i := 0; i < layers; i++ {
		b.layers = append(b.layers, nn.NewTreeConv(rng.DeriveN("tcn", i), in, hidden))
		in = hidden
	}
	b.proj = nn.NewLinear(rng.Derive("tcnProj"), 3*hidden, emb)
	return b
}

func (b *tcnBackbone) embed(p *plan.Plan, envs encoding.EnvSource) *nn.Tensor {
	ft := flattenTree(b.enc.EncodeTree(p, envs))
	x := nn.FromRows(ft.feats)
	for _, l := range b.layers {
		x = l.Forward(x, ft.self, ft.left, ft.right)
	}
	pooled := nn.ConcatCols(nn.MeanRows(x), nn.MaxRows(x), nn.SumRows(x, 1.0/16))
	return nn.ReLU(b.proj.Forward(pooled))
}

func (b *tcnBackbone) params() []*nn.Tensor {
	var out []*nn.Tensor
	for _, l := range b.layers {
		out = append(out, l.Params()...)
	}
	return append(out, b.proj.Params()...)
}

// gcnBackbone stacks graph convolutions over the plan DAG.
type gcnBackbone struct {
	enc    *encoding.Encoder
	layers []*nn.GCNLayer
	proj   *nn.Linear
}

func newGCN(rng *simrand.RNG, enc *encoding.Encoder, hidden, layers, emb int) *gcnBackbone {
	b := &gcnBackbone{enc: enc}
	in := enc.Dim()
	for i := 0; i < layers; i++ {
		b.layers = append(b.layers, nn.NewGCNLayer(rng.DeriveN("gcn", i), in, hidden))
		in = hidden
	}
	b.proj = nn.NewLinear(rng.Derive("gcnProj"), 3*hidden, emb)
	return b
}

func (b *gcnBackbone) embed(p *plan.Plan, envs encoding.EnvSource) *nn.Tensor {
	g := b.enc.EncodeGraph(p, envs)
	ahat := nn.NormalizedAdjacency(len(g.Feats), g.Edges)
	x := nn.FromRows(g.Feats)
	for _, l := range b.layers {
		x = l.Forward(ahat, x)
	}
	pooled := nn.ConcatCols(nn.MeanRows(x), nn.MaxRows(x), nn.SumRows(x, 1.0/16))
	return nn.ReLU(b.proj.Forward(pooled))
}

func (b *gcnBackbone) params() []*nn.Tensor {
	var out []*nn.Tensor
	for _, l := range b.layers {
		out = append(out, l.Params()...)
	}
	return append(out, b.proj.Params()...)
}

// transformerBackbone runs attention blocks over the preorder node sequence.
type transformerBackbone struct {
	enc    *encoding.Encoder
	inProj *nn.Linear
	blocks []*nn.Attention
	proj   *nn.Linear
}

func newTransformer(rng *simrand.RNG, enc *encoding.Encoder, hidden, layers, emb int) *transformerBackbone {
	b := &transformerBackbone{
		enc:    enc,
		inProj: nn.NewLinear(rng.Derive("tfIn"), enc.SeqDim(), hidden),
	}
	for i := 0; i < layers; i++ {
		b.blocks = append(b.blocks, nn.NewAttention(rng.DeriveN("tf", i), hidden, 2*hidden))
	}
	b.proj = nn.NewLinear(rng.Derive("tfProj"), 2*hidden, emb)
	return b
}

func (b *transformerBackbone) embed(p *plan.Plan, envs encoding.EnvSource) *nn.Tensor {
	seq := b.enc.EncodeSequence(p, envs)
	x := b.inProj.Forward(nn.FromRows(seq))
	for _, blk := range b.blocks {
		x = blk.Forward(x)
	}
	return nn.ReLU(b.proj.Forward(nn.ConcatCols(nn.MeanRows(x), nn.SumRows(x, 1.0/16))))
}

func (b *transformerBackbone) params() []*nn.Tensor {
	out := b.inProj.Params()
	for _, blk := range b.blocks {
		out = append(out, blk.Params()...)
	}
	return append(out, b.proj.Params()...)
}
