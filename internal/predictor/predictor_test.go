package predictor

import (
	"errors"
	"math"
	"testing"

	"loam/internal/encoding"
	"loam/internal/expr"
	"loam/internal/nn"
	"loam/internal/plan"
	"loam/internal/simrand"
)

// synthetic builds a toy training set whose cost is a simple function of
// plan structure: cost grows with the number of scan nodes and the table's
// identity, so a working predictor must exceed chance at ranking.
func synthetic(n int, seed uint64) ([]Sample, []*plan.Plan) {
	rng := simrand.New(seed)
	var samples []Sample
	var cands []*plan.Plan
	for i := 0; i < n; i++ {
		tables := 1 + rng.Intn(3)
		cost := 100.0
		root := &plan.Node{Op: plan.OpSelect}
		for s := 0; s < tables; s++ {
			tid := rng.Intn(4)
			scan := &plan.Node{
				Op:              plan.OpTableScan,
				Table:           []string{"small", "mid", "big", "huge"}[tid],
				PartitionsRead:  1 + rng.Intn(8),
				ColumnsAccessed: 1 + rng.Intn(4),
			}
			cost += []float64{50, 500, 5_000, 50_000}[tid]
			root.Children = append(root.Children, scan)
		}
		cost *= rng.LogNormal(0, 0.05)
		env := [4]float64{rng.Uniform(0.3, 0.7), 0.05, 0.4, 0.5}
		p := &plan.Plan{Root: root}
		samples = append(samples, Sample{
			Plan: p,
			Envs: encoding.FixedEnv(env),
			Cost: cost,
		})
		if i%5 == 0 {
			c := p.Clone()
			c.Knobs = []string{"flag:mergeJoin"}
			cands = append(cands, c)
		}
	}
	return samples, cands
}

func tinyConfig(kind Kind) Config {
	cfg := DefaultConfig()
	cfg.Kind = kind
	cfg.Epochs = 6
	cfg.Hidden = 12
	cfg.EmbDim = 8
	return cfg
}

func TestTrainAllKinds(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(120, 1)
	for _, kind := range []Kind{KindTCN, KindTransformer, KindGCN, KindXGBoost} {
		p, err := Train(tinyConfig(kind), enc, samples, cands)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		met := p.Metrics()
		if met.ModelBytes <= 0 {
			t.Fatalf("%v: model bytes %d", kind, met.ModelBytes)
		}
		if met.TrainSeconds <= 0 {
			t.Fatalf("%v: train seconds %g", kind, met.TrainSeconds)
		}
		// Predictions must be positive and finite.
		c := p.PredictCost(samples[0].Plan, samples[0].Envs)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("%v: predicted %g", kind, c)
		}
	}
}

func TestTrainEmpty(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	_, err := Train(DefaultConfig(), enc, nil, nil)
	if !errors.Is(err, ErrNoTrainingData) {
		t.Fatalf("want ErrNoTrainingData, got %v", err)
	}
}

func TestPredictorRanksTableSizes(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(300, 2)
	cfg := tinyConfig(KindTCN)
	cfg.Epochs = 15
	p, err := Train(cfg, enc, samples, cands)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(table string) *plan.Plan {
		return &plan.Plan{Root: &plan.Node{Op: plan.OpSelect, Children: []*plan.Node{
			{Op: plan.OpTableScan, Table: table, PartitionsRead: 4, ColumnsAccessed: 2},
		}}}
	}
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	small := p.PredictCost(mk("small"), envs)
	huge := p.PredictCost(mk("huge"), envs)
	if huge <= small {
		t.Fatalf("predictor failed size ordering: small=%g huge=%g", small, huge)
	}
}

func TestSelectPlanPicksMin(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(150, 3)
	p, err := Train(tinyConfig(KindXGBoost), enc, samples, cands)
	if err != nil {
		t.Fatal(err)
	}
	plans := []*plan.Plan{samples[0].Plan, samples[1].Plan, samples[2].Plan}
	best, costs, err := p.SelectPlan(plans, encoding.FixedEnv(p.TrainMeanEnv()))
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || best == nil {
		t.Fatal("selection malformed")
	}
	minIdx := 0
	for i, c := range costs {
		if c < costs[minIdx] {
			minIdx = i
		}
	}
	if best != plans[minIdx] {
		t.Fatal("SelectPlan did not pick the minimum")
	}
}

// stubBackbone maps a plan's root table name to a fixed scalar embedding so
// tests can hand SelectPlan exact (possibly NaN) estimates.
type stubBackbone struct{ vals map[string]float64 }

func (b stubBackbone) embed(p *plan.Plan, envs encoding.EnvSource) *nn.Tensor {
	return nn.FromData(1, 1, []float64{b.vals[p.Root.Table]})
}

func (b stubBackbone) embedInfer(s *inferScratch, p *plan.Plan, envs encoding.EnvSource) nn.Mat {
	m := s.nn.Mat(1, 1)
	m.Data[0] = b.vals[p.Root.Table]
	return m
}

func (b stubBackbone) params() []*nn.Tensor { return nil }

// stubPredictor predicts exp(vals[root table]) for each plan.
func stubPredictor(vals map[string]float64) *Predictor {
	return &Predictor{
		cfg: Config{Kind: KindTCN},
		bb:  stubBackbone{vals},
		costHead: &nn.Linear{
			W: nn.FromData(1, 1, []float64{1}),
			B: nn.FromData(1, 1, []float64{0}),
		},
		sigmaY: 1,
	}
}

func scanPlan(table string) *plan.Plan {
	return &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: table, PartitionsRead: 1, ColumnsAccessed: 1}}
}

func TestSelectPlanEmptyCandidates(t *testing.T) {
	p := stubPredictor(nil)
	best, costs, err := p.SelectPlan(nil, encoding.NoEnv())
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("want ErrNoCandidates, got %v", err)
	}
	if best != nil || costs != nil {
		t.Fatal("empty selection should return no plan and no costs")
	}
}

func TestSelectPlanSkipsNaN(t *testing.T) {
	p := stubPredictor(map[string]float64{
		"a": math.NaN(), "b": 2, "c": 1, "d": 3,
	})
	plans := []*plan.Plan{scanPlan("a"), scanPlan("b"), scanPlan("c"), scanPlan("d")}
	best, costs, err := p.SelectPlan(plans, encoding.NoEnv())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(costs[0]) {
		t.Fatalf("estimate 0 should be NaN, got %g", costs[0])
	}
	if best != plans[2] {
		t.Fatalf("NaN must never win the argmin; want plan c, got %v", best)
	}
}

func TestSelectPlanAllNaN(t *testing.T) {
	p := stubPredictor(map[string]float64{"a": math.NaN(), "b": math.NaN()})
	plans := []*plan.Plan{scanPlan("a"), scanPlan("b")}
	best, costs, err := p.SelectPlan(plans, encoding.NoEnv())
	if !errors.Is(err, ErrNoFiniteEstimate) {
		t.Fatalf("want ErrNoFiniteEstimate, got %v", err)
	}
	if best != nil {
		t.Fatal("no plan should be chosen when every estimate is NaN")
	}
	if len(costs) != 2 {
		t.Fatalf("costs should still be returned for logging, got %d", len(costs))
	}
}

// TestSelectPlanParallelMatchesSequential pins the determinism contract: the
// chosen plan and every estimate are byte-identical no matter how many
// workers score the candidates.
func TestSelectPlanParallelMatchesSequential(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(150, 8)
	p, err := Train(tinyConfig(KindXGBoost), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*plan.Plan
	for i := 0; i < 24; i++ {
		plans = append(plans, samples[i].Plan)
	}
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	seqBest, seqCosts, err := p.SelectPlanParallel(plans, envs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		best, costs, err := p.SelectPlanParallel(plans, envs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if best != seqBest {
			t.Fatalf("workers=%d chose a different plan", workers)
		}
		for i := range costs {
			if costs[i] != seqCosts[i] {
				t.Fatalf("workers=%d estimate %d differs: %g vs %g", workers, i, costs[i], seqCosts[i])
			}
		}
	}
}

func TestTrainMeanEnvReflectsSamples(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	env := [4]float64{0.42, 0.06, 0.33, 0.58}
	var samples []Sample
	for i := 0; i < 30; i++ {
		p := &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: "t", PartitionsRead: 1, ColumnsAccessed: 1}}
		samples = append(samples, Sample{Plan: p, Envs: encoding.FixedEnv(env), Cost: 100})
	}
	cfg := tinyConfig(KindXGBoost)
	pr, err := Train(cfg, enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := pr.TrainMeanEnv()
	for i := range env {
		if math.Abs(got[i]-env[i]) > 1e-9 {
			t.Fatalf("mean env %v, want %v", got, env)
		}
	}
}

func TestStrategies(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 4)
	pr, err := Train(tinyConfig(KindXGBoost), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	ce := [4]float64{0.9, 0.01, 0.1, 0.2}
	cb := [4]float64{0.1, 0.2, 0.9, 0.9}
	if env, _ := pr.EnvSourceFor(StrategyClusterExpected, ce, cb)(nil); env != ce {
		t.Fatal("CE strategy wrong")
	}
	if env, _ := pr.EnvSourceFor(StrategyClusterCurrent, ce, cb)(nil); env != cb {
		t.Fatal("CB strategy wrong")
	}
	if env, _ := pr.EnvSourceFor(StrategyMeanEnv, ce, cb)(nil); env != pr.TrainMeanEnv() {
		t.Fatal("mean strategy wrong")
	}
	if _, ok := pr.EnvSourceFor(StrategyNoEnv, ce, cb)(nil); ok {
		t.Fatal("NoEnv strategy should report unobserved")
	}
}

func TestNoEnvVariantIgnoresEnvironment(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(80, 5)
	cfg := tinyConfig(KindTCN)
	cfg.UseEnv = false
	pr, err := Train(cfg, enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := samples[0].Plan
	c1 := pr.PredictCost(p, encoding.FixedEnv([4]float64{0.1, 0.2, 0.9, 0.9}))
	c2 := pr.PredictCost(p, encoding.FixedEnv([4]float64{0.9, 0.0, 0.1, 0.1}))
	if c1 != c2 {
		t.Fatalf("NL variant sensitive to env: %g vs %g", c1, c2)
	}
}

func TestEnvAwareVariantRespondsToEnvironment(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	// Make the label strongly env-dependent.
	rng := simrand.New(6)
	var samples []Sample
	for i := 0; i < 200; i++ {
		idle := rng.Uniform(0.1, 0.9)
		env := [4]float64{idle, 0.05, 0.4, 0.5}
		p := &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: "t", PartitionsRead: 1 + i%4, ColumnsAccessed: 2}}
		cost := 1000 * (1.6 - idle)
		samples = append(samples, Sample{Plan: p, Envs: encoding.FixedEnv(env), Cost: cost})
	}
	cfg := tinyConfig(KindTCN)
	cfg.Epochs = 15
	pr, err := Train(cfg, enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := samples[0].Plan
	busy := pr.PredictCost(p, encoding.FixedEnv([4]float64{0.1, 0.05, 0.4, 0.5}))
	idle := pr.PredictCost(p, encoding.FixedEnv([4]float64{0.9, 0.05, 0.4, 0.5}))
	if busy <= idle {
		t.Fatalf("predictor ignores environment: busy=%g idle=%g", busy, idle)
	}
}

func TestAdaptiveTrainingRuns(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, cands := synthetic(100, 7)
	cfg := tinyConfig(KindTCN)
	cfg.Adapt = true
	pr, err := Train(cfg, enc, samples, cands)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Metrics().FinalDomLoss <= 0 {
		t.Fatal("domain loss not recorded — adversarial branch inactive")
	}
	// Without candidates the domain branch is skipped.
	pr2, err := Train(cfg, enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.Metrics().FinalDomLoss != 0 {
		t.Fatal("domain loss recorded without candidates")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindTCN: "TCN", KindTransformer: "Transformer", KindGCN: "GCN", KindXGBoost: "XGBoost",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if Kind(0).String() != "Unknown" {
		t.Fatal("zero kind")
	}
	for s, want := range map[Strategy]string{
		StrategyMeanEnv: "LOAM", StrategyClusterExpected: "LOAM-CE",
		StrategyClusterCurrent: "LOAM-CB", StrategyNoEnv: "LOAM-NL",
	} {
		if s.String() != want {
			t.Fatalf("%v -> %s", s, s.String())
		}
	}
}

func TestFlattenTree(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	p := &plan.Plan{Root: &plan.Node{
		Op: plan.OpHashJoin, JoinForm: plan.JoinInner,
		LeftCols:  []expr.ColumnRef{{Table: "a", Column: "k"}},
		RightCols: []expr.ColumnRef{{Table: "b", Column: "k"}},
		Children: []*plan.Node{
			{Op: plan.OpTableScan, Table: "a", PartitionsRead: 1},
			{Op: plan.OpTableScan, Table: "b", PartitionsRead: 1},
		},
	}}
	ft := flattenTree(enc.EncodeTree(p, encoding.NoEnv()))
	if len(ft.feats) != 3 {
		t.Fatalf("flattened %d nodes", len(ft.feats))
	}
	if ft.left[0] != 1 || ft.right[0] != 2 {
		t.Fatalf("children indices %v %v", ft.left, ft.right)
	}
	if ft.left[1] != -1 || ft.right[2] != -1 {
		t.Fatal("leaf children should be -1")
	}
}
