package predictor

import (
	"math"
	"sync"
	"testing"

	"loam/internal/encoding"
	"loam/internal/floatsafe"
	"loam/internal/plan"
	"loam/internal/telemetry"
)

// referenceCosts scores candidates one at a time through the *training-path*
// forward (autograd graph, no batching, no cache) — the ground truth every
// serving path must reproduce bit for bit.
func referenceCosts(p *Predictor, cands []*plan.Plan, envs encoding.EnvSource) []float64 {
	out := make([]float64, len(cands))
	for i, c := range cands {
		emb := p.bb.embed(c, envs)
		out[i] = p.denormalize(p.costHead.Forward(emb).Data[0])
	}
	return out
}

func costsSameBits(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d costs, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: cost %d differs: %v (%#x) vs %v (%#x)",
				name, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// TestScoringPathsBitIdentical verifies that every serving path — sequential,
// batched-parallel, and cached keyed scoring (cold and warm) — produces
// bit-identical costs and the same chosen plan as per-candidate training-path
// forwards, for each neural backbone.
func TestScoringPathsBitIdentical(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(80, 21)
	cands := make([]*plan.Plan, 0, 8)
	for i := 0; i < 8; i++ {
		cands = append(cands, samples[i*3].Plan)
	}
	for _, kind := range []Kind{KindTCN, KindTransformer, KindGCN} {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := Train(tinyConfig(kind), enc, samples, nil)
			if err != nil {
				t.Fatal(err)
			}
			envs := encoding.FixedEnv(p.TrainMeanEnv())
			key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})
			want := referenceCosts(p, cands, envs)
			wantBest := cands[floatsafe.ArgMin(want)]

			check := func(name string, best *plan.Plan, costs []float64, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				costsSameBits(t, name, want, costs)
				if best != wantBest {
					t.Fatalf("%s chose a different plan", name)
				}
			}

			best, costs, err := p.SelectPlanParallel(cands, envs, 1)
			check("sequential", best, costs, err)
			best, costs, err = p.SelectPlanParallel(cands, envs, 4)
			check("parallel", best, costs, err)

			p.EnablePlanCache(64)
			best, costs, err = p.SelectPlanKeyed(cands, envs, key)
			check("keyed-cold", best, costs, err)
			best, costs, err = p.SelectPlanKeyed(cands, envs, key)
			check("keyed-warm", best, costs, err)

			for i, c := range cands {
				got := p.PredictCost(c, envs)
				if math.Float64bits(got) != math.Float64bits(want[i]) {
					t.Fatalf("PredictCost(%d) = %v, want %v", i, got, want[i])
				}
			}
		})
	}
}

// TestPlanCacheCounters pins the cache telemetry: first keyed select misses
// once per distinct plan, the second hits once per plan, and totals are
// independent of embedding-worker interleaving because hit/miss is decided
// under the cache lock at lookup time.
func TestPlanCacheCounters(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 22)
	cands := []*plan.Plan{samples[0].Plan, samples[3].Plan, samples[6].Plan, samples[9].Plan, samples[12].Plan}
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.Instrument(reg)
	p.EnablePlanCache(64)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})

	if _, _, err := p.SelectPlanKeyed(cands, envs, key); err != nil {
		t.Fatal(err)
	}
	if h, m := p.tel.cacheHits.Value(), p.tel.cacheMisses.Value(); h != 0 || m != int64(len(cands)) {
		t.Fatalf("cold select: hits=%d misses=%d, want 0/%d", h, m, len(cands))
	}
	if _, _, err := p.SelectPlanKeyed(cands, envs, key); err != nil {
		t.Fatal(err)
	}
	if h, m := p.tel.cacheHits.Value(), p.tel.cacheMisses.Value(); h != int64(len(cands)) || m != int64(len(cands)) {
		t.Fatalf("warm select: hits=%d misses=%d, want %d/%d", h, m, len(cands), len(cands))
	}
	if n := p.PlanCacheLen(); n != len(cands) {
		t.Fatalf("cache holds %d embeddings, want %d", n, len(cands))
	}

	// A different environment key must not share entries.
	other := p.EnvKeyFor(StrategyClusterCurrent, [4]float64{}, [4]float64{0.9, 0.9, 0.9, 0.9})
	if _, _, err := p.SelectPlanKeyed(cands, encoding.FixedEnv([4]float64{0.9, 0.9, 0.9, 0.9}), other); err != nil {
		t.Fatal(err)
	}
	if m := p.tel.cacheMisses.Value(); m != 2*int64(len(cands)) {
		t.Fatalf("distinct env key reused entries: misses=%d", m)
	}
}

// TestPlanCacheUnkeyedBypass: unkeyed selection (SelectPlan / zero EnvKey)
// must never populate the cache — per-node environment sources have no
// hashable identity.
func TestPlanCacheUnkeyedBypass(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 23)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.EnablePlanCache(64)
	cands := []*plan.Plan{samples[0].Plan, samples[1].Plan, samples[2].Plan, samples[3].Plan}
	if _, _, err := p.SelectPlan(cands, encoding.FixedEnv(p.TrainMeanEnv())); err != nil {
		t.Fatal(err)
	}
	if n := p.PlanCacheLen(); n != 0 {
		t.Fatalf("unkeyed selection cached %d embeddings", n)
	}
}

// TestPlanCacheEvictionAndFlush verifies bounded LRU eviction order and that
// FlushPlanCache / EnablePlanCache drop all entries.
func TestPlanCacheEvictionAndFlush(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 24)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.Instrument(reg)
	p.EnablePlanCache(2)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})

	a, b, c := samples[0].Plan, samples[1].Plan, samples[2].Plan
	for _, pl := range []*plan.Plan{a, b, c} {
		if _, _, err := p.SelectPlanKeyed([]*plan.Plan{pl}, envs, key); err != nil {
			t.Fatal(err)
		}
	}
	if ev := p.tel.cacheEvictions.Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1 (capacity 2, 3 inserts)", ev)
	}
	if n := p.PlanCacheLen(); n != 2 {
		t.Fatalf("cache holds %d, want 2", n)
	}
	// a was evicted (LRU); touching it again must miss.
	misses := p.tel.cacheMisses.Value()
	if _, _, err := p.SelectPlanKeyed([]*plan.Plan{a, b, c}[:1], envs, key); err != nil {
		t.Fatal(err)
	}
	if m := p.tel.cacheMisses.Value(); m != misses+1 {
		t.Fatalf("evicted entry did not miss: misses %d -> %d", misses, m)
	}

	p.FlushPlanCache()
	if n := p.PlanCacheLen(); n != 0 {
		t.Fatalf("flush left %d entries", n)
	}
	if f := p.tel.cacheFlushes.Value(); f != 1 {
		t.Fatalf("flushes = %d, want 1", f)
	}
	// Re-enabling replaces the cache wholesale — the retrain/redeploy
	// invalidation rule.
	p.EnablePlanCache(64)
	if n := p.PlanCacheLen(); n != 0 {
		t.Fatalf("fresh cache holds %d entries", n)
	}
}

// TestPlanCacheSetCapacity pins the external-governance seam: shrinking
// evicts exactly the strict-LRU tail (counted as evictions) while the warm
// head survives, growing never drops entries, and capacity 0 keeps the cache
// installed but empty so zero-grant tenants stay governable.
func TestPlanCacheSetCapacity(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(40, 29)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.Instrument(reg)
	p.EnablePlanCache(8)
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})

	plans := []*plan.Plan{samples[0].Plan, samples[1].Plan, samples[2].Plan, samples[3].Plan}
	for _, pl := range plans {
		if _, _, err := p.SelectPlanKeyed([]*plan.Plan{pl}, envs, key); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.PlanCacheCap(); got != 8 {
		t.Fatalf("PlanCacheCap = %d, want 8", got)
	}

	// Shrink to 2: the two least-recently-used entries (plans[0], plans[1])
	// go; the warm head stays resident.
	p.SetPlanCacheCapacity(2)
	if got := p.PlanCacheCap(); got != 2 {
		t.Fatalf("PlanCacheCap after shrink = %d, want 2", got)
	}
	if n := p.PlanCacheLen(); n != 2 {
		t.Fatalf("shrink left %d entries, want 2", n)
	}
	if ev := p.tel.cacheEvictions.Value(); ev != 2 {
		t.Fatalf("shrink evictions = %d, want 2", ev)
	}
	hits := p.tel.cacheHits.Value()
	if _, _, err := p.SelectPlanKeyed(plans[2:], envs, key); err != nil {
		t.Fatal(err)
	}
	if h := p.tel.cacheHits.Value(); h != hits+2 {
		t.Fatalf("warm head lost across shrink: hits %d -> %d", hits, h)
	}
	misses := p.tel.cacheMisses.Value()
	if _, _, err := p.SelectPlanKeyed(plans[:1], envs, key); err != nil {
		t.Fatal(err)
	}
	if m := p.tel.cacheMisses.Value(); m != misses+1 {
		t.Fatalf("LRU tail survived shrink: misses %d -> %d", misses, m)
	}

	// Growing never drops entries; re-filling uses the new headroom.
	p.SetPlanCacheCapacity(16)
	if n := p.PlanCacheLen(); n != 2 {
		t.Fatalf("grow dropped entries: %d, want 2", n)
	}
	for _, pl := range plans {
		if _, _, err := p.SelectPlanKeyed([]*plan.Plan{pl}, envs, key); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.PlanCacheLen(); n != 4 {
		t.Fatalf("after grow + refill: %d entries, want 4", n)
	}

	// Capacity 0: everything evicts, the cache object stays, and fills are
	// immediately discarded.
	p.SetPlanCacheCapacity(0)
	if n, c := p.PlanCacheLen(), p.PlanCacheCap(); n != 0 || c != 0 {
		t.Fatalf("zero-capacity cache: len=%d cap=%d", n, c)
	}
	if _, _, err := p.SelectPlanKeyed(plans[:2], envs, key); err != nil {
		t.Fatal(err)
	}
	if n := p.PlanCacheLen(); n != 0 {
		t.Fatalf("zero-capacity cache retained %d entries", n)
	}

	// SetPlanCacheCapacity on a cache-less predictor installs one.
	p2, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2.SetPlanCacheCapacity(4)
	if got := p2.PlanCacheCap(); got != 4 {
		t.Fatalf("install-on-demand cap = %d, want 4", got)
	}
}

// TestPlanCacheConcurrent hammers one shared cache from many goroutines mixing
// keyed selects and PredictCost; run under -race this is the predictor-level
// data-race test for the singleflight cache.
func TestPlanCacheConcurrent(t *testing.T) {
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 25)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.EnablePlanCache(8) // small: forces concurrent eviction too
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})
	cands := make([]*plan.Plan, 12)
	for i := range cands {
		cands[i] = samples[i].Plan
	}
	want := referenceCosts(p, cands, envs)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 15; it++ {
				lo := (g + it) % 6
				sub := cands[lo : lo+6]
				_, costs, err := p.SelectPlanKeyed(sub, envs, key)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range costs {
					if math.Float64bits(costs[i]) != math.Float64bits(want[lo+i]) {
						t.Errorf("goroutine %d: cost %d drifted", g, lo+i)
						return
					}
				}
				_ = p.PredictCost(cands[it%len(cands)], envs)
			}
		}(g)
	}
	wg.Wait()
}

// benchPredictor trains one small TCN predictor and returns it with a
// recurring plan + env source, shared by the before/after forward benchmarks.
func benchPredictor(b *testing.B) (*Predictor, *plan.Plan, encoding.EnvSource) {
	b.Helper()
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 27)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		b.Fatal(err)
	}
	return p, samples[0].Plan, encoding.FixedEnv(p.TrainMeanEnv())
}

// BenchmarkForwardTrainingPath is the "before" number: one cost prediction
// through the autograd forward (graph construction, per-op tensor + gradient
// allocation) that serving used prior to the inference fast path.
func BenchmarkForwardTrainingPath(b *testing.B) {
	p, pl, envs := benchPredictor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := p.bb.embed(pl, envs)
		_ = p.denormalize(p.costHead.Forward(emb).Data[0])
	}
}

// BenchmarkForwardInfer is the "after" number: the same prediction through
// PredictCost's allocation-free inference forward.
func BenchmarkForwardInfer(b *testing.B) {
	p, pl, envs := benchPredictor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PredictCost(pl, envs)
	}
}

// BenchmarkSelectPlanUncached scores an 8-candidate set per iteration with
// the cache disabled (batched head, fresh embeddings each time).
func BenchmarkSelectPlanUncached(b *testing.B) {
	p, _, envs := benchPredictor(b)
	samples, _ := synthetic(40, 28)
	cands := make([]*plan.Plan, 8)
	for i := range cands {
		cands[i] = samples[i].Plan
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.SelectPlanParallel(cands, envs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectPlanCached scores the same recurring 8-candidate set with a
// warm plan-embedding cache — the recurring-query serving hot path.
func BenchmarkSelectPlanCached(b *testing.B) {
	p, _, envs := benchPredictor(b)
	samples, _ := synthetic(40, 28)
	cands := make([]*plan.Plan, 8)
	for i := range cands {
		cands[i] = samples[i].Plan
	}
	p.EnablePlanCache(64)
	key := p.EnvKeyFor(StrategyMeanEnv, [4]float64{}, [4]float64{})
	if _, _, err := p.SelectPlanKeyed(cands, envs, key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.SelectPlanKeyed(cands, envs, key); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPredictCostZeroAlloc is the serving-path allocation regression test:
// after warm-up, PredictCost on a binary predicate-free plan performs zero
// heap allocations (scratch comes from the pool, encoders and kernels reuse
// their buffers, and no autograd graph is built).
func TestPredictCostZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; allocation counts are meaningless")
	}
	enc := encoding.NewEncoder(encoding.DefaultConfig())
	samples, _ := synthetic(60, 26)
	p, err := Train(tinyConfig(KindTCN), enc, samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := &plan.Plan{Root: &plan.Node{Op: plan.OpSelect, Children: []*plan.Node{
		{Op: plan.OpTableScan, Table: "mid", PartitionsRead: 4, ColumnsAccessed: 2},
		{Op: plan.OpTableScan, Table: "big", PartitionsRead: 2, ColumnsAccessed: 3},
	}}}
	envs := encoding.FixedEnv(p.TrainMeanEnv())
	p.PredictCost(pl, envs) // warm the pooled scratch
	allocs := testing.AllocsPerRun(100, func() { p.PredictCost(pl, envs) })
	if allocs != 0 {
		t.Fatalf("warmed PredictCost allocated %.1f times per run, want 0", allocs)
	}
}
