package faultinject

import (
	"os"
	"path/filepath"
	"testing"

	"loam/internal/atomicio"
)

func TestKillPointCrashesExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	kp := NewKillPoint(7, 3, FlavorBefore)
	fs := atomicio.NewFS(kp)
	for i := 0; i < 2; i++ {
		if err := fs.WriteFile(filepath.Join(dir, "f"), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		defer func() {
			if _, ok := recover().(*atomicio.Crash); !ok {
				t.Fatal("third write should crash")
			}
		}()
		fs.WriteFile(filepath.Join(dir, "f"), []byte("x"))
	}()
	if kp.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", kp.Ops())
	}
}

func TestKillPointBaselineCountsWithoutCrashing(t *testing.T) {
	dir := t.TempDir()
	kp := NewKillPoint(7, 0, FlavorBefore)
	fs := atomicio.NewFS(kp)
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(filepath.Join(dir, "f"), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if kp.Ops() != 5 {
		t.Fatalf("ops = %d, want 5", kp.Ops())
	}
}

func TestFlavorForCyclesAllFlavors(t *testing.T) {
	seen := map[CrashFlavor]bool{}
	for n := 0; n < int(numFlavors); n++ {
		seen[FlavorFor(n)] = true
	}
	if len(seen) != int(numFlavors) {
		t.Fatalf("FlavorFor covers %d flavors, want %d", len(seen), numFlavors)
	}
}

func TestTornDecisionIsDeterministic(t *testing.T) {
	a := decisionFor(FlavorTorn, 42, 5)
	b := decisionFor(FlavorTorn, 42, 5)
	if a != b {
		t.Fatalf("same (seed, n) produced %+v vs %+v", a, b)
	}
	if a.Outcome != atomicio.CrashTorn {
		t.Fatalf("outcome = %v, want CrashTorn", a.Outcome)
	}
}

func TestDiskHookSameSeedSameDecisions(t *testing.T) {
	cfg := DiskConfig{TornWriteRate: 0.2, PartialRenameRate: 0.2, BitFlipRate: 0.2}
	a, b := NewDiskHook(11, cfg), NewDiskHook(11, cfg)
	for i := 0; i < 200; i++ {
		da := a.Decide(atomicio.OpWriteFile, "p")
		db := b.Decide(atomicio.OpWriteFile, "p")
		if da != db {
			t.Fatalf("op %d: %+v vs %+v", i, da, db)
		}
	}
	// A different seed diverges somewhere in the run.
	c := NewDiskHook(12, cfg)
	diverged := false
	a2 := NewDiskHook(11, cfg)
	for i := 0; i < 200; i++ {
		if a2.Decide(atomicio.OpWriteFile, "p") != c.Decide(atomicio.OpWriteFile, "p") {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged")
	}
}

func TestDiskHookBitFlipSurfacesOnRead(t *testing.T) {
	dir := t.TempDir()
	fs := atomicio.NewFS(NewDiskHook(3, DiskConfig{BitFlipRate: 1}))
	path := filepath.Join(dir, "f")
	payload := atomicio.EncodeFrame([]byte("checksummed payload"))
	if err := fs.WriteFile(path, payload); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := atomicio.DecodeFrame(data); err == nil {
		t.Fatal("bit flip went undetected by the frame checksum")
	}
}
