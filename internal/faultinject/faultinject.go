// Package faultinject is a deterministic, seeded fault-injection harness for
// the guarded serving path (internal/guard).
//
// Production learned optimizers earn their availability story by surviving
// the failure modes nobody schedules: a predictor that starts erroring, a
// model that emits NaN estimates, a scorer that stalls past its deadline, a
// cluster that load-spikes under a noisy neighbor. The injector forces each
// of those on demand so tests and the `loam-bench -run guard` experiment can
// prove the fallback ladder and circuit breaker keep serving.
//
// Determinism contract: every injection decision is a pure function of
// (injector seed, fault kind, query ID), computed through a simrand-derived
// stream. Decisions are therefore independent of call order, parallelism and
// wall time — two same-seed runs inject exactly the same faults into exactly
// the same queries, which is what lets same-seed telemetry snapshots stay
// byte-identical under injection. The only stateful toggle is SetEnabled,
// which experiments flip between serving phases (never mid-batch when
// byte-identical snapshots are asserted).
package faultinject

import (
	"errors"
	"sync/atomic"

	"loam/internal/cluster"
	"loam/internal/simrand"
)

// ErrInjected marks an error as synthetic: guard-path failures caused by the
// injector wrap it, so tests can tell forced faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets per-fault injection rates. Rates are probabilities in [0, 1];
// 0 disables a fault kind, 1 forces it for every query.
type Config struct {
	// PredictorErrorRate forces the learned scorer to fail with an opaque
	// error before scoring starts.
	PredictorErrorRate float64
	// NaNRate corrupts a successful scoring pass into all-NaN estimates —
	// the predictor's ErrNoFiniteEstimate failure mode.
	NaNRate float64
	// DelayRate simulates the scorer stalling past the serving deadline.
	// The stall is logical (the guard treats it as a deadline hit
	// immediately); no real sleeping, so tests stay fast and deterministic.
	DelayRate float64
	// NativeFailRate makes the native re-planning fallback rung fail,
	// pushing the guard down to the default-plan rung.
	NativeFailRate float64
	// LoadSpikeRate adds LoadSpikeAmount of load to every cluster machine
	// before a query is served — the multi-tenant noisy-neighbor scenario.
	LoadSpikeRate   float64
	LoadSpikeAmount float64
	// RetrainFailRate makes a lifecycle retrain attempt fail before training
	// starts — the mid-promote crash scenario. The incumbent model must keep
	// serving (or keep its quarantine fallback) when this fires.
	RetrainFailRate float64
	// TenantSkewRate selects which tenants a fleet-level load spike lands
	// on: each tenant ID rolls once, so a spike wave multiplies the selected
	// tenants' traffic by TenantSkewFactor while the rest stay flat — the
	// multi-tenant hotspot scenario the admission gate must absorb.
	TenantSkewRate float64
	// TenantSkewFactor is the traffic multiplier for skewed tenants
	// (values <= 1 leave volumes unchanged).
	TenantSkewFactor float64
}

// Injector decides, per query, which faults to force. The zero of *Injector
// (nil) is a valid no-op injector: every decision method returns false, so
// the guard can hold one unconditionally.
type Injector struct {
	root    *simrand.RNG
	cfg     Config
	enabled atomic.Bool
	cl      atomic.Pointer[cluster.Cluster]
}

// New returns an enabled injector whose decisions derive from seed.
func New(seed uint64, cfg Config) *Injector {
	inj := &Injector{root: simrand.New(seed), cfg: cfg}
	inj.enabled.Store(true)
	return inj
}

// Config returns the injector's rate configuration.
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// SetEnabled toggles the whole injector. Experiments use it to phase an
// outage: healthy traffic, then a 100%-failure burst, then recovery.
func (i *Injector) SetEnabled(on bool) {
	if i != nil {
		i.enabled.Store(on)
	}
}

// Enabled reports whether the injector is currently active.
func (i *Injector) Enabled() bool { return i != nil && i.enabled.Load() }

// AttachCluster points load-spike injection at a live cluster; without one,
// LoadSpike still reports its decision but has no substrate to push on.
func (i *Injector) AttachCluster(cl *cluster.Cluster) {
	if i != nil {
		i.cl.Store(cl)
	}
}

// roll is the single decision primitive: a pure function of (seed, kind, id)
// via a derived stream, so outcomes do not depend on how many or in what
// order other decisions were made.
func (i *Injector) roll(kind, id string, rate float64) bool {
	if !i.Enabled() || rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return i.root.Derive(kind + ":" + id).Float64() < rate
}

// PredictorError reports whether to force a scorer error for this query.
func (i *Injector) PredictorError(id string) bool {
	return i.roll("predictor", id, i.Config().PredictorErrorRate)
}

// CorruptNaN reports whether to corrupt this query's estimates to NaN.
func (i *Injector) CorruptNaN(id string) bool {
	return i.roll("nan", id, i.Config().NaNRate)
}

// Delay reports whether to stall this query's scoring past the deadline.
func (i *Injector) Delay(id string) bool {
	return i.roll("delay", id, i.Config().DelayRate)
}

// NativeFail reports whether the native fallback rung fails for this query.
func (i *Injector) NativeFail(id string) bool {
	return i.roll("native", id, i.Config().NativeFailRate)
}

// RetrainFail reports whether to abort a lifecycle retrain attempt. The id
// is the candidate model's version label, so the decision is a pure function
// of (seed, attempt) — independent of when during serving the retrain fires.
func (i *Injector) RetrainFail(id string) bool {
	return i.roll("retrain", id, i.Config().RetrainFailRate)
}

// TenantSkew reports whether a fleet load spike lands on this tenant. Like
// every other decision it is a pure function of (seed, "tenantskew", id):
// the same tenants spike in every same-seed run regardless of registration
// or serving order.
func (i *Injector) TenantSkew(id string) bool {
	return i.roll("tenantskew", id, i.Config().TenantSkewRate)
}

// SkewFactor returns the traffic multiplier for skewed tenants, clamped to a
// minimum of 1 so a zero-value config never shrinks traffic.
func (i *Injector) SkewFactor() float64 {
	f := i.Config().TenantSkewFactor
	if f < 1 {
		return 1
	}
	return f
}

// LoadSpike decides a load spike for this query and, when a cluster is
// attached, applies it to every machine. Note that under parallel serving
// the spike's interleaving with other queries' environment reads is
// scheduler-dependent (the decision itself is not); experiments asserting
// byte-identical estimates serve sequentially or keep the rate at zero.
func (i *Injector) LoadSpike(id string) bool {
	if !i.roll("loadspike", id, i.Config().LoadSpikeRate) {
		return false
	}
	if cl := i.cl.Load(); cl != nil {
		ids := make([]int, cl.Size())
		for j := range ids {
			ids[j] = j
		}
		cl.AddLoad(ids, i.cfg.LoadSpikeAmount)
	}
	return true
}
