package faultinject

// Disk fault injection for the durability layer (internal/durable via
// internal/atomicio). Two deterministic instruments:
//
//   - KillPoint: a countdown hook that crashes the process (atomicio's
//     *Crash panic) at exactly the Nth durable write operation, with a
//     chosen crash flavor. The chaos harness (loam-bench -run recover)
//     enumerates N over a run's full write schedule to prove recovery from
//     every write point.
//   - DiskHook: a rate-based hook whose per-op decisions are pure functions
//     of (seed, op, sequence number) — same-seed runs corrupt the same
//     writes, keeping trajectories byte-identical.
//
// Both count operations in the order the FS issues them; since the durable
// layer serializes its writes under the lifecycle lock, the count is
// deterministic for a deterministic workload.

import (
	"sync/atomic"

	"loam/internal/atomicio"
	"loam/internal/simrand"
)

// CrashFlavor selects how a kill point lands.
type CrashFlavor int

const (
	// FlavorBefore crashes before any byte of the op reaches disk.
	FlavorBefore CrashFlavor = iota
	// FlavorTorn crashes mid-write, landing a torn prefix.
	FlavorTorn
	// FlavorAfterTemp crashes with the temp file complete but the rename
	// pending (for appends: after a complete, synced append).
	FlavorAfterTemp
	numFlavors
)

// String renders the flavor's stable label.
func (f CrashFlavor) String() string {
	switch f {
	case FlavorTorn:
		return "torn"
	case FlavorAfterTemp:
		return "after-temp"
	default:
		return "before"
	}
}

// FlavorFor deterministically assigns a crash flavor to kill point n,
// cycling through all flavors so a kill-point sweep exercises each.
func FlavorFor(n int) CrashFlavor { return CrashFlavor(n % int(numFlavors)) }

// decisionFor translates a flavor into the atomicio decision. Torn writes
// keep a pseudo-random prefix derived from (seed, n) so sweeps tear at
// varied offsets, deterministically.
func decisionFor(f CrashFlavor, seed uint64, n int) atomicio.Decision {
	switch f {
	case FlavorTorn:
		keep := simrand.New(seed).DeriveN("tornkeep", n).Intn(61)
		return atomicio.Decision{Outcome: atomicio.CrashTorn, KeepBytes: keep}
	case FlavorAfterTemp:
		return atomicio.Decision{Outcome: atomicio.CrashAfterTemp}
	default:
		return atomicio.Decision{Outcome: atomicio.CrashBefore}
	}
}

// KillPoint is an atomicio.Hook that lets writes 1..N-1 proceed and crashes
// write N with the configured flavor. Ops is the number of write operations
// observed so far (readable after the crash to size a sweep).
type KillPoint struct {
	seed   uint64
	at     int
	flavor CrashFlavor
	ops    atomic.Int64
}

// NewKillPoint returns a hook that crashes the at-th write op (1-based);
// at <= 0 never crashes, which is how a baseline run counts its write
// schedule.
func NewKillPoint(seed uint64, at int, flavor CrashFlavor) *KillPoint {
	return &KillPoint{seed: seed, at: at, flavor: flavor}
}

// Ops returns how many write operations the hook has observed.
func (k *KillPoint) Ops() int { return int(k.ops.Load()) }

// Decide implements atomicio.Hook.
func (k *KillPoint) Decide(op atomicio.Op, path string) atomicio.Decision {
	n := int(k.ops.Add(1))
	if k.at > 0 && n == k.at {
		return decisionFor(k.flavor, k.seed, n)
	}
	return atomicio.Decision{}
}

// DiskConfig sets rate-based disk corruption. Rates are probabilities in
// [0, 1] rolled per write operation.
type DiskConfig struct {
	// TornWriteRate crashes a write mid-stream, leaving a torn prefix.
	TornWriteRate float64
	// PartialRenameRate crashes with the temp file durable but the rename
	// pending.
	PartialRenameRate float64
	// BitFlipRate completes the write but flips one deterministic bit —
	// silent corruption the read-side checksums must catch.
	BitFlipRate float64
}

// DiskHook is a rate-based atomicio.Hook. Each write op rolls once per
// fault kind on a stream derived from (seed, kind, op sequence), so
// decisions replay identically for a same-seed run.
type DiskHook struct {
	root *simrand.RNG
	cfg  DiskConfig
	ops  atomic.Int64
}

// NewDiskHook returns a hook whose corruption decisions derive from seed.
func NewDiskHook(seed uint64, cfg DiskConfig) *DiskHook {
	return &DiskHook{root: simrand.New(seed), cfg: cfg}
}

// Decide implements atomicio.Hook.
func (h *DiskHook) Decide(op atomicio.Op, path string) atomicio.Decision {
	n := h.ops.Add(1)
	id := op.String() + ":" + itoa(n)
	roll := func(kind string, rate float64) bool {
		if rate <= 0 {
			return false
		}
		if rate >= 1 {
			return true
		}
		return h.root.Derive(kind+":"+id).Float64() < rate
	}
	switch {
	case roll("torn", h.cfg.TornWriteRate):
		return atomicio.Decision{Outcome: atomicio.CrashTorn, KeepBytes: int(n) % 61}
	case roll("rename", h.cfg.PartialRenameRate):
		return atomicio.Decision{Outcome: atomicio.CrashAfterTemp}
	case roll("bitflip", h.cfg.BitFlipRate):
		return atomicio.Decision{Outcome: atomicio.BitFlip, FlipBit: int(n) * 13}
	}
	return atomicio.Decision{}
}

// itoa avoids strconv for a hot tiny path.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
