package faultinject

import (
	"sync"
	"testing"

	"loam/internal/cluster"
	"loam/internal/simrand"
)

// TestDecisionsAreOrderIndependent is the package's core contract: the same
// (seed, kind, id) always decides the same way, no matter how many other
// decisions were made first or from which goroutine.
func TestDecisionsAreOrderIndependent(t *testing.T) {
	cfg := Config{PredictorErrorRate: 0.5, NaNRate: 0.3, DelayRate: 0.2}
	ids := []string{"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"}

	forward := New(7, cfg)
	var a []bool
	for _, id := range ids {
		a = append(a, forward.PredictorError(id), forward.CorruptNaN(id), forward.Delay(id))
	}

	// Same seed, reverse order, interleaved with unrelated draws.
	backward := New(7, cfg)
	b := make([]bool, len(a))
	for i := len(ids) - 1; i >= 0; i-- {
		backward.Delay("unrelated")
		b[3*i] = backward.PredictorError(ids[i])
		b[3*i+1] = backward.CorruptNaN(ids[i])
		b[3*i+2] = backward.Delay(ids[i])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between call orders", i)
		}
	}

	if other := New(8, cfg); func() bool {
		for _, id := range ids {
			if other.PredictorError(id) != forward.PredictorError(id) {
				return false
			}
		}
		return true
	}() {
		t.Log("seeds 7 and 8 agree on all predictor decisions (possible but suspicious for 8 ids)")
	}
}

// TestRatesBoundDecisions checks the degenerate rates and the mid-range
// statistics: rate 0 never fires, rate 1 always fires, rate 0.5 fires for
// roughly half the ids.
func TestRatesBoundDecisions(t *testing.T) {
	inj := New(11, Config{PredictorErrorRate: 1, NaNRate: 0, DelayRate: 0.5})
	hits := 0
	for i := 0; i < 200; i++ {
		id := simrand.New(uint64(i)).Derive("id") // arbitrary distinct ids
		_ = id
		sid := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if !inj.PredictorError(sid) {
			t.Fatalf("rate 1 did not fire for %q", sid)
		}
		if inj.CorruptNaN(sid) {
			t.Fatalf("rate 0 fired for %q", sid)
		}
		if inj.Delay(sid) {
			hits++
		}
	}
	if hits < 60 || hits > 140 {
		t.Fatalf("rate 0.5 fired %d/200 times", hits)
	}
}

// TestNilAndDisabledInjector: a nil injector is a safe no-op, and disabling
// suppresses every decision until re-enabled.
func TestNilAndDisabledInjector(t *testing.T) {
	var nilInj *Injector
	if nilInj.PredictorError("q") || nilInj.Enabled() || nilInj.LoadSpike("q") {
		t.Fatal("nil injector decided true")
	}
	nilInj.SetEnabled(true) // must not panic
	nilInj.AttachCluster(nil)

	inj := New(3, Config{PredictorErrorRate: 1})
	if !inj.PredictorError("q") {
		t.Fatal("enabled injector at rate 1 did not fire")
	}
	inj.SetEnabled(false)
	if inj.PredictorError("q") {
		t.Fatal("disabled injector fired")
	}
	inj.SetEnabled(true)
	if !inj.PredictorError("q") {
		t.Fatal("re-enabled injector did not fire")
	}
}

// TestLoadSpikeHitsCluster verifies a spike decision raises every machine's
// load on the attached cluster.
func TestLoadSpikeHitsCluster(t *testing.T) {
	cl := cluster.New(simrand.New(5), cluster.DefaultConfig())
	before := cl.ClusterAverage()
	inj := New(5, Config{LoadSpikeRate: 1, LoadSpikeAmount: 10})
	inj.AttachCluster(cl)
	if !inj.LoadSpike("q1") {
		t.Fatal("spike at rate 1 did not fire")
	}
	after := cl.ClusterAverage()
	if after.Load5 <= before.Load5 {
		t.Fatalf("cluster load did not rise: before=%v after=%v", before.Load5, after.Load5)
	}
}

// TestTenantSkew pins the fleet-spike decision: per-tenant, order-independent,
// roughly rate-proportional, with the factor clamped to >= 1.
func TestTenantSkew(t *testing.T) {
	inj := New(17, Config{TenantSkewRate: 0.1, TenantSkewFactor: 20})
	hits := 0
	var first []bool
	for i := 0; i < 500; i++ {
		id := "tenant" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		d := inj.TenantSkew(id)
		first = append(first, d)
		if d {
			hits++
		}
	}
	if hits < 20 || hits > 90 {
		t.Fatalf("rate 0.1 skewed %d/500 tenants", hits)
	}
	// Same seed, fresh injector, reverse order: identical decisions.
	again := New(17, Config{TenantSkewRate: 0.1, TenantSkewFactor: 20})
	for i := 499; i >= 0; i-- {
		id := "tenant" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if again.TenantSkew(id) != first[i] {
			t.Fatalf("tenant %s decision differs between call orders", id)
		}
	}
	if f := inj.SkewFactor(); f != 20 {
		t.Fatalf("SkewFactor = %v, want 20", f)
	}
	if f := New(1, Config{TenantSkewRate: 1}).SkewFactor(); f != 1 {
		t.Fatalf("zero-value factor = %v, want clamp to 1", f)
	}
	var nilInj *Injector
	if nilInj.TenantSkew("t") || nilInj.SkewFactor() != 1 {
		t.Fatal("nil injector skewed")
	}
}

// TestConcurrentDecisions hammers one injector from many goroutines under
// -race; decisions must be safe and stable.
func TestConcurrentDecisions(t *testing.T) {
	inj := New(13, Config{PredictorErrorRate: 0.5, DelayRate: 0.5})
	want := inj.PredictorError("q-stable")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if inj.PredictorError("q-stable") != want {
					t.Error("decision flapped under concurrency")
					return
				}
				inj.Delay("other")
			}
		}()
	}
	wg.Wait()
}
