// Package cardinality propagates row counts through a physical plan.
//
// The same propagation rules run against two different inputs: the
// warehouse's hidden ground truth (producing the *true* cardinalities the
// execution simulator charges for) and the stats package's degraded view
// (producing the *estimated* cardinalities the native optimizer plans with).
// Challenge C2 of the paper is precisely the gap between the two.
package cardinality

import (
	"math"

	"loam/internal/expr"
	"loam/internal/plan"
	"loam/internal/stats"
	"loam/internal/warehouse"
)

// Source supplies the inputs the propagation rules need.
type Source struct {
	// Rows returns the row count of a base table.
	Rows func(tableID string) float64
	// Partitions returns the number of partitions of a base table.
	Partitions func(tableID string) int
	// Dist supplies predicate selectivities.
	Dist expr.DistProvider
	// NDV returns the distinct-value count of a column.
	NDV func(col expr.ColumnRef) float64
}

// TruthSource builds a Source over the warehouse ground truth as of a day.
func TruthSource(p *warehouse.Project, day int) Source {
	return Source{
		Rows: func(tableID string) float64 {
			if t := p.Table(tableID); t != nil {
				return float64(t.RowsAt(day))
			}
			return 1
		},
		Partitions: func(tableID string) int {
			if t := p.Table(tableID); t != nil && t.Partitions > 0 {
				return t.Partitions
			}
			return 1
		},
		Dist: &warehouse.Truth{Project: p},
		NDV: func(col expr.ColumnRef) float64 {
			if t := p.Table(col.Table); t != nil {
				if c := t.Column(col.Column); c != nil {
					return float64(c.NDV)
				}
			}
			return 100
		},
	}
}

// ViewSource builds a Source over an optimizer statistics view.
func ViewSource(v *stats.View) Source {
	return Source{
		Rows:       func(tableID string) float64 { return float64(v.RowEstimate(tableID)) },
		Partitions: func(tableID string) int { return v.PartitionEstimate(tableID) },
		Dist:       v,
		NDV:        func(col expr.ColumnRef) float64 { return float64(v.NDVEstimate(col)) },
	}
}

// Estimator computes per-node output cardinalities.
type Estimator struct {
	Src Source
	// CardScale multiplies the estimate of every sub-plan spanning at least
	// three base tables — the Lero-style exploration knob (§3, Plan
	// Explorer). 0 or 1 means no scaling.
	CardScale float64
}

// Result holds per-node output cardinalities for one plan.
type Result struct {
	rows   map[*plan.Node]float64
	tables map[*plan.Node]int
}

// Rows returns the output cardinality of a node (0 for unknown nodes).
func (r *Result) Rows(n *plan.Node) float64 { return r.rows[n] }

// BaseTables returns how many distinct base tables feed a node.
func (r *Result) BaseTables(n *plan.Node) int { return r.tables[n] }

// Estimate computes output cardinalities for every node under root.
func (e *Estimator) Estimate(root *plan.Node) *Result {
	res := &Result{
		rows:   make(map[*plan.Node]float64, root.Size()),
		tables: make(map[*plan.Node]int, root.Size()),
	}
	e.walk(root, res)
	return res
}

func (e *Estimator) walk(n *plan.Node, res *Result) (rows float64, tables int) {
	if n == nil {
		return 0, 0
	}
	childRows := make([]float64, len(n.Children))
	for i, c := range n.Children {
		r, t := e.walk(c, res)
		childRows[i] = r
		tables += t
	}
	rows = e.output(n, childRows)
	if n.Op == plan.OpTableScan {
		tables = 1
	}
	if e.CardScale > 0 && e.CardScale != 1 && tables >= 3 {
		rows *= e.CardScale
	}
	if rows < 1 {
		rows = 1
	}
	res.rows[n] = rows
	res.tables[n] = tables
	return rows, tables
}

func (e *Estimator) output(n *plan.Node, in []float64) float64 {
	first := func() float64 {
		if len(in) > 0 {
			return in[0]
		}
		return 1
	}
	switch {
	case n.Op == plan.OpTableScan:
		rows := e.Src.Rows(n.Table)
		parts := e.Src.Partitions(n.Table)
		if parts > 0 && n.PartitionsRead > 0 && n.PartitionsRead < parts {
			rows *= float64(n.PartitionsRead) / float64(parts)
		}
		return rows
	case n.Op.IsFilterLike():
		return first() * expr.Selectivity(n.Pred, e.Src.Dist)
	case n.Op.IsJoin():
		return e.joinOutput(n, in)
	case n.Op.IsAggregate():
		return e.aggOutput(n, first())
	case n.Op == plan.OpUnion:
		total := 0.0
		for _, r := range in {
			total += r
		}
		return total
	case n.Op == plan.OpLimit || n.Op == plan.OpTopN:
		return math.Min(first(), 10_000)
	case n.Op == plan.OpSample:
		return first() * 0.01
	case n.Op == plan.OpValues:
		return 1
	case n.Op == plan.OpExpand:
		return first() * 2
	default:
		// Exchange, Sort, Spool, Project, Window, Select, Sink... preserve
		// cardinality.
		return first()
	}
}

func (e *Estimator) joinOutput(n *plan.Node, in []float64) float64 {
	left, right := 1.0, 1.0
	if len(in) > 0 {
		left = in[0]
	}
	if len(in) > 1 {
		right = in[1]
	}
	// Containment assumption: each equi-join pair contributes
	// 1/max(ndvL, ndvR).
	sel := 1.0
	for i := range n.LeftCols {
		ndvL := e.Src.NDV(n.LeftCols[i])
		ndvR := ndvL
		if i < len(n.RightCols) {
			ndvR = e.Src.NDV(n.RightCols[i])
		}
		m := math.Max(ndvL, ndvR)
		if m < 1 {
			m = 1
		}
		sel /= m
	}
	if len(n.LeftCols) == 0 {
		sel = 1 // cross join
	}
	out := left * right * sel
	switch n.JoinForm {
	case plan.JoinSemi:
		return math.Min(left, out)
	case plan.JoinAnti:
		v := left - math.Min(left, out)
		if v < 1 {
			v = 1
		}
		return v
	case plan.JoinLeft:
		return math.Max(out, left)
	case plan.JoinRight:
		return math.Max(out, right)
	case plan.JoinFull:
		return math.Max(out, left+right)
	default:
		return out
	}
}

func (e *Estimator) aggOutput(n *plan.Node, in float64) float64 {
	if len(n.GroupCols) == 0 {
		if n.Op == plan.OpDistinct {
			return math.Min(in, math.Sqrt(in)+1)
		}
		return 1 // scalar aggregate
	}
	groups := 1.0
	for _, c := range n.GroupCols {
		groups *= e.Src.NDV(c)
	}
	return math.Min(in, groups)
}
