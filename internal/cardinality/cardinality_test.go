package cardinality

import (
	"math"
	"testing"
	"testing/quick"

	"loam/internal/expr"
	"loam/internal/plan"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

// fixedSource provides hand-set sizes for testing the propagation rules.
func fixedSource() Source {
	rows := map[string]float64{"a": 10_000, "b": 1_000, "c": 100}
	ndv := map[string]float64{"a.k": 1000, "b.k": 1000, "b.g": 50, "c.k": 100}
	return Source{
		Rows:       func(t string) float64 { return rows[t] },
		Partitions: func(t string) int { return 10 },
		Dist:       constSel(0.1),
		NDV: func(c expr.ColumnRef) float64 {
			if v, ok := ndv[c.Table+"."+c.Column]; ok {
				return v
			}
			return 10
		},
	}
}

type constSel float64

func (s constSel) CompareSelectivity(expr.ColumnRef, expr.Func, []float64) float64 {
	return float64(s)
}

func scan(table string, parts int) *plan.Node {
	return &plan.Node{Op: plan.OpTableScan, Table: table, PartitionsRead: parts, ColumnsAccessed: 1}
}

func TestScanPartitionPruning(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	full := est.Estimate(scan("a", 10))
	pruned := est.Estimate(scan("a", 2))
	if full.Rows(nil) != 0 {
		t.Fatal("nil node should report 0 rows")
	}
	n1, n2 := scan("a", 10), scan("a", 2)
	r1 := est.Estimate(n1).Rows(n1)
	r2 := est.Estimate(n2).Rows(n2)
	if r1 != 10_000 {
		t.Fatalf("full scan %g", r1)
	}
	if math.Abs(r2-2000) > 1e-9 {
		t.Fatalf("pruned scan %g", r2)
	}
	_ = full
	_ = pruned
}

func TestFilterAppliesSelectivity(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	f := &plan.Node{
		Op:       plan.OpFilter,
		Pred:     expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "a", Column: "k"}, 1),
		Children: []*plan.Node{scan("a", 10)},
	}
	r := est.Estimate(f).Rows(f)
	if math.Abs(r-1000) > 1e-9 {
		t.Fatalf("filtered rows %g, want 1000", r)
	}
}

func joinNode(op plan.OpType, form plan.JoinForm, l, r *plan.Node, lk, rk expr.ColumnRef) *plan.Node {
	return &plan.Node{
		Op: op, JoinForm: form,
		LeftCols: []expr.ColumnRef{lk}, RightCols: []expr.ColumnRef{rk},
		Children: []*plan.Node{l, r},
	}
}

func TestJoinContainment(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	j := joinNode(plan.OpHashJoin, plan.JoinInner, scan("a", 10), scan("b", 10),
		expr.ColumnRef{Table: "a", Column: "k"}, expr.ColumnRef{Table: "b", Column: "k"})
	r := est.Estimate(j).Rows(j)
	// 10000 * 1000 / max(1000,1000) = 10000.
	if math.Abs(r-10_000) > 1e-9 {
		t.Fatalf("join rows %g", r)
	}
}

func TestCrossJoinMultiplies(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	j := &plan.Node{Op: plan.OpNestedLoopJoin, JoinForm: plan.JoinInner,
		Children: []*plan.Node{scan("b", 10), scan("c", 10)}}
	r := est.Estimate(j).Rows(j)
	if math.Abs(r-100_000) > 1e-9 {
		t.Fatalf("cross join rows %g", r)
	}
}

func TestSemiAntiJoinBounds(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	lk := expr.ColumnRef{Table: "a", Column: "k"}
	rk := expr.ColumnRef{Table: "b", Column: "k"}
	semi := joinNode(plan.OpSemiJoin, plan.JoinSemi, scan("a", 10), scan("b", 10), lk, rk)
	rSemi := est.Estimate(semi).Rows(semi)
	if rSemi > 10_000+1e-9 {
		t.Fatalf("semi join exceeds left size: %g", rSemi)
	}
	anti := joinNode(plan.OpAntiJoin, plan.JoinAnti, scan("a", 10), scan("b", 10), lk, rk)
	rAnti := est.Estimate(anti).Rows(anti)
	if rAnti < 1 || rAnti > 10_000 {
		t.Fatalf("anti join out of bounds: %g", rAnti)
	}
	if math.Abs(rSemi+rAnti-10_000) > 1 {
		t.Fatalf("semi+anti should partition left: %g + %g", rSemi, rAnti)
	}
}

func TestOuterJoinsAtLeastPreserve(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	lk := expr.ColumnRef{Table: "a", Column: "k"}
	rk := expr.ColumnRef{Table: "c", Column: "k"}
	left := joinNode(plan.OpHashJoin, plan.JoinLeft, scan("a", 10), scan("c", 10), lk, rk)
	if r := est.Estimate(left).Rows(left); r < 10_000 {
		t.Fatalf("left join dropped rows: %g", r)
	}
	full := joinNode(plan.OpHashJoin, plan.JoinFull, scan("a", 10), scan("c", 10), lk, rk)
	if r := est.Estimate(full).Rows(full); r < 10_100 {
		t.Fatalf("full join below l+r: %g", r)
	}
}

func TestAggregationCapsAtGroups(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	agg := &plan.Node{
		Op:        plan.OpHashAggregate,
		GroupCols: []expr.ColumnRef{{Table: "b", Column: "g"}},
		Children:  []*plan.Node{scan("a", 10)},
	}
	if r := est.Estimate(agg).Rows(agg); math.Abs(r-50) > 1e-9 {
		t.Fatalf("grouped agg %g, want 50 (NDV cap)", r)
	}
	scalar := &plan.Node{Op: plan.OpHashAggregate, Children: []*plan.Node{scan("a", 10)}}
	if r := est.Estimate(scalar).Rows(scalar); r != 1 {
		t.Fatalf("scalar agg %g", r)
	}
}

func TestPassThroughOps(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	for _, op := range []plan.OpType{plan.OpExchange, plan.OpSort, plan.OpSpool, plan.OpProject, plan.OpSelect} {
		n := &plan.Node{Op: op, Children: []*plan.Node{scan("a", 10)}}
		if r := est.Estimate(n).Rows(n); math.Abs(r-10_000) > 1e-9 {
			t.Fatalf("%v not pass-through: %g", op, r)
		}
	}
}

func TestUnionSums(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	u := &plan.Node{Op: plan.OpUnion, Children: []*plan.Node{scan("b", 10), scan("c", 10)}}
	if r := est.Estimate(u).Rows(u); math.Abs(r-1100) > 1e-9 {
		t.Fatalf("union %g", r)
	}
}

func TestLimitCaps(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	l := &plan.Node{Op: plan.OpLimit, Children: []*plan.Node{scan("a", 10)}}
	if r := est.Estimate(l).Rows(l); r > 10_000 {
		t.Fatalf("limit did not cap: %g", r)
	}
}

func TestCardScaleAppliesOnlyToWideSubplans(t *testing.T) {
	src := fixedSource()
	lk := expr.ColumnRef{Table: "a", Column: "k"}
	bk := expr.ColumnRef{Table: "b", Column: "k"}
	ck := expr.ColumnRef{Table: "c", Column: "k"}
	build := func() *plan.Node {
		j1 := joinNode(plan.OpHashJoin, plan.JoinInner, scan("a", 10), scan("b", 10), lk, bk)
		return joinNode(plan.OpHashJoin, plan.JoinInner, j1, scan("c", 10), bk, ck)
	}
	plain := &Estimator{Src: src}
	scaled := &Estimator{Src: src, CardScale: 10}

	rootPlain := build()
	rootScaled := build()
	rp := plain.Estimate(rootPlain)
	rs := scaled.Estimate(rootScaled)

	// Two-table subplan unscaled.
	if rp.Rows(rootPlain.Children[0]) != rs.Rows(rootScaled.Children[0]) {
		t.Fatal("2-table subplan should not be scaled")
	}
	// Three-table root scaled by 10.
	if math.Abs(rs.Rows(rootScaled)/rp.Rows(rootPlain)-10) > 1e-9 {
		t.Fatalf("3-table root scaling wrong: %g vs %g", rs.Rows(rootScaled), rp.Rows(rootPlain))
	}
	if rp.BaseTables(rootPlain) != 3 {
		t.Fatalf("base tables %d", rp.BaseTables(rootPlain))
	}
}

func TestPredicateMonotonicityProperty(t *testing.T) {
	// Conjoining an extra predicate never increases estimated rows.
	a := warehouse.DefaultArchetype()
	a.Name = "m"
	p := warehouse.Generate(simrand.New(17), a)
	src := TruthSource(p, 1)
	est := &Estimator{Src: src}
	tb := p.Tables[0]
	col := tb.Columns[0].Ref(tb)

	if err := quick.Check(func(r1Raw, r2Raw uint16) bool {
		r1 := float64(r1Raw) // value ranks, clamped internally
		r2 := float64(r2Raw)
		one := &plan.Node{Op: plan.OpFilter,
			Pred:     expr.Compare(expr.FuncLT, col, r1),
			Children: []*plan.Node{scan2(tb.ID, tb.Partitions)}}
		two := &plan.Node{Op: plan.OpFilter,
			Pred:     expr.And(expr.Compare(expr.FuncLT, col, r1), expr.Compare(expr.FuncGE, col, r2)),
			Children: []*plan.Node{scan2(tb.ID, tb.Partitions)}}
		rows1 := est.Estimate(one).Rows(one)
		rows2 := est.Estimate(two).Rows(two)
		return rows2 <= rows1+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func scan2(table string, parts int) *plan.Node {
	return &plan.Node{Op: plan.OpTableScan, Table: table, PartitionsRead: parts, ColumnsAccessed: 1}
}

func TestTruthAndViewSourcesDiffer(t *testing.T) {
	a := warehouse.DefaultArchetype()
	a.Name = "tv"
	p := warehouse.Generate(simrand.New(19), a)
	truth := TruthSource(p, 5)
	if truth.Rows(p.Tables[0].ID) <= 0 {
		t.Fatal("truth rows non-positive")
	}
	if truth.Rows("missing") != 1 {
		t.Fatal("missing table should default to 1")
	}
	if truth.Partitions("missing") != 1 {
		t.Fatal("missing partitions should default to 1")
	}
}

func TestMiscOperatorOutputs(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	in := scan("a", 10) // 10k rows
	cases := []struct {
		op    plan.OpType
		check func(r float64) bool
	}{
		{plan.OpSample, func(r float64) bool { return r < 10_000 && r > 0 }},
		{plan.OpExpand, func(r float64) bool { return r == 20_000 }},
		{plan.OpValues, func(r float64) bool { return r == 1 }},
		{plan.OpTopN, func(r float64) bool { return r <= 10_000 }},
		{plan.OpWindow, func(r float64) bool { return r == 10_000 }},
	}
	for _, c := range cases {
		n := &plan.Node{Op: c.op, Children: []*plan.Node{in}}
		r := est.Estimate(n).Rows(n)
		if !c.check(r) {
			t.Fatalf("%v output %g", c.op, r)
		}
	}
}

func TestDistinctWithoutGroups(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	n := &plan.Node{Op: plan.OpDistinct, Children: []*plan.Node{scan("a", 10)}}
	r := est.Estimate(n).Rows(n)
	if r <= 0 || r > 10_000 {
		t.Fatalf("distinct output %g", r)
	}
}

func TestRowsFloorAtOne(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	// A filter with tiny selectivity over a tiny table still reports >= 1.
	f := &plan.Node{
		Op:       plan.OpFilter,
		Pred:     expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "c", Column: "k"}, 1),
		Children: []*plan.Node{scan("c", 10)},
	}
	if r := est.Estimate(f).Rows(f); r < 1 {
		t.Fatalf("rows %g below floor", r)
	}
}

func TestResultUnknownNode(t *testing.T) {
	est := &Estimator{Src: fixedSource()}
	res := est.Estimate(scan("a", 10))
	if res.Rows(&plan.Node{Op: plan.OpSort}) != 0 {
		t.Fatal("unknown node should report 0")
	}
	if res.BaseTables(&plan.Node{Op: plan.OpSort}) != 0 {
		t.Fatal("unknown node should report 0 tables")
	}
}
