// Package feedback is the online feedback store of the model lifecycle: a
// bounded, deterministic ring of executed-query observations — the (plan,
// environment, actual cost) triples the paper's deployment story retrains
// LOAM from (§6–§7), and the same loop Bao and Microsoft's QO-Advisor make
// the central production mechanism.
//
// The store is fed from the execution path (Deployment.ExecuteChoice):
// every executed choice contributes its plan, the execution record carrying
// the realized per-stage environments and CPU cost, and — for learned-origin
// choices — the model's serving-time estimate. The bound is a hard capacity:
// the newest Capacity entries win, the oldest are dropped, and the retained
// window is a pure function of the append sequence, so same-seed runs
// retrain from byte-identical training sets.
//
// The package also carries the drift detector: a windowed monitor of
// prediction-vs-actual divergence that turns "the model has gone stale" into
// a deterministic retrain trigger. It complements the serving guard's
// regression sentinel (internal/guard), which watches learned choices
// against the native optimizer's judgment; both signals feed the lifecycle
// manager's retrain → shadow-score → promote loop.
package feedback

import (
	"math"
	"sync"

	"loam/internal/exec"
	"loam/internal/query"
)

// Entry is one executed-query observation.
type Entry struct {
	// Query is the logical query whose chosen plan was executed; the
	// lifecycle's retrain path re-explores it for domain-alignment plans.
	Query *query.Query
	// Record is the execution record: the executed plan, the realized
	// per-stage environments (Record.NodeEnv) and the actual CPU cost —
	// exactly the sample shape the predictor trains from.
	Record *exec.Record
	// Predicted is the model's serving-time cost estimate for the executed
	// plan. NaN when the plan was served from a fallback rung (no learned
	// estimate exists); drift detection skips such entries.
	Predicted float64
}

// DefaultCapacity bounds the store when the lifecycle config leaves it zero:
// large enough to hold several retrain windows at simulator scale, small
// enough that the store's footprint stays trivial.
const DefaultCapacity = 1024

// Store is the bounded feedback ring. It is safe for concurrent use:
// appends from executing queries and snapshots from the lifecycle manager
// serialize on an internal mutex.
type Store struct {
	mu    sync.Mutex
	buf   []Entry
	next  int
	size  int
	total int64
}

// NewStore returns a store bounded at capacity entries (<= 0 uses
// DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{buf: make([]Entry, capacity)}
}

// Capacity returns the store's bound.
func (s *Store) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Add appends one observation, evicting the oldest entry once the store is
// full.
func (s *Store) Add(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf[s.next] = e
	s.next = (s.next + 1) % len(s.buf)
	if s.size < len(s.buf) {
		s.size++
	}
	s.total++
}

// Len returns the number of retained entries (≤ Capacity).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Total returns the number of entries ever appended, including evicted ones.
func (s *Store) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Snapshot returns the retained entries oldest-first, as a private copy the
// caller may hold across later appends.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyRecent(s.size)
}

// Recent returns the newest n entries oldest-first (all of them when n
// exceeds Len), as a private copy.
func (s *Store) Recent(n int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.size {
		n = s.size
	}
	return s.copyRecent(n)
}

// copyRecent copies the newest n retained entries in chronological order;
// callers hold the lock.
func (s *Store) copyRecent(n int) []Entry {
	if n <= 0 {
		return nil
	}
	out := make([]Entry, n)
	start := (s.next - n + len(s.buf)) % len(s.buf)
	for i := 0; i < n; i++ {
		out[i] = s.buf[(start+i)%len(s.buf)]
	}
	return out
}

// DriftConfig tunes the prediction-vs-actual drift detector. The zero value
// is normalized by NewDetector to DefaultDriftConfig field-by-field.
type DriftConfig struct {
	// Window is how many learned-origin observations form one drift window.
	Window int
	// Threshold is the mean |ln(predicted/actual)| above which a window
	// counts as drifted. ln-space keeps the measure scale-free: 0.7 ≈ the
	// model being off by 2x on average.
	Threshold float64
	// Windows is how many consecutive drifted windows raise the drift
	// signal.
	Windows int
}

// DefaultDriftConfig returns serving-scale drift settings.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Window: 16, Threshold: 0.7, Windows: 2}
}

// normalize fills zero fields from the defaults.
func (c DriftConfig) normalize() DriftConfig {
	d := DefaultDriftConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	if c.Windows <= 0 {
		c.Windows = d.Windows
	}
	return c
}

// Detector accumulates prediction-vs-actual divergence into fixed windows
// and raises a signal after Windows consecutive drifted ones — the same
// window/run shape as the guard's regression sentinel, measured against
// ground truth instead of the native optimizer's opinion. It is not
// goroutine-safe on its own; the lifecycle manager serializes access.
type Detector struct {
	cfg DriftConfig

	n      int
	sumErr float64
	run    int
}

// NewDetector builds a detector (config normalized via DefaultDriftConfig).
func NewDetector(cfg DriftConfig) *Detector {
	return &Detector{cfg: cfg.normalize()}
}

// Config returns the detector's normalized configuration.
func (d *Detector) Config() DriftConfig { return d.cfg }

// Observe records one (predicted, actual) pair and reports whether the
// drift signal fires on this observation. Non-finite or non-positive inputs
// are skipped — a fallback-served query says nothing about the model's
// calibration. The signal resets the consecutive-window run, so a
// persistent drift re-fires only after Windows further drifted windows.
func (d *Detector) Observe(predicted, actual float64) bool {
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) || predicted <= 0 {
		return false
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) || actual <= 0 {
		return false
	}
	d.n++
	d.sumErr += math.Abs(math.Log(predicted) - math.Log(actual))
	if d.n < d.cfg.Window {
		return false
	}
	mean := d.sumErr / float64(d.n)
	d.n, d.sumErr = 0, 0
	if mean > d.cfg.Threshold {
		d.run++
	} else {
		d.run = 0
	}
	if d.run >= d.cfg.Windows {
		d.run = 0
		return true
	}
	return false
}

// Reset clears all accumulated state — called when the model under watch
// changes (promote or rollback), so a fresh model starts with a clean
// divergence history.
func (d *Detector) Reset() {
	d.n, d.sumErr, d.run = 0, 0, 0
}
