package feedback

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"loam/internal/exec"
)

func entry(i int) Entry {
	return Entry{
		Record:    &exec.Record{QueryID: fmt.Sprintf("q%03d", i), CPUCost: float64(i)},
		Predicted: float64(i),
	}
}

func ids(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Record.QueryID
	}
	return out
}

func TestStoreBoundedEviction(t *testing.T) {
	s := NewStore(4)
	if s.Capacity() != 4 {
		t.Fatalf("capacity %d", s.Capacity())
	}
	for i := 0; i < 6; i++ {
		s.Add(entry(i))
	}
	if s.Len() != 4 || s.Total() != 6 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	got := ids(s.Snapshot())
	want := []string{"q002", "q003", "q004", "q005"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", got, want)
		}
	}
	recent := ids(s.Recent(2))
	if recent[0] != "q004" || recent[1] != "q005" {
		t.Fatalf("recent %v", recent)
	}
	if len(s.Recent(100)) != 4 {
		t.Fatalf("recent overshoot should clamp")
	}
}

func TestStoreSnapshotIsPrivateCopy(t *testing.T) {
	s := NewStore(3)
	s.Add(entry(0))
	snap := s.Snapshot()
	s.Add(entry(1))
	s.Add(entry(2))
	s.Add(entry(3)) // evicts q000
	if snap[0].Record.QueryID != "q000" {
		t.Fatal("snapshot mutated by later appends")
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	if got := NewStore(0).Capacity(); got != DefaultCapacity {
		t.Fatalf("default capacity %d", got)
	}
}

func TestStoreConcurrentAppends(t *testing.T) {
	s := NewStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(entry(w*100 + i))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 64 || s.Total() != 400 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
}

func TestDetectorFiresAfterConsecutiveDriftedWindows(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 4, Threshold: 0.5, Windows: 2})
	fired := 0
	// Two full windows of 4 observations, each off by e^1 ≈ 2.7x: both
	// drifted, so the signal fires exactly on the 8th observation.
	for i := 0; i < 8; i++ {
		if d.Observe(math.E*100, 100) {
			fired++
			if i != 7 {
				t.Fatalf("fired at observation %d", i)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
	// The run was reset by the signal: two more drifted windows re-fire.
	for i := 0; i < 8; i++ {
		fired = 0
		if d.Observe(math.E*100, 100) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatal("signal did not re-fire after reset")
	}
}

func TestDetectorHealthyWindowBreaksRun(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 2, Threshold: 0.5, Windows: 2})
	// Drifted window, then a calibrated window, then a drifted window: the
	// run never reaches 2, so the signal stays silent.
	pairs := [][2]float64{
		{300, 100}, {300, 100}, // drifted
		{100, 100}, {100, 100}, // healthy
		{300, 100}, {300, 100}, // drifted again
	}
	for i, p := range pairs {
		if d.Observe(p[0], p[1]) {
			t.Fatalf("signal fired at observation %d", i)
		}
	}
}

func TestDetectorSkipsNonFinite(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 1, Threshold: 0.1, Windows: 1})
	if d.Observe(math.NaN(), 100) || d.Observe(100, math.NaN()) ||
		d.Observe(math.Inf(1), 100) || d.Observe(0, 100) || d.Observe(100, -1) {
		t.Fatal("non-finite observations must not fire")
	}
	if !d.Observe(300, 100) {
		t.Fatal("finite drifted observation should fire at window 1")
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 2, Threshold: 0.5, Windows: 1})
	d.Observe(300, 100) // half a window accumulated
	d.Reset()
	if d.Observe(300, 100) {
		t.Fatal("reset should clear the partial window")
	}
	if !d.Observe(300, 100) {
		t.Fatal("second post-reset observation completes the window")
	}
}

func TestDriftConfigNormalize(t *testing.T) {
	d := NewDetector(DriftConfig{})
	if d.Config() != DefaultDriftConfig() {
		t.Fatalf("zero config not normalized: %+v", d.Config())
	}
}
