package plan

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"loam/internal/expr"
)

// Node is one operator in a physical plan tree. Only the attribute fields
// relevant to the node's operator type are populated (e.g. Table for
// TableScan, JoinForm/LeftCols/RightCols for joins).
type Node struct {
	Op       OpType  `json:"op"`
	Children []*Node `json:"children,omitempty"`

	// TableScan attributes (§4: table identifier, partitions and columns
	// accessed).
	Table           string `json:"table,omitempty"`
	PartitionsRead  int    `json:"partitionsRead,omitempty"`
	ColumnsAccessed int    `json:"columnsAccessed,omitempty"`

	// Join attributes.
	JoinForm  JoinForm         `json:"joinForm,omitempty"`
	LeftCols  []expr.ColumnRef `json:"leftCols,omitempty"`
	RightCols []expr.ColumnRef `json:"rightCols,omitempty"`

	// Aggregation attributes.
	AggFuncs  []AggFunc        `json:"aggFuncs,omitempty"`
	AggCols   []expr.ColumnRef `json:"aggCols,omitempty"`
	GroupCols []expr.ColumnRef `json:"groupCols,omitempty"`

	// Filter / Calc predicate.
	Pred *expr.Node `json:"pred,omitempty"`

	// Parallelism is the degree-of-parallelism hint for the stage containing
	// this node (0 = system default).
	Parallelism int `json:"parallelism,omitempty"`
}

// Plan is a full physical plan, plus the knob settings that produced it —
// the explorer records which flags were toggled so execution logs can carry
// the default/candidate domain label.
type Plan struct {
	Root *Node `json:"root"`
	// Knobs lists the exploration knobs applied ("flag:mergeJoin",
	// "cardScale:2.0", ...); empty for the default plan.
	Knobs []string `json:"knobs,omitempty"`

	// sealFP/sealed memoize Root.Fingerprint() for plans whose producer
	// promises not to mutate the tree afterwards (Seal/SealAs). The seal is
	// plain state, not an atomic: it must be written before the plan is
	// shared (the explorer seals candidates at generation, on the serving
	// goroutine, before any worker sees them), and concurrent readers only
	// ever read it. Clone and JSON round-trips drop the seal, so a caller
	// who mutates a copy can never observe a stale fingerprint.
	sealFP uint64
	sealed bool
}

// IsDefault reports whether the plan was produced with no exploration knobs.
func (p *Plan) IsDefault() bool { return len(p.Knobs) == 0 }

// Seal memoizes and returns the plan's structural fingerprint. Sealing is a
// promise that the tree will not be mutated afterwards; it must happen
// before the plan is shared across goroutines (the explorer seals candidates
// at generation time). Idempotent: a sealed plan returns its stored value.
func (p *Plan) Seal() uint64 {
	if p.sealed {
		return p.sealFP
	}
	p.sealFP = p.Root.Fingerprint()
	p.sealed = true
	return p.sealFP
}

// SealAs installs fp as the plan's sealed fingerprint — for producers that
// already computed Root.Fingerprint() (the explorer's dedup pass) and must
// not pay for it twice. fp must equal Root.Fingerprint(); the same
// no-mutation and publish-before-share rules as Seal apply.
func (p *Plan) SealAs(fp uint64) {
	p.sealFP = fp
	p.sealed = true
}

// SealedFingerprint returns the sealed fingerprint, if any.
func (p *Plan) SealedFingerprint() (uint64, bool) { return p.sealFP, p.sealed }

// CacheFingerprint is the fingerprint used to key the predictor's
// plan-embedding cache: the sealed value when present (no tree walk — the
// serving hot path), otherwise a fresh Root.Fingerprint(). It never stores:
// an unsealed plan may be shared by concurrent readers, and memoizing here
// would race.
func (p *Plan) CacheFingerprint() uint64 {
	if p.sealed {
		return p.sealFP
	}
	return p.Root.Fingerprint()
}

// Clone deep-copies the plan. The copy is unsealed regardless of the
// receiver's seal state: a clone exists to be mutated, and a carried-over
// fingerprint would go stale with the first edit.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{Root: p.Root.Clone()}
	if len(p.Knobs) > 0 {
		out.Knobs = append([]string(nil), p.Knobs...)
	}
	return out
}

// Clone deep-copies the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := *n
	out.Children = nil
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	out.LeftCols = append([]expr.ColumnRef(nil), n.LeftCols...)
	out.RightCols = append([]expr.ColumnRef(nil), n.RightCols...)
	out.AggFuncs = append([]AggFunc(nil), n.AggFuncs...)
	out.AggCols = append([]expr.ColumnRef(nil), n.AggCols...)
	out.GroupCols = append([]expr.ColumnRef(nil), n.GroupCols...)
	out.Pred = n.Pred.Clone()
	return &out
}

// Walk visits every node in preorder.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Size returns the number of operators in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the height of the subtree (1 for a leaf, 0 for nil).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > best {
			best = d
		}
	}
	return best + 1
}

// Tables returns the distinct base tables scanned in the subtree, in
// first-appearance (preorder) order.
func (n *Node) Tables() []string {
	var out []string
	seen := map[string]bool{}
	n.Walk(func(m *Node) {
		if m.Op == OpTableScan && !seen[m.Table] {
			seen[m.Table] = true
			out = append(out, m.Table)
		}
	})
	return out
}

// Canonicalize returns an equivalent tree in which every node has at most
// two children: n-ary operators (Union) are rebalanced into left-deep binary
// chains, matching the paper's canonical-binary-tree assumption for the tree
// convolution.
func (n *Node) Canonicalize() *Node {
	if n == nil {
		return nil
	}
	out := n.Clone()
	out.canonicalizeInPlace()
	return out
}

func (n *Node) canonicalizeInPlace() {
	for _, c := range n.Children {
		c.canonicalizeInPlace()
	}
	for len(n.Children) > 2 {
		// Fold the first two children into a nested copy of this operator.
		nested := &Node{Op: n.Op, Children: []*Node{n.Children[0], n.Children[1]}}
		n.Children = append([]*Node{nested}, n.Children[2:]...)
	}
}

// Fingerprint returns a structural hash of the subtree covering operator
// types, attributes, and predicate shapes. Two plans with equal fingerprints
// are treated as duplicates by the explorer, and the predictor keys its
// plan-embedding cache on it, so fingerprinting runs on the serving hot path
// and must not allocate (see TestFingerprintZeroAlloc).
func (n *Node) Fingerprint() uint64 {
	return uint64(n.fingerprint(expr.NewHash()))
}

func (n *Node) fingerprint(h expr.Hash) expr.Hash {
	if n == nil {
		return h.Str("<nil>")
	}
	h = h.Uint64(uint64(n.Op))
	h = h.Str(n.Table)
	h = h.Int(n.PartitionsRead)
	h = h.Int(n.ColumnsAccessed)
	h = h.Int(int(n.JoinForm))
	for _, c := range n.LeftCols {
		h = c.AppendHash(h)
	}
	for _, c := range n.RightCols {
		h = c.AppendHash(h)
	}
	for _, a := range n.AggFuncs {
		h = h.Int(int(a))
	}
	for _, c := range n.AggCols {
		h = c.AppendHash(h)
	}
	for _, c := range n.GroupCols {
		h = c.AppendHash(h)
	}
	h = n.Pred.AppendHash(h) // nil-aware: a presence byte separates TRUE from any real predicate
	h = h.Int(n.Parallelism)
	h = h.Int(len(n.Children))
	for _, c := range n.Children {
		h = c.fingerprint(h)
	}
	return h
}

// MarshalJSON round-trips the plan through encoding/json.
func (p *Plan) MarshalJSON() ([]byte, error) {
	type alias Plan
	return json.Marshal((*alias)(p))
}

// UnmarshalJSON round-trips the plan through encoding/json.
func (p *Plan) UnmarshalJSON(data []byte) error {
	type alias Plan
	return json.Unmarshal(data, (*alias)(p))
}

// String renders the plan as an indented operator tree.
func (p *Plan) String() string {
	var sb strings.Builder
	if len(p.Knobs) > 0 {
		fmt.Fprintf(&sb, "-- knobs: %s\n", strings.Join(p.Knobs, ", "))
	}
	p.Root.render(&sb, 0)
	return sb.String()
}

func (n *Node) render(sb *strings.Builder, depth int) {
	if n == nil {
		return
	}
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Op.String())
	switch {
	case n.Op == OpTableScan:
		fmt.Fprintf(sb, "(%s parts=%d cols=%d)", n.Table, n.PartitionsRead, n.ColumnsAccessed)
	case n.Op.IsJoin():
		fmt.Fprintf(sb, "(%s on %v=%v)", n.JoinForm, refs(n.LeftCols), refs(n.RightCols))
	case n.Op.IsAggregate():
		fmt.Fprintf(sb, "(%v by %v)", n.AggFuncs, refs(n.GroupCols))
	case n.Pred != nil:
		fmt.Fprintf(sb, "(%s)", n.Pred)
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.render(sb, depth+1)
	}
}

func refs(cols []expr.ColumnRef) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// LogNorm returns log-min-max-normalized v: log(1+v) scaled into [0,1] given
// an upper bound maxV (values above saturate at 1). This is the numeric
// normalization the paper applies to partition and column counts.
func LogNorm(v, maxV float64) float64 {
	if v < 0 {
		v = 0
	}
	if maxV <= 0 {
		return 0
	}
	x := math.Log1p(v) / math.Log1p(maxV)
	if x > 1 {
		return 1
	}
	return x
}
