package plan

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"loam/internal/expr"
)

func samplePlan() *Plan {
	scanA := &Node{Op: OpTableScan, Table: "p.t1", PartitionsRead: 4, ColumnsAccessed: 3}
	scanB := &Node{Op: OpTableScan, Table: "p.t2", PartitionsRead: 1, ColumnsAccessed: 2}
	filter := &Node{
		Op:       OpFilter,
		Pred:     expr.Compare(expr.FuncEQ, expr.ColumnRef{Table: "p.t1", Column: "c"}, 5),
		Children: []*Node{scanA},
	}
	join := &Node{
		Op:        OpHashJoin,
		JoinForm:  JoinInner,
		LeftCols:  []expr.ColumnRef{{Table: "p.t1", Column: "c"}},
		RightCols: []expr.ColumnRef{{Table: "p.t2", Column: "d"}},
		Children: []*Node{
			{Op: OpExchange, Children: []*Node{filter}},
			{Op: OpExchange, Children: []*Node{scanB}},
		},
	}
	agg := &Node{
		Op:        OpHashAggregate,
		AggFuncs:  []AggFunc{AggSum},
		AggCols:   []expr.ColumnRef{{Table: "p.t1", Column: "c"}},
		GroupCols: []expr.ColumnRef{{Table: "p.t2", Column: "d"}},
		Children:  []*Node{join},
	}
	return &Plan{Root: &Node{Op: OpSelect, Children: []*Node{agg}}}
}

// TestFingerprintZeroAlloc guards the serving-path contract: the predictor
// fingerprints every candidate plan on every cached SelectPlan, so the
// structural hash must not allocate (no stdlib hash writer, no intermediate
// column/predicate strings).
func TestFingerprintZeroAlloc(t *testing.T) {
	p := samplePlan()
	want := p.Root.Fingerprint()
	allocs := testing.AllocsPerRun(100, func() {
		if p.Root.Fingerprint() != want {
			t.Fatal("fingerprint not stable")
		}
	})
	if allocs != 0 {
		t.Fatalf("Fingerprint allocated %.1f times per call, want 0", allocs)
	}
}

func TestCloneDeep(t *testing.T) {
	p := samplePlan()
	c := p.Clone()
	if c.Root.Fingerprint() != p.Root.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Mutate the clone; the original must be unaffected.
	c.Root.Children[0].GroupCols[0].Column = "zzz"
	c.Root.Children[0].Children[0].Children[0].Children[0].Pred.Args[0] = 99
	if c.Root.Fingerprint() == p.Root.Fingerprint() {
		t.Fatal("mutation should change fingerprint")
	}
	if p.Root.Children[0].GroupCols[0].Column == "zzz" {
		t.Fatal("clone shares GroupCols")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := samplePlan().Root.Fingerprint()
	mutations := []func(p *Plan){
		func(p *Plan) { p.Root.Children[0].Op = OpSortAggregate },
		func(p *Plan) { p.Root.Children[0].Children[0].JoinForm = JoinLeft },
		func(p *Plan) { findScan(p.Root, "p.t1").PartitionsRead = 2 },
		func(p *Plan) { findScan(p.Root, "p.t2").Table = "p.t9" },
		func(p *Plan) { p.Root.Children[0].AggFuncs[0] = AggMax },
	}
	for i, mut := range mutations {
		p := samplePlan()
		mut(p)
		if p.Root.Fingerprint() == base {
			t.Fatalf("mutation %d did not change fingerprint", i)
		}
	}
}

func findScan(n *Node, table string) *Node {
	var out *Node
	n.Walk(func(m *Node) {
		if m.Op == OpTableScan && m.Table == table {
			out = m
		}
	})
	return out
}

func TestSizeDepthTables(t *testing.T) {
	p := samplePlan()
	if got := p.Root.Size(); got != 8 {
		t.Fatalf("size %d", got)
	}
	if got := p.Root.Depth(); got != 6 {
		t.Fatalf("depth %d", got)
	}
	tables := p.Root.Tables()
	if len(tables) != 2 || tables[0] != "p.t1" || tables[1] != "p.t2" {
		t.Fatalf("tables %v", tables)
	}
}

func TestCanonicalizeBinary(t *testing.T) {
	union := &Node{Op: OpUnion, Children: []*Node{
		{Op: OpTableScan, Table: "a"},
		{Op: OpTableScan, Table: "b"},
		{Op: OpTableScan, Table: "c"},
		{Op: OpTableScan, Table: "d"},
	}}
	canon := union.Canonicalize()
	canon.Walk(func(n *Node) {
		if len(n.Children) > 2 {
			t.Fatalf("node %v has %d children after canonicalize", n.Op, len(n.Children))
		}
	})
	// All four scans survive.
	if got := len(canon.Tables()); got != 4 {
		t.Fatalf("tables after canonicalize: %d", got)
	}
	// Original untouched.
	if len(union.Children) != 4 {
		t.Fatal("canonicalize mutated the original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	p.Knobs = []string{"flag:mergeJoin"}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root.Fingerprint() != p.Root.Fingerprint() {
		t.Fatal("round-trip changed fingerprint")
	}
	if len(back.Knobs) != 1 || back.Knobs[0] != "flag:mergeJoin" {
		t.Fatalf("knobs lost: %v", back.Knobs)
	}
}

func TestIsDefault(t *testing.T) {
	p := samplePlan()
	if !p.IsDefault() {
		t.Fatal("no-knob plan should be default")
	}
	p.Knobs = []string{"flag:dopHigh"}
	if p.IsDefault() {
		t.Fatal("knobbed plan should not be default")
	}
}

func TestStringRendering(t *testing.T) {
	s := samplePlan().String()
	for _, want := range []string{"Select", "HashAggregate", "HashJoin", "TableScan(p.t1", "Exchange"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q in:\n%s", want, s)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpHashJoin.IsJoin() || OpTableScan.IsJoin() {
		t.Fatal("IsJoin wrong")
	}
	if !OpHashAggregate.IsAggregate() || OpSort.IsAggregate() {
		t.Fatal("IsAggregate wrong")
	}
	if !OpExchange.IsExchange() || !OpBroadcastExchange.IsExchange() || OpSpool.IsExchange() {
		t.Fatal("IsExchange wrong")
	}
	if !OpFilter.IsFilterLike() || !OpCalc.IsFilterLike() || OpProject.IsFilterLike() {
		t.Fatal("IsFilterLike wrong")
	}
}

func TestOpNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for op := OpType(1); int(op) <= NumOpTypes; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "Op(") {
			t.Fatalf("operator %d unnamed", op)
		}
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestLogNormBounds(t *testing.T) {
	if err := quick.Check(func(vRaw, maxRaw uint32) bool {
		v := float64(vRaw % 100000)
		maxV := float64(maxRaw%100000) + 1
		x := LogNorm(v, maxV)
		return x >= 0 && x <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
	if LogNorm(-5, 10) != 0 {
		t.Fatal("negative input should clamp to 0")
	}
	if LogNorm(10, 10) != 1 {
		t.Fatal("v == max should be 1")
	}
	if LogNorm(5, 0) != 0 {
		t.Fatal("max 0 should return 0")
	}
}

func TestWalkPreorder(t *testing.T) {
	p := samplePlan()
	var ops []OpType
	p.Root.Walk(func(n *Node) { ops = append(ops, n.Op) })
	if ops[0] != OpSelect || ops[1] != OpHashAggregate {
		t.Fatalf("walk order %v", ops)
	}
	if len(ops) != p.Root.Size() {
		t.Fatalf("walk visited %d of %d", len(ops), p.Root.Size())
	}
}
