// Package plan defines physical query plans: trees whose nodes are data
// operators (table scanning, joining, aggregation, ...), matching the plan
// representation LOAM consumes for both execution and encoding.
package plan

import "fmt"

// OpType identifies a physical operator. The simulator supports the 30
// operator types the paper cites for MaxCompute; the encoder one-hot encodes
// this value.
type OpType int

// Physical operator types.
const (
	OpTableScan OpType = iota + 1
	OpFilter
	OpCalc // combined filter + projection
	OpProject
	OpHashJoin
	OpMergeJoin
	OpNestedLoopJoin
	OpBroadcastJoin
	OpSemiJoin
	OpAntiJoin
	OpHashAggregate
	OpSortAggregate
	OpPartialAggregate
	OpFinalAggregate
	OpDistinct
	OpSort
	OpLocalSort
	OpTopN
	OpLimit
	OpExchange // data reshuffle across machines: stage boundary
	OpBroadcastExchange
	OpSpool // materialize-and-reuse buffer
	OpLazySpool
	OpUnion
	OpWindow
	OpExpand
	OpValues
	OpSample
	OpSelect // final result projection
	OpSink   // result writer
)

// NumOpTypes is the size of the operator one-hot encoding.
const NumOpTypes = int(OpSink)

var opNames = [...]string{
	OpTableScan:         "TableScan",
	OpFilter:            "Filter",
	OpCalc:              "Calc",
	OpProject:           "Project",
	OpHashJoin:          "HashJoin",
	OpMergeJoin:         "MergeJoin",
	OpNestedLoopJoin:    "NestedLoopJoin",
	OpBroadcastJoin:     "BroadcastJoin",
	OpSemiJoin:          "SemiJoin",
	OpAntiJoin:          "AntiJoin",
	OpHashAggregate:     "HashAggregate",
	OpSortAggregate:     "SortAggregate",
	OpPartialAggregate:  "PartialAggregate",
	OpFinalAggregate:    "FinalAggregate",
	OpDistinct:          "Distinct",
	OpSort:              "Sort",
	OpLocalSort:         "LocalSort",
	OpTopN:              "TopN",
	OpLimit:             "Limit",
	OpExchange:          "Exchange",
	OpBroadcastExchange: "BroadcastExchange",
	OpSpool:             "Spool",
	OpLazySpool:         "LazySpool",
	OpUnion:             "Union",
	OpWindow:            "Window",
	OpExpand:            "Expand",
	OpValues:            "Values",
	OpSample:            "Sample",
	OpSelect:            "Select",
	OpSink:              "Sink",
}

// String returns the operator's name.
func (o OpType) String() string {
	if o >= 1 && int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsJoin reports whether the operator combines two inputs on a join
// condition.
func (o OpType) IsJoin() bool {
	switch o {
	case OpHashJoin, OpMergeJoin, OpNestedLoopJoin, OpBroadcastJoin, OpSemiJoin, OpAntiJoin:
		return true
	default:
		return false
	}
}

// IsAggregate reports whether the operator groups and aggregates its input.
func (o OpType) IsAggregate() bool {
	switch o {
	case OpHashAggregate, OpSortAggregate, OpPartialAggregate, OpFinalAggregate, OpDistinct:
		return true
	default:
		return false
	}
}

// IsExchange reports whether the operator reshuffles data across machines
// and therefore starts a new stage below it.
func (o OpType) IsExchange() bool {
	return o == OpExchange || o == OpBroadcastExchange
}

// IsFilterLike reports whether the operator applies a predicate.
func (o OpType) IsFilterLike() bool {
	return o == OpFilter || o == OpCalc
}

// JoinForm is the logical form of a join.
type JoinForm int

// Join forms, one-hot encoded by the plan vectorizer.
const (
	JoinInner JoinForm = iota + 1
	JoinLeft
	JoinRight
	JoinFull
	JoinSemi
	JoinAnti
)

// NumJoinForms is the size of the join-form one-hot encoding.
const NumJoinForms = int(JoinAnti)

var joinFormNames = [...]string{
	JoinInner: "inner",
	JoinLeft:  "left",
	JoinRight: "right",
	JoinFull:  "full",
	JoinSemi:  "semi",
	JoinAnti:  "anti",
}

// String returns the join form's name.
func (f JoinForm) String() string {
	if f >= 1 && int(f) < len(joinFormNames) {
		return joinFormNames[f]
	}
	return fmt.Sprintf("JoinForm(%d)", int(f))
}

// AggFunc is an aggregation function.
type AggFunc int

// Aggregation functions, one-hot encoded by the plan vectorizer.
const (
	AggSum AggFunc = iota + 1
	AggCount
	AggAvg
	AggMin
	AggMax
	AggCountDistinct
)

// NumAggFuncs is the size of the aggregation-function one-hot encoding.
const NumAggFuncs = int(AggCountDistinct)

var aggNames = [...]string{
	AggSum:           "SUM",
	AggCount:         "COUNT",
	AggAvg:           "AVG",
	AggMin:           "MIN",
	AggMax:           "MAX",
	AggCountDistinct: "COUNT_DISTINCT",
}

// String returns the aggregation function's name.
func (a AggFunc) String() string {
	if a >= 1 && int(a) < len(aggNames) {
		return aggNames[a]
	}
	return fmt.Sprintf("AggFunc(%d)", int(a))
}
