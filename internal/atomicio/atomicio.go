// Package atomicio is the repository's one sanctioned write primitive: every
// byte the serving stack persists — model checkpoints, manifests, feedback
// journal segments, fleet grant tables, benchmark artifacts — flows through
// this package (loam-vet's iodiscipline analyzer confines the raw os write
// calls here). It provides exactly two mechanisms, and no policy:
//
//   - Atomic whole-file replacement. FS.WriteFile writes to a temp file in
//     the destination directory, fsyncs it, renames it over the target, and
//     fsyncs the directory. A reader (or a post-crash restart) sees either
//     the old contents or the new contents, never a prefix of the new.
//
//   - Checksummed frames. A frame is [8-byte big-endian payload length]
//     [8-byte big-endian FNV-64a of the payload][payload]. Frames make both
//     torn tails (a crash mid-append) and silent bit rot detectable on read:
//     ScanFrames separates the clean prefix of a journal from its torn tail,
//     and DecodeFrame distinguishes truncation from checksum mismatch.
//
// The FS carries an optional fault hook so the durability layer's kill-point
// chaos harness (internal/faultinject, loam-bench -run recover) can crash a
// run at any write point with a deterministically torn, pending, or
// bit-flipped artifact on disk. A crash outcome panics with *Crash and
// permanently deadens the FS — a dead process writes nothing more — which is
// exactly the state a kill -9 leaves behind. A production FS (NewFS(nil) or
// the package Default) never panics and adds no overhead beyond the fsyncs.
package atomicio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Frame layout: 8-byte length, 8-byte FNV-64a checksum, payload.
const frameHeaderLen = 16

// maxFramePayload bounds a frame declared length so a corrupt header cannot
// drive a multi-gigabyte allocation on read.
const maxFramePayload = 1 << 30

// Sentinel errors for frame decoding. Both wrap ErrCorruptFrame, so callers
// that only care about "this data is not trustworthy" match once with
// errors.Is(err, ErrCorruptFrame) while integrity tooling can still tell a
// short read from bit rot.
var (
	// ErrCorruptFrame is the root sentinel: the bytes do not decode as the
	// checksummed frame they claim to be.
	ErrCorruptFrame = errors.New("atomicio: corrupt frame")
	// ErrTruncatedFrame reports a frame cut short — fewer bytes than the
	// header, or than the header's declared payload length, promise.
	ErrTruncatedFrame = fmt.Errorf("%w: truncated", ErrCorruptFrame)
	// ErrChecksum reports a complete frame whose payload hashes to a
	// different FNV-64a than the header recorded — silent corruption.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
)

// Checksum returns the FNV-64a hash of data — the same hash frames embed,
// exported so manifests can record whole-file checksums for fsck.
func Checksum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// AppendFrame appends one encoded frame carrying payload to dst and returns
// the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], Checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeFrame returns payload encoded as a single frame.
func EncodeFrame(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
}

// DecodeFrame decodes the first frame in data, returning its payload and the
// remaining bytes. A short buffer returns ErrTruncatedFrame; a payload that
// fails its checksum returns ErrChecksum.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d header bytes of %d", ErrTruncatedFrame, len(data), frameHeaderLen)
	}
	n := binary.BigEndian.Uint64(data[0:8])
	sum := binary.BigEndian.Uint64(data[8:16])
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptFrame, n)
	}
	body := data[frameHeaderLen:]
	if uint64(len(body)) < n {
		return nil, nil, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncatedFrame, len(body), n)
	}
	payload = body[:n]
	if Checksum(payload) != sum {
		return nil, nil, ErrChecksum
	}
	return payload, body[n:], nil
}

// ScanFrames walks data frame by frame, returning every cleanly decoded
// payload, the byte length of that clean prefix, and the error that stopped
// the scan (nil when data is exhausted exactly). A torn tail — the partial
// frame a crash mid-append leaves — comes back as the frames before it,
// clean set to where the tear starts, and tailErr reporting why. Payloads
// alias data; copy them if data is reused.
func ScanFrames(data []byte) (frames [][]byte, clean int, tailErr error) {
	rest := data
	for len(rest) > 0 {
		payload, next, err := DecodeFrame(rest)
		if err != nil {
			return frames, clean, err
		}
		frames = append(frames, payload)
		clean += frameHeaderLen + len(payload)
		rest = next
	}
	return frames, clean, nil
}

// Op classifies a write operation for the fault hook.
type Op int

const (
	// OpWriteFile is an atomic whole-file replacement.
	OpWriteFile Op = iota
	// OpAppend is one frame appended to an open journal segment.
	OpAppend
	// OpRemove is a file deletion (checkpoint GC, segment retirement).
	OpRemove
	// OpTruncate is a tail truncation (torn-tail repair on journal open).
	OpTruncate
)

// String renders the op as its stable label.
func (o Op) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return "write"
	}
}

// Outcome is a fault hook's decision for one write operation.
type Outcome int

const (
	// Proceed performs the operation normally.
	Proceed Outcome = iota
	// CrashBefore kills the process before any byte reaches disk: the
	// operation leaves no trace.
	CrashBefore
	// CrashTorn kills the process mid-write: a prefix of the bytes lands
	// (in the temp file for OpWriteFile, at the segment tail for OpAppend)
	// and is never synced or renamed.
	CrashTorn
	// CrashAfterTemp kills the process after the temp file is fully written
	// and synced but before the rename — the partial-rename state. For
	// OpAppend it behaves as a crash after a complete, synced append.
	CrashAfterTemp
	// BitFlip completes the operation but flips one bit in the written
	// bytes — silent media corruption the checksums must catch on read. It
	// does not kill the process.
	BitFlip
)

// Decision is a fault hook's full answer: the outcome plus its parameters.
type Decision struct {
	Outcome Outcome
	// KeepBytes is how many payload bytes a CrashTorn write lands before
	// dying (clamped to the payload; negative keeps half).
	KeepBytes int
	// FlipBit is the bit index a BitFlip corrupts (modulo the payload size).
	FlipBit int
}

// Hook decides the fate of each write operation. Implementations must be
// deterministic functions of their own state — the chaos harness replays
// same-seed runs and asserts byte-identical trajectories.
type Hook interface {
	Decide(op Op, path string) Decision
}

// Crash is the panic value a crash outcome raises: the simulated kill point.
// The chaos harness recovers it at the top of its serve loop; nothing else
// should. After a Crash the FS is dead — every later operation re-panics
// with the same value, the way a killed process performs no further writes.
type Crash struct {
	Op   Op
	Path string
}

// Error renders the kill point; *Crash satisfies error so recover sites can
// type-switch or errors.As against it.
func (c *Crash) Error() string {
	return fmt.Sprintf("atomicio: injected crash at %s %s", c.Op, filepath.Base(c.Path))
}

// FS performs the sanctioned writes, optionally under a fault hook. The zero
// value is not usable; call NewFS. FS is safe for concurrent use: the hook's
// own determinism contract is the only ordering assumption.
type FS struct {
	hook Hook
	dead atomic.Pointer[Crash]
}

// NewFS returns an FS; hook may be nil for production use.
func NewFS(hook Hook) *FS { return &FS{hook: hook} }

// Default is the production FS: no fault hook, never panics.
var Default = NewFS(nil)

// decide consults the hook and enforces the dead-after-crash rule.
func (fs *FS) decide(op Op, path string) Decision {
	if c := fs.dead.Load(); c != nil {
		panic(c)
	}
	if fs.hook == nil {
		return Decision{}
	}
	return fs.hook.Decide(op, path)
}

// crash marks the FS dead and raises the kill point.
func (fs *FS) crash(op Op, path string) {
	c := &Crash{Op: op, Path: path}
	fs.dead.CompareAndSwap(nil, c)
	panic(fs.dead.Load())
}

// keep resolves a CrashTorn decision's kept-byte count against a payload.
func keep(d Decision, n int) int {
	k := d.KeepBytes
	if k < 0 {
		k = n / 2
	}
	if k > n {
		k = n
	}
	return k
}

// flip flips the decision's bit in buf (no-op on an empty buffer).
func flip(d Decision, buf []byte) {
	if len(buf) == 0 {
		return
	}
	bit := d.FlipBit % (len(buf) * 8)
	if bit < 0 {
		bit += len(buf) * 8
	}
	buf[bit/8] ^= 1 << (bit % 8)
}

// WriteFile atomically replaces path with data: temp file in the same
// directory, fsync, rename, directory fsync. On any error the target is
// untouched (a stray temp file may remain; recovery ignores *.tmp).
func (fs *FS) WriteFile(path string, data []byte) error {
	d := fs.decide(OpWriteFile, path)
	switch d.Outcome {
	case CrashBefore:
		fs.crash(OpWriteFile, path)
	case BitFlip:
		data = append([]byte(nil), data...)
		flip(d, data)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return pathErr("create", tmp, err)
	}
	if d.Outcome == CrashTorn {
		f.Write(data[:keep(d, len(data))])
		f.Close()
		fs.crash(OpWriteFile, path)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return pathErr("write", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return pathErr("sync", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return pathErr("close", tmp, err)
	}
	if d.Outcome == CrashAfterTemp {
		fs.crash(OpWriteFile, path)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return pathErr("rename", tmp, err)
	}
	return syncDir(filepath.Dir(path))
}

// Remove deletes path (checkpoint GC, retired journal segments). A missing
// file is not an error — removal is idempotent across crash/restart.
func (fs *FS) Remove(path string) error {
	d := fs.decide(OpRemove, path)
	if d.Outcome == CrashBefore || d.Outcome == CrashTorn {
		fs.crash(OpRemove, path)
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return pathErr("remove", path, err)
	}
	if d.Outcome == CrashAfterTemp {
		fs.crash(OpRemove, path)
	}
	return nil
}

// Truncate cuts path to n bytes — torn-tail repair on journal open.
func (fs *FS) Truncate(path string, n int64) error {
	d := fs.decide(OpTruncate, path)
	if d.Outcome == CrashBefore || d.Outcome == CrashTorn {
		fs.crash(OpTruncate, path)
	}
	if err := os.Truncate(path, n); err != nil {
		return pathErr("truncate", path, err)
	}
	if d.Outcome == CrashAfterTemp {
		fs.crash(OpTruncate, path)
	}
	return nil
}

// pathErr wraps a file operation failure with the package prefix; keeping
// the one fmt.Errorf here (instead of at each call site) also keeps the
// errwrap double-prefix contract happy when the failing callee shares a
// name with an FS method.
func pathErr(verb, path string, err error) error {
	return fmt.Errorf("atomicio: %s %s: %w", verb, path, err)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return pathErr("open dir", dir, err)
	}
	defer df.Close()
	// Some filesystems reject directory fsync; the rename itself is still
	// atomic there, so degrade silently rather than failing the write.
	df.Sync()
	return nil
}

// Appender appends checksummed frames to one journal segment, fsyncing each
// append so an acknowledged record survives a crash. Not safe for concurrent
// use; the journal serializes appends.
type Appender struct {
	fs   *FS
	f    *os.File
	path string
	size int64
}

// OpenAppend opens (creating if absent) path for frame appends at its
// current end.
func (fs *FS) OpenAppend(path string) (*Appender, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, pathErr("open append", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, pathErr("stat", path, err)
	}
	return &Appender{fs: fs, f: f, path: path, size: st.Size()}, nil
}

// Size returns the segment's current byte length (clean appends only).
func (a *Appender) Size() int64 { return a.size }

// Append writes payload as one frame and fsyncs. A torn crash lands a prefix
// of the frame — the torn tail ScanFrames truncates on the next open.
func (a *Appender) Append(payload []byte) error {
	d := a.fs.decide(OpAppend, a.path)
	switch d.Outcome {
	case CrashBefore:
		a.fs.crash(OpAppend, a.path)
	}
	frame := EncodeFrame(payload)
	if d.Outcome == BitFlip {
		flip(d, frame)
	}
	if d.Outcome == CrashTorn {
		a.f.Write(frame[:keep(d, len(frame))])
		a.f.Close()
		a.fs.crash(OpAppend, a.path)
	}
	if _, err := a.f.Write(frame); err != nil {
		return pathErr("append", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return pathErr("sync", a.path, err)
	}
	a.size += int64(len(frame))
	if d.Outcome == CrashAfterTemp {
		a.fs.crash(OpAppend, a.path)
	}
	return nil
}

// Close closes the segment file.
func (a *Appender) Close() error {
	if err := a.f.Close(); err != nil {
		return pathErr("close", a.path, err)
	}
	return nil
}
