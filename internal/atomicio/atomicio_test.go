package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	frames, clean, tailErr := ScanFrames(buf)
	if tailErr != nil {
		t.Fatalf("ScanFrames tailErr = %v", tailErr)
	}
	if clean != len(buf) {
		t.Fatalf("clean = %d, want %d", clean, len(buf))
	}
	if len(frames) != len(payloads) {
		t.Fatalf("got %d frames, want %d", len(frames), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(frames[i], p) {
			t.Fatalf("frame %d = %q, want %q", i, frames[i], p)
		}
	}
}

func TestDecodeFrameTruncation(t *testing.T) {
	frame := EncodeFrame([]byte("payload-bytes"))
	// Truncation at every byte boundary short of the full frame must
	// report ErrTruncatedFrame (and therefore ErrCorruptFrame).
	for n := 0; n < len(frame); n++ {
		_, _, err := DecodeFrame(frame[:n])
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("len %d: err = %v, want ErrTruncatedFrame", n, err)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("len %d: err = %v, want ErrCorruptFrame", n, err)
		}
	}
	if _, _, err := DecodeFrame(frame); err != nil {
		t.Fatalf("full frame: err = %v", err)
	}
}

func TestDecodeFrameBitFlip(t *testing.T) {
	frame := EncodeFrame([]byte("stable payload"))
	for bit := 0; bit < len(frame)*8; bit += 7 {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		_, _, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("bit %d: flip went undetected", bit)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("bit %d: err = %v, want ErrCorruptFrame", bit, err)
		}
	}
}

func TestScanFramesTornTail(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("first"))
	buf = AppendFrame(buf, []byte("second"))
	clean := len(buf)
	torn := append(buf, EncodeFrame([]byte("third"))[:9]...)

	frames, gotClean, tailErr := ScanFrames(torn)
	if len(frames) != 2 || gotClean != clean {
		t.Fatalf("frames=%d clean=%d, want 2 clean=%d", len(frames), gotClean, clean)
	}
	if !errors.Is(tailErr, ErrTruncatedFrame) {
		t.Fatalf("tailErr = %v, want ErrTruncatedFrame", tailErr)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	fs := NewFS(nil)
	if err := fs.WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("contents = %q, want v2", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// scriptedHook returns a fixed decision for the Nth matching op.
type scriptedHook struct {
	op       Op
	fireAt   int
	decision Decision
	seen     int
}

func (h *scriptedHook) Decide(op Op, path string) Decision {
	if op != h.op {
		return Decision{}
	}
	h.seen++
	if h.seen == h.fireAt {
		return h.decision
	}
	return Decision{}
}

// mustCrash runs fn and asserts it panics with *Crash at the given op.
func mustCrash(t *testing.T, wantOp Op, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		c, ok := r.(*Crash)
		if !ok {
			t.Fatalf("recover() = %v, want *Crash", r)
		}
		if c.Op != wantOp {
			t.Fatalf("Crash.Op = %v, want %v", c.Op, wantOp)
		}
	}()
	fn()
	t.Fatal("fn returned without crashing")
}

func TestWriteFileCrashBefore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	fs := NewFS(nil)
	if err := fs.WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	fs = NewFS(&scriptedHook{op: OpWriteFile, fireAt: 1, decision: Decision{Outcome: CrashBefore}})
	mustCrash(t, OpWriteFile, func() { fs.WriteFile(path, []byte("new")) })
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("contents = %q, want old", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("CrashBefore left a temp file")
	}
}

func TestWriteFileCrashTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	prod := NewFS(nil)
	if err := prod.WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(&scriptedHook{op: OpWriteFile, fireAt: 1,
		decision: Decision{Outcome: CrashTorn, KeepBytes: 2}})
	mustCrash(t, OpWriteFile, func() { fs.WriteFile(path, []byte("new-contents")) })
	// Target untouched; torn bytes live only in the temp file.
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("contents = %q, want old", got)
	}
	tmp, err := os.ReadFile(path + ".tmp")
	if err != nil || string(tmp) != "ne" {
		t.Fatalf("temp = %q err=%v, want torn prefix \"ne\"", tmp, err)
	}
	// A later WriteFile over the same path (post-restart) wins.
	if err := prod.WriteFile(path, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "recovered" {
		t.Fatalf("contents = %q, want recovered", got)
	}
}

func TestWriteFileCrashAfterTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	prod := NewFS(nil)
	if err := prod.WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(&scriptedHook{op: OpWriteFile, fireAt: 1, decision: Decision{Outcome: CrashAfterTemp}})
	mustCrash(t, OpWriteFile, func() { fs.WriteFile(path, []byte("pending")) })
	// The partial-rename state: temp complete, target still old.
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("contents = %q, want old", got)
	}
	tmp, err := os.ReadFile(path + ".tmp")
	if err != nil || string(tmp) != "pending" {
		t.Fatalf("temp = %q err=%v, want complete \"pending\"", tmp, err)
	}
}

func TestWriteFileBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	payload := []byte("sensitive frame payload")
	frame := EncodeFrame(payload)
	fs := NewFS(&scriptedHook{op: OpWriteFile, fireAt: 1,
		decision: Decision{Outcome: BitFlip, FlipBit: 17 + frameHeaderLen*8}})
	if err := fs.WriteFile(path, frame); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(data, frame) {
		t.Fatal("BitFlip wrote unmodified data")
	}
	if _, _, err := DecodeFrame(data); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("DecodeFrame(flipped) = %v, want ErrCorruptFrame", err)
	}
}

func TestDeadFSStaysDead(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(&scriptedHook{op: OpWriteFile, fireAt: 1, decision: Decision{Outcome: CrashBefore}})
	mustCrash(t, OpWriteFile, func() { fs.WriteFile(filepath.Join(dir, "a"), []byte("x")) })
	// Every later op on the same FS re-raises the original crash.
	mustCrash(t, OpWriteFile, func() { fs.WriteFile(filepath.Join(dir, "b"), []byte("y")) })
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatal("dead FS wrote a file")
	}
}

func TestAppenderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	fs := NewFS(nil)
	a, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []string{"r1", "record-two", "r3"}
	for _, r := range recs {
		if err := a.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and append more — sizes and frames must line up.
	a, err = fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("r4")); err != nil {
		t.Fatal(err)
	}
	a.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, clean, tailErr := ScanFrames(data)
	if tailErr != nil || clean != len(data) {
		t.Fatalf("scan: clean=%d/%d tailErr=%v", clean, len(data), tailErr)
	}
	want := append(recs, "r4")
	if len(frames) != len(want) {
		t.Fatalf("got %d frames, want %d", len(frames), len(want))
	}
	for i, w := range want {
		if string(frames[i]) != w {
			t.Fatalf("frame %d = %q, want %q", i, frames[i], w)
		}
	}
}

func TestAppenderCrashTornLeavesRecoverableTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	prod := NewFS(nil)
	a, err := prod.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	a.Close()

	fs := NewFS(&scriptedHook{op: OpAppend, fireAt: 1,
		decision: Decision{Outcome: CrashTorn, KeepBytes: -1}})
	a, err = fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	mustCrash(t, OpAppend, func() { a.Append([]byte("torn-record")) })

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, clean, tailErr := ScanFrames(data)
	if len(frames) != 1 || string(frames[0]) != "committed" {
		t.Fatalf("frames = %q, want [committed]", frames)
	}
	if !errors.Is(tailErr, ErrTruncatedFrame) {
		t.Fatalf("tailErr = %v, want ErrTruncatedFrame", tailErr)
	}
	// Torn-tail repair: truncate to the clean prefix, reopen, append again.
	if err := prod.Truncate(path, int64(clean)); err != nil {
		t.Fatal(err)
	}
	a, err = prod.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	data, _ = os.ReadFile(path)
	frames, _, tailErr = ScanFrames(data)
	if tailErr != nil || len(frames) != 2 || string(frames[1]) != "after-repair" {
		t.Fatalf("post-repair frames = %q tailErr=%v", frames, tailErr)
	}
}

func TestRemoveIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone")
	fs := NewFS(nil)
	if err := fs.WriteFile(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatalf("second Remove = %v, want nil", err)
	}
}
