package query

import (
	"testing"

	"loam/internal/expr"
	"loam/internal/plan"
)

func TestInputDefault(t *testing.T) {
	q := &Query{Inputs: map[string]*TableInput{}}
	in := q.Input("missing")
	if in.PartitionFrac != 1 || in.ColumnsAccessed != 1 {
		t.Fatalf("default input %+v", in)
	}
	q.Inputs["t"] = &TableInput{PartitionFrac: 0.5, ColumnsAccessed: 3}
	if got := q.Input("t"); got.PartitionFrac != 0.5 {
		t.Fatal("known input not returned")
	}
}

func TestFullPred(t *testing.T) {
	col := expr.ColumnRef{Table: "t", Column: "c"}
	in := &TableInput{
		Pred:     expr.Compare(expr.FuncEQ, col, 1),
		HardPred: expr.Compare(expr.FuncLike, col, 2),
	}
	full := in.FullPred()
	if full.Fn != expr.FuncAnd || len(full.Children) != 2 {
		t.Fatalf("full pred %v", full)
	}
	// Mutating the result must not touch the originals.
	full.Children[0].Args[0] = 99
	if in.Pred.Args[0] != 1 {
		t.Fatal("FullPred aliases Pred")
	}
	// Partial cases.
	onlySoft := &TableInput{Pred: expr.Compare(expr.FuncEQ, col, 1)}
	if onlySoft.FullPred().Fn != expr.FuncEQ {
		t.Fatal("single pred should unwrap")
	}
	if (&TableInput{}).FullPred() != nil {
		t.Fatal("empty pred should be nil")
	}
}

func TestJoinsOf(t *testing.T) {
	q := &Query{
		Tables: []string{"a", "b", "c"},
		Joins: []JoinEdge{
			{LeftTable: "a", RightTable: "b", Form: plan.JoinInner},
			{LeftTable: "b", RightTable: "c", Form: plan.JoinInner},
		},
	}
	if got := len(q.JoinsOf("b")); got != 2 {
		t.Fatalf("joins of b: %d", got)
	}
	if got := len(q.JoinsOf("a")); got != 1 {
		t.Fatalf("joins of a: %d", got)
	}
	if q.NumTables() != 3 {
		t.Fatal("num tables")
	}
}
