// Package query defines the logical query specification handed to the native
// optimizer: the tables involved, the equi-join graph, per-table predicates,
// and grouping/aggregation — the information a parsed-and-analyzed SQL
// statement would carry into plan optimization.
package query

import (
	"loam/internal/expr"
	"loam/internal/plan"
)

// JoinEdge is one equi-join between two tables.
type JoinEdge struct {
	LeftTable  string
	RightTable string
	LeftCol    expr.ColumnRef
	RightCol   expr.ColumnRef
	Form       plan.JoinForm
}

// AggSpec is one aggregation output.
type AggSpec struct {
	Fn  plan.AggFunc
	Col expr.ColumnRef
}

// TableInput describes one table's scan-time inputs.
type TableInput struct {
	// PartitionFrac is the fraction of partitions the query actually needs
	// (partition pruning opportunity); 1 means full scan.
	PartitionFrac float64
	// ColumnsAccessed is how many columns the query reads from the table.
	ColumnsAccessed int
	// Pred is the sargable table-local predicate, always applied at the scan
	// (nil = none).
	Pred *expr.Node
	// HardPred is the non-sargable part of the predicate (LIKE/IN trees)
	// that MaxCompute's default rules decline to push below joins without
	// statistics to justify the rewrite; the aggressive filter-pushdown flag
	// forces it to the scan (nil = none).
	HardPred *expr.Node
}

// FullPred returns the conjunction of the sargable and non-sargable parts.
func (in *TableInput) FullPred() *expr.Node {
	return expr.And(in.Pred.Clone(), in.HardPred.Clone())
}

// Query is one logical query instance.
type Query struct {
	ID         string
	TemplateID string
	Project    string
	Day        int
	// Tables in syntactic (FROM-clause) order; the optimizer falls back to
	// this order when statistics are missing.
	Tables []string
	Inputs map[string]*TableInput
	Joins  []JoinEdge
	// GroupBy and Aggs describe the final aggregation; both empty means a
	// plain select.
	GroupBy []expr.ColumnRef
	Aggs    []AggSpec
	// NoiseSigma is the template's intrinsic execution-cost variability,
	// passed through to the execution simulator.
	NoiseSigma float64
}

// Input returns the table input spec, or an empty default.
func (q *Query) Input(table string) *TableInput {
	if in, ok := q.Inputs[table]; ok {
		return in
	}
	return &TableInput{PartitionFrac: 1, ColumnsAccessed: 1}
}

// NumTables returns the number of base tables.
func (q *Query) NumTables() int { return len(q.Tables) }

// JoinsOf returns the join edges touching a table.
func (q *Query) JoinsOf(table string) []JoinEdge {
	var out []JoinEdge
	for _, j := range q.Joins {
		if j.LeftTable == table || j.RightTable == table {
			out = append(out, j)
		}
	}
	return out
}
