// Package selector implements LOAM's two-stage project selection (§6):
// a rule-based Filter that excludes projects posing training challenges
// (App. D.1, rules R1–R3), and a learned Ranker — an XGBoost regressor over
// project-agnostic default-plan features (App. D.2) — that prioritizes the
// remaining projects by estimated improvement space D(M_d).
package selector

import (
	"math"
	"sort"
	"sync"

	"loam/internal/encoding"
	"loam/internal/history"
	"loam/internal/plan"
	"loam/internal/warehouse"
	"loam/internal/xgb"
)

// FilterConfig holds the rule thresholds of App. D.1.
type FilterConfig struct {
	// MinQueriesPerDay is R1's N0: minimum average daily query volume.
	MinQueriesPerDay float64
	// MinIncRatio is R2's r: minimum day-over-day query growth ratio.
	MinIncRatio float64
	// MinStableRatio is R3's θ: minimum fraction of queries touching only
	// long-lived tables.
	MinStableRatio float64
	// StableLifespanDays is R3's n: the lifespan threshold for a table to
	// count as long-lived.
	StableLifespanDays int
}

// PaperFilterConfig returns the paper's production thresholds: N0 = 2000,
// r the minimum ratio with N0·r^30 ≥ 10000, θ = 0.2, n = 30.
func PaperFilterConfig() FilterConfig {
	return FilterConfig{
		MinQueriesPerDay:   2000,
		MinIncRatio:        math.Pow(10000.0/2000.0, 1.0/30.0),
		MinStableRatio:     0.2,
		StableLifespanDays: 30,
	}
}

// ScaledFilterConfig returns thresholds proportional to a simulated
// workload's scale: the rules keep their structure, only N0 shrinks.
func ScaledFilterConfig(minPerDay float64) FilterConfig {
	c := PaperFilterConfig()
	c.MinQueriesPerDay = minPerDay
	c.MinIncRatio = math.Pow(5, 1.0/30.0) * 0.92 // mildly tolerant of day noise
	return c
}

// WorkloadStats are the App.-D.1 metrics computed over a sampled workload.
type WorkloadStats struct {
	Days          int
	TotalQueries  int
	QueriesPerDay float64 // n_query
	IncRatio      float64 // query_inc_ratio
	StableRatio   float64 // stable_table_ratio
}

// ComputeStats derives the filter metrics from a project's sampled workload.
func ComputeStats(entries []history.Entry, p *warehouse.Project, stableLifespanDays int) WorkloadStats {
	s := WorkloadStats{TotalQueries: len(entries)}
	byDay := map[int]int{}
	stable := 0
	for _, e := range entries {
		byDay[e.Record.Day]++
		allStable := true
		for _, tb := range e.Query.Tables {
			t := p.Table(tb)
			if t == nil || t.LifespanDays <= stableLifespanDays {
				allStable = false
				break
			}
		}
		if allStable {
			stable++
		}
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	s.Days = len(days)
	if s.Days > 0 {
		s.QueriesPerDay = float64(s.TotalQueries) / float64(s.Days)
	}
	if s.Days > 1 {
		ratio := 0.0
		for i := 1; i < len(days); i++ {
			prev := byDay[days[i-1]]
			if prev > 0 {
				ratio += float64(byDay[days[i]]) / float64(prev)
			}
		}
		s.IncRatio = ratio / float64(len(days)-1)
	} else {
		s.IncRatio = 1
	}
	if s.TotalQueries > 0 {
		s.StableRatio = float64(stable) / float64(s.TotalQueries)
	}
	return s
}

// Pass evaluates rules R1–R3, returning whether the project passes and the
// names of any failed rules.
func (c FilterConfig) Pass(s WorkloadStats) (bool, []string) {
	var failed []string
	if s.QueriesPerDay < c.MinQueriesPerDay {
		failed = append(failed, "R1:n_query")
	}
	if s.IncRatio < c.MinIncRatio {
		failed = append(failed, "R2:query_inc_ratio")
	}
	if s.StableRatio < c.MinStableRatio {
		failed = append(failed, "R3:stable_table_ratio")
	}
	return len(failed) == 0, failed
}

// RankerSample is one (default-plan features, improvement space) training
// pair. Features come from encoding.RankerFeatures and are deliberately
// project-agnostic so the Ranker transfers across projects.
type RankerSample struct {
	Features    []float64
	Improvement float64 // D(M_d), relative to oracle cost
}

// Ranker estimates the improvement space of queries from their default
// plans.
type Ranker struct {
	model *xgb.Model
}

// RankerConfig returns the boosting configuration used for the Ranker — a
// deliberately lightweight model (§6).
func RankerConfig() xgb.Config {
	return xgb.Config{
		Trees:          40,
		MaxDepth:       4,
		LearningRate:   0.2,
		Lambda:         1,
		MinChildWeight: 1,
		Bins:           24,
	}
}

// TrainRanker fits the Ranker on samples drawn from multiple projects.
func TrainRanker(samples []RankerSample) *Ranker {
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = s.Features
		y[i] = s.Improvement
	}
	if len(x) == 0 {
		return &Ranker{}
	}
	return &Ranker{model: xgb.Train(RankerConfig(), x, y)}
}

// Estimate returns the predicted improvement space for one default plan's
// features.
func (r *Ranker) Estimate(features []float64) float64 {
	if r.model == nil {
		return 0
	}
	return r.model.Predict(features)
}

// ScoreWorkload averages the estimated improvement space across a sampled
// workload's default plans.
func (r *Ranker) ScoreWorkload(features [][]float64) float64 {
	if len(features) == 0 {
		return 0
	}
	total := 0.0
	for _, f := range features {
		total += r.Estimate(f)
	}
	return total / float64(len(features))
}

// Features builds the Ranker input for one default plan with its observed
// cost — a convenience wrapper over encoding.RankerFeatures.
func Features(p *plan.Plan, cost float64, rows func(string) float64) []float64 {
	return encoding.RankerFeatures(p, cost, rows)
}

// RankProjects orders project names by descending workload score.
func RankProjects(scores map[string]float64) []string {
	names := make([]string, 0, len(scores))
	for n := range scores {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if scores[names[i]] != scores[names[j]] {
			return scores[names[i]] > scores[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// TopN returns the first n names of a ranked list (fewer when the list is
// shorter) — the paper's deployment rule.
func TopN(ranked []string, n int) []string {
	if n > len(ranked) {
		n = len(ranked)
	}
	return append([]string(nil), ranked[:n]...)
}

// OnlineRanker accumulates (default-plan, improvement) pairs as more
// projects are deployed and evaluated, and periodically retrains the Ranker
// — the continuous-improvement loop of §6.
type OnlineRanker struct {
	mu      sync.Mutex
	samples []RankerSample
	ranker  *Ranker
	// RetrainEvery triggers a refit after this many new samples (default
	// 64).
	RetrainEvery int
	pending      int
}

// NewOnlineRanker builds an updating ranker, optionally seeded with initial
// samples.
func NewOnlineRanker(seed []RankerSample) *OnlineRanker {
	o := &OnlineRanker{RetrainEvery: 64}
	o.samples = append(o.samples, seed...)
	o.ranker = TrainRanker(o.samples)
	return o
}

// Add appends evaluation pairs; the model refits once enough new data
// accumulates.
func (o *OnlineRanker) Add(samples ...RankerSample) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.samples = append(o.samples, samples...)
	o.pending += len(samples)
	if o.pending >= o.RetrainEvery {
		o.ranker = TrainRanker(o.samples)
		o.pending = 0
	}
}

// Retrain forces an immediate refit.
func (o *OnlineRanker) Retrain() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ranker = TrainRanker(o.samples)
	o.pending = 0
}

// Estimate predicts the improvement space for one default plan's features.
func (o *OnlineRanker) Estimate(features []float64) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ranker.Estimate(features)
}

// SampleCount returns how many training pairs have accumulated.
func (o *OnlineRanker) SampleCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.samples)
}
