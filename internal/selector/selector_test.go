package selector

import (
	"math"
	"testing"

	"loam/internal/exec"
	"loam/internal/history"
	"loam/internal/plan"
	"loam/internal/query"
	"loam/internal/simrand"
	"loam/internal/warehouse"
)

func entryOn(day int, tables ...string) history.Entry {
	root := &plan.Node{Op: plan.OpSelect}
	for _, tb := range tables {
		root.Children = append(root.Children, &plan.Node{Op: plan.OpTableScan, Table: tb, PartitionsRead: 1})
	}
	return history.Entry{
		Query:  &query.Query{Day: day, Tables: tables},
		Record: &exec.Record{Day: day, Plan: &plan.Plan{Root: root}, CPUCost: 100},
	}
}

func projectWithLifespans(spans map[string]int) *warehouse.Project {
	p := &warehouse.Project{}
	for id, span := range spans {
		p.Tables = append(p.Tables, &warehouse.Table{ID: id, LifespanDays: span, Rows: 10})
	}
	return p
}

func TestComputeStatsMetrics(t *testing.T) {
	p := projectWithLifespans(map[string]int{"stable": 100, "temp": 5})
	var entries []history.Entry
	// Day 0: 2 queries; day 1: 4 queries (growth ratio 2).
	entries = append(entries, entryOn(0, "stable"), entryOn(0, "temp"))
	for i := 0; i < 4; i++ {
		entries = append(entries, entryOn(1, "stable"))
	}
	s := ComputeStats(entries, p, 30)
	if s.Days != 2 || s.TotalQueries != 6 {
		t.Fatalf("days %d total %d", s.Days, s.TotalQueries)
	}
	if s.QueriesPerDay != 3 {
		t.Fatalf("n_query %g", s.QueriesPerDay)
	}
	if s.IncRatio != 2 {
		t.Fatalf("inc ratio %g", s.IncRatio)
	}
	// 5 of 6 queries touch only the stable table.
	if math.Abs(s.StableRatio-5.0/6) > 1e-12 {
		t.Fatalf("stable ratio %g", s.StableRatio)
	}
}

func TestComputeStatsSingleDay(t *testing.T) {
	p := projectWithLifespans(map[string]int{"a": 100})
	s := ComputeStats([]history.Entry{entryOn(0, "a")}, p, 30)
	if s.IncRatio != 1 {
		t.Fatalf("single-day inc ratio %g", s.IncRatio)
	}
}

func TestFilterRules(t *testing.T) {
	cfg := FilterConfig{MinQueriesPerDay: 5, MinIncRatio: 0.9, MinStableRatio: 0.5, StableLifespanDays: 30}
	pass, failed := cfg.Pass(WorkloadStats{QueriesPerDay: 10, IncRatio: 1, StableRatio: 0.8})
	if !pass || len(failed) != 0 {
		t.Fatalf("should pass, failed: %v", failed)
	}
	_, failed = cfg.Pass(WorkloadStats{QueriesPerDay: 1, IncRatio: 0.5, StableRatio: 0.1})
	if len(failed) != 3 {
		t.Fatalf("should fail all rules, got %v", failed)
	}
	_, failed = cfg.Pass(WorkloadStats{QueriesPerDay: 10, IncRatio: 1, StableRatio: 0.1})
	if len(failed) != 1 || failed[0] != "R3:stable_table_ratio" {
		t.Fatalf("R3 failure expected, got %v", failed)
	}
}

func TestPaperFilterConfig(t *testing.T) {
	cfg := PaperFilterConfig()
	if cfg.MinQueriesPerDay != 2000 {
		t.Fatalf("N0 %g", cfg.MinQueriesPerDay)
	}
	// r satisfies N0 * r^30 >= 10000.
	if cfg.MinQueriesPerDay*math.Pow(cfg.MinIncRatio, 30) < 10_000-1 {
		t.Fatalf("r=%g too small", cfg.MinIncRatio)
	}
	if cfg.MinStableRatio != 0.2 || cfg.StableLifespanDays != 30 {
		t.Fatal("R3 thresholds wrong")
	}
}

func TestRankerLearnsMonotoneSignal(t *testing.T) {
	rng := simrand.New(7)
	var samples []RankerSample
	for i := 0; i < 400; i++ {
		f := make([]float64, 8)
		for j := range f {
			f[j] = rng.Uniform(0, 1)
		}
		samples = append(samples, RankerSample{Features: f, Improvement: 0.8 * f[2]})
	}
	r := TrainRanker(samples)
	lo := make([]float64, 8)
	hi := make([]float64, 8)
	for j := range lo {
		lo[j], hi[j] = 0.5, 0.5
	}
	lo[2], hi[2] = 0.1, 0.9
	if r.Estimate(hi) <= r.Estimate(lo) {
		t.Fatalf("ranker did not learn signal: %g vs %g", r.Estimate(hi), r.Estimate(lo))
	}
}

func TestRankerEmpty(t *testing.T) {
	r := TrainRanker(nil)
	if r.Estimate([]float64{1, 2}) != 0 {
		t.Fatal("empty ranker should return 0")
	}
	if r.ScoreWorkload(nil) != 0 {
		t.Fatal("empty workload score should be 0")
	}
}

func TestScoreWorkloadAverages(t *testing.T) {
	rng := simrand.New(8)
	var samples []RankerSample
	for i := 0; i < 200; i++ {
		f := []float64{rng.Uniform(0, 1)}
		samples = append(samples, RankerSample{Features: f, Improvement: f[0]})
	}
	r := TrainRanker(samples)
	feats := [][]float64{{0.2}, {0.8}}
	score := r.ScoreWorkload(feats)
	if math.Abs(score-(r.Estimate(feats[0])+r.Estimate(feats[1]))/2) > 1e-12 {
		t.Fatal("score is not the average")
	}
}

func TestRankProjectsOrdering(t *testing.T) {
	scores := map[string]float64{"a": 0.1, "b": 0.9, "c": 0.5}
	ranked := RankProjects(scores)
	if ranked[0] != "b" || ranked[1] != "c" || ranked[2] != "a" {
		t.Fatalf("ranked %v", ranked)
	}
	// Deterministic tie-breaking by name.
	ties := map[string]float64{"z": 1, "a": 1}
	r2 := RankProjects(ties)
	if r2[0] != "a" {
		t.Fatalf("tie break %v", r2)
	}
}

func TestTopN(t *testing.T) {
	ranked := []string{"a", "b", "c"}
	if got := TopN(ranked, 2); len(got) != 2 || got[0] != "a" {
		t.Fatalf("top2 %v", got)
	}
	if got := TopN(ranked, 10); len(got) != 3 {
		t.Fatalf("overlong topN %v", got)
	}
	// Copy semantics: mutating the result leaves the input alone.
	got := TopN(ranked, 3)
	got[0] = "x"
	if ranked[0] != "a" {
		t.Fatal("TopN aliases input")
	}
}

func TestFeaturesWrapper(t *testing.T) {
	p := &plan.Plan{Root: &plan.Node{Op: plan.OpTableScan, Table: "t", PartitionsRead: 1}}
	v := Features(p, 100, func(string) float64 { return 50 })
	if len(v) == 0 {
		t.Fatal("no features")
	}
}

func TestOnlineRankerRetrains(t *testing.T) {
	rng := simrand.New(9)
	mk := func(n int, slope float64) []RankerSample {
		out := make([]RankerSample, n)
		for i := range out {
			f := []float64{rng.Uniform(0, 1)}
			out[i] = RankerSample{Features: f, Improvement: slope * f[0]}
		}
		return out
	}
	o := NewOnlineRanker(mk(100, 1))
	if o.SampleCount() != 100 {
		t.Fatalf("seed count %d", o.SampleCount())
	}
	before := o.Estimate([]float64{0.9})

	// Feed contradicting data past the retrain threshold: the model must
	// move toward the new signal.
	o.RetrainEvery = 50
	o.Add(mk(400, -1)...)
	after := o.Estimate([]float64{0.9})
	if after >= before {
		t.Fatalf("online ranker did not adapt: %g -> %g", before, after)
	}
	if o.SampleCount() != 500 {
		t.Fatalf("sample count %d", o.SampleCount())
	}
}

func TestOnlineRankerForceRetrain(t *testing.T) {
	o := NewOnlineRanker(nil)
	o.RetrainEvery = 1000000 // never auto-refit
	rng := simrand.New(10)
	var samples []RankerSample
	for i := 0; i < 50; i++ {
		f := []float64{rng.Uniform(0, 1)}
		samples = append(samples, RankerSample{Features: f, Improvement: f[0]})
	}
	o.Add(samples...)
	if o.Estimate([]float64{0.9}) != 0 {
		t.Fatal("model refit before Retrain")
	}
	o.Retrain()
	if o.Estimate([]float64{0.9}) == 0 {
		t.Fatal("Retrain had no effect")
	}
}
