// Package simrand provides deterministic, seed-derivable random number
// generation for the simulator. Every stochastic component in the repository
// draws from a *RNG obtained either directly from a seed or derived from a
// parent stream by name, so that whole-system runs are reproducible from a
// single root seed.
package simrand

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// splitmix64 is a tiny, well-distributed PRNG used as a rand.Source64. It is
// implemented locally (rather than relying on math/rand's default source) so
// the stream is stable regardless of Go release.
type splitmix64 struct {
	state uint64
}

var _ rand.Source64 = (*splitmix64)(nil)

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *splitmix64) Seed(seed int64) {
	s.state = uint64(seed)
}

// RNG is a deterministic random number generator. It wraps math/rand.Rand
// over a locally implemented source and records its seed so substreams can be
// derived by name.
type RNG struct {
	seed uint64
	r    *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, r: rand.New(&splitmix64{state: seed})}
}

// Derive returns a new RNG whose seed is a deterministic function of the
// parent seed and the given name. Independent subsystems should each derive
// their own stream so that adding draws to one subsystem does not perturb
// another.
func (g *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], g.seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return New(h.Sum64())
}

// DeriveN derives a substream keyed by both a name and an index.
func (g *RNG) DeriveN(name string, n int) *RNG {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], g.seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(n))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return New(h.Sum64())
}

// Seed returns the seed the stream was created with.
func (g *RNG) Seed() uint64 { return g.seed }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform value in [0,n). n must be > 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Normal returns a normal variate with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma^2)); mu and sigma are the parameters of
// the underlying normal, not the moments of the log-normal itself.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Zipf returns a sampler over {0, ..., n-1} with Zipf exponent s > 1 is not
// required; s may be any value > 0. The implementation precomputes the CDF,
// which is fine for the catalog-sized domains used in the simulator.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler with exponent s over n ranks.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a rank in [0, N).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed sizes for tables.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}
