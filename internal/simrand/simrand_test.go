package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("alpha")
	b := root.Derive("beta")
	if a.Seed() == b.Seed() {
		t.Fatal("derived seeds equal")
	}
	// Deriving is insensitive to draws on the parent.
	root2 := New(7)
	root2.Float64()
	if root2.Derive("alpha").Seed() != a.Seed() {
		t.Fatal("derivation depends on parent draw position")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	root := New(9)
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		s := root.DeriveN("x", i).Seed()
		if seen[s] {
			t.Fatalf("duplicate derived seed at %d", i)
		}
		seen[s] = true
	}
}

func TestUniformBounds(t *testing.T) {
	rng := New(3)
	if err := quick.Check(func(loRaw, span uint16) bool {
		lo := float64(loRaw) / 100
		hi := lo + float64(span)/100 + 0.01
		v := rng.Uniform(lo, hi)
		return v >= lo && v < hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	rng := New(4)
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := New(5)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("mean %g", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("std %g", math.Sqrt(variance))
	}
}

func TestLogNormalPositiveAndMean(t *testing.T) {
	rng := New(6)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := rng.LogNormal(0, 0.5)
		if v <= 0 {
			t.Fatal("non-positive log-normal draw")
		}
		sum += v
	}
	want := math.Exp(0.5 * 0.5 / 2)
	if got := sum / float64(n); math.Abs(got-want) > 0.05 {
		t.Fatalf("mean %g, want %g", got, want)
	}
}

func TestBoolProbability(t *testing.T) {
	rng := New(7)
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if rng.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / float64(n); math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) rate %g", p)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	rng := New(8)
	for _, s := range []float64{0, 0.5, 1, 2} {
		z := NewZipf(rng, s, 50)
		total := 0.0
		for i := 0; i < z.N(); i++ {
			total += z.Prob(i)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("s=%g pmf sums to %g", s, total)
		}
	}
}

func TestZipfSkewOrdersMass(t *testing.T) {
	rng := New(9)
	z := NewZipf(rng, 1.2, 20)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("pmf not non-increasing at %d", i)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	rng := New(10)
	z := NewZipf(rng, 1.0, 9)
	for i := 0; i < 1000; i++ {
		if v := z.Draw(); v < 0 || v >= 9 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestZipfDrawMatchesPMF(t *testing.T) {
	rng := New(11)
	z := NewZipf(rng, 1.0, 5)
	counts := make([]int, 5)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-z.Prob(i)) > 0.01 {
			t.Fatalf("rank %d freq %g, pmf %g", i, got, z.Prob(i))
		}
	}
}

func TestParetoLowerBound(t *testing.T) {
	rng := New(12)
	for i := 0; i < 1000; i++ {
		if v := rng.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(13)
	p := rng.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}
