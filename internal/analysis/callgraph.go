package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the program-wide resolved call graph over non-test function
// declarations, the reusable index behind allocdiscipline, lockorder,
// ctxflow, and the typed inferencepurity migration.
//
// Resolution is two-tier:
//
//   - static: a call whose callee identifier resolves (types.Info.Uses) to a
//     *types.Func declared in this module gets a direct edge. Interface
//     method calls are resolved to every in-module named type that
//     implements the interface (types.Implements) and declares the method —
//     the "resolved" part of interface dispatch.
//   - name fallback: calls through stored function values, func-typed
//     fields, and anything else the checker cannot pin to a declaration fall
//     back to linking every in-module function sharing the callee's
//     syntactic name. Method and function *values* (references outside call
//     position) likewise link the referencing function to the referenced
//     declaration, so a method passed as a callback stays reachable.
//
// Both tiers over-approximate reachability — the safe direction for the
// contracts built on top (a function wrongly considered reachable produces
// at worst a spurious finding to review; one wrongly dropped hides a real
// violation).
type CallGraph struct {
	prog *Program
	// Nodes, sorted by file path then position — deterministic order.
	Nodes []*FuncNode

	byObj  map[*types.Func]*FuncNode
	byName map[string][]*FuncNode
}

// FuncNode is one function or method declaration.
type FuncNode struct {
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
	// Obj is the checker's object for the declaration; nil when the
	// declaring package failed to type-check.
	Obj *types.Func

	// Calls are the resolved call sites in body order (including bodies of
	// nested function literals, attributed to this declaration).
	Calls []*CallSite
	// edges are the deduplicated outgoing targets (calls + value refs).
	edges []*FuncNode
}

// Name returns the bare declared name.
func (n *FuncNode) Name() string { return n.Decl.Name.Name }

// ID renders "importpath.Name" or "importpath.(Recv).Name" for messages.
func (n *FuncNode) ID() string {
	if n.Obj != nil {
		if named := recvNamed(n.Obj); named != nil {
			return n.Pkg.ImportPath + ".(" + named.Obj().Name() + ")." + n.Name()
		}
	}
	return n.Pkg.ImportPath + "." + n.Name()
}

// CallSite is one call expression inside a FuncNode.
type CallSite struct {
	Caller *FuncNode
	Call   *ast.CallExpr
	// Targets are the in-module callees this site may reach (empty for
	// stdlib and builtin calls).
	Targets []*FuncNode
	// Static is true when Targets came from checker resolution (direct or
	// interface dispatch), false for the name fallback.
	Static bool
	// StaticObj is the resolved callee object when the checker pinned one,
	// whether or not it is declared in-module (stdlib calls keep it too).
	StaticObj *types.Func
	// HookField is set when the callee expression is a func-typed struct
	// field — a registered hook/callback seam (e.g. a SetDriftHook target).
	HookField *types.Var
	// FuncValue is set when the callee is a func-typed variable or
	// parameter (a stored callback invoked indirectly).
	FuncValue *types.Var
}

// BuildCallGraph constructs (or returns the memoized) call graph.
func (prog *Program) BuildCallGraph() *CallGraph {
	prog.cgMu.Lock()
	defer prog.cgMu.Unlock()
	if prog.cg != nil {
		return prog.cg
	}
	cg := &CallGraph{
		prog:   prog,
		byObj:  map[*types.Func]*FuncNode{},
		byName: map[string][]*FuncNode{},
	}
	// Pass 1: nodes.
	prog.eachSourceFile(func(pkg *Package, f *File) {
		if strings.HasSuffix(pkg.Name, "_test") {
			return
		}
		ti := prog.Typed(pkg)
		for _, fn := range fileFuncs(f) {
			node := &FuncNode{Pkg: pkg, File: f, Decl: fn.Decl}
			if ti != nil {
				if obj, ok := ti.Info.Defs[fn.Decl.Name].(*types.Func); ok {
					node.Obj = obj
					cg.byObj[obj] = node
				}
			}
			cg.Nodes = append(cg.Nodes, node)
			cg.byName[node.Name()] = append(cg.byName[node.Name()], node)
		}
	})
	// Pass 2: edges.
	for _, node := range cg.Nodes {
		cg.resolveBody(node)
	}
	prog.cg = cg
	return cg
}

// resolveBody walks one declaration body, recording call sites and edges.
func (cg *CallGraph) resolveBody(node *FuncNode) {
	ti := cg.prog.Typed(node.Pkg)
	var info *types.Info
	if ti != nil {
		info = ti.Info
	}
	seen := map[*FuncNode]bool{}
	addEdge := func(t *FuncNode) {
		if t != nil && !seen[t] {
			seen[t] = true
			node.edges = append(node.edges, t)
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			site := cg.resolveCall(node, info, v)
			node.Calls = append(node.Calls, site)
			for _, t := range site.Targets {
				addEdge(t)
			}
		case *ast.SelectorExpr, *ast.Ident:
			// Function/method values: a reference outside call position makes
			// the referenced declaration reachable (it may be invoked later
			// through the stored value).
			if info == nil {
				return true
			}
			if id := selIdent(n); id != nil {
				if fn, ok := info.Uses[id].(*types.Func); ok {
					addEdge(cg.byObj[fn])
				}
			}
		}
		return true
	})
	// Deterministic edge order for consumers that iterate.
	sort.Slice(node.edges, func(i, j int) bool {
		return node.edges[i].Decl.Pos() < node.edges[j].Decl.Pos()
	})
}

// selIdent returns the identifier naming a selector's member or a bare
// identifier (the shapes that can reference a function value).
func selIdent(n ast.Node) *ast.Ident {
	switch v := n.(type) {
	case *ast.SelectorExpr:
		return v.Sel
	case *ast.Ident:
		return v
	}
	return nil
}

// resolveCall resolves one call expression.
func (cg *CallGraph) resolveCall(caller *FuncNode, info *types.Info, call *ast.CallExpr) *CallSite {
	site := &CallSite{Caller: caller, Call: call}
	fun := ast.Unparen(call.Fun)

	var calleeName string
	switch v := fun.(type) {
	case *ast.Ident:
		calleeName = v.Name
		if info != nil {
			switch obj := info.Uses[v].(type) {
			case *types.Func:
				site.Static = true
				site.StaticObj = obj
				if t := cg.byObj[obj]; t != nil {
					site.Targets = []*FuncNode{t}
				}
				return site
			case *types.Builtin:
				return site // make/new/append/... — no targets
			case *types.TypeName:
				return site // conversion T(x) — not a call edge
			case *types.Var:
				site.FuncValue = obj
			}
		}
	case *ast.SelectorExpr:
		calleeName = v.Sel.Name
		if info != nil {
			if sel := info.Selections[v]; sel != nil {
				switch sel.Kind() {
				case types.MethodVal, types.MethodExpr:
					fn := sel.Obj().(*types.Func)
					site.StaticObj = fn
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						// Interface dispatch: resolve to every in-module
						// implementation declaring this method.
						site.Static = true
						site.Targets = cg.implementors(iface, calleeName)
						return site
					}
					site.Static = true
					if t := cg.byObj[fn]; t != nil {
						site.Targets = []*FuncNode{t}
					}
					return site
				case types.FieldVal:
					if fld, ok := sel.Obj().(*types.Var); ok {
						site.HookField = fld
					}
				}
			} else if obj, ok := info.Uses[v.Sel].(*types.Func); ok {
				// Package-qualified call pkg.F(...).
				site.Static = true
				site.StaticObj = obj
				if t := cg.byObj[obj]; t != nil {
					site.Targets = []*FuncNode{t}
				}
				return site
			} else if obj, ok := info.Uses[v.Sel].(*types.TypeName); ok && obj != nil {
				return site // conversion pkg.T(x)
			}
		}
	case *ast.FuncLit:
		return site // immediately-invoked literal: body already walked inline
	default:
		return site // index/complex callee expressions: fall through by name
	}

	// Name fallback: stored function values, func-typed fields, or no type
	// info at all — link every in-module declaration sharing the name.
	site.Targets = cg.byName[calleeName]
	return site
}

// implementors returns the in-module named types implementing iface that
// declare (or inherit) a method with the given name, as call-graph nodes.
func (cg *CallGraph) implementors(iface *types.Interface, method string) []*FuncNode {
	var out []*FuncNode
	for _, node := range cg.Nodes {
		if node.Obj == nil || node.Name() != method {
			continue
		}
		named := recvNamed(node.Obj)
		if named == nil {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, node)
		}
	}
	if len(out) == 0 {
		// No known implementor (the concrete types may live outside the
		// module, or failed to check): fall back to the name tier.
		return cg.byName[method]
	}
	return out
}

// NodesByName returns the declarations sharing a bare name (the fallback
// index), in deterministic order.
func (cg *CallGraph) NodesByName(name string) []*FuncNode { return cg.byName[name] }

// NodeOf returns the node of a declaration's *types.Func, or nil.
func (cg *CallGraph) NodeOf(fn *types.Func) *FuncNode { return cg.byObj[fn] }

// RootSpec names a reachability root as "pkgsuffix.FuncName": the package
// import path must end with pkgsuffix and the declaration's bare name must
// equal FuncName (methods match by bare name, any receiver). Fixture modules
// load under their own module path, so suffix matching keeps them subject to
// the same roots as the real repo.
type RootSpec struct {
	PkgSuffix string
	Name      string
}

// ParseRootSpec splits "internal/predictor.PredictCost" on the last dot.
func ParseRootSpec(s string) (RootSpec, bool) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return RootSpec{}, false
	}
	return RootSpec{PkgSuffix: s[:i], Name: s[i+1:]}, true
}

// Matches reports whether a node is named by the spec.
func (r RootSpec) Matches(n *FuncNode) bool {
	if n.Name() != r.Name {
		return false
	}
	p := n.Pkg.ImportPath
	return p == r.PkgSuffix || strings.HasSuffix(p, "/"+r.PkgSuffix) || strings.HasSuffix(p, r.PkgSuffix)
}

// Roots resolves specs to their matching nodes, deduplicated, in node order.
func (cg *CallGraph) Roots(specs []RootSpec) []*FuncNode {
	var out []*FuncNode
	for _, n := range cg.Nodes {
		for _, r := range specs {
			if r.Matches(n) {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// ReachableFrom returns every node reachable from roots (roots included)
// over call and value-reference edges, plus a parent map for rendering the
// chain back to a root in findings.
func (cg *CallGraph) ReachableFrom(roots []*FuncNode) (map[*FuncNode]bool, map[*FuncNode]*FuncNode) {
	reach := map[*FuncNode]bool{}
	parent := map[*FuncNode]*FuncNode{}
	queue := append([]*FuncNode(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, t := range n.edges {
			if !reach[t] {
				reach[t] = true
				parent[t] = n
				queue = append(queue, t)
			}
		}
	}
	return reach, parent
}

// rootOf walks the parent map back to the BFS root of n.
func rootOf(n *FuncNode, parent map[*FuncNode]*FuncNode) *FuncNode {
	for parent[n] != nil {
		n = parent[n]
	}
	return n
}
