package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocDiscipline turns the serving fast path's zero-allocation contract
// (DESIGN.md "Inference fast path", enforced at runtime by the AllocsPerRun
// tests) into a compile-time gate: every function reachable from the serving
// roots — PredictCost, SelectPlanKeyed, ForwardInfer, the flat encoders, and
// plan.Fingerprint — must be free of allocating constructs:
//
//   - make / new builtins
//   - slice and map composite literals, and address-of composite literals
//     (&T{...} escapes to the heap)
//   - append that grows something other than the destination itself
//     (x = append(x, ...) and x = append(x[:0], ...) are the sanctioned
//     scratch idioms and stay exempt)
//   - string concatenation
//   - interface conversions of non-pointer values at call boundaries
//     (boxing a float or struct allocates)
//   - function literals that capture enclosing variables (closure allocation)
//
// Reachability comes from the typed call graph (callgraph.go), which
// over-approximates through interfaces and stored function values — the safe
// direction: a spurious finding is reviewed once and allowlisted with a
// Reason; a missed one silently re-introduces per-query garbage ahead of the
// ROADMAP item 3 quantization/SIMD churn.
//
// Functions named init are exempt (one-time setup is allowed to allocate),
// as are test files (never loaded into the graph).
func AllocDiscipline() *Analyzer {
	return AllocDisciplineWithRoots(DefaultAllocRoots)
}

// DefaultAllocRoots are the serving fast-path entry points, as
// "pkgsuffix.Name" specs (suffix-matched so fixture modules are subject to
// the same contract). Overridable from the CLI via -roots.
var DefaultAllocRoots = []string{
	"internal/predictor.PredictCost",
	"internal/predictor.SelectPlanKeyed",
	"internal/predictor.SelectPlanGroups",
	"internal/nn.ForwardInfer",
	"internal/nn.ForwardInferQuant",
	"internal/guard.flushCoalesced",
	"internal/encoding.EncodeTreeFlatInto",
	"internal/encoding.EncodeGraphFlatInto",
	"internal/encoding.EncodeSequenceFlatInto",
	"internal/plan.Fingerprint",
}

// AllocDisciplineWithRoots builds the analyzer over a custom root set.
func AllocDisciplineWithRoots(rootSpecs []string) *Analyzer {
	return &Analyzer{
		Name: "allocdiscipline",
		Doc:  "functions reachable from serving fast-path roots contain no allocating constructs",
		Run: func(prog *Program) []Finding {
			return runAllocDiscipline(prog, rootSpecs)
		},
	}
}

func runAllocDiscipline(prog *Program, rootSpecs []string) []Finding {
	var specs []RootSpec
	for _, s := range rootSpecs {
		if r, ok := ParseRootSpec(s); ok {
			specs = append(specs, r)
		}
	}
	cg := prog.BuildCallGraph()
	roots := cg.Roots(specs)
	if len(roots) == 0 {
		return nil
	}
	reach, parent := cg.ReachableFrom(roots)

	var out []Finding
	seen := map[string]bool{}
	for _, node := range cg.Nodes {
		if !reach[node] || node.Name() == "init" {
			continue
		}
		root := rootOf(node, parent)
		for _, f := range allocSites(prog, node) {
			f.Message = fmt.Sprintf("%s in %s (serving fast path via %s)", f.Message, node.Name(), root.ID())
			key := fmt.Sprintf("%s:%d:%d:%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
			if !seen[key] {
				seen[key] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// allocSites scans one function body for allocating constructs. Findings
// carry the construct description only; the caller adds function and root.
func allocSites(prog *Program, node *FuncNode) []Finding {
	ti := prog.Typed(node.Pkg)
	var info *types.Info
	if ti != nil {
		info = ti.Info
	}
	s := &allocScan{prog: prog, node: node, info: info}
	s.block(node.Decl.Body)
	return s.out
}

type allocScan struct {
	prog *Program
	node *FuncNode
	info *types.Info
	out  []Finding
}

func (s *allocScan) report(pos token.Pos, desc, hint string) {
	s.out = append(s.out, Finding{
		Pos:        s.prog.Fset.Position(pos),
		Rule:       "allocdiscipline",
		Message:    desc,
		Suggestion: hint,
	})
}

// block walks the whole body in two passes: the first maps calls sitting in
// direct right-hand-side position to their assignment (the self-append
// exemption needs it), the second classifies every construct in source
// order. Nested composite literals report once, at the outermost literal.
func (s *allocScan) block(body *ast.BlockStmt) {
	direct := map[*ast.CallExpr]*ast.AssignStmt{}
	ast.Inspect(body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range a.Rhs {
				if c, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					direct[c] = a
				}
			}
		}
		return true
	})
	handled := map[*ast.CompositeLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			s.call(v, direct[v])
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok && !handled[lit] {
					handled[lit] = true
					markNested(lit, handled)
					s.compositeLit(lit, true)
				}
			}
		case *ast.CompositeLit:
			if !handled[v] {
				handled[v] = true
				markNested(v, handled)
				s.compositeLit(v, false)
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && s.isStringConcat(v) {
				s.report(v.OpPos, "string concatenation allocates",
					"serving code formats into pre-sized scratch or avoids string building entirely")
			}
		case *ast.FuncLit:
			s.funcLit(v)
		}
		return true
	})
}

// markNested records the composite literals directly nested in lit so the
// walk reports one allocation per outermost literal, not one per element.
func markNested(lit *ast.CompositeLit, handled map[*ast.CompositeLit]bool) {
	ast.Inspect(lit, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CompositeLit); ok && inner != lit {
			handled[inner] = true
		}
		return true
	})
}

// call classifies one call expression.
func (s *allocScan) call(call *ast.CallExpr, assign *ast.AssignStmt) {
	name := ""
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
		if s.info != nil {
			if _, isBuiltin := s.info.Uses[id].(*types.Builtin); !isBuiltin {
				name = "" // shadowed; not the builtin
			}
		}
	}
	switch name {
	case "make":
		s.report(call.Pos(), "make allocates", "pre-size scratch buffers at construction time (see nn.Scratch)")
	case "new":
		s.report(call.Pos(), "new allocates", "reuse pooled or pre-constructed values on the serving path")
	case "append":
		if len(call.Args) > 0 && !selfAppend(call, assign) {
			s.report(call.Pos(), fmt.Sprintf("append to %q may grow beyond scratch", exprString(call.Args[0])),
				"append only back into the destination (x = append(x, ...) or x = append(x[:0], ...))")
		}
	}
	s.interfaceArgs(call)
}

// selfAppend reports the sanctioned scratch idioms: the append destination is
// exactly the assignment target, optionally re-sliced to zero length
// (x = append(x, ...), x = append(x[:0], ...)).
func selfAppend(call *ast.CallExpr, assign *ast.AssignStmt) bool {
	if assign == nil || len(call.Args) == 0 {
		return false
	}
	dst := ast.Unparen(call.Args[0])
	if sl, ok := dst.(*ast.SliceExpr); ok && sl.Low == nil && sl.Max == nil {
		if lit, ok := sl.High.(*ast.BasicLit); ok && lit.Value == "0" {
			dst = sl.X
		} else if sl.High == nil {
			dst = sl.X
		}
	}
	want := exprString(dst)
	for _, lhs := range assign.Lhs {
		if exprString(lhs) == want {
			return true
		}
	}
	return false
}

// compositeLit flags slice and map literals, and any literal whose address
// is taken (addrOf); plain struct and array values live on the stack.
func (s *allocScan) compositeLit(lit *ast.CompositeLit, addrOf bool) {
	kind := ""
	if s.info != nil {
		if tv, ok := s.info.Types[lit]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				kind = "slice literal"
			case *types.Map:
				kind = "map literal"
			}
		}
	} else {
		switch t := lit.Type.(type) {
		case *ast.ArrayType:
			if t.Len == nil {
				kind = "slice literal"
			}
		case *ast.MapType:
			kind = "map literal"
		}
	}
	switch {
	case kind != "":
		s.report(lit.Pos(), kind+" allocates", "hoist the literal to package scope or into pre-built scratch")
	case addrOf:
		s.report(lit.Pos(), "address-of composite literal escapes to the heap",
			"reuse a pooled or caller-provided value instead of &T{...}")
	}
}

// funcLit flags literals that capture enclosing variables (typed check);
// without type info every literal is flagged, the conservative direction.
func (s *allocScan) funcLit(lit *ast.FuncLit) {
	captures := s.info == nil
	if s.info != nil {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || captures {
				return !captures
			}
			v, ok := s.info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			// Captured: declared outside the literal but not at package scope.
			if (v.Pos() < lit.Pos() || v.Pos() > lit.End()) && !isPackageLevel(v) {
				captures = true
			}
			return true
		})
	}
	if captures {
		s.report(lit.Pos(), "function literal captures enclosing variables (closure allocates)",
			"hoist the function to a declaration or pass state explicitly")
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// interfaceArgs flags arguments boxed into interface parameters when the
// concrete value is not already a pointer or interface — boxing allocates.
// Typed-only: without resolution we cannot see the callee's signature.
func (s *allocScan) interfaceArgs(call *ast.CallExpr) {
	if s.info == nil {
		return
	}
	sig := calleeSignature(s.info, call)
	if sig == nil || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // pass-through slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := s.info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
			continue // constants are boxed from read-only data; nil is free
		}
		switch tv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // already a single word, no boxing copy
		}
		s.report(arg.Pos(), fmt.Sprintf("interface conversion boxes %q", exprString(arg)),
			"keep the fast path monomorphic; pass concrete types or pointers")
	}
}

// calleeSignature resolves the called function's signature when the checker
// pinned one (direct calls, methods, func values — not builtins/conversions).
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isStringConcat reports whether the whole + expression is a non-constant
// string concatenation (typed check); without type info it falls back to
// "either operand is a string literal".
func (s *allocScan) isStringConcat(bin *ast.BinaryExpr) bool {
	if s.info != nil {
		tv, ok := s.info.Types[bin]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0 && tv.Value == nil
	}
	_, xLit := stringLit(bin.X)
	_, yLit := stringLit(bin.Y)
	return xLit || yLit
}
