package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// IODiscipline enforces the durability contract from DESIGN.md ("Durability &
// recovery contract"): outside internal/atomicio itself, production code never
// writes files with the raw os primitives. os.WriteFile truncates in place —
// a crash mid-write leaves a torn file with no checksum to catch it;
// os.Create and os.Rename are the raw halves of the temp+fsync+rename dance
// that atomicio packages correctly (fsync the temp file AND the directory,
// then rename). Every durable artifact — model snapshots, manifests, journal
// segments, grant tables, benchmark output — must flow through atomicio.FS so
// the kill-point chaos harness (loam-bench -run recover) actually exercises
// every write the system performs. Test files are exempt (eachSourceFile
// skips them): tests corrupt files on purpose.
//
// With type information available, the analyzer also flags function *values*:
// `w := os.WriteFile` smuggles the raw primitive past the call-site scan and
// hands it to code that may invoke it anywhere.
func IODiscipline() *Analyzer {
	return &Analyzer{
		Name: "iodiscipline",
		Doc:  "raw file writes (os.WriteFile/Create/Rename) outside internal/atomicio flow through atomicio.FS",
		Run:  runIODiscipline,
	}
}

// ioExemptSuffix is the one package-path tail allowed to touch the raw write
// primitives: atomicio implements the sanctioned sequence. Suffix matching
// keeps fixture programs, which load under their own module path, subject to
// the same rule.
const ioExemptSuffix = "/internal/atomicio"

// rawWriteFuncs maps each confined os entry point to why it is dangerous
// outside atomicio.
var rawWriteFuncs = map[string]string{
	"WriteFile": "truncates in place — a crash mid-write leaves a torn file no checksum protects",
	"Create":    "opens an unsynced truncating handle — the write is not durable until fsync and rename",
	"Rename":    "publishes a file that was never fsynced — the rename can survive a crash the data did not",
}

func runIODiscipline(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		if strings.HasSuffix(pkg.ImportPath, ioExemptSuffix) {
			return
		}
		// Selector expressions in call position, so the function-value pass
		// below doesn't double-report every direct call.
		callFuns := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callFuns[sel] = true
			name := sel.Sel.Name
			why, confined := rawWriteFuncs[name]
			if !confined || !isPkgCall(f, call, "os", name) {
				return true
			}
			out = append(out, Finding{
				Pos:        prog.Fset.Position(call.Pos()),
				Rule:       "iodiscipline",
				Message:    fmt.Sprintf("os.%s outside internal/atomicio %s", name, why),
				Suggestion: "route the write through atomicio.FS (WriteFile/Append) — the one sanctioned temp+fsync+rename primitive",
			})
			return true
		})
		out = append(out, ioFunctionValues(prog, pkg, f, callFuns)...)
	})
	return out
}

// ioFunctionValues flags references to the raw write primitives taken as
// function values (not in call position). Typed-only: resolution through
// types.Func pins the selector to package os even under an import alias.
func ioFunctionValues(prog *Program, pkg *Package, f *File, callFuns map[*ast.SelectorExpr]bool) []Finding {
	ti := prog.Typed(pkg)
	if ti == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || callFuns[sel] {
			return true
		}
		fn, ok := ti.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if _, confined := rawWriteFuncs[fn.Name()]; !confined {
			return true
		}
		out = append(out, Finding{
			Pos:        prog.Fset.Position(sel.Pos()),
			Rule:       "iodiscipline",
			Message:    fmt.Sprintf("function value os.%s smuggles the raw write primitive past the atomicio seam", fn.Name()),
			Suggestion: "pass an atomicio.FS (or a closure over its WriteFile/Append) instead of the raw os function",
		})
		return true
	})
	return out
}
