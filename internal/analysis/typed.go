package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file is the typed half of the analysis engine. The syntactic load
// (load.go) stays the source of truth for file discovery and positions; on
// top of it, TypeCheck runs the stdlib go/types checker over every non-test
// package, resolving identifiers, selections, and expression types. Still
// dependency-free: in-module imports are checked recursively from our own
// parsed ASTs, and standard-library imports go through go/importer's source
// importer (which type-checks GOROOT source — no build cache, no export
// data, no third-party loaders).
//
// Type information is best-effort by design: a package that fails to check
// (fixture programs are often deliberately skeletal) records its errors and
// keeps whatever partial types.Info the checker produced. Analyzers that
// consume types must degrade to their syntactic behavior when info is
// missing — the typed index removes false negatives, it never becomes a
// load-bearing single point of failure.

// TypeInfo is one package's type-check result.
type TypeInfo struct {
	// Pkg is the checked package object (never nil, possibly incomplete).
	Pkg *types.Package
	// Info holds the resolved maps (Types, Defs, Uses, Selections,
	// Implicits, Scopes). Partially filled when Errs is non-empty.
	Info *types.Info
	// Errs holds the type errors the checker reported (empty on success).
	Errs []error
}

// Complete reports whether the package checked without errors.
func (ti *TypeInfo) Complete() bool { return ti != nil && len(ti.Errs) == 0 }

// stdImporter is the shared source importer for standard-library packages.
// It is constructed once and reused across programs: srcimporter caches the
// packages it has checked, so repeated fixture loads pay the stdlib cost
// only once per process. Guarded by stdImporterMu — srcimporter is not
// documented as concurrency-safe.
var (
	stdImporterMu sync.Mutex
	stdImporter   types.Importer
)

func importStd(path string) (*types.Package, error) {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	if stdImporter == nil {
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return stdImporter.Import(path)
}

// progImporter resolves imports during type checking: module-internal paths
// recurse into the program's own packages; everything else is assumed to be
// standard library and goes through the shared source importer.
type progImporter struct {
	prog *Program
	// checking guards against import cycles (which the syntactic load
	// cannot have ruled out for fixture programs).
	checking map[string]bool
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if im.prog.ownsImportPath(path) {
		pkg := im.prog.packageByImportPath(path)
		if pkg == nil {
			return nil, fmt.Errorf("import %q: no such package in module %s", path, im.prog.ModulePath)
		}
		ti, err := im.prog.checkPackage(pkg, im)
		if err != nil {
			return nil, err
		}
		return ti.Pkg, nil
	}
	return importStd(path)
}

// ownsImportPath reports whether path names a package inside this module.
func (prog *Program) ownsImportPath(path string) bool {
	return path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/")
}

// packageByImportPath finds the non-test package with the given import path.
// External test packages (name ending in _test) are never import targets.
func (prog *Program) packageByImportPath(path string) *Package {
	for _, pkg := range prog.Packages {
		if pkg.ImportPath == path && !strings.HasSuffix(pkg.Name, "_test") {
			return pkg
		}
	}
	return nil
}

// TypeCheck type-checks every non-test package in the program, memoized; it
// is safe to call more than once. The returned error reports only
// infrastructure failures (import cycles, unresolvable module imports);
// ordinary type errors land in each package's TypeInfo.Errs instead.
func (prog *Program) TypeCheck() error {
	prog.typedMu.Lock()
	defer prog.typedMu.Unlock()
	if prog.typed != nil {
		return prog.typedErr
	}
	prog.typed = map[string]*TypeInfo{}
	im := &progImporter{prog: prog, checking: map[string]bool{}}
	for _, pkg := range prog.Packages {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		if _, err := prog.checkPackage(pkg, im); err != nil {
			prog.typedErr = err
			return err
		}
	}
	return nil
}

// Typed returns the type-check result for pkg, running TypeCheck on first
// use. It returns nil for test packages, after infrastructure failures, and
// for packages the load never saw — callers treat nil as "no type info".
func (prog *Program) Typed(pkg *Package) *TypeInfo {
	if prog.TypeCheck() != nil {
		return nil
	}
	prog.typedMu.Lock()
	defer prog.typedMu.Unlock()
	return prog.typed[typedKey(pkg)]
}

// typedKey distinguishes the per-dir package variants (pkg vs pkg_test).
func typedKey(pkg *Package) string { return pkg.Dir + "\x00" + pkg.Name }

// checkPackage type-checks one package (memoized). Callers hold typedMu via
// TypeCheck; recursion happens only through the importer, on the same
// goroutine.
func (prog *Program) checkPackage(pkg *Package, im *progImporter) (*TypeInfo, error) {
	key := typedKey(pkg)
	if ti, ok := prog.typed[key]; ok {
		return ti, nil
	}
	if im.checking[key] {
		return nil, fmt.Errorf("import cycle through %s", pkg.ImportPath)
	}
	im.checking[key] = true
	defer delete(im.checking, key)

	// Only non-test files: the contracts cover the production surface, and
	// in-package test files may import packages the module does not contain.
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	ti := &TypeInfo{
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: im,
		Error:    func(err error) { ti.Errs = append(ti.Errs, err) },
	}
	pkgObj, err := conf.Check(pkg.ImportPath, prog.Fset, files, ti.Info)
	if pkgObj == nil {
		// Checker failed before producing a package object; synthesize an
		// empty one so downstream consumers never see nil.
		pkgObj = types.NewPackage(pkg.ImportPath, pkg.Name)
		if err != nil {
			ti.Errs = append(ti.Errs, err)
		}
	}
	ti.Pkg = pkgObj
	prog.typed[typedKey(pkg)] = ti
	return ti, nil
}

// TypeErrors returns every package's type errors as findings-style strings
// ("pkg: error"), sorted — the CLI surfaces them as a load warning so a
// broken build does not silently weaken the typed rules.
func (prog *Program) TypeErrors() []string {
	if prog.TypeCheck() != nil {
		return []string{fmt.Sprintf("typed load failed: %v", prog.typedErr)}
	}
	var out []string
	for _, pkg := range prog.Packages {
		ti := prog.Typed(pkg)
		if ti == nil {
			continue
		}
		for _, err := range ti.Errs {
			out = append(out, fmt.Sprintf("%s: %v", pkg.ImportPath, err))
		}
	}
	sort.Strings(out)
	return out
}

// --- typed helper queries -------------------------------------------------

// namedOf strips pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v
		case *types.Alias:
			t = types.Unalias(v)
		default:
			return nil
		}
	}
}

// isMutexType reports whether t (possibly behind pointers) is sync.Mutex or
// sync.RWMutex, returning the kind name.
func isMutexType(t types.Type) (kind string, ok bool) {
	n := namedOf(t)
	if n == nil {
		return "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
		return obj.Name(), true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// recvNamed returns the named receiver type of a *types.Func method, or nil
// for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// lockID identifies one lock: the named type owning the mutex field, plus
// the field's name. Two selector chains reaching the same (type, field) are
// the same lock for ordering purposes, whichever variable holds the struct.
type lockID struct {
	typ   string // fully qualified owner type, e.g. "loam/internal/guard.Guard"
	field string
}

func (l lockID) String() string {
	typ := l.typ
	if i := strings.LastIndex(typ, "/"); i >= 0 {
		typ = typ[i+1:]
	}
	return typ + "." + l.field
}

// lockFieldOf resolves x.mu-style selector expressions to a lock identity
// when the selected field is a sync.Mutex / sync.RWMutex. It also resolves
// promoted fields (embedded mutexes).
func lockFieldOf(info *types.Info, sel *ast.SelectorExpr) (lockID, bool) {
	if info == nil {
		return lockID{}, false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return lockID{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return lockID{}, false
	}
	if _, ok := isMutexType(v.Type()); !ok {
		return lockID{}, false
	}
	owner := namedOf(s.Recv())
	ownerName := "?"
	if owner != nil && owner.Obj() != nil {
		ownerName = owner.Obj().Name()
		if owner.Obj().Pkg() != nil {
			ownerName = owner.Obj().Pkg().Path() + "." + ownerName
		}
	}
	return lockID{typ: ownerName, field: v.Name()}, true
}
