package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NaNSafety enforces the NaN-safe plan-selection contract: the predictor can
// emit NaN estimates (untrained edge cases, degenerate normalization), and a
// raw `<` / `>` between cost or estimate values silently makes the NaN
// operand win or lose (every comparison with NaN is false). The vetted
// argmin in the selector guards with math.IsNaN before comparing; everything
// else must route cost comparisons through internal/floatsafe.
//
// Flagged:
//   - binary < <= > >= where at least one operand is cost-like (its name
//     mentions cost/estimate) and neither side is a plain literal (threshold
//     checks against constants are fail-closed and exempt);
//   - math.Min / math.Max calls with a cost-like argument (NaN propagation
//     differs between the two and from a raw compare).
//
// Suppressed when the enclosing function guards one of the compared
// expressions with math.IsNaN — that is precisely the vetted-argmin shape.
//
// With type information, the name heuristic gets two refinements: operands
// the checker proves non-float are skipped (an integer "costCount" cannot be
// NaN), and typed constants count as literals (a comparison against a named
// threshold like maxCost fails closed exactly like a literal one).
func NaNSafety() *Analyzer {
	return &Analyzer{
		Name: "nansafety",
		Doc:  "no raw float comparisons on cost/estimate values outside NaN-guarded argmins",
		Run:  runNaNSafety,
	}
}

func runNaNSafety(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		var info *types.Info
		if ti := prog.Typed(pkg); ti != nil {
			info = ti.Info
		}
		for _, fn := range fileFuncs(f) {
			guardedExprs := isNaNGuards(f, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BinaryExpr:
					if !isCompare(v.Op) {
						return true
					}
					if isLiteralish(v.X) || isLiteralish(v.Y) ||
						typedConst(info, v.X) || typedConst(info, v.Y) {
						return true
					}
					if !costLike(v.X) && !costLike(v.Y) {
						return true
					}
					if provedNonFloat(info, v.X) && provedNonFloat(info, v.Y) {
						return true
					}
					if guardedExprs[exprString(v.X)] || guardedExprs[exprString(v.Y)] {
						return true
					}
					out = append(out, Finding{
						Pos:  prog.Fset.Position(v.Pos()),
						Rule: "nansafety",
						Message: fmt.Sprintf("raw %s comparison on cost/estimate value %q: a NaN operand silently wins or loses the choice",
							v.Op, exprString(cheaperOperand(v))),
						Suggestion: "use floatsafe.Less/LessEq/SortLess/ArgMin, or guard both operands with math.IsNaN",
					})
				case *ast.CallExpr:
					sel, ok := v.Fun.(*ast.SelectorExpr)
					if !ok || (sel.Sel.Name != "Min" && sel.Sel.Name != "Max") {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); !ok || id.Name != importLocalName(f, "math") {
						return true
					}
					for _, arg := range v.Args {
						if costLike(arg) && !isLiteralish(arg) && !typedConst(info, arg) {
							out = append(out, Finding{
								Pos:  prog.Fset.Position(v.Pos()),
								Rule: "nansafety",
								Message: fmt.Sprintf("math.%s on cost/estimate value %q propagates NaN asymmetrically",
									sel.Sel.Name, exprString(arg)),
								Suggestion: "use floatsafe helpers or an explicit math.IsNaN guard",
							})
							break
						}
					}
				}
				return true
			})
		}
	})
	return out
}

// isNaNGuards collects the rendered expressions the function passes to
// math.IsNaN — comparisons touching those are considered vetted.
func isNaNGuards(f *File, fn funcInfo) map[string]bool {
	out := map[string]bool{}
	mathName := importLocalName(f, "math")
	if mathName == "" {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "IsNaN" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == mathName {
			out[exprString(call.Args[0])] = true
		}
		return true
	})
	return out
}

// costLike reports whether an expression's name marks it as a cost or
// estimate value: the identifier (or final selector/index component)
// mentions "cost" or "estim", or is prefixed "est" (estRows, estSize).
func costLike(e ast.Expr) bool {
	name := ""
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	case *ast.IndexExpr:
		return costLike(v.X)
	case *ast.CallExpr:
		return costLike(v.Fun)
	case *ast.ParenExpr:
		return costLike(v.X)
	case *ast.BinaryExpr:
		return costLike(v.X) || costLike(v.Y)
	case *ast.UnaryExpr:
		return costLike(v.X)
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "cost") || strings.Contains(lower, "estim") ||
		(strings.HasPrefix(lower, "est") && len(lower) > 3)
}

// cheaperOperand returns the cost-like side of a comparison for the message.
func cheaperOperand(v *ast.BinaryExpr) ast.Expr {
	if costLike(v.X) {
		return v.X
	}
	return v.Y
}

func isCompare(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// typedConst reports whether the checker evaluated e to a constant — named
// thresholds (maxCost) fail closed under NaN just like literal ones.
func typedConst(info *types.Info, e ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// provedNonFloat reports whether the checker proves e is not float-typed —
// integer or string operands cannot hold a NaN, whatever their name says.
func provedNonFloat(info *types.Info, e ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex|types.IsUntyped) == 0
}

// isLiteralish reports pure-constant operands (0, 1e9, -1): comparisons
// against constants are threshold checks that fail closed under NaN.
func isLiteralish(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isLiteralish(v.X)
	case *ast.ParenExpr:
		return isLiteralish(v.X)
	}
	return false
}
