package analysis

import (
	"strings"
	"testing"
)

// TestAllocDiscipline seeds one of each allocating construct in a helper
// reachable from the PredictCost serving root and checks each fires exactly
// once, in source order, tagged with the root that makes it serving-path.
func TestAllocDiscipline(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/predictor/p.go": `package predictor

func PredictCost(xs []float64) float64 { return helper(xs) }

func sink(v any) {}

func helper(xs []float64) float64 {
	buf := make([]float64, len(xs))
	p := new(float64)
	s := []int{1, 2}
	m := map[string][]int{"a": {1}}
	var other []float64
	other = append(buf, 1)
	name := "plan"
	name = name + "!"
	sink(xs[0])
	f := func() float64 { return buf[0] }
	_, _, _, _, _ = p, s, m, other, name
	return f()
}

func cold() []float64 { return make([]float64, 8) }
`})
	got := runOne(prog, AllocDiscipline())
	wantFindings(t, got, [][2]string{
		{"allocdiscipline", "make allocates"},
		{"allocdiscipline", "new allocates"},
		{"allocdiscipline", "slice literal allocates"},
		{"allocdiscipline", "map literal allocates"},
		{"allocdiscipline", `append to "buf" may grow beyond scratch`},
		{"allocdiscipline", "string concatenation allocates"},
		{"allocdiscipline", `interface conversion boxes "xs[0]"`},
		{"allocdiscipline", "function literal captures enclosing variables"},
	})
	for _, f := range got {
		if !strings.Contains(f.Message, "in helper (serving fast path via fixture/internal/predictor.PredictCost)") {
			t.Errorf("finding lacks function/root attribution: %s", f)
		}
	}
}

// TestAllocDisciplineSanctionedIdioms: the scratch idioms and stack-only
// constructs the contract explicitly permits must stay silent, as must code
// the serving roots never reach.
func TestAllocDisciplineSanctionedIdioms(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/predictor/p.go": `package predictor

type point struct{ x, y float64 }

var scale = map[string]float64{"a": 1}

func init() {
	scale["b"] = 2
}

func PredictCost(xs []float64) float64 {
	xs = append(xs, 1)
	xs = append(xs[:0], 2)
	v := point{1, 2}
	var arr [4]float64
	f := func() float64 { return 1 }
	const tag = "a" + "b"
	_ = tag
	return v.x + arr[0] + f()
}

func unreachable() []float64 { return make([]float64, 8) }
`})
	got := runOne(prog, AllocDiscipline())
	if len(got) != 0 {
		t.Fatalf("sanctioned idioms fired %d finding(s):\n%s", len(got), renderFindings(got))
	}
}

// TestAllocDisciplineQuantRoots: the quantized-inference and micro-batching
// entry points added with ROADMAP item 3 — the quantized cost-head kernel,
// the fused group scorer, and the guard's coalesced flush — are serving
// fast-path roots of their own: an allocation reachable from any of them
// fires even when the classic per-query roots never reach it.
func TestAllocDisciplineQuantRoots(t *testing.T) {
	prog := fixture(t, map[string]string{
		"internal/nn/quant.go": `package nn

func ForwardInferQuant(x []float32) []float64 { return qscratch(len(x)) }

func qscratch(n int) []float64 { return make([]float64, n) }
`,
		"internal/predictor/group.go": `package predictor

type Group struct{ Costs []float64 }

func SelectPlanGroups(groups []Group) { stage(groups) }

func stage(groups []Group) {
	for i := range groups {
		groups[i].Costs = append(groups[i].Costs, 0)
		_ = new(float64)
	}
}
`,
		"internal/guard/coalesce.go": `package guard

type batch struct{ costs []float64 }

func flushCoalesced(b *batch, n int) {
	b.costs = make([]float64, n)
}
`,
	})
	got := runOne(prog, AllocDiscipline())
	if len(got) != 3 {
		t.Fatalf("want 3 findings (one per new root), got %d:\n%s", len(got), renderFindings(got))
	}
	for _, want := range []string{
		"make allocates in qscratch (serving fast path via fixture/internal/nn.ForwardInferQuant)",
		"new allocates in stage (serving fast path via fixture/internal/predictor.SelectPlanGroups)",
		"make allocates in flushCoalesced (serving fast path via fixture/internal/guard.flushCoalesced)",
	} {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding matches %q:\n%s", want, renderFindings(got))
		}
	}
}

// TestAllocDisciplineCustomRoots: -roots replaces the serving-root set, so a
// fixture entry point outside the default list can opt in.
func TestAllocDisciplineCustomRoots(t *testing.T) {
	files := map[string]string{"internal/x/x.go": `package x

func Serve() []float64 { return grow() }

func grow() []float64 { return make([]float64, 8) }
`}
	prog := fixture(t, files)
	if got := runOne(prog, AllocDiscipline()); len(got) != 0 {
		t.Fatalf("default roots should not reach internal/x:\n%s", renderFindings(got))
	}
	got := runOne(prog, AllocDisciplineWithRoots([]string{"internal/x.Serve"}))
	wantFindings(t, got, [][2]string{
		{"allocdiscipline", "make allocates"},
	})
	if !strings.Contains(got[0].Message, "via fixture/internal/x.Serve") {
		t.Errorf("custom root not attributed: %s", got[0])
	}
}
