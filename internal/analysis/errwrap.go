package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// ErrWrap enforces the error-wrapping contract on the serving path:
//
//   - fmt.Errorf that embeds an error must use %w, so errors.Is/errors.As
//     see through the wrap (predictor.ErrNoCandidates and friends are
//     matched by callers);
//   - a caller must not re-apply a prefix the callee already applied — the
//     DeployAll double-wrap bug class from PR 1, where "deploy p1: deploy
//     p1: ..." stuttered because both layers prefixed the project name.
func ErrWrap() *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "errors wrap with %w and are never double-prefixed",
		Run:  runErrWrap,
	}
}

func runErrWrap(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		for _, fn := range fileFuncs(f) {
			// errName → simple name of the callee it was last assigned from.
			lastCallee := map[string]string{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					recordErrAssign(v, lastCallee)
				case *ast.CallExpr:
					if !isPkgCall(f, v, "fmt", "Errorf") || len(v.Args) < 2 {
						return true
					}
					format, ok := stringLit(v.Args[0])
					if !ok {
						return true
					}
					wrapped := errorArg(v.Args[1:])
					if wrapped == "" {
						return true
					}
					if !strings.Contains(format, "%w") {
						out = append(out, Finding{
							Pos:  prog.Fset.Position(v.Pos()),
							Rule: "errwrap",
							Message: fmt.Sprintf("fmt.Errorf embeds error %q without %%w: errors.Is/errors.As cannot see through the wrap",
								wrapped),
							Suggestion: "change the verb for the error operand to %w",
						})
						return true
					}
					// Double-prefix: the callee that produced this error
					// already applies the same leading prefix token.
					tok := wrapPrefixToken(v)
					callee := lastCallee[wrapped]
					if tok == "" || callee == "" {
						return true
					}
					for _, p := range prog.wrapPrefixes[callee] {
						if p == tok {
							out = append(out, Finding{
								Pos:  prog.Fset.Position(v.Pos()),
								Rule: "errwrap",
								Message: fmt.Sprintf("re-prefixes %q on an error %s already prefixes — the DeployAll double-wrap bug class",
									tok, callee),
								Suggestion: "drop the duplicate prefix; the callee's wrap already carries it",
							})
							break
						}
					}
				}
				return true
			})
		}
	})
	return out
}

// recordErrAssign tracks `x, err := callee(...)` / `err = callee(...)` so a
// later wrap of err can be matched against callee's own prefixes.
func recordErrAssign(v *ast.AssignStmt, lastCallee map[string]string) {
	if len(v.Rhs) != 1 {
		return
	}
	call, ok := v.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	callee := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	if callee == "" {
		return
	}
	for _, lhs := range v.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && errorLikeName(id.Name) {
			lastCallee[id.Name] = callee
		}
	}
}

// errorArg returns the rendered first error-like argument ("" if none).
func errorArg(args []ast.Expr) string {
	for _, a := range args {
		switch v := a.(type) {
		case *ast.Ident:
			if errorLikeName(v.Name) {
				return v.Name
			}
		case *ast.SelectorExpr:
			if errorLikeName(v.Sel.Name) {
				return exprString(v)
			}
		}
	}
	return ""
}

func errorLikeName(name string) bool {
	return name == "err" || strings.HasSuffix(name, "Err") || strings.HasSuffix(name, "err") ||
		strings.HasPrefix(name, "err")
}
