package analysis

import "testing"

// TestLockOrderCycle is the fail-before/pass-after pair ISSUE.md asks for:
// two components taking each other's locks in opposite orders is a latent
// deadlock; a single global order is clean.
func TestLockOrderCycle(t *testing.T) {
	cyclic := map[string]string{"internal/p/p.go": `package p

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) One() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}

func (b *B) Two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}
`}
	got := runOne(fixture(t, cyclic), LockOrder())
	wantFindings(t, got, [][2]string{
		{"lockorder", "lock-order cycle:"},
	})

	// Same two locks, single acquisition order everywhere: clean.
	ordered := map[string]string{"internal/p/p.go": `package p

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) One() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}

func (b *B) Two() {
	b.a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	b.a.mu.Unlock()
}
`}
	if got := runOne(fixture(t, ordered), LockOrder()); len(got) != 0 {
		t.Fatalf("consistent order fired %d finding(s):\n%s", len(got), renderFindings(got))
	}
}

// TestLockOrderTransitiveCycle: one leg of the cycle runs through a callee's
// acquisition summary (A held while calling a function that locks B), not a
// directly nested Lock — the static-call-graph propagation must still see it.
func TestLockOrderTransitiveCycle(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

func (a *A) One() {
	a.mu.Lock()
	lockB(a.b)
	a.mu.Unlock()
}

func (b *B) Two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}
`})
	got := runOne(prog, LockOrder())
	wantFindings(t, got, [][2]string{
		{"lockorder", "lock-order cycle:"},
	})
}

// TestLockOrderHookUnderLock: invoking a func-typed struct field while
// holding a lock fires; the copy-release-invoke idiom (guard.observeLearned)
// is the sanctioned rewrite and stays silent.
func TestLockOrderHookUnderLock(t *testing.T) {
	under := map[string]string{"internal/p/p.go": `package p

import "sync"

type G struct {
	mu   sync.Mutex
	hook func(int)
}

func (g *G) Fire(x int) {
	g.mu.Lock()
	g.hook(x)
	g.mu.Unlock()
}
`}
	got := runOne(fixture(t, under), LockOrder())
	wantFindings(t, got, [][2]string{
		{"lockorder", `hook field "hook" invoked while holding`},
	})

	released := map[string]string{"internal/p/p.go": `package p

import "sync"

type G struct {
	mu   sync.Mutex
	hook func(int)
}

func (g *G) Fire(x int) {
	g.mu.Lock()
	h := g.hook
	g.mu.Unlock()
	if h != nil {
		h(x)
	}
}
`}
	if got := runOne(fixture(t, released), LockOrder()); len(got) != 0 {
		t.Fatalf("copy-release-invoke fired %d finding(s):\n%s", len(got), renderFindings(got))
	}
}

// TestLockOrderCallbackParamUnderLock: a func-typed parameter is arbitrary
// caller code; invoking it under a lock is the re-entrant deadlock seam.
func TestLockOrderCallbackParamUnderLock(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

import "sync"

type C struct {
	mu sync.Mutex
}

func (c *C) With(f func()) {
	c.mu.Lock()
	f()
	c.mu.Unlock()
}
`})
	got := runOne(prog, LockOrder())
	wantFindings(t, got, [][2]string{
		{"lockorder", `callback parameter "f" invoked while holding`},
	})
}

// TestLockOrderDeferHoldsToEnd: a deferred Unlock keeps the lock held for the
// rest of the function, so a later nested acquisition still records an edge —
// but an edge alone (no reverse order anywhere) is not a finding.
func TestLockOrderDeferHoldsToEnd(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
}

func (a *A) Held() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
}
`})
	if got := runOne(prog, LockOrder()); len(got) != 0 {
		t.Fatalf("acyclic nested acquisition fired %d finding(s):\n%s", len(got), renderFindings(got))
	}
}
