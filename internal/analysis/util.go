package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// exprString renders an expression compactly for matching and messages. It
// covers the shapes the analyzers compare (idents, selectors, indexes,
// calls); anything else prints as "?".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.BasicLit:
		return v.Value
	case *ast.BinaryExpr:
		return exprString(v.X) + v.Op.String() + exprString(v.Y)
	}
	return "?"
}

// rootIdent returns the leftmost identifier of an expression chain
// (a.b.c[i] → a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	switch v := e.(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return rootIdent(v.X)
	case *ast.IndexExpr:
		return rootIdent(v.X)
	case *ast.CallExpr:
		return rootIdent(v.Fun)
	case *ast.StarExpr:
		return rootIdent(v.X)
	case *ast.UnaryExpr:
		return rootIdent(v.X)
	case *ast.ParenExpr:
		return rootIdent(v.X)
	}
	return nil
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// importLocalName returns the file-local name an import path is bound to
// ("" if not imported): "time" → "time", or the rename if aliased.
func importLocalName(f *File, path string) string {
	for _, imp := range f.AST.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// importedPkgNames returns the set of local names bound to imports in f.
func importedPkgNames(f *File) map[string]bool {
	out := map[string]bool{}
	for _, imp := range f.AST.Imports {
		if imp.Name != nil {
			if imp.Name.Name != "_" && imp.Name.Name != "." {
				out[imp.Name.Name] = true
			}
			continue
		}
		p, _ := strconv.Unquote(imp.Path.Value)
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		out[p] = true
	}
	return out
}

// isPkgCall reports whether call is `pkgLocal.fn(...)` where pkgLocal is the
// file's local name for the import path pkg.
func isPkgCall(f *File, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return id.Name == importLocalName(f, pkgPath)
}

// namedTypeString renders a field/param type as "Name", "pkg.Name",
// stripping pointers; "" for anonymous/compound types.
func namedTypeString(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return namedTypeString(v.X)
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			return x.Name + "." + v.Sel.Name
		}
	}
	return ""
}

// enclosingFuncs returns every function body in a file paired with its
// declaration (top-level funcs and methods; function literals are visited as
// part of their enclosing declaration's body).
type funcInfo struct {
	Decl *ast.FuncDecl
	Body *ast.BlockStmt
}

func fileFuncs(f *File) []funcInfo {
	var out []funcInfo
	for _, decl := range f.AST.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, funcInfo{Decl: fd, Body: fd.Body})
		}
	}
	return out
}

// declaredIdents collects identifiers bound by := / var / range / func
// params inside node (used to distinguish loop-local state).
func declaredIdents(node ast.Node, into map[string]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						into[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			if v.Tok == token.VAR {
				for _, spec := range v.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							into[id.Name] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok && e != nil {
					into[id.Name] = true
				}
			}
		case *ast.FuncLit:
			for _, fld := range v.Type.Params.List {
				for _, id := range fld.Names {
					into[id.Name] = true
				}
			}
		}
		return true
	})
}

// paramTypes maps parameter (and receiver) names of a function declaration
// to their rendered named types.
func paramTypes(fd *ast.FuncDecl) map[string]string {
	out := map[string]string{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tn := namedTypeString(fld.Type)
			if tn == "" {
				continue
			}
			for _, name := range fld.Names {
				out[name.Name] = tn
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}
