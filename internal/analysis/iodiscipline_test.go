package analysis

import "testing"

// TestIODiscipline pins the durability seam: raw os write primitives are
// confined to internal/atomicio, everywhere else they are findings.
func TestIODiscipline(t *testing.T) {
	t.Run("raw writes outside atomicio are flagged", func(t *testing.T) {
		prog := fixture(t, map[string]string{"store.go": `package root
import "os"
func save(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return err
	}
	if _, err := os.Create(path + ".lock"); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}
`})
		wantFindings(t, runOne(prog, IODiscipline()), [][2]string{
			{"iodiscipline", "os.WriteFile outside internal/atomicio truncates in place"},
			{"iodiscipline", "os.Create outside internal/atomicio opens an unsynced truncating handle"},
			{"iodiscipline", "os.Rename outside internal/atomicio publishes a file that was never fsynced"},
		})
	})
	t.Run("the atomicio package is exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{"internal/atomicio/atomicio.go": `package atomicio
import "os"
func commit(tmp, path string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
`})
		wantFindings(t, runOne(prog, IODiscipline()), nil)
	})
	t.Run("test files are exempt", func(t *testing.T) {
		prog := fixture(t, map[string]string{"corrupt_test.go": `package root
import "os"
func flip(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
`})
		wantFindings(t, runOne(prog, IODiscipline()), nil)
	})
	t.Run("an import alias does not hide the call", func(t *testing.T) {
		prog := fixture(t, map[string]string{"store.go": `package root
import osfs "os"
func save(path string, data []byte) error { return osfs.WriteFile(path, data, 0o644) }
`})
		wantFindings(t, runOne(prog, IODiscipline()), [][2]string{
			{"iodiscipline", "os.WriteFile outside internal/atomicio truncates in place"},
		})
	})
	t.Run("a function value smuggling the primitive is flagged once", func(t *testing.T) {
		prog := fixture(t, map[string]string{"store.go": `package root
import "os"
var write = os.WriteFile
func save(path string, data []byte) error { return write(path, data, 0o644) }
`})
		wantFindings(t, runOne(prog, IODiscipline()), [][2]string{
			{"iodiscipline", "function value os.WriteFile smuggles the raw write primitive"},
		})
	})
	t.Run("reads and unrelated methods stay silent", func(t *testing.T) {
		prog := fixture(t, map[string]string{"store.go": `package root
import "os"
type builder struct{}
func (builder) Create() {}
func load(path string, b builder) ([]byte, error) {
	b.Create()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path)
}
`})
		wantFindings(t, runOne(prog, IODiscipline()), nil)
	})
}
