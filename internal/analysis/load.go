package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is one parsed source file.
type File struct {
	// Path is the module-relative slash path, also used as the token.FileSet
	// name so findings report repo-relative positions.
	Path string
	AST  *ast.File
	// Test marks _test.go files. Analyzers skip them: the contracts target
	// the production path, and tests legitimately white-box internals.
	Test bool
}

// Package groups the files of one package directory (per package name, so a
// dir holding `foo` and `foo_test` yields two packages).
type Package struct {
	// ImportPath is the module-qualified path, e.g. "loam/internal/cluster".
	ImportPath string
	Name       string
	Dir        string // module-relative slash path ("." for the root)
	Files      []*File
}

// Program is the fully loaded module plus the syntactic indexes shared by
// analyzers. Everything is derived from syntax alone — no type checking, no
// build system, no third-party loaders.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string // absolute module root
	Packages   []*Package

	// mapFields holds struct field names declared with a map type. The index
	// is name-keyed (no type checking), so to stay precision-first a name
	// only counts as map-typed when every struct declaring it agrees — a
	// field name used both ways (e.g. a slice in one struct, a map in
	// another) is treated as not-a-map.
	mapFields map[string]bool
	// nonMapFields holds struct field names declared with any non-map type,
	// used to resolve the ambiguity above.
	nonMapFields map[string]bool
	// mapFuncs holds function/method names whose single result is a map.
	mapFuncs map[string]bool
	// funcNames holds all top-level function (non-method) names.
	funcNames map[string]bool
	// wrapPrefixes maps a function/method name to the error-wrap prefix
	// tokens it applies via fmt.Errorf("prefix ...: %w", ...).
	wrapPrefixes map[string][]string
	// fieldTypes maps a struct field name to its named type "pkg.Type" when
	// the field is declared as T, *T, pkg.T or *pkg.T.
	fieldTypes map[string]string

	// Typed-engine state (typed.go, callgraph.go), built lazily and memoized.
	typedMu  sync.Mutex
	typed    map[string]*TypeInfo
	typedErr error
	cgMu     sync.Mutex
	cg       *CallGraph
}

// LoadProgram parses every .go file under root (the module root, containing
// go.mod), skipping vendor/testdata/hidden directories.
func LoadProgram(root string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), ModulePath: modPath, Root: abs}

	type key struct{ dir, name string }
	pkgs := map[key]*Package{}
	var order []key

	walkErr := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if path != abs && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "vendor" || base == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		astf, err := parser.ParseFile(prog.Fset, rel, src, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		k := key{dir, astf.Name.Name}
		p := pkgs[k]
		if p == nil {
			imp := modPath
			if dir != "." {
				imp = modPath + "/" + dir
			}
			p = &Package{ImportPath: imp, Name: astf.Name.Name, Dir: dir}
			pkgs[k] = p
			order = append(order, k)
		}
		p.Files = append(p.Files, &File{
			Path: rel,
			AST:  astf,
			Test: strings.HasSuffix(rel, "_test.go"),
		})
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dir != order[j].dir {
			return order[i].dir < order[j].dir
		}
		return order[i].name < order[j].name
	})
	for _, k := range order {
		p := pkgs[k]
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Path < p.Files[j].Path })
		prog.Packages = append(prog.Packages, p)
	}
	prog.buildIndexes()
	return prog, nil
}

// NewProgram assembles a program from in-memory sources — the test fixture
// path. files maps module-relative paths (e.g. "internal/foo/foo.go") to
// source text; the module path is taken as modPath.
func NewProgram(modPath string, files map[string]string) (*Program, error) {
	prog := &Program{Fset: token.NewFileSet(), ModulePath: modPath}
	type key struct{ dir, name string }
	pkgs := map[key]*Package{}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, rel := range paths {
		astf, err := parser.ParseFile(prog.Fset, rel, files[rel], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", rel, err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		k := key{dir, astf.Name.Name}
		p := pkgs[k]
		if p == nil {
			imp := modPath
			if dir != "." {
				imp = modPath + "/" + dir
			}
			p = &Package{ImportPath: imp, Name: astf.Name.Name, Dir: dir}
			pkgs[k] = p
			prog.Packages = append(prog.Packages, p)
		}
		p.Files = append(p.Files, &File{Path: rel, AST: astf, Test: strings.HasSuffix(rel, "_test.go")})
	}
	prog.buildIndexes()
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// buildIndexes derives the program-wide syntactic indexes.
func (prog *Program) buildIndexes() {
	prog.mapFields = map[string]bool{}
	prog.nonMapFields = map[string]bool{}
	prog.mapFuncs = map[string]bool{}
	prog.funcNames = map[string]bool{}
	prog.wrapPrefixes = map[string][]string{}
	prog.fieldTypes = map[string]string{}
	prog.eachFile(func(pkg *Package, f *File) {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, name := range fld.Names {
							if _, ok := fld.Type.(*ast.MapType); ok {
								prog.mapFields[name.Name] = true
							} else {
								prog.nonMapFields[name.Name] = true
							}
							if tn := namedTypeString(fld.Type); tn != "" {
								// Unqualified names resolve within the
								// declaring package.
								if !strings.Contains(tn, ".") {
									tn = pkg.Name + "." + tn
								}
								prog.fieldTypes[name.Name] = tn
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil {
					prog.funcNames[d.Name.Name] = true
				}
				if d.Type.Results != nil && len(d.Type.Results.List) == 1 {
					if _, ok := d.Type.Results.List[0].Type.(*ast.MapType); ok {
						prog.mapFuncs[d.Name.Name] = true
					}
				}
				if d.Body != nil {
					for _, p := range errorfPrefixes(f, d.Body) {
						prog.wrapPrefixes[d.Name.Name] = append(prog.wrapPrefixes[d.Name.Name], p)
					}
				}
			}
		}
	})
}

// eachFile visits every file of every package.
func (prog *Program) eachFile(fn func(*Package, *File)) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			fn(pkg, f)
		}
	}
}

// eachSourceFile visits non-test files only — the surface the contracts
// cover.
func (prog *Program) eachSourceFile(fn func(*Package, *File)) {
	prog.eachFile(func(pkg *Package, f *File) {
		if !f.Test {
			fn(pkg, f)
		}
	})
}

// errorfPrefixes collects the wrap-prefix tokens of every
// fmt.Errorf("prefix ...: ...") call in body.
func errorfPrefixes(f *File, body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgCall(f, call, "fmt", "Errorf") {
			return true
		}
		if tok := wrapPrefixToken(call); tok != "" {
			out = append(out, tok)
		}
		return true
	})
	return out
}

// wrapPrefixToken extracts the leading prefix token of an Errorf format
// literal: for `fmt.Errorf("deploy %s: %w", name, err)` it returns "deploy".
// It returns "" when there is no stable textual prefix.
func wrapPrefixToken(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	format, ok := stringLit(call.Args[0])
	if !ok {
		return ""
	}
	head, _, found := strings.Cut(format, ":")
	if !found {
		return ""
	}
	fields := strings.Fields(head)
	if len(fields) == 0 || strings.Contains(fields[0], "%") {
		return ""
	}
	return fields[0]
}
