package analysis

import "strings"

// AllowEntry suppresses findings that are intentional. Every entry must
// carry a Reason — the allowlist is the single place where the repo's
// contracts are consciously waived, so it is reviewed like code. A test
// (TestAllowlistEntriesAllFire) asserts each entry still matches a live raw
// finding, so stale entries are removed rather than accumulating.
type AllowEntry struct {
	// Rule is the analyzer name the entry applies to.
	Rule string
	// PathPrefix matches the module-relative file path by prefix, so an
	// entry can cover one file or a whole package directory.
	PathPrefix string
	// Contains optionally narrows the entry to findings whose message
	// contains this substring ("" matches any finding in the path).
	Contains string
	// Reason documents why the exception is sound. Required.
	Reason string
}

// DefaultAllowlist is the repo's intentional-exception list.
//
// How to add an entry: run `make lint`, copy the finding's path and a
// distinctive message fragment, and write a Reason that argues why the
// contract holds anyway. Entries without a Reason are rejected by Allowed.
func DefaultAllowlist() []AllowEntry {
	return []AllowEntry{
		{
			Rule:       "determinism",
			PathPrefix: "internal/simrand/",
			Contains:   "math/rand",
			Reason: "simrand IS the sanctioned randomness boundary: it wraps math/rand's " +
				"PRNG core behind named, seed-derivable streams; nothing else may import it",
		},
		{
			Rule:       "determinism",
			PathPrefix: "internal/walltime/",
			Contains:   "wall-clock read",
			Reason: "walltime IS the sanctioned wall-clock boundary: metrics-only elapsed-time " +
				"readings that never feed simulated state",
		},
		{
			Rule:       "determinism",
			PathPrefix: "internal/nativeopt/",
			Contains:   "range over map \"remaining\"",
			Reason: "greedy join-order loop reads only pure size estimates and breaks ties " +
				"on the table name, a total order — the result is independent of iteration order",
		},
		{
			Rule:       "lockdiscipline",
			PathPrefix: "internal/cluster/cluster.go",
			Contains:   "Cluster.Size",
			Reason: "machines is sized once in New and never resized; len() on it is safe " +
				"without the mutex (documented on the method)",
		},
	}
}

// Allowed reports whether a finding is suppressed by the allowlist.
// Entries lacking a Reason never match: an exception nobody can justify is
// not an exception.
func Allowed(allow []AllowEntry, f Finding) bool {
	for _, e := range allow {
		if e.Reason == "" {
			continue
		}
		if e.Rule != f.Rule {
			continue
		}
		if !strings.HasPrefix(f.Pos.Filename, e.PathPrefix) {
			continue
		}
		if e.Contains != "" && !strings.Contains(f.Message, e.Contains) {
			continue
		}
		return true
	}
	return false
}
