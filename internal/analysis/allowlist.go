package analysis

import "strings"

// AllowEntry suppresses findings that are intentional. Every entry must
// carry a Reason — the allowlist is the single place where the repo's
// contracts are consciously waived, so it is reviewed like code. A test
// (TestAllowlistEntriesAllFire) asserts each entry still matches a live raw
// finding, so stale entries are removed rather than accumulating.
type AllowEntry struct {
	// Rule is the analyzer name the entry applies to.
	Rule string
	// PathPrefix matches the module-relative file path by prefix, so an
	// entry can cover one file or a whole package directory.
	PathPrefix string
	// Contains optionally narrows the entry to findings whose message
	// contains this substring ("" matches any finding in the path).
	Contains string
	// Reason documents why the exception is sound. Required.
	Reason string
}

// DefaultAllowlist is the repo's intentional-exception list.
//
// How to add an entry: run `make lint`, copy the finding's path and a
// distinctive message fragment, and write a Reason that argues why the
// contract holds anyway. Entries without a Reason are rejected by Allowed.
func DefaultAllowlist() []AllowEntry {
	return []AllowEntry{
		{
			Rule:       "determinism",
			PathPrefix: "internal/simrand/",
			Contains:   "math/rand",
			Reason: "simrand IS the sanctioned randomness boundary: it wraps math/rand's " +
				"PRNG core behind named, seed-derivable streams; nothing else may import it",
		},
		{
			Rule:       "determinism",
			PathPrefix: "internal/walltime/",
			Contains:   "wall-clock read",
			Reason: "walltime IS the sanctioned wall-clock boundary: metrics-only elapsed-time " +
				"readings that never feed simulated state",
		},
		{
			Rule:       "determinism",
			PathPrefix: "internal/nativeopt/",
			Contains:   "range over map \"remaining\"",
			Reason: "greedy join-order loop reads only pure size estimates and breaks ties " +
				"on the table name, a total order — the result is independent of iteration order",
		},
		{
			Rule:       "lockdiscipline",
			PathPrefix: "internal/cluster/cluster.go",
			Contains:   "Cluster.Size",
			Reason: "machines is sized once in New and never resized; len() on it is safe " +
				"without the mutex (documented on the method)",
		},

		// --- allocdiscipline: deliberate seams off the zero-alloc core. The
		// contract the AllocsPerRun tests pin (TestPredictCostZeroAlloc) is
		// the NN steady state: warm scratch, canonical recurring plans, cache
		// hits. Each entry below is a path that allocates by design — cold
		// starts, amortized growth, the XGB backbone, or parallel fan-out —
		// and each argues why the steady state stays clean.
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/encoding/encoding.go",
			Contains:   "in EncodeNode",
			Reason: "per-node vector API kept for the XGB flat path and training; the NN " +
				"fast path uses EncodeNodeInto, which writes into caller scratch",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/encoding/encoding.go",
			Contains:   "in EncodeFlat",
			Reason: "XGB backbone's pooled encoding allocates one vector per plan by design; " +
				"the zero-alloc contract covers the NN Encode*FlatInto path, not XGB",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/encoding/flat.go",
			Contains:   "in addRow",
			Reason: "amortized doubling growth of the flat-encoding scratch: allocation " +
				"happens only while a buffer is still growing toward the workload's max " +
				"plan size, then never again (bench: steady-state AllocsPerRun is zero)",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/expr/expr.go",
			Contains:   "in Clone",
			Reason: "expression clone runs only under plan.Canonicalize's copy-on-write " +
				"path for plans not already canonical; recurring serving plans are " +
				"canonicalized once at explore time",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/plan/plan.go",
			Contains:   "in Clone",
			Reason: "copy-on-write clone taken only when Canonicalize must reorder a " +
				"non-canonical plan; the recurring-query serving path hands over " +
				"already-canonical plans and never clones",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/plan/plan.go",
			Contains:   "in canonicalizeInPlace",
			Reason: "same copy-on-write canonicalization path as Clone: unreachable for " +
				"already-canonical plans, which is what recurring serving traffic is",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/nn/infer.go",
			Contains:   "in Floats",
			Reason: "scratch slab warm-up: Floats allocates a new slab only when the " +
				"arena has never served a request this large; steady state reuses slabs " +
				"(TestPredictCostZeroAlloc pins this)",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/predictor/cache.go",
			Contains:   "in getOrCompute",
			Reason: "singleflight bookkeeping on the cache-miss path only; hits return " +
				"the cached entry with zero allocation, and misses already pay the " +
				"full encode+forward cost the entry amortizes",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/predictor/infer.go",
			Contains:   "in embedRow",
			Reason: "embedding-cache fill: allocates once per (table, env-key) pair on " +
				"first sight, then every later lookup is a copy out of the cache",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/predictor/infer.go",
			Contains:   "in scoreBatched",
			Reason: "parallel fan-out staging (result channel, worker closures) used " +
				"only above the configured parallel-embedding threshold " +
				"(ScoringConfig.ParallelThreshold), where the win from parallel " +
				"scoring dwarfs the staging cost; the sequential path below the " +
				"threshold is allocation-free",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/predictor/infer.go",
			Contains:   "in scoreXGB",
			Reason: "XGB backbone scoring stages per-candidate feature rows; XGB is " +
				"outside the zero-alloc contract (see EncodeFlat entry)",
		},
		{
			Rule:       "allocdiscipline",
			PathPrefix: "internal/predictor/predictor.go",
			Contains:   "in selectPlan",
			Reason: "the per-call costs slice is the documented API result shape of " +
				"SelectPlan and friends; callers own it after return, so it cannot " +
				"come from reused scratch",
		},

		// --- ctxflow ---
		{
			Rule:       "ctxflow",
			PathPrefix: "loam.go",
			Contains:   "in Optimize",
			Reason: "Optimize is the public no-context compatibility shim and is " +
				"documented as such: it deliberately roots a fresh context and " +
				"delegates to OptimizeCtx, which is the deadline-honoring entry point",
		},
		{
			Rule:       "ctxflow",
			PathPrefix: "fleet.go",
			Contains:   "in DeployAll",
			Reason: "DeployAll is the deprecated positional-signature wrapper kept " +
				"for compatibility: it has no context parameter to thread, so it " +
				"deliberately roots a fresh one and delegates to DeployAllCtx, the " +
				"cancellation-honoring entry point",
		},
		{
			Rule:       "ctxflow",
			PathPrefix: "fleet.go",
			Contains:   "in SelectAndDeploy",
			Reason: "SelectAndDeploy is the deprecated positional-signature wrapper " +
				"kept for compatibility: it has no context parameter to thread, so " +
				"it deliberately roots a fresh one and delegates to DeployAllCtx, " +
				"the cancellation-honoring entry point",
		},
	}
}

// Allowed reports whether a finding is suppressed by the allowlist.
// Entries lacking a Reason never match: an exception nobody can justify is
// not an exception.
func Allowed(allow []AllowEntry, f Finding) bool {
	_, ok := AllowedBy(allow, f)
	return ok
}

// AllowedBy returns the index of the first allowlist entry matching the
// finding, feeding both suppression and stale-entry tracking.
func AllowedBy(allow []AllowEntry, f Finding) (int, bool) {
	for i, e := range allow {
		if e.Reason == "" {
			continue
		}
		if e.Rule != f.Rule {
			continue
		}
		if !strings.HasPrefix(f.Pos.Filename, e.PathPrefix) {
			continue
		}
		if e.Contains != "" && !strings.Contains(f.Message, e.Contains) {
			continue
		}
		return i, true
	}
	return -1, false
}
