package analysis

import (
	"testing"
)

// nodeNamed finds a call-graph node by bare declaration name, failing if the
// name is ambiguous in the fixture.
func nodeNamed(t *testing.T, cg *CallGraph, name string) *FuncNode {
	t.Helper()
	nodes := cg.NodesByName(name)
	if len(nodes) != 1 {
		t.Fatalf("NodesByName(%q) = %d nodes, want 1", name, len(nodes))
	}
	return nodes[0]
}

// TestCallGraphInterfaceDispatch is the unit test ISSUE.md asks for: a call
// through an interface method resolves, via types.Implements, to the
// in-module concrete implementation — and reachability flows through it.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

type Scorer interface {
	Score(x int) int
}

type nnScorer struct{}

func (nnScorer) Score(x int) int { return leaf(x) }

func leaf(x int) int { return x + 1 }

func Root(s Scorer) int { return s.Score(3) }

func unrelated() int { return leaf(9) }
`})
	cg := prog.BuildCallGraph()
	roots := cg.Roots([]RootSpec{{PkgSuffix: "internal/p", Name: "Root"}})
	if len(roots) != 1 {
		t.Fatalf("Roots = %d, want 1", len(roots))
	}
	reach, parent := cg.ReachableFrom(roots)

	score := nodeNamed(t, cg, "Score")
	if !reach[score] {
		t.Fatal("interface dispatch: nnScorer.Score not reachable from Root")
	}
	leaf := nodeNamed(t, cg, "leaf")
	if !reach[leaf] {
		t.Fatal("transitive reachability: leaf not reachable from Root through nnScorer.Score")
	}
	if reach[nodeNamed(t, cg, "unrelated")] {
		t.Fatal("unrelated must not be reachable from Root")
	}
	if r := rootOf(leaf, parent); r == nil || r.Name() != "Root" {
		t.Fatalf("rootOf(leaf) = %v, want Root", r)
	}

	// The interface call site resolved to a concrete target, not the name
	// fallback: the site must be marked Static.
	root := nodeNamed(t, cg, "Root")
	var found bool
	for _, site := range root.Calls {
		for _, tgt := range site.Targets {
			if tgt == score {
				found = true
				if !site.Static {
					t.Error("interface-dispatch site should be Static (resolved via types.Implements)")
				}
			}
		}
	}
	if !found {
		t.Fatal("Root's call site never targeted nnScorer.Score")
	}
}

// TestCallGraphFuncValueFallback: a call through a stored function value has
// no checker-resolved target; the name fallback keeps the callee reachable
// (over-approximation is the safe direction for purity/allocation rules).
func TestCallGraphFuncValueFallback(t *testing.T) {
	prog := fixture(t, map[string]string{"internal/p/p.go": `package p

func work(x int) int { return x * 2 }

func Root() int {
	f := work
	return f(21)
}
`})
	cg := prog.BuildCallGraph()
	reach, _ := cg.ReachableFrom(cg.Roots([]RootSpec{{PkgSuffix: "internal/p", Name: "Root"}}))
	if !reach[nodeNamed(t, cg, "work")] {
		t.Fatal("work must stay reachable: the value reference f := work adds an edge")
	}
}

func TestParseRootSpec(t *testing.T) {
	r, ok := ParseRootSpec("internal/predictor.PredictCost")
	if !ok || r.PkgSuffix != "internal/predictor" || r.Name != "PredictCost" {
		t.Fatalf("ParseRootSpec = %+v %v", r, ok)
	}
	if _, ok := ParseRootSpec("noDotHere"); ok {
		t.Fatal("spec without a dot must be rejected")
	}
	if _, ok := ParseRootSpec(""); ok {
		t.Fatal("empty spec must be rejected")
	}
}
