package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces the deadline-propagation contract on the serving path:
//
//  1. context.Background() / context.TODO() are banned outside package main,
//     test files, and the internal/walltime boundary. A fresh root context
//     in library code severs the caller's deadline and cancellation — the
//     guard's watchdog (DESIGN.md "Guarded serving") only works if the
//     deadline it sets actually reaches the blocking call.
//  2. A function that receives a context.Context must thread it to every
//     in-module callee that accepts one: calling a ctx-aware callee with
//     anything not derived from the incoming context drops the deadline on
//     the floor. Derivation is tracked through local assignments
//     (ctx2, cancel := context.WithTimeout(ctx, ...) counts as threading).
//
// Rule 2 needs type information (parameter identity, callee signatures) and
// silently narrows to rule 1 where the typed load is incomplete.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "contexts are threaded to every ctx-aware callee; no fresh root contexts outside main/tests/walltime",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(prog *Program) []Finding {
	var out []Finding
	cg := prog.BuildCallGraph()
	for _, node := range cg.Nodes {
		if node.Pkg.Name == "main" || strings.HasSuffix(node.Pkg.ImportPath, "/walltime") {
			continue
		}
		ti := prog.Typed(node.Pkg)
		var info *types.Info
		if ti != nil {
			info = ti.Info
		}
		out = append(out, freshRootContexts(prog, node, info)...)
		if info != nil {
			out = append(out, droppedContexts(prog, node, info)...)
		}
	}
	return out
}

// freshRootContexts flags context.Background() / context.TODO() calls.
// Typed when possible; otherwise the file's import binding for "context"
// disambiguates (the syntactic fallback).
func freshRootContexts(prog *Program, node *FuncNode, info *types.Info) []Finding {
	var out []Finding
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		if info != nil {
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
		} else if !isPkgCall(node.File, call, "context", sel.Sel.Name) {
			return true
		}
		out = append(out, Finding{
			Pos:  prog.Fset.Position(call.Pos()),
			Rule: "ctxflow",
			Message: fmt.Sprintf("context.%s creates a fresh root context in library code (in %s)",
				sel.Sel.Name, node.Name()),
			Suggestion: "accept a context.Context parameter and thread the caller's deadline through",
		})
		return true
	})
	return out
}

// droppedContexts flags calls to ctx-aware in-module callees made with a
// context not derived from the function's own context parameter.
func droppedContexts(prog *Program, node *FuncNode, info *types.Info) []Finding {
	ctxParam := contextParam(node, info)
	if ctxParam == nil {
		return nil
	}
	tainted := ctxDerived(node, info, ctxParam)

	var out []Finding
	seen := map[string]bool{}
	for _, site := range node.Calls {
		sig := calleeCtxSignature(site)
		if sig == nil {
			continue
		}
		if len(site.Call.Args) == 0 {
			continue
		}
		arg := site.Call.Args[0]
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue // first arg is not the context (variadic shapes etc.)
		}
		if mentionsAny(info, arg, tainted) {
			continue
		}
		callee := exprString(site.Call.Fun)
		pos := prog.Fset.Position(site.Call.Pos())
		key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Finding{
			Pos:  pos,
			Rule: "ctxflow",
			Message: fmt.Sprintf("%s receives a context not derived from %q: the caller's deadline is dropped (in %s)",
				callee, ctxParam.Name(), node.Name()),
			Suggestion: "pass the incoming context (or one derived from it via context.With*)",
		})
	}
	return out
}

// contextParam returns the declaration's context.Context parameter object,
// or nil. The blank identifier never counts — discarding a context by name
// is an explicit choice the analyzer respects.
func contextParam(node *FuncNode, info *types.Info) *types.Var {
	if node.Decl.Type.Params == nil {
		return nil
	}
	for _, fld := range node.Decl.Type.Params.List {
		for _, name := range fld.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := info.Defs[name].(*types.Var)
			if ok && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// ctxDerived computes the set of objects carrying the incoming context: the
// parameter itself plus every local whose initializer mentions one of them
// (two passes cover the re-assignment chains that occur in practice).
func ctxDerived(node *FuncNode, info *types.Info, ctxParam *types.Var) map[types.Object]bool {
	tainted := map[types.Object]bool{ctxParam: true}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, rhs := range assign.Rhs {
				if mentionsAny(info, rhs, tainted) {
					rhsTainted = true
				}
			}
			if !rhsTainted {
				return true
			}
			for _, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if assign.Tok == token.DEFINE {
					obj = info.Defs[id]
				} else {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
					tainted[obj] = true
				}
			}
			return true
		})
	}
	return tainted
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeCtxSignature returns the callee's signature when its first parameter
// is a context.Context and the callee is resolvable (in-module static target
// or a known stdlib/function object).
func calleeCtxSignature(site *CallSite) *types.Signature {
	if site.StaticObj == nil {
		return nil
	}
	sig, ok := site.StaticObj.Type().(*types.Signature)
	if !ok || sig.Params() == nil || sig.Params().Len() == 0 {
		return nil
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return nil
	}
	return sig
}
