package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// InferencePurity enforces the serving-path purity contract behind the
// inference fast path (see DESIGN.md "Inference fast path & caching
// contract"): code that runs while serving queries must never construct
// gradient-tracked tensors (nn.Param) or invoke autograd backpropagation
// (.Backward()). Training is the only writer of model weights; a Param or
// Backward reachable from a serving entry point would silently re-attach the
// autograd graph, breaking both the zero-allocation guarantee and the
// bit-exactness argument that the inference kernels replicate frozen
// weights.
//
// Scope:
//   - internal/guard: the whole package. The guard wraps a trained model and
//     has no business touching autograd anywhere.
//   - internal/predictor: every function name-reachable from the serving
//     roots PredictCost, SelectPlan, SelectPlanParallel and SelectPlanKeyed.
//     The call graph is syntactic (callee names, no type resolution), which
//     over-approximates reachability — the safe direction for a purity rule.
//     Training entry points (Train and friends) stay free to use autograd.
//
// Test files are exempt as everywhere else in the suite.
func InferencePurity() *Analyzer {
	return &Analyzer{
		Name: "inferencepurity",
		Doc:  "serving paths never construct nn.Param tensors or call Backward",
		Run:  runInferencePurity,
	}
}

// inferenceRoots are the predictor's serving entry points; everything they
// reach (by callee name) is serving-path code.
var inferenceRoots = []string{"PredictCost", "SelectPlan", "SelectPlanParallel", "SelectPlanKeyed"}

func runInferencePurity(prog *Program) []Finding {
	var out []Finding
	prog.eachSourceFile(func(pkg *Package, f *File) {
		switch {
		case strings.HasSuffix(pkg.ImportPath, "/internal/guard"):
			for _, fn := range fileFuncs(f) {
				out = append(out, purityViolations(prog, f, fn)...)
			}
		case strings.HasSuffix(pkg.ImportPath, "/internal/predictor"):
			reach := servingReachable(pkg)
			for _, fn := range fileFuncs(f) {
				if reach[fn.Decl.Name.Name] {
					out = append(out, purityViolations(prog, f, fn)...)
				}
			}
		}
	})
	return out
}

// servingReachable computes the set of function/method names in pkg
// reachable from the serving roots through the package's own call sites.
// Name-based: a call `x.f()` or `f()` marks every declaration named f.
func servingReachable(pkg *Package) map[string]bool {
	callees := map[string][]string{}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, fn := range fileFuncs(f) {
			name := fn.Decl.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callees[name] = append(callees[name], fun.Name)
				case *ast.SelectorExpr:
					callees[name] = append(callees[name], fun.Sel.Name)
				}
				return true
			})
		}
	}
	reach := map[string]bool{}
	queue := append([]string(nil), inferenceRoots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if reach[name] {
			continue
		}
		reach[name] = true
		queue = append(queue, callees[name]...)
	}
	return reach
}

// purityViolations flags nn.Param construction and .Backward() calls in one
// function body.
func purityViolations(prog *Program, f *File, fn funcInfo) []Finding {
	// Resolve the file-local name of the autograd package by import-path
	// suffix, so fixture modules stay subject to the rule.
	nnLocal := ""
	for _, imp := range f.AST.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if strings.HasSuffix(p, "/internal/nn") || p == "internal/nn" {
			nnLocal = importLocalName(f, p)
		}
	}
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case sel.Sel.Name == "Param" && nnLocal != "":
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == nnLocal {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "inferencepurity",
					Message: fmt.Sprintf("%s constructs a gradient-tracked tensor on the serving path (in %s)",
						exprString(sel), fn.Decl.Name.Name),
					Suggestion: "serving code reads frozen weights; build tensors with nn.Param only in training code",
				})
			}
		case sel.Sel.Name == "Backward":
			out = append(out, Finding{
				Pos:  prog.Fset.Position(call.Pos()),
				Rule: "inferencepurity",
				Message: fmt.Sprintf("%s.Backward runs backpropagation on the serving path (in %s)",
					exprString(sel.X), fn.Decl.Name.Name),
				Suggestion: "serving code uses the ForwardInfer fast path; Backward belongs to training only",
			})
		}
		return true
	})
	return out
}
