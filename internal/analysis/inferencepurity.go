package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// InferencePurity enforces the serving-path purity contract behind the
// inference fast path (see DESIGN.md "Inference fast path & caching
// contract"): code that runs while serving queries must never construct
// gradient-tracked tensors (nn.Param) or invoke autograd backpropagation
// (.Backward()). Training is the only writer of model weights; a Param or
// Backward reachable from a serving entry point would silently re-attach the
// autograd graph, breaking both the zero-allocation guarantee and the
// bit-exactness argument that the inference kernels replicate frozen
// weights.
//
// Scope:
//   - internal/guard: the whole package. The guard wraps a trained model and
//     has no business touching autograd anywhere.
//   - internal/predictor: every function reachable from the serving roots
//     PredictCost, SelectPlan, SelectPlanParallel, SelectPlanKeyed and
//     SelectPlanGroups through the typed call graph (callgraph.go) — static calls, interface
//     dispatch resolved via types.Implements, method/function values, and a
//     name fallback where the checker has no answer. Before the typed
//     engine, reachability was per-package callee-name matching, which
//     missed calls through stored function values and cross-package
//     round-trips; the graph closes those false negatives and still
//     over-approximates — the safe direction for a purity rule. Training
//     entry points (Train and friends) stay free to use autograd.
//
// Test files are exempt as everywhere else in the suite.
func InferencePurity() *Analyzer {
	return &Analyzer{
		Name: "inferencepurity",
		Doc:  "serving paths never construct nn.Param tensors or call Backward",
		Run:  runInferencePurity,
	}
}

// inferenceRoots are the predictor's serving entry points; everything they
// reach is serving-path code.
var inferenceRoots = []string{"PredictCost", "SelectPlan", "SelectPlanParallel", "SelectPlanKeyed", "SelectPlanGroups"}

func runInferencePurity(prog *Program) []Finding {
	cg := prog.BuildCallGraph()
	var specs []RootSpec
	for _, name := range inferenceRoots {
		specs = append(specs, RootSpec{PkgSuffix: "internal/predictor", Name: name})
	}
	reach, _ := cg.ReachableFrom(cg.Roots(specs))

	var out []Finding
	for _, node := range cg.Nodes {
		switch {
		case strings.HasSuffix(node.Pkg.ImportPath, "/internal/guard"):
			// whole package in scope
		case strings.HasSuffix(node.Pkg.ImportPath, "/internal/predictor"):
			if !reach[node] {
				continue
			}
		default:
			continue
		}
		out = append(out, purityViolations(prog, node.File, funcInfo{Decl: node.Decl, Body: node.Decl.Body})...)
	}
	return out
}

// purityViolations flags nn.Param construction and .Backward() calls in one
// function body.
func purityViolations(prog *Program, f *File, fn funcInfo) []Finding {
	// Resolve the file-local name of the autograd package by import-path
	// suffix, so fixture modules stay subject to the rule.
	nnLocal := ""
	for _, imp := range f.AST.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if strings.HasSuffix(p, "/internal/nn") || p == "internal/nn" {
			nnLocal = importLocalName(f, p)
		}
	}
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case sel.Sel.Name == "Param" && nnLocal != "":
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == nnLocal {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "inferencepurity",
					Message: fmt.Sprintf("%s constructs a gradient-tracked tensor on the serving path (in %s)",
						exprString(sel), fn.Decl.Name.Name),
					Suggestion: "serving code reads frozen weights; build tensors with nn.Param only in training code",
				})
			}
		case sel.Sel.Name == "Backward":
			out = append(out, Finding{
				Pos:  prog.Fset.Position(call.Pos()),
				Rule: "inferencepurity",
				Message: fmt.Sprintf("%s.Backward runs backpropagation on the serving path (in %s)",
					exprString(sel.X), fn.Decl.Name.Name),
				Suggestion: "serving code uses the ForwardInfer fast path; Backward belongs to training only",
			})
		}
		return true
	})
	return out
}
